/// \file ablation_cut_limit.cpp
/// \brief Ablation A: the cut leaf limit of Algorithm 1.
///
/// The paper fixes `limit = log2(#patterns)` so a cut's exhaustive truth
/// table never costs more than direct simulation of the patterns it
/// replaces.  This harness sweeps the limit and reports cut counts,
/// simulated roots, and specified-node simulation time — showing the
/// sweet spot the rule targets (too small → many cuts to traverse; too
/// large → wide LUT tables dominate).
#include "core/stp_simulator.hpp"
#include "gen/benchmarks.hpp"
#include "network/convert.hpp"
#include "sim/patterns.hpp"

#include <chrono>
#include <cstdio>
#include <vector>

int main()
{
  using namespace stps;
  using clock_type = std::chrono::steady_clock;
  using knode = net::klut_network::node;

  const net::aig_network aig = gen::make_epfl("max");
  const auto conv = net::aig_to_klut(aig);
  const sim::pattern_set patterns =
      sim::pattern_set::random(aig.num_pis(), 4096u, 17u);

  std::vector<knode> targets;
  conv.klut.foreach_gate([&](knode n) {
    if (n % 29u == 0u) {
      targets.push_back(n);
    }
  });

  std::printf("Ablation A: cut leaf limit (benchmark: max, %u gates, "
              "%zu specified nodes, 4096 patterns)\n",
              aig.num_gates(), targets.size());
  std::printf("auto rule would pick limit = %d\n\n", 12);
  std::printf("%6s | %8s %10s %10s\n", "limit", "cuts", "simulated",
              "time(ms)");

  for (uint32_t limit = 2u; limit <= 8u; ++limit) {
    const core::stp_simulator simulator{limit};
    core::stp_sim_stats stats;
    const auto start = clock_type::now();
    // Repeat to get a stable reading.
    for (int rep = 0; rep < 5; ++rep) {
      simulator.simulate_specified(conv.klut, targets, patterns, &stats);
    }
    const double ms =
        std::chrono::duration<double, std::milli>(clock_type::now() - start)
            .count() /
        5.0;
    std::printf("%6u | %8zu %10zu %10.2f\n", limit, stats.num_cuts,
                stats.num_simulated, ms);
  }
  std::printf("\nsmaller limits create more cut roots to visit; larger "
              "limits pay for wider tables.\n");
  return 0;
}
