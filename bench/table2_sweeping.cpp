/// \file table2_sweeping.cpp
/// \brief Regenerates Table II: SAT calls and runtime of the two SAT
/// sweepers on the HWMCC'15/IWLS'05-style suite.
///
/// Columns, as in the paper: circuit statistics (PI/PO, levels, gates,
/// result gates), satisfiable SAT calls ("SAT calls"), total SAT calls,
/// simulation runtime, and total runtime, for the `&fraig`-style baseline
/// and the STP sweeper, plus the geometric means and the improvement
/// ratios (new/old).  Every result is CEC-verified before being printed
/// (the paper verifies with `&cec`).
///
/// The paper's instances are 30k-2M gates; these are scaled-down
/// generated circuits of the same redundancy regime (see DESIGN.md), so
/// absolute numbers differ but the shape — who wins, and that the win
/// comes from fewer satisfiable calls — is the reproduced claim
/// (paper: −91% satisfiable calls, −40% total calls, ~2× sim time,
/// −35% total runtime).
///
/// `--json <path>` additionally writes the per-benchmark counters
/// (gates, SAT calls, CE-propagation gate visits, sim/SAT/total seconds
/// for both engines) and the geometric means as machine-readable JSON —
/// the perf-trajectory convention: each PR regenerates BENCH_sweep.json
/// so regressions show up in review (absolute seconds are
/// machine-specific; compare ratios).
///
/// `--scale <n>` appends paper-scale instances (≥ 30k gates, wider
/// arithmetic + deeper random logic; see bench/README.md) where the
/// STP-vs-fraig runtime claim can re-emerge; 0 (the default) keeps the
/// original scaled-down suite only.
///
/// `--ablation` additionally sweeps every instance with the
/// incremental-CNF, store-budget, and signature-guided-SAT flags *off*
/// (per-query scratch encoding, unbounded stores, full collapsed arena,
/// no target pruning, no phase seeding, unrestricted decisions, flat
/// window support, ungrouped round-2 guidance) *and the opposite CE
/// engine* (resim where the main run used the collapsed view and vice
/// versa), and asserts the result-gate counts match the flags-on run
/// exactly — one re-sweep proves the flag, the engine, and the
/// SAT-guidance dimensions at once.  The JSON gains an `stp_flags_off`
/// object and an `ablation_match` field per row.
///
/// `--ce-engine auto|collapsed|resim` overrides the main run's CE
/// propagation engine (default: the auto gate-count dispatch).
///
/// `--only <substr>` keeps only benchmarks whose name contains the
/// substring (repeatable) — used for the committed `--scale 3` smoke
/// rows.
///
/// Budgets and interruption (see bench/README.md): `--deadline <sec>`
/// bounds each sweep's wall-clock, `--conflict-budget <n>` caps each
/// equivalence query (escalating retry then kicks in), and
/// `--conflict-budget-total <n>` caps each sweep's global conflict
/// pool.  SIGINT/SIGTERM trip the active sweep's governor: the
/// in-flight row is dropped, completed rows are kept, and the `--json`
/// file is still written with `"interrupted": true`.  Because the
/// governor is shared by every worker of a parallel sweep, one SIGINT
/// winds down all of them.
///
/// `--threads <n>` (default 1) runs the STP sweeps' SAT phase on n
/// worker threads; `--shards <n>` fixes the class-shard count
/// independently of the thread count (default: one shard per thread).
/// The sweep trajectory is a function of the *shard* count only, so
/// `--threads 4 --shards 4` and `--threads 1 --shards 4` emit
/// byte-identical counters — the determinism pin.  STP rows gain
/// `threads`/`sat_shards`/`workers_used`/`worker_sat_seconds` keys; the
/// ablation re-sweep runs at the same thread/shard configuration.
#include "gen/benchmarks.hpp"
#include "network/traversal.hpp"
#include "sweep/cec.hpp"
#include "sweep/fraig.hpp"
#include "sweep/resource_governor.hpp"
#include "sweep/stp_sweeper.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace {

/// Governor of the sweep/CEC currently running, for the signal handler
/// to trip; null between runs (an interrupt then just sets the flag and
/// the row loop exits at its next check).
std::atomic<stps::sweep::resource_governor*> g_active_governor{nullptr};
std::atomic<bool> g_interrupted{false};

extern "C" void on_interrupt(int)
{
  // Async-signal-safe: two relaxed atomic stores, nothing else.
  g_interrupted.store(true, std::memory_order_relaxed);
  stps::sweep::resource_governor* g =
      g_active_governor.load(std::memory_order_relaxed);
  if (g != nullptr) {
    g->request_stop();
  }
}

double geomean(const std::vector<double>& xs)
{
  double log_sum = 0;
  for (const double x : xs) {
    log_sum += std::log(std::max(x, 1e-9));
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

struct json_row
{
  std::string name;
  uint32_t pis, pos, levels, gates, result_gates;
  stps::sweep::sweep_stats fraig, stp;
  bool verified;
  bool have_flags_off = false;
  stps::sweep::sweep_stats stp_flags_off;
  bool ablation_match = false;
};

void write_engine_json(std::FILE* f, const char* key,
                       const stps::sweep::sweep_stats& s)
{
  std::fprintf(f,
               "      \"%s\": {\"sat_calls_total\": %llu, "
               "\"sat_calls_satisfiable\": %llu, \"merges\": %llu, ",
               key, static_cast<unsigned long long>(s.sat_calls_total),
               static_cast<unsigned long long>(s.sat_calls_satisfiable),
               static_cast<unsigned long long>(s.merges));
  // Unified unDET accounting, emitted for BOTH engines: permanent
  // give-ups, escalating-retry attempts, retries that settled, and how
  // the sweep ended (complete vs deadline/budget/cancelled partial).
  std::fprintf(f,
               "\"dont_touch\": %llu, \"undet_retries\": %llu, "
               "\"undet_resolved\": %llu, \"sweep_outcome\": \"%s\", ",
               static_cast<unsigned long long>(s.dont_touch),
               static_cast<unsigned long long>(s.undet_retries),
               static_cast<unsigned long long>(s.undet_resolved),
               stps::sweep::sweep_outcome_name(s.outcome));
  // The CE engine the sweep finished with exists only for sweepers
  // with selectable engines (the STP rows); fraig omits the key.
  if (s.has_ce_engine) {
    std::fprintf(f, "\"ce_engine_used\": \"%s\", ",
                 stps::sweep::ce_engine_name(s.ce_engine_used));
    if (s.ce_engine_escalated) {
      std::fprintf(f, "\"ce_engine_escalated\": true, ");
    }
  }
  // CE-propagation counters exist only for engines running the collapsed
  // CE simulator; other engines omit the keys entirely so ratio tooling
  // cannot divide by a meaningless zero.
  if (s.has_ce_counters) {
    std::fprintf(f,
                 "\"ce_gates_visited\": %llu, "
                 "\"ce_gates_scan_baseline\": %llu, "
                 "\"ce_targets_pruned\": %llu, ",
                 static_cast<unsigned long long>(s.ce_gates_visited),
                 static_cast<unsigned long long>(s.ce_gates_scan_baseline),
                 static_cast<unsigned long long>(s.ce_targets_pruned));
  }
  std::fprintf(f,
               "\"sat_nodes_encoded\": %llu, \"sat_solver_rebuilds\": %llu, "
               "\"sat_clauses_peak\": %llu, ",
               static_cast<unsigned long long>(s.sat_nodes_encoded),
               static_cast<unsigned long long>(s.sat_solver_rebuilds),
               static_cast<unsigned long long>(s.sat_clauses_peak));
  // Solver search effort, accumulated across garbage epochs — the
  // satisfiable-call *cost* trajectory the signature-phase and
  // cone-scoping policies target.  `phase_seed_words` exists only for
  // sweepers with the phase-seeding policy (the STP rows); fraig omits
  // the key.
  std::fprintf(f,
               "\"sat_conflicts\": %llu, \"sat_decisions\": %llu, "
               "\"sat_restarts\": %llu, ",
               static_cast<unsigned long long>(s.sat_conflicts),
               static_cast<unsigned long long>(s.sat_decisions),
               static_cast<unsigned long long>(s.sat_restarts));
  // Clause-database policy counters (reduce_db + binary graph +
  // between-query inprocessing), accumulated across garbage epochs and
  // shards like the search counters above.  Emitted for both engines —
  // the solver policies are engine-independent.
  std::fprintf(f,
               "\"sat_learnts_reduced\": %llu, \"sat_lbd_sum\": %llu, "
               "\"sat_binary_clauses\": %llu, \"sat_lits_collapsed\": %llu, "
               "\"sat_clauses_subsumed\": %llu, "
               "\"sat_inprocess_seconds\": %.6f, ",
               static_cast<unsigned long long>(s.sat_learnts_reduced),
               static_cast<unsigned long long>(s.sat_lbd_sum),
               static_cast<unsigned long long>(s.sat_binary_clauses),
               static_cast<unsigned long long>(s.sat_lits_collapsed),
               static_cast<unsigned long long>(s.sat_clauses_subsumed),
               s.sat_inprocess_seconds);
  if (s.has_ce_engine) {
    std::fprintf(f, "\"phase_seed_words\": %llu, ",
                 static_cast<unsigned long long>(s.phase_seed_words));
  }
  // Parallel SAT phase: emitted only for sweeps that report per-worker
  // accounting (the STP rows; fraig stays single-threaded).  At
  // threads > 1 the *_seconds keys are per-worker sums, and SAT
  // counters are sums over per-shard managers (learnt-clause state is
  // per manager, so sharded totals differ from the single-shard run —
  // compare ratios within one configuration; see bench/README.md).
  if (!s.worker_sat_seconds.empty()) {
    std::fprintf(f,
                 "\"threads\": %u, \"sat_shards\": %u, "
                 "\"workers_used\": %u, \"worker_sat_seconds\": [",
                 s.threads, s.sat_shards, s.workers_used);
    for (std::size_t w = 0; w < s.worker_sat_seconds.size(); ++w) {
      std::fprintf(f, "%s%.6f", w == 0u ? "" : ", ",
                   s.worker_sat_seconds[w]);
    }
    std::fprintf(f, "], ");
  }
  if (s.has_store_counters) {
    std::fprintf(f,
                 "\"store_words_live\": %llu, \"store_words_trimmed\": %llu, "
                 "\"store_peak_bytes\": %llu, "
                 "\"pattern_words_live\": %llu, "
                 "\"pattern_words_recycled\": %llu, ",
                 static_cast<unsigned long long>(s.store_words_live),
                 static_cast<unsigned long long>(s.store_words_trimmed),
                 static_cast<unsigned long long>(s.store_peak_bytes),
                 static_cast<unsigned long long>(s.pattern_words_live),
                 static_cast<unsigned long long>(s.pattern_words_recycled));
  }
  std::fprintf(f,
               "\"sim_seconds\": %.6f, \"sat_seconds\": %.6f, "
               "\"total_seconds\": %.6f}",
               s.sim_seconds, s.sat_seconds, s.total_seconds);
}

bool write_json(const std::string& path, uint64_t base_patterns,
                uint32_t scale, const std::vector<json_row>& rows,
                bool interrupted)
{
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"table2_sweeping\",\n"
                  "  \"patterns\": %llu,\n  \"scale\": %u,\n"
                  "  \"interrupted\": %s,\n"
                  "  \"benchmarks\": [\n",
               static_cast<unsigned long long>(base_patterns), scale,
               interrupted ? "true" : "false");
  std::vector<double> time_f, time_s, sat_f, sat_s;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const json_row& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"pis\": %u, \"pos\": %u, "
                 "\"levels\": %u, \"gates\": %u, \"result_gates\": %u, "
                 "\"cec_verified\": %s,\n",
                 r.name.c_str(), r.pis, r.pos, r.levels, r.gates,
                 r.result_gates, r.verified ? "true" : "false");
    write_engine_json(f, "fraig", r.fraig);
    std::fprintf(f, ",\n");
    write_engine_json(f, "stp", r.stp);
    if (r.have_flags_off) {
      std::fprintf(f, ",\n");
      write_engine_json(f, "stp_flags_off", r.stp_flags_off);
      std::fprintf(f, ",\n      \"ablation_match\": %s",
                   r.ablation_match ? "true" : "false");
    }
    std::fprintf(f, "\n    }%s\n", i + 1u == rows.size() ? "" : ",");
    time_f.push_back(r.fraig.total_seconds);
    time_s.push_back(r.stp.total_seconds);
    sat_f.push_back(static_cast<double>(r.fraig.sat_calls_satisfiable) + 1.0);
    sat_s.push_back(static_cast<double>(r.stp.sat_calls_satisfiable) + 1.0);
  }
  std::fprintf(f, "  ]");
  // An interrupted run may have zero completed rows; a geomean over an
  // empty set is meaningless, so the key is simply absent then.
  if (!rows.empty()) {
    std::fprintf(f,
                 ",\n  \"geomean\": {\"fraig_total_seconds\": %.6f, "
                 "\"stp_total_seconds\": %.6f, \"runtime_ratio\": %.4f, "
                 "\"satisfiable_ratio\": %.4f}",
                 geomean(time_f), geomean(time_s),
                 geomean(time_s) / geomean(time_f),
                 geomean(sat_s) / geomean(sat_f));
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  return true;
}

/// Registers \p g as the signal handler's stop target for the duration
/// of one sweep/CEC call.
class governed_scope
{
public:
  explicit governed_scope(stps::sweep::resource_governor& g)
  {
    g_active_governor.store(&g, std::memory_order_relaxed);
  }
  ~governed_scope()
  {
    g_active_governor.store(nullptr, std::memory_order_relaxed);
  }
  governed_scope(const governed_scope&) = delete;
  governed_scope& operator=(const governed_scope&) = delete;
};

} // namespace

int main(int argc, char** argv)
{
  using namespace stps;
  uint64_t base_patterns = 1024u;
  uint32_t scale = 0;
  bool ablation = false;
  sweep::ce_engine_kind ce_engine = sweep::ce_engine_kind::automatic;
  std::string json_path;
  std::vector<std::string> only;
  double deadline_seconds = 0.0;       // 0 = no deadline
  uint64_t conflict_budget_total = 0u; // 0 = unlimited global pool
  int64_t conflict_budget = -1;        // per query; -1 = unlimited
  uint32_t threads = 1;                // STP SAT-phase worker threads
  uint32_t shards = 0;                 // 0 = one shard per thread
  bool sat_reduce = true;              // solver learnt-clause reduction
  bool sat_inprocess = true;           // between-query inprocessing
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ablation") == 0) {
      ablation = true;
      continue;
    }
    if (i + 1 >= argc) {
      continue;
    }
    if (std::strcmp(argv[i], "--patterns") == 0) {
      base_patterns = std::stoull(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--deadline") == 0) {
      deadline_seconds = std::stod(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--conflict-budget") == 0) {
      conflict_budget = std::stoll(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--conflict-budget-total") == 0) {
      conflict_budget_total = std::stoull(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--threads") == 0) {
      threads = static_cast<uint32_t>(std::stoul(argv[i + 1]));
    }
    if (std::strcmp(argv[i], "--shards") == 0) {
      shards = static_cast<uint32_t>(std::stoul(argv[i + 1]));
    }
    if (std::strcmp(argv[i], "--sat-reduce") == 0) {
      sat_reduce = std::stoul(argv[i + 1]) != 0u;
    }
    if (std::strcmp(argv[i], "--sat-inprocess") == 0) {
      sat_inprocess = std::stoul(argv[i + 1]) != 0u;
    }
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--scale") == 0) {
      scale = static_cast<uint32_t>(std::stoul(argv[i + 1]));
    }
    if (std::strcmp(argv[i], "--only") == 0) {
      only.emplace_back(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--ce-engine") == 0) {
      const std::string value = argv[i + 1];
      if (value == "collapsed") {
        ce_engine = sweep::ce_engine_kind::collapsed;
      } else if (value == "resim") {
        ce_engine = sweep::ce_engine_kind::resim;
      } else if (value == "auto") {
        ce_engine = sweep::ce_engine_kind::automatic;
      } else {
        std::fprintf(stderr, "unknown --ce-engine %s\n", value.c_str());
        return 1;
      }
    }
  }
  scale = std::min(scale, gen::max_sweep_scale); // keep recorded scale honest

  // Ctrl-C / SIGTERM trip the active sweep's governor: the in-flight
  // query finishes, proven merges are kept, and the partial JSON is
  // still written (with "interrupted": true).
  std::signal(SIGINT, on_interrupt);
  std::signal(SIGTERM, on_interrupt);
  sweep::governor_limits limits;
  limits.deadline_seconds = deadline_seconds;
  limits.conflict_budget_total = conflict_budget_total;

  const auto selected = [&](const std::string& name) {
    if (only.empty()) {
      return true;
    }
    for (const std::string& pat : only) {
      if (name.find(pat) != std::string::npos) {
        return true;
      }
    }
    return false;
  };

  std::printf("Table II: SAT sweeping, %llu initial patterns, scale %u "
              "(generated instances; see bench/README.md)\n\n",
              static_cast<unsigned long long>(base_patterns), scale);
  std::printf("%-13s %11s %5s %7s %7s | %7s %7s | %8s %8s | %7s %7s | "
              "%7s %7s %5s\n",
              "Benchmark", "PI/PO", "Lev", "Gate", "Result", "sat-F",
              "sat-S", "tot-F", "tot-S", "sim-F", "sim-S", "time-F",
              "time-S", "x");

  std::vector<double> g_sat_f, g_sat_s, g_tot_f, g_tot_s, g_sim_f, g_sim_s,
      g_time_f, g_time_s, g_gate, g_result;
  bool all_verified = true;
  std::vector<json_row> json_rows;

  for (const auto& name : gen::sweep_names(scale)) {
    if (g_interrupted.load(std::memory_order_relaxed)) {
      break;
    }
    if (!selected(name)) {
      continue;
    }
    const net::aig_network original = gen::make_sweep_benchmark(name);

    net::aig_network by_fraig = original;
    sweep::resource_governor fraig_gov{limits};
    sweep::fraig_params fraig_params{base_patterns, 1u, conflict_budget};
    fraig_params.governor = &fraig_gov;
    sweep::sweep_stats fs;
    {
      const governed_scope scope{fraig_gov};
      fs = sweep::fraig_sweep(by_fraig, fraig_params);
    }

    net::aig_network by_stp = original;
    sweep::resource_governor stp_gov{limits};
    sweep::stp_sweep_params params;
    params.guided.base_patterns = base_patterns;
    params.ce_engine = ce_engine;
    params.conflict_budget = conflict_budget;
    params.threads = threads;
    params.sat_shards = shards;
    params.sat_reduce = sat_reduce;
    params.sat_inprocess = sat_inprocess;
    params.governor = &stp_gov;
    sweep::sweep_stats ss;
    {
      const governed_scope scope{stp_gov};
      ss = sweep::stp_sweep(by_stp, params);
    }

    // Verification gets its own interrupt-only governor (no deadline or
    // budget: a partial sweep result still deserves a full CEC) so
    // Ctrl-C during the check also winds down cleanly.
    sweep::resource_governor cec_gov{};
    sweep::cec_params cec_config;
    cec_config.governor = &cec_gov;
    bool ok;
    {
      const governed_scope scope{cec_gov};
      ok = sweep::check_equivalence(original, by_fraig, cec_config)
               .equivalent &&
           sweep::check_equivalence(original, by_stp, cec_config).equivalent;
    }

    // Ablation proof: flags off (per-query scratch CNF, unbounded
    // stores, full collapsed arena, no target pruning, no signature
    // phase seeding, unrestricted decisions, flat window support,
    // ungrouped round-2 guidance) *and* the opposite CE engine must
    // land on exactly the same result network size, and be
    // CEC-equivalent — flags and engine choice only change when and
    // where work is paid, or which (equally valid) counter-examples
    // steer the refinement there.
    sweep::sweep_stats as;
    bool ablation_match = false;
    if (ablation) {
      net::aig_network by_stp_off = original;
      sweep::stp_sweep_params off = params;
      off.use_incremental_cnf = false;
      off.sat_clause_budget = 0u;
      off.store_word_budget = 0u;
      off.ce_prune_targets = false;
      off.ce_initial_words = 0u;
      off.use_signature_phase = false;
      off.use_cone_scoped_decisions = false;
      off.window_scale_gates = 0u; // flat window support
      off.guided.round2_group_by_signature = false;
      off.sat_reduce = false;      // epoch-only learnt retention
      off.sat_inprocess = false;   // no between-query simplification
      off.ce_engine = ss.ce_engine_used == sweep::ce_engine_kind::collapsed
                          ? sweep::ce_engine_kind::resim
                          : sweep::ce_engine_kind::collapsed;
      // Fresh governor, same limits: the main run may have spent its
      // budget, and the ablation re-sweep deserves the full allowance.
      sweep::resource_governor abl_gov{limits};
      off.governor = &abl_gov;
      {
        const governed_scope scope{abl_gov};
        as = sweep::stp_sweep(by_stp_off, off);
      }
      ablation_match = as.gates_after == ss.gates_after;
      sweep::resource_governor abl_cec_gov{};
      sweep::cec_params abl_cec_config;
      abl_cec_config.governor = &abl_cec_gov;
      const governed_scope scope{abl_cec_gov};
      ok = ok && ablation_match &&
           sweep::check_equivalence(original, by_stp_off, abl_cec_config)
               .equivalent;
    }
    if (g_interrupted.load(std::memory_order_relaxed)) {
      break; // drop the in-flight row; completed rows are kept
    }
    all_verified = all_verified && ok;

    char pipo[32];
    std::snprintf(pipo, sizeof pipo, "%u/%u", original.num_pis(),
                  original.num_pos());
    // Flag rows whose sweeps ended early — their counters describe a
    // sound partial result, not a full sweep.
    char outcome_note[48] = "";
    if (fs.outcome != sweep::sweep_outcome::complete ||
        ss.outcome != sweep::sweep_outcome::complete) {
      std::snprintf(outcome_note, sizeof outcome_note, "  [F:%s S:%s]",
                    sweep::sweep_outcome_name(fs.outcome),
                    sweep::sweep_outcome_name(ss.outcome));
    }
    std::printf("%-13s %11s %5u %7u %7u | %7llu %7llu | %8llu %8llu | "
                "%7.3f %7.3f | %7.3f %7.3f %5.2f%s%s\n",
                name.c_str(), pipo, fs.levels_before, fs.gates_before,
                ss.gates_after,
                static_cast<unsigned long long>(fs.sat_calls_satisfiable),
                static_cast<unsigned long long>(ss.sat_calls_satisfiable),
                static_cast<unsigned long long>(fs.sat_calls_total),
                static_cast<unsigned long long>(ss.sat_calls_total),
                fs.sim_seconds, ss.sim_seconds, fs.total_seconds,
                ss.total_seconds, ss.total_seconds / fs.total_seconds,
                outcome_note, ok ? "" : "  [CEC FAILED]");

    json_rows.push_back({name, original.num_pis(), original.num_pos(),
                         fs.levels_before, fs.gates_before, ss.gates_after,
                         fs, ss, ok, ablation, as, ablation_match});
    g_sat_f.push_back(static_cast<double>(fs.sat_calls_satisfiable) + 1.0);
    g_sat_s.push_back(static_cast<double>(ss.sat_calls_satisfiable) + 1.0);
    g_tot_f.push_back(static_cast<double>(fs.sat_calls_total) + 1.0);
    g_tot_s.push_back(static_cast<double>(ss.sat_calls_total) + 1.0);
    g_sim_f.push_back(fs.sim_seconds);
    g_sim_s.push_back(ss.sim_seconds);
    g_time_f.push_back(fs.total_seconds);
    g_time_s.push_back(ss.total_seconds);
    g_gate.push_back(fs.gates_before);
    g_result.push_back(ss.gates_after);
  }

  const bool interrupted = g_interrupted.load(std::memory_order_relaxed);
  if (json_rows.empty() && !interrupted) {
    std::fprintf(stderr, "no benchmarks matched --only\n");
    return 1;
  }
  if (!json_rows.empty()) {
    std::printf("\n%-13s gates %.0f -> %.0f (geo)\n", "Geo.",
                geomean(g_gate), geomean(g_result));
    std::printf("satisfiable SAT calls: %8.0f -> %8.0f   Imp. %.2f "
                "(paper: 0.09)\n",
                geomean(g_sat_f), geomean(g_sat_s),
                geomean(g_sat_s) / geomean(g_sat_f));
    std::printf("total SAT calls:       %8.0f -> %8.0f   Imp. %.2f "
                "(paper: 0.60)\n",
                geomean(g_tot_f), geomean(g_tot_s),
                geomean(g_tot_s) / geomean(g_tot_f));
    std::printf("simulation runtime:    %8.3f -> %8.3f   Imp. %.2f "
                "(paper: 1.99)\n",
                geomean(g_sim_f), geomean(g_sim_s),
                geomean(g_sim_s) / geomean(g_sim_f));
    std::printf("total runtime:         %8.3f -> %8.3f   Imp. %.2f "
                "(paper: 0.65)\n",
                geomean(g_time_f), geomean(g_time_s),
                geomean(g_time_s) / geomean(g_time_f));
    std::printf("\nall results CEC-verified: %s\n",
                all_verified ? "yes" : "NO — BUG");
  }
  if (interrupted) {
    std::printf("\ninterrupted — %zu completed row%s kept, in-flight row "
                "dropped\n",
                json_rows.size(), json_rows.size() == 1u ? "" : "s");
  }
  if (!json_path.empty() &&
      !write_json(json_path, base_patterns, scale, json_rows, interrupted)) {
    return 1;
  }
  if (interrupted) {
    return 130; // conventional SIGINT exit status
  }
  return all_verified ? 0 : 1;
}
