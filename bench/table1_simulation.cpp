/// \file table1_simulation.cpp
/// \brief Regenerates Table I: circuit simulation runtime on the EPFL
/// benchmark suite.
///
/// Columns, as in the paper:
///   TA — mean simulation time of the AIG;
///   TL — mean simulation time of the 6-LUT network;
/// each for the mockturtle-style bitwise baseline and the STP simulator,
/// with the speedup factor "x" (baseline / STP), geometric means, and the
/// average geometric-mean improvement ("Imp.").
///
/// The paper uses 10^6 random patterns on an Apple M1; the default here
/// is 2^17 (131072) so the whole table regenerates in laptop-CI time —
/// override with --patterns N.  Expected shape: x ≈ 1 on TA, x ≈ 4-10 on
/// TL (paper: geomean 7.18×).
///
/// `--json <path>` additionally writes per-benchmark gate counts and the
/// four simulation times as machine-readable JSON (perf-trajectory
/// convention; absolute seconds are machine-specific, compare ratios).
#include "core/stp_simulator.hpp"
#include "cut/lut_mapper.hpp"
#include "gen/benchmarks.hpp"
#include "sim/bitwise_sim.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace {

using clock_type = std::chrono::steady_clock;

double time_call(const std::function<void()>& fn)
{
  const auto start = clock_type::now();
  fn();
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

struct row
{
  std::string name;
  uint32_t gates = 0, luts = 0;
  double ta_base = 0, tl_base = 0, ta_stp = 0, tl_stp = 0;
};

double geomean(const std::vector<double>& xs)
{
  double log_sum = 0;
  for (const double x : xs) {
    log_sum += std::log(std::max(x, 1e-9));
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace

int main(int argc, char** argv)
{
  using namespace stps;
  uint64_t num_patterns = uint64_t{1} << 17u;
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--patterns") == 0) {
      num_patterns = std::stoull(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = argv[i + 1];
    }
  }

  std::printf("Table I: circuit simulation, EPFL suite, %llu random "
              "patterns (paper: 10^6)\n",
              static_cast<unsigned long long>(num_patterns));
  std::printf("%-11s | %9s %9s %6s | %9s %9s %6s\n", "Benchmark",
              "TA-base", "TA-STP", "x", "TL-base", "TL-STP", "x");
  std::printf("------------+------------------------------+---------------"
              "---------------\n");

  std::vector<row> rows;
  const core::stp_simulator stp_sim;
  for (const auto& name : gen::epfl_names()) {
    const net::aig_network aig = gen::make_epfl(name);
    const cut::lut_map_result mapped = cut::lut_map(aig, 6u);
    const sim::pattern_set patterns =
        sim::pattern_set::random(aig.num_pis(), num_patterns, 0xEDF1u);

    row r;
    r.name = name;
    r.gates = aig.num_gates();
    r.luts = mapped.klut.num_gates();
    r.ta_base = time_call([&] { sim::simulate_aig(aig, patterns); });
    r.ta_stp = time_call([&] { stp_sim.simulate_aig(aig, patterns); });
    r.tl_base =
        time_call([&] { sim::simulate_klut_bitwise(mapped.klut, patterns); });
    r.tl_stp =
        time_call([&] { stp_sim.simulate_all(mapped.klut, patterns); });
    rows.push_back(r);
    std::printf("%-11s | %9.3f %9.3f %6.2f | %9.3f %9.3f %6.2f\n",
                name.c_str(), r.ta_base, r.ta_stp, r.ta_base / r.ta_stp,
                r.tl_base, r.tl_stp, r.tl_base / r.tl_stp);
  }

  std::vector<double> ta_base, ta_stp, tl_base, tl_stp, ta_x, tl_x;
  for (const row& r : rows) {
    ta_base.push_back(r.ta_base);
    ta_stp.push_back(r.ta_stp);
    tl_base.push_back(r.tl_base);
    tl_stp.push_back(r.tl_stp);
    ta_x.push_back(r.ta_base / r.ta_stp);
    tl_x.push_back(r.tl_base / r.tl_stp);
  }
  std::printf("------------+------------------------------+---------------"
              "---------------\n");
  std::printf("%-11s | %9.3f %9.3f %6s | %9.3f %9.3f %6s\n", "Geo.",
              geomean(ta_base), geomean(ta_stp), "", geomean(tl_base),
              geomean(tl_stp), "");
  std::printf("%-11s | %27.2fx | %27.2fx\n", "Imp.", geomean(ta_x),
              geomean(tl_x));
  std::printf("\npaper reference: TA improvement 0.99x, TL improvement "
              "7.18x (max 22.04x)\n");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"table1_simulation\",\n"
                    "  \"patterns\": %llu,\n  \"benchmarks\": [\n",
                 static_cast<unsigned long long>(num_patterns));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const row& r = rows[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"gates\": %u, \"luts\": %u, "
                   "\"ta_base_seconds\": %.6f, \"ta_stp_seconds\": %.6f, "
                   "\"tl_base_seconds\": %.6f, \"tl_stp_seconds\": %.6f}%s\n",
                   r.name.c_str(), r.gates, r.luts, r.ta_base, r.ta_stp,
                   r.tl_base, r.tl_stp, i + 1u == rows.size() ? "" : ",");
    }
    std::fprintf(f,
                 "  ],\n  \"geomean\": {\"ta_improvement\": %.4f, "
                 "\"tl_improvement\": %.4f}\n}\n",
                 geomean(ta_x), geomean(tl_x));
    std::fclose(f);
  }
  return 0;
}
