/// \file ablation_stp_eval.cpp
/// \brief Ablation D: how the STP evaluation strategy earns the paper's
/// "one matrix pass" speedup.
///
/// Google-benchmark microbenchmarks of one k-LUT evaluated over a block
/// of 64 patterns:
///   PerBitLookup — the conventional path (extract bits, assemble an
///                  index, look one bit up; §III's criticism);
///   StpWordPass  — the word-parallel block-halving matrix pass
///                  (core::stp_evaluate_word, the paper's simulator);
///   StpDensePerPattern — the literal dense-matrix STP product per
///                  pattern (the algebra layer; faithful but slow,
///                  showing why the block form matters).
#include "core/stp_eval.hpp"
#include "stp/logic_matrix.hpp"
#include "stp/matrix.hpp"
#include "tt/operations.hpp"

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

namespace {

using namespace stps;

struct fixture
{
  tt::truth_table table{0u};
  std::vector<uint64_t> inputs;

  explicit fixture(uint32_t k)
      : table{tt::make_random(k, 99u + k)}, inputs(k)
  {
    std::mt19937_64 rng{k};
    for (auto& w : inputs) {
      w = rng();
    }
  }
};

void per_bit_lookup(benchmark::State& state)
{
  const fixture f{static_cast<uint32_t>(state.range(0))};
  const uint32_t k = f.table.num_vars();
  for (auto _ : state) {
    uint64_t out = 0;
    for (uint32_t bit = 0; bit < 64u; ++bit) {
      uint64_t index = 0;
      for (uint32_t i = 0; i < k; ++i) {
        index |= ((f.inputs[i] >> bit) & 1u) << i;
      }
      out |= uint64_t{f.table.bit(index)} << bit;
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}

void stp_word_pass(benchmark::State& state)
{
  const fixture f{static_cast<uint32_t>(state.range(0))};
  core::stp_scratch scratch;
  scratch.reserve(f.table.num_vars());
  for (auto _ : state) {
    const uint64_t out = core::stp_evaluate_word(f.table, f.inputs, scratch);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}

void stp_dense_per_pattern(benchmark::State& state)
{
  const fixture f{static_cast<uint32_t>(state.range(0))};
  const uint32_t k = f.table.num_vars();
  const stp::logic_matrix m{f.table};
  const stp::matrix dense = m.to_dense();
  for (auto _ : state) {
    uint64_t out = 0;
    for (uint32_t bit = 0; bit < 64u; ++bit) {
      stp::matrix acc = dense;
      for (uint32_t i = k; i-- > 0u;) {
        const bool v = (f.inputs[i] >> bit) & 1u;
        acc = stp::semi_tensor_product(acc, stp::matrix::boolean(v));
      }
      out |= uint64_t{acc.at(0, 0)} << bit;
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}

} // namespace

BENCHMARK(per_bit_lookup)->DenseRange(2, 8);
BENCHMARK(stp_word_pass)->DenseRange(2, 8);
BENCHMARK(stp_dense_per_pattern)->DenseRange(2, 6);

BENCHMARK_MAIN();
