/// \file fig1_example.cpp
/// \brief Regenerates Fig. 1 / §III-C: the worked cut-algorithm example.
///
/// Builds the paper's 5-PI / 2-PO NAND circuit, applies the cut
/// algorithm with the paper's 10 patterns (limit = ⌊log2 10⌋ = 3),
/// prints the derived cuts, and exhaustively simulates nodes 7 and 8
/// over their local supports — the quantities Fig. 1(b) illustrates.
#include "core/stp_simulator.hpp"
#include "cut/tree_cuts.hpp"
#include "sim/bitwise_sim.hpp"
#include "tt/truth_table.hpp"

#include <cstdio>
#include <string>

int main()
{
  using namespace stps;
  using knode = net::klut_network::node;

  // Fig. 1(a): six 2-input NANDs over PIs 1..5.
  net::klut_network klut;
  const knode pi[6] = {0,
                       klut.create_pi("1"),
                       klut.create_pi("2"),
                       klut.create_pi("3"),
                       klut.create_pi("4"),
                       klut.create_pi("5")};
  const auto nand2 = tt::truth_table::from_binary("0111");
  const auto mk = [&](knode a, knode b) {
    const knode fis[2] = {a, b};
    return klut.create_node(fis, nand2);
  };
  const knode n6 = mk(pi[1], pi[3]);
  const knode n7 = mk(pi[2], pi[3]);
  const knode n8 = mk(pi[3], pi[4]);
  const knode n9 = mk(pi[4], pi[5]);
  const knode n10 = mk(n6, n7);
  const knode n11 = mk(n8, n9);
  klut.create_po(n10, "po1");
  klut.create_po(n11, "po2");
  std::printf("Fig. 1(a): 5 PIs, 6 NAND nodes (TT 0111 each), 2 POs\n");

  // The paper's 10 simulation patterns (§III-C).
  const std::string bits =
      "01110010111010011011111001100000000111111010000101";
  sim::pattern_set patterns{5u};
  for (uint32_t p = 0; p < 10u; ++p) {
    std::vector<bool> assignment;
    for (uint32_t i = 0; i < 5u; ++i) {
      assignment.push_back(bits[i * 10u + p] == '1');
    }
    patterns.add_pattern(assignment);
  }

  // Specified nodes: 7 and 8 (paper's choice).
  const std::vector<knode> targets{n7, n8};
  core::stp_sim_stats stats;
  const core::stp_simulator simulator;
  const auto result =
      simulator.simulate_specified(klut, targets, patterns, &stats);
  std::printf("limit = log2(10) rounded down = %u (paper: 3)\n",
              stats.leaf_limit);
  std::printf("cut roots after the cut algorithm: %zu "
              "(paper: 4 cuts {6,10},{7},{8},{9,11})\n",
              stats.num_cuts);

  const auto print_sig = [&](const char* label, knode n) {
    std::printf("  node %s signature under the 10 patterns: ", label);
    const auto& words = result.at(n);
    for (uint32_t p = 0; p < 10u; ++p) {
      std::printf("%d", static_cast<int>((words[0] >> p) & 1u));
    }
    std::printf("\n");
  };
  print_sig("7", n7);
  print_sig("8", n8);

  // Fig. 1(b)'s exhaustive view: node 7 over PIs {2,3} (4 patterns) and
  // node 8 over PIs {3,4} (8 patterns with PI 5 in node 8's cut cone —
  // the paper reports scales 2^2 = 4 and 2^3 = 8).
  const auto exhaustive = sim::pattern_set::exhaustive(5u);
  const auto full = sim::simulate_klut_bitwise(klut, exhaustive);
  std::printf("exhaustive TT of node 7 over (2,3): ");
  for (int v3 = 1; v3 >= 0; --v3) {
    for (int v2 = 1; v2 >= 0; --v2) {
      const uint64_t pattern =
          (static_cast<uint64_t>(v2) << 1u) | (static_cast<uint64_t>(v3) << 2u);
      std::printf("%d", static_cast<int>((full[n7][0] >> pattern) & 1u));
    }
  }
  std::printf("  (NAND: 0111 read right-to-left = 1110)\n");

  // Consistency check against the all-node simulation.
  const auto all = simulator.simulate_all(klut, patterns);
  const bool ok = all[n7] == result.at(n7) && all[n8] == result.at(n8);
  std::printf("specified-node signatures match all-node simulation: %s\n",
              ok ? "yes" : "NO — BUG");
  return ok ? 0 : 1;
}
