/// \file ablation_tfi.cpp
/// \brief Ablation C: the transitive-fanin bound of Algorithm 2 (line 1,
/// `n = 1000`).
///
/// Sweeps the TFI limit and reports merges and runtime: the bound caps
/// how far the driver-ordering pass walks per candidate.  Too small and
/// driver preference degrades to plain id order; unbounded and large
/// cones dominate candidate processing.
#include "gen/benchmarks.hpp"
#include "sweep/stp_sweeper.hpp"

#include <cstdio>

int main()
{
  using namespace stps;
  const char* names[] = {"6s100", "b19"};

  std::printf("Ablation C: TFI limit (Alg. 2 line 1; paper fixes 1000)\n\n");
  std::printf("%-10s | %8s | %9s %9s %10s %8s\n", "Benchmark", "limit",
              "merges", "window", "total SAT", "time(s)");

  for (const char* name : names) {
    for (const std::size_t limit : {10u, 100u, 1000u, 100000u}) {
      net::aig_network aig = gen::make_sweep_benchmark(name);
      sweep::stp_sweep_params params;
      params.guided.base_patterns = 1024u;
      params.tfi_limit = limit;
      const sweep::sweep_stats s = sweep::stp_sweep(aig, params);
      std::printf("%-10s | %8zu | %9llu %9llu %10llu %8.3f\n", name, limit,
                  static_cast<unsigned long long>(s.merges),
                  static_cast<unsigned long long>(s.window_merges),
                  static_cast<unsigned long long>(s.sat_calls_total),
                  s.total_seconds);
    }
  }
  return 0;
}
