/// \file ablation_patterns.cpp
/// \brief Ablation B: SAT-guided versus purely random initial patterns
/// (§IV-A's two-round generation).
///
/// Runs the STP sweeper with and without guided patterns on several
/// Table II workloads and reports candidate-quality metrics: satisfiable
/// SAT calls (CEs the sweep had to chase), total SAT calls, and runtime.
/// The paper's claim: guidance removes false constant candidates and
/// near-constant signatures, so the sweep issues far fewer queries.
#include "gen/benchmarks.hpp"
#include "sweep/stp_sweeper.hpp"

#include <cstdio>

int main()
{
  using namespace stps;
  const char* names[] = {"6s20", "beemfwt4b1", "b18", "oski15a07b0s"};

  std::printf("Ablation B: initial pattern generation (STP sweeper)\n\n");
  std::printf("%-13s | %18s | %10s %10s %9s %8s\n", "Benchmark", "patterns",
              "sat calls", "total SAT", "merges", "time(s)");

  for (const char* name : names) {
    for (const bool guided : {false, true}) {
      net::aig_network aig = gen::make_sweep_benchmark(name);
      sweep::stp_sweep_params params;
      params.guided.base_patterns = 1024u;
      params.use_guided_patterns = guided;
      const sweep::sweep_stats s = sweep::stp_sweep(aig, params);
      std::printf("%-13s | %18s | %10llu %10llu %9llu %8.3f\n", name,
                  guided ? "SAT-guided (paper)" : "random only",
                  static_cast<unsigned long long>(s.sat_calls_satisfiable),
                  static_cast<unsigned long long>(s.sat_calls_total),
                  static_cast<unsigned long long>(s.merges),
                  s.total_seconds);
    }
  }
  std::printf("\nguided runs spend extra queries up front (round 1/2) but "
              "chase fewer counter-examples during the sweep.\n");
  return 0;
}
