/// \file simulator.cpp
/// \brief The `simulator` command of the paper's tool (ALSO), rebuilt:
/// load or generate a circuit, map it to k-LUTs, and time the baseline
/// versus the STP simulator.
///
/// Usage:
///   simulator [--aiger FILE | --epfl NAME] [--patterns N] [--k K]
///
/// Defaults: --epfl adder --patterns 65536 --k 6.
#include "core/stp_simulator.hpp"
#include "cut/lut_mapper.hpp"
#include "gen/benchmarks.hpp"
#include "io/aiger.hpp"
#include "network/traversal.hpp"
#include "sim/bitwise_sim.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

int main(int argc, char** argv)
{
  using namespace stps;
  using clock_type = std::chrono::steady_clock;

  std::string epfl_name = "adder";
  std::string aiger_path;
  uint64_t num_patterns = 65536u;
  uint32_t k = 6u;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--aiger") == 0) {
      aiger_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--epfl") == 0) {
      epfl_name = argv[i + 1];
    } else if (std::strcmp(argv[i], "--patterns") == 0) {
      num_patterns = std::stoull(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--k") == 0) {
      k = static_cast<uint32_t>(std::stoul(argv[i + 1]));
    }
  }

  const net::aig_network aig = aiger_path.empty()
                                   ? gen::make_epfl(epfl_name)
                                   : io::read_aiger(aiger_path);
  std::printf("circuit: %u PIs, %u POs, %u gates, depth %u\n",
              aig.num_pis(), aig.num_pos(), aig.num_gates(),
              net::depth(aig));

  const cut::lut_map_result mapped = cut::lut_map(aig, k);
  std::printf("%u-LUT network: %u LUTs\n", k, mapped.klut.num_gates());

  const sim::pattern_set patterns =
      sim::pattern_set::random(aig.num_pis(), num_patterns, 1u);
  std::printf("simulating %llu random patterns\n",
              static_cast<unsigned long long>(num_patterns));

  const auto time_call = [](const char* label, auto&& fn) {
    const auto start = clock_type::now();
    fn();
    const double s =
        std::chrono::duration<double>(clock_type::now() - start).count();
    std::printf("  %-28s %8.3f s\n", label, s);
    return s;
  };

  const core::stp_simulator stp_sim;
  const double ta_base =
      time_call("AIG, bitwise baseline:", [&] { sim::simulate_aig(aig, patterns); });
  const double ta_stp =
      time_call("AIG, STP matrix pass:", [&] { stp_sim.simulate_aig(aig, patterns); });
  const double tl_base = time_call("k-LUT, per-bit baseline:", [&] {
    sim::simulate_klut_bitwise(mapped.klut, patterns);
  });
  const double tl_stp = time_call("k-LUT, STP matrix pass:", [&] {
    stp_sim.simulate_all(mapped.klut, patterns);
  });
  std::printf("speedup: AIG %.2fx, k-LUT %.2fx\n", ta_base / ta_stp,
              tl_base / tl_stp);
  return 0;
}
