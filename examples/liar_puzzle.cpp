/// \file liar_puzzle.cpp
/// \brief The paper's Example 2, end to end, on the STP algebra layer.
///
/// Three persons a, b, c; a liar always lies, an honest person always
/// tells the truth.  a says "b is a liar", b says "c is a liar", c says
/// "both a and b are liars".  Who lies?  The constraints become
///
///   Φ(a,b,c) = (a ↔ ¬b) ∧ (b ↔ ¬c) ∧ (c ↔ ¬a ∧ ¬b),
///
/// whose canonical form M_Φ the paper computes as
/// [0 0 0 0 0 1 0 0; 1 1 1 1 1 0 1 1].  This example rebuilds that
/// matrix with structural matrices and the STP, prints it, and simulates
/// all eight assignments by matrix multiplication.
#include "stp/expression.hpp"
#include "stp/matrix.hpp"

#include <cstdio>

int main()
{
  using namespace stps::stp;

  // x0 = "a is honest", x1 = "b is honest", x2 = "c is honest".
  const expression phi = (iff(v(0), !v(1)) && iff(v(1), !v(2))) &&
                         iff(v(2), !v(0) && !v(1));
  std::printf("Φ(a,b,c) = %s\n", phi.to_string().c_str());

  const logic_matrix m = phi.canonical_form(3u);
  std::printf("canonical form  M_Φ = %s\n", m.to_string().c_str());
  std::printf("paper's matrix  M_Φ = "
              "[0 0 0 0 0 1 0 0; 1 1 1 1 1 0 1 1]\n");

  // Simulate every assignment as an STP product M_Φ ⋉ a ⋉ b ⋉ c.
  std::printf("\n a b c | Φ\n-------+---\n");
  int solutions = 0;
  for (uint32_t x = 0; x < 8u; ++x) {
    const bool a = (x >> 2) & 1u;
    const bool b = (x >> 1) & 1u;
    const bool c = (x >> 0) & 1u;
    matrix acc = m.to_dense();
    for (const bool value : {a, b, c}) {
      acc = acc * matrix::boolean(value); // operator* is the STP
    }
    const bool holds = acc.at(0, 0) == 1u;
    std::printf(" %d %d %d | %d%s\n", a, b, c, holds ? 1 : 0,
                holds ? "   <- consistent" : "");
    solutions += holds;
  }

  std::printf("\n%d consistent assignment(s).\n", solutions);
  std::printf("b is honest; a and c are liars (pattern 010), "
              "matching the paper.\n");
  return solutions == 1 ? 0 : 1;
}
