/// \file equivalence_check.cpp
/// \brief Combinational equivalence checking of two AIGER files, plus a
/// self-contained demo when no files are given.
///
/// Usage: equivalence_check [a.aig b.aig]
///
/// With two AIGER paths, behaves like ABC's `cec a.aig b.aig`.  Without
/// arguments it builds a multiplier, rewrites it redundantly, saves both
/// as AIGER, rereads them, and checks equivalence — exercising the whole
/// I/O + CEC stack.
#include "gen/arithmetic.hpp"
#include "gen/redundancy.hpp"
#include "io/aiger.hpp"
#include "sweep/cec.hpp"

#include <cstdio>
#include <sstream>

namespace {

int report(const stps::sweep::cec_result& result)
{
  if (result.equivalent) {
    std::printf("Networks are equivalent. (%llu SAT calls)\n",
                static_cast<unsigned long long>(result.sat_calls));
    return 0;
  }
  if (result.undecided) {
    std::printf("Undecided: conflict budget exhausted.\n");
    return 2;
  }
  std::printf("NOT equivalent: PO %u differs. Counter-example:",
              *result.failing_po);
  for (const bool b : result.counter_example) {
    std::printf(" %d", b ? 1 : 0);
  }
  std::printf("\n");
  return 1;
}

} // namespace

int main(int argc, char** argv)
{
  using namespace stps;
  if (argc == 3) {
    const net::aig_network a = io::read_aiger(std::string{argv[1]});
    const net::aig_network b = io::read_aiger(std::string{argv[2]});
    std::printf("a: %u gates, b: %u gates\n", a.num_gates(), b.num_gates());
    return report(sweep::check_equivalence(a, b));
  }

  std::printf("no files given; running the self-contained demo\n");
  const net::aig_network mult = gen::make_multiplier(12u);
  const net::aig_network redundant =
      gen::inject_redundancy(mult, {12u, 4u, 99u});
  std::printf("multiplier: %u gates; redundant rewrite: %u gates\n",
              mult.num_gates(), redundant.num_gates());

  // Round-trip both through binary AIGER to exercise the I/O stack.
  std::stringstream sa, sb;
  io::write_aiger_binary(mult, sa);
  io::write_aiger_binary(redundant, sb);
  const net::aig_network a = io::read_aiger(sa);
  const net::aig_network b = io::read_aiger(sb);
  std::printf("after AIGER round-trip: %u / %u gates\n", a.num_gates(),
              b.num_gates());
  return report(sweep::check_equivalence(a, b));
}
