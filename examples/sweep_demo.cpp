/// \file sweep_demo.cpp
/// \brief Side-by-side run of the baseline FRAIG sweeper and the paper's
/// STP sweeper on one Table II-style workload.
///
/// Usage: sweep_demo [benchmark-name]   (default: 6s20; see
/// gen::sweep_names() for the full list)
#include "gen/benchmarks.hpp"
#include "network/traversal.hpp"
#include "sweep/cec.hpp"
#include "sweep/fraig.hpp"
#include "sweep/stp_sweeper.hpp"

#include <cstdio>
#include <string>

int main(int argc, char** argv)
{
  using namespace stps;
  const std::string name = argc > 1 ? argv[1] : "6s20";

  net::aig_network original = gen::make_sweep_benchmark(name);
  std::printf("%s: %u PIs / %u POs, %u gates, %u levels\n\n", name.c_str(),
              original.num_pis(), original.num_pos(), original.num_gates(),
              net::depth(original));

  const auto report = [](const char* engine, const sweep::sweep_stats& s) {
    std::printf("%-8s gates %u -> %u | SAT calls %llu sat / %llu total | "
                "merges %llu (%llu window, %llu const) | "
                "sim %.3fs sat %.3fs total %.3fs\n",
                engine, s.gates_before, s.gates_after,
                static_cast<unsigned long long>(s.sat_calls_satisfiable),
                static_cast<unsigned long long>(s.sat_calls_total),
                static_cast<unsigned long long>(s.merges),
                static_cast<unsigned long long>(s.window_merges),
                static_cast<unsigned long long>(s.constant_merges),
                s.sim_seconds, s.sat_seconds, s.total_seconds);
  };

  // Baseline: &fraig-style.
  net::aig_network by_fraig = original;
  const sweep::sweep_stats fs = sweep::fraig_sweep(by_fraig, {2048u, 1u, -1});
  report("&fraig", fs);

  // Paper: STP-based SAT sweeper.
  net::aig_network by_stp = original;
  sweep::stp_sweep_params params;
  params.guided.base_patterns = 1024u;
  const sweep::sweep_stats ss = sweep::stp_sweep(by_stp, params);
  report("STP", ss);

  std::printf("\nverifying both results with CEC (the paper uses &cec)\n");
  const bool ok_fraig = sweep::check_equivalence(original, by_fraig).equivalent;
  const bool ok_stp = sweep::check_equivalence(original, by_stp).equivalent;
  std::printf("  &fraig result: %s\n", ok_fraig ? "equivalent" : "BROKEN");
  std::printf("  STP result:    %s\n", ok_stp ? "equivalent" : "BROKEN");
  return ok_fraig && ok_stp ? 0 : 1;
}
