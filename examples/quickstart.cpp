/// \file quickstart.cpp
/// \brief Five-minute tour of the library's public API.
///
/// Builds a small circuit, maps it to 6-LUTs, simulates it three ways
/// (bitwise baseline, STP all-node, STP specified-node with the cut
/// algorithm), and SAT-sweeps a redundant variant — the full pipeline of
/// the paper in ~100 lines.
#include "core/stp_simulator.hpp"
#include "cut/lut_mapper.hpp"
#include "gen/arithmetic.hpp"
#include "gen/redundancy.hpp"
#include "network/convert.hpp"
#include "network/traversal.hpp"
#include "sim/bitwise_sim.hpp"
#include "sweep/cec.hpp"
#include "sweep/stp_sweeper.hpp"

#include <cstdio>

int main()
{
  using namespace stps;

  // 1. Build a circuit: a 32-bit ripple-carry adder AIG.
  net::aig_network adder = gen::make_adder(32u);
  std::printf("adder: %u PIs, %u POs, %u AND gates, depth %u\n",
              adder.num_pis(), adder.num_pos(), adder.num_gates(),
              net::depth(adder));

  // 2. Map it into a 6-LUT network (the object the paper simulates).
  const cut::lut_map_result mapped = cut::lut_map(adder, 6u);
  std::printf("6-LUT mapping: %u LUTs (max fanin %u)\n",
              mapped.klut.num_gates(), mapped.klut.max_fanin_size());

  // 3. Simulate 4096 random patterns, baseline vs STP matrix pass.
  const sim::pattern_set patterns =
      sim::pattern_set::random(adder.num_pis(), 4096u, 1u);
  const sim::signature_store baseline =
      sim::simulate_klut_bitwise(mapped.klut, patterns);
  const core::stp_simulator stp_sim;
  const sim::signature_store stp = stp_sim.simulate_all(mapped.klut, patterns);
  bool agree = true;
  mapped.klut.foreach_gate([&](net::klut_network::node n) {
    agree = agree && baseline[n] == stp[n];
  });
  std::printf("bitwise vs STP signatures agree: %s\n",
              agree ? "yes" : "NO (bug!)");

  // 4. Specified-node simulation (Algorithm 1, mode s): only two nodes.
  const auto conv = net::aig_to_klut(adder);
  std::vector<net::klut_network::node> targets;
  conv.klut.foreach_gate([&](net::klut_network::node n) {
    if (targets.size() < 2u && n % 37u == 0u) {
      targets.push_back(n);
    }
  });
  core::stp_sim_stats stats;
  const auto specified =
      stp_sim.simulate_specified(conv.klut, targets, patterns, &stats);
  std::printf("specified-node run: leaf limit %u, %zu cuts, %zu simulated\n",
              stats.leaf_limit, stats.num_cuts, stats.num_simulated);
  (void)specified;

  // 5. SAT-sweep a redundancy-injected variant and verify with CEC.
  net::aig_network redundant = gen::inject_redundancy(adder, {10u, 4u, 7u});
  const net::aig_network before = redundant;
  std::printf("injected redundancy: %u gates\n", redundant.num_gates());
  sweep::stp_sweep_params params;
  params.guided.base_patterns = 512u;
  const sweep::sweep_stats sw = sweep::stp_sweep(redundant, params);
  std::printf("after STP sweeping:  %u gates "
              "(%llu merges, %llu by exhaustive windows, %llu SAT calls)\n",
              redundant.num_gates(),
              static_cast<unsigned long long>(sw.merges),
              static_cast<unsigned long long>(sw.window_merges),
              static_cast<unsigned long long>(sw.sat_calls_total));
  const sweep::cec_result cec = sweep::check_equivalence(before, redundant);
  // Tri-state verdict: "not equivalent" is claimed only on a witnessed
  // difference, never when a budget merely ran out.
  std::printf("CEC verdict: %s\n",
              cec.equivalent          ? "equivalent"
              : cec.proven_inequivalent() ? "NOT EQUIVALENT (bug!)"
                                          : "undecided (budget)");
  return cec.equivalent && agree ? 0 : 1;
}
