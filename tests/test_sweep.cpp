#include "gen/arithmetic.hpp"
#include "gen/benchmarks.hpp"
#include "gen/random_logic.hpp"
#include "gen/redundancy.hpp"
#include "sweep/cec.hpp"
#include "sweep/fraig.hpp"
#include "sweep/sat_patterns.hpp"
#include "sweep/stp_sweeper.hpp"

#include <gtest/gtest.h>

namespace {

using namespace stps;

net::aig_network redundant_test_circuit(uint64_t seed, uint32_t gates = 800u)
{
  const auto base = gen::make_random_logic({12u, 10u, gates, seed, 25u});
  return gen::inject_redundancy(base, {8u, 4u, seed});
}

TEST(GuidedPatterns, ProvenConstantsAreRealConstants)
{
  const auto aig = redundant_test_circuit(5u);
  sat::cnf_manager cnf{aig};
  sweep::guided_pattern_config config;
  config.base_patterns = 256u;
  const auto result = sweep::sat_guided_patterns(aig, cnf, config);

  // Hidden constants must be found (the generator plants several).
  EXPECT_FALSE(result.proven_constants.empty());
  for (const auto& [n, value] : result.proven_constants) {
    // Verify with an independent solver instance.
    sat::solver s2;
    sat::aig_encoder e2{aig, s2};
    EXPECT_EQ(e2.prove_constant(net::signal{n, false}, value, -1),
              sat::result::unsat)
        << "node " << n;
  }
  EXPECT_EQ(result.patterns.num_patterns(),
            config.base_patterns + result.patterns_added);
}

TEST(Fraig, SweepsRedundantCircuitSoundly)
{
  auto aig = redundant_test_circuit(7u);
  const net::aig_network original = aig;
  const uint32_t before = aig.num_gates();

  const auto stats = sweep::fraig_sweep(aig, {512u, 1u, -1});
  EXPECT_EQ(stats.gates_before, before);
  EXPECT_EQ(stats.gates_after, aig.num_gates());
  EXPECT_LT(aig.num_gates(), before); // redundancy must be removed
  EXPECT_GT(stats.merges, 0u);
  EXPECT_GT(stats.sat_calls_total, 0u);

  const auto cec = sweep::check_equivalence(original, aig);
  EXPECT_TRUE(cec.equivalent) << "fraig broke the circuit";
}

TEST(StpSweep, SweepsRedundantCircuitSoundly)
{
  auto aig = redundant_test_circuit(7u);
  const net::aig_network original = aig;
  const uint32_t before = aig.num_gates();

  sweep::stp_sweep_params params;
  params.guided.base_patterns = 512u;
  const auto stats = sweep::stp_sweep(aig, params);
  EXPECT_LT(aig.num_gates(), before);
  EXPECT_GT(stats.merges, 0u);

  const auto cec = sweep::check_equivalence(original, aig);
  EXPECT_TRUE(cec.equivalent) << "stp_sweep broke the circuit";
}

TEST(StpSweep, MatchesFraigQuality)
{
  // Paper: "the number of Result remains consistent across both engines".
  for (const uint64_t seed : {11u, 12u, 13u}) {
    auto a1 = redundant_test_circuit(seed, 500u);
    auto a2 = a1;
    sweep::fraig_sweep(a1, {512u, 1u, -1});
    sweep::stp_sweep_params params;
    params.guided.base_patterns = 512u;
    sweep::stp_sweep(a2, params);
    EXPECT_EQ(a1.num_gates(), a2.num_gates()) << "seed " << seed;
  }
}

TEST(StpSweep, ReducesSatisfiableSatCalls)
{
  // The headline mechanism of Table II: exhaustive windows cut the
  // number of CE-producing (satisfiable) equivalence queries.
  auto a1 = redundant_test_circuit(21u, 1200u);
  auto a2 = a1;
  const auto base = sweep::fraig_sweep(a1, {512u, 1u, -1});
  sweep::stp_sweep_params params;
  params.guided.base_patterns = 512u;
  const auto ours = sweep::stp_sweep(a2, params);
  EXPECT_LE(ours.sat_calls_satisfiable, base.sat_calls_satisfiable);
}

TEST(StpSweep, WindowMergesHappen)
{
  auto aig = redundant_test_circuit(31u);
  sweep::stp_sweep_params params;
  params.guided.base_patterns = 256u;
  const auto stats = sweep::stp_sweep(aig, params);
  EXPECT_GT(stats.window_merges, 0u)
      << "exhaustive window resolution never fired";
}

TEST(StpSweep, BatchedCeMatchesEagerExactly)
{
  // Batched counter-example refinement defers class re-partitioning
  // (conditions a/b/c of the candidate loop) but must not change any
  // decision: same SAT queries, same merges, same final network as the
  // seed's eager one-CE-per-word behavior.
  for (const uint64_t seed : {3u, 17u, 29u}) {
    auto eager = redundant_test_circuit(seed, 900u);
    auto batched = eager;
    const net::aig_network original = eager;

    sweep::stp_sweep_params p_eager;
    p_eager.guided.base_patterns = 512u;
    p_eager.use_batched_ce_refinement = false;
    sweep::stp_sweep_params p_batched = p_eager;
    p_batched.use_batched_ce_refinement = true;

    const auto se = sweep::stp_sweep(eager, p_eager);
    const auto sb = sweep::stp_sweep(batched, p_batched);

    EXPECT_EQ(se.merges, sb.merges) << "seed " << seed;
    EXPECT_EQ(se.sat_calls_total, sb.sat_calls_total) << "seed " << seed;
    EXPECT_EQ(se.sat_calls_satisfiable, sb.sat_calls_satisfiable)
        << "seed " << seed;
    EXPECT_EQ(eager.num_gates(), batched.num_gates()) << "seed " << seed;
    EXPECT_TRUE(sweep::check_equivalence(original, batched).equivalent)
        << "seed " << seed;
  }
}

TEST(StpSweep, AblationFlagsStillSound)
{
  for (int variant = 0; variant < 3; ++variant) {
    auto aig = redundant_test_circuit(40u + variant, 400u);
    const net::aig_network original = aig;
    sweep::stp_sweep_params params;
    params.guided.base_patterns = 256u;
    params.use_guided_patterns = variant != 0;
    params.use_window_resolution = variant != 1;
    params.ce_engine = variant != 2 ? sweep::ce_engine_kind::automatic
                                    : sweep::ce_engine_kind::collapsed;
    sweep::stp_sweep(aig, params);
    const auto cec = sweep::check_equivalence(original, aig);
    EXPECT_TRUE(cec.equivalent) << "variant " << variant;
  }
}

TEST(StpSweep, TinyConflictBudgetMarksDontTouch)
{
  auto aig = gen::inject_redundancy(gen::make_multiplier(10u),
                                    {10u, 2u, 3u});
  const net::aig_network original = aig;
  sweep::stp_sweep_params params;
  params.guided.base_patterns = 128u;
  params.guided.conflict_budget = 1;
  params.conflict_budget = 1; // almost everything times out
  params.use_window_resolution = false;
  const auto stats = sweep::stp_sweep(aig, params);
  (void)stats;
  // Soundness is non-negotiable even when everything is unDET.
  const auto cec = sweep::check_equivalence(original, aig);
  EXPECT_TRUE(cec.equivalent);
}

TEST(StpSweep, EffectiveWindowSupportScalesWithGateCount)
{
  sweep::stp_sweep_params params; // base 15, +1 per quadrupling from 30k
  EXPECT_EQ(params.effective_window_support(1'000u), 15u);
  EXPECT_EQ(params.effective_window_support(29'999u), 15u);
  EXPECT_EQ(params.effective_window_support(30'000u), 16u);
  EXPECT_EQ(params.effective_window_support(120'000u), 17u);
  EXPECT_EQ(params.effective_window_support(480'000u), 18u);
  EXPECT_EQ(params.effective_window_support(1'919'999u), 18u);
  EXPECT_EQ(params.effective_window_support(1'920'000u), 19u); // scale-4 tier
  EXPECT_EQ(params.effective_window_support(1u << 30u), 19u);  // capped
  params.window_scale_gates = 0u; // scaling disabled
  EXPECT_EQ(params.effective_window_support(1u << 30u), 15u);
  params.window_scale_gates = 30'000u;
  params.window_max_support_scaled = 14u; // cap below base: base wins
  EXPECT_EQ(params.effective_window_support(1u << 30u), 15u);
}

TEST(StpSweep, WindowSupportLimitIsResultInvariant)
{
  // Window resolution is exact, so a larger support limit only moves
  // merges from SAT to windows — the result network cannot change.
  auto base = gen::inject_redundancy(
      gen::make_random_logic({14u, 6u, 380u, 0x31d0u, 35u}), {12u, 2u, 7u});
  const net::aig_network original = base;
  uint32_t gates[3];
  uint64_t window_merges[3];
  const uint32_t supports[3] = {11u, 15u, 17u};
  for (int i = 0; i < 3; ++i) {
    net::aig_network aig = original;
    sweep::stp_sweep_params params;
    params.guided.base_patterns = 128u;
    params.window_max_support = supports[i];
    params.window_scale_gates = 0u; // pin the limit exactly
    const auto stats = sweep::stp_sweep(aig, params);
    gates[i] = aig.num_gates();
    window_merges[i] = stats.window_merges;
    EXPECT_TRUE(sweep::check_equivalence(original, aig).equivalent)
        << "support " << supports[i];
  }
  EXPECT_EQ(gates[0], gates[1]);
  EXPECT_EQ(gates[1], gates[2]);
  // Wider windows resolve at least as many classes exhaustively.
  EXPECT_LE(window_merges[0], window_merges[2]);
}

TEST(Sweep, NamedSuiteSmoke)
{
  // One small named Table II benchmark end to end.
  auto aig = gen::make_sweep_benchmark("6s20");
  const net::aig_network original = aig;
  const uint32_t before = aig.num_gates();
  sweep::stp_sweep_params params;
  params.guided.base_patterns = 256u;
  sweep::stp_sweep(aig, params);
  EXPECT_LT(aig.num_gates(), before);
  EXPECT_TRUE(sweep::check_equivalence(original, aig).equivalent);
}

} // namespace
