#include "sim/signature_store.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace {

using namespace stps;
using sim::signature_store;

TEST(SignatureStore, ResetZeroInitializes)
{
  signature_store sig(5u, 3u);
  EXPECT_EQ(sig.size(), 5u);
  EXPECT_EQ(sig.num_words(), 3u);
  for (std::size_t n = 0; n < sig.size(); ++n) {
    for (std::size_t w = 0; w < sig.num_words(); ++w) {
      EXPECT_EQ(sig.word(n, w), 0u);
    }
  }
}

TEST(SignatureStore, RowSpansAliasTheStore)
{
  signature_store sig(4u, 2u);
  auto row = sig.row(2u);
  ASSERT_EQ(row.size(), 2u);
  row[1] = 0xdeadu;
  EXPECT_EQ(sig.word(2u, 1u), 0xdeadu);
  // Neighboring rows are unaffected.
  EXPECT_EQ(sig.word(1u, 1u), 0u);
  EXPECT_EQ(sig.word(3u, 1u), 0u);
  // The const view sees the same data.
  EXPECT_EQ(sig[2u][1u], 0xdeadu);
}

TEST(SignatureStore, AssignAndFillRow)
{
  signature_store sig(3u, 2u);
  const std::vector<uint64_t> values{0x1u, 0x2u};
  sig.assign_row(1u, values);
  EXPECT_EQ(sig[1u], values);
  sig.fill_row(2u, ~uint64_t{0});
  EXPECT_EQ(sig.word(2u, 0u), ~uint64_t{0});
  EXPECT_EQ(sig.word(2u, 1u), ~uint64_t{0});
  EXPECT_THROW(sig.assign_row(0u, std::vector<uint64_t>{1u}),
               std::invalid_argument);
}

TEST(SignatureStore, AppendWordGrowsEveryRowZeroed)
{
  signature_store sig(6u, 1u);
  for (std::size_t n = 0; n < sig.size(); ++n) {
    sig.word(n, 0u) = n + 1u;
  }
  // Force several grows past the initial stride.
  for (std::size_t extra = 0; extra < 10u; ++extra) {
    sig.append_word();
    EXPECT_EQ(sig.num_words(), extra + 2u);
    for (std::size_t n = 0; n < sig.size(); ++n) {
      EXPECT_EQ(sig.word(n, 0u), n + 1u) << "row survived grow " << extra;
      EXPECT_EQ(sig.word(n, extra + 1u), 0u) << "fresh word zeroed";
    }
  }
}

TEST(SignatureStore, TailMaskContract)
{
  EXPECT_EQ(sim::tail_mask(64u), ~uint64_t{0});
  EXPECT_EQ(sim::tail_mask(128u), ~uint64_t{0});
  EXPECT_EQ(sim::tail_mask(1u), 0x1u);
  EXPECT_EQ(sim::tail_mask(65u), 0x1u);
  EXPECT_EQ(sim::tail_mask(70u), 0x3fu);
}

TEST(SignatureStore, MaskTailEnforcesCanonicalTail)
{
  signature_store sig(3u, 2u);
  for (std::size_t n = 0; n < sig.size(); ++n) {
    sig.fill_row(n, ~uint64_t{0});
  }
  sig.mask_tail(70u); // 6 valid bits in the last word
  for (std::size_t n = 0; n < sig.size(); ++n) {
    EXPECT_EQ(sig.word(n, 0u), ~uint64_t{0});
    EXPECT_EQ(sig.word(n, 1u), 0x3fu);
  }
  // Word-aligned pattern counts leave the last word untouched.
  signature_store full(1u, 1u);
  full.fill_row(0u, ~uint64_t{0});
  full.mask_tail(64u);
  EXPECT_EQ(full.word(0u, 0u), ~uint64_t{0});
}

TEST(SignatureStore, TailWordsAreWordMajorAndMaskable)
{
  signature_store sig(4u, 2u);
  EXPECT_EQ(sig.base_words(), 2u);
  for (std::size_t n = 0; n < sig.size(); ++n) {
    sig.word(n, 1u) = 0x100u + n;
  }
  sig.append_word(); // word 2 lives in a word-major tail block
  EXPECT_EQ(sig.num_words(), 3u);
  EXPECT_EQ(sig.base_words(), 2u);
  for (std::size_t n = 0; n < sig.size(); ++n) {
    EXPECT_EQ(sig.word(n, 2u), 0u);
    sig.word(n, 2u) = ~uint64_t{0};
  }
  // The contiguous tail view aliases the same words.
  const auto block = sig.tail_word(2u);
  ASSERT_EQ(block.size(), sig.size());
  EXPECT_EQ(block[3], ~uint64_t{0});
  // mask_tail lands on the tail block when it holds the last word.
  sig.mask_tail(130u); // 2 valid bits in word 2
  for (std::size_t n = 0; n < sig.size(); ++n) {
    EXPECT_EQ(sig.word(n, 2u), 0x3u);
    EXPECT_EQ(sig.word(n, 1u), 0x100u + n) << "base words untouched";
  }
  // Row views dispatch across the base/tail boundary.
  EXPECT_EQ(sig[1u], std::vector<uint64_t>({0u, 0x101u, 0x3u}));
}

TEST(SignatureStore, RowViewComparisons)
{
  signature_store a(2u, 2u);
  signature_store b(2u, 2u);
  a.word(0u, 0u) = 7u;
  b.word(1u, 0u) = 7u;
  EXPECT_TRUE(a[0u] == b[1u]);
  EXPECT_FALSE(a[0u] == b[0u]);
  EXPECT_TRUE(a[0u] == std::vector<uint64_t>({7u, 0u}));
}

} // namespace
