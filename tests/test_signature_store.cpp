#include "sim/signature_store.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace {

using namespace stps;
using sim::signature_store;

TEST(SignatureStore, ResetZeroInitializes)
{
  signature_store sig(5u, 3u);
  EXPECT_EQ(sig.size(), 5u);
  EXPECT_EQ(sig.num_words(), 3u);
  for (std::size_t n = 0; n < sig.size(); ++n) {
    for (std::size_t w = 0; w < sig.num_words(); ++w) {
      EXPECT_EQ(sig.word(n, w), 0u);
    }
  }
}

TEST(SignatureStore, RowSpansAliasTheStore)
{
  signature_store sig(4u, 2u);
  auto row = sig.row(2u);
  ASSERT_EQ(row.size(), 2u);
  row[1] = 0xdeadu;
  EXPECT_EQ(sig.word(2u, 1u), 0xdeadu);
  // Neighboring rows are unaffected.
  EXPECT_EQ(sig.word(1u, 1u), 0u);
  EXPECT_EQ(sig.word(3u, 1u), 0u);
  // The const view sees the same data.
  EXPECT_EQ(sig[2u][1u], 0xdeadu);
}

TEST(SignatureStore, AssignAndFillRow)
{
  signature_store sig(3u, 2u);
  const std::vector<uint64_t> values{0x1u, 0x2u};
  sig.assign_row(1u, values);
  EXPECT_EQ(sig[1u], values);
  sig.fill_row(2u, ~uint64_t{0});
  EXPECT_EQ(sig.word(2u, 0u), ~uint64_t{0});
  EXPECT_EQ(sig.word(2u, 1u), ~uint64_t{0});
  EXPECT_THROW(sig.assign_row(0u, std::vector<uint64_t>{1u}),
               std::invalid_argument);
}

TEST(SignatureStore, AppendWordGrowsEveryRowZeroed)
{
  signature_store sig(6u, 1u);
  for (std::size_t n = 0; n < sig.size(); ++n) {
    sig.word(n, 0u) = n + 1u;
  }
  // Force several grows past the initial stride.
  for (std::size_t extra = 0; extra < 10u; ++extra) {
    sig.append_word();
    EXPECT_EQ(sig.num_words(), extra + 2u);
    for (std::size_t n = 0; n < sig.size(); ++n) {
      EXPECT_EQ(sig.word(n, 0u), n + 1u) << "row survived grow " << extra;
      EXPECT_EQ(sig.word(n, extra + 1u), 0u) << "fresh word zeroed";
    }
  }
}

TEST(SignatureStore, TailMaskContract)
{
  EXPECT_EQ(sim::tail_mask(64u), ~uint64_t{0});
  EXPECT_EQ(sim::tail_mask(128u), ~uint64_t{0});
  EXPECT_EQ(sim::tail_mask(1u), 0x1u);
  EXPECT_EQ(sim::tail_mask(65u), 0x1u);
  EXPECT_EQ(sim::tail_mask(70u), 0x3fu);
}

TEST(SignatureStore, MaskTailEnforcesCanonicalTail)
{
  signature_store sig(3u, 2u);
  for (std::size_t n = 0; n < sig.size(); ++n) {
    sig.fill_row(n, ~uint64_t{0});
  }
  sig.mask_tail(70u); // 6 valid bits in the last word
  for (std::size_t n = 0; n < sig.size(); ++n) {
    EXPECT_EQ(sig.word(n, 0u), ~uint64_t{0});
    EXPECT_EQ(sig.word(n, 1u), 0x3fu);
  }
  // Word-aligned pattern counts leave the last word untouched.
  signature_store full(1u, 1u);
  full.fill_row(0u, ~uint64_t{0});
  full.mask_tail(64u);
  EXPECT_EQ(full.word(0u, 0u), ~uint64_t{0});
}

TEST(SignatureStore, TailWordsAreWordMajorAndMaskable)
{
  signature_store sig(4u, 2u);
  EXPECT_EQ(sig.base_words(), 2u);
  for (std::size_t n = 0; n < sig.size(); ++n) {
    sig.word(n, 1u) = 0x100u + n;
  }
  sig.append_word(); // word 2 lives in a word-major tail block
  EXPECT_EQ(sig.num_words(), 3u);
  EXPECT_EQ(sig.base_words(), 2u);
  for (std::size_t n = 0; n < sig.size(); ++n) {
    EXPECT_EQ(sig.word(n, 2u), 0u);
    sig.word(n, 2u) = ~uint64_t{0};
  }
  // The contiguous tail view aliases the same words.
  const auto block = sig.tail_word(2u);
  ASSERT_EQ(block.size(), sig.size());
  EXPECT_EQ(block[3], ~uint64_t{0});
  // mask_tail lands on the tail block when it holds the last word.
  sig.mask_tail(130u); // 2 valid bits in word 2
  for (std::size_t n = 0; n < sig.size(); ++n) {
    EXPECT_EQ(sig.word(n, 2u), 0x3u);
    EXPECT_EQ(sig.word(n, 1u), 0x100u + n) << "base words untouched";
  }
  // Row views dispatch across the base/tail boundary.
  EXPECT_EQ(sig[1u], std::vector<uint64_t>({0u, 0x101u, 0x3u}));
}

TEST(SignatureStore, RowViewComparisons)
{
  signature_store a(2u, 2u);
  signature_store b(2u, 2u);
  a.word(0u, 0u) = 7u;
  b.word(1u, 0u) = 7u;
  EXPECT_TRUE(a[0u] == b[1u]);
  EXPECT_FALSE(a[0u] == b[0u]);
  EXPECT_TRUE(a[0u] == std::vector<uint64_t>({7u, 0u}));
}

TEST(SignatureStore, TrimFreesAbsorbedWordsAndCounts)
{
  signature_store sig(8u, 2u); // 2 base words
  sig.append_word();           // words 2, 3: tail blocks
  sig.append_word();
  for (std::size_t n = 0; n < sig.size(); ++n) {
    for (std::size_t w = 0; w < 4u; ++w) {
      sig.word(n, w) = 100u * n + w;
    }
  }
  const std::size_t full_bytes = 8u * 4u * sizeof(uint64_t);
  EXPECT_EQ(sig.live_bytes(), full_bytes);
  EXPECT_EQ(sig.peak_bytes(), full_bytes);
  EXPECT_EQ(sig.live_words(), 4u);
  EXPECT_EQ(sig.words_trimmed(), 0u);
  EXPECT_EQ(sig.first_live_word(), 0u);

  // first_live inside the base: node-major rows cannot drop single
  // words, so nothing is freed yet — but the high-water mark moves.
  sig.trim_words(1u);
  EXPECT_EQ(sig.first_live_word(), 1u);
  EXPECT_EQ(sig.live_words(), 4u);
  EXPECT_EQ(sig.word(3u, 1u), 301u);

  // Reaching the base boundary frees the whole arena; tail word 2 is
  // also below the mark and its block is dropped individually.
  sig.trim_words(3u);
  EXPECT_EQ(sig.first_live_word(), 3u);
  EXPECT_EQ(sig.words_trimmed(), 3u);
  EXPECT_EQ(sig.live_words(), 1u);
  EXPECT_EQ(sig.live_bytes(), 8u * sizeof(uint64_t));
  EXPECT_EQ(sig.peak_bytes(), full_bytes);
  // Trimmed reads are well-defined zeros through the const accessor
  // (the mutable accessor asserts — writing a trimmed word is a bug);
  // live words are intact, and num_words / indices never shift.
  const signature_store& csig = sig;
  EXPECT_EQ(csig.num_words(), 4u);
  EXPECT_EQ(csig.word(5u, 0u), 0u);
  EXPECT_EQ(csig.word(5u, 2u), 0u);
  EXPECT_EQ(csig.word(5u, 3u), 503u);

  // Trimming is monotone: a lower mark is a no-op.
  sig.trim_words(1u);
  EXPECT_EQ(sig.first_live_word(), 3u);
  EXPECT_EQ(sig.word(5u, 3u), 503u);

  // Appending after a trim keeps working (new tail block index 4).
  sig.append_word();
  sig.word(5u, 4u) = 77u;
  EXPECT_EQ(sig.word(5u, 4u), 77u);
  EXPECT_EQ(sig.live_words(), 2u);
}

/// Property: under random append/write/trim interleavings, every live
/// word of the trimmed store matches a never-trimmed reference store fed
/// the identical operations, and the counters stay consistent.
TEST(SignatureStore, TrimInterleavingsMatchNeverTrimmedReference)
{
  for (uint64_t seed = 0; seed < 20u; ++seed) {
    std::mt19937_64 rng{0x7123u + seed};
    const std::size_t nodes = 1u + rng() % 24u;
    const std::size_t base = rng() % 5u; // 0 = fully word-major store
    signature_store trimmed(nodes, base);
    signature_store reference(nodes, base);

    for (std::size_t step = 0; step < 120u; ++step) {
      const uint64_t action = rng() % 4u;
      if (action == 0u) {
        trimmed.append_word();
        reference.append_word();
      } else if (action <= 2u &&
                 trimmed.num_words() > trimmed.first_live_word()) {
        // Write into a random *live* word of both stores.
        const std::size_t lo = trimmed.first_live_word();
        const std::size_t w = lo + rng() % (trimmed.num_words() - lo);
        const std::size_t n = rng() % nodes;
        const uint64_t value = rng();
        trimmed.word(n, w) = value;
        reference.word(n, w) = value;
      } else {
        trimmed.trim_words(rng() % (trimmed.num_words() + 1u));
      }
      ASSERT_EQ(trimmed.num_words(), reference.num_words());
      ASSERT_EQ(trimmed.live_words() + trimmed.words_trimmed(),
                trimmed.num_words());
      ASSERT_LE(trimmed.live_bytes(), reference.live_bytes());
      for (std::size_t n = 0; n < nodes; ++n) {
        for (std::size_t w = trimmed.first_live_word();
             w < trimmed.num_words(); ++w) {
          ASSERT_EQ(trimmed.word(n, w), reference.word(n, w))
              << "seed " << seed << " node " << n << " word " << w;
        }
      }
    }
    EXPECT_EQ(reference.words_trimmed(), 0u);
    EXPECT_EQ(reference.peak_bytes(), reference.live_bytes());
  }
}

} // namespace
