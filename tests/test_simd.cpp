/// \file test_simd.cpp
/// \brief SIMD-vs-scalar equivalence for the dispatched word kernels.
///
/// Every kernel in sim/simd.hpp must be byte-identical between the
/// scalar implementation and whatever level the CPU dispatches to —
/// that is the whole contract that makes dispatch a pure throughput
/// decision.  The properties run each kernel at every *available*
/// level over randomized shapes that cover the vector width boundaries
/// (counts 0/1 .. 2·lanes+1), the masked final word, unaligned-ish
/// strides, and the resim plan's safe/unsafe 4-block split.  On a CPU
/// without AVX2 the suite degenerates to scalar-vs-scalar and
/// `force_level(avx2)` must throw instead of misdispatching.
#include "sim/bitwise_sim.hpp"
#include "sim/patterns.hpp"
#include "sim/signature_store.hpp"
#include "sim/simd.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

namespace {

using namespace stps;

std::vector<sim::simd::level> available_levels()
{
  std::vector<sim::simd::level> levels{sim::simd::level::scalar};
  if (sim::simd::detected_level() == sim::simd::level::avx2) {
    levels.push_back(sim::simd::level::avx2);
  }
  return levels;
}

/// Runs \p body once per available level with dispatch pinned to it,
/// and always restores the detected dispatch afterwards.
template <typename Fn>
void for_each_level(const Fn& body)
{
  for (const sim::simd::level l : available_levels()) {
    sim::simd::force_level(l);
    body(l);
  }
  sim::simd::reset_level();
}

TEST(Simd, ForceLevelRoundTrip)
{
  const sim::simd::level detected = sim::simd::detected_level();
  EXPECT_EQ(sim::simd::active_level(), detected);
  sim::simd::force_level(sim::simd::level::scalar);
  EXPECT_EQ(sim::simd::active_level(), sim::simd::level::scalar);
  sim::simd::reset_level();
  EXPECT_EQ(sim::simd::active_level(), detected);
  if (detected != sim::simd::level::avx2) {
    EXPECT_THROW(sim::simd::force_level(sim::simd::level::avx2),
                 std::invalid_argument);
  }
  EXPECT_STREQ(sim::simd::level_name(sim::simd::level::scalar), "scalar");
  EXPECT_STREQ(sim::simd::level_name(sim::simd::level::avx2), "avx2");
}

TEST(Simd, AndWordsMatchesScalarAtEveryCount)
{
  std::mt19937_64 rng{0x51d0u};
  for (std::size_t count = 0; count <= 9u; ++count) {
    std::vector<uint64_t> a(count), b(count);
    for (auto& w : a) {
      w = rng();
    }
    for (auto& w : b) {
      w = rng();
    }
    for (const uint64_t ca : {uint64_t{0}, ~uint64_t{0}}) {
      for (const uint64_t cb : {uint64_t{0}, ~uint64_t{0}}) {
        std::vector<uint64_t> expect(count);
        for (std::size_t i = 0; i < count; ++i) {
          expect[i] = (a[i] ^ ca) & (b[i] ^ cb);
        }
        for_each_level([&](sim::simd::level) {
          std::vector<uint64_t> out(count, 0xdeadbeefu);
          sim::simd::and_words(out.data(), a.data(), ca, b.data(), cb,
                               count);
          EXPECT_EQ(out, expect) << "count " << count;
        });
      }
    }
  }
}

TEST(Simd, RowsEqualNormalizedMatchesScalar)
{
  std::mt19937_64 gen{0x0515u};
  for (std::size_t count = 1; count <= 9u; ++count) {
    for (int variant = 0; variant < 8; ++variant) {
      std::vector<uint64_t> a(count), b(count);
      for (auto& w : a) {
        w = gen();
      }
      const uint64_t flip = (variant & 1) != 0 ? ~uint64_t{0} : 0u;
      // Half the variants are equal rows, half differ somewhere —
      // including differences only in the masked-out tail bits, which
      // must NOT break equality.
      const uint64_t last_mask =
          (variant & 2) != 0 ? sim::tail_mask(17u) : ~uint64_t{0};
      for (std::size_t i = 0; i < count; ++i) {
        b[i] = a[i] ^ flip;
      }
      bool expect_equal = true;
      if ((variant & 4) != 0) {
        const std::size_t where = gen() % count;
        const bool masked_only = (variant & 2) != 0 && where + 1u == count;
        b[where] ^= masked_only ? ~sim::tail_mask(17u) : uint64_t{1} << 3u;
        expect_equal = masked_only;
      }
      for_each_level([&](sim::simd::level l) {
        EXPECT_EQ(sim::simd::rows_equal_normalized(a.data(), b.data(), flip,
                                                   count, last_mask),
                  expect_equal)
            << "count " << count << " variant " << variant << " level "
            << sim::simd::level_name(l);
      });
    }
  }
}

TEST(Simd, GatherNormalizedKeysMatchesScalar)
{
  std::mt19937_64 gen{0x9a7eu};
  const std::size_t num_nodes = 300u;
  for (const uint32_t stride : {1u, 3u, 8u}) {
    std::vector<uint64_t> base(num_nodes * stride);
    for (auto& w : base) {
      w = gen();
    }
    std::vector<uint8_t> phase(num_nodes);
    for (auto& p : phase) {
      p = static_cast<uint8_t>(gen() & 1u);
    }
    for (std::size_t count = 0; count <= 11u; ++count) {
      std::vector<uint32_t> members(count);
      for (auto& m : members) {
        m = static_cast<uint32_t>(gen() % num_nodes);
      }
      for (const uint64_t mask : {~uint64_t{0}, sim::tail_mask(5u)}) {
        std::vector<uint64_t> expect(count);
        for (std::size_t i = 0; i < count; ++i) {
          const uint64_t f = phase[members[i]] != 0u ? ~uint64_t{0} : 0u;
          expect[i] = (base[members[i] * stride] ^ f) & mask;
        }
        for_each_level([&](sim::simd::level) {
          std::vector<uint64_t> keys(count, 0xabadcafeu);
          sim::simd::gather_normalized_keys(keys.data(), members.data(),
                                            count, base.data(), stride,
                                            phase.data(), mask);
          EXPECT_EQ(keys, expect) << "stride " << stride << " count "
                                  << count;
        });
      }
    }
  }
}

TEST(Simd, ResimWordsMatchesScalarWithMixedSafeBlocks)
{
  std::mt19937_64 gen{0x4e51u};
  // A synthetic literal network: nodes [first, size) read two earlier
  // nodes each.  Roughly half the 4-blocks get an intra-block
  // dependency (fanin inside the same block), which must force the
  // scalar path for that block; the rest stay 4-wide safe.
  const uint32_t first = 5u;
  const uint32_t size = 71u; // non-multiple of 4: scalar tail
  std::vector<uint32_t> lit0(size, 0u), lit1(size, 0u);
  std::vector<uint64_t> safe4((size - first) / 4u / 64u + 1u, 0u);
  for (uint32_t n = first; n < size; ++n) {
    const uint32_t block = (n - first) / 4u;
    const uint32_t block_start = first + block * 4u;
    const bool unsafe_block = (block % 2u) == 1u;
    const uint32_t lo =
        unsafe_block && n > block_start ? block_start : 0u;
    const uint32_t max0 = unsafe_block && n > block_start ? n : block_start;
    const auto pick = [&](uint32_t lo_id, uint32_t hi_id) {
      const uint32_t id =
          lo_id + static_cast<uint32_t>(gen() % (hi_id - lo_id));
      return (id << 1u) | static_cast<uint32_t>(gen() & 1u);
    };
    lit0[n] = pick(lo, max0);
    lit1[n] = pick(0u, block_start);
  }
  // Mark exactly the blocks whose fanins all precede the block.
  const uint32_t blocks = (size - first) / 4u;
  for (uint32_t b = 0; b < blocks; ++b) {
    bool safe = true;
    for (uint32_t n = first + b * 4u; n < first + b * 4u + 4u; ++n) {
      safe = safe && (lit0[n] >> 1u) < first + b * 4u &&
             (lit1[n] >> 1u) < first + b * 4u;
    }
    if (safe) {
      safe4[b / 64u] |= uint64_t{1} << (b % 64u);
    }
  }

  std::vector<uint64_t> init(size);
  for (auto& w : init) {
    w = gen();
  }
  std::vector<uint64_t> expect = init;
  for (uint32_t n = first; n < size; ++n) {
    const uint64_t v0 =
        expect[lit0[n] >> 1u] ^ ((lit0[n] & 1u) != 0u ? ~uint64_t{0} : 0u);
    const uint64_t v1 =
        expect[lit1[n] >> 1u] ^ ((lit1[n] & 1u) != 0u ? ~uint64_t{0} : 0u);
    expect[n] = v0 & v1;
  }
  for_each_level([&](sim::simd::level l) {
    std::vector<uint64_t> wb = init;
    sim::simd::resim_words(wb.data(), lit0.data(), lit1.data(), first, size,
                           safe4.data());
    EXPECT_EQ(wb, expect) << sim::simd::level_name(l);
  });
}

TEST(Simd, SignatureRefinementIdenticalAcrossLevels)
{
  // End-to-end: the signature-store word_block + trimmed-word edges the
  // gather kernel sees in production.  A store with trimmed base words
  // and word-major tail blocks must produce identical refinement keys
  // at every level, including the scalar fallback the trimmed layout
  // forces for freed blocks.
  sim::signature_store store{64u, 4u};
  std::mt19937_64 rng{0x711bu};
  for (std::size_t n = 0; n < store.size(); ++n) {
    for (std::size_t w = 0; w < store.num_words(); ++w) {
      store.word(n, w) = rng();
    }
  }
  store.append_word();
  store.append_word();
  for (std::size_t n = 0; n < store.size(); ++n) {
    store.word(n, 4u) = rng();
    store.word(n, 5u) = rng();
  }
  store.trim_words(4u); // whole node-major base freed

  for (const std::size_t word : {std::size_t{4}, std::size_t{5}}) {
    std::size_t stride = 0;
    const uint64_t* block = store.word_block(word, &stride);
    ASSERT_NE(block, nullptr);
    std::vector<uint32_t> members;
    for (uint32_t m = 1u; m < store.size(); m += 3u) {
      members.push_back(m);
    }
    std::vector<uint8_t> phase(store.size());
    for (auto& p : phase) {
      p = static_cast<uint8_t>(rng() & 1u);
    }
    std::vector<std::vector<uint64_t>> per_level;
    for_each_level([&](sim::simd::level) {
      std::vector<uint64_t> keys(members.size());
      sim::simd::gather_normalized_keys(
          keys.data(), members.data(), members.size(), block,
          static_cast<uint32_t>(stride), phase.data(), sim::tail_mask(40u));
      per_level.push_back(std::move(keys));
    });
    for (std::size_t i = 1; i < per_level.size(); ++i) {
      EXPECT_EQ(per_level[i], per_level.front()) << "word " << word;
    }
  }
  // Freed words report null — callers must fall back, never read.
  std::size_t stride = 0;
  EXPECT_EQ(store.word_block(0u, &stride), nullptr); // freed base word
  store.trim_words(5u);                              // free tail word 4
  EXPECT_EQ(store.word_block(4u, &stride), nullptr);
  EXPECT_NE(store.word_block(5u, &stride), nullptr);
  EXPECT_EQ(stride, 1u); // tail blocks are word-major
}

} // namespace
