#include "gen/arithmetic.hpp"
#include "gen/random_logic.hpp"
#include "sat/cnf_manager.hpp"
#include "sat/encoder.hpp"
#include "sim/bitwise_sim.hpp"
#include "sim/patterns.hpp"

#include <gtest/gtest.h>

namespace {

using namespace stps;
using sat::result;

TEST(Encoder, ProveEquivalentOnStructurallyDifferentXor)
{
  // Build XOR two ways; they strash differently but are equivalent.
  net::aig_network aig;
  const auto a = aig.create_pi();
  const auto b = aig.create_pi();
  const auto x1 = aig.create_xor(a, b);
  // (a | b) & !(a & b)
  const auto x2 = aig.create_and(aig.create_or(a, b), !aig.create_and(a, b));
  aig.create_po(x1);
  aig.create_po(x2);
  ASSERT_NE(x1.get_node(), x2.get_node());

  sat::solver s;
  sat::aig_encoder enc{aig, s};
  EXPECT_EQ(enc.prove_equivalent(x1, x2, false, -1), result::unsat);
  // And they are NOT complements of each other.
  EXPECT_EQ(enc.prove_equivalent(x1, x2, true, -1), result::sat);
}

TEST(Encoder, ProveComplementEquivalence)
{
  net::aig_network aig;
  const auto a = aig.create_pi();
  const auto b = aig.create_pi();
  const auto f = aig.create_and(a, b);
  const auto g = aig.create_nand(a, b); // g == !f by construction...
  // ... but they share a node; build a structurally different NAND:
  const auto h = aig.create_or(!a, !b);
  aig.create_po(f);
  aig.create_po(g);
  aig.create_po(h);

  sat::solver s;
  sat::aig_encoder enc{aig, s};
  EXPECT_EQ(enc.prove_equivalent(f, h, true, -1), result::unsat);
  EXPECT_EQ(enc.prove_equivalent(f, h, false, -1), result::sat);
}

TEST(Encoder, ProveConstant)
{
  net::aig_network aig;
  const auto a = aig.create_pi();
  const auto b = aig.create_pi();
  // (a & b) & (!a | !b) == 0, hidden behind two levels.
  const auto f = aig.create_and(aig.create_and(a, b),
                                aig.create_or(!a, !b));
  aig.create_po(f);

  sat::solver s;
  sat::aig_encoder enc{aig, s};
  EXPECT_EQ(enc.prove_constant(f, false, -1), result::unsat); // proven 0
  EXPECT_EQ(enc.prove_constant(f, true, -1), result::sat);    // not 1
  EXPECT_EQ(enc.prove_constant(a, false, -1), result::sat);   // PI free
}

TEST(Encoder, CounterExampleIsValid)
{
  net::aig_network aig;
  const auto a = aig.create_pi();
  const auto b = aig.create_pi();
  const auto c = aig.create_pi();
  const auto f = aig.create_and(a, b);
  const auto g = aig.create_and(a, c);
  aig.create_po(f);
  aig.create_po(g);

  sat::solver s;
  sat::aig_encoder enc{aig, s};
  ASSERT_EQ(enc.prove_equivalent(f, g, false, -1), result::sat);
  const auto ce = enc.model_inputs();
  ASSERT_EQ(ce.size(), 3u);
  // The counter-example must actually distinguish f and g.
  bool buf[3] = {ce[0], ce[1], ce[2]};
  const bool val_f =
      sim::evaluate_aig_node(aig, f.get_node(), std::span<const bool>{buf, 3u});
  const bool val_g =
      sim::evaluate_aig_node(aig, g.get_node(), std::span<const bool>{buf, 3u});
  EXPECT_NE(val_f, val_g);
}

TEST(Encoder, FindAssignment)
{
  net::aig_network aig;
  const auto a = aig.create_pi();
  const auto b = aig.create_pi();
  const auto f = aig.create_and(a, b);
  aig.create_po(f);

  sat::solver s;
  sat::aig_encoder enc{aig, s};
  const auto w1 = enc.find_assignment(f, true, -1);
  ASSERT_TRUE(w1.has_value());
  EXPECT_TRUE((*w1)[0]);
  EXPECT_TRUE((*w1)[1]);

  // A constant-0 node has no satisfying assignment for value 1.
  const auto zero = aig.create_and(aig.create_and(a, b),
                                   aig.create_or(!a, !b));
  const auto w2 = enc.find_assignment(zero, true, -1);
  EXPECT_FALSE(w2.has_value());
}

TEST(CnfManager, IncrementalModeEncodesEachConeOnce)
{
  auto aig = gen::make_adder(12u);
  sat::cnf_manager cnf{aig};
  // Repeated queries on overlapping cones: the shared cone is encoded
  // exactly once, queries only add the delta.
  for (uint32_t i = 0; i + 1u < aig.num_pos(); ++i) {
    const result r =
        cnf.prove_equivalent(aig.po_at(i), aig.po_at(i + 1u), false, -1);
    EXPECT_TRUE(r == result::sat || r == result::unsat);
  }
  EXPECT_EQ(cnf.rebuilds(), 0u);
  EXPECT_LE(cnf.nodes_encoded(), aig.num_gates());
  // A counter-example model is readable after the query that produced it.
  ASSERT_EQ(cnf.prove_equivalent(aig.po_at(0), aig.po_at(1), false, -1),
            result::sat);
  EXPECT_EQ(cnf.model_inputs().size(), aig.num_pis());
}

TEST(CnfManager, NonIncrementalModeRebuildsPerQuery)
{
  auto aig = gen::make_adder(8u);
  sat::cnf_manager cnf{aig, {/*incremental=*/false, /*clause_budget=*/0u}};
  uint64_t queries = 0;
  for (uint32_t i = 0; i + 1u < aig.num_pos(); ++i) {
    cnf.prove_equivalent(aig.po_at(i), aig.po_at(i + 1u), false, -1);
    ++queries;
  }
  EXPECT_EQ(cnf.rebuilds(), queries - 1u);
  // Scratch encoding pays the union cone per query: strictly more total
  // encode work than the network has gates.
  EXPECT_GT(cnf.nodes_encoded(), uint64_t{aig.num_gates()});
}

TEST(CnfManager, ClauseBudgetTriggersGarbageEpochs)
{
  auto aig = gen::make_adder(16u);
  sat::cnf_manager cnf{aig, {/*incremental=*/true, /*clause_budget=*/50u}};
  sat::cnf_manager unbounded{aig};
  for (uint32_t i = 0; i + 1u < aig.num_pos(); ++i) {
    const result a =
        cnf.prove_equivalent(aig.po_at(i), aig.po_at(i + 1u), false, -1);
    const result b = unbounded.prove_equivalent(aig.po_at(i),
                                                aig.po_at(i + 1u), false, -1);
    // Identical verdicts with and without garbage epochs.
    EXPECT_EQ(a, b) << "query " << i;
  }
  EXPECT_GT(cnf.rebuilds(), 0u);
  EXPECT_EQ(unbounded.rebuilds(), 0u);
  EXPECT_GT(cnf.nodes_encoded(), unbounded.nodes_encoded());
}

TEST(CnfManager, StatsAccumulateAcrossGarbageEpochs)
{
  // The bench's sat_conflicts/sat_decisions counters are only
  // trustworthy if solver teardowns retire the live stats into a
  // running sum: every rebuild used to silently reset them.  Pin the
  // accumulation across both rebuild flavors — garbage epochs (tiny
  // clause budget) and per-query scratch teardowns.
  for (const bool incremental : {true, false}) {
    auto aig = gen::make_adder(16u);
    sat::cnf_manager cnf{aig, {incremental, incremental ? 50u : 0u}};
    uint64_t queries = 0;
    sat::solver_stats last{};
    for (uint32_t i = 0; i + 1u < aig.num_pos(); ++i) {
      cnf.prove_equivalent(aig.po_at(i), aig.po_at(i + 1u), false, -1);
      ++queries;
      const sat::solver_stats now = cnf.solver_statistics();
      // Monotone across every query — a rebuild between two queries
      // must never make a counter go backwards.
      EXPECT_GE(now.solve_calls, last.solve_calls);
      EXPECT_GE(now.conflicts, last.conflicts);
      EXPECT_GE(now.decisions, last.decisions);
      EXPECT_GE(now.propagations, last.propagations);
      EXPECT_GE(now.restarts, last.restarts);
      last = now;
    }
    EXPECT_GT(cnf.rebuilds(), 0u) << "fixture no longer rebuilds";
    // Exactly one solve per equivalence query, counted across epochs.
    EXPECT_EQ(last.solve_calls, queries);
    EXPECT_GT(last.decisions, 0u);
  }
}

TEST(CnfManager, PhaseSeedingNeverChangesAnswersOnRandomMiters)
{
  // Property: phase hints steer the search only — every equivalence /
  // constant query must return the identical sat/unsat verdict with
  // hints on (from real simulation signatures), with adversarial hints
  // (bit-noise), and with none.
  for (uint64_t seed = 0; seed < 8u; ++seed) {
    const auto aig = gen::make_random_logic(
        {10u, 6u, 180u + 30u * static_cast<uint32_t>(seed % 3u),
         0xabcdu + seed, 30u});
    const sim::pattern_set patterns =
        sim::pattern_set::random(aig.num_pis(), 64u, seed);
    const sim::signature_store sig = sim::simulate_aig(aig, patterns);

    sat::cnf_manager plain{aig};
    sat::cnf_manager simulation{aig};
    simulation.set_phase_hints([&sig](stps::net::node n) -> int {
      return n < sig.size() ? static_cast<int>(sig.word(n, 0u) & 1u) : -1;
    });
    sat::cnf_manager adversarial{aig};
    adversarial.set_phase_hints([seed](stps::net::node n) -> int {
      return static_cast<int>((n * 2654435761u + seed) >> 7u & 1u);
    });

    for (uint32_t i = 0; i + 1u < aig.num_pos(); ++i) {
      const auto a = aig.po_at(i);
      const auto b = aig.po_at(i + 1u);
      const sat::result r = plain.prove_equivalent(a, b, false, -1);
      EXPECT_EQ(simulation.prove_equivalent(a, b, false, -1), r)
          << "seed " << seed << " pair " << i;
      EXPECT_EQ(adversarial.prove_equivalent(a, b, false, -1), r)
          << "seed " << seed << " pair " << i;
      const sat::result c = plain.prove_constant(a, false, -1);
      EXPECT_EQ(simulation.prove_constant(a, false, -1), c);
      EXPECT_EQ(adversarial.prove_constant(a, false, -1), c);
    }
    EXPECT_GT(simulation.phase_seeds(), 0u);
    EXPECT_GT(adversarial.phase_seeds(), 0u);
    EXPECT_EQ(plain.phase_seeds(), 0u);
  }
}

TEST(CnfManager, SeededPhaseHintsAreDeterministic)
{
  // Same network, same hints → byte-identical search counters.  Any
  // nondeterminism in the seeding path (iteration order, uninitialized
  // phases) shows up here first.
  const auto aig = gen::make_random_logic({10u, 6u, 200u, 0x5eedu, 30u});
  const sim::pattern_set patterns =
      sim::pattern_set::random(aig.num_pis(), 64u, 7u);
  const sim::signature_store sig = sim::simulate_aig(aig, patterns);
  const auto hints = [&sig](stps::net::node n) -> int {
    return n < sig.size() ? static_cast<int>(sig.word(n, 0u) & 1u) : -1;
  };
  sat::solver_stats runs[2];
  uint64_t seeds[2] = {0u, 0u};
  for (int run = 0; run < 2; ++run) {
    sat::cnf_manager cnf{aig, {true, 2000u}};
    cnf.set_phase_hints(hints);
    for (uint32_t i = 0; i + 1u < aig.num_pos(); ++i) {
      cnf.prove_equivalent(aig.po_at(i), aig.po_at(i + 1u), false, -1);
    }
    runs[run] = cnf.solver_statistics();
    seeds[run] = cnf.phase_seeds();
  }
  EXPECT_EQ(runs[0].decisions, runs[1].decisions);
  EXPECT_EQ(runs[0].conflicts, runs[1].conflicts);
  EXPECT_EQ(runs[0].propagations, runs[1].propagations);
  EXPECT_EQ(runs[0].restarts, runs[1].restarts);
  EXPECT_EQ(runs[0].solve_calls, runs[1].solve_calls);
  EXPECT_EQ(seeds[0], seeds[1]);
}

TEST(CnfManager, EpochCarryOverPreservesAnswers)
{
  // Garbage epochs with cone scoping carry learned phases/activities
  // into the next epoch; verdicts must match an unbounded manager and a
  // cold-rebuild one exactly.
  auto aig = gen::make_adder(16u);
  sat::cnf_manager carrying{aig, {true, 50u, /*cone_scoped=*/true}};
  sat::cnf_manager cold{aig, {true, 50u, /*cone_scoped=*/false}};
  sat::cnf_manager unbounded{aig};
  for (uint32_t i = 0; i + 1u < aig.num_pos(); ++i) {
    const sat::result r = unbounded.prove_equivalent(
        aig.po_at(i), aig.po_at(i + 1u), false, -1);
    EXPECT_EQ(carrying.prove_equivalent(aig.po_at(i), aig.po_at(i + 1u),
                                        false, -1),
              r);
    EXPECT_EQ(cold.prove_equivalent(aig.po_at(i), aig.po_at(i + 1u), false,
                                    -1),
              r);
  }
  EXPECT_GT(carrying.rebuilds(), 0u);
  EXPECT_GT(cold.rebuilds(), 0u);
}

TEST(Encoder, EncodesLazilyAndOnce)
{
  auto aig = gen::make_adder(16u);
  sat::solver s;
  sat::aig_encoder enc{aig, s};
  EXPECT_EQ(enc.num_encoded_nodes(), 0u);
  // Touch the lowest sum bit: only its small cone is encoded.
  const auto f = aig.po_at(0);
  enc.literal(f);
  const uint64_t after_first = enc.num_encoded_nodes();
  EXPECT_GT(after_first, 0u);
  EXPECT_LT(after_first, aig.num_gates());
  // Re-requesting the same literal encodes nothing new.
  enc.literal(f);
  EXPECT_EQ(enc.num_encoded_nodes(), after_first);
  // Touch every PO: the whole (reachable) network appears exactly once.
  aig.foreach_po([&](net::signal po, uint32_t) { enc.literal(po); });
  EXPECT_EQ(enc.num_encoded_nodes(), aig.num_gates());
}

} // namespace
