#include "gen/arithmetic.hpp"
#include "sat/cnf_manager.hpp"
#include "sat/encoder.hpp"
#include "sim/bitwise_sim.hpp"

#include <gtest/gtest.h>

namespace {

using namespace stps;
using sat::result;

TEST(Encoder, ProveEquivalentOnStructurallyDifferentXor)
{
  // Build XOR two ways; they strash differently but are equivalent.
  net::aig_network aig;
  const auto a = aig.create_pi();
  const auto b = aig.create_pi();
  const auto x1 = aig.create_xor(a, b);
  // (a | b) & !(a & b)
  const auto x2 = aig.create_and(aig.create_or(a, b), !aig.create_and(a, b));
  aig.create_po(x1);
  aig.create_po(x2);
  ASSERT_NE(x1.get_node(), x2.get_node());

  sat::solver s;
  sat::aig_encoder enc{aig, s};
  EXPECT_EQ(enc.prove_equivalent(x1, x2, false, -1), result::unsat);
  // And they are NOT complements of each other.
  EXPECT_EQ(enc.prove_equivalent(x1, x2, true, -1), result::sat);
}

TEST(Encoder, ProveComplementEquivalence)
{
  net::aig_network aig;
  const auto a = aig.create_pi();
  const auto b = aig.create_pi();
  const auto f = aig.create_and(a, b);
  const auto g = aig.create_nand(a, b); // g == !f by construction...
  // ... but they share a node; build a structurally different NAND:
  const auto h = aig.create_or(!a, !b);
  aig.create_po(f);
  aig.create_po(g);
  aig.create_po(h);

  sat::solver s;
  sat::aig_encoder enc{aig, s};
  EXPECT_EQ(enc.prove_equivalent(f, h, true, -1), result::unsat);
  EXPECT_EQ(enc.prove_equivalent(f, h, false, -1), result::sat);
}

TEST(Encoder, ProveConstant)
{
  net::aig_network aig;
  const auto a = aig.create_pi();
  const auto b = aig.create_pi();
  // (a & b) & (!a | !b) == 0, hidden behind two levels.
  const auto f = aig.create_and(aig.create_and(a, b),
                                aig.create_or(!a, !b));
  aig.create_po(f);

  sat::solver s;
  sat::aig_encoder enc{aig, s};
  EXPECT_EQ(enc.prove_constant(f, false, -1), result::unsat); // proven 0
  EXPECT_EQ(enc.prove_constant(f, true, -1), result::sat);    // not 1
  EXPECT_EQ(enc.prove_constant(a, false, -1), result::sat);   // PI free
}

TEST(Encoder, CounterExampleIsValid)
{
  net::aig_network aig;
  const auto a = aig.create_pi();
  const auto b = aig.create_pi();
  const auto c = aig.create_pi();
  const auto f = aig.create_and(a, b);
  const auto g = aig.create_and(a, c);
  aig.create_po(f);
  aig.create_po(g);

  sat::solver s;
  sat::aig_encoder enc{aig, s};
  ASSERT_EQ(enc.prove_equivalent(f, g, false, -1), result::sat);
  const auto ce = enc.model_inputs();
  ASSERT_EQ(ce.size(), 3u);
  // The counter-example must actually distinguish f and g.
  bool buf[3] = {ce[0], ce[1], ce[2]};
  const bool val_f =
      sim::evaluate_aig_node(aig, f.get_node(), std::span<const bool>{buf, 3u});
  const bool val_g =
      sim::evaluate_aig_node(aig, g.get_node(), std::span<const bool>{buf, 3u});
  EXPECT_NE(val_f, val_g);
}

TEST(Encoder, FindAssignment)
{
  net::aig_network aig;
  const auto a = aig.create_pi();
  const auto b = aig.create_pi();
  const auto f = aig.create_and(a, b);
  aig.create_po(f);

  sat::solver s;
  sat::aig_encoder enc{aig, s};
  const auto w1 = enc.find_assignment(f, true, -1);
  ASSERT_TRUE(w1.has_value());
  EXPECT_TRUE((*w1)[0]);
  EXPECT_TRUE((*w1)[1]);

  // A constant-0 node has no satisfying assignment for value 1.
  const auto zero = aig.create_and(aig.create_and(a, b),
                                   aig.create_or(!a, !b));
  const auto w2 = enc.find_assignment(zero, true, -1);
  EXPECT_FALSE(w2.has_value());
}

TEST(CnfManager, IncrementalModeEncodesEachConeOnce)
{
  auto aig = gen::make_adder(12u);
  sat::cnf_manager cnf{aig};
  // Repeated queries on overlapping cones: the shared cone is encoded
  // exactly once, queries only add the delta.
  for (uint32_t i = 0; i + 1u < aig.num_pos(); ++i) {
    const result r =
        cnf.prove_equivalent(aig.po_at(i), aig.po_at(i + 1u), false, -1);
    EXPECT_TRUE(r == result::sat || r == result::unsat);
  }
  EXPECT_EQ(cnf.rebuilds(), 0u);
  EXPECT_LE(cnf.nodes_encoded(), aig.num_gates());
  // A counter-example model is readable after the query that produced it.
  ASSERT_EQ(cnf.prove_equivalent(aig.po_at(0), aig.po_at(1), false, -1),
            result::sat);
  EXPECT_EQ(cnf.model_inputs().size(), aig.num_pis());
}

TEST(CnfManager, NonIncrementalModeRebuildsPerQuery)
{
  auto aig = gen::make_adder(8u);
  sat::cnf_manager cnf{aig, {/*incremental=*/false, /*clause_budget=*/0u}};
  uint64_t queries = 0;
  for (uint32_t i = 0; i + 1u < aig.num_pos(); ++i) {
    cnf.prove_equivalent(aig.po_at(i), aig.po_at(i + 1u), false, -1);
    ++queries;
  }
  EXPECT_EQ(cnf.rebuilds(), queries - 1u);
  // Scratch encoding pays the union cone per query: strictly more total
  // encode work than the network has gates.
  EXPECT_GT(cnf.nodes_encoded(), uint64_t{aig.num_gates()});
}

TEST(CnfManager, ClauseBudgetTriggersGarbageEpochs)
{
  auto aig = gen::make_adder(16u);
  sat::cnf_manager cnf{aig, {/*incremental=*/true, /*clause_budget=*/50u}};
  sat::cnf_manager unbounded{aig};
  for (uint32_t i = 0; i + 1u < aig.num_pos(); ++i) {
    const result a =
        cnf.prove_equivalent(aig.po_at(i), aig.po_at(i + 1u), false, -1);
    const result b = unbounded.prove_equivalent(aig.po_at(i),
                                                aig.po_at(i + 1u), false, -1);
    // Identical verdicts with and without garbage epochs.
    EXPECT_EQ(a, b) << "query " << i;
  }
  EXPECT_GT(cnf.rebuilds(), 0u);
  EXPECT_EQ(unbounded.rebuilds(), 0u);
  EXPECT_GT(cnf.nodes_encoded(), unbounded.nodes_encoded());
}

TEST(Encoder, EncodesLazilyAndOnce)
{
  auto aig = gen::make_adder(16u);
  sat::solver s;
  sat::aig_encoder enc{aig, s};
  EXPECT_EQ(enc.num_encoded_nodes(), 0u);
  // Touch the lowest sum bit: only its small cone is encoded.
  const auto f = aig.po_at(0);
  enc.literal(f);
  const uint64_t after_first = enc.num_encoded_nodes();
  EXPECT_GT(after_first, 0u);
  EXPECT_LT(after_first, aig.num_gates());
  // Re-requesting the same literal encodes nothing new.
  enc.literal(f);
  EXPECT_EQ(enc.num_encoded_nodes(), after_first);
  // Touch every PO: the whole (reachable) network appears exactly once.
  aig.foreach_po([&](net::signal po, uint32_t) { enc.literal(po); });
  EXPECT_EQ(enc.num_encoded_nodes(), aig.num_gates());
}

} // namespace
