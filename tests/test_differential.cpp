/// \file test_differential.cpp
/// \brief Randomized differential harness across sweep engines and
/// ablation flags.
///
/// Generates seeded networks from every `src/gen` family (layered random
/// logic, arithmetic, and redundancy-injected variants of both) and runs
/// the fraig baseline plus the STP sweeper under the full incremental-CNF
/// × store-budget ablation matrix:
///
///   | variant      | incremental CNF | clause budget  | store budget |
///   |--------------|-----------------|----------------|--------------|
///   | default      | on              | default        | default (8)  |
///   | scratch      | off (per-query) | —              | ∞            |
///   | tiny_epochs  | on              | 64 (rebuilds!) | default      |
///   | unbounded    | on              | 0 (never)      | ∞            |
///   | tight_store  | on              | default        | 1            |
///   | scratch_tight| off             | —              | 1            |
///
/// Every result must be CEC-equivalent to the original *and* to every
/// other engine's result, and all STP variants must agree exactly on the
/// result gate count — the flags may only change *when* work is paid
/// (encode time, memory), never *what* is computed.  The tiny budgets
/// additionally pin that the rebuild and trim paths really execute.
#include "gen/arithmetic.hpp"
#include "gen/random_logic.hpp"
#include "gen/redundancy.hpp"
#include "sweep/cec.hpp"
#include "sweep/fraig.hpp"
#include "sweep/stp_sweeper.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using namespace stps;

net::aig_network make_network(uint64_t seed)
{
  // Cycle through the generator families; sizes stay small enough for
  // ~50 networks x 6 engines (plus CEC) to run in test time, including
  // under sanitizers.
  const uint64_t family = seed % 5u;
  net::aig_network base;
  switch (family) {
    case 0u:
      base = gen::make_random_logic({8u + static_cast<uint32_t>(seed % 7u),
                                     6u, 220u + 40u * (seed % 4u),
                                     0xd1ffu + seed, 25u});
      break;
    case 1u:
      base = gen::make_adder(6u + static_cast<uint32_t>(seed % 6u));
      break;
    case 2u:
      base = gen::make_multiplier(5u + static_cast<uint32_t>(seed % 4u));
      break;
    case 3u:
      base = gen::make_barrel_shifter(3u + static_cast<uint32_t>(seed % 2u));
      break;
    default:
      base = gen::make_random_logic({12u, 10u, 320u, 0xfaceu + seed, 45u});
      break;
  }
  // Redundancy (equivalent pairs, hidden constants, false candidates)
  // is what gives the sweepers real work; vary the density with the
  // seed and leave a few networks redundancy-free.
  if (seed % 4u != 3u) {
    base = gen::inject_redundancy(
        base, {4u + static_cast<uint32_t>(seed % 9u),
               static_cast<uint32_t>(seed % 4u), 0xbadccafeu + seed,
               8u + static_cast<uint32_t>(seed % 16u)});
  }
  return base;
}

struct stp_variant
{
  const char* name;
  bool incremental;
  uint64_t clause_budget;
  uint32_t store_budget;
};

constexpr stp_variant variants[] = {
    {"default", true, 4'000'000u, 8u},
    {"scratch", false, 0u, 0u},
    {"tiny_epochs", true, 64u, 8u},
    {"unbounded", true, 0u, 0u},
    {"tight_store", true, 4'000'000u, 1u},
    {"scratch_tight", false, 0u, 1u},
};

class Differential : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(Differential, EnginesAndAblationsAgree)
{
  const uint64_t seed = GetParam();
  const net::aig_network original = make_network(seed);

  net::aig_network by_fraig = original;
  const sweep::sweep_stats fraig_stats =
      sweep::fraig_sweep(by_fraig, {256u, seed + 1u, -1});
  ASSERT_TRUE(sweep::check_equivalence(original, by_fraig).equivalent)
      << "fraig not equivalent, seed " << seed;

  std::vector<net::aig_network> results;
  std::vector<sweep::sweep_stats> stats;
  for (const stp_variant& v : variants) {
    sweep::stp_sweep_params params;
    params.guided.base_patterns = 256u;
    params.use_incremental_cnf = v.incremental;
    params.sat_clause_budget = v.clause_budget;
    params.store_word_budget = v.store_budget;
    net::aig_network result = original;
    stats.push_back(sweep::stp_sweep(result, params));
    ASSERT_TRUE(sweep::check_equivalence(original, result).equivalent)
        << "stp/" << v.name << " not equivalent, seed " << seed;
    results.push_back(std::move(result));
  }

  // All STP ablation combinations compute the same result network size;
  // the flags only move work around.
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].num_gates(), results[0].num_gates())
        << "stp/" << variants[i].name << " diverged from stp/default, seed "
        << seed;
  }
  // Pairwise closure: every engine's result equals every other's (spot
  // the two most different pipelines directly; the rest follows from
  // equivalence to `original`, checked above).
  EXPECT_TRUE(sweep::check_equivalence(by_fraig, results[0]).equivalent);
  EXPECT_TRUE(
      sweep::check_equivalence(results[1], results.back()).equivalent);

  // The ablation machinery really executed: per-query rebuilds in the
  // scratch engine, garbage epochs under the tiny clause budget, no
  // rebuilds when the budget is off, and trims in the tight-store
  // engine (its budget of one word is always exceeded by the initial
  // multi-word simulation).
  EXPECT_EQ(stats[0].sat_solver_rebuilds, 0u);
  EXPECT_EQ(stats[3].sat_solver_rebuilds, 0u);
  if (stats[1].sat_calls_total > 0u) {
    EXPECT_EQ(stats[1].sat_solver_rebuilds, stats[1].sat_calls_total - 1u);
  }
  // clauses_peak is sampled at query entry, exactly where the budget
  // check runs: an entry above the budget is an entry that rebuilt.
  if (stats[2].sat_clauses_peak > 64u) {
    EXPECT_GT(stats[2].sat_solver_rebuilds, 0u);
  } else {
    EXPECT_EQ(stats[2].sat_solver_rebuilds, 0u);
  }
  EXPECT_GE(stats[1].sat_nodes_encoded, stats[0].sat_nodes_encoded);
  EXPECT_GT(stats[4].store_words_trimmed, 0u);
  EXPECT_EQ(stats[3].store_words_trimmed, 0u);
  (void)fraig_stats;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Range(uint64_t{0}, uint64_t{50}));

} // namespace
