/// \file test_differential.cpp
/// \brief Randomized differential harness across sweep engines and
/// ablation flags.
///
/// Generates seeded networks from every `src/gen` family (layered random
/// logic, arithmetic, and redundancy-injected variants of both) and runs
/// the fraig baseline plus the STP sweeper under a 3-way CE-engine
/// matrix (auto / collapsed / resim — sweep/ce_engine.hpp) crossed with
/// the incremental-CNF × store-budget × signature-guided-SAT ablation
/// variants (the last three columns are PR 5's signature-phase seeding,
/// cone-scoped decisions + epoch carry-over, and entropy-grouped round-2
/// guidance — folded into the existing variants so every flag runs under
/// every engine without growing the matrix):
///
///   | variant      | incremental CNF | clause budget  | store budget | prune | arena | phase | cone | r2-group |
///   |--------------|-----------------|----------------|--------------|-------|-------|-------|------|----------|
///   | default      | on              | default        | default (8)  | on    | 1     | on    | on   | on       |
///   | scratch      | off (per-query) | —              | ∞            | on    | 1     | off   | on   | on       |
///   | tiny_epochs  | on              | 64 (rebuilds!) | default      | off   | 2     | on    | on*  | off      |
///   | unbounded    | on              | 0 (never)      | ∞            | off   | full  | off   | off  | off      |
///   | tight_store  | on              | default        | 1            | on    | full  | on    | off  | on       |
///   | scratch_tight| off             | —              | 1            | off   | 1     | off   | off  | off      |
///
/// (* tiny_epochs is the combination that exercises the learned
/// phase/activity carry-over across garbage epochs.)
///
/// Every result must be CEC-equivalent to the original *and* to every
/// other engine's result, and all 18 STP engine×variant combinations
/// must agree exactly on the result gate count — the engine dispatch and
/// the flags may only change *when and where* work is paid (encode time,
/// memory, propagation locality), never *what* is computed.  The auto
/// rows also pin both dispatch branches: with the default threshold
/// these sub-10k-gate networks resolve to resim, with a zero threshold
/// to collapsed, and `ce_engine_used` must say so.
#include "gen/arithmetic.hpp"
#include "gen/random_logic.hpp"
#include "gen/redundancy.hpp"
#include "sweep/cec.hpp"
#include "sweep/fraig.hpp"
#include "sweep/stp_sweeper.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using namespace stps;

net::aig_network make_network(uint64_t seed)
{
  // Cycle through the generator families; sizes stay small enough for
  // ~50 networks x 18 engine/flag combinations (plus CEC) to run in
  // test time, including under sanitizers.
  const uint64_t family = seed % 5u;
  net::aig_network base;
  switch (family) {
    case 0u:
      base = gen::make_random_logic({8u + static_cast<uint32_t>(seed % 7u),
                                     6u, 220u + 40u * (seed % 4u),
                                     0xd1ffu + seed, 25u});
      break;
    case 1u:
      base = gen::make_adder(6u + static_cast<uint32_t>(seed % 6u));
      break;
    case 2u:
      base = gen::make_multiplier(5u + static_cast<uint32_t>(seed % 4u));
      break;
    case 3u:
      base = gen::make_barrel_shifter(3u + static_cast<uint32_t>(seed % 2u));
      break;
    default:
      base = gen::make_random_logic({12u, 10u, 320u, 0xfaceu + seed, 45u});
      break;
  }
  // Redundancy (equivalent pairs, hidden constants, false candidates)
  // is what gives the sweepers real work; vary the density with the
  // seed and leave a few networks redundancy-free.
  if (seed % 4u != 3u) {
    base = gen::inject_redundancy(
        base, {4u + static_cast<uint32_t>(seed % 9u),
               static_cast<uint32_t>(seed % 4u), 0xbadccafeu + seed,
               8u + static_cast<uint32_t>(seed % 16u)});
  }
  return base;
}

struct stp_variant
{
  const char* name;
  bool incremental;
  uint64_t clause_budget;
  uint32_t store_budget;
  bool prune_targets;
  uint32_t initial_words; ///< 0 = full collapsed arena
  bool signature_phase;
  bool cone_scoped;
  bool round2_group;
  /// Clause-database policy columns (PR 10), folded into the existing
  /// variants so the matrix stays 24 sweeps: reduce_db on/off,
  /// inprocessing on/off, and an aggressive inprocessing interval so
  /// the collapse/subsume/vivify phases actually fire on these small
  /// instances (the production interval of 2048 queries would never
  /// trigger here).
  bool sat_reduce;
  bool sat_inprocess;
  uint64_t inprocess_interval;
};

constexpr stp_variant variants[] = {
    {"default", true, 4'000'000u, 8u, true, 1u, true, true, true,
     true, true, 64u},
    {"scratch", false, 0u, 0u, true, 1u, false, true, true,
     false, false, 0u},
    {"tiny_epochs", true, 64u, 8u, false, 2u, true, true, false,
     true, true, 16u},
    {"unbounded", true, 0u, 0u, false, 0u, false, false, false,
     false, true, 32u},
    {"tight_store", true, 4'000'000u, 1u, true, 0u, true, false, true,
     true, false, 0u},
    {"scratch_tight", false, 0u, 1u, false, 1u, false, false, false,
     false, false, 0u},
};

struct engine_choice
{
  const char* name;
  sweep::ce_engine_kind requested;
  uint32_t gate_threshold;
  /// What the dispatch must resolve to on these sub-10k-gate networks
  /// (pins both branches of the auto policy).  Mid-sweep escalation is
  /// disabled on the auto rows so the pin stays exact; the escalation
  /// path has its own dedicated test below.
  sweep::ce_engine_kind expected;
};

constexpr engine_choice engines[] = {
    {"auto", sweep::ce_engine_kind::automatic, 10'000u,
     sweep::ce_engine_kind::resim},
    {"auto0", sweep::ce_engine_kind::automatic, 0u,
     sweep::ce_engine_kind::collapsed},
    {"collapsed", sweep::ce_engine_kind::collapsed, 10'000u,
     sweep::ce_engine_kind::collapsed},
    {"resim", sweep::ce_engine_kind::resim, 10'000u,
     sweep::ce_engine_kind::resim},
};

sweep::stp_sweep_params make_params(const engine_choice& e,
                                    const stp_variant& v)
{
  sweep::stp_sweep_params params;
  params.guided.base_patterns = 256u;
  params.ce_engine = e.requested;
  params.ce_engine_gate_threshold = e.gate_threshold;
  params.ce_escalate_per_mille = 0u; // pure dispatch pins
  params.use_incremental_cnf = v.incremental;
  params.sat_clause_budget = v.clause_budget;
  params.store_word_budget = v.store_budget;
  params.ce_prune_targets = v.prune_targets;
  params.ce_initial_words = v.initial_words;
  params.use_signature_phase = v.signature_phase;
  params.use_cone_scoped_decisions = v.cone_scoped;
  params.guided.round2_group_by_signature = v.round2_group;
  params.sat_reduce = v.sat_reduce;
  params.sat_inprocess = v.sat_inprocess;
  if (v.inprocess_interval != 0u) {
    params.sat_inprocess_interval = v.inprocess_interval;
    params.sat_inprocess_min_clauses = 64u; // fire on tiny databases too
  }
  return params;
}

class Differential : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(Differential, EnginesAndAblationsAgree)
{
  const uint64_t seed = GetParam();
  const net::aig_network original = make_network(seed);

  net::aig_network by_fraig = original;
  const sweep::sweep_stats fraig_stats =
      sweep::fraig_sweep(by_fraig, {256u, seed + 1u, -1});
  ASSERT_TRUE(sweep::check_equivalence(original, by_fraig).equivalent)
      << "fraig not equivalent, seed " << seed;
  EXPECT_FALSE(fraig_stats.has_ce_engine);

  // The full matrix: every engine choice under every flag variant.  The
  // two `auto` rows run the dispatch itself (threshold default → resim
  // here, threshold 0 → collapsed), the explicit rows force an engine —
  // between them both engines run under every flag combination.
  std::vector<net::aig_network> results;
  std::vector<sweep::sweep_stats> stats;
  std::vector<std::string> labels;
  for (const engine_choice& e : engines) {
    for (const stp_variant& v : variants) {
      net::aig_network result = original;
      stats.push_back(sweep::stp_sweep(result, make_params(e, v)));
      labels.push_back(std::string{e.name} + "/" + v.name);
      const sweep::sweep_stats& s = stats.back();
      EXPECT_TRUE(s.has_ce_engine);
      EXPECT_EQ(s.ce_engine_used, e.expected)
          << "dispatch pin failed for stp/" << labels.back() << ", seed "
          << seed;
      ASSERT_TRUE(sweep::check_equivalence(original, result).equivalent)
          << "stp/" << labels.back() << " not equivalent, seed " << seed;
      results.push_back(std::move(result));
    }
  }

  // All engine × ablation combinations compute the same result network
  // size; engine choice and flags only move work around.
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].num_gates(), results[0].num_gates())
        << "stp/" << labels[i] << " diverged from stp/" << labels[0]
        << ", seed " << seed;
  }
  // Pairwise closure: every engine's result equals every other's (spot
  // the most different pipelines directly — fraig vs default, pruned
  // resim-scratch vs unpruned collapsed-unbounded; the rest follows
  // from equivalence to `original`, checked above).
  EXPECT_TRUE(sweep::check_equivalence(by_fraig, results[0]).equivalent);
  EXPECT_TRUE(
      sweep::check_equivalence(results[1], results.back()).equivalent);

  // The ablation machinery really executed.  Indices: engine-major, 6
  // variants per engine; engine 2 is forced-collapsed, engine 3 forced
  // resim.
  const auto at = [&](std::size_t engine,
                      std::size_t variant) -> const sweep::sweep_stats& {
    return stats[engine * std::size(variants) + variant];
  };
  for (std::size_t e = 0; e < std::size(engines); ++e) {
    // Per-query rebuilds in the scratch variants, garbage epochs under
    // the tiny clause budget, no rebuilds when the budget is off.
    EXPECT_EQ(at(e, 0).sat_solver_rebuilds, 0u);
    EXPECT_EQ(at(e, 3).sat_solver_rebuilds, 0u);
    if (at(e, 1).sat_calls_total > 0u) {
      EXPECT_EQ(at(e, 1).sat_solver_rebuilds,
                at(e, 1).sat_calls_total - 1u);
    }
    // clauses_peak is sampled at query entry, exactly where the budget
    // check runs: an entry above the budget is an entry that rebuilt.
    if (at(e, 2).sat_clauses_peak > 64u) {
      EXPECT_GT(at(e, 2).sat_solver_rebuilds, 0u);
    } else {
      EXPECT_EQ(at(e, 2).sat_solver_rebuilds, 0u);
    }
    EXPECT_GE(at(e, 1).sat_nodes_encoded, at(e, 0).sat_nodes_encoded);
    // No budget trims in the unbounded variant.  The resim engine is
    // excluded from the store check: its pre-CE words are *born*
    // trimmed (never backed at all), which words_trimmed reports too.
    if (engines[e].expected == sweep::ce_engine_kind::collapsed) {
      EXPECT_EQ(at(e, 3).store_words_trimmed, 0u);
    }
    EXPECT_EQ(at(e, 3).pattern_words_recycled, 0u);
  }
  // The collapsed engine's full-arena tight-store run always trims: its
  // budget of one word is exceeded by the initial multi-word collapsed
  // simulation.  (The resim engine has no initial arena — nothing
  // guarantees a trim there, which is the point of the dispatch.)
  EXPECT_GT(at(2, 4).store_words_trimmed, 0u);
  // Only the collapsed engine defines the output-sensitivity counters,
  // and its unpruned variant must report zero pruned targets (the
  // pruned-vs-unpruned word equality itself is pinned per node in
  // test_ce_simulator.cpp).
  EXPECT_TRUE(at(2, 0).has_ce_counters);
  EXPECT_FALSE(at(3, 0).has_ce_counters);
  EXPECT_EQ(at(2, 3).ce_targets_pruned, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Range(uint64_t{0}, uint64_t{50}));

/// Two full sweeps of the same generated network with the same seed and
/// parameters must agree on every machine-independent counter and on
/// the result network — byte-identical `sweep_stats` modulo the
/// wall-clock fields.  Pinned for both engines: any hidden iteration-
/// order or uninitialized-memory nondeterminism shows up here first.
TEST(Differential, SeededSweepsAreDeterministic)
{
  for (const uint64_t seed : {2u, 7u, 13u}) {
    for (const sweep::ce_engine_kind engine :
         {sweep::ce_engine_kind::collapsed, sweep::ce_engine_kind::resim}) {
      net::aig_network first = make_network(seed);
      net::aig_network second = make_network(seed);
      sweep::stp_sweep_params params;
      params.guided.base_patterns = 256u;
      params.ce_engine = engine;
      params.store_word_budget = 2u; // exercise trims + the pattern ring
      const sweep::sweep_stats a = sweep::stp_sweep(first, params);
      const sweep::sweep_stats b = sweep::stp_sweep(second, params);

      EXPECT_EQ(first.num_gates(), second.num_gates());
      EXPECT_EQ(a.gates_before, b.gates_before);
      EXPECT_EQ(a.gates_after, b.gates_after);
      EXPECT_EQ(a.levels_before, b.levels_before);
      EXPECT_EQ(a.sat_calls_total, b.sat_calls_total);
      EXPECT_EQ(a.sat_calls_satisfiable, b.sat_calls_satisfiable);
      EXPECT_EQ(a.merges, b.merges);
      EXPECT_EQ(a.constant_merges, b.constant_merges);
      EXPECT_EQ(a.window_merges, b.window_merges);
      EXPECT_EQ(a.dont_touch, b.dont_touch);
      EXPECT_EQ(a.ce_patterns, b.ce_patterns);
      EXPECT_EQ(a.ce_gates_visited, b.ce_gates_visited);
      EXPECT_EQ(a.ce_gates_scan_baseline, b.ce_gates_scan_baseline);
      EXPECT_EQ(a.ce_targets_pruned, b.ce_targets_pruned);
      EXPECT_EQ(a.ce_engine_used, b.ce_engine_used);
      EXPECT_EQ(a.sat_nodes_encoded, b.sat_nodes_encoded);
      EXPECT_EQ(a.sat_solver_rebuilds, b.sat_solver_rebuilds);
      EXPECT_EQ(a.sat_clauses_peak, b.sat_clauses_peak);
      // Signature-phase seeding is on by default here: two seeded runs
      // must agree on the solver search itself, byte for byte.
      EXPECT_EQ(a.sat_conflicts, b.sat_conflicts);
      EXPECT_EQ(a.sat_decisions, b.sat_decisions);
      EXPECT_EQ(a.sat_restarts, b.sat_restarts);
      EXPECT_EQ(a.phase_seed_words, b.phase_seed_words);
      EXPECT_EQ(a.store_words_live, b.store_words_live);
      EXPECT_EQ(a.store_words_trimmed, b.store_words_trimmed);
      EXPECT_EQ(a.store_peak_bytes, b.store_peak_bytes);
      EXPECT_EQ(a.pattern_words_live, b.pattern_words_live);
      EXPECT_EQ(a.pattern_words_recycled, b.pattern_words_recycled);
      EXPECT_TRUE(sweep::check_equivalence(first, second).equivalent);
    }
  }
}

/// The signature-guided SAT flag square on its own: 5 seeds × every
/// combination of `use_signature_phase` × `use_cone_scoped_decisions`
/// must land on the identical result network.  The per-push ASan CI job
/// runs exactly this slice (the full engine × variant matrix above
/// stays in the release job and nightly).
TEST(Differential, SignaturePhaseAndConeScopingSlice)
{
  uint64_t seeded_total = 0; // across all seeds: the policy really ran
  for (const uint64_t seed : {3u, 11u, 19u, 27u, 35u}) {
    const net::aig_network original = make_network(seed);
    std::vector<net::aig_network> results;
    std::vector<sweep::sweep_stats> stats;
    for (const bool phase : {true, false}) {
      for (const bool cone : {true, false}) {
        net::aig_network result = original;
        sweep::stp_sweep_params params;
        params.guided.base_patterns = 256u;
        params.use_signature_phase = phase;
        params.use_cone_scoped_decisions = cone;
        stats.push_back(sweep::stp_sweep(result, params));
        ASSERT_TRUE(sweep::check_equivalence(original, result).equivalent)
            << "phase=" << phase << " cone=" << cone << ", seed " << seed;
        results.push_back(std::move(result));
      }
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[i].num_gates(), results[0].num_gates())
          << "flag combo " << i << " diverged, seed " << seed;
    }
    // The policies really toggled: seeds flow only when the flag is on
    // (a network swept without any SAT query seeds nothing — require
    // the evidence across the whole slice, not per seed).
    seeded_total += stats[0].phase_seed_words;
    EXPECT_EQ(stats[2].phase_seed_words, 0u);
    EXPECT_EQ(stats[3].phase_seed_words, 0u);
  }
  EXPECT_GT(seeded_total, 0u);
}

/// Mid-sweep escalation: a collapsed-engine sweep whose measured per-CE
/// disturbance crosses the threshold must switch to resim *and still
/// land on the identical result* — the swap carries no state because
/// the resim engine recomputes the open word from the pattern set.
TEST(Differential, EscalationSwitchesEngineMidSweepIdentically)
{
  // The pattern-ring fixture below produces > 128 counter-examples, so
  // the ≥ 64-CE escalation probe always fires.
  net::aig_network escalating = gen::inject_redundancy(
      gen::make_random_logic({24u, 8u, 420u, 0xace5u, 35u}),
      {14u, 3u, 0xfeedu, 200u});
  net::aig_network pure_collapsed = escalating;
  net::aig_network pure_resim = escalating;
  const net::aig_network original = escalating;

  sweep::stp_sweep_params params;
  params.guided.base_patterns = 128u;
  params.use_guided_patterns = false;
  params.use_window_resolution = false;
  params.ce_engine = sweep::ce_engine_kind::automatic;
  params.ce_engine_gate_threshold = 0u; // start collapsed
  params.ce_escalate_per_mille = 1u;    // any disturbance escalates
  const sweep::sweep_stats esc = sweep::stp_sweep(escalating, params);
  ASSERT_GT(esc.ce_patterns, 64u) << "fixture no longer escalates";
  EXPECT_TRUE(esc.ce_engine_escalated);
  EXPECT_EQ(esc.ce_engine_used, sweep::ce_engine_kind::resim);
  // The collapsed phase's counters survive the swap.
  EXPECT_TRUE(esc.has_ce_counters);
  EXPECT_GT(esc.ce_gates_visited, 0u);

  sweep::stp_sweep_params pure = params;
  pure.ce_escalate_per_mille = 0u;
  pure.ce_engine = sweep::ce_engine_kind::collapsed;
  const sweep::sweep_stats col = sweep::stp_sweep(pure_collapsed, pure);
  pure.ce_engine = sweep::ce_engine_kind::resim;
  const sweep::sweep_stats res = sweep::stp_sweep(pure_resim, pure);
  EXPECT_FALSE(col.ce_engine_escalated);
  EXPECT_FALSE(res.ce_engine_escalated);

  EXPECT_EQ(escalating.num_gates(), pure_collapsed.num_gates());
  EXPECT_EQ(escalating.num_gates(), pure_resim.num_gates());
  EXPECT_EQ(esc.merges, col.merges);
  EXPECT_EQ(esc.sat_calls_total, col.sat_calls_total);
  EXPECT_TRUE(sweep::check_equivalence(original, escalating).equivalent);
  EXPECT_TRUE(
      sweep::check_equivalence(escalating, pure_collapsed).equivalent);
}

/// A sweep that produces enough counter-examples to cross several
/// 64-pattern word boundaries must recycle absorbed CE word blocks
/// through the pattern ring instead of growing without bound.
TEST(Differential, PatternRingRecyclesUnderTightBudget)
{
  // Near-duplicates are false candidates only a counter-example can
  // split; with window resolution off and guided patterns off, each one
  // costs at least one CE — enough to cross several word boundaries.
  net::aig_network aig = gen::inject_redundancy(
      gen::make_random_logic({24u, 8u, 420u, 0xace5u, 35u}),
      {14u, 3u, 0xfeedu, 200u});
  const net::aig_network original = aig;
  sweep::stp_sweep_params params;
  params.guided.base_patterns = 128u;
  params.use_guided_patterns = false; // keep signatures noisy: more CEs
  params.use_window_resolution = false;
  params.store_word_budget = 1u;
  const sweep::sweep_stats s = sweep::stp_sweep(aig, params);
  ASSERT_GT(s.ce_patterns, 128u) << "fixture no longer produces enough CEs";
  EXPECT_GT(s.pattern_words_recycled, 0u);
  EXPECT_LE(s.pattern_words_live, 2u); // the open word (+ boundary slack)
  EXPECT_TRUE(sweep::check_equivalence(original, aig).equivalent);
}

/// Finite budgets and injected SAT-layer faults: a fifth differential
/// column family.  Tight per-query budgets (with and without the
/// escalating unDET retry), a forced-unknown schedule, forced
/// garbage-epoch rebuilds, and refused store trims all degrade *effort*
/// only — every result must stay CEC-equivalent to the original, every
/// un-governed sweep must report `sweep_outcome::complete`, and the
/// columns that cannot change answers (rebuild, trim) must land on the
/// default column's exact result gate count.  This is the slice the
/// per-push ASan CI job runs.
TEST(Differential, FiniteBudgetAndInjectedFaultsStaySound)
{
  struct fault_column
  {
    const char* name;
    int64_t conflict_budget;
    uint32_t retry_rounds;
    uint32_t unknown_every;
    uint32_t rebuild_every;
    bool fail_trim;
    bool result_identical; ///< must match the default column's gates
  };
  constexpr fault_column columns[] = {
      {"default", -1, 3u, 0u, 0u, false, true},
      {"budget50_retry", 50, 3u, 0u, 0u, false, false},
      {"budget50_single", 50, 0u, 0u, 0u, false, false},
      {"fault_unknown", -1, 3u, 3u, 0u, false, false},
      {"fault_rebuild", -1, 3u, 0u, 7u, false, true},
      {"fault_trim", -1, 3u, 0u, 0u, true, true},
  };
  for (const uint64_t seed : {1u, 6u, 12u, 18u, 23u, 31u, 37u, 42u, 44u,
                              49u}) {
    const net::aig_network original = make_network(seed);
    uint32_t default_gates = 0;
    for (const fault_column& c : columns) {
      net::aig_network result = original;
      sweep::stp_sweep_params params;
      params.guided.base_patterns = 256u;
      params.conflict_budget = c.conflict_budget;
      params.undet_retry_rounds = c.retry_rounds;
      params.faults.unknown_every = c.unknown_every;
      params.faults.rebuild_every = c.rebuild_every;
      params.fault_fail_store_trim = c.fail_trim;
      params.store_word_budget = 1u; // give the trim fault work to refuse
      const sweep::sweep_stats s = sweep::stp_sweep(result, params);
      EXPECT_EQ(s.outcome, sweep::sweep_outcome::complete)
          << c.name << ", seed " << seed;
      ASSERT_TRUE(sweep::check_equivalence(original, result).equivalent)
          << c.name << " not equivalent, seed " << seed;
      if (std::string{c.name} == "default") {
        default_gates = result.num_gates();
      } else if (c.result_identical) {
        EXPECT_EQ(result.num_gates(), default_gates)
            << c.name << " diverged, seed " << seed;
      } else {
        // Budget/forced-unknown columns may only *miss* merges.
        EXPECT_GE(result.num_gates(), default_gates)
            << c.name << ", seed " << seed;
      }
    }
    // The fraig baseline shares the budget + fault layer.
    net::aig_network by_fraig = original;
    sweep::fraig_params fparams{256u, seed + 1u, 50};
    fparams.faults.unknown_every = 5u;
    const sweep::sweep_stats fs = sweep::fraig_sweep(by_fraig, fparams);
    EXPECT_EQ(fs.outcome, sweep::sweep_outcome::complete);
    ASSERT_TRUE(sweep::check_equivalence(original, by_fraig).equivalent)
        << "fraig budget+fault not equivalent, seed " << seed;
  }
}

} // namespace
