#include "gen/arithmetic.hpp"
#include "gen/random_logic.hpp"
#include "network/convert.hpp"
#include "sim/bitwise_sim.hpp"
#include "sim/patterns.hpp"

#include <gtest/gtest.h>

#include <random>

namespace {

using namespace stps;

TEST(Patterns, RandomShapeAndTail)
{
  const auto p = sim::pattern_set::random(5u, 100u, 7u);
  EXPECT_EQ(p.num_inputs(), 5u);
  EXPECT_EQ(p.num_patterns(), 100u);
  EXPECT_EQ(p.num_words(), 2u);
  // Tail bits beyond pattern 99 must be zero.
  for (uint32_t i = 0; i < 5u; ++i) {
    EXPECT_EQ(p.input_bits(i)[1] >> 36u, 0u);
  }
}

TEST(Patterns, ExhaustiveEnumeratesAllAssignments)
{
  const auto p = sim::pattern_set::exhaustive(4u);
  EXPECT_EQ(p.num_patterns(), 16u);
  for (uint64_t pat = 0; pat < 16u; ++pat) {
    for (uint32_t input = 0; input < 4u; ++input) {
      EXPECT_EQ(p.bit(input, pat), ((pat >> input) & 1u) != 0u);
    }
  }
}

TEST(Patterns, AddPatternAppends)
{
  sim::pattern_set p{3u};
  p.add_pattern({true, false, true});
  p.add_pattern({false, true, false});
  EXPECT_EQ(p.num_patterns(), 2u);
  EXPECT_TRUE(p.bit(0, 0));
  EXPECT_FALSE(p.bit(1, 0));
  EXPECT_TRUE(p.bit(2, 0));
  EXPECT_FALSE(p.bit(0, 1));
  EXPECT_TRUE(p.bit(1, 1));
}

TEST(Patterns, InputBitsFailsLoudlyOnTailWordsAndTrimmedBase)
{
  // The contiguous base-arena view silently returned stale words for
  // counter-example patterns (and freed memory after a base trim) in
  // release builds; both conditions must throw in every build type.
  sim::pattern_set p = sim::pattern_set::random(3u, 128u, 9u);
  EXPECT_EQ(p.input_bits(0u).size(), p.num_words());
  while (p.num_words() <= p.base_words()) {
    p.add_pattern({true, false, true}); // spill into a CE tail block
  }
  EXPECT_THROW(p.input_bits(0u), std::logic_error);
  // input_word / copy_input_bits stay the supported accessors.
  EXPECT_EQ(p.input_word(0u, p.num_words() - 1u) & 1u, 1u);

  sim::pattern_set trimmed = sim::pattern_set::random(3u, 128u, 9u);
  trimmed.trim_words(trimmed.num_words()); // frees the base arena
  ASSERT_GT(trimmed.words_trimmed(), 0u);
  EXPECT_THROW(trimmed.input_bits(0u), std::logic_error);
}

TEST(Patterns, TailBlocksAreWordMajorAndAbsoluteIndexed)
{
  // 100 base patterns (2 base words); appends spill into word-major
  // tail blocks without repacking the base.
  auto p = sim::pattern_set::random(3u, 100u, 21u);
  EXPECT_EQ(p.base_words(), 2u);
  const uint64_t w0 = p.input_word(1u, 0u);
  std::vector<bool> ones(3u, true);
  for (uint32_t i = 0; i < 64u; ++i) {
    p.add_pattern(ones);
  }
  EXPECT_EQ(p.num_patterns(), 164u);
  EXPECT_EQ(p.num_words(), 3u);
  EXPECT_EQ(p.base_words(), 2u);
  EXPECT_EQ(p.input_word(1u, 0u), w0) << "base never repacked";
  // Patterns 100..127 fill the rest of base word 1, 128..163 start tail
  // word 2.
  EXPECT_EQ(p.input_word(2u, 1u) >> 36u, (~uint64_t{0}) >> 36u);
  EXPECT_EQ(p.input_word(0u, 2u), (uint64_t{1} << 36u) - 1u);
  EXPECT_TRUE(p.bit(0u, 163u));
}

/// Property (the bounded-ring contract, mirroring the
/// `test_signature_store` budget tests): under random append/trim
/// interleavings, every live word of the trimmed pattern set matches an
/// unbounded reference fed the identical patterns, counters stay
/// consistent, and absorbed CE word blocks really recycle through the
/// ring instead of allocating fresh.
TEST(Patterns, RingInterleavingsMatchUnboundedReference)
{
  for (uint64_t seed = 0; seed < 20u; ++seed) {
    std::mt19937_64 rng{0x9a77u + seed};
    const uint32_t inputs = 1u + rng() % 12u;
    const uint64_t base = rng() % 130u;
    auto trimmed = sim::pattern_set::random(inputs, base, seed);
    auto reference = sim::pattern_set::random(inputs, base, seed);

    std::vector<bool> assignment(inputs);
    for (std::size_t step = 0; step < 400u; ++step) {
      if (rng() % 8u != 0u) {
        for (uint32_t i = 0; i < inputs; ++i) {
          assignment[i] = (rng() & 1u) != 0u;
        }
        trimmed.add_pattern(assignment);
        reference.add_pattern(assignment);
      } else {
        // Absorb everything but the open word, like the sweeper's
        // word-budget trim.
        const std::size_t open = trimmed.num_patterns() % 64u == 0u
                                     ? trimmed.num_words()
                                     : trimmed.num_words() - 1u;
        trimmed.trim_words(open);
      }
      ASSERT_EQ(trimmed.num_patterns(), reference.num_patterns());
      ASSERT_EQ(trimmed.num_words(), reference.num_words());
      ASSERT_EQ(trimmed.live_words() + trimmed.words_trimmed(),
                trimmed.num_words());
      for (uint32_t i = 0; i < inputs; ++i) {
        for (std::size_t w = trimmed.first_live_word();
             w < trimmed.num_words(); ++w) {
          ASSERT_EQ(trimmed.input_word(i, w), reference.input_word(i, w))
              << "seed " << seed << " input " << i << " word " << w;
        }
      }
    }
    EXPECT_EQ(reference.words_trimmed(), 0u);
    EXPECT_EQ(reference.words_recycled(), 0u);
    EXPECT_LE(trimmed.tail_blocks_allocated(),
              reference.tail_blocks_allocated());
    if (trimmed.words_recycled() > 2u) {
      // The ring bounds fresh allocations: once blocks recycle, appends
      // reuse them instead of allocating one block per CE word.
      EXPECT_LT(trimmed.tail_blocks_allocated(),
                reference.tail_blocks_allocated());
    }
  }
}

TEST(Simulate, AdderComputesArithmetic)
{
  const uint32_t width = 16u;
  auto aig = stps::gen::make_adder(width);
  const auto patterns = sim::pattern_set::random(aig.num_pis(), 256u, 11u);
  const auto sig = sim::simulate_aig(aig, patterns);

  const auto po_value = [&](uint32_t po, uint64_t pat) {
    const auto f = aig.po_at(po);
    const bool v = (sig[f.get_node()][pat >> 6u] >> (pat & 63u)) & 1u;
    return v != f.is_complemented();
  };
  for (uint64_t pat = 0; pat < 256u; ++pat) {
    uint64_t a = 0, b = 0;
    for (uint32_t i = 0; i < width; ++i) {
      a |= uint64_t{patterns.bit(i, pat)} << i;
      b |= uint64_t{patterns.bit(width + i, pat)} << i;
    }
    const uint64_t cin = patterns.bit(2u * width, pat);
    const uint64_t sum = a + b + cin;
    for (uint32_t i = 0; i <= width; ++i) {
      EXPECT_EQ(po_value(i, pat), ((sum >> i) & 1u) != 0u)
          << "pattern " << pat << " bit " << i;
    }
  }
}

class SimCrossCheck : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SimCrossCheck, WordParallelMatchesSingleEvaluation)
{
  const auto aig = stps::gen::make_random_logic(
      {12u, 8u, 300u, GetParam(), 25u});
  const auto patterns = sim::pattern_set::random(12u, 64u, GetParam() + 1u);
  const auto sig = sim::simulate_aig(aig, patterns);

  for (uint64_t pat = 0; pat < 8u; ++pat) { // sample patterns
    std::vector<bool> assignment;
    for (uint32_t i = 0; i < 12u; ++i) {
      assignment.push_back(patterns.bit(i, pat));
    }
    std::vector<bool> buf(assignment.begin(), assignment.end());
    bool plain[12];
    for (uint32_t i = 0; i < 12u; ++i) {
      plain[i] = buf[i];
    }
    aig.foreach_gate([&](net::node n) {
      const bool expect = sim::evaluate_aig_node(
          aig, n, std::span<const bool>{plain, 12u});
      const bool got = (sig[n][0] >> pat) & 1u;
      EXPECT_EQ(got, expect) << "node " << n << " pattern " << pat;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimCrossCheck, ::testing::Values(1u, 2u, 3u));

TEST(Simulate, KlutBitwiseMatchesAig)
{
  const auto aig = stps::gen::make_max(12u);
  const auto conv = net::aig_to_klut(aig);
  const auto patterns = sim::pattern_set::random(aig.num_pis(), 320u, 5u);
  const auto sig_aig = sim::simulate_aig(aig, patterns);
  const auto sig_klut = sim::simulate_klut_bitwise(conv.klut, patterns);
  aig.foreach_gate([&](net::node n) {
    const auto m = conv.node_map[n];
    EXPECT_EQ(sig_aig[n], sig_klut[m]) << "node " << n;
  });
}

TEST(Simulate, IncrementalLastWordMatchesFullResim)
{
  const auto aig = stps::gen::make_random_logic({10u, 6u, 200u, 9u, 20u});
  auto patterns = sim::pattern_set::random(10u, 64u, 10u);
  auto sig = sim::simulate_aig(aig, patterns);

  // Append 3 counter-example-style patterns and resim incrementally.
  for (uint64_t i = 0; i < 3u; ++i) {
    std::vector<bool> ce;
    for (uint32_t j = 0; j < 10u; ++j) {
      ce.push_back(((i + j) % 3u) == 0u);
    }
    patterns.add_pattern(ce);
    sim::resimulate_aig_last_word(aig, patterns, sig);
  }
  const auto full = sim::simulate_aig(aig, patterns);
  aig.foreach_gate([&](net::node n) { EXPECT_EQ(sig[n], full[n]); });
}

TEST(Simulate, InputCountMismatchThrows)
{
  const auto aig = stps::gen::make_adder(4u);
  const auto patterns = sim::pattern_set::random(3u, 64u, 1u);
  EXPECT_THROW(sim::simulate_aig(aig, patterns), std::invalid_argument);
}

} // namespace
