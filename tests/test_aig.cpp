#include "network/aig.hpp"
#include "network/traversal.hpp"
#include "sim/bitwise_sim.hpp"
#include "sim/patterns.hpp"

#include <gtest/gtest.h>

namespace {

using stps::net::aig_network;
using stps::net::node;
using stps::net::signal;

TEST(Aig, EmptyNetwork)
{
  aig_network aig;
  EXPECT_EQ(aig.size(), 1u); // constant node
  EXPECT_EQ(aig.num_pis(), 0u);
  EXPECT_EQ(aig.num_gates(), 0u);
  EXPECT_TRUE(aig.is_constant(0u));
}

TEST(Aig, TrivialAndReductions)
{
  aig_network aig;
  const signal a = aig.create_pi();
  const signal zero = aig.get_constant(false);
  const signal one = aig.get_constant(true);
  EXPECT_EQ(aig.create_and(a, zero), zero);
  EXPECT_EQ(aig.create_and(a, one), a);
  EXPECT_EQ(aig.create_and(a, a), a);
  EXPECT_EQ(aig.create_and(a, !a), zero);
  EXPECT_EQ(aig.num_gates(), 0u);
}

TEST(Aig, StructuralHashing)
{
  aig_network aig;
  const signal a = aig.create_pi();
  const signal b = aig.create_pi();
  const signal g1 = aig.create_and(a, b);
  const signal g2 = aig.create_and(b, a); // commuted
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(aig.num_gates(), 1u);
  EXPECT_EQ(aig.strash_hits(), 1u);
  const signal g3 = aig.create_and(a, !b);
  EXPECT_NE(g1, g3);
  EXPECT_EQ(aig.num_gates(), 2u);
}

TEST(Aig, DerivedGatesSimulateCorrectly)
{
  aig_network aig;
  const signal a = aig.create_pi();
  const signal b = aig.create_pi();
  const signal s = aig.create_pi();
  aig.create_po(aig.create_xor(a, b));
  aig.create_po(aig.create_or(a, b));
  aig.create_po(aig.create_mux(s, a, b));
  aig.create_po(aig.create_maj(a, b, s));

  const auto patterns = stps::sim::pattern_set::exhaustive(3u);
  const auto sig = stps::sim::simulate_aig(aig, patterns);
  const auto value = [&](signal f, uint64_t p) {
    const bool v = (sig[f.get_node()][0] >> p) & 1u;
    return v != f.is_complemented();
  };
  for (uint64_t p = 0; p < 8u; ++p) {
    const bool va = (p >> 0) & 1u;
    const bool vb = (p >> 1) & 1u;
    const bool vs = (p >> 2) & 1u;
    EXPECT_EQ(value(aig.po_at(0), p), va != vb);
    EXPECT_EQ(value(aig.po_at(1), p), va || vb);
    EXPECT_EQ(value(aig.po_at(2), p), vs ? va : vb);
    EXPECT_EQ(value(aig.po_at(3), p),
              (va && vb) || (va && vs) || (vb && vs));
  }
}

TEST(Aig, FanoutTracking)
{
  aig_network aig;
  const signal a = aig.create_pi();
  const signal b = aig.create_pi();
  const signal c = aig.create_pi();
  const signal g = aig.create_and(a, b);
  const signal h1 = aig.create_and(g, c);
  const signal h2 = aig.create_and(!g, !c);
  aig.create_po(h1);
  aig.create_po(h2);
  const auto& fo = aig.fanout(g.get_node());
  ASSERT_EQ(fo.size(), 2u);
  EXPECT_EQ(fo[0], h1.get_node());
  EXPECT_EQ(fo[1], h2.get_node());
  EXPECT_EQ(aig.fanout_size(h1.get_node()), 1u); // the PO
}

TEST(Aig, SubstituteRewiresPos)
{
  aig_network aig;
  const signal a = aig.create_pi();
  const signal b = aig.create_pi();
  const signal g = aig.create_and(a, b);
  aig.create_po(g);
  aig.create_po(!g);
  aig.substitute_node(g.get_node(), a);
  EXPECT_TRUE(aig.is_dead(g.get_node()));
  EXPECT_EQ(aig.po_at(0), a);
  EXPECT_EQ(aig.po_at(1), !a);
  EXPECT_EQ(aig.num_gates(), 0u);
}

TEST(Aig, SubstituteRewiresFanouts)
{
  aig_network aig;
  const signal a = aig.create_pi();
  const signal b = aig.create_pi();
  const signal c = aig.create_pi();
  const signal g = aig.create_and(a, b);
  const signal h = aig.create_and(g, c);
  aig.create_po(h);
  aig.substitute_node(g.get_node(), !a);
  EXPECT_TRUE(aig.is_dead(g.get_node()));
  EXPECT_FALSE(aig.is_dead(h.get_node()));
  // h must now compute !a & c.
  const auto patterns = stps::sim::pattern_set::exhaustive(3u);
  const auto sig = stps::sim::simulate_aig(aig, patterns);
  for (uint64_t p = 0; p < 8u; ++p) {
    const bool va = (p >> 0) & 1u;
    const bool vc = (p >> 2) & 1u;
    const bool vh = (sig[aig.po_at(0).get_node()][0] >> p) & 1u;
    EXPECT_EQ(vh != aig.po_at(0).is_complemented(), !va && vc);
  }
}

TEST(Aig, SubstituteCascadesThroughStrashing)
{
  // g1 = a·b, g2 = c·b, h1 = g1·d, h2 = g2·d.  Substituting g2 by g1
  // makes h2 structurally identical to h1, so h2 must merge too.
  aig_network aig;
  const signal a = aig.create_pi();
  const signal b = aig.create_pi();
  const signal c = aig.create_pi();
  const signal d = aig.create_pi();
  const signal g1 = aig.create_and(a, b);
  const signal g2 = aig.create_and(c, b);
  const signal h1 = aig.create_and(g1, d);
  const signal h2 = aig.create_and(g2, d);
  aig.create_po(h1);
  aig.create_po(h2);
  EXPECT_EQ(aig.num_gates(), 4u);
  const uint32_t died = aig.substitute_node(g2.get_node(), g1);
  EXPECT_EQ(died, 2u); // g2 and h2
  EXPECT_TRUE(aig.is_dead(h2.get_node()));
  EXPECT_EQ(aig.po_at(0), aig.po_at(1));
  EXPECT_EQ(aig.num_gates(), 2u);
}

TEST(Aig, SubstituteToConstantCollapsesCone)
{
  aig_network aig;
  const signal a = aig.create_pi();
  const signal b = aig.create_pi();
  const signal g = aig.create_and(a, b);
  const signal h = aig.create_and(g, a);
  aig.create_po(h);
  aig.substitute_node(g.get_node(), aig.get_constant(false));
  // h = 0 & a = 0 → PO is constant 0.
  EXPECT_EQ(aig.po_at(0), aig.get_constant(false));
  EXPECT_EQ(aig.num_gates(), 0u);
}

TEST(Aig, TopologicalInvariantSurvivesSubstitution)
{
  aig_network aig;
  const signal a = aig.create_pi();
  const signal b = aig.create_pi();
  const signal c = aig.create_pi();
  const signal g1 = aig.create_and(a, b);
  const signal g2 = aig.create_and(g1, c);
  const signal g3 = aig.create_and(!g1, !c);
  const signal g4 = aig.create_and(g2, g3);
  aig.create_po(g4);
  aig.substitute_node(g2.get_node(), g1);
  // Every live gate's fanins must still have smaller ids.
  aig.foreach_gate([&](node n) {
    EXPECT_LT(aig.fanin0(n).get_node(), n);
    EXPECT_LT(aig.fanin1(n).get_node(), n);
  });
}

TEST(Aig, CleanupDanglingRemovesUnreachable)
{
  aig_network aig;
  const signal a = aig.create_pi();
  const signal b = aig.create_pi();
  const signal used = aig.create_and(a, b);
  const signal dangling1 = aig.create_and(a, !b);
  const signal dangling2 = aig.create_and(dangling1, b);
  (void)dangling2;
  aig.create_po(used);
  EXPECT_EQ(aig.num_gates(), 3u);
  const uint32_t removed = aig.cleanup_dangling();
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(aig.num_gates(), 1u);
  EXPECT_FALSE(aig.is_dead(used.get_node()));
}

TEST(Aig, PiNamesPreserved)
{
  aig_network aig;
  aig.create_pi("alpha");
  aig.create_pi("beta");
  EXPECT_EQ(aig.pi_name(0), "alpha");
  EXPECT_EQ(aig.pi_name(1), "beta");
  aig.create_po(aig.get_constant(false), "out");
  EXPECT_EQ(aig.po_name(0), "out");
}

} // namespace
