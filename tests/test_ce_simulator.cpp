#include "sweep/ce_simulator.hpp"

#include "gen/random_logic.hpp"
#include "gen/redundancy.hpp"
#include "sim/bitwise_sim.hpp"

#include <gtest/gtest.h>

#include <random>

namespace {

using namespace stps;

/// Circuit + the target set the sweeper would watch (every live gate).
struct fixture
{
  net::aig_network aig;
  std::vector<net::node> targets;
};

fixture make_fixture(uint64_t seed, uint32_t gates = 600u)
{
  fixture f;
  const auto base = gen::make_random_logic({14u, 10u, gates, seed, 25u});
  f.aig = gen::inject_redundancy(base, {8u, 4u, seed});
  f.aig.foreach_gate([&](net::node n) { f.targets.push_back(n); });
  return f;
}

std::vector<bool> random_assignment(std::mt19937_64& rng, uint32_t num_pis,
                                    double flip_probability)
{
  // Sparse flips model real counter-examples (close to the padding
  // default); occasional dense ones stress deep propagation.
  std::bernoulli_distribution flip{flip_probability};
  std::vector<bool> ce(num_pis);
  for (uint32_t i = 0; i < num_pis; ++i) {
    ce[i] = flip(rng);
  }
  return ce;
}

TEST(CeSimulator, WorklistMatchesFullResimulationOnRandomCes)
{
  for (const uint64_t seed : {5u, 23u, 91u}) {
    auto [aig, targets] = make_fixture(seed);
    auto patterns = sim::pattern_set::random(aig.num_pis(), 200u, seed);

    sweep::ce_simulator cesim;
    cesim.build(aig, targets, 8u, patterns);

    std::mt19937_64 rng{seed};
    for (uint32_t i = 0; i < 150u; ++i) {
      const double density = i % 10u == 9u ? 0.5 : 0.1;
      const auto ce = random_assignment(rng, aig.num_pis(), density);
      patterns.add_pattern(ce);
      cesim.add_ce(patterns, ce);
    }

    // Full reference simulation over the final pattern set.
    const auto reference = sim::simulate_aig(aig, patterns);
    const uint64_t mask = sim::tail_mask(patterns.num_patterns());
    for (const net::node n : targets) {
      for (std::size_t w = 0; w < patterns.num_words(); ++w) {
        const uint64_t m = w + 1u == patterns.num_words() ? mask
                                                          : ~uint64_t{0};
        EXPECT_EQ(cesim.node_word(aig, n, patterns, w) & m,
                  reference.word(n, w) & m)
            << "seed " << seed << " node " << n << " word " << w;
      }
    }
  }
}

TEST(CeSimulator, IncrementalAddCeMatchesRebuild)
{
  for (const uint64_t seed : {7u, 41u}) {
    auto [aig, targets] = make_fixture(seed);
    auto patterns = sim::pattern_set::random(aig.num_pis(), 190u, seed);

    sweep::ce_simulator incremental;
    incremental.build(aig, targets, 8u, patterns);

    // Absorb 140 CEs one bit at a time — crossing two word boundaries.
    std::mt19937_64 rng{seed * 77u};
    for (uint32_t i = 0; i < 140u; ++i) {
      const double density = i % 7u == 6u ? 0.4 : 0.08;
      const auto ce = random_assignment(rng, aig.num_pis(), density);
      patterns.add_pattern(ce);
      incremental.add_ce(patterns, ce);
    }

    sweep::ce_simulator rebuilt;
    rebuilt.build(aig, targets, 8u, patterns);
    const uint64_t mask = sim::tail_mask(patterns.num_patterns());
    for (const net::node n : targets) {
      for (std::size_t w = 0; w < patterns.num_words(); ++w) {
        const uint64_t m = w + 1u == patterns.num_words() ? mask
                                                          : ~uint64_t{0};
        EXPECT_EQ(incremental.node_word(aig, n, patterns, w) & m,
                  rebuilt.node_word(aig, n, patterns, w) & m)
            << "seed " << seed << " node " << n << " word " << w;
      }
    }
  }
}

TEST(CeSimulator, PrunedTargetsMatchUnprunedWordForWord)
{
  // Target pruning (reps + fanout frontier) must change where a member's
  // word is computed, never its value: every target word of a pruned
  // build equals the unpruned build, on the initial words and after
  // counter-examples crossed word boundaries.
  for (const uint64_t seed : {11u, 47u}) {
    auto [aig, targets] = make_fixture(seed);
    auto patterns = sim::pattern_set::random(aig.num_pis(), 200u, seed);

    // Pin every 7th target, mimicking the sweeper's class reps.
    std::vector<net::node> pinned;
    for (std::size_t i = 0; i < targets.size(); i += 7u) {
      pinned.push_back(targets[i]);
    }

    sweep::ce_simulator plain;
    plain.build(aig, targets, 8u, patterns);
    sweep::ce_simulator pruned;
    sweep::ce_build_options options;
    options.pinned = pinned;
    options.prune_targets = true;
    pruned.build(aig, targets, 8u, patterns, options);
    ASSERT_GT(pruned.targets_pruned(), 0u) << "fixture prunes nothing";
    EXPECT_EQ(plain.targets_pruned(), 0u);

    std::mt19937_64 rng{seed * 31u};
    for (uint32_t i = 0; i < 100u; ++i) {
      const auto ce = random_assignment(rng, aig.num_pis(), 0.12);
      patterns.add_pattern(ce);
      plain.add_ce(patterns, ce);
      pruned.add_ce(patterns, ce);
    }

    const uint64_t mask = sim::tail_mask(patterns.num_patterns());
    for (const net::node n : targets) {
      for (std::size_t w = 0; w < patterns.num_words(); ++w) {
        const uint64_t m = w + 1u == patterns.num_words() ? mask
                                                          : ~uint64_t{0};
        EXPECT_EQ(pruned.node_word(aig, n, patterns, w) & m,
                  plain.node_word(aig, n, patterns, w) & m)
            << "seed " << seed << " node " << n << " word " << w;
      }
    }
    // The pruned collapsed view is smaller, so CE propagation touches
    // fewer gates for the same counter-examples.
    EXPECT_LT(pruned.needed_gate_count(), plain.needed_gate_count());
  }
}

TEST(CeSimulator, ReducedInitialArenaMatchesOnLiveWords)
{
  // With `initial_words = 1` only the open word is simulated at build;
  // every word at or beyond the reduction start must match the full
  // build bit for bit, and the skipped words must carry no storage.
  auto [aig, targets] = make_fixture(19u);
  auto patterns = sim::pattern_set::random(aig.num_pis(), 200u, 19u);
  const std::size_t start = patterns.num_words() - 1u;

  sweep::ce_simulator full;
  full.build(aig, targets, 8u, patterns);
  sweep::ce_simulator reduced;
  sweep::ce_build_options options;
  options.initial_words = 1u;
  reduced.build(aig, targets, 8u, patterns, options);

  EXPECT_EQ(reduced.store().words_trimmed(), start);
  EXPECT_EQ(reduced.store().live_words(), 1u);
  EXPECT_LT(reduced.store().peak_bytes(), full.store().peak_bytes());

  std::mt19937_64 rng{0x9e1u};
  for (uint32_t i = 0; i < 150u; ++i) {
    const auto ce = random_assignment(rng, aig.num_pis(), 0.1);
    patterns.add_pattern(ce);
    full.add_ce(patterns, ce);
    reduced.add_ce(patterns, ce);
  }

  const uint64_t mask = sim::tail_mask(patterns.num_patterns());
  for (const net::node n : targets) {
    for (std::size_t w = start; w < patterns.num_words(); ++w) {
      const uint64_t m = w + 1u == patterns.num_words() ? mask
                                                        : ~uint64_t{0};
      EXPECT_EQ(reduced.node_word(aig, n, patterns, w) & m,
                full.node_word(aig, n, patterns, w) & m)
          << "node " << n << " word " << w;
    }
  }
}

TEST(CeSimulator, FanoutPropagationVisitsFewerGatesThanNeededScan)
{
  // The output-sensitivity pin: over a batch of realistic (sparse)
  // counter-examples, the fanout-driven worklist must evaluate strictly
  // fewer gates than the input-insensitive needed-set scan it replaced.
  auto [aig, targets] = make_fixture(3u, 1000u);
  auto patterns = sim::pattern_set::random(aig.num_pis(), 256u, 3u);

  sweep::ce_simulator cesim;
  cesim.build(aig, targets, 8u, patterns);
  ASSERT_GT(cesim.needed_gate_count(), 0u);

  std::mt19937_64 rng{1234u};
  for (uint32_t i = 0; i < 100u; ++i) {
    const auto ce = random_assignment(rng, aig.num_pis(), 0.15);
    patterns.add_pattern(ce);
    cesim.add_ce(patterns, ce);
  }
  EXPECT_EQ(cesim.ce_gates_scan_baseline(),
            100u * cesim.needed_gate_count());
  EXPECT_LT(cesim.ce_gates_visited(), cesim.ce_gates_scan_baseline());
  EXPECT_GT(cesim.ce_gates_visited(), 0u);
}

} // namespace
