#include "gen/arithmetic.hpp"
#include "network/convert.hpp"
#include "network/klut.hpp"
#include "sim/bitwise_sim.hpp"
#include "tt/operations.hpp"

#include <gtest/gtest.h>

namespace {

using stps::net::klut_network;

TEST(Klut, ConstantsAndPis)
{
  klut_network klut;
  EXPECT_EQ(klut.get_constant(false), 0u);
  EXPECT_EQ(klut.get_constant(true), 1u);
  const auto pi = klut.create_pi("x");
  EXPECT_TRUE(klut.is_pi(pi));
  EXPECT_EQ(klut.num_pis(), 1u);
  EXPECT_EQ(klut.num_gates(), 0u);
}

TEST(Klut, CreateNodeValidation)
{
  klut_network klut;
  const auto a = klut.create_pi();
  const auto b = klut.create_pi();
  const klut_network::node fis[2] = {a, b};
  // Arity mismatch throws.
  EXPECT_THROW(klut.create_node(fis, stps::tt::make_maj3()),
               std::invalid_argument);
  const auto g = klut.create_node(fis, stps::tt::make_and2());
  EXPECT_TRUE(klut.is_gate(g));
  EXPECT_EQ(klut.num_gates(), 1u);
  EXPECT_EQ(klut.fanin_count(g), 2u);
  EXPECT_EQ(klut.max_fanin_size(), 2u);
  // Fanins must precede the node.
  const klut_network::node bad[1] = {g + 5u};
  EXPECT_THROW(klut.create_node(bad, stps::tt::make_const0(1u)),
               std::invalid_argument);
  // No PIs after gates.
  EXPECT_THROW(klut.create_pi(), std::logic_error);
}

TEST(Klut, AigConversionPreservesFunctions)
{
  auto aig = stps::gen::make_adder(8u);
  const auto conv = stps::net::aig_to_klut(aig);
  ASSERT_EQ(conv.klut.num_pis(), aig.num_pis());
  ASSERT_EQ(conv.klut.num_pos(), aig.num_pos());

  const auto patterns = stps::sim::pattern_set::random(aig.num_pis(), 512u, 3u);
  const auto sig_aig = stps::sim::simulate_aig(aig, patterns);
  const auto sig_klut = stps::sim::simulate_klut_bitwise(conv.klut, patterns);

  for (uint32_t i = 0; i < aig.num_pos(); ++i) {
    const auto f = aig.po_at(i);
    const auto k = conv.klut.po_at(i);
    for (std::size_t w = 0; w < patterns.num_words(); ++w) {
      const uint64_t va = sig_aig[f.get_node()][w] ^
                          (f.is_complemented() ? ~uint64_t{0} : 0u);
      uint64_t vk = sig_klut[k][w];
      uint64_t mask = ~uint64_t{0};
      if (w + 1u == patterns.num_words() &&
          (patterns.num_patterns() % 64u) != 0u) {
        mask = (uint64_t{1} << (patterns.num_patterns() % 64u)) - 1u;
      }
      EXPECT_EQ(va & mask, vk & mask) << "PO " << i << " word " << w;
    }
  }
}

TEST(Klut, ForeachVisitsInOrder)
{
  klut_network klut;
  const auto a = klut.create_pi();
  const auto b = klut.create_pi();
  const klut_network::node fis[2] = {a, b};
  const auto g1 = klut.create_node(fis, stps::tt::make_and2());
  const klut_network::node fis2[2] = {g1, b};
  const auto g2 = klut.create_node(fis2, stps::tt::make_or2());
  klut.create_po(g2);

  std::vector<klut_network::node> gates;
  klut.foreach_gate([&](klut_network::node n) { gates.push_back(n); });
  ASSERT_EQ(gates.size(), 2u);
  EXPECT_EQ(gates[0], g1);
  EXPECT_EQ(gates[1], g2);
}

} // namespace
