#include "cut/tree_cuts.hpp"
#include "gen/arithmetic.hpp"
#include "gen/random_logic.hpp"
#include "network/convert.hpp"
#include "network/klut.hpp"
#include "sim/bitwise_sim.hpp"
#include "tt/operations.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace {

using stps::net::klut_network;

/// Reference fanout lists recomputed from scratch out of the fanin
/// lists: each gate once per distinct fanin, ids ascending.
std::vector<std::vector<klut_network::node>>
reference_fanouts(const klut_network& klut)
{
  std::vector<std::vector<klut_network::node>> ref(klut.size());
  klut.foreach_gate([&](klut_network::node n) {
    auto fis = klut.fanins(n);
    std::sort(fis.begin(), fis.end());
    fis.erase(std::unique(fis.begin(), fis.end()), fis.end());
    for (const auto f : fis) {
      ref[f].push_back(n);
    }
  });
  return ref;
}

void expect_fanouts_consistent(const klut_network& klut)
{
  const auto ref = reference_fanouts(klut);
  for (klut_network::node n = 0; n < klut.size(); ++n) {
    EXPECT_EQ(klut.fanout(n), ref[n]) << "node " << n;
    EXPECT_EQ(klut.fanout_count(n), ref[n].size()) << "node " << n;
  }
}

TEST(Klut, ConstantsAndPis)
{
  klut_network klut;
  EXPECT_EQ(klut.get_constant(false), 0u);
  EXPECT_EQ(klut.get_constant(true), 1u);
  const auto pi = klut.create_pi("x");
  EXPECT_TRUE(klut.is_pi(pi));
  EXPECT_EQ(klut.num_pis(), 1u);
  EXPECT_EQ(klut.num_gates(), 0u);
}

TEST(Klut, CreateNodeValidation)
{
  klut_network klut;
  const auto a = klut.create_pi();
  const auto b = klut.create_pi();
  const klut_network::node fis[2] = {a, b};
  // Arity mismatch throws.
  EXPECT_THROW(klut.create_node(fis, stps::tt::make_maj3()),
               std::invalid_argument);
  const auto g = klut.create_node(fis, stps::tt::make_and2());
  EXPECT_TRUE(klut.is_gate(g));
  EXPECT_EQ(klut.num_gates(), 1u);
  EXPECT_EQ(klut.fanin_count(g), 2u);
  EXPECT_EQ(klut.max_fanin_size(), 2u);
  // Fanins must precede the node.
  const klut_network::node bad[1] = {g + 5u};
  EXPECT_THROW(klut.create_node(bad, stps::tt::make_const0(1u)),
               std::invalid_argument);
  // No PIs after gates.
  EXPECT_THROW(klut.create_pi(), std::logic_error);
}

TEST(Klut, AigConversionPreservesFunctions)
{
  auto aig = stps::gen::make_adder(8u);
  const auto conv = stps::net::aig_to_klut(aig);
  ASSERT_EQ(conv.klut.num_pis(), aig.num_pis());
  ASSERT_EQ(conv.klut.num_pos(), aig.num_pos());

  const auto patterns = stps::sim::pattern_set::random(aig.num_pis(), 512u, 3u);
  const auto sig_aig = stps::sim::simulate_aig(aig, patterns);
  const auto sig_klut = stps::sim::simulate_klut_bitwise(conv.klut, patterns);

  for (uint32_t i = 0; i < aig.num_pos(); ++i) {
    const auto f = aig.po_at(i);
    const auto k = conv.klut.po_at(i);
    for (std::size_t w = 0; w < patterns.num_words(); ++w) {
      const uint64_t va = sig_aig[f.get_node()][w] ^
                          (f.is_complemented() ? ~uint64_t{0} : 0u);
      uint64_t vk = sig_klut[k][w];
      uint64_t mask = ~uint64_t{0};
      if (w + 1u == patterns.num_words() &&
          (patterns.num_patterns() % 64u) != 0u) {
        mask = (uint64_t{1} << (patterns.num_patterns() % 64u)) - 1u;
      }
      EXPECT_EQ(va & mask, vk & mask) << "PO " << i << " word " << w;
    }
  }
}

TEST(Klut, FanoutListsTrackConstruction)
{
  klut_network klut;
  const auto a = klut.create_pi();
  const auto b = klut.create_pi();
  EXPECT_TRUE(klut.fanout(a).empty());
  const klut_network::node fis[2] = {a, b};
  const auto g1 = klut.create_node(fis, stps::tt::make_and2());
  const klut_network::node fis2[2] = {g1, b};
  const auto g2 = klut.create_node(fis2, stps::tt::make_or2());
  // A gate referencing the same fanin through both slots appears once.
  const klut_network::node twice[2] = {g1, g1};
  const auto g3 = klut.create_node(twice, stps::tt::make_and2());
  klut.create_po(g2);
  klut.create_po(g3);

  EXPECT_EQ(klut.fanout(a), std::vector<klut_network::node>{g1});
  EXPECT_EQ(klut.fanout(b), (std::vector<klut_network::node>{g1, g2}));
  EXPECT_EQ(klut.fanout(g1), (std::vector<klut_network::node>{g2, g3}));
  EXPECT_EQ(klut.fanout_count(g1), 2u);
  EXPECT_TRUE(klut.fanout(g2).empty()); // PO references are not fanouts
  expect_fanouts_consistent(klut);
}

TEST(Klut, FanoutListsConsistentAfterConversionAndCollapse)
{
  const auto aig = stps::gen::make_random_logic({12u, 9u, 700u, 55u, 25u});
  const auto conv = stps::net::aig_to_klut(aig);
  expect_fanouts_consistent(conv.klut);

  // Collapsing to tree cuts rebuilds a fresh network node by node; its
  // fanout lists must agree with its fanin lists too.
  std::vector<klut_network::node> targets;
  conv.klut.foreach_gate([&](klut_network::node n) {
    if (n % 3u == 0u) {
      targets.push_back(n);
    }
  });
  const auto collapsed = stps::cut::collapse_to_cuts(conv.klut, targets, 8u);
  expect_fanouts_consistent(collapsed.net);
}

TEST(Klut, ForeachVisitsInOrder)
{
  klut_network klut;
  const auto a = klut.create_pi();
  const auto b = klut.create_pi();
  const klut_network::node fis[2] = {a, b};
  const auto g1 = klut.create_node(fis, stps::tt::make_and2());
  const klut_network::node fis2[2] = {g1, b};
  const auto g2 = klut.create_node(fis2, stps::tt::make_or2());
  klut.create_po(g2);

  std::vector<klut_network::node> gates;
  klut.foreach_gate([&](klut_network::node n) { gates.push_back(n); });
  ASSERT_EQ(gates.size(), 2u);
  EXPECT_EQ(gates[0], g1);
  EXPECT_EQ(gates[1], g2);
}

} // namespace
