#include "cut/cuts.hpp"
#include "cut/lut_mapper.hpp"
#include "cut/tree_cuts.hpp"
#include "gen/arithmetic.hpp"
#include "gen/random_logic.hpp"
#include "network/convert.hpp"
#include "network/traversal.hpp"
#include "sim/bitwise_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

using namespace stps;

TEST(Cuts, EnumerationRespectsBounds)
{
  const auto aig = gen::make_adder(8u);
  const cut::cut_config config{4u, 6u};
  const cut::cut_set cuts{aig, config};
  aig.foreach_gate([&](net::node n) {
    const auto& set = cuts.cuts(n);
    EXPECT_FALSE(set.empty());
    EXPECT_LE(set.size(), config.cut_limit + 1u);
    for (const auto& c : set) {
      EXPECT_LE(c.leaves.size(), config.cut_size);
      EXPECT_TRUE(std::is_sorted(c.leaves.begin(), c.leaves.end()));
    }
    // Trivial cut present (last).
    EXPECT_EQ(set.back().leaves, std::vector<net::node>{n});
  });
}

TEST(Cuts, Domination)
{
  cut::cut_t small{{2u, 3u}};
  cut::cut_t big{{2u, 3u, 4u}};
  EXPECT_TRUE(small.dominates(big));
  EXPECT_FALSE(big.dominates(small));
  EXPECT_TRUE(small.dominates(small));
}

TEST(Cuts, CutFunctionMatchesSimulation)
{
  const auto aig = gen::make_random_logic({8u, 4u, 120u, 21u, 25u});
  const cut::cut_set cuts{aig, cut::cut_config{5u, 8u}};
  const auto patterns = sim::pattern_set::exhaustive(8u);
  const auto sig = sim::simulate_aig(aig, patterns);

  aig.foreach_gate([&](net::node n) {
    for (const auto& c : cuts.cuts(n)) {
      if (c.leaves.size() == 1u && c.leaves[0] == n) {
        continue;
      }
      const auto f = cut::cut_function(aig, n, c);
      // Check the cut function against global exhaustive simulation.
      for (uint64_t p = 0; p < 256u; ++p) {
        uint64_t index = 0;
        for (std::size_t i = 0; i < c.leaves.size(); ++i) {
          const net::node leaf = c.leaves[i];
          const bool v = (sig[leaf][p >> 6u] >> (p & 63u)) & 1u;
          index |= uint64_t{v} << i;
        }
        const bool expect = (sig[n][p >> 6u] >> (p & 63u)) & 1u;
        ASSERT_EQ(f.bit(index), expect)
            << "node " << n << " pattern " << p;
      }
    }
  });
}

class LutMapSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(LutMapSweep, MappedNetworkIsEquivalent)
{
  const uint32_t k = GetParam();
  const auto aig = gen::make_multiplier(8u);
  const auto mapped = cut::lut_map(aig, k);
  EXPECT_EQ(mapped.klut.num_pis(), aig.num_pis());
  EXPECT_EQ(mapped.klut.num_pos(), aig.num_pos());
  EXPECT_LE(mapped.klut.max_fanin_size(), k);
  // Fewer LUTs than AND gates (for k > 2).
  if (k > 2u) {
    EXPECT_LT(mapped.klut.num_gates(), aig.num_gates());
  }

  const auto patterns = sim::pattern_set::random(aig.num_pis(), 512u, 77u);
  const auto sig_aig = sim::simulate_aig(aig, patterns);
  const auto sig_klut = sim::simulate_klut_bitwise(mapped.klut, patterns);
  for (uint32_t i = 0; i < aig.num_pos(); ++i) {
    const auto f = aig.po_at(i);
    uint64_t flip = f.is_complemented() ? ~uint64_t{0} : 0u;
    for (std::size_t w = 0; w < patterns.num_words(); ++w) {
      EXPECT_EQ(sig_aig[f.get_node()][w] ^ flip,
                sig_klut[mapped.klut.po_at(i)][w])
          << "PO " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KValues, LutMapSweep,
                         ::testing::Values(2u, 3u, 4u, 6u, 8u));

TEST(TreeCuts, CollapseRespectsLimitAndFunction)
{
  const auto aig = gen::make_random_logic({10u, 6u, 250u, 33u, 20u});
  const auto conv = net::aig_to_klut(aig);

  // Choose a few targets.
  std::vector<net::klut_network::node> targets;
  conv.klut.foreach_gate([&](net::klut_network::node n) {
    if (targets.size() < 5u && n % 7u == 0u) {
      targets.push_back(n);
    }
  });
  ASSERT_FALSE(targets.empty());

  const uint32_t limit = 4u;
  const auto collapsed = cut::collapse_to_cuts(conv.klut, targets, limit);

  // Every collapsed gate respects the leaf limit (unless its original
  // fanin count already exceeded it, impossible here with 2-LUTs).
  collapsed.net.foreach_gate([&](net::klut_network::node n) {
    EXPECT_LE(collapsed.net.fanin_count(n), limit);
  });

  // Targets must be roots with valid mappings.
  for (const auto t : targets) {
    EXPECT_NE(collapsed.node_map[t], ~net::klut_network::node{0});
  }

  // Functional check: collapsed network PO-equivalent to original.
  const auto patterns = sim::pattern_set::random(aig.num_pis(), 640u, 5u);
  const auto sig_orig = sim::simulate_klut_bitwise(conv.klut, patterns);
  const auto sig_coll = sim::simulate_klut_bitwise(collapsed.net, patterns);
  for (uint32_t i = 0; i < conv.klut.num_pos(); ++i) {
    EXPECT_EQ(sig_orig[conv.klut.po_at(i)], sig_coll[collapsed.net.po_at(i)]);
  }
  // And target signatures must be preserved.
  for (const auto t : targets) {
    EXPECT_EQ(sig_orig[t], sig_coll[collapsed.node_map[t]]);
  }
}

TEST(TreeCuts, SingleFanoutChainsAreAbsorbed)
{
  // A linear chain with one PO: everything collapses into one LUT when
  // the limit allows.
  net::klut_network klut;
  const auto a = klut.create_pi();
  const auto b = klut.create_pi();
  const auto c = klut.create_pi();
  const net::klut_network::node f1[2] = {a, b};
  const auto g1 = klut.create_node(f1, tt::truth_table{2u, {0x8ull}});
  const net::klut_network::node f2[2] = {g1, c};
  const auto g2 = klut.create_node(f2, tt::truth_table{2u, {0x6ull}});
  klut.create_po(g2);

  const auto collapsed = cut::collapse_to_cuts(klut, {}, 6u);
  EXPECT_EQ(collapsed.roots.size(), 1u);
  EXPECT_EQ(collapsed.net.num_gates(), 1u);
  // Collapsed function: (a & b) ^ c.
  const auto& table =
      collapsed.net.table(collapsed.node_map[g2]);
  EXPECT_EQ(table.num_vars(), 3u);
}

} // namespace
