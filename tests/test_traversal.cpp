#include "gen/arithmetic.hpp"
#include "network/traversal.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

using stps::net::aig_network;
using stps::net::node;
using signal = stps::net::signal; // shadow POSIX ::signal
using stps::net::topo_order;
using stps::net::reverse_topo_order;
using stps::net::levels;
using stps::net::depth;
using stps::net::transitive_fanin;
using stps::net::in_transitive_fanout;
using stps::net::support;
using stps::net::bounded_support;

TEST(Traversal, TopoOrderRespectsFanins)
{
  auto aig = stps::gen::make_multiplier(6u);
  const auto order = topo_order(aig);
  EXPECT_EQ(order.size(), aig.num_gates());
  std::vector<uint32_t> position(aig.size(), 0u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[order[i]] = static_cast<uint32_t>(i + 1u);
  }
  for (const node n : order) {
    for (const signal f : {aig.fanin0(n), aig.fanin1(n)}) {
      if (aig.is_and(f.get_node())) {
        EXPECT_LT(position[f.get_node()], position[n]);
      }
    }
  }
  const auto rev = reverse_topo_order(aig);
  EXPECT_TRUE(std::equal(order.begin(), order.end(), rev.rbegin()));
}

TEST(Traversal, LevelsAndDepth)
{
  aig_network aig;
  const signal a = aig.create_pi();
  const signal b = aig.create_pi();
  const signal c = aig.create_pi();
  const signal g1 = aig.create_and(a, b);
  const signal g2 = aig.create_and(g1, c);
  aig.create_po(g2);
  const auto level = levels(aig);
  EXPECT_EQ(level[a.get_node()], 0u);
  EXPECT_EQ(level[g1.get_node()], 1u);
  EXPECT_EQ(level[g2.get_node()], 2u);
  EXPECT_EQ(depth(aig), 2u);
}

TEST(Traversal, TransitiveFaninBounded)
{
  auto aig = stps::gen::make_adder(16u);
  const auto order = topo_order(aig);
  const node root = order.back();
  const auto unbounded = transitive_fanin(aig, root, 100000u);
  EXPECT_GT(unbounded.size(), 10u);
  const auto bounded = transitive_fanin(aig, root, 5u);
  EXPECT_EQ(bounded.size(), 5u);
  // The bounded set is a subset of the full TFI.
  for (const node n : bounded) {
    EXPECT_NE(std::find(unbounded.begin(), unbounded.end(), n),
              unbounded.end());
  }
}

TEST(Traversal, TransitiveFanoutQuery)
{
  aig_network aig;
  const signal a = aig.create_pi();
  const signal b = aig.create_pi();
  const signal c = aig.create_pi();
  const signal g1 = aig.create_and(a, b);
  const signal g2 = aig.create_and(g1, c);
  const signal g3 = aig.create_and(a, c);
  aig.create_po(g2);
  aig.create_po(g3);
  EXPECT_TRUE(in_transitive_fanout(aig, g1.get_node(), g2.get_node()));
  EXPECT_FALSE(in_transitive_fanout(aig, g1.get_node(), g3.get_node()));
  EXPECT_FALSE(in_transitive_fanout(aig, g2.get_node(), g1.get_node()));
  EXPECT_TRUE(in_transitive_fanout(aig, g2.get_node(), g2.get_node()));
}

TEST(Traversal, SupportComputation)
{
  aig_network aig;
  const signal a = aig.create_pi();
  const signal b = aig.create_pi();
  const signal c = aig.create_pi();
  (void)c;
  const signal g = aig.create_and(a, !b);
  aig.create_po(g);
  const auto sup = support(aig, g.get_node());
  ASSERT_EQ(sup.size(), 2u);
  EXPECT_EQ(sup[0], a.get_node());
  EXPECT_EQ(sup[1], b.get_node());
}

TEST(Traversal, BoundedSupportAbandonsLargeCones)
{
  auto aig = stps::gen::make_adder(32u);
  const auto order = topo_order(aig);
  const node deep = order.back();
  std::vector<node> out;
  EXPECT_FALSE(bounded_support(aig, std::span<const node>{&deep, 1u}, 4u,
                               out));
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(bounded_support(aig, std::span<const node>{&deep, 1u}, 100u,
                              out));
  EXPECT_EQ(out, support(aig, deep));
}

} // namespace
