/// \file test_fault_injection.cpp
/// \brief Budgeted, interruptible sweeping under deterministic faults.
///
/// Three layers of coverage:
///
/// 1. `sweep::resource_governor` unit semantics — unlimited defaults,
///    the global conflict pool, the deterministic virtual clock, and
///    the cancelled > deadline > budget outcome precedence.
/// 2. Deterministic fault injection (`sat::fault_plan` + the store-trim
///    failure switch): forced-unknown answers on a fixed query
///    schedule, forced garbage-epoch rebuilds, and refused trims.  The
///    first degrades results but never soundness; the latter two must
///    be *result-identical* — they move work, not answers.
/// 3. Abort-anywhere sweeps: the virtual clock lands a deadline on
///    every phase of the sweep in turn, and `cancel_after_queries`
///    is a reproducible SIGINT stand-in.  Every partial result must be
///    CEC-equivalent to the original with the correct `sweep_outcome`.
///
/// Plus the escalating-unDET acceptance check: on real suite rows a
/// finite per-query budget with retry rounds must resolve strictly more
/// candidates (lower `dont_touch`) than the paper's single-shot
/// marking.
#include "gen/benchmarks.hpp"
#include "gen/random_logic.hpp"
#include "gen/redundancy.hpp"
#include "sweep/cec.hpp"
#include "sweep/fraig.hpp"
#include "sweep/resource_governor.hpp"
#include "sweep/stp_sweeper.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using namespace stps;

net::aig_network faulty_test_circuit(uint64_t seed, uint32_t gates = 800u)
{
  const auto base = gen::make_random_logic({12u, 10u, gates, seed, 25u});
  return gen::inject_redundancy(base, {8u, 4u, seed});
}

// ---------------------------------------------------------------------
// Governor unit semantics
// ---------------------------------------------------------------------

TEST(ResourceGovernor, DefaultsAreUnlimited)
{
  sweep::resource_governor g;
  EXPECT_FALSE(g.should_stop());
  EXPECT_FALSE(g.consume_conflicts(1'000'000u));
  g.on_query_begin();
  EXPECT_FALSE(g.should_stop());
  EXPECT_EQ(g.outcome(), sweep::sweep_outcome::complete);
  g.request_stop();
  EXPECT_TRUE(g.should_stop());
  EXPECT_EQ(g.outcome(), sweep::sweep_outcome::cancelled);
}

TEST(ResourceGovernor, GlobalConflictPool)
{
  sweep::governor_limits limits;
  limits.conflict_budget_total = 100u;
  sweep::resource_governor g{limits};
  // The solver reports in resource_check_interval-sized chunks; the
  // pool trips at the first report reaching the total.
  EXPECT_FALSE(g.consume_conflicts(64u));
  EXPECT_TRUE(g.consume_conflicts(64u)); // 128 >= 100
  EXPECT_TRUE(g.budget_exhausted());
  EXPECT_EQ(g.conflicts_used(), 128u);
  EXPECT_EQ(g.outcome(), sweep::sweep_outcome::budget);
}

TEST(ResourceGovernor, VirtualClockDeadlineIsDeterministic)
{
  sweep::governor_limits limits;
  limits.deadline_seconds = 3.0;
  limits.virtual_clock = true;
  limits.virtual_seconds_per_query = 1.0;
  sweep::resource_governor g{limits};
  g.on_query_begin();
  g.on_query_begin();
  EXPECT_DOUBLE_EQ(g.elapsed_seconds(), 2.0);
  EXPECT_FALSE(g.deadline_expired());
  g.on_query_begin(); // exactly the deadline
  EXPECT_TRUE(g.deadline_expired());
  EXPECT_TRUE(g.should_stop());
  EXPECT_EQ(g.outcome(), sweep::sweep_outcome::deadline);
  // Explicit advances compose with query ticks.
  sweep::resource_governor h{limits};
  h.advance_virtual(2.5);
  EXPECT_FALSE(h.deadline_expired());
  h.on_query_begin();
  EXPECT_TRUE(h.deadline_expired());
}

TEST(ResourceGovernor, OutcomePrecedenceCancelledOverDeadlineOverBudget)
{
  sweep::governor_limits limits;
  limits.deadline_seconds = 1.0;
  limits.conflict_budget_total = 1u;
  limits.virtual_clock = true;
  sweep::resource_governor g{limits};
  g.consume_conflicts(64u); // budget exhausted
  EXPECT_EQ(g.outcome(), sweep::sweep_outcome::budget);
  g.on_query_begin(); // virtual clock passes the deadline too
  EXPECT_TRUE(g.deadline_expired());
  EXPECT_EQ(g.outcome(), sweep::sweep_outcome::deadline);
  g.request_stop(); // explicit cancellation wins over everything
  EXPECT_EQ(g.outcome(), sweep::sweep_outcome::cancelled);
}

TEST(ResourceGovernor, CancelAfterQueriesTripsExactly)
{
  sweep::governor_limits limits;
  limits.cancel_after_queries = 3u;
  sweep::resource_governor g{limits};
  g.on_query_begin();
  g.on_query_begin();
  EXPECT_FALSE(g.stop_requested());
  g.on_query_begin();
  EXPECT_TRUE(g.stop_requested());
  EXPECT_EQ(g.queries_seen(), 3u);
  EXPECT_EQ(g.outcome(), sweep::sweep_outcome::cancelled);
}

// ---------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------

TEST(FaultInjection, ForcedUnknownSweepStaysSound)
{
  // Forced-unknown equivalence answers starve the sweep of merges but
  // must never corrupt it: whatever was proven is applied, everything
  // else stays.  unknown_every == 1 is the worst case (every pairwise
  // query refused; only guided constants and windows still merge).
  for (const uint32_t every : {1u, 3u}) {
    auto aig = faulty_test_circuit(7u);
    const net::aig_network original = aig;
    sweep::stp_sweep_params params;
    params.guided.base_patterns = 256u;
    // Windows resolve small classes without SAT; turn them off so the
    // pairwise candidates actually reach the faulted query path.
    params.use_window_resolution = false;
    params.faults.unknown_every = every;
    const auto stats = sweep::stp_sweep(aig, params);
    EXPECT_EQ(stats.outcome, sweep::sweep_outcome::complete);
    if (every == 1u) {
      // Every equivalence query was refused: each surviving candidate
      // was marked unDET, none merged by SAT.
      EXPECT_GT(stats.dont_touch, 0u);
      EXPECT_EQ(stats.sat_calls_satisfiable, 0u);
    }
    EXPECT_TRUE(sweep::check_equivalence(original, aig).equivalent)
        << "unknown_every " << every;
  }
}

TEST(FaultInjection, ForcedUnknownSeededScheduleIsDeterministic)
{
  // A nonzero seed draws the schedule from a per-query xorshift instead
  // of the exact k-th counter; two runs with the same seed must agree
  // on every counter, two different seeds may not.
  sweep::stp_sweep_params params;
  params.guided.base_patterns = 256u;
  params.faults.unknown_every = 4u;
  params.faults.seed = 0xabcdu;
  auto a = faulty_test_circuit(11u);
  auto b = faulty_test_circuit(11u);
  const net::aig_network original = a;
  const auto sa = sweep::stp_sweep(a, params);
  const auto sb = sweep::stp_sweep(b, params);
  EXPECT_EQ(sa.sat_calls_total, sb.sat_calls_total);
  EXPECT_EQ(sa.merges, sb.merges);
  EXPECT_EQ(sa.dont_touch, sb.dont_touch);
  EXPECT_EQ(sa.undet_retries, sb.undet_retries);
  EXPECT_EQ(a.num_gates(), b.num_gates());
  EXPECT_TRUE(sweep::check_equivalence(original, a).equivalent);
}

TEST(FaultInjection, ForcedRebuildIsResultIdentical)
{
  // A garbage-epoch rebuild on every 3rd query moves encode work (live
  // cones re-encode lazily) but may not change any answer: identical
  // result network, and the rebuild counter proves the fault fired.
  auto clean = faulty_test_circuit(13u);
  auto faulty = clean;
  const net::aig_network original = clean;
  sweep::stp_sweep_params params;
  params.guided.base_patterns = 256u;
  const auto clean_stats = sweep::stp_sweep(clean, params);
  params.faults.rebuild_every = 3u;
  const auto fault_stats = sweep::stp_sweep(faulty, params);
  EXPECT_GT(fault_stats.sat_solver_rebuilds,
            clean_stats.sat_solver_rebuilds);
  EXPECT_EQ(clean.num_gates(), faulty.num_gates());
  EXPECT_TRUE(sweep::check_equivalence(original, faulty).equivalent);
}

TEST(FaultInjection, StoreTrimFailureIsResultIdentical)
{
  // Trims only release memory; a sweep whose every trim request fails
  // must take the exact same trajectory — same queries, same merges,
  // same network — just without the reclamation.
  auto clean = faulty_test_circuit(17u);
  auto faulty = clean;
  const net::aig_network original = clean;
  sweep::stp_sweep_params params;
  params.guided.base_patterns = 256u;
  params.store_word_budget = 1u; // make trims actually happen
  const auto clean_stats = sweep::stp_sweep(clean, params);
  params.fault_fail_store_trim = true;
  const auto fault_stats = sweep::stp_sweep(faulty, params);
  EXPECT_EQ(fault_stats.store_words_trimmed, 0u);
  EXPECT_EQ(clean_stats.sat_calls_total, fault_stats.sat_calls_total);
  EXPECT_EQ(clean_stats.merges, fault_stats.merges);
  EXPECT_EQ(clean.num_gates(), faulty.num_gates());
  EXPECT_TRUE(sweep::check_equivalence(original, faulty).equivalent);
}

// ---------------------------------------------------------------------
// Abort-anywhere partial results
// ---------------------------------------------------------------------

TEST(FaultInjection, DeadlineAtEveryPhaseYieldsSoundPartials)
{
  // The virtual clock makes deadline expiry land on an exact query
  // index, so sweeping the deadline over [1, completion) aborts the
  // sweep inside every phase it passes through — guided pattern
  // generation, the candidate loop, and the retry rounds — and each
  // partial network must be CEC-equivalent with outcome `deadline`.
  const net::aig_network original = faulty_test_circuit(19u, 600u);
  uint64_t completed_runs = 0;
  uint64_t aborted_runs = 0;
  for (const double deadline :
       {1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0, 89.0, 144.0,
        1e9}) {
    net::aig_network aig = original;
    sweep::governor_limits limits;
    limits.deadline_seconds = deadline;
    limits.virtual_clock = true;
    limits.virtual_seconds_per_query = 1.0; // deadline == query index
    sweep::resource_governor governor{limits};
    sweep::stp_sweep_params params;
    params.guided.base_patterns = 256u;
    params.conflict_budget = 20; // unDETs feed the retry-round phase
    params.governor = &governor;
    const auto stats = sweep::stp_sweep(aig, params);
    if (stats.outcome == sweep::sweep_outcome::complete) {
      ++completed_runs;
    } else {
      ++aborted_runs;
      EXPECT_EQ(stats.outcome, sweep::sweep_outcome::deadline)
          << "deadline " << deadline;
    }
    EXPECT_TRUE(sweep::check_equivalence(original, aig).equivalent)
        << "partial result unsound at deadline " << deadline;
  }
  // The sweep really was cut short somewhere and really can finish.
  EXPECT_GT(aborted_runs, 0u);
  EXPECT_GT(completed_runs, 0u);
}

TEST(FaultInjection, MidSweepCancellationKeepsProvenMerges)
{
  // cancel_after_queries is the deterministic SIGINT stand-in: the
  // governor trips its own stop token at the k-th query tick.
  const net::aig_network original = faulty_test_circuit(23u, 600u);
  uint32_t gates_at_cancel1 = 0;
  for (const uint64_t cancel_at : {1u, 40u, 400u}) {
    net::aig_network aig = original;
    sweep::governor_limits limits;
    limits.cancel_after_queries = cancel_at;
    sweep::resource_governor governor{limits};
    sweep::stp_sweep_params params;
    params.guided.base_patterns = 256u;
    params.governor = &governor;
    const auto stats = sweep::stp_sweep(aig, params);
    if (stats.outcome != sweep::sweep_outcome::complete) {
      EXPECT_EQ(stats.outcome, sweep::sweep_outcome::cancelled)
          << "cancel_after_queries " << cancel_at;
    }
    EXPECT_TRUE(sweep::check_equivalence(original, aig).equivalent)
        << "cancel_after_queries " << cancel_at;
    if (cancel_at == 1u) {
      gates_at_cancel1 = aig.num_gates();
      EXPECT_EQ(stats.outcome, sweep::sweep_outcome::cancelled);
    }
  }
  // A later cancellation had time to prove more merges than an
  // immediate one (the partial result is monotone in progress).
  net::aig_network full = original;
  sweep::stp_sweep_params params;
  params.guided.base_patterns = 256u;
  sweep::stp_sweep(full, params);
  EXPECT_LE(full.num_gates(), gates_at_cancel1);
}

TEST(FaultInjection, GlobalConflictPoolAbortIsSoundWithBudgetOutcome)
{
  const net::aig_network original = faulty_test_circuit(29u, 900u);
  net::aig_network aig = original;
  sweep::governor_limits limits;
  limits.conflict_budget_total = 30u; // a handful of real queries
  sweep::resource_governor governor{limits};
  sweep::stp_sweep_params params;
  params.guided.base_patterns = 256u;
  params.governor = &governor;
  const auto stats = sweep::stp_sweep(aig, params);
  if (stats.outcome != sweep::sweep_outcome::complete) {
    EXPECT_EQ(stats.outcome, sweep::sweep_outcome::budget);
    EXPECT_GE(governor.conflicts_used(), limits.conflict_budget_total);
  }
  EXPECT_TRUE(sweep::check_equivalence(original, aig).equivalent);
}

TEST(FaultInjection, FraigHonorsGovernorAndFaults)
{
  // The baseline engine shares the whole governance/fault layer.
  const net::aig_network original = faulty_test_circuit(31u, 600u);
  {
    net::aig_network aig = original;
    sweep::governor_limits limits;
    limits.cancel_after_queries = 30u;
    sweep::resource_governor governor{limits};
    sweep::fraig_params params{256u, 1u, -1};
    params.governor = &governor;
    const auto stats = sweep::fraig_sweep(aig, params);
    if (stats.outcome != sweep::sweep_outcome::complete) {
      EXPECT_EQ(stats.outcome, sweep::sweep_outcome::cancelled);
    }
    EXPECT_TRUE(sweep::check_equivalence(original, aig).equivalent);
  }
  {
    net::aig_network aig = original;
    sweep::fraig_params params{256u, 1u, -1};
    params.faults.unknown_every = 2u;
    const auto stats = sweep::fraig_sweep(aig, params);
    EXPECT_EQ(stats.outcome, sweep::sweep_outcome::complete);
    EXPECT_GT(stats.dont_touch, 0u);
    EXPECT_TRUE(sweep::check_equivalence(original, aig).equivalent);
  }
}

// ---------------------------------------------------------------------
// Escalating unDET retry: the acceptance check
// ---------------------------------------------------------------------

TEST(FaultInjection, EscalatingRetryLowersDontTouchOnSuiteRows)
{
  // Under a finite per-query budget the paper's single-shot marking
  // writes off every timed-out candidate; the escalating retry queue
  // re-queries them with doubled budgets and must resolve a strictly
  // positive fraction on real Table II rows (several rows, not a
  // hand-picked one).
  const char* rows[] = {"beemfwt4b1", "oski2b1i", "6s342rb122",
                        "beemfwt5b3", "6s20",     "b18"};
  uint32_t strictly_lower = 0;
  for (const char* row : rows) {
    const net::aig_network original = gen::make_sweep_benchmark(row);

    sweep::stp_sweep_params single;
    single.guided.base_patterns = 256u;
    single.conflict_budget = 2; // tight enough that real queries time out
    single.undet_retry_rounds = 0u; // the paper's behavior
    sweep::stp_sweep_params retry = single;
    retry.undet_retry_rounds = 3u;
    retry.undet_budget_factor = 2u;

    net::aig_network by_single = original;
    const auto ss = sweep::stp_sweep(by_single, single);
    net::aig_network by_retry = original;
    const auto rs = sweep::stp_sweep(by_retry, retry);

    EXPECT_EQ(ss.undet_retries, 0u) << row;
    EXPECT_LE(rs.dont_touch, ss.dont_touch) << row;
    if (rs.dont_touch < ss.dont_touch) {
      ++strictly_lower;
      EXPECT_GT(rs.undet_retries, 0u) << row;
      EXPECT_GT(rs.undet_resolved, 0u) << row;
    }
    EXPECT_LE(by_retry.num_gates(), by_single.num_gates()) << row;
    EXPECT_TRUE(sweep::check_equivalence(original, by_retry).equivalent)
        << row;
    EXPECT_TRUE(sweep::check_equivalence(original, by_single).equivalent)
        << row;
  }
  // The acceptance bar: measurably lower dont_touch on >= 3 rows.
  EXPECT_GE(strictly_lower, 3u);
}

TEST(FaultInjection, UnlimitedBudgetIgnoresRetryKnobs)
{
  // With an unlimited per-query budget nothing can defer, so the retry
  // knobs must be inert: identical counters with rounds 0 and 3.
  auto a = faulty_test_circuit(37u, 500u);
  auto b = a;
  sweep::stp_sweep_params p0;
  p0.guided.base_patterns = 256u;
  p0.undet_retry_rounds = 0u;
  sweep::stp_sweep_params p3 = p0;
  p3.undet_retry_rounds = 3u;
  const auto s0 = sweep::stp_sweep(a, p0);
  const auto s3 = sweep::stp_sweep(b, p3);
  EXPECT_EQ(s0.sat_calls_total, s3.sat_calls_total);
  EXPECT_EQ(s0.merges, s3.merges);
  EXPECT_EQ(s0.undet_retries, 0u);
  EXPECT_EQ(s3.undet_retries, 0u);
  EXPECT_EQ(a.num_gates(), b.num_gates());
}

} // namespace
