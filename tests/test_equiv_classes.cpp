#include "gen/random_logic.hpp"
#include "sim/bitwise_sim.hpp"
#include "sweep/equiv_classes.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>

namespace {

using namespace stps;
using sweep::equiv_classes;

/// Small fixture: hand-built one-word signatures over a dense id space
/// (0 = constant; unspecified nodes keep all-zero rows).
sim::signature_store make_signatures(
    std::initializer_list<std::pair<net::node, uint64_t>> rows,
    std::size_t size)
{
  sim::signature_store sig(size, 1u);
  for (const auto& [n, w] : rows) {
    sig.word(n, 0u) = w;
  }
  return sig;
}

TEST(EquivClasses, GroupsEqualAndComplementSignatures)
{
  net::aig_network aig;
  const auto a = aig.create_pi();
  const auto b = aig.create_pi();
  const auto g1 = aig.create_and(a, b);
  const auto g2 = aig.create_and(a, !b);
  const auto g3 = aig.create_and(!a, b);
  aig.create_po(g1);
  aig.create_po(g2);
  aig.create_po(g3);
  const net::node n1 = g1.get_node(), n2 = g2.get_node(),
                  n3 = g3.get_node();

  // g1 and g2 share a signature; g3 is the complement of g1.
  auto sig = make_signatures({{0u, 0u},
                              {a.get_node(), 0x0fu},
                              {b.get_node(), 0x33u},
                              {n1, 0x5au},
                              {n2, 0x5au},
                              {n3, ~uint64_t{0x5au}}},
                             aig.size());

  equiv_classes classes;
  classes.build(aig, sig);
  ASSERT_NE(classes.class_of(n1), equiv_classes::no_class);
  EXPECT_EQ(classes.class_of(n1), classes.class_of(n2));
  EXPECT_EQ(classes.class_of(n1), classes.class_of(n3));
  EXPECT_FALSE(classes.complemented(n1, n2));
  EXPECT_TRUE(classes.complemented(n1, n3));
  // PIs with unique signatures are not in any class.
  EXPECT_EQ(classes.class_of(a.get_node()), equiv_classes::no_class);
}

TEST(EquivClasses, ConstantClassContainsNodeZero)
{
  net::aig_network aig;
  const auto a = aig.create_pi();
  const auto g = aig.create_and(a, !a); // strashes to const — build manually
  (void)g;
  const auto b = aig.create_pi();
  const auto h = aig.create_and(a, b);
  aig.create_po(h);
  const net::node n = h.get_node();

  // Pretend h simulates all-ones: candidate for constant 1.
  auto sig = make_signatures(
      {{0u, 0u}, {a.get_node(), 0x3u}, {b.get_node(), 0x5u},
       {n, ~uint64_t{0}}},
      aig.size());
  equiv_classes classes;
  classes.build(aig, sig);
  const uint32_t c = classes.class_of(n);
  ASSERT_NE(c, equiv_classes::no_class);
  EXPECT_EQ(classes.class_of(0u), c);
  EXPECT_TRUE(classes.complemented(0u, n)); // h == !const0 == 1
}

TEST(EquivClasses, RefineSplitsOnNewWord)
{
  net::aig_network aig;
  const auto a = aig.create_pi();
  const auto b = aig.create_pi();
  const auto g1 = aig.create_and(a, b);
  const auto g2 = aig.create_and(a, !b);
  aig.create_po(g1);
  aig.create_po(g2);
  const net::node n1 = g1.get_node(), n2 = g2.get_node();

  sim::signature_store sig(aig.size(), 2u);
  sig.word(a.get_node(), 0u) = 0xffu;
  sig.word(b.get_node(), 0u) = 0xf0u;
  sig.word(n1, 0u) = 0xaau;
  sig.word(n2, 0u) = 0xaau;

  equiv_classes classes;
  classes.build(aig, sig);
  ASSERT_EQ(classes.class_of(n1), classes.class_of(n2));

  // A counter-example lands in word 1 and separates them.
  sig.word(n1, 1u) = 0x1u;
  sig.word(n2, 1u) = 0x0u;
  const std::size_t created = classes.refine_with_word(sig, 1u);
  EXPECT_GE(created, 0u);
  EXPECT_EQ(classes.class_of(n1), equiv_classes::no_class);
  EXPECT_EQ(classes.class_of(n2), equiv_classes::no_class);
}

TEST(EquivClasses, RefineKeepsComplementPairsTogether)
{
  net::aig_network aig;
  const auto a = aig.create_pi();
  const auto b = aig.create_pi();
  const auto g1 = aig.create_and(a, b);
  const auto g2 = aig.create_and(!a, !b);
  aig.create_po(g1);
  aig.create_po(g2);
  const net::node n1 = g1.get_node(), n2 = g2.get_node();

  sim::signature_store sig(aig.size(), 1u);
  sig.word(a.get_node(), 0u) = 0x6u;
  sig.word(b.get_node(), 0u) = 0x3u;
  sig.word(n1, 0u) = 0x2u;            // phase 0
  sig.word(n2, 0u) = ~uint64_t{0x2u}; // phase 1 (complement)
  equiv_classes classes;
  classes.build(aig, sig);
  ASSERT_EQ(classes.class_of(n1), classes.class_of(n2));

  // New word keeps them complementary → no split.
  sig.append_word();
  sig.word(n1, 1u) = 0x55u;
  sig.word(n2, 1u) = ~uint64_t{0x55u};
  classes.refine_with_word(sig, 1u);
  EXPECT_EQ(classes.class_of(n1), classes.class_of(n2));
  EXPECT_NE(classes.class_of(n1), equiv_classes::no_class);
}

TEST(EquivClasses, SplitByKeysAndRemoveMember)
{
  net::aig_network aig;
  const auto a = aig.create_pi();
  const auto b = aig.create_pi();
  const auto c = aig.create_pi();
  const auto g1 = aig.create_and(a, b);
  const auto g2 = aig.create_and(a, c);
  const auto g3 = aig.create_and(b, c);
  aig.create_po(g1);
  aig.create_po(g2);
  aig.create_po(g3);
  const net::node n1 = g1.get_node(), n2 = g2.get_node(),
                  n3 = g3.get_node();

  sim::signature_store sig(aig.size(), 1u);
  sig.word(a.get_node(), 0u) = 0x1u;
  sig.word(b.get_node(), 0u) = 0x2u;
  sig.word(c.get_node(), 0u) = 0x4u;
  sig.word(n1, 0u) = 0x8u;
  sig.word(n2, 0u) = 0x8u;
  sig.word(n3, 0u) = 0x8u;
  equiv_classes classes;
  classes.build(aig, sig);
  const uint32_t cls = classes.class_of(n1);
  ASSERT_EQ(classes.members(cls).size(), 3u);

  // Exact keys separate n3.
  classes.split_by_keys(cls, {7u, 7u, 9u});
  EXPECT_EQ(classes.class_of(n1), classes.class_of(n2));
  EXPECT_EQ(classes.class_of(n3), equiv_classes::no_class); // singleton

  classes.remove_member(n1);
  // n2 alone dissolves.
  EXPECT_EQ(classes.class_of(n2), equiv_classes::no_class);
  EXPECT_EQ(classes.num_classes(), 0u);
}

TEST(EquivClasses, DenseRefinementMatchesMapBasedReference)
{
  // The dense epoch-stamped partition core must produce exactly the
  // partition an ordered-map grouping produces, on randomized classes,
  // across several refinement rounds (so scratch reuse is exercised).
  const auto aig = gen::make_random_logic({10u, 8u, 400u, 123u, 30u});
  const auto patterns = sim::pattern_set::random(10u, 128u, 7u);
  auto sig = sim::simulate_aig(aig, patterns);
  equiv_classes classes;
  classes.build(aig, sig);
  ASSERT_GT(classes.num_classes(), 0u);

  std::mt19937_64 rng{2024u};
  std::uniform_int_distribution<uint64_t> pick(0u, 3u);
  for (int round = 0; round < 6; ++round) {
    sig.append_word();
    const std::size_t w = sig.num_words() - 1u;
    // Small value alphabet → classes split partially, not into dust.
    for (std::size_t n = 0; n < sig.size(); ++n) {
      sig.word(n, w) = pick(rng) * 0x9e3779b97f4a7c15ull;
    }
    const uint64_t mask = round % 2 == 0 ? ~uint64_t{0}
                                         : 0xffff0000ffff0000ull;

    // Reference partition per class, computed with an ordered map before
    // refinement mutates anything.
    std::vector<std::vector<std::vector<net::node>>> expected;
    for (uint32_t c = 0; c < classes.num_class_ids(); ++c) {
      const auto& members = classes.members(c);
      if (members.size() < 2u) {
        continue;
      }
      std::map<uint64_t, std::vector<net::node>> parts;
      for (const net::node m : members) {
        const uint64_t flip = classes.phase(m) ? ~uint64_t{0} : 0u;
        parts[(sig.word(m, w) ^ flip) & mask].push_back(m);
      }
      auto& groups = expected.emplace_back();
      for (auto& [key, part] : parts) {
        groups.push_back(std::move(part));
      }
    }

    classes.refine_with_word(sig, w, mask);

    for (const auto& groups : expected) {
      for (const auto& part : groups) {
        if (groups.size() == 1u) {
          // No split: the class must have stayed together.
          for (const net::node m : part) {
            EXPECT_EQ(classes.class_of(m), classes.class_of(part.front()));
          }
          EXPECT_NE(classes.class_of(part.front()), equiv_classes::no_class);
          continue;
        }
        if (part.size() == 1u) {
          EXPECT_EQ(classes.class_of(part.front()), equiv_classes::no_class)
              << "singleton group must dissolve";
          continue;
        }
        const uint32_t cid = classes.class_of(part.front());
        ASSERT_NE(cid, equiv_classes::no_class);
        EXPECT_EQ(classes.members(cid).size(), part.size());
        for (const net::node m : part) {
          EXPECT_EQ(classes.class_of(m), cid);
        }
      }
    }
  }
}

TEST(EquivClasses, CandidateCountsRealCircuit)
{
  const auto aig = gen::make_random_logic({10u, 8u, 500u, 77u, 30u});
  const auto patterns = sim::pattern_set::random(10u, 64u, 3u);
  const auto sig = sim::simulate_aig(aig, patterns);
  equiv_classes classes;
  classes.build(aig, sig);
  // With only 64 patterns over 10 PIs there are usually candidates; the
  // structural claim is just consistency of the counters.
  std::size_t total = 0;
  for (uint32_t c = 0; c < classes.num_class_ids(); ++c) {
    if (!classes.members(c).empty()) {
      EXPECT_GE(classes.members(c).size(), 2u);
      total += classes.members(c).size();
    }
  }
  EXPECT_EQ(total, classes.num_candidate_nodes());
}

} // namespace
