#include "stp/logic_matrix.hpp"
#include "stp/matrix.hpp"
#include "tt/operations.hpp"

#include <gtest/gtest.h>

#include <random>

namespace {

using stps::stp::logic_matrix;
using stps::stp::matrix;

matrix random_matrix(std::size_t rows, std::size_t cols, uint64_t seed)
{
  std::mt19937_64 rng{seed};
  matrix m{rows, cols};
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.set(r, c, rng() & 1u);
    }
  }
  return m;
}

TEST(Matrix, IdentityAndMultiply)
{
  const matrix a = random_matrix(3, 4, 1);
  EXPECT_EQ(multiply(matrix::identity(3), a), a);
  EXPECT_EQ(multiply(a, matrix::identity(4)), a);
  EXPECT_THROW(multiply(a, a), std::invalid_argument);
}

TEST(Matrix, KroneckerDimensions)
{
  const matrix a = random_matrix(2, 3, 2);
  const matrix b = random_matrix(4, 5, 3);
  const matrix k = kronecker(a, b);
  EXPECT_EQ(k.rows(), 8u);
  EXPECT_EQ(k.cols(), 15u);
  // Spot-check the block structure.
  for (std::size_t ar = 0; ar < 2; ++ar) {
    for (std::size_t ac = 0; ac < 3; ++ac) {
      for (std::size_t br = 0; br < 4; ++br) {
        for (std::size_t bc = 0; bc < 5; ++bc) {
          EXPECT_EQ(k.at(ar * 4 + br, ac * 5 + bc),
                    a.at(ar, ac) && b.at(br, bc));
        }
      }
    }
  }
}

TEST(Matrix, StpReducesToMultiplyWhenCompatible)
{
  const matrix a = random_matrix(3, 4, 4);
  const matrix b = random_matrix(4, 2, 5);
  EXPECT_EQ(semi_tensor_product(a, b), multiply(a, b));
}

TEST(Matrix, StpDefinitionDimensions)
{
  // X in M_{2x4}, Y in M_{2x2}: t = lcm(4,2) = 4,
  // X ⋉ Y = (X ⊗ I1)(Y ⊗ I2) has dimensions 2x4 · ... → 2 x 4.
  const matrix x = random_matrix(2, 4, 6);
  const matrix y = random_matrix(2, 2, 7);
  const matrix r = semi_tensor_product(x, y);
  EXPECT_EQ(r.rows(), 2u);
  EXPECT_EQ(r.cols(), 4u);
  EXPECT_EQ(r, multiply(x, kronecker(y, matrix::identity(2))));
}

TEST(Matrix, Property1SwapWithRowVector)
{
  // A ⋉ Z_r = Z_r ⋉ (I_t ⊗ A) for a 1×t row vector Z_r.
  const matrix a = random_matrix(2, 2, 8);
  const matrix zr = random_matrix(1, 3, 9);
  const matrix lhs = semi_tensor_product(a, zr);
  const matrix rhs =
      semi_tensor_product(zr, kronecker(matrix::identity(3), a));
  EXPECT_EQ(lhs, rhs);
}

TEST(Matrix, Property1SwapWithColumnVector)
{
  // Z_c ⋉ A = (I_t ⊗ A) ⋉ Z_c for a t×1 column vector Z_c.
  const matrix a = random_matrix(2, 2, 10);
  const matrix zc = random_matrix(3, 1, 11);
  const matrix lhs = semi_tensor_product(zc, a);
  const matrix rhs =
      semi_tensor_product(kronecker(matrix::identity(3), a), zc);
  EXPECT_EQ(lhs, rhs);
}

TEST(Matrix, SwapMatrixSwapsTensorFactors)
{
  // W_{[m,n]} (x ⊗ y) = y ⊗ x for basis vectors.
  const std::size_t m = 2, n = 3;
  const matrix w = matrix::swap(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    matrix x{m, 1};
    x.set(i, 0, 1);
    for (std::size_t j = 0; j < n; ++j) {
      matrix y{n, 1};
      y.set(j, 0, 1);
      const matrix xy = kronecker(x, y);
      const matrix yx = kronecker(y, x);
      EXPECT_EQ(multiply(w, xy), yx);
    }
  }
}

TEST(Matrix, PowerReduceDuplicatesBooleans)
{
  const matrix pr = matrix::power_reduce();
  for (const bool v : {false, true}) {
    const matrix x = matrix::boolean(v);
    EXPECT_EQ(semi_tensor_product(pr, x), kronecker(x, x));
  }
}

TEST(LogicMatrix, StructuralMatricesMatchPaper)
{
  EXPECT_EQ(logic_matrix::negation().to_string(), "[0 1; 1 0]");
  EXPECT_EQ(logic_matrix::disjunction().to_string(),
            "[1 1 1 0; 0 0 0 1]");
  EXPECT_EQ(logic_matrix::implication().to_string(),
            "[1 0 1 1; 0 1 0 0]");
}

TEST(LogicMatrix, DenseRoundTrip)
{
  for (uint32_t n = 0; n <= 6u; ++n) {
    const logic_matrix m{stps::tt::make_random(n, 50u + n)};
    const matrix dense = m.to_dense();
    EXPECT_EQ(dense.rows(), 2u);
    EXPECT_EQ(dense.cols(), std::size_t{1} << n);
    EXPECT_EQ(logic_matrix::from_dense(dense), m);
  }
}

TEST(LogicMatrix, FromDenseRejectsNonLogicColumns)
{
  matrix m{2, 2};
  m.set(0, 0, 1);
  m.set(1, 0, 1); // column [1 1]^T is not in B
  m.set(0, 1, 1);
  EXPECT_THROW(logic_matrix::from_dense(m), std::invalid_argument);
}

TEST(LogicMatrix, Example1ImplicationIdentity)
{
  // Paper Example 1: M_∨ ⋉ M_¬ = M_→, proving a → b = ¬a ∨ b.  (The
  // paper writes a plain product; with a 2×4 by 2×2 operand pair that
  // product *is* the STP: (M_∨ ⊗ I_1)(M_¬ ⊗ I_2).)
  const matrix lhs = semi_tensor_product(
      logic_matrix::disjunction().to_dense(),
      logic_matrix::negation().to_dense());
  EXPECT_EQ(lhs, logic_matrix::implication().to_dense());
}

TEST(LogicMatrix, ApplySelectsTruthTableEntry)
{
  const auto table = stps::tt::make_random(3u, 123u);
  const logic_matrix m{table};
  for (uint32_t x = 0; x < 8u; ++x) {
    // Leading factor = MSB.
    const bool inputs[3] = {((x >> 2) & 1u) != 0u, ((x >> 1) & 1u) != 0u,
                            (x & 1u) != 0u};
    EXPECT_EQ(m.apply(inputs), table.bit(x));
  }
}

TEST(LogicMatrix, ApplyMatchesDenseStpProduct)
{
  // The fast column-block pass must equal the literal dense product
  // M ⋉ x1 ⋉ x2 ⋉ x3.
  const auto table = stps::tt::make_random(3u, 321u);
  const logic_matrix m{table};
  for (uint32_t x = 0; x < 8u; ++x) {
    matrix acc = m.to_dense();
    for (uint32_t i = 3u; i-- > 0u;) {
      // factors applied left to right: x1 first (MSB)
    }
    acc = m.to_dense();
    for (uint32_t pos = 0; pos < 3u; ++pos) {
      const bool v = ((x >> (2u - pos)) & 1u) != 0u;
      acc = semi_tensor_product(acc, matrix::boolean(v));
    }
    ASSERT_EQ(acc.rows(), 2u);
    ASSERT_EQ(acc.cols(), 1u);
    const bool inputs[3] = {((x >> 2) & 1u) != 0u, ((x >> 1) & 1u) != 0u,
                            (x & 1u) != 0u};
    EXPECT_EQ(m.apply(inputs), acc.at(0, 0) == 1u);
  }
}

TEST(LogicMatrix, ApplyPartialHalvesColumns)
{
  const auto table = stps::tt::make_random(4u, 77u);
  const logic_matrix m{table};
  for (const bool x1 : {false, true}) {
    const logic_matrix rest = m.apply_partial(x1);
    EXPECT_EQ(rest.num_vars(), 3u);
    // Dense check: M ⋉ x1 equals the residual's dense form.
    const matrix expect =
        semi_tensor_product(m.to_dense(), matrix::boolean(x1));
    EXPECT_EQ(rest.to_dense(), expect);
  }
}

class ComposeSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(ComposeSweep, ComposeMatchesEvaluation)
{
  const uint32_t inner = GetParam();
  const auto sigma = stps::tt::make_random(2u, 7u + inner);
  const logic_matrix m_sigma{sigma};
  const logic_matrix g1{stps::tt::make_random(inner, 100u + inner)};
  const logic_matrix g2{stps::tt::make_random(inner, 200u + inner)};
  const logic_matrix subs[2] = {g1, g2};
  const logic_matrix composed = m_sigma.compose(subs);
  ASSERT_EQ(composed.num_vars(), inner);
  for (uint64_t x = 0; x < (uint64_t{1} << inner); ++x) {
    const bool v1 = g1.table().bit(x);
    const bool v2 = g2.table().bit(x);
    // g1 is the leading factor → MSB of sigma's index.
    const bool expect = sigma.bit((uint64_t{v1} << 1u) | uint64_t{v2});
    EXPECT_EQ(composed.table().bit(x), expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ComposeSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

} // namespace
