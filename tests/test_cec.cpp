#include "gen/arithmetic.hpp"
#include "gen/redundancy.hpp"
#include "sim/bitwise_sim.hpp"
#include "sweep/cec.hpp"

#include <gtest/gtest.h>

namespace {

using namespace stps;

TEST(Cec, IdenticalNetworksAreEquivalent)
{
  const auto a = gen::make_adder(8u);
  const auto b = gen::make_adder(8u);
  const auto r = sweep::check_equivalence(a, b);
  EXPECT_TRUE(r.equivalent);
  EXPECT_FALSE(r.failing_po.has_value());
}

TEST(Cec, RedundantVariantIsEquivalent)
{
  const auto a = gen::make_max(10u);
  const auto b = gen::inject_redundancy(a, {10u, 4u, 9u});
  EXPECT_GT(b.num_gates(), a.num_gates());
  EXPECT_TRUE(sweep::check_equivalence(a, b).equivalent);
}

TEST(Cec, DetectsSingleGateMutation)
{
  const auto good = gen::make_adder(6u);
  // Rebuild with one AND flipped to OR.
  net::aig_network bad;
  std::vector<net::signal> map(good.size(), net::signal{0});
  map[0] = bad.get_constant(false);
  good.foreach_pi([&](net::node n) { map[n] = bad.create_pi(); });
  bool mutated = false;
  good.foreach_gate([&](net::node n) {
    const auto f0 = good.fanin0(n);
    const auto f1 = good.fanin1(n);
    const auto a = f0.is_complemented() ? !map[f0.get_node()]
                                        : map[f0.get_node()];
    const auto b = f1.is_complemented() ? !map[f1.get_node()]
                                        : map[f1.get_node()];
    if (!mutated && n % 17u == 0u) {
      map[n] = bad.create_or(a, b);
      mutated = true;
    } else {
      map[n] = bad.create_and(a, b);
    }
  });
  ASSERT_TRUE(mutated);
  good.foreach_po([&](net::signal f, uint32_t) {
    const auto m = map[f.get_node()];
    bad.create_po(f.is_complemented() ? !m : m);
  });

  const auto r = sweep::check_equivalence(good, bad);
  ASSERT_FALSE(r.equivalent);
  ASSERT_TRUE(r.failing_po.has_value());
  // The returned counter-example must actually expose the difference.
  std::vector<bool> ce = r.counter_example;
  ASSERT_EQ(ce.size(), good.num_pis());
  std::vector<char> buf(ce.begin(), ce.end());
  std::vector<bool> plain(ce.begin(), ce.end());
  bool inputs[64];
  for (std::size_t i = 0; i < ce.size(); ++i) {
    inputs[i] = ce[i];
  }
  const auto eval_po = [&](const net::aig_network& aig, uint32_t po) {
    const auto f = aig.po_at(po);
    if (aig.is_constant(f.get_node())) {
      return f.is_complemented();
    }
    const bool v = sim::evaluate_aig_node(
        aig, f.get_node(), std::span<const bool>{inputs, ce.size()});
    return v != f.is_complemented();
  };
  EXPECT_NE(eval_po(good, *r.failing_po), eval_po(bad, *r.failing_po));
}

TEST(Cec, InterfaceMismatchThrows)
{
  const auto a = gen::make_adder(4u);
  const auto b = gen::make_adder(5u);
  EXPECT_THROW(sweep::check_equivalence(a, b), std::invalid_argument);
}

TEST(Cec, BudgetCanYieldUndecided)
{
  const auto a = gen::make_multiplier(12u);
  // Same function built at a different width ordering is still equal;
  // use a mutated copy to force SAT work, then give it no budget.
  sweep::cec_params params;
  params.conflict_budget = 1;
  params.sim_patterns = 64u;
  const auto b = gen::make_multiplier(12u);
  const auto r = sweep::check_equivalence(a, b, params);
  // Either proves quickly (identical structure ⇒ trivial miter) or
  // reports undecided — both acceptable; never "not equivalent".
  EXPECT_FALSE(r.failing_po.has_value());
  EXPECT_FALSE(r.proven_inequivalent());
  if (r.equivalent) {
    EXPECT_EQ(r.verdict(), sweep::cec_verdict::equivalent);
  } else {
    // Tri-state: budget exhaustion must surface as undecided, never as
    // a witnessed difference.
    EXPECT_TRUE(r.undecided);
    EXPECT_EQ(r.verdict(), sweep::cec_verdict::undecided);
  }
}

TEST(Cec, TinyBudgetOnHardMiterIsUndecidedNotInequivalent)
{
  // Equivalent but structurally disjoint: a multiplier against its
  // operand-swapped twin (same function by commutativity, no shared
  // structure), where proving the PO pairs needs real SAT work that one
  // conflict per query cannot finish.  The check must come back
  // undecided — claiming inequivalence here would be the exact bug the
  // tri-state verdict exists to prevent.
  const uint32_t width = 8u;
  const auto a = gen::make_multiplier(width);
  net::aig_network b;
  std::vector<net::signal> pis;
  for (uint32_t i = 0; i < a.num_pis(); ++i) {
    pis.push_back(b.create_pi());
  }
  std::vector<net::signal> map(a.size(), net::signal{0});
  map[0] = b.get_constant(false);
  uint32_t pi_index = 0;
  a.foreach_pi([&](net::node n) {
    // Operand halves swapped: PI i of `a` reads PI (i + width) mod 2w.
    map[n] = pis[(pi_index + width) % (2u * width)];
    ++pi_index;
  });
  a.foreach_gate([&](net::node n) {
    const auto f0 = a.fanin0(n);
    const auto f1 = a.fanin1(n);
    const auto s0 = f0.is_complemented() ? !map[f0.get_node()]
                                         : map[f0.get_node()];
    const auto s1 = f1.is_complemented() ? !map[f1.get_node()]
                                         : map[f1.get_node()];
    map[n] = b.create_and(s0, s1);
  });
  a.foreach_po([&](net::signal f, uint32_t) {
    const auto m = map[f.get_node()];
    b.create_po(f.is_complemented() ? !m : m);
  });

  sweep::cec_params params;
  params.conflict_budget = 1;
  params.sim_patterns = 64u;
  const auto r = sweep::check_equivalence(a, b, params);
  EXPECT_TRUE(r.undecided);
  EXPECT_FALSE(r.equivalent);
  EXPECT_FALSE(r.proven_inequivalent());
  EXPECT_FALSE(r.failing_po.has_value());
  EXPECT_EQ(r.verdict(), sweep::cec_verdict::undecided);
}

TEST(Cec, TrippedGovernorYieldsUndecided)
{
  // A cancelled verification winds down as undecided: cancellation is
  // never evidence of a difference.
  const auto a = gen::make_adder(16u);
  const auto b = gen::inject_redundancy(a, {6u, 2u, 5u});
  sweep::resource_governor governor;
  governor.request_stop();
  sweep::cec_params params;
  params.governor = &governor;
  const auto r = sweep::check_equivalence(a, b, params);
  EXPECT_TRUE(r.undecided);
  EXPECT_EQ(r.verdict(), sweep::cec_verdict::undecided);
  EXPECT_FALSE(r.proven_inequivalent());
  EXPECT_FALSE(r.failing_po.has_value());
}

} // namespace
