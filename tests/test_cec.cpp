#include "gen/arithmetic.hpp"
#include "gen/redundancy.hpp"
#include "sim/bitwise_sim.hpp"
#include "sweep/cec.hpp"

#include <gtest/gtest.h>

namespace {

using namespace stps;

TEST(Cec, IdenticalNetworksAreEquivalent)
{
  const auto a = gen::make_adder(8u);
  const auto b = gen::make_adder(8u);
  const auto r = sweep::check_equivalence(a, b);
  EXPECT_TRUE(r.equivalent);
  EXPECT_FALSE(r.failing_po.has_value());
}

TEST(Cec, RedundantVariantIsEquivalent)
{
  const auto a = gen::make_max(10u);
  const auto b = gen::inject_redundancy(a, {10u, 4u, 9u});
  EXPECT_GT(b.num_gates(), a.num_gates());
  EXPECT_TRUE(sweep::check_equivalence(a, b).equivalent);
}

TEST(Cec, DetectsSingleGateMutation)
{
  const auto good = gen::make_adder(6u);
  // Rebuild with one AND flipped to OR.
  net::aig_network bad;
  std::vector<net::signal> map(good.size(), net::signal{0});
  map[0] = bad.get_constant(false);
  good.foreach_pi([&](net::node n) { map[n] = bad.create_pi(); });
  bool mutated = false;
  good.foreach_gate([&](net::node n) {
    const auto f0 = good.fanin0(n);
    const auto f1 = good.fanin1(n);
    const auto a = f0.is_complemented() ? !map[f0.get_node()]
                                        : map[f0.get_node()];
    const auto b = f1.is_complemented() ? !map[f1.get_node()]
                                        : map[f1.get_node()];
    if (!mutated && n % 17u == 0u) {
      map[n] = bad.create_or(a, b);
      mutated = true;
    } else {
      map[n] = bad.create_and(a, b);
    }
  });
  ASSERT_TRUE(mutated);
  good.foreach_po([&](net::signal f, uint32_t) {
    const auto m = map[f.get_node()];
    bad.create_po(f.is_complemented() ? !m : m);
  });

  const auto r = sweep::check_equivalence(good, bad);
  ASSERT_FALSE(r.equivalent);
  ASSERT_TRUE(r.failing_po.has_value());
  // The returned counter-example must actually expose the difference.
  std::vector<bool> ce = r.counter_example;
  ASSERT_EQ(ce.size(), good.num_pis());
  std::vector<char> buf(ce.begin(), ce.end());
  std::vector<bool> plain(ce.begin(), ce.end());
  bool inputs[64];
  for (std::size_t i = 0; i < ce.size(); ++i) {
    inputs[i] = ce[i];
  }
  const auto eval_po = [&](const net::aig_network& aig, uint32_t po) {
    const auto f = aig.po_at(po);
    if (aig.is_constant(f.get_node())) {
      return f.is_complemented();
    }
    const bool v = sim::evaluate_aig_node(
        aig, f.get_node(), std::span<const bool>{inputs, ce.size()});
    return v != f.is_complemented();
  };
  EXPECT_NE(eval_po(good, *r.failing_po), eval_po(bad, *r.failing_po));
}

TEST(Cec, InterfaceMismatchThrows)
{
  const auto a = gen::make_adder(4u);
  const auto b = gen::make_adder(5u);
  EXPECT_THROW(sweep::check_equivalence(a, b), std::invalid_argument);
}

TEST(Cec, BudgetCanYieldUndecided)
{
  const auto a = gen::make_multiplier(12u);
  // Same function built at a different width ordering is still equal;
  // use a mutated copy to force SAT work, then give it no budget.
  sweep::cec_params params;
  params.conflict_budget = 1;
  params.sim_patterns = 64u;
  const auto b = gen::make_multiplier(12u);
  const auto r = sweep::check_equivalence(a, b, params);
  // Either proves quickly (identical structure ⇒ trivial miter) or
  // reports undecided — both acceptable; never "not equivalent".
  EXPECT_FALSE(r.failing_po.has_value());
}

} // namespace
