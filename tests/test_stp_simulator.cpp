#include "core/stp_simulator.hpp"
#include "cut/lut_mapper.hpp"
#include "gen/arithmetic.hpp"
#include "gen/random_logic.hpp"
#include "network/convert.hpp"
#include "network/traversal.hpp"
#include "sim/bitwise_sim.hpp"
#include "tt/truth_table.hpp"

#include <gtest/gtest.h>

namespace {

using namespace stps;
using knode = net::klut_network::node;

TEST(StpSimulator, AllNodesMatchesBitwiseBaseline)
{
  const auto aig = gen::make_multiplier(8u);
  const auto mapped = cut::lut_map(aig, 6u);
  const auto patterns = sim::pattern_set::random(aig.num_pis(), 1024u, 3u);

  const core::stp_simulator simulator;
  const auto sig_stp = simulator.simulate_all(mapped.klut, patterns);
  const auto sig_ref = sim::simulate_klut_bitwise(mapped.klut, patterns);
  mapped.klut.foreach_gate([&](knode n) {
    EXPECT_EQ(sig_stp[n], sig_ref[n]) << "node " << n;
  });
}

TEST(StpSimulator, AigMatchesBitwiseBaseline)
{
  const auto aig = gen::make_random_logic({16u, 10u, 600u, 42u, 30u});
  const auto patterns = sim::pattern_set::random(16u, 512u, 9u);
  const core::stp_simulator simulator;
  const auto sig_stp = simulator.simulate_aig(aig, patterns);
  const auto sig_ref = sim::simulate_aig(aig, patterns);
  aig.foreach_gate([&](net::node n) {
    EXPECT_EQ(sig_stp[n], sig_ref[n]) << "node " << n;
  });
}

class SpecifiedSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(SpecifiedSweep, SpecifiedNodesMatchFullSimulation)
{
  const uint32_t limit_override = GetParam();
  const auto aig = gen::make_random_logic({12u, 8u, 400u, 55u, 25u});
  const auto conv = net::aig_to_klut(aig);
  const auto patterns = sim::pattern_set::random(12u, 256u, 4u);

  std::vector<knode> targets;
  conv.klut.foreach_gate([&](knode n) {
    if (n % 11u == 0u) {
      targets.push_back(n);
    }
  });
  ASSERT_FALSE(targets.empty());

  const core::stp_simulator simulator{limit_override};
  core::stp_sim_stats stats;
  const auto result =
      simulator.simulate_specified(conv.klut, targets, patterns, &stats);
  const auto full = sim::simulate_klut_bitwise(conv.klut, patterns);
  for (const knode t : targets) {
    ASSERT_TRUE(result.count(t));
    EXPECT_EQ(result.at(t), full[t]) << "target " << t;
  }
  EXPECT_GT(stats.num_cuts, 0u);
  EXPECT_GT(stats.num_simulated, 0u);
  // Simulating only needed cones must not exceed the cut count.
  EXPECT_LE(stats.num_simulated, stats.num_cuts);
}

INSTANTIATE_TEST_SUITE_P(Limits, SpecifiedSweep,
                         ::testing::Values(0u, 2u, 3u, 4u, 6u, 8u));

TEST(StpSimulator, LeafLimitFollowsLog2Rule)
{
  // Alg. 1 line 4: limit = log2(#patterns).
  const auto aig = gen::make_adder(8u);
  const auto conv = net::aig_to_klut(aig);
  std::vector<knode> targets{conv.node_map[net::topo_order(aig).back()]};

  for (const uint64_t n_pat : {16u, 64u, 1024u}) {
    const auto patterns =
        sim::pattern_set::random(aig.num_pis(), n_pat, 1u);
    core::stp_sim_stats stats;
    const core::stp_simulator simulator;
    simulator.simulate_specified(conv.klut, targets, patterns, &stats);
    uint32_t expect = 0;
    while ((uint64_t{1} << (expect + 1u)) <= n_pat) {
      ++expect;
    }
    EXPECT_EQ(stats.leaf_limit, std::max(expect, 2u)) << n_pat;
  }
}

/// §III-C: the paper's worked example — 5 PIs, six NAND nodes, 10
/// patterns, limit 3, cuts {6,10}, {7}, {8}, {9,11}; exhaustive
/// signatures 7: 1110 and 8: 11110001.
TEST(StpSimulator, PaperFigure1Example)
{
  net::klut_network klut;
  const knode n1 = klut.create_pi("1");
  const knode n2 = klut.create_pi("2");
  const knode n3 = klut.create_pi("3");
  const knode n4 = klut.create_pi("4");
  const knode n5 = klut.create_pi("5");
  const auto nand2 = tt::truth_table::from_binary("0111");
  const knode fis6[2] = {n1, n3};
  const knode node6 = klut.create_node(fis6, nand2);
  const knode fis7[2] = {n2, n3};
  const knode node7 = klut.create_node(fis7, nand2);
  const knode fis8[2] = {n3, n4};
  const knode node8 = klut.create_node(fis8, nand2);
  const knode fis9[2] = {n4, n5};
  const knode node9 = klut.create_node(fis9, nand2);
  const knode fis10[2] = {node6, node7};
  const knode node10 = klut.create_node(fis10, nand2);
  const knode fis11[2] = {node8, node9};
  const knode node11 = klut.create_node(fis11, nand2);
  klut.create_po(node10, "po1");
  klut.create_po(node11, "po2");

  // Exhaustive simulation over the supports of nodes 7 and 8:
  // node 7 = NAND(2,3) over PIs {2,3}: TT 1110 read MSB-first = 0111 …
  // the paper prints signatures LSB-pattern-first; check via values.
  const std::vector<knode> targets{node7, node8};

  // The paper's 10 patterns.
  sim::pattern_set patterns{5u};
  const char* rows[5] = {
      "0111001011", "1010011011", "1110011000", "0000011111", "1010000101"};
  for (uint32_t p = 0; p < 10u; ++p) {
    std::vector<bool> assignment;
    for (uint32_t i = 0; i < 5u; ++i) {
      assignment.push_back(rows[i][p] == '1');
    }
    patterns.add_pattern(assignment);
  }
  ASSERT_EQ(patterns.num_patterns(), 10u);

  core::stp_sim_stats stats;
  const core::stp_simulator simulator;
  const auto result =
      simulator.simulate_specified(klut, targets, patterns, &stats);

  // limit = floor(log2(10)) = 3, as in the paper.
  EXPECT_EQ(stats.leaf_limit, 3u);

  // Signatures must agree with the direct bitwise simulation.
  const auto full = sim::simulate_klut_bitwise(klut, patterns);
  EXPECT_EQ(result.at(node7), full[node7]);
  EXPECT_EQ(result.at(node8), full[node8]);

  // Exhaustive view of the paper: node 7 over (2,3) has TT 1110 —
  // NAND is 0 only when both inputs are 1.
  const auto exhaustive2 = sim::pattern_set::exhaustive(5u);
  const auto sig_ex = sim::simulate_klut_bitwise(klut, exhaustive2);
  // node 7 depends only on PIs 2,3; collapse its signature to those vars.
  for (uint32_t v2 = 0; v2 < 2u; ++v2) {
    for (uint32_t v3 = 0; v3 < 2u; ++v3) {
      const uint64_t pattern = (v2 << 1u) | (v3 << 2u);
      const bool val = (sig_ex[node7][0] >> pattern) & 1u;
      EXPECT_EQ(val, !(v2 && v3));
    }
  }
}

} // namespace
