#include "core/stp_eval.hpp"
#include "tt/operations.hpp"

#include <gtest/gtest.h>

#include <random>

namespace {

using namespace stps;

class StpEvalSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(StpEvalSweep, WordPassMatchesPerBitLookup)
{
  const uint32_t k = GetParam();
  std::mt19937_64 rng{1000u + k};
  const auto table = tt::make_random(k, 5u + k);
  core::stp_scratch scratch;
  scratch.reserve(k);

  std::vector<uint64_t> inputs(k);
  for (uint32_t trial = 0; trial < 8u; ++trial) {
    for (auto& w : inputs) {
      w = rng();
    }
    const uint64_t out = core::stp_evaluate_word(table, inputs, scratch);
    // Reference: per-bit index assembly (what the baseline simulator does).
    for (uint32_t bit = 0; bit < 64u; ++bit) {
      uint64_t index = 0;
      for (uint32_t i = 0; i < k; ++i) {
        index |= ((inputs[i] >> bit) & 1u) << i;
      }
      ASSERT_EQ((out >> bit) & 1u, table.bit(index) ? 1u : 0u)
          << "k=" << k << " trial=" << trial << " bit=" << bit;
    }
  }
}

TEST_P(StpEvalSweep, SinglePatternMatchesTable)
{
  const uint32_t k = GetParam();
  if (k > 12u) {
    return; // single-pattern path is exercised on small tables
  }
  const auto table = tt::make_random(k, 77u + k);
  std::vector<bool> vb(k);
  bool inputs[16];
  for (uint64_t x = 0; x < (uint64_t{1} << k); ++x) {
    for (uint32_t i = 0; i < k; ++i) {
      inputs[i] = (x >> i) & 1u;
    }
    EXPECT_EQ(core::stp_evaluate_single(
                  table, std::span<const bool>{inputs, k}),
              table.bit(x));
  }
}

INSTANTIATE_TEST_SUITE_P(Arities, StpEvalSweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u, 10u));

TEST(StpEval, ConstantTables)
{
  core::stp_scratch scratch;
  scratch.reserve(0u);
  EXPECT_EQ(core::stp_evaluate_word(tt::make_const0(0u), {}, scratch), 0u);
  EXPECT_EQ(core::stp_evaluate_word(tt::make_const1(0u), {}, scratch),
            ~uint64_t{0});
}

TEST(StpEval, ArityMismatchThrows)
{
  core::stp_scratch scratch;
  scratch.reserve(3u);
  const uint64_t one_input[1] = {0xffu};
  EXPECT_THROW(core::stp_evaluate_word(tt::make_maj3(), one_input, scratch),
               std::invalid_argument);
}

TEST(StpEval, ScratchGrowsMonotonically)
{
  core::stp_scratch scratch;
  scratch.reserve(4u);
  const std::size_t after4 = scratch.size();
  scratch.reserve(2u);
  EXPECT_EQ(scratch.size(), after4); // never shrinks
  scratch.reserve(8u);
  EXPECT_GT(scratch.size(), after4);
}

} // namespace
