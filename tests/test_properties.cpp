/// \file test_properties.cpp
/// \brief Cross-module property tests: algebraic laws of the STP, fuzzed
/// substitution soundness, collapse/roundtrip invariants over seeds.
#include "cut/tree_cuts.hpp"
#include "gen/random_logic.hpp"
#include "io/aiger.hpp"
#include "network/convert.hpp"
#include "sim/bitwise_sim.hpp"
#include "stp/matrix.hpp"
#include "sweep/cec.hpp"
#include "sweep/equiv_classes.hpp"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

namespace {

using namespace stps;
using stp::matrix;

matrix random_matrix(std::size_t rows, std::size_t cols,
                     std::mt19937_64& rng)
{
  matrix m{rows, cols};
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.set(r, c, rng() & 1u);
    }
  }
  return m;
}

class StpLaws : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(StpLaws, StpIsAssociative)
{
  std::mt19937_64 rng{GetParam()};
  // Dimensions drawn from small divisor-friendly values.
  const std::size_t dims[] = {1, 2, 3, 4, 6};
  const auto d = [&]() { return dims[rng() % 5u]; };
  const matrix a = random_matrix(d(), d(), rng);
  const matrix b = random_matrix(d(), d(), rng);
  const matrix c = random_matrix(d(), d(), rng);
  const matrix left = semi_tensor_product(semi_tensor_product(a, b), c);
  const matrix right = semi_tensor_product(a, semi_tensor_product(b, c));
  EXPECT_EQ(left, right);
}

TEST_P(StpLaws, KroneckerMixedProduct)
{
  std::mt19937_64 rng{GetParam() + 1000u};
  // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD) with compatible dimensions.
  const std::size_t m = 1u + rng() % 3u;
  const std::size_t n = 1u + rng() % 3u;
  const std::size_t p = 1u + rng() % 3u;
  const std::size_t q = 1u + rng() % 3u;
  const std::size_t r = 1u + rng() % 3u;
  const std::size_t s = 1u + rng() % 3u;
  const matrix a = random_matrix(m, n, rng);
  const matrix b = random_matrix(p, q, rng);
  const matrix c = random_matrix(n, r, rng);
  const matrix d = random_matrix(q, s, rng);
  EXPECT_EQ(multiply(kronecker(a, b), kronecker(c, d)),
            kronecker(multiply(a, c), multiply(b, d)));
}

TEST_P(StpLaws, StpGeneralizesMatrixProduct)
{
  std::mt19937_64 rng{GetParam() + 2000u};
  const std::size_t m = 1u + rng() % 4u;
  const std::size_t n = 1u + rng() % 4u;
  const std::size_t p = 1u + rng() % 4u;
  const matrix a = random_matrix(m, n, rng);
  const matrix b = random_matrix(n, p, rng);
  EXPECT_EQ(semi_tensor_product(a, b), multiply(a, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StpLaws, ::testing::Range(uint64_t{0},
                                                          uint64_t{12}));

class SubstitutionFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SubstitutionFuzz, RandomEquivalentMergesPreservePos)
{
  // Find truly equivalent node pairs by exhaustive simulation, merge the
  // later onto the earlier, and check PO functions after every merge.
  auto aig = gen::make_random_logic({8u, 6u, 150u, GetParam(), 30u});
  const auto patterns = sim::pattern_set::exhaustive(8u);
  const auto reference = sim::simulate_aig(aig, patterns);
  std::vector<uint64_t> ref_pos;
  aig.foreach_po([&](net::signal f, uint32_t) {
    uint64_t v = reference[f.get_node()][0];
    ref_pos.push_back(f.is_complemented() ? ~v & sim::tail_mask(256u) : v);
  });

  std::mt19937_64 rng{GetParam() + 7u};
  for (int round = 0; round < 10; ++round) {
    // Fresh signatures for the current network.
    const auto sig = sim::simulate_aig(aig, patterns);
    // Collect live equal-signature pairs.
    std::vector<std::pair<net::node, net::node>> pairs;
    std::vector<net::node> gates;
    aig.foreach_gate([&](net::node n) { gates.push_back(n); });
    for (std::size_t i = 0; i < gates.size() && pairs.size() < 20u; ++i) {
      for (std::size_t j = i + 1u; j < gates.size(); ++j) {
        if (sig[gates[i]] == sig[gates[j]]) {
          pairs.emplace_back(gates[i], gates[j]);
          break;
        }
      }
    }
    if (pairs.empty()) {
      break;
    }
    const auto [keep, kill] = pairs[rng() % pairs.size()];
    if (aig.is_dead(kill) || aig.is_dead(keep)) {
      continue;
    }
    aig.substitute_node(kill, net::signal{keep, false});

    // All POs must still compute their original functions.
    const auto now = sim::simulate_aig(aig, patterns);
    uint32_t index = 0;
    aig.foreach_po([&](net::signal f, uint32_t) {
      uint64_t v = now[f.get_node()][0];
      if (f.is_complemented()) {
        v = ~v & sim::tail_mask(256u);
      }
      EXPECT_EQ(v, ref_pos[index]) << "PO " << index << " round " << round;
      ++index;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubstitutionFuzz,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

class CollapseFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CollapseFuzz, CollapsePreservesAllRootFunctions)
{
  const uint64_t seed = GetParam();
  const auto aig = gen::make_random_logic(
      {9u, 5u, 120u + 30u * static_cast<uint32_t>(seed % 4u), seed, 25u});
  const auto conv = net::aig_to_klut(aig);
  const auto patterns = sim::pattern_set::exhaustive(9u);
  const auto before = sim::simulate_klut_bitwise(conv.klut, patterns);

  for (const uint32_t limit : {2u, 4u, 6u, 10u}) {
    const auto collapsed = cut::collapse_to_cuts(conv.klut, {}, limit);
    const auto after = sim::simulate_klut_bitwise(collapsed.net, patterns);
    for (const auto root : collapsed.roots) {
      EXPECT_EQ(before[root], after[collapsed.node_map[root]])
          << "limit " << limit << " root " << root;
    }
    // Collapsing shrinks or preserves the gate count.
    EXPECT_LE(collapsed.net.num_gates(), conv.klut.num_gates());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollapseFuzz,
                         ::testing::Range(uint64_t{0}, uint64_t{6}));

class AigerFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(AigerFuzz, BothFormatsRoundTripRandomCircuits)
{
  const auto original = gen::make_random_logic(
      {11u, 7u, 250u, GetParam() + 50u, 35u});
  for (const bool binary : {false, true}) {
    std::stringstream ss;
    if (binary) {
      io::write_aiger_binary(original, ss);
    } else {
      io::write_aiger_ascii(original, ss);
    }
    const auto reread = io::read_aiger(ss);
    ASSERT_EQ(reread.num_gates(), original.num_gates());
    // Exhaustive functional identity over 11 PIs via simulation.
    const auto patterns = sim::pattern_set::exhaustive(11u);
    const auto sa = sim::simulate_aig(original, patterns);
    const auto sb = sim::simulate_aig(reread, patterns);
    for (uint32_t i = 0; i < original.num_pos(); ++i) {
      const auto fa = original.po_at(i);
      const auto fb = reread.po_at(i);
      const uint64_t flip =
          (fa.is_complemented() != fb.is_complemented()) ? ~uint64_t{0} : 0u;
      for (std::size_t w = 0; w < patterns.num_words(); ++w) {
        ASSERT_EQ(sa[fa.get_node()][w] ^ flip, sb[fb.get_node()][w]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AigerFuzz,
                         ::testing::Range(uint64_t{0}, uint64_t{6}));

class StoreTrimFuzz : public ::testing::TestWithParam<uint64_t>
{
};

/// Property behind the sweeper's store word budget: once the classes
/// have been refined with a word, its storage can be freed without
/// changing any later refinement — the partition already absorbed it.
/// Runs the same counter-example word sequence against a trimmed and a
/// never-trimmed store and checks the partitions stay identical.
TEST_P(StoreTrimFuzz, RefinementUnchangedWhenAbsorbedWordsTrimmed)
{
  std::mt19937_64 rng{0xb0d9e7u + GetParam()};
  const auto aig = gen::make_random_logic(
      {10u, 8u, 300u, GetParam() + 77u, 30u});
  auto patterns = sim::pattern_set::random(aig.num_pis(), 128u, GetParam());

  sim::signature_store ref = sim::simulate_aig(aig, patterns);
  sim::signature_store trimmed = ref;

  sweep::equiv_classes classes_ref;
  sweep::equiv_classes classes_trimmed;
  classes_ref.build(aig, ref, sim::tail_mask(patterns.num_patterns()));
  classes_trimmed.build(aig, trimmed,
                        sim::tail_mask(patterns.num_patterns()));

  const auto assert_same_partition = [&](std::size_t step) {
    ASSERT_EQ(classes_trimmed.num_classes(), classes_ref.num_classes())
        << "step " << step;
    for (net::node n = 0; n < aig.size(); ++n) {
      ASSERT_EQ(classes_trimmed.class_of(n), classes_ref.class_of(n))
          << "step " << step << " node " << n;
    }
  };

  for (std::size_t step = 0; step < 160u; ++step) {
    // One random counter-example pattern, resimulated into both stores.
    std::vector<bool> ce(aig.num_pis());
    for (std::size_t i = 0; i < ce.size(); ++i) {
      ce[i] = (rng() & 1u) != 0u;
    }
    patterns.add_pattern(ce);
    sim::resimulate_aig_last_word(aig, patterns, ref);
    sim::resimulate_aig_last_word(aig, patterns, trimmed);

    const std::size_t last = patterns.num_words() - 1u;
    const uint64_t mask = sim::tail_mask(patterns.num_patterns());
    classes_ref.refine_with_word(ref, last, mask);
    classes_trimmed.refine_with_word(trimmed, last, mask);
    assert_same_partition(step);
    if (HasFatalFailure()) {
      return;
    }

    // Everything at or before `last` is now absorbed; trim a random
    // absorbed prefix (sometimes including the just-refined word when
    // the pattern count sits on a 64-bit boundary).
    const bool aligned = patterns.num_patterns() % 64u == 0u;
    const std::size_t max_live = aligned ? last + 1u : last;
    if (rng() % 2u == 0u) {
      trimmed.trim_words(rng() % (max_live + 1u));
    }
  }
  EXPECT_GT(trimmed.words_trimmed(), 0u);
  EXPECT_LT(trimmed.live_bytes(), ref.live_bytes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreTrimFuzz,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

} // namespace
