#include "tt/operations.hpp"
#include "tt/truth_table.hpp"

#include <gtest/gtest.h>

#include <random>

namespace {

using stps::tt::truth_table;

TEST(TruthTable, ConstructsZeroed)
{
  for (uint32_t v = 0; v <= 10; ++v) {
    const truth_table tt{v};
    EXPECT_EQ(tt.num_vars(), v);
    EXPECT_EQ(tt.num_bits(), uint64_t{1} << v);
    for (uint64_t i = 0; i < tt.num_bits(); ++i) {
      EXPECT_FALSE(tt.bit(i));
    }
  }
}

TEST(TruthTable, WordCount)
{
  EXPECT_EQ(stps::tt::words_for(0), 1u);
  EXPECT_EQ(stps::tt::words_for(6), 1u);
  EXPECT_EQ(stps::tt::words_for(7), 2u);
  EXPECT_EQ(stps::tt::words_for(10), 16u);
}

TEST(TruthTable, SetAndGetBits)
{
  truth_table tt{8u};
  tt.set_bit(0, true);
  tt.set_bit(200, true);
  tt.set_bit(255, true);
  EXPECT_TRUE(tt.bit(0));
  EXPECT_TRUE(tt.bit(200));
  EXPECT_TRUE(tt.bit(255));
  EXPECT_FALSE(tt.bit(1));
  tt.set_bit(200, false);
  EXPECT_FALSE(tt.bit(200));
}

TEST(TruthTable, PaddingMasked)
{
  truth_table tt{3u, {0xffffffffffffffffull}};
  // Only the low 8 bits may survive.
  EXPECT_EQ(tt.word(0), 0xffull);
}

TEST(TruthTable, HexRoundTrip)
{
  const truth_table and2{2u, {0x8ull}};
  EXPECT_EQ(and2.to_hex(), "8");
  EXPECT_EQ(truth_table::from_hex(2u, "8"), and2);

  const truth_table maj{3u, {0xe8ull}};
  EXPECT_EQ(maj.to_hex(), "e8");
  EXPECT_EQ(truth_table::from_hex(3u, "e8"), maj);
}

TEST(TruthTable, BinaryRoundTrip)
{
  const truth_table nand2 = truth_table::from_binary("0111");
  EXPECT_EQ(nand2.num_vars(), 2u);
  EXPECT_TRUE(nand2.bit(0));
  EXPECT_TRUE(nand2.bit(1));
  EXPECT_TRUE(nand2.bit(2));
  EXPECT_FALSE(nand2.bit(3));
  EXPECT_EQ(nand2.to_binary(), "0111");
}

TEST(TruthTable, FromBinaryRejectsBadInput)
{
  EXPECT_THROW(truth_table::from_binary("011"), std::invalid_argument);
  EXPECT_THROW(truth_table::from_binary("01a1"), std::invalid_argument);
}

TEST(TruthTable, OrderingAndHash)
{
  const truth_table a{2u, {0x8ull}};
  const truth_table b{2u, {0x6ull}};
  EXPECT_TRUE(b < a);
  EXPECT_FALSE(a < b);
  const stps::tt::truth_table_hash h;
  EXPECT_NE(h(a), h(b));
  EXPECT_EQ(h(a), h(truth_table(2u, {0x8ull})));
}

TEST(Operations, Constants)
{
  EXPECT_TRUE(stps::tt::is_const0(stps::tt::make_const0(5u)));
  EXPECT_TRUE(stps::tt::is_const1(stps::tt::make_const1(5u)));
  EXPECT_FALSE(stps::tt::is_const0(stps::tt::make_const1(0u)));
  EXPECT_EQ(stps::tt::count_ones(stps::tt::make_const1(7u)), 128u);
}

TEST(Operations, ElementaryGates)
{
  EXPECT_EQ(stps::tt::make_and2().to_binary(), "1000");
  EXPECT_EQ(stps::tt::make_or2().to_binary(), "1110");
  EXPECT_EQ(stps::tt::make_xor2().to_binary(), "0110");
  EXPECT_EQ(stps::tt::make_nand2().to_binary(), "0111");
  EXPECT_EQ(stps::tt::make_nor2().to_binary(), "0001");
  EXPECT_EQ(stps::tt::make_xnor2().to_binary(), "1001");
  EXPECT_EQ(stps::tt::make_maj3().to_binary(), "11101000");
}

class VarSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(VarSweep, ProjectionsMatchIndexBits)
{
  const uint32_t n = GetParam();
  for (uint32_t v = 0; v < n; ++v) {
    const auto proj = stps::tt::make_var(n, v);
    for (uint64_t i = 0; i < proj.num_bits(); ++i) {
      EXPECT_EQ(proj.bit(i), ((i >> v) & 1u) != 0u) << "var " << v;
    }
  }
}

TEST_P(VarSweep, BooleanOpsAgainstBruteForce)
{
  const uint32_t n = GetParam();
  const auto a = stps::tt::make_random(n, 17u + n);
  const auto b = stps::tt::make_random(n, 91u + n);
  const auto t_and = stps::tt::binary_and(a, b);
  const auto t_or = stps::tt::binary_or(a, b);
  const auto t_xor = stps::tt::binary_xor(a, b);
  const auto t_not = stps::tt::unary_not(a);
  for (uint64_t i = 0; i < a.num_bits(); ++i) {
    EXPECT_EQ(t_and.bit(i), a.bit(i) && b.bit(i));
    EXPECT_EQ(t_or.bit(i), a.bit(i) || b.bit(i));
    EXPECT_EQ(t_xor.bit(i), a.bit(i) != b.bit(i));
    EXPECT_EQ(t_not.bit(i), !a.bit(i));
  }
}

TEST_P(VarSweep, CofactorsAgainstBruteForce)
{
  const uint32_t n = GetParam();
  if (n == 0u) {
    return;
  }
  const auto f = stps::tt::make_random(n, 1234u + n);
  for (uint32_t v = 0; v < n; ++v) {
    const auto f0 = stps::tt::cofactor0(f, v);
    const auto f1 = stps::tt::cofactor1(f, v);
    for (uint64_t i = 0; i < f.num_bits(); ++i) {
      const uint64_t i0 = i & ~(uint64_t{1} << v);
      const uint64_t i1 = i | (uint64_t{1} << v);
      EXPECT_EQ(f0.bit(i), f.bit(i0));
      EXPECT_EQ(f1.bit(i), f.bit(i1));
    }
    EXPECT_EQ(stps::tt::depends_on(f, v), f0 != f1);
  }
}

TEST_P(VarSweep, ComposeAgainstBruteForce)
{
  const uint32_t inner_vars = GetParam();
  if (inner_vars == 0u) {
    return;
  }
  const uint32_t outer_vars = 3u;
  const auto f = stps::tt::make_random(outer_vars, 555u);
  std::vector<stps::tt::truth_table> gs;
  for (uint32_t i = 0; i < outer_vars; ++i) {
    gs.push_back(stps::tt::make_random(inner_vars, 1000u + i));
  }
  const auto composed = stps::tt::compose(f, gs);
  ASSERT_EQ(composed.num_vars(), inner_vars);
  for (uint64_t x = 0; x < composed.num_bits(); ++x) {
    uint64_t index = 0;
    for (uint32_t i = 0; i < outer_vars; ++i) {
      index |= uint64_t{gs[i].bit(x)} << i;
    }
    EXPECT_EQ(composed.bit(x), f.bit(index));
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, VarSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 6u, 7u, 8u, 10u));

TEST(Operations, ToggleRate)
{
  // 0101 toggles on every bit boundary: 3 toggles over 4 bits.
  const truth_table t = truth_table::from_binary("0101");
  EXPECT_DOUBLE_EQ(stps::tt::toggle_rate(t), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(stps::tt::toggle_rate(stps::tt::make_const0(4u)), 0.0);
}

TEST(Operations, ExtendKeepsFunction)
{
  const auto f = stps::tt::make_random(3u, 77u);
  const auto g = stps::tt::extend_to(f, 8u);
  for (uint64_t i = 0; i < g.num_bits(); ++i) {
    EXPECT_EQ(g.bit(i), f.bit(i & 7u));
  }
  EXPECT_THROW(stps::tt::extend_to(g, 3u), std::invalid_argument);
}

} // namespace
