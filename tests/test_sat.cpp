#include "sat/dimacs.hpp"
#include "sat/solver.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include <random>

namespace {

using namespace stps::sat;

lit pos(var v) { return lit{v, false}; }
lit neg(var v) { return lit{v, true}; }

TEST(Sat, EmptyIsSat)
{
  solver s;
  EXPECT_EQ(s.solve(), result::sat);
}

TEST(Sat, UnitClauses)
{
  solver s;
  const var a = s.new_var();
  const var b = s.new_var();
  s.add_clause({pos(a)});
  s.add_clause({neg(b)});
  ASSERT_EQ(s.solve(), result::sat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_FALSE(s.model_value(b));
}

TEST(Sat, ContradictionIsUnsat)
{
  solver s;
  const var a = s.new_var();
  s.add_clause({pos(a)});
  EXPECT_FALSE(s.add_clause({neg(a)}));
  EXPECT_EQ(s.solve(), result::unsat);
  EXPECT_TRUE(s.in_conflict());
}

TEST(Sat, SimplePropagationChain)
{
  solver s;
  const var a = s.new_var();
  const var b = s.new_var();
  const var c = s.new_var();
  s.add_clause({neg(a), pos(b)});
  s.add_clause({neg(b), pos(c)});
  s.add_clause({pos(a)});
  ASSERT_EQ(s.solve(), result::sat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  EXPECT_TRUE(s.model_value(c));
}

TEST(Sat, TautologyAndDuplicatesIgnored)
{
  solver s;
  const var a = s.new_var();
  const var b = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(a), neg(a), pos(b)})); // tautology
  EXPECT_TRUE(s.add_clause({pos(a), pos(a), pos(b)})); // duplicate lits
  EXPECT_EQ(s.solve(), result::sat);
}

TEST(Sat, AssumptionsSatAndUnsat)
{
  solver s;
  const var a = s.new_var();
  const var b = s.new_var();
  s.add_clause({pos(a), pos(b)});
  s.add_clause({neg(a), neg(b)});

  const lit assume_a[1] = {pos(a)};
  ASSERT_EQ(s.solve(assume_a), result::sat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_FALSE(s.model_value(b));

  const lit assume_both[2] = {pos(a), pos(b)};
  EXPECT_EQ(s.solve(assume_both), result::unsat);

  // Solver stays usable after an assumption conflict.
  EXPECT_EQ(s.solve(assume_a), result::sat);
  EXPECT_FALSE(s.in_conflict());
}

TEST(Sat, PigeonholeUnsat)
{
  // PHP(n+1, n): n+1 pigeons, n holes — classically unsat, needs real
  // conflict analysis to finish quickly.
  const uint32_t holes = 5;
  const uint32_t pigeons = holes + 1;
  solver s;
  std::vector<std::vector<var>> x(pigeons, std::vector<var>(holes));
  for (auto& row : x) {
    for (auto& v : row) {
      v = s.new_var();
    }
  }
  for (uint32_t p = 0; p < pigeons; ++p) {
    std::vector<lit> clause;
    for (uint32_t h = 0; h < holes; ++h) {
      clause.push_back(pos(x[p][h]));
    }
    s.add_clause(clause);
  }
  for (uint32_t h = 0; h < holes; ++h) {
    for (uint32_t p1 = 0; p1 < pigeons; ++p1) {
      for (uint32_t p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_clause({neg(x[p1][h]), neg(x[p2][h])});
      }
    }
  }
  EXPECT_EQ(s.solve(), result::unsat);
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(Sat, ConflictBudgetYieldsUnknown)
{
  const uint32_t holes = 8;
  const uint32_t pigeons = holes + 1;
  solver s;
  std::vector<std::vector<var>> x(pigeons, std::vector<var>(holes));
  for (auto& row : x) {
    for (auto& v : row) {
      v = s.new_var();
    }
  }
  for (uint32_t p = 0; p < pigeons; ++p) {
    std::vector<lit> clause;
    for (uint32_t h = 0; h < holes; ++h) {
      clause.push_back(pos(x[p][h]));
    }
    s.add_clause(clause);
  }
  for (uint32_t h = 0; h < holes; ++h) {
    for (uint32_t p1 = 0; p1 < pigeons; ++p1) {
      for (uint32_t p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_clause({neg(x[p1][h]), neg(x[p2][h])});
      }
    }
  }
  EXPECT_EQ(s.solve({}, 3), result::unknown);
  // With no budget it still finishes.
  EXPECT_EQ(s.solve(), result::unsat);
}

/// Random 3-SAT cross-checked against brute force.
class Random3Sat : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(Random3Sat, MatchesBruteForce)
{
  std::mt19937_64 rng{GetParam()};
  const uint32_t num_vars = 10u;
  const uint32_t num_clauses = 4u + static_cast<uint32_t>(rng() % 50u);

  std::vector<std::vector<lit>> clauses;
  solver s;
  for (uint32_t v = 0; v < num_vars; ++v) {
    s.new_var();
  }
  for (uint32_t c = 0; c < num_clauses; ++c) {
    std::vector<lit> clause;
    for (uint32_t k = 0; k < 3u; ++k) {
      clause.push_back(
          lit{static_cast<var>(rng() % num_vars), (rng() & 1u) != 0u});
    }
    clauses.push_back(clause);
    s.add_clause(clause);
  }

  // Brute force.
  bool expect_sat = false;
  for (uint32_t assignment = 0; assignment < (1u << num_vars);
       ++assignment) {
    bool all = true;
    for (const auto& clause : clauses) {
      bool any = false;
      for (const lit l : clause) {
        const bool value = ((assignment >> l.variable()) & 1u) != 0u;
        if (value != l.sign()) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) {
      expect_sat = true;
      break;
    }
  }

  const result r = s.solve();
  ASSERT_EQ(r, expect_sat ? result::sat : result::unsat)
      << "seed " << GetParam();
  if (r == result::sat) {
    // The returned model must satisfy every clause.
    for (const auto& clause : clauses) {
      bool any = false;
      for (const lit l : clause) {
        if (s.model_value(l.variable()) != l.sign()) {
          any = true;
          break;
        }
      }
      EXPECT_TRUE(any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Random3Sat, ::testing::Range(uint64_t{0},
                                                             uint64_t{40}));

TEST(Sat, IncrementalClauseAddition)
{
  solver s;
  const var a = s.new_var();
  const var b = s.new_var();
  s.add_clause({pos(a), pos(b)});
  ASSERT_EQ(s.solve(), result::sat);
  s.add_clause({neg(a)});
  ASSERT_EQ(s.solve(), result::sat);
  EXPECT_FALSE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  s.add_clause({neg(b)});
  EXPECT_EQ(s.solve(), result::unsat);
}

TEST(Dimacs, LoadAndSolve)
{
  std::stringstream ss{"c comment\np cnf 3 3\n1 -2 0\n2 3 0\n-1 0\n"};
  solver s;
  EXPECT_EQ(load_dimacs(ss, s), 3u);
  EXPECT_EQ(s.num_vars(), 3u);
  ASSERT_EQ(s.solve(), result::sat);
  EXPECT_FALSE(s.model_value(0));
  EXPECT_FALSE(s.model_value(1)); // 1 -2 with x1 false forces ¬x2
  EXPECT_TRUE(s.model_value(2));
}

TEST(Dimacs, LoadUnsat)
{
  std::stringstream ss{"p cnf 1 2\n1 0\n-1 0\n"};
  solver s;
  load_dimacs(ss, s);
  EXPECT_EQ(s.solve(), result::unsat);
}

TEST(Dimacs, WriteFormat)
{
  std::stringstream os;
  write_dimacs(os, 2u, {{pos(0), neg(1)}, {pos(1)}});
  EXPECT_EQ(os.str(), "p cnf 2 2\n1 -2 0\n2 0\n");
}

TEST(Dimacs, RejectsUnterminatedClause)
{
  std::stringstream ss{"p cnf 2 1\n1 2\n"};
  solver s;
  EXPECT_THROW(load_dimacs(ss, s), std::runtime_error);
}

TEST(Sat, StatsAccumulate)
{
  solver s;
  const var a = s.new_var();
  const var b = s.new_var();
  s.add_clause({pos(a), pos(b)});
  s.solve();
  s.solve();
  EXPECT_EQ(s.stats().solve_calls, 2u);
}

TEST(Sat, SetPhaseSteersFirstDecision)
{
  solver s;
  const var a = s.new_var();
  // MiniSat default phase is negative.
  ASSERT_EQ(s.solve(), result::sat);
  EXPECT_FALSE(s.model_value(a));

  s.set_phase(a, true);
  EXPECT_TRUE(s.saved_phase(a));
  ASSERT_EQ(s.solve(), result::sat);
  EXPECT_TRUE(s.model_value(a));

  s.set_phase(a, false);
  EXPECT_FALSE(s.saved_phase(a));
  ASSERT_EQ(s.solve(), result::sat);
  EXPECT_FALSE(s.model_value(a));
}

TEST(Sat, SetVarActivityOrdersDecisions)
{
  // (a ∨ b): the higher-activity variable is decided first, its default
  // negative phase propagates the other one to true.
  solver s;
  const var a = s.new_var();
  const var b = s.new_var();
  s.add_clause({pos(a), pos(b)});

  s.set_var_activity(b, 10.0);
  ASSERT_EQ(s.solve(), result::sat);
  EXPECT_FALSE(s.model_value(b));
  EXPECT_TRUE(s.model_value(a));

  // Phase saving kept the first model's values; reset both phases so
  // only the activity swap below changes the decision order.
  s.set_phase(a, false);
  s.set_phase(b, false);
  s.set_var_activity(a, 20.0);
  ASSERT_EQ(s.solve(), result::sat);
  EXPECT_FALSE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  EXPECT_GT(s.normalized_activity(a), s.normalized_activity(b));
}

TEST(Sat, PhaseSeedingNeverChangesRandom3SatAnswers)
{
  // Pure-solver half of the phase-seeding safety property: identical
  // clause databases with arbitrarily seeded phases and activities must
  // agree on sat/unsat (the encoder-level half runs on random miters in
  // test_encoder.cpp).
  for (uint64_t seed = 0; seed < 20u; ++seed) {
    std::mt19937_64 rng{seed};
    const uint32_t num_vars = 12u;
    const uint32_t num_clauses = 20u + static_cast<uint32_t>(rng() % 40u);
    solver plain;
    solver seeded;
    for (uint32_t v = 0; v < num_vars; ++v) {
      plain.new_var();
      const var sv = seeded.new_var();
      seeded.set_phase(sv, (rng() & 1u) != 0u);
      seeded.set_var_activity(sv, static_cast<double>(rng() % 16u));
    }
    for (uint32_t c = 0; c < num_clauses; ++c) {
      std::vector<lit> clause;
      for (uint32_t k = 0; k < 3u; ++k) {
        clause.push_back(
            lit{static_cast<var>(rng() % num_vars), (rng() & 1u) != 0u});
      }
      plain.add_clause(clause);
      seeded.add_clause(clause);
    }
    EXPECT_EQ(plain.solve(), seeded.solve()) << "seed " << seed;
  }
}

} // namespace
