#include "gen/arithmetic.hpp"
#include "gen/benchmarks.hpp"
#include "gen/random_logic.hpp"
#include "gen/redundancy.hpp"
#include "sim/bitwise_sim.hpp"
#include "sim/patterns.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

using namespace stps;

/// Reads PO \p po of \p aig as bit \p pat of a word-parallel run.
bool po_bit(const net::aig_network& aig, const sim::signature_store& sig,
            uint32_t po, uint64_t pat)
{
  const auto f = aig.po_at(po);
  const bool v = (sig[f.get_node()][pat >> 6u] >> (pat & 63u)) & 1u;
  return v != f.is_complemented();
}

uint64_t read_word(const sim::pattern_set& p, uint32_t first, uint32_t width,
                   uint64_t pat)
{
  uint64_t v = 0;
  for (uint32_t i = 0; i < width; ++i) {
    v |= uint64_t{p.bit(first + i, pat)} << i;
  }
  return v;
}

uint64_t read_po_word(const net::aig_network& aig,
                      const sim::signature_store& sig, uint32_t first,
                      uint32_t width, uint64_t pat)
{
  uint64_t v = 0;
  for (uint32_t i = 0; i < width; ++i) {
    v |= uint64_t{po_bit(aig, sig, first + i, pat)} << i;
  }
  return v;
}

TEST(Gen, MultiplierMultiplies)
{
  const uint32_t w = 10u;
  const auto aig = gen::make_multiplier(w);
  const auto p = sim::pattern_set::random(aig.num_pis(), 128u, 2u);
  const auto sig = sim::simulate_aig(aig, p);
  for (uint64_t pat = 0; pat < 128u; ++pat) {
    const uint64_t a = read_word(p, 0u, w, pat);
    const uint64_t b = read_word(p, w, w, pat);
    EXPECT_EQ(read_po_word(aig, sig, 0u, 2u * w, pat), a * b);
  }
}

TEST(Gen, SquareSquares)
{
  const uint32_t w = 9u;
  const auto aig = gen::make_square(w);
  const auto p = sim::pattern_set::random(aig.num_pis(), 64u, 3u);
  const auto sig = sim::simulate_aig(aig, p);
  for (uint64_t pat = 0; pat < 64u; ++pat) {
    const uint64_t a = read_word(p, 0u, w, pat);
    EXPECT_EQ(read_po_word(aig, sig, 0u, 2u * w, pat), a * a);
  }
}

TEST(Gen, DividerDivides)
{
  const uint32_t w = 8u;
  const auto aig = gen::make_divider(w);
  const auto p = sim::pattern_set::random(aig.num_pis(), 128u, 4u);
  const auto sig = sim::simulate_aig(aig, p);
  for (uint64_t pat = 0; pat < 128u; ++pat) {
    const uint64_t n = read_word(p, 0u, w, pat);
    const uint64_t d = read_word(p, w, w, pat);
    if (d == 0u) {
      continue; // undefined; restoring division yields q=all-ones path
    }
    EXPECT_EQ(read_po_word(aig, sig, 0u, w, pat), n / d) << n << "/" << d;
    EXPECT_EQ(read_po_word(aig, sig, w, w, pat), n % d) << n << "%" << d;
  }
}

TEST(Gen, SqrtTakesRoots)
{
  const uint32_t w = 12u;
  const auto aig = gen::make_sqrt(w);
  const auto p = sim::pattern_set::random(aig.num_pis(), 128u, 5u);
  const auto sig = sim::simulate_aig(aig, p);
  for (uint64_t pat = 0; pat < 128u; ++pat) {
    const uint64_t x = read_word(p, 0u, w, pat);
    uint64_t root = 0;
    while ((root + 1u) * (root + 1u) <= x) {
      ++root;
    }
    EXPECT_EQ(read_po_word(aig, sig, 0u, w / 2u, pat), root) << "x=" << x;
  }
}

TEST(Gen, MaxSelectsMaximum)
{
  const uint32_t w = 12u;
  const auto aig = gen::make_max(w);
  const auto p = sim::pattern_set::random(aig.num_pis(), 128u, 6u);
  const auto sig = sim::simulate_aig(aig, p);
  for (uint64_t pat = 0; pat < 128u; ++pat) {
    const uint64_t a = read_word(p, 0u, w, pat);
    const uint64_t b = read_word(p, w, w, pat);
    EXPECT_EQ(read_po_word(aig, sig, 0u, w, pat), std::max(a, b));
  }
}

TEST(Gen, BarrelShifterRotates)
{
  const uint32_t lg = 4u; // 16-bit
  const uint32_t w = 1u << lg;
  const auto aig = gen::make_barrel_shifter(lg);
  const auto p = sim::pattern_set::random(aig.num_pis(), 128u, 7u);
  const auto sig = sim::simulate_aig(aig, p);
  for (uint64_t pat = 0; pat < 128u; ++pat) {
    const uint64_t data = read_word(p, 0u, w, pat);
    const uint64_t amount = read_word(p, w, lg, pat);
    const uint64_t rotated =
        ((data << amount) | (data >> (w - amount))) & ((1ull << w) - 1u);
    const uint64_t expect = amount == 0u ? data : rotated;
    EXPECT_EQ(read_po_word(aig, sig, 0u, w, pat), expect)
        << data << " rot " << amount;
  }
}

TEST(Gen, HypotenuseComputesSumOfSquares)
{
  const uint32_t w = 8u;
  const auto aig = gen::make_hypotenuse(w);
  const auto p = sim::pattern_set::random(aig.num_pis(), 64u, 8u);
  const auto sig = sim::simulate_aig(aig, p);
  for (uint64_t pat = 0; pat < 64u; ++pat) {
    const uint64_t a = read_word(p, 0u, w, pat);
    const uint64_t b = read_word(p, w, w, pat);
    EXPECT_EQ(read_po_word(aig, sig, 0u, 2u * w + 2u, pat), a * a + b * b);
  }
}

TEST(Gen, Log2FindsLeadingOne)
{
  const uint32_t lg = 4u;
  const uint32_t w = 1u << lg;
  const auto aig = gen::make_log2(lg);
  const auto p = sim::pattern_set::random(aig.num_pis(), 128u, 9u);
  const auto sig = sim::simulate_aig(aig, p);
  for (uint64_t pat = 0; pat < 128u; ++pat) {
    const uint64_t x = read_word(p, 0u, w, pat);
    const bool valid = po_bit(aig, sig, lg, pat);
    EXPECT_EQ(valid, x != 0u);
    if (x != 0u) {
      uint64_t expect = 63u - static_cast<uint64_t>(__builtin_clzll(x));
      EXPECT_EQ(read_po_word(aig, sig, 0u, lg, pat), expect) << "x=" << x;
    }
  }
}

TEST(Gen, DecoderOneHot)
{
  const auto aig = gen::make_decoder(4u);
  const auto p = sim::pattern_set::exhaustive(4u);
  const auto sig = sim::simulate_aig(aig, p);
  for (uint64_t pat = 0; pat < 16u; ++pat) {
    for (uint32_t line = 0; line < 16u; ++line) {
      EXPECT_EQ(po_bit(aig, sig, line, pat), line == pat);
    }
  }
}

TEST(Gen, PriorityGrantsHighestIndex)
{
  const uint32_t w = 8u;
  const auto aig = gen::make_priority(w);
  const auto p = sim::pattern_set::exhaustive(w);
  const auto sig = sim::simulate_aig(aig, p);
  for (uint64_t pat = 0; pat < (1u << w); ++pat) {
    uint32_t winner = w; // none
    for (uint32_t i = w; i-- > 0;) {
      if ((pat >> i) & 1u) {
        winner = i;
        break;
      }
    }
    for (uint32_t i = 0; i < w; ++i) {
      EXPECT_EQ(po_bit(aig, sig, i, pat), i == winner);
    }
    EXPECT_EQ(po_bit(aig, sig, w, pat), winner != w);
  }
}

TEST(Gen, VoterMajorityBits)
{
  const uint32_t w = 8u;
  const auto aig = gen::make_voter(w);
  const auto p = sim::pattern_set::random(aig.num_pis(), 64u, 10u);
  const auto sig = sim::simulate_aig(aig, p);
  for (uint64_t pat = 0; pat < 64u; ++pat) {
    for (uint32_t i = 0; i < w; ++i) {
      const int votes = int(p.bit(i, pat)) + int(p.bit(w + i, pat)) +
                        int(p.bit(2u * w + i, pat));
      EXPECT_EQ(po_bit(aig, sig, i, pat), votes >= 2);
    }
  }
}

TEST(Gen, RandomLogicIsDeterministic)
{
  const gen::random_logic_config config{16u, 8u, 400u, 123u, 20u};
  const auto a = gen::make_random_logic(config);
  const auto b = gen::make_random_logic(config);
  EXPECT_EQ(a.num_gates(), b.num_gates());
  const auto p = sim::pattern_set::random(16u, 128u, 1u);
  const auto sa = sim::simulate_aig(a, p);
  const auto sb = sim::simulate_aig(b, p);
  for (uint32_t i = 0; i < a.num_pos(); ++i) {
    EXPECT_EQ(sa[a.po_at(i).get_node()], sb[b.po_at(i).get_node()]);
  }
}

TEST(Gen, RedundancyPreservesFunctionsAndAddsGates)
{
  const auto base = gen::make_random_logic({10u, 8u, 300u, 31u, 25u});
  const auto redundant = gen::inject_redundancy(base, {10u, 4u, 31u});
  EXPECT_GT(redundant.num_gates(), base.num_gates());

  const auto p = sim::pattern_set::random(10u, 1024u, 2u);
  const auto sb = sim::simulate_aig(base, p);
  const auto sr = sim::simulate_aig(redundant, p);
  for (uint32_t i = 0; i < base.num_pos(); ++i) {
    const auto fb = base.po_at(i);
    const auto fr = redundant.po_at(i);
    const uint64_t flip =
        (fb.is_complemented() != fr.is_complemented()) ? ~uint64_t{0} : 0u;
    for (std::size_t w = 0; w < p.num_words(); ++w) {
      EXPECT_EQ(sb[fb.get_node()][w] ^ flip, sr[fr.get_node()][w])
          << "PO " << i;
    }
  }
}

TEST(Gen, NamedSuitesBuild)
{
  for (const auto& name : gen::epfl_names()) {
    const auto aig = gen::make_epfl(name);
    EXPECT_GT(aig.num_gates(), 0u) << name;
    EXPECT_GT(aig.num_pos(), 0u) << name;
  }
  for (const auto& name : gen::sweep_names()) {
    const auto aig = gen::make_sweep_benchmark(name);
    EXPECT_GT(aig.num_gates(), 100u) << name;
  }
  EXPECT_THROW(gen::make_epfl("nonexistent"), std::invalid_argument);
  EXPECT_THROW(gen::make_sweep_benchmark("nope"), std::invalid_argument);
}

} // namespace
