#include "stp/expression.hpp"
#include "tt/operations.hpp"

#include <gtest/gtest.h>

#include <random>

namespace {

using namespace stps::stp; // expression DSL

TEST(Expression, EvaluateBasics)
{
  const expression e = (v(0) && v(1)) || !v(2);
  const bool a0[3] = {true, true, true};
  const bool a1[3] = {false, false, false};
  const bool a2[3] = {false, true, true};
  EXPECT_TRUE(e.evaluate(a0));
  EXPECT_TRUE(e.evaluate(a1)); // !x2 = true
  EXPECT_FALSE(e.evaluate(a2));
}

TEST(Expression, CanonicalFormMatchesEvaluation)
{
  const expression e = iff(v(0), !v(1)) ^ implies(v(2), v(0));
  const logic_matrix m = e.canonical_form(3u);
  for (uint32_t x = 0; x < 8u; ++x) {
    const bool assignment[3] = {((x >> 0) & 1u) != 0u, ((x >> 1) & 1u) != 0u,
                                ((x >> 2) & 1u) != 0u};
    // x0 is the leading factor: table index MSB = x0.
    const uint64_t index = (uint64_t{assignment[0]} << 2u) |
                           (uint64_t{assignment[1]} << 1u) |
                           uint64_t{assignment[2]};
    EXPECT_EQ(m.table().bit(index), e.evaluate(assignment));
  }
}

TEST(Expression, LiarPuzzleCanonicalFormMatchesPaper)
{
  // Example 2: Φ(a,b,c) = (a ↔ ¬b) ∧ (b ↔ ¬c) ∧ (c ↔ ¬a ∧ ¬b).
  const expression phi = (iff(v(0), !v(1)) && iff(v(1), !v(2))) &&
                         iff(v(2), !v(0) && !v(1));
  const logic_matrix m = phi.canonical_form(3u);
  // Paper: M_Φ = [0 0 0 0 0 1 0 0; 1 1 1 1 1 0 1 1] — columns left to
  // right are abc = 111, 110, ..., 000; the single true column is abc=010.
  EXPECT_EQ(m.to_string(), "[0 0 0 0 0 1 0 0; 1 1 1 1 1 0 1 1]");

  // Simulation with pattern 010 (b honest, a and c liars) yields True.
  const bool pattern[3] = {false, true, false};
  EXPECT_TRUE(m.apply(pattern));
  // Every other assignment is False.
  for (uint32_t x = 0; x < 8u; ++x) {
    const bool assignment[3] = {((x >> 2) & 1u) != 0u, ((x >> 1) & 1u) != 0u,
                                ((x >> 0) & 1u) != 0u};
    const bool expected = (x == 0b010u);
    EXPECT_EQ(m.apply(assignment), expected) << "assignment " << x;
  }
}

TEST(Expression, KnownIdentities)
{
  // a → b == ¬a ∨ b (Example 1 at the expression level).
  EXPECT_TRUE(identity_holds(implies(v(0), v(1)).canonical_form(2u),
                             (!v(0) || v(1)).canonical_form(2u)));
  // De Morgan.
  EXPECT_TRUE(identity_holds((!(v(0) && v(1))).canonical_form(2u),
                             (!v(0) || !v(1)).canonical_form(2u)));
  // XOR expansion.
  EXPECT_TRUE(identity_holds((v(0) ^ v(1)).canonical_form(2u),
                             ((v(0) && !v(1)) || (!v(0) && v(1)))
                                 .canonical_form(2u)));
  // Distribution.
  EXPECT_TRUE(identity_holds(
      (v(0) && (v(1) || v(2))).canonical_form(3u),
      ((v(0) && v(1)) || (v(0) && v(2))).canonical_form(3u)));
  // Non-identity must fail.
  EXPECT_FALSE(identity_holds((v(0) || v(1)).canonical_form(2u),
                              (v(0) && v(1)).canonical_form(2u)));
}

expression random_expression(std::mt19937_64& rng, uint32_t num_vars,
                             uint32_t depth)
{
  if (depth == 0u || rng() % 5u == 0u) {
    if (rng() % 8u == 0u) {
      return constant(rng() & 1u);
    }
    return v(static_cast<uint32_t>(rng() % num_vars));
  }
  switch (rng() % 6u) {
    case 0: return !random_expression(rng, num_vars, depth - 1u);
    case 1:
      return random_expression(rng, num_vars, depth - 1u) &&
             random_expression(rng, num_vars, depth - 1u);
    case 2:
      return random_expression(rng, num_vars, depth - 1u) ||
             random_expression(rng, num_vars, depth - 1u);
    case 3:
      return random_expression(rng, num_vars, depth - 1u) ^
             random_expression(rng, num_vars, depth - 1u);
    case 4:
      return implies(random_expression(rng, num_vars, depth - 1u),
                     random_expression(rng, num_vars, depth - 1u));
    default:
      return iff(random_expression(rng, num_vars, depth - 1u),
                 random_expression(rng, num_vars, depth - 1u));
  }
}

class RandomExpr : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(RandomExpr, CanonicalFormIsExhaustivelyCorrect)
{
  std::mt19937_64 rng{GetParam()};
  const uint32_t num_vars = 2u + static_cast<uint32_t>(rng() % 4u);
  const expression e = random_expression(rng, num_vars, 5u);
  const logic_matrix m = e.canonical_form(num_vars);
  bool assignment[8] = {};
  for (uint64_t x = 0; x < (uint64_t{1} << num_vars); ++x) {
    for (uint32_t i = 0; i < num_vars; ++i) {
      assignment[i] = (x >> i) & 1u;
    }
    uint64_t index = 0;
    for (uint32_t i = 0; i < num_vars; ++i) {
      index = (index << 1u) | (assignment[i] ? 1u : 0u);
    }
    EXPECT_EQ(m.table().bit(index),
              e.evaluate(std::span<const bool>{assignment, num_vars}));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExpr,
                         ::testing::Range(0u, 20u));

TEST(Expression, ToStringRenders)
{
  const expression e = implies(v(0), !v(1));
  EXPECT_EQ(e.to_string(), "(x0 → ¬x1)");
}

} // namespace
