/// \file test_solver_db.cpp
/// \brief Clause-database policy suite (PR 10): the reduce_db /
/// implicit-binary / inprocessing machinery against the naive
/// watched-clause path.
///
/// Strategy: build a corpus of random 3-SAT instances around the phase
/// transition plus structured instances (pigeonhole, an XOR-chain
/// miter), then pin that every point of the policy config matrix
/// {reduce on/off} x {implicit binaries on/off} returns the *same
/// verdict* as the naive path, with a valid model on every sat answer
/// and byte-identical search statistics on repeat runs.  The policy
/// knobs are shrunk (reduce_base = 8) so reductions actually fire on
/// these tiny instances — a separate test asserts they did.
///
/// The inprocessor phases (equivalent-literal collapsing, backward
/// subsumption, bounded vivification) get crafted unit instances each,
/// and the dimacs export/replay path is closed into a round-trip:
/// a query exported from any config must replay to the same verdict
/// under any other config.

#include "gen/arithmetic.hpp"
#include "sat/cnf_manager.hpp"
#include "sat/dimacs.hpp"
#include "sat/encoder.hpp"
#include "sat/inprocess.hpp"
#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <vector>

namespace {

using namespace stps;
using namespace stps::sat;

lit pos(var v) { return lit{v, false}; }
lit neg(var v) { return lit{v, true}; }

using cnf = std::vector<std::vector<lit>>;

/// Random 3-SAT with distinct variables per clause.  Ratio ~4.3 puts
/// the corpus at the phase transition, so seeds split between sat and
/// unsat and the unsat ones need real conflict analysis.
cnf random_3sat(uint32_t num_vars, uint32_t num_clauses, uint64_t seed)
{
  std::mt19937_64 rng{seed};
  std::uniform_int_distribution<uint32_t> pick_var{0, num_vars - 1};
  std::uniform_int_distribution<int> pick_sign{0, 1};
  cnf clauses;
  clauses.reserve(num_clauses);
  for (uint32_t i = 0; i < num_clauses; ++i) {
    std::vector<lit> c;
    while (c.size() < 3) {
      const var v = pick_var(rng);
      bool fresh = true;
      for (const lit l : c) {
        fresh &= l.variable() != v;
      }
      if (fresh) {
        c.push_back(lit{v, pick_sign(rng) != 0});
      }
    }
    clauses.push_back(std::move(c));
  }
  return clauses;
}

/// PHP(holes+1, holes): classically unsat, and its hole-conflict
/// clauses are all binary — the implicit-binary graph carries most of
/// the instance.
cnf pigeonhole(uint32_t holes, uint32_t& num_vars)
{
  const uint32_t pigeons = holes + 1;
  num_vars = pigeons * holes;
  const auto x = [&](uint32_t p, uint32_t h) -> var { return p * holes + h; };
  cnf clauses;
  for (uint32_t p = 0; p < pigeons; ++p) {
    std::vector<lit> some_hole;
    for (uint32_t h = 0; h < holes; ++h) {
      some_hole.push_back(pos(x(p, h)));
    }
    clauses.push_back(std::move(some_hole));
  }
  for (uint32_t h = 0; h < holes; ++h) {
    for (uint32_t p = 0; p < pigeons; ++p) {
      for (uint32_t q = p + 1; q < pigeons; ++q) {
        clauses.push_back({neg(x(p, h)), neg(x(q, h))});
      }
    }
  }
  return clauses;
}

/// Tseitin XOR gate z = x ^ y.
void add_xor(cnf& clauses, lit z, lit x, lit y)
{
  clauses.push_back({~z, x, y});
  clauses.push_back({~z, ~x, ~y});
  clauses.push_back({z, ~x, y});
  clauses.push_back({z, x, ~y});
}

/// Miter of two XOR chains over the same inputs, associated in opposite
/// orders, asserted different — unsat, and every conflict reaches
/// through ternary Tseitin structure (no help from the binary graph).
cnf xor_chain_miter(uint32_t num_inputs, uint32_t& num_vars)
{
  cnf clauses;
  var next = num_inputs;
  // left-assoc chain
  var acc_l = 0; // reuse input 0 as the seed accumulator literal source
  lit left = pos(0);
  for (uint32_t i = 1; i < num_inputs; ++i) {
    const var z = next++;
    add_xor(clauses, pos(z), left, pos(i));
    left = pos(z);
  }
  // right-assoc chain
  lit right = pos(num_inputs - 1);
  for (uint32_t i = num_inputs - 1; i-- > 0;) {
    const var z = next++;
    add_xor(clauses, pos(z), pos(i), right);
    right = pos(z);
  }
  // assert left != right
  clauses.push_back({left, right});
  clauses.push_back({~left, ~right});
  num_vars = next;
  (void)acc_l;
  return clauses;
}

void load(solver& s, const cnf& clauses, uint32_t num_vars)
{
  while (s.num_vars() < num_vars) {
    s.new_var();
  }
  for (const auto& c : clauses) {
    s.add_clause(c);
  }
}

bool model_satisfies(const solver& s, const cnf& clauses)
{
  for (const auto& c : clauses) {
    bool satisfied = false;
    for (const lit l : c) {
      satisfied |= s.model_value(l.variable()) != l.sign();
    }
    if (!satisfied) {
      return false;
    }
  }
  return true;
}

/// The policy config matrix.  reduce_base is shrunk so reduce_db fires
/// on corpus-sized instances; verdicts may not depend on it.
const solver_options configs[] = {
    {false, false, 4000, 300}, // naive: watched clauses only, no reduction
    {true, false, 8, 4},       // aggressive reduction, no binary graph
    {false, true, 4000, 300},  // binary graph only
    {true, true, 8, 4},        // full machinery, aggressive reduction
};

struct corpus_instance
{
  const char* name;
  uint32_t num_vars;
  cnf clauses;
};

std::vector<corpus_instance> make_corpus()
{
  std::vector<corpus_instance> corpus;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    corpus.push_back({"rand3sat", 50, random_3sat(50, 215, 0xC0FFEEu + seed)});
  }
  uint32_t nv = 0;
  cnf php = pigeonhole(6, nv);
  corpus.push_back({"php", nv, std::move(php)});
  cnf miter = xor_chain_miter(10, nv);
  corpus.push_back({"xor_miter", nv, std::move(miter)});
  return corpus;
}

TEST(SolverDb, ConfigMatrixAgreesWithNaivePath)
{
  const std::vector<corpus_instance> corpus = make_corpus();
  uint32_t sat_count = 0;
  uint32_t unsat_count = 0;
  for (const corpus_instance& inst : corpus) {
    result naive_verdict = result::unknown;
    for (std::size_t ci = 0; ci < std::size(configs); ++ci) {
      solver s{configs[ci]};
      load(s, inst.clauses, inst.num_vars);
      const result r = s.solve();
      ASSERT_NE(r, result::unknown) << inst.name << " config " << ci;
      if (ci == 0) {
        naive_verdict = r;
        sat_count += r == result::sat;
        unsat_count += r == result::unsat;
      } else {
        EXPECT_EQ(r, naive_verdict)
            << inst.name << " config " << ci << " diverged from naive";
      }
      if (r == result::sat) {
        EXPECT_TRUE(model_satisfies(s, inst.clauses))
            << inst.name << " config " << ci << " returned an invalid model";
      }
    }
  }
  // The corpus must actually exercise both verdicts.
  EXPECT_GT(sat_count, 0u);
  EXPECT_GT(unsat_count, 0u);
}

TEST(SolverDb, PolicyMachineryActuallyFires)
{
  uint32_t nv = 0;
  const cnf php = pigeonhole(7, nv); // hard enough to learn > 8 clauses

  solver full{configs[3]};
  load(full, php, nv);
  EXPECT_EQ(full.solve(), result::unsat);
  // The hole-conflict clauses are binary and must have been routed to
  // the implication graph; the tiny reduce_base must have triggered
  // at least one reduction; every learnt carries an LBD.
  EXPECT_GT(full.stats().binary_clauses, 0u);
  EXPECT_GT(full.stats().learnts_reduced, 0u);
  EXPECT_GT(full.stats().lbd_sum, 0u);

  solver naive{configs[0]};
  load(naive, php, nv);
  EXPECT_EQ(naive.solve(), result::unsat);
  EXPECT_EQ(naive.stats().binary_clauses, 0u);
  EXPECT_EQ(naive.stats().learnts_reduced, 0u);
}

TEST(SolverDb, RepeatRunsAreDeterministic)
{
  const std::vector<corpus_instance> corpus = make_corpus();
  for (const corpus_instance& inst : corpus) {
    for (const solver_options& opt : configs) {
      solver a{opt};
      solver b{opt};
      load(a, inst.clauses, inst.num_vars);
      load(b, inst.clauses, inst.num_vars);
      const result ra = a.solve();
      const result rb = b.solve();
      EXPECT_EQ(ra, rb) << inst.name;
      EXPECT_EQ(a.stats().decisions, b.stats().decisions) << inst.name;
      EXPECT_EQ(a.stats().conflicts, b.stats().conflicts) << inst.name;
      EXPECT_EQ(a.stats().propagations, b.stats().propagations) << inst.name;
      EXPECT_EQ(a.stats().learnts_reduced, b.stats().learnts_reduced)
          << inst.name;
      if (ra == result::sat) {
        for (var v = 0; v < inst.num_vars; ++v) {
          EXPECT_EQ(a.model_value(v), b.model_value(v))
              << inst.name << " var " << v;
        }
      }
    }
  }
}

/// Incremental assumption queries against one long-lived reducing
/// solver must agree with a fresh naive solver per query — reductions
/// between queries may only delete learnts, never change answers.
TEST(SolverDb, IncrementalQueriesMatchFreshNaiveSolver)
{
  const cnf base = random_3sat(60, 240, 0xBEEFu); // satisfiable region edge
  solver persistent{configs[3]};
  load(persistent, base, 60);

  std::mt19937_64 rng{17};
  std::uniform_int_distribution<uint32_t> pick_var{0, 59};
  std::uniform_int_distribution<int> pick_sign{0, 1};
  for (uint32_t q = 0; q < 25; ++q) {
    std::vector<lit> assumptions;
    for (uint32_t i = 0; i < 3; ++i) {
      assumptions.push_back(lit{pick_var(rng), pick_sign(rng) != 0});
    }
    const result incremental = persistent.solve(assumptions);
    solver fresh{configs[0]};
    load(fresh, base, 60);
    const result reference = fresh.solve(assumptions);
    EXPECT_EQ(incremental, reference) << "query " << q;
  }
  // The long-lived database really went through reductions.
  EXPECT_GT(persistent.stats().learnts_reduced, 0u);
}

/// The purge/retract pattern of the equivalence encoder, interleaved
/// with aggressive reduce_db and arena GC: auxiliary definitions added
/// as removable clauses, one solve, purge of everything learnt about
/// the aux var, retraction — repeated until the learnt log has been
/// reshuffled by reductions and collections many times over.
TEST(SolverDb, PurgeSoundUnderReduceAndGarbageCollection)
{
  const cnf base = random_3sat(50, 210, 0xD1CEu);
  solver s{configs[3]};
  load(s, base, 50);

  std::mt19937_64 rng{23};
  std::uniform_int_distribution<uint32_t> pick_var{0, 49};
  std::uniform_int_distribution<int> pick_sign{0, 1};
  for (uint32_t round = 0; round < 30; ++round) {
    const lit l1{pick_var(rng), pick_sign(rng) != 0};
    lit l2{pick_var(rng), pick_sign(rng) != 0};
    while (l2.variable() == l1.variable()) {
      l2 = lit{pick_var(rng), pick_sign(rng) != 0};
    }
    // aux <-> (l1 & l2), attached retractably like a query miter.
    const var aux = s.new_var();
    std::vector<solver::clause_handle> handles;
    handles.push_back(s.add_removable_clause({{neg(aux), l1}}));
    handles.push_back(s.add_removable_clause({{neg(aux), l2}}));
    handles.push_back(s.add_removable_clause({{pos(aux), ~l1, ~l2}}));
    const lit assume[1] = {round % 2 == 0 ? pos(aux) : neg(aux)};
    const result incremental = s.solve(assume);

    // Reference: fresh naive solver with the same base + definition.
    // The persistent solver accumulates one aux var per round; pad the
    // reference to the same id space (earlier aux vars are unused).
    solver fresh{configs[0]};
    load(fresh, base, 50);
    while (fresh.num_vars() <= aux) {
      fresh.new_var();
    }
    fresh.add_clause({neg(aux), l1});
    fresh.add_clause({neg(aux), l2});
    fresh.add_clause({pos(aux), ~l1, ~l2});
    EXPECT_EQ(incremental, fresh.solve(assume)) << "round " << round;

    s.purge_learnts_with(aux);
    for (solver::clause_handle h : handles) {
      s.remove_clause(h);
    }
  }
  EXPECT_GT(s.stats().learnts_reduced, 0u);
}

TEST(SolverDb, InprocessCollapsesEquivalentLiterals)
{
  solver s; // defaults: implicit binaries on
  for (int i = 0; i < 6; ++i) {
    s.new_var();
  }
  // a <-> b through the binary graph, plus ternary clauses on both
  // names that collapsing rewrites onto one representative.
  s.add_clause({neg(0), pos(1)});
  s.add_clause({neg(1), pos(0)});
  s.add_clause({pos(0), pos(2), pos(3)});
  s.add_clause({neg(1), pos(4), pos(5)});
  s.add_clause({pos(2), neg(4)});

  const inprocessor::outcome out = inprocessor::run(s, {}, nullptr);
  EXPECT_FALSE(out.unsat);
  EXPECT_GE(out.lits_collapsed, 1u);
  EXPECT_EQ(s.stats().lits_collapsed, out.lits_collapsed);

  // The equivalence must survive in the database: a and b agree in
  // every model, in both phases.
  const lit force_a[1] = {pos(0)};
  ASSERT_EQ(s.solve(force_a), result::sat);
  EXPECT_EQ(s.model_value(0), s.model_value(1));
  const lit force_na[1] = {neg(0)};
  ASSERT_EQ(s.solve(force_na), result::sat);
  EXPECT_EQ(s.model_value(0), s.model_value(1));
}

TEST(SolverDb, InprocessDetectsContradictoryScc)
{
  solver s;
  for (int i = 0; i < 3; ++i) {
    s.new_var();
  }
  // a -> b -> !a -> c -> a: a and !a share an SCC, database unsat —
  // pure binary structure no unit propagation can see.
  s.add_clause({neg(0), pos(1)});
  s.add_clause({neg(1), neg(0)});
  s.add_clause({pos(0), pos(2)});
  s.add_clause({neg(2), pos(0)});

  const inprocessor::outcome out = inprocessor::run(s, {}, nullptr);
  EXPECT_TRUE(out.unsat);
  EXPECT_EQ(s.solve(), result::unsat);
}

TEST(SolverDb, InprocessSubsumesAndVivifies)
{
  solver s;
  for (int i = 0; i < 8; ++i) {
    s.new_var();
  }
  // (a | b) subsumes (a | b | c) — binary subsumer from the graph.
  s.add_clause({pos(0), pos(1)});
  s.add_clause({pos(0), pos(1), pos(2)});
  // c -> a strengthens (a | b2 | c) to (a | b2): vivification assumes
  // !a (propagating !c through the graph), then finds c already false.
  s.add_clause({neg(2), pos(0)});
  s.add_clause({pos(0), pos(3), pos(2)});
  // untouched filler keeping the instance satisfiable and non-trivial
  s.add_clause({pos(4), pos(5), pos(6)});
  s.add_clause({neg(4), pos(7), neg(6)});

  const std::size_t clauses_before = s.num_clauses();
  const inprocessor::outcome out = inprocessor::run(s, {}, nullptr);
  EXPECT_FALSE(out.unsat);
  EXPECT_GE(out.clauses_subsumed, 1u);
  EXPECT_GE(out.clauses_strengthened, 1u);
  EXPECT_LT(s.num_clauses(), clauses_before);
  EXPECT_EQ(s.stats().clauses_subsumed, out.clauses_subsumed);

  // The strengthened clause (a | b2) must now be enforced: refuting
  // both literals leaves no model.
  const lit refute[2] = {neg(0), neg(3)};
  EXPECT_EQ(s.solve(refute), result::unsat);
  ASSERT_EQ(s.solve(), result::sat);
}

/// Export a query from every config, replay it under every config:
/// all 16 combinations must agree with the live verdict, with and
/// without learnt clauses included.
TEST(SolverDb, ExportReplayRoundTrip)
{
  uint32_t nv = 0;
  const cnf miter = xor_chain_miter(8, nv);
  const cnf satisfiable = random_3sat(40, 160, 0xF00Du);

  for (const solver_options& exporter_opt : configs) {
    // Unsat instance, exported mid-session after a solve (learnts live).
    solver s{exporter_opt};
    load(s, miter, nv);
    EXPECT_EQ(s.solve(), result::unsat);
    for (const bool include_learnts : {false, true}) {
      std::ostringstream os;
      export_dimacs(os, s, {}, include_learnts);
      for (const solver_options& replayer_opt : configs) {
        std::istringstream is{os.str()};
        EXPECT_EQ(replay_dimacs(is, -1, replayer_opt), result::unsat);
      }
    }

    // Satisfiable instance under assumptions: the assumption units ride
    // along in the export, flipping the verdict where they bind.
    solver t{exporter_opt};
    load(t, satisfiable, 40);
    ASSERT_EQ(t.solve(), result::sat);
    const bool phase = t.model_value(0);
    const lit agree[1] = {lit{0, !phase}};
    const lit contra[2] = {lit{0, phase}, lit{0, !phase}};
    ASSERT_EQ(t.solve(agree), result::sat);
    std::ostringstream os_sat;
    export_dimacs(os_sat, t, agree);
    std::istringstream is_sat{os_sat.str()};
    EXPECT_EQ(replay_dimacs(is_sat), result::sat);
    std::ostringstream os_unsat;
    export_dimacs(os_unsat, t, contra);
    std::istringstream is_unsat{os_unsat.str()};
    EXPECT_EQ(replay_dimacs(is_unsat), result::unsat);
  }
}

/// An equivalence query exported from the encoder replays standalone to
/// the encoder's own verdict — both polarities, both verdicts.
TEST(SolverDb, EncoderExportedQueryReplays)
{
  net::aig_network aig;
  const auto a = aig.create_pi();
  const auto b = aig.create_pi();
  const auto x1 = aig.create_xor(a, b);
  const auto x2 = aig.create_and(aig.create_or(a, b), !aig.create_and(a, b));
  aig.create_po(x1);
  aig.create_po(x2);

  solver s;
  aig_encoder enc{aig, s};
  EXPECT_EQ(enc.prove_equivalent(x1, x2, false, -1), result::unsat);
  EXPECT_EQ(enc.prove_equivalent(x1, x2, true, -1), result::sat);

  for (const bool complement : {false, true}) {
    std::ostringstream os;
    enc.export_equivalence_query(os, x1, x2, complement);
    for (const solver_options& opt : configs) {
      std::istringstream is{os.str()};
      EXPECT_EQ(replay_dimacs(is, -1, opt),
                complement ? result::sat : result::unsat)
          << "complement=" << complement;
    }
  }
}

/// Same export through the cnf_manager facade (the path bench tooling
/// uses to capture a misbehaving cone query).
TEST(SolverDb, CnfManagerExportedQueryReplays)
{
  net::aig_network aig = gen::make_adder(8);

  // A same-network self-equivalence already closes the export loop:
  // output 0 vs itself is unsat, vs its complement sat.
  sat::cnf_manager cnf{aig, {}};
  const net::signal out0 = aig.po_at(0);
  ASSERT_EQ(cnf.prove_equivalent(out0, out0, false, -1), result::unsat);

  std::ostringstream os;
  cnf.export_equivalence_query(os, out0, out0, false);
  std::istringstream is{os.str()};
  EXPECT_EQ(replay_dimacs(is), result::unsat);

  std::ostringstream os_c;
  cnf.export_equivalence_query(os_c, out0, out0, true);
  std::istringstream is_c{os_c.str()};
  EXPECT_EQ(replay_dimacs(is_c), result::sat);
}

} // namespace
