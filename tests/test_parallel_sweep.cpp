/// \file test_parallel_sweep.cpp
/// \brief Determinism and soundness pins for the class-sharded parallel
/// SAT phase (stp_sweep_params::threads / sat_shards).
///
/// The contract under test, in order of importance:
///
/// 1. **Thread-count invariance** — at a fixed shard count the sweep is
///    a pure function of its inputs: threads = 1, 2, 4 must produce
///    byte-identical counters AND byte-identical result networks.
///    This is what makes parallel results trustworthy: scheduling can
///    never leak into the trajectory.
/// 2. **Sharded soundness** — any shard count yields a CEC-equivalent
///    network; sharding only defers merge application, never weakens
///    the proof discipline.  Sharded sweeps also land on the same
///    result-gate count as the single-thread path on redundancy-rich
///    instances (all true equivalences are proven either way when
///    budgets are unlimited).
/// 3. **Governed cancellation** fans out: one shared governor stops
///    every worker, and the partial result stays sound.
#include "gen/benchmarks.hpp"
#include "gen/random_logic.hpp"
#include "gen/redundancy.hpp"
#include "sweep/cec.hpp"
#include "sweep/resource_governor.hpp"
#include "sweep/stp_sweeper.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace {

using namespace stps;

/// Structural fingerprint: fanin literals of every live gate in id
/// order plus the PO literals.  Two byte-identical sweeps must agree on
/// this exactly (not just on gate counts).
std::vector<uint32_t> fingerprint(const net::aig_network& aig)
{
  std::vector<uint32_t> fp;
  aig.foreach_gate([&](net::node n) {
    fp.push_back(n);
    fp.push_back(aig.fanin0(n).lit);
    fp.push_back(aig.fanin1(n).lit);
  });
  aig.foreach_po([&](net::signal f, uint32_t) { fp.push_back(f.lit); });
  return fp;
}

/// Every deterministic counter of sweep_stats (everything except the
/// wall-clock seconds), flattened for a single EXPECT_EQ.
std::vector<uint64_t> counters(const sweep::sweep_stats& s)
{
  return {s.gates_before,
          s.gates_after,
          s.levels_before,
          s.sat_calls_satisfiable,
          s.sat_calls_total,
          s.merges,
          s.constant_merges,
          s.window_merges,
          s.dont_touch,
          s.ce_patterns,
          static_cast<uint64_t>(s.outcome),
          s.undet_retries,
          s.undet_resolved,
          s.ce_gates_visited,
          s.ce_gates_scan_baseline,
          s.ce_targets_pruned,
          static_cast<uint64_t>(s.has_ce_counters),
          static_cast<uint64_t>(s.has_ce_engine),
          static_cast<uint64_t>(s.ce_engine_used),
          static_cast<uint64_t>(s.ce_engine_escalated),
          s.sat_nodes_encoded,
          s.sat_solver_rebuilds,
          s.sat_clauses_peak,
          s.sat_conflicts,
          s.sat_decisions,
          s.sat_restarts,
          s.phase_seed_words,
          static_cast<uint64_t>(s.has_store_counters),
          s.store_words_live,
          s.store_words_trimmed,
          s.store_peak_bytes,
          s.pattern_words_live,
          s.pattern_words_recycled,
          s.threads,
          s.sat_shards,
          s.workers_used};
}

net::aig_network test_instance(uint64_t seed)
{
  auto base = gen::make_random_logic(
      {20u, 12u, 900u + 60u * static_cast<uint32_t>(seed % 5u),
       0x9a11u + seed, 25u});
  return gen::inject_redundancy(base, {10u, 6u, 0x9a11u + seed, 40u});
}

TEST(ParallelSweep, ThreadCountNeverChangesTheResult)
{
  // The determinism pin: fixed shard count, varying thread count.
  // Every counter (including SAT search effort) and the full result
  // network must be byte-identical — scheduling must not exist as far
  // as results are concerned.
  for (const uint64_t seed : {0u, 1u, 2u}) {
    std::vector<std::vector<uint64_t>> all_counters;
    std::vector<std::vector<uint32_t>> all_fps;
    for (const uint32_t threads : {1u, 2u, 4u}) {
      net::aig_network aig = test_instance(seed);
      sweep::stp_sweep_params params;
      params.guided.base_patterns = 256u;
      params.threads = threads;
      params.sat_shards = 4u; // fixed: the trajectory parameter
      const auto stats = sweep::stp_sweep(aig, params);
      EXPECT_EQ(stats.sat_shards, 4u);
      EXPECT_EQ(stats.threads, threads);
      EXPECT_EQ(stats.workers_used, std::min(threads, 4u));
      EXPECT_EQ(stats.worker_sat_seconds.size(), stats.workers_used);
      auto flat = counters(stats);
      // threads/workers_used legitimately differ across runs; compare
      // everything else.
      flat[flat.size() - 3u] = 0u; // threads
      flat[flat.size() - 1u] = 0u; // workers_used
      all_counters.push_back(std::move(flat));
      all_fps.push_back(fingerprint(aig));
    }
    for (std::size_t i = 1; i < all_counters.size(); ++i) {
      EXPECT_EQ(all_counters[i], all_counters.front()) << "seed " << seed;
      EXPECT_EQ(all_fps[i], all_fps.front()) << "seed " << seed;
    }
  }
}

TEST(ParallelSweep, ShardedSweepsAreSoundAndReachTheSameSize)
{
  // Sharding changes the trajectory (per-shard solvers learn
  // independently) but never the proof discipline: any shard count is
  // CEC-equivalent, and with unlimited budgets every true equivalence
  // is proven, so the result-gate count matches single-thread.
  for (const uint64_t seed : {3u, 4u, 5u, 6u}) {
    const net::aig_network original = test_instance(seed);

    net::aig_network single = original;
    sweep::stp_sweep_params params;
    params.guided.base_patterns = 256u;
    const auto single_stats = sweep::stp_sweep(single, params);
    EXPECT_EQ(single_stats.sat_shards, 1u);
    EXPECT_EQ(single_stats.worker_sat_seconds.size(), 1u);

    for (const uint32_t shards : {2u, 4u}) {
      net::aig_network sharded = original;
      sweep::stp_sweep_params p = params;
      p.threads = 2u;
      p.sat_shards = shards;
      const auto stats = sweep::stp_sweep(sharded, p);
      EXPECT_EQ(stats.sat_shards, shards);
      const auto cec = sweep::check_equivalence(original, sharded);
      EXPECT_TRUE(cec.equivalent) << "seed " << seed << " shards " << shards;
      EXPECT_EQ(stats.gates_after, single_stats.gates_after)
          << "seed " << seed << " shards " << shards;
    }
  }
}

TEST(ParallelSweep, DefaultShardCountFollowsThreads)
{
  // sat_shards = 0 means one shard per thread; threads = 1 must stay on
  // the single-thread in-place path (sat_shards reported as 1).
  net::aig_network aig = test_instance(7u);
  sweep::stp_sweep_params params;
  params.guided.base_patterns = 256u;
  params.threads = 3u; // sat_shards stays 0
  EXPECT_EQ(params.effective_sat_shards(), 3u);
  const auto stats = sweep::stp_sweep(aig, params);
  EXPECT_EQ(stats.sat_shards, 3u);
  EXPECT_EQ(stats.workers_used, 3u);

  sweep::stp_sweep_params single;
  EXPECT_EQ(single.effective_sat_shards(), 1u);
  single.threads = 0u; // clamped
  EXPECT_EQ(single.effective_sat_shards(), 1u);
}

TEST(ParallelSweep, SharedGovernorCancelsEveryWorker)
{
  // One governor, four workers: tripping the stop token mid-sweep winds
  // every shard down, the outcome is recorded, and the partial result
  // (only committed proven merges) stays CEC-equivalent.
  const net::aig_network original = test_instance(8u);
  net::aig_network aig = original;
  sweep::governor_limits limits;
  limits.cancel_after_queries = 40u; // trips while shards are querying
  sweep::resource_governor governor{limits};
  sweep::stp_sweep_params params;
  params.guided.base_patterns = 256u;
  params.threads = 4u;
  params.sat_shards = 4u;
  params.governor = &governor;
  const auto stats = sweep::stp_sweep(aig, params);
  EXPECT_EQ(stats.outcome, sweep::sweep_outcome::cancelled);
  EXPECT_TRUE(governor.stop_requested());
  const auto cec = sweep::check_equivalence(original, aig);
  EXPECT_TRUE(cec.equivalent);
  EXPECT_LE(aig.num_gates(), original.num_gates());
}

TEST(ParallelSweep, ScaleFourNamesExist)
{
  // The scale-4 workload tier: names registered, clamp honest, and the
  // 500k-class instance actually reaches paper scale.  (rand2m's ≥1.92M
  // gates — the 19-leaf window tier — is asserted at bench time, not
  // here: building it takes longer than the whole unit suite.)
  const auto names = gen::sweep_names(4u);
  EXPECT_NE(std::find(names.begin(), names.end(), "mult200r"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "rand1m"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "rand2m"), names.end());
  EXPECT_EQ(gen::sweep_names(99u).size(), names.size()); // clamps
  EXPECT_EQ(gen::max_sweep_scale, 4u);

  const auto mult = gen::make_sweep_benchmark("mult200r");
  EXPECT_GE(mult.num_gates(), 450'000u);
  // The scale-4 tier must put rand2m in the 19-leaf window band.
  sweep::stp_sweep_params params;
  EXPECT_EQ(params.effective_window_support(1'950'000u), 19u);
}

} // namespace
