#include "cut/lut_mapper.hpp"
#include "gen/arithmetic.hpp"
#include "gen/random_logic.hpp"
#include "io/aiger.hpp"
#include "io/bench.hpp"
#include "io/blif.hpp"
#include "sim/bitwise_sim.hpp"
#include "sweep/cec.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace stps;

void expect_equivalent(const net::aig_network& a, const net::aig_network& b)
{
  ASSERT_EQ(a.num_pis(), b.num_pis());
  ASSERT_EQ(a.num_pos(), b.num_pos());
  EXPECT_TRUE(sweep::check_equivalence(a, b).equivalent);
}

TEST(Aiger, AsciiRoundTrip)
{
  const auto original = gen::make_adder(12u);
  std::stringstream ss;
  io::write_aiger_ascii(original, ss);
  const auto reread = io::read_aiger(ss);
  EXPECT_EQ(reread.num_gates(), original.num_gates());
  expect_equivalent(original, reread);
}

TEST(Aiger, BinaryRoundTrip)
{
  const auto original = gen::make_random_logic({14u, 9u, 500u, 8u, 25u});
  std::stringstream ss;
  io::write_aiger_binary(original, ss);
  const auto reread = io::read_aiger(ss);
  EXPECT_EQ(reread.num_gates(), original.num_gates());
  expect_equivalent(original, reread);
}

TEST(Aiger, RoundTripAfterSubstitutionCompacts)
{
  // Dead nodes must not leak into the file.
  auto aig = gen::make_adder(6u);
  const auto order_gate = [&]() {
    net::node last = 0;
    aig.foreach_gate([&](net::node n) { last = n; });
    return last;
  }();
  (void)order_gate;
  aig.cleanup_dangling();
  std::stringstream ss;
  io::write_aiger_ascii(aig, ss);
  const auto reread = io::read_aiger(ss);
  expect_equivalent(aig, reread);
}

TEST(Aiger, AsciiHeaderParsing)
{
  std::stringstream ss{"aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n"};
  const auto aig = io::read_aiger(ss);
  EXPECT_EQ(aig.num_pis(), 2u);
  EXPECT_EQ(aig.num_pos(), 1u);
  EXPECT_EQ(aig.num_gates(), 1u);
  // The single AND drives the PO.
  const auto f = aig.po_at(0);
  EXPECT_FALSE(f.is_complemented());
  EXPECT_TRUE(aig.is_and(f.get_node()));
}

TEST(Aiger, RejectsGarbage)
{
  std::stringstream ss{"not_aiger 1 2 3\n"};
  EXPECT_THROW(io::read_aiger(ss), std::runtime_error);
  EXPECT_THROW(io::read_aiger(std::string{"/nonexistent/file.aig"}),
               std::runtime_error);
}

TEST(Blif, ContainsModelAndCovers)
{
  const auto aig = gen::make_adder(4u);
  const auto mapped = cut::lut_map(aig, 4u);
  std::stringstream ss;
  io::write_blif(mapped.klut, ss, "adder4");
  const std::string text = ss.str();
  EXPECT_NE(text.find(".model adder4"), std::string::npos);
  EXPECT_NE(text.find(".inputs"), std::string::npos);
  EXPECT_NE(text.find(".outputs"), std::string::npos);
  EXPECT_NE(text.find(".names"), std::string::npos);
  EXPECT_NE(text.find(".end"), std::string::npos);
  // One .names block per gate + 2 constants + one buffer per PO.
  std::size_t names = 0;
  for (std::size_t pos = text.find(".names"); pos != std::string::npos;
       pos = text.find(".names", pos + 1u)) {
    ++names;
  }
  EXPECT_EQ(names, mapped.klut.num_gates() + 2u + mapped.klut.num_pos());
}

TEST(Blif, RoundTripThroughReader)
{
  const auto aig = gen::make_adder(6u);
  const auto mapped = cut::lut_map(aig, 4u);
  std::stringstream ss;
  io::write_blif(mapped.klut, ss);
  const auto reread = io::read_blif(ss);
  ASSERT_EQ(reread.num_pis(), mapped.klut.num_pis());
  ASSERT_EQ(reread.num_pos(), mapped.klut.num_pos());
  const auto patterns = sim::pattern_set::random(aig.num_pis(), 512u, 3u);
  const auto sa = sim::simulate_klut_bitwise(mapped.klut, patterns);
  const auto sb = sim::simulate_klut_bitwise(reread, patterns);
  for (uint32_t i = 0; i < mapped.klut.num_pos(); ++i) {
    EXPECT_EQ(sa[mapped.klut.po_at(i)], sb[reread.po_at(i)]) << "PO " << i;
  }
}

TEST(Blif, ReadsDontCaresAndOffsets)
{
  // f = a XOR b via ON-set with no don't-cares; g = NOT(a AND b) via
  // OFF-set rows; h uses a dash.
  std::stringstream ss{
      ".model t\n.inputs a b\n.outputs f g h\n"
      ".names a b f\n10 1\n01 1\n"
      ".names a b g\n11 0\n"
      ".names a b h\n1- 1\n"
      ".end\n"};
  const auto klut = io::read_blif(ss);
  ASSERT_EQ(klut.num_pos(), 3u);
  const auto patterns = sim::pattern_set::exhaustive(2u);
  const auto sig = sim::simulate_klut_bitwise(klut, patterns);
  EXPECT_EQ(sig[klut.po_at(0)][0], 0x6u); // xor
  EXPECT_EQ(sig[klut.po_at(1)][0], 0x7u); // nand
  EXPECT_EQ(sig[klut.po_at(2)][0], 0xau); // a
}

TEST(Blif, RejectsMalformedInput)
{
  std::stringstream undefined{
      ".model t\n.inputs a\n.outputs f\n.names missing f\n1 1\n.end\n"};
  EXPECT_THROW(io::read_blif(undefined), std::runtime_error);
  std::stringstream mixed{
      ".model t\n.inputs a b\n.outputs f\n"
      ".names a b f\n11 1\n00 0\n.end\n"};
  EXPECT_THROW(io::read_blif(mixed), std::runtime_error);
}

TEST(Blif, RejectsDuplicateDefinitions)
{
  // A signal with two drivers must not silently take the second one.
  std::stringstream twice{
      ".model t\n.inputs a b\n.outputs f\n"
      ".names a f\n1 1\n"
      ".names b f\n1 1\n.end\n"};
  EXPECT_THROW(io::read_blif(twice), std::runtime_error);
  // ... including a .names that overwrites a declared input.
  std::stringstream drives_pi{
      ".model t\n.inputs a b\n.outputs f\n"
      ".names b a\n1 1\n"
      ".names a f\n1 1\n.end\n"};
  EXPECT_THROW(io::read_blif(drives_pi), std::runtime_error);
  std::stringstream dup_input{
      ".model t\n.inputs a a\n.outputs f\n.names a f\n1 1\n.end\n"};
  EXPECT_THROW(io::read_blif(dup_input), std::runtime_error);
}

TEST(Blif, RejectsTruncatedAndOutOfRangeCovers)
{
  // Truncated cover line: the input column is shorter than the fanin
  // list (a classic cut-off file).
  std::stringstream truncated{
      ".model t\n.inputs a b c\n.outputs f\n"
      ".names a b c f\n10 1\n.end\n"};
  EXPECT_THROW(io::read_blif(truncated), std::runtime_error);
  // Cover row whose output column is not a literal 0/1 (e.g. the line
  // lost its value and the next row's inputs slid into its place).
  std::stringstream bad_value{
      ".model t\n.inputs a b\n.outputs f\n"
      ".names a b f\n11 x\n.end\n"};
  EXPECT_THROW(io::read_blif(bad_value), std::runtime_error);
  std::stringstream missing_value{
      ".model t\n.inputs a b\n.outputs f\n"
      ".names a b f\n11\n.end\n"};
  EXPECT_THROW(io::read_blif(missing_value), std::runtime_error);
  // Bad cover character inside the input columns.
  std::stringstream bad_char{
      ".model t\n.inputs a b\n.outputs f\n"
      ".names a b f\n1z 1\n.end\n"};
  EXPECT_THROW(io::read_blif(bad_char), std::runtime_error);
}

TEST(Blif, RejectsAbsurdFaninCounts)
{
  // A .names with more fanins than any sane cover must fail before the
  // reader sizes a 2^k-bit table for it.
  std::string header = ".model t\n.inputs";
  std::string names = "\n.names";
  for (int i = 0; i < 40; ++i) {
    header += " i" + std::to_string(i);
    names += " i" + std::to_string(i);
  }
  names += " f\n";
  std::stringstream wide{header + "\n.outputs f" + names +
                         std::string(40u, '1') + " 1\n.end\n"};
  EXPECT_THROW(io::read_blif(wide), std::runtime_error);
}

TEST(Bench, ContainsGateLines)
{
  const auto aig = gen::make_max(4u);
  std::stringstream ss;
  io::write_bench(aig, ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find("INPUT(I1)"), std::string::npos);
  EXPECT_NE(text.find("OUTPUT(O0)"), std::string::npos);
  EXPECT_NE(text.find(" = AND("), std::string::npos);
  EXPECT_NE(text.find(" = BUFF("), std::string::npos);
}

// ---- Round trips: parse(write(parse(write(N)))) is equivalent to N ------
// on generated networks of every family each format ships.

TEST(Bench, RoundTripGeneratedNetworks)
{
  const net::aig_network networks[] = {
      gen::make_adder(8u),
      gen::make_max(6u),
      gen::make_random_logic({9u, 7u, 300u, 0xbe7c4u, 30u}),
  };
  for (const net::aig_network& original : networks) {
    std::stringstream ss;
    io::write_bench(original, ss);
    const auto reread = io::read_bench(ss);
    expect_equivalent(original, reread);
    // Second trip is stable (writer handles reader-built networks).
    std::stringstream ss2;
    io::write_bench(reread, ss2);
    const auto reread2 = io::read_bench(ss2);
    ASSERT_EQ(reread2.num_gates(), reread.num_gates());
    expect_equivalent(original, reread2);
  }
}

TEST(Bench, ReadsWideGatesCommentsAndAnyOrder)
{
  // Definitions out of order, arity-3 gates of every type, comments,
  // and the conventional undriven GND/VDD rails.
  std::stringstream ss{
      "# header comment\n"
      "INPUT(a)\nINPUT(b)\nINPUT(c)\n"
      "OUTPUT(y)\nOUTPUT(z)\nOUTPUT(w)\n"
      "y = AND(t1, t2)   # uses signals defined below\n"
      "t1 = OR(a, b, c)\n"
      "t2 = NAND(a, b, c)\n"
      "z = XNOR(a, b, c)\n"
      "w = NOR(t3, GND, VDD)\n"
      "t3 = XOR(a, b)\n"
      "unused = AND(a, b, c)  # valid dead logic is fine, and dropped\n"};
  const auto aig = io::read_bench(ss);
  ASSERT_EQ(aig.num_pis(), 3u);
  ASSERT_EQ(aig.num_pos(), 3u);
  const auto patterns = sim::pattern_set::exhaustive(3u);
  const auto sig = sim::simulate_aig(aig, patterns);
  const auto po_bits = [&](uint32_t i) {
    const auto f = aig.po_at(i);
    const uint64_t v = sig[f.get_node()][0];
    return (f.is_complemented() ? ~v : v) & 0xffu;
  };
  // y = (a|b|c) & ~(a&b&c); z = ~(a^b^c); w = ~((a^b) | 0 | 1) = 0.
  EXPECT_EQ(po_bits(0u), 0x7eu);
  EXPECT_EQ(po_bits(1u), 0x69u);
  EXPECT_EQ(po_bits(2u), 0x00u);
}

TEST(Bench, RejectsMalformedInput)
{
  const char* const cases[] = {
      "",                                            // empty file
      "INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n",     // unknown gate type
      "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n",    // undefined signal
      "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n", // redefinition
      "INPUT(a)\nOUTPUT(y)\na = NOT(a)\n",           // driven input
      "INPUT(a)\nOUTPUT(y)\ny = NOT(a, a)\n",        // NOT arity
      "INPUT(a)\nOUTPUT(y)\ny = AND(a)\n",           // AND arity
      "INPUT(a)\nOUTPUT(y)\ny = AND(x, z)\nx = NOT(z)\nz = NOT(x)\n", // cycle
      // Damage in logic no OUTPUT reaches must still throw.
      "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\nt = MAJ(a, a, a)\n",
      "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\nu = AND(ghost, a)\n",
      "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\np = NOT(q)\nq = NOT(p)\n",
      "INPUT(a)\nOUTPUT(y)\ny = AND(a,)\n",          // empty argument
      "INPUT(a)\nOUTPUT(y)\ny = AND a, a\n",         // missing parens
      "WIRE(a)\n",                                   // unknown declaration
      "INPUT(a, b)\n",                               // declaration arity
      // Garbage operand lists and names the old splitter let through:
      // they silently became (mis-)wired signals instead of errors.
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b) junk\n", // text after ')'
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b,)\n",     // dangling comma
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a,, b)\n",     // doubled comma
      "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\nbad name = NOT(a)\n", // space in name
      "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\nt(0) = NOT(a)\n",    // parens in name
      "INPUT(a)\nOUTPUT(y)\ny = z = NOT(a)\n",               // doubled '='
      "INPUT(a)\nOUTPUT(y)\ny = AND(OR(a, a), a)\n",         // nested call
      "INPUT(a)\nOUTPUT(y)\ny = 2 NOT(a)\n",                 // garbage op
  };
  for (const char* const text : cases) {
    std::stringstream ss{text};
    EXPECT_THROW(io::read_bench(ss), std::runtime_error) << text;
  }
  EXPECT_THROW(io::read_bench(std::string{"/nonexistent/file.bench"}),
               std::runtime_error);
}

TEST(Aiger, RoundTripGeneratedNetworksBothFlavours)
{
  const net::aig_network networks[] = {
      gen::make_multiplier(6u),
      gen::make_random_logic({13u, 9u, 420u, 0xa13e5u, 40u}),
  };
  for (const net::aig_network& original : networks) {
    for (const bool binary : {false, true}) {
      std::stringstream ss;
      if (binary) {
        io::write_aiger_binary(original, ss);
      } else {
        io::write_aiger_ascii(original, ss);
      }
      const auto reread = io::read_aiger(ss);
      ASSERT_EQ(reread.num_gates(), original.num_gates());
      expect_equivalent(original, reread);
    }
  }
}

TEST(Aiger, RejectsMalformedStructure)
{
  const char* const cases[] = {
      "aag 1 2 0 1 1\n2\n4\n6\n6 2 4\n",  // M smaller than I+A
      "aag 3 2 0 1 1\n2\n4\n9\n6 2 4\n",  // PO literal out of range
      "aag 3 2 0 1 1\n2\n4\n6\n6 2 99\n", // AND fanin out of range
      "aag 3 2 0 1 1\n3\n4\n6\n6 2 4\n",  // complemented input literal
      "aig 3 2 0 1 1\n6\n",               // truncated binary section
      "aag 3 2 0 1 1\n2\n4\n6\n6 2\n",    // truncated AND line
      "aag 2 1 0 1 0\n0\n2\n",            // input defined as constant
      "aig 3 2 0 1 1\nxyz\n",             // garbage output literal
      "aig 0 18446744073709551615 1 0 0\n", // header count sum wraps uint64
      "aag 3 1 0 1 2\n2\n6\n4 6 2\n6 2 2\n", // AND forward reference
  };
  for (const char* const text : cases) {
    std::stringstream ss{text};
    EXPECT_THROW(io::read_aiger(ss), std::runtime_error) << text;
  }
  // Binary deltas that cannot fit in 32 bits must be parse errors, not
  // oversized shifts (6 continuation bytes) or silent truncation (high
  // bits in the 5th byte: 2^32 would decode as 0, i.e. self-reference).
  for (const std::string delta :
       {std::string(6u, '\xff'), std::string{"\x80\x80\x80\x80\x10"},
        std::string{"\x00\x00", 2u}}) { // delta0 = 0: AND reads itself
    std::stringstream ss{std::string{"aig 3 2 0 1 1\n6\n"} + delta};
    EXPECT_THROW(io::read_aiger(ss), std::runtime_error);
  }
}

TEST(Blif, RoundTripGeneratedKluts)
{
  for (const uint32_t k : {2u, 4u, 6u}) {
    const auto aig = gen::make_random_logic({8u, 6u, 260u, 0xb11fu + k, 20u});
    const auto mapped = cut::lut_map(aig, k);
    std::stringstream ss;
    io::write_blif(mapped.klut, ss);
    const auto reread = io::read_blif(ss);
    ASSERT_EQ(reread.num_pis(), mapped.klut.num_pis());
    ASSERT_EQ(reread.num_pos(), mapped.klut.num_pos());
    const auto patterns = sim::pattern_set::exhaustive(8u);
    const auto sa = sim::simulate_klut_bitwise(mapped.klut, patterns);
    const auto sb = sim::simulate_klut_bitwise(reread, patterns);
    for (uint32_t i = 0; i < mapped.klut.num_pos(); ++i) {
      for (std::size_t w = 0; w < patterns.num_words(); ++w) {
        ASSERT_EQ(sa[mapped.klut.po_at(i)][w], sb[reread.po_at(i)][w])
            << "PO " << i << " word " << w << " k " << k;
      }
    }
  }
}

} // namespace
