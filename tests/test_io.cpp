#include "cut/lut_mapper.hpp"
#include "gen/arithmetic.hpp"
#include "gen/random_logic.hpp"
#include "io/aiger.hpp"
#include "io/bench.hpp"
#include "io/blif.hpp"
#include "sim/bitwise_sim.hpp"
#include "sweep/cec.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace stps;

void expect_equivalent(const net::aig_network& a, const net::aig_network& b)
{
  ASSERT_EQ(a.num_pis(), b.num_pis());
  ASSERT_EQ(a.num_pos(), b.num_pos());
  EXPECT_TRUE(sweep::check_equivalence(a, b).equivalent);
}

TEST(Aiger, AsciiRoundTrip)
{
  const auto original = gen::make_adder(12u);
  std::stringstream ss;
  io::write_aiger_ascii(original, ss);
  const auto reread = io::read_aiger(ss);
  EXPECT_EQ(reread.num_gates(), original.num_gates());
  expect_equivalent(original, reread);
}

TEST(Aiger, BinaryRoundTrip)
{
  const auto original = gen::make_random_logic({14u, 9u, 500u, 8u, 25u});
  std::stringstream ss;
  io::write_aiger_binary(original, ss);
  const auto reread = io::read_aiger(ss);
  EXPECT_EQ(reread.num_gates(), original.num_gates());
  expect_equivalent(original, reread);
}

TEST(Aiger, RoundTripAfterSubstitutionCompacts)
{
  // Dead nodes must not leak into the file.
  auto aig = gen::make_adder(6u);
  const auto order_gate = [&]() {
    net::node last = 0;
    aig.foreach_gate([&](net::node n) { last = n; });
    return last;
  }();
  (void)order_gate;
  aig.cleanup_dangling();
  std::stringstream ss;
  io::write_aiger_ascii(aig, ss);
  const auto reread = io::read_aiger(ss);
  expect_equivalent(aig, reread);
}

TEST(Aiger, AsciiHeaderParsing)
{
  std::stringstream ss{"aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n"};
  const auto aig = io::read_aiger(ss);
  EXPECT_EQ(aig.num_pis(), 2u);
  EXPECT_EQ(aig.num_pos(), 1u);
  EXPECT_EQ(aig.num_gates(), 1u);
  // The single AND drives the PO.
  const auto f = aig.po_at(0);
  EXPECT_FALSE(f.is_complemented());
  EXPECT_TRUE(aig.is_and(f.get_node()));
}

TEST(Aiger, RejectsGarbage)
{
  std::stringstream ss{"not_aiger 1 2 3\n"};
  EXPECT_THROW(io::read_aiger(ss), std::runtime_error);
  EXPECT_THROW(io::read_aiger(std::string{"/nonexistent/file.aig"}),
               std::runtime_error);
}

TEST(Blif, ContainsModelAndCovers)
{
  const auto aig = gen::make_adder(4u);
  const auto mapped = cut::lut_map(aig, 4u);
  std::stringstream ss;
  io::write_blif(mapped.klut, ss, "adder4");
  const std::string text = ss.str();
  EXPECT_NE(text.find(".model adder4"), std::string::npos);
  EXPECT_NE(text.find(".inputs"), std::string::npos);
  EXPECT_NE(text.find(".outputs"), std::string::npos);
  EXPECT_NE(text.find(".names"), std::string::npos);
  EXPECT_NE(text.find(".end"), std::string::npos);
  // One .names block per gate + 2 constants + one buffer per PO.
  std::size_t names = 0;
  for (std::size_t pos = text.find(".names"); pos != std::string::npos;
       pos = text.find(".names", pos + 1u)) {
    ++names;
  }
  EXPECT_EQ(names, mapped.klut.num_gates() + 2u + mapped.klut.num_pos());
}

TEST(Blif, RoundTripThroughReader)
{
  const auto aig = gen::make_adder(6u);
  const auto mapped = cut::lut_map(aig, 4u);
  std::stringstream ss;
  io::write_blif(mapped.klut, ss);
  const auto reread = io::read_blif(ss);
  ASSERT_EQ(reread.num_pis(), mapped.klut.num_pis());
  ASSERT_EQ(reread.num_pos(), mapped.klut.num_pos());
  const auto patterns = sim::pattern_set::random(aig.num_pis(), 512u, 3u);
  const auto sa = sim::simulate_klut_bitwise(mapped.klut, patterns);
  const auto sb = sim::simulate_klut_bitwise(reread, patterns);
  for (uint32_t i = 0; i < mapped.klut.num_pos(); ++i) {
    EXPECT_EQ(sa[mapped.klut.po_at(i)], sb[reread.po_at(i)]) << "PO " << i;
  }
}

TEST(Blif, ReadsDontCaresAndOffsets)
{
  // f = a XOR b via ON-set with no don't-cares; g = NOT(a AND b) via
  // OFF-set rows; h uses a dash.
  std::stringstream ss{
      ".model t\n.inputs a b\n.outputs f g h\n"
      ".names a b f\n10 1\n01 1\n"
      ".names a b g\n11 0\n"
      ".names a b h\n1- 1\n"
      ".end\n"};
  const auto klut = io::read_blif(ss);
  ASSERT_EQ(klut.num_pos(), 3u);
  const auto patterns = sim::pattern_set::exhaustive(2u);
  const auto sig = sim::simulate_klut_bitwise(klut, patterns);
  EXPECT_EQ(sig[klut.po_at(0)][0], 0x6u); // xor
  EXPECT_EQ(sig[klut.po_at(1)][0], 0x7u); // nand
  EXPECT_EQ(sig[klut.po_at(2)][0], 0xau); // a
}

TEST(Blif, RejectsMalformedInput)
{
  std::stringstream undefined{
      ".model t\n.inputs a\n.outputs f\n.names missing f\n1 1\n.end\n"};
  EXPECT_THROW(io::read_blif(undefined), std::runtime_error);
  std::stringstream mixed{
      ".model t\n.inputs a b\n.outputs f\n"
      ".names a b f\n11 1\n00 0\n.end\n"};
  EXPECT_THROW(io::read_blif(mixed), std::runtime_error);
}

TEST(Bench, ContainsGateLines)
{
  const auto aig = gen::make_max(4u);
  std::stringstream ss;
  io::write_bench(aig, ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find("INPUT(I1)"), std::string::npos);
  EXPECT_NE(text.find("OUTPUT(O0)"), std::string::npos);
  EXPECT_NE(text.find(" = AND("), std::string::npos);
  EXPECT_NE(text.find(" = BUFF("), std::string::npos);
}

} // namespace
