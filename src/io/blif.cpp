#include "io/blif.hpp"

#include "network/convert.hpp"

#include "tt/operations.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

namespace stps::io {

namespace {

using knode = net::klut_network::node;

std::string node_name(const net::klut_network& klut, knode n)
{
  if (n == klut.get_constant(false)) {
    return "const0";
  }
  if (n == klut.get_constant(true)) {
    return "const1";
  }
  if (klut.is_pi(n)) {
    return "pi" + std::to_string(n - 2u);
  }
  return "n" + std::to_string(n);
}

} // namespace

void write_blif(const net::klut_network& klut, std::ostream& os,
                const std::string& model_name)
{
  os << ".model " << model_name << '\n';
  os << ".inputs";
  klut.foreach_pi([&](knode n) { os << ' ' << node_name(klut, n); });
  os << '\n';
  os << ".outputs";
  klut.foreach_po([&](knode, uint32_t index) { os << " po" << index; });
  os << '\n';

  // Constants (only if referenced).
  os << ".names const0\n"; // empty cover = constant 0
  os << ".names const1\n1\n";

  klut.foreach_gate([&](knode n) {
    os << ".names";
    for (const knode f : klut.fanins(n)) {
      os << ' ' << node_name(klut, f);
    }
    os << ' ' << node_name(klut, n) << '\n';
    const auto& table = klut.table(n);
    const uint32_t k = table.num_vars();
    for (uint64_t row = 0; row < table.num_bits(); ++row) {
      if (!table.bit(row)) {
        continue;
      }
      for (uint32_t b = 0; b < k; ++b) {
        os << (((row >> b) & 1u) ? '1' : '0');
      }
      os << " 1\n";
    }
  });

  klut.foreach_po([&](knode n, uint32_t index) {
    // Buffer from the driver to the named output.
    os << ".names " << node_name(klut, n) << " po" << index << "\n1 1\n";
  });
  os << ".end\n";
}

void write_blif(const net::klut_network& klut, const std::string& path,
                const std::string& model_name)
{
  std::ofstream os{path};
  if (!os) {
    throw std::runtime_error{"cannot open " + path};
  }
  write_blif(klut, os, model_name);
}

void write_blif(const net::aig_network& aig, std::ostream& os,
                const std::string& model_name)
{
  write_blif(net::aig_to_klut(aig).klut, os, model_name);
}

} // namespace stps::io

namespace {

using stps::net::klut_network;

/// Splits a BLIF logical line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& line)
{
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    tokens.push_back(std::move(current));
  }
  return tokens;
}

/// Expands one cover row (possibly with '-') into the truth table.
void apply_cover_row(stps::tt::truth_table& table, const std::string& row,
                     bool value)
{
  const uint32_t k = table.num_vars();
  if (row.size() != k) {
    throw std::runtime_error{"blif: cover row arity mismatch"};
  }
  // Enumerate all completions of the don't-care positions.
  std::vector<uint32_t> dashes;
  uint64_t base = 0;
  for (uint32_t i = 0; i < k; ++i) {
    switch (row[i]) {
      case '1': base |= uint64_t{1} << i; break;
      case '0': break;
      case '-': dashes.push_back(i); break;
      default: throw std::runtime_error{"blif: bad cover character"};
    }
  }
  const uint64_t combos = uint64_t{1} << dashes.size();
  for (uint64_t d = 0; d < combos; ++d) {
    uint64_t index = base;
    for (std::size_t j = 0; j < dashes.size(); ++j) {
      if ((d >> j) & 1u) {
        index |= uint64_t{1} << dashes[j];
      }
    }
    table.set_bit(index, value);
  }
}

} // namespace

namespace stps::io {

net::klut_network read_blif(std::istream& is)
{
  klut_network klut;
  std::unordered_map<std::string, klut_network::node> by_name;
  std::vector<std::string> output_names;

  // Pending .names block, flushed when the next directive arrives.
  std::vector<std::string> names_header;
  std::vector<std::pair<std::string, bool>> cover_rows;

  // Wider covers would allocate 2^k-bit tables (and enumerate up to 2^k
  // don't-care completions) before any semantic check could reject the
  // file — malformed input must fail cheaply.  24 fanins (a 2 MiB
  // table) is far beyond any cover this library writes or any sane
  // hand-written one, while a corrupted fanin list still dies before
  // the allocation.
  constexpr uint32_t max_names_fanins = 24;

  const auto flush_names = [&]() {
    if (names_header.empty()) {
      return;
    }
    const std::string& target = names_header.back();
    if (by_name.count(target) != 0u) {
      throw std::runtime_error{"blif: duplicate definition of " + target};
    }
    const uint32_t k = static_cast<uint32_t>(names_header.size() - 1u);
    if (k > max_names_fanins) {
      throw std::runtime_error{"blif: too many fanins on " + target};
    }
    tt::truth_table table{k};
    // Determine polarity: all rows must agree (ON-set or OFF-set).
    bool off_set = false;
    if (!cover_rows.empty()) {
      off_set = !cover_rows.front().second;
      for (const auto& [row, value] : cover_rows) {
        if (value == off_set) {
          throw std::runtime_error{"blif: mixed ON/OFF cover"};
        }
      }
    }
    if (off_set) {
      table = tt::make_const1(k);
    }
    for (const auto& [row, value] : cover_rows) {
      apply_cover_row(table, row, value);
    }
    std::vector<klut_network::node> fanins;
    for (std::size_t i = 0; i + 1u < names_header.size(); ++i) {
      const auto it = by_name.find(names_header[i]);
      if (it == by_name.end()) {
        throw std::runtime_error{"blif: undefined signal " +
                                 names_header[i]};
      }
      fanins.push_back(it->second);
    }
    by_name[target] = k == 0u
                          ? klut.get_constant(table.bit(0u))
                          : klut.create_node(fanins, std::move(table));
    names_header.clear();
    cover_rows.clear();
  };

  std::string line;
  std::string pending;
  while (std::getline(is, line)) {
    // Continuation lines.
    if (!line.empty() && line.back() == '\\') {
      pending += line.substr(0, line.size() - 1u) + " ";
      continue;
    }
    line = pending + line;
    pending.clear();
    const auto tokens = tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') {
      continue;
    }
    if (tokens[0] == ".model") {
      continue;
    }
    if (tokens[0] == ".inputs") {
      flush_names();
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (by_name.count(tokens[i]) != 0u) {
          throw std::runtime_error{"blif: input " + tokens[i] +
                                   " redeclared"};
        }
        by_name[tokens[i]] = klut.create_pi(tokens[i]);
      }
      continue;
    }
    if (tokens[0] == ".outputs") {
      flush_names();
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        output_names.push_back(tokens[i]);
      }
      continue;
    }
    if (tokens[0] == ".names") {
      flush_names();
      names_header.assign(tokens.begin() + 1, tokens.end());
      if (names_header.empty()) {
        throw std::runtime_error{"blif: .names without target"};
      }
      continue;
    }
    if (tokens[0] == ".end") {
      break;
    }
    if (tokens[0][0] == '.') {
      throw std::runtime_error{"blif: unsupported directive " + tokens[0]};
    }
    // Cover row: "<inputs> <value>" or a bare value for constants.  The
    // output value must be a literal 0 or 1 — anything else (including
    // a truncated line whose value column went missing) is malformed.
    if (names_header.empty()) {
      throw std::runtime_error{"blif: cover row outside .names"};
    }
    const std::string& value = tokens.back();
    if (value != "0" && value != "1") {
      throw std::runtime_error{"blif: bad cover output value '" + value +
                               "'"};
    }
    if (tokens.size() == 1u) {
      cover_rows.emplace_back(std::string{}, value == "1");
    } else if (tokens.size() == 2u) {
      cover_rows.emplace_back(tokens[0], value == "1");
    } else {
      throw std::runtime_error{"blif: malformed cover row"};
    }
  }
  flush_names();

  for (const std::string& name : output_names) {
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw std::runtime_error{"blif: undriven output " + name};
    }
    klut.create_po(it->second, name);
  }
  return klut;
}

net::klut_network read_blif(const std::string& path)
{
  std::ifstream is{path};
  if (!is) {
    throw std::runtime_error{"cannot open " + path};
  }
  return read_blif(is);
}

} // namespace stps::io
