/// \file bench.hpp
/// \brief BENCH (ISCAS) reader/writer for AIGs.
///
/// BENCH is the minimal gate-list format many academic tools accept;
/// every AND gate becomes `n = AND(a, b)` with explicit `NOT` lines for
/// complemented edges.  The reader accepts the writer's vocabulary plus
/// the common ISCAS gate set (AND/OR/NAND/NOR/XOR/XNOR of any arity ≥ 2,
/// NOT/BUFF of arity 1) and arbitrary definition order; unknown gate
/// types, undefined signals, and redefinitions throw std::runtime_error.
#pragma once

#include "network/aig.hpp"

#include <iosfwd>
#include <string>

namespace stps::io {

void write_bench(const net::aig_network& aig, std::ostream& os);
void write_bench(const net::aig_network& aig, const std::string& path);

/// Parses a BENCH gate list into an AIG (wide gates become balanced
/// AND/OR trees; XOR/XNOR become the usual 3-AND cones).
net::aig_network read_bench(std::istream& is);
net::aig_network read_bench(const std::string& path);

} // namespace stps::io
