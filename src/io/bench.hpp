/// \file bench.hpp
/// \brief BENCH (ISCAS) writer for AIGs.
///
/// BENCH is the minimal gate-list format many academic tools accept;
/// every AND gate becomes `n = AND(a, b)` with explicit `NOT` lines for
/// complemented edges.
#pragma once

#include "network/aig.hpp"

#include <iosfwd>
#include <string>

namespace stps::io {

void write_bench(const net::aig_network& aig, std::ostream& os);
void write_bench(const net::aig_network& aig, const std::string& path);

} // namespace stps::io
