#include "io/bench.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace stps::io {

namespace {

std::string node_ref(const net::aig_network& aig, net::node n)
{
  if (aig.is_constant(n)) {
    return "GND";
  }
  if (aig.is_pi(n)) {
    return "I" + std::to_string(n);
  }
  return "G" + std::to_string(n);
}

} // namespace

void write_bench(const net::aig_network& aig, std::ostream& os)
{
  aig.foreach_pi([&](net::node n) {
    os << "INPUT(" << node_ref(aig, n) << ")\n";
  });
  aig.foreach_po([&](net::signal, uint32_t index) {
    os << "OUTPUT(O" << index << ")\n";
  });

  // Constant nets (BENCH has no literals; synthesize GND from any input,
  // or leave it dangling for input-free netlists — tools treat undriven
  // GND as 0).
  if (aig.num_pis() > 0u) {
    const std::string i0 = node_ref(aig, aig.pi_at(0u));
    os << "GND_INV = NOT(" << i0 << ")\n";
    os << "GND = AND(" << i0 << ", GND_INV)\n";
  }

  // Inverters on demand, once per complemented node reference.
  std::unordered_map<uint32_t, std::string> inverted;
  const auto ref = [&](net::signal f) -> std::string {
    const std::string base = node_ref(aig, f.get_node());
    if (!f.is_complemented()) {
      return base;
    }
    auto [it, inserted] = inverted.emplace(f.get_node(), base + "_n");
    if (inserted) {
      os << it->second << " = NOT(" << base << ")\n";
    }
    return it->second;
  };

  aig.foreach_gate([&](net::node n) {
    // Resolve both references *before* streaming the gate line: ref()
    // may itself emit a NOT line, which must precede this one, not be
    // spliced into the middle of it.
    const std::string a = ref(aig.fanin0(n));
    const std::string b = ref(aig.fanin1(n));
    os << node_ref(aig, n) << " = AND(" << a << ", " << b << ")\n";
  });
  aig.foreach_po([&](net::signal f, uint32_t index) {
    const std::string driver = ref(f);
    os << "O" << index << " = BUFF(" << driver << ")\n";
  });
}

void write_bench(const net::aig_network& aig, const std::string& path)
{
  std::ofstream os{path};
  if (!os) {
    throw std::runtime_error{"cannot open " + path};
  }
  write_bench(aig, os);
}

namespace {

struct bench_def
{
  std::string op;
  std::vector<std::string> args;
};

[[noreturn]] void fail(std::size_t line, const std::string& what)
{
  throw std::runtime_error{"read_bench: line " + std::to_string(line) +
                           ": " + what};
}

std::string strip(const std::string& s)
{
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1u]))) {
    --e;
  }
  return s.substr(b, e - b);
}

/// A usable signal or gate-type name: nonempty, free of the characters
/// the grammar itself uses.  Names with embedded parentheses, commas,
/// '=' or whitespace are always the shrapnel of a malformed line (e.g.
/// a nested call, a doubled '=', or two tokens run together) — accepting
/// them would wire the netlist to signals that can never be defined.
bool valid_name(const std::string& name)
{
  if (name.empty()) {
    return false;
  }
  for (const char c : name) {
    if (c == '(' || c == ')' || c == ',' || c == '=' || c == '#' ||
        std::isspace(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

/// Splits `OP(a, b, ...)` into op + argument names.  Rejects garbage
/// operand lists *here*, before any of the names reach the definition
/// table: trailing text after the ')', dangling or doubled commas, and
/// operands that are not plain names (the old splitter silently dropped
/// a trailing comma and anything after the close paren).
bench_def parse_call(const std::string& rhs, std::size_t line)
{
  const std::size_t open = rhs.find('(');
  const std::size_t close = rhs.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    fail(line, "expected OP(args): '" + rhs + "'");
  }
  if (!strip(rhs.substr(close + 1u)).empty()) {
    fail(line, "trailing garbage after ')': '" + rhs + "'");
  }
  bench_def def;
  def.op = strip(rhs.substr(0, open));
  if (!valid_name(def.op)) {
    fail(line, "missing or malformed gate type in '" + rhs + "'");
  }
  const std::string args = rhs.substr(open + 1u, close - open - 1u);
  if (!strip(args).empty()) {
    std::size_t begin = 0;
    for (;;) {
      const std::size_t comma = args.find(',', begin);
      const std::string arg =
          strip(comma == std::string::npos
                    ? args.substr(begin)
                    : args.substr(begin, comma - begin));
      if (!valid_name(arg)) {
        fail(line, "empty or malformed argument in '" + rhs + "'");
      }
      def.args.push_back(arg);
      if (comma == std::string::npos) {
        break;
      }
      begin = comma + 1u;
    }
  }
  return def;
}

} // namespace

net::aig_network read_bench(std::istream& is)
{
  std::vector<std::string> inputs;
  std::vector<std::pair<std::string, std::size_t>> outputs;
  std::unordered_map<std::string, std::pair<bench_def, std::size_t>> defs;

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(is, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    const std::string line =
        strip(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) {
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      const bench_def decl = parse_call(line, line_no);
      if (decl.args.size() != 1u) {
        fail(line_no, decl.op + " takes exactly one signal");
      }
      if (decl.op == "INPUT") {
        inputs.push_back(decl.args.front());
      } else if (decl.op == "OUTPUT") {
        outputs.emplace_back(decl.args.front(), line_no);
      } else {
        fail(line_no, "unknown declaration " + decl.op);
      }
      continue;
    }
    const std::string name = strip(line.substr(0, eq));
    if (!valid_name(name)) {
      fail(line_no, "missing or malformed signal name");
    }
    const bench_def def = parse_call(line.substr(eq + 1u), line_no);
    if (!defs.emplace(name, std::make_pair(def, line_no)).second) {
      fail(line_no, "signal " + name + " redefined");
    }
  }
  if (inputs.empty() && outputs.empty() && defs.empty()) {
    throw std::runtime_error{"read_bench: no BENCH content found"};
  }

  net::aig_network aig;
  std::unordered_map<std::string, net::signal> sig_of;
  for (const std::string& name : inputs) {
    if (!sig_of.emplace(name, aig.create_pi(name)).second) {
      throw std::runtime_error{"read_bench: input " + name + " redeclared"};
    }
    if (defs.count(name) != 0u) {
      throw std::runtime_error{"read_bench: input " + name + " is driven"};
    }
  }

  // Definitions may appear in any order: resolve by DFS over the name
  // graph (explicit stack; files can be thousands of levels deep).
  enum class state : uint8_t { open, visiting, done };
  std::unordered_map<std::string, state> marks;
  const auto resolve = [&](const std::string& root,
                           std::size_t use_line) -> net::signal {
    std::vector<std::string> stack{root};
    while (!stack.empty()) {
      const std::string name = stack.back();
      if (sig_of.count(name) != 0u) {
        stack.pop_back();
        continue;
      }
      const auto it = defs.find(name);
      if (it == defs.end()) {
        // Undriven rails: BENCH files conventionally leave GND/VDD
        // dangling (the writer does for input-free netlists).
        if (name == "GND" || name == "gnd") {
          sig_of.emplace(name, aig.get_constant(false));
          stack.pop_back();
          continue;
        }
        if (name == "VDD" || name == "vdd") {
          sig_of.emplace(name, aig.get_constant(true));
          stack.pop_back();
          continue;
        }
        fail(use_line, "signal " + name + " is never defined");
      }
      const bench_def& def = it->second.first;
      const std::size_t def_line = it->second.second;
      state& mark = marks[name];
      if (mark == state::open) {
        mark = state::visiting;
        for (const std::string& arg : def.args) {
          if (sig_of.count(arg) == 0u) {
            if (marks[arg] == state::visiting) {
              fail(def_line, "combinational cycle through " + arg);
            }
            stack.push_back(arg);
          }
        }
        continue; // revisit once the fanins resolved
      }
      std::vector<net::signal> fanins;
      fanins.reserve(def.args.size());
      for (const std::string& arg : def.args) {
        fanins.push_back(sig_of.at(arg));
      }
      net::signal out;
      if (def.op == "NOT" || def.op == "BUFF" || def.op == "BUF") {
        if (fanins.size() != 1u) {
          fail(def_line, def.op + " takes exactly one argument");
        }
        out = def.op == "NOT" ? !fanins.front() : fanins.front();
      } else if (def.op == "AND" || def.op == "NAND" || def.op == "OR" ||
                 def.op == "NOR") {
        if (fanins.size() < 2u) {
          fail(def_line, def.op + " needs at least two arguments");
        }
        const bool is_or = def.op == "OR" || def.op == "NOR";
        net::signal acc = fanins.front();
        for (std::size_t i = 1; i < fanins.size(); ++i) {
          acc = is_or ? aig.create_or(acc, fanins[i])
                      : aig.create_and(acc, fanins[i]);
        }
        const bool invert = def.op == "NAND" || def.op == "NOR";
        out = invert ? !acc : acc;
      } else if (def.op == "XOR" || def.op == "XNOR") {
        if (fanins.size() < 2u) {
          fail(def_line, def.op + " needs at least two arguments");
        }
        net::signal acc = fanins.front();
        for (std::size_t i = 1; i < fanins.size(); ++i) {
          acc = aig.create_xor(acc, fanins[i]);
        }
        out = def.op == "XNOR" ? !acc : acc;
      } else {
        fail(def_line, "unknown gate type " + def.op);
      }
      sig_of.emplace(name, out);
      mark = state::done;
      stack.pop_back();
    }
    return sig_of.at(root);
  };

  for (const auto& [name, line] : outputs) {
    aig.create_po(resolve(name, line), name);
  }
  // Validate logic no OUTPUT reaches too: corrupt gate types, undefined
  // fanins, or cycles must throw wherever they sit in the file.  The
  // dead cones briefly materialize as gates and are dropped again.
  bool dead_logic = false;
  for (const auto& [name, def] : defs) {
    if (sig_of.count(name) == 0u) {
      resolve(name, def.second);
      dead_logic = true;
    }
  }
  if (dead_logic) {
    aig.cleanup_dangling();
  }
  return aig;
}

net::aig_network read_bench(const std::string& path)
{
  std::ifstream is{path};
  if (!is) {
    throw std::runtime_error{"cannot open " + path};
  }
  return read_bench(is);
}

} // namespace stps::io
