#include "io/bench.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

namespace stps::io {

namespace {

std::string node_ref(const net::aig_network& aig, net::node n)
{
  if (aig.is_constant(n)) {
    return "GND";
  }
  if (aig.is_pi(n)) {
    return "I" + std::to_string(n);
  }
  return "G" + std::to_string(n);
}

} // namespace

void write_bench(const net::aig_network& aig, std::ostream& os)
{
  aig.foreach_pi([&](net::node n) {
    os << "INPUT(" << node_ref(aig, n) << ")\n";
  });
  aig.foreach_po([&](net::signal, uint32_t index) {
    os << "OUTPUT(O" << index << ")\n";
  });

  // Constant nets (BENCH has no literals; synthesize GND from any input,
  // or leave it dangling for input-free netlists — tools treat undriven
  // GND as 0).
  if (aig.num_pis() > 0u) {
    const std::string i0 = node_ref(aig, aig.pi_at(0u));
    os << "GND_INV = NOT(" << i0 << ")\n";
    os << "GND = AND(" << i0 << ", GND_INV)\n";
  }

  // Inverters on demand, once per complemented node reference.
  std::unordered_map<uint32_t, std::string> inverted;
  const auto ref = [&](net::signal f) -> std::string {
    const std::string base = node_ref(aig, f.get_node());
    if (!f.is_complemented()) {
      return base;
    }
    auto [it, inserted] = inverted.emplace(f.get_node(), base + "_n");
    if (inserted) {
      os << it->second << " = NOT(" << base << ")\n";
    }
    return it->second;
  };

  aig.foreach_gate([&](net::node n) {
    os << node_ref(aig, n) << " = AND(" << ref(aig.fanin0(n)) << ", "
       << ref(aig.fanin1(n)) << ")\n";
  });
  aig.foreach_po([&](net::signal f, uint32_t index) {
    os << "O" << index << " = BUFF(" << ref(f) << ")\n";
  });
}

void write_bench(const net::aig_network& aig, const std::string& path)
{
  std::ofstream os{path};
  if (!os) {
    throw std::runtime_error{"cannot open " + path};
  }
  write_bench(aig, os);
}

} // namespace stps::io
