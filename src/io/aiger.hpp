/// \file aiger.hpp
/// \brief AIGER format reader/writer (ASCII `aag` and binary `aig`).
///
/// The paper's benchmark suites (HWMCC'15, IWLS'05, EPFL) ship as AIGER
/// files; this module lets the tools exchange circuits with ABC,
/// mockturtle, and the original suites.  Combinational subset: latches
/// are read as additional PIs (their outputs) and their inputs dropped —
/// the standard combinational-frame view SAT sweepers operate on.
#pragma once

#include "network/aig.hpp"

#include <iosfwd>
#include <string>

namespace stps::io {

/// Writes \p aig in ASCII AIGER (aag) format.
void write_aiger_ascii(const net::aig_network& aig, std::ostream& os);
void write_aiger_ascii(const net::aig_network& aig, const std::string& path);

/// Writes \p aig in binary AIGER (aig) format.
void write_aiger_binary(const net::aig_network& aig, std::ostream& os);
void write_aiger_binary(const net::aig_network& aig, const std::string& path);

/// Reads either AIGER flavour (dispatches on the header word).
net::aig_network read_aiger(std::istream& is);
net::aig_network read_aiger(const std::string& path);

} // namespace stps::io
