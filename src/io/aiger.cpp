#include "io/aiger.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace stps::io {

namespace {

/// Compacted AIGER literal map: dead nodes are skipped, so variable
/// indices are dense (1..I for PIs, then gates in topological order).
struct literal_map
{
  std::vector<uint32_t> var_of; // node → aiger variable (0 = const)
  uint32_t num_ands = 0;

  explicit literal_map(const net::aig_network& aig)
      : var_of(aig.size(), 0u)
  {
    uint32_t next = 1;
    aig.foreach_pi([&](net::node n) { var_of[n] = next++; });
    aig.foreach_gate([&](net::node n) {
      var_of[n] = next++;
      ++num_ands;
    });
  }

  uint32_t literal(net::signal f) const
  {
    return 2u * var_of[f.get_node()] + (f.is_complemented() ? 1u : 0u);
  }
};

void encode_delta(std::ostream& os, uint32_t delta)
{
  while (delta >= 0x80u) {
    os.put(static_cast<char>(0x80u | (delta & 0x7fu)));
    delta >>= 7u;
  }
  os.put(static_cast<char>(delta));
}

uint32_t decode_delta(std::istream& is)
{
  uint32_t value = 0;
  uint32_t shift = 0;
  for (;;) {
    const int c = is.get();
    if (c < 0) {
      throw std::runtime_error{"aiger: truncated binary section"};
    }
    const uint32_t chunk = static_cast<uint32_t>(c & 0x7f);
    // Reject payload bits beyond 32 (6th byte, or high bits of the
    // 5th): they would shift out silently and misparse the delta.
    if (shift >= 32u || (shift > 0u && (chunk >> (32u - shift)) != 0u)) {
      throw std::runtime_error{"aiger: delta overflows 32 bits"};
    }
    value |= chunk << shift;
    if ((c & 0x80) == 0) {
      return value;
    }
    shift += 7u;
  }
}

struct header
{
  uint64_t m = 0, i = 0, l = 0, o = 0, a = 0;
  bool binary = false;
};

header read_header(std::istream& is)
{
  std::string magic;
  is >> magic;
  header h;
  if (magic == "aig") {
    h.binary = true;
  } else if (magic != "aag") {
    throw std::runtime_error{"aiger: bad magic '" + magic + "'"};
  }
  if (!(is >> h.m >> h.i >> h.l >> h.o >> h.a)) {
    throw std::runtime_error{"aiger: bad header"};
  }
  is.ignore(1); // the newline after the header
  return h;
}

} // namespace

void write_aiger_ascii(const net::aig_network& aig, std::ostream& os)
{
  const literal_map map{aig};
  const uint32_t m = aig.num_pis() + map.num_ands;
  os << "aag " << m << ' ' << aig.num_pis() << " 0 " << aig.num_pos() << ' '
     << map.num_ands << '\n';
  aig.foreach_pi([&](net::node n) {
    os << map.literal(net::signal{n, false}) << '\n';
  });
  aig.foreach_po([&](net::signal f, uint32_t) {
    os << map.literal(f) << '\n';
  });
  aig.foreach_gate([&](net::node n) {
    os << map.literal(net::signal{n, false}) << ' '
       << map.literal(aig.fanin0(n)) << ' ' << map.literal(aig.fanin1(n))
       << '\n';
  });
}

void write_aiger_binary(const net::aig_network& aig, std::ostream& os)
{
  const literal_map map{aig};
  const uint32_t m = aig.num_pis() + map.num_ands;
  os << "aig " << m << ' ' << aig.num_pis() << " 0 " << aig.num_pos() << ' '
     << map.num_ands << '\n';
  aig.foreach_po([&](net::signal f, uint32_t) {
    os << map.literal(f) << '\n';
  });
  aig.foreach_gate([&](net::node n) {
    const uint32_t lhs = map.literal(net::signal{n, false});
    uint32_t rhs0 = map.literal(aig.fanin0(n));
    uint32_t rhs1 = map.literal(aig.fanin1(n));
    if (rhs0 < rhs1) {
      std::swap(rhs0, rhs1);
    }
    encode_delta(os, lhs - rhs0);
    encode_delta(os, rhs0 - rhs1);
  });
}

net::aig_network read_aiger(std::istream& is)
{
  const header h = read_header(is);
  // Overflow-safe: each count is checked against what remains of m, so
  // huge counts cannot wrap the sum back under m.
  if (h.i > h.m || h.l > h.m - h.i || h.a > h.m - h.i - h.l) {
    throw std::runtime_error{"aiger: header counts exceed maximum index"};
  }
  net::aig_network aig;

  // signal per AIGER variable (latch outputs become PIs).
  std::vector<net::signal> var(h.m + 1u, aig.get_constant(false));
  const auto to_signal = [&](uint64_t lit) {
    if (lit / 2u > h.m) {
      throw std::runtime_error{"aiger: literal out of range"};
    }
    const net::signal s = var[lit / 2u];
    return (lit & 1u) ? !s : s;
  };
  // Definition literals (inputs, latch outputs, AND left-hand sides)
  // index into `var` and must be validated *before* the write — a
  // malformed file must throw, not scribble out of bounds.
  const auto def_index = [&](uint64_t lit, const char* what) {
    if (lit % 2u != 0u) {
      throw std::runtime_error{std::string{"aiger: complemented "} + what};
    }
    if (lit / 2u == 0u || lit / 2u > h.m) {
      throw std::runtime_error{std::string{"aiger: "} + what +
                               " literal out of range"};
    }
    return lit / 2u;
  };
  const auto expect_good = [&]() {
    if (!is) {
      throw std::runtime_error{"aiger: truncated or malformed body"};
    }
  };

  std::vector<uint64_t> output_lits;
  std::vector<std::pair<uint64_t, uint64_t>> latch_defs;

  if (h.binary) {
    for (uint64_t i = 0; i < h.i; ++i) {
      var[1u + i] = aig.create_pi();
    }
    for (uint64_t l = 0; l < h.l; ++l) {
      var[1u + h.i + l] = aig.create_pi(); // latch output as PI
      std::string line;
      std::getline(is, line); // latch next-state literal, ignored
    }
    for (uint64_t o = 0; o < h.o; ++o) {
      std::string line;
      std::getline(is, line);
      expect_good();
      try {
        output_lits.push_back(std::stoull(line));
      } catch (const std::exception&) {
        throw std::runtime_error{"aiger: malformed output literal '" + line +
                                 "'"};
      }
    }
    for (uint64_t a = 0; a < h.a; ++a) {
      const uint64_t lhs = 2u * (1u + h.i + h.l + a);
      const uint64_t delta0 = decode_delta(is);
      const uint64_t delta1 = decode_delta(is);
      if (delta0 == 0u) { // rhs0 == lhs: the gate would read itself
        throw std::runtime_error{"aiger: AND self-reference"};
      }
      const uint64_t rhs0 = lhs - delta0;
      const uint64_t rhs1 = rhs0 - delta1;
      var[lhs / 2u] = aig.create_and(to_signal(rhs0), to_signal(rhs1));
    }
  } else {
    for (uint64_t i = 0; i < h.i; ++i) {
      uint64_t lit = 0;
      is >> lit;
      expect_good();
      var[def_index(lit, "input")] = aig.create_pi();
    }
    for (uint64_t l = 0; l < h.l; ++l) {
      uint64_t lit = 0, next = 0;
      is >> lit >> next;
      expect_good();
      var[def_index(lit, "latch")] = aig.create_pi();
      latch_defs.emplace_back(lit, next);
    }
    for (uint64_t o = 0; o < h.o; ++o) {
      uint64_t lit = 0;
      is >> lit;
      expect_good();
      output_lits.push_back(lit);
    }
    // ASCII AND definitions are topologically sorted (lhs > rhs), so one
    // pass suffices — a forward reference would silently read the
    // default constant-false signal, so it must be rejected.
    for (uint64_t a = 0; a < h.a; ++a) {
      uint64_t lhs = 0, rhs0 = 0, rhs1 = 0;
      is >> lhs >> rhs0 >> rhs1;
      expect_good();
      if (rhs0 / 2u >= lhs / 2u || rhs1 / 2u >= lhs / 2u) {
        throw std::runtime_error{"aiger: AND fanin not in topological order"};
      }
      var[def_index(lhs, "AND")] = aig.create_and(to_signal(rhs0),
                                                  to_signal(rhs1));
    }
  }

  for (const uint64_t lit : output_lits) {
    aig.create_po(to_signal(lit));
  }
  return aig;
}

void write_aiger_ascii(const net::aig_network& aig, const std::string& path)
{
  std::ofstream os{path};
  if (!os) {
    throw std::runtime_error{"cannot open " + path};
  }
  write_aiger_ascii(aig, os);
}

void write_aiger_binary(const net::aig_network& aig, const std::string& path)
{
  std::ofstream os{path, std::ios::binary};
  if (!os) {
    throw std::runtime_error{"cannot open " + path};
  }
  write_aiger_binary(aig, os);
}

net::aig_network read_aiger(const std::string& path)
{
  std::ifstream is{path, std::ios::binary};
  if (!is) {
    throw std::runtime_error{"cannot open " + path};
  }
  return read_aiger(is);
}

} // namespace stps::io
