/// \file blif.hpp
/// \brief BLIF writer for k-LUT networks (and AIGs via conversion).
///
/// BLIF is the interchange format LUT-mapped networks use with ABC and
/// mockturtle (`read_blif` / `write_blif`); each gate becomes one
/// `.names` block whose cover rows are the ON-set of its truth table.
#pragma once

#include "network/aig.hpp"
#include "network/klut.hpp"

#include <iosfwd>
#include <string>

namespace stps::io {

void write_blif(const net::klut_network& klut, std::ostream& os,
                const std::string& model_name = "stps");
void write_blif(const net::klut_network& klut, const std::string& path,
                const std::string& model_name = "stps");

void write_blif(const net::aig_network& aig, std::ostream& os,
                const std::string& model_name = "stps");

/// Reads a combinational BLIF model into a k-LUT network.  Supports
/// `.model/.inputs/.outputs/.names/.end`, multi-line continuations
/// (trailing `\`), don't-care `-` input columns, and both ON-set ("1")
/// and OFF-set ("0") cover rows (mixed covers are rejected, as in sis).
net::klut_network read_blif(std::istream& is);
net::klut_network read_blif(const std::string& path);

} // namespace stps::io
