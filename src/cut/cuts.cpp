#include "cut/cuts.hpp"

#include "tt/operations.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace stps::cut {

bool cut_t::dominates(const cut_t& other) const
{
  return std::includes(other.leaves.begin(), other.leaves.end(),
                       leaves.begin(), leaves.end());
}

namespace {

/// Merges two sorted leaf sets; returns false if the union exceeds k.
bool merge_leaves(const cut_t& a, const cut_t& b, uint32_t k, cut_t& out)
{
  out.leaves.clear();
  auto ia = a.leaves.begin();
  auto ib = b.leaves.begin();
  while (ia != a.leaves.end() || ib != b.leaves.end()) {
    net::node next;
    if (ib == b.leaves.end() || (ia != a.leaves.end() && *ia < *ib)) {
      next = *ia++;
    } else if (ia == a.leaves.end() || *ib < *ia) {
      next = *ib++;
    } else {
      next = *ia;
      ++ia;
      ++ib;
    }
    if (out.leaves.size() >= k) {
      return false;
    }
    out.leaves.push_back(next);
  }
  return true;
}

void insert_cut(std::vector<cut_t>& set, cut_t cut, uint32_t limit)
{
  for (const cut_t& existing : set) {
    if (existing.dominates(cut)) {
      return;
    }
  }
  std::erase_if(set, [&](const cut_t& existing) {
    return cut.dominates(existing) && cut.leaves.size() <= existing.leaves.size();
  });
  // Priority: smaller cuts first.
  const auto pos = std::find_if(set.begin(), set.end(), [&](const cut_t& c) {
    return c.leaves.size() > cut.leaves.size();
  });
  set.insert(pos, std::move(cut));
  if (set.size() > limit) {
    set.resize(limit);
  }
}

} // namespace

cut_set::cut_set(const net::aig_network& aig, const cut_config& config)
    : config_{config}, cuts_(aig.size())
{
  aig.foreach_pi([&](net::node n) {
    cuts_[n].push_back(cut_t{{n}});
  });
  aig.foreach_gate([&](net::node n) {
    const net::node a = aig.fanin0(n).get_node();
    const net::node b = aig.fanin1(n).get_node();
    auto& set = cuts_[n];
    // Constant fanins contribute an empty leaf set.
    static const std::vector<cut_t> const_cuts{cut_t{}};
    const auto& ca = aig.is_constant(a) ? const_cuts : cuts_[a];
    const auto& cb = aig.is_constant(b) ? const_cuts : cuts_[b];
    for (const cut_t& x : ca) {
      for (const cut_t& y : cb) {
        cut_t merged;
        if (merge_leaves(x, y, config_.cut_size, merged)) {
          insert_cut(set, std::move(merged), config_.cut_limit - 1u);
        }
      }
    }
    set.push_back(cut_t{{n}}); // trivial cut, always last
  });
}

tt::truth_table cut_function(const net::aig_network& aig, net::node root,
                             const cut_t& cut)
{
  const uint32_t k = static_cast<uint32_t>(cut.leaves.size());
  std::unordered_map<net::node, tt::truth_table> memo;
  memo.reserve(64u);
  for (uint32_t i = 0; i < k; ++i) {
    memo.emplace(cut.leaves[i], tt::make_var(k, i));
  }

  // Iterative post-order evaluation of the cone above the leaves.
  std::vector<net::node> stack{root};
  while (!stack.empty()) {
    const net::node n = stack.back();
    if (memo.count(n) != 0u) {
      stack.pop_back();
      continue;
    }
    if (aig.is_constant(n)) {
      memo.emplace(n, tt::make_const0(k));
      stack.pop_back();
      continue;
    }
    if (!aig.is_and(n)) {
      throw std::invalid_argument{"cut_function: cut does not cover cone"};
    }
    const net::node a = aig.fanin0(n).get_node();
    const net::node b = aig.fanin1(n).get_node();
    const auto ita = memo.find(a);
    const auto itb = memo.find(b);
    if (ita == memo.end() || itb == memo.end()) {
      if (ita == memo.end()) {
        stack.push_back(a);
      }
      if (itb == memo.end()) {
        stack.push_back(b);
      }
      continue;
    }
    tt::truth_table ta = aig.fanin0(n).is_complemented()
                             ? tt::unary_not(ita->second)
                             : ita->second;
    tt::truth_table tb = aig.fanin1(n).is_complemented()
                             ? tt::unary_not(itb->second)
                             : itb->second;
    memo.emplace(n, tt::binary_and(ta, tb));
    stack.pop_back();
  }
  return memo.at(root);
}

} // namespace stps::cut
