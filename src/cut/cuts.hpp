/// \file cuts.hpp
/// \brief k-feasible priority cut enumeration on AIGs.
///
/// A *cut* of node n is a set of nodes (leaves) such that every path from
/// a PI to n passes through a leaf; it is k-feasible if it has at most k
/// leaves.  Cuts are the windows everything else is built on: LUT mapping
/// covers the AIG with chosen cuts, and the STP simulator's exhaustive
/// windows (§III-B) are cut cones.
#pragma once

#include "network/aig.hpp"
#include "tt/truth_table.hpp"

#include <cstdint>
#include <vector>

namespace stps::cut {

/// One cut: sorted leaf ids.
struct cut_t
{
  std::vector<net::node> leaves;

  bool operator==(const cut_t&) const = default;
  /// True iff every leaf of *this is a leaf of \p other (then *this
  /// dominates \p other and the latter is redundant).
  bool dominates(const cut_t& other) const;
};

/// Priority-cut enumeration parameters.
struct cut_config
{
  uint32_t cut_size = 6;     ///< maximum leaves per cut (k)
  uint32_t cut_limit = 8;    ///< cuts kept per node (priority truncation)
};

/// Per-node cut sets for all live nodes; index = node id.  Every node's
/// set ends with its trivial cut {n}.
class cut_set
{
public:
  cut_set(const net::aig_network& aig, const cut_config& config);

  const std::vector<cut_t>& cuts(net::node n) const { return cuts_.at(n); }
  const cut_config& config() const noexcept { return config_; }

private:
  cut_config config_;
  std::vector<std::vector<cut_t>> cuts_;
};

/// Truth table of \p root expressed over the leaves of \p cut (leaf i =
/// table variable i).  Computed by memoized cone traversal — the
/// functional content the STP layer turns into a structural matrix.
tt::truth_table cut_function(const net::aig_network& aig, net::node root,
                             const cut_t& cut);

} // namespace stps::cut
