/// \file lut_mapper.hpp
/// \brief Depth-oriented AIG → k-LUT technology mapping.
///
/// Table I simulates 6-LUT networks obtained from the EPFL AIGs; this
/// mapper produces those networks.  It is a classical two-phase cut-based
/// mapper: enumerate priority cuts, pick per node the depth-minimal cut
/// (ties broken by fewer leaves), then cover the AIG from the POs,
/// computing each chosen cut's truth table on the way.
#pragma once

#include "cut/cuts.hpp"
#include "network/aig.hpp"
#include "network/klut.hpp"

#include <vector>

namespace stps::cut {

struct lut_map_result
{
  net::klut_network klut;
  /// old AIG node id → klut node id, valid for PIs and mapped roots.
  std::vector<net::klut_network::node> node_map;
};

/// Maps \p aig into a k-LUT network; \p k must be in [2, 16].
lut_map_result lut_map(const net::aig_network& aig, uint32_t k = 6u,
                       uint32_t cut_limit = 8u);

} // namespace stps::cut
