#include "cut/tree_cuts.hpp"

#include "tt/operations.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace stps::cut {

namespace {

using knode = net::klut_network::node;

constexpr knode invalid_node = std::numeric_limits<knode>::max();

/// Truth table of \p root over the boundary nodes \p leaves (leaf i =
/// variable i); the cone between them must contain only non-root gates.
tt::truth_table cone_function(const net::klut_network& klut, knode root,
                              std::span<const knode> leaves)
{
  const uint32_t k = static_cast<uint32_t>(leaves.size());
  std::unordered_map<knode, tt::truth_table> memo;
  for (uint32_t i = 0; i < k; ++i) {
    memo.emplace(leaves[i], tt::make_var(k, i));
  }
  memo.emplace(klut.get_constant(false), tt::make_const0(k));
  memo.emplace(klut.get_constant(true), tt::make_const1(k));

  std::vector<knode> stack{root};
  while (!stack.empty()) {
    const knode n = stack.back();
    if (memo.count(n) != 0u) {
      stack.pop_back();
      continue;
    }
    if (!klut.is_gate(n)) {
      throw std::invalid_argument{"cone_function: leaves do not bound cone"};
    }
    bool ready = true;
    for (const knode f : klut.fanins(n)) {
      if (memo.count(f) == 0u) {
        stack.push_back(f);
        ready = false;
      }
    }
    if (!ready) {
      continue;
    }
    std::vector<tt::truth_table> inner;
    inner.reserve(klut.fanin_count(n));
    for (const knode f : klut.fanins(n)) {
      inner.push_back(memo.at(f));
    }
    memo.emplace(n, tt::compose(klut.table(n), inner));
    stack.pop_back();
  }
  return memo.at(root);
}

} // namespace

collapse_result collapse_to_cuts(const net::klut_network& klut,
                                 std::span<const knode> targets,
                                 uint32_t limit)
{
  if (limit < 1u) {
    throw std::invalid_argument{"collapse_to_cuts: limit must be >= 1"};
  }
  // Reference counts: fanin references plus PO references.
  std::vector<uint32_t> refs(klut.size(), 0u);
  klut.foreach_gate([&](knode n) {
    for (const knode f : klut.fanins(n)) {
      ++refs[f];
    }
  });
  klut.foreach_po([&](knode n, uint32_t) { ++refs[n]; });

  std::vector<bool> is_root(klut.size(), false);
  for (const knode t : targets) {
    if (klut.is_gate(t)) {
      is_root[t] = true;
    }
  }
  klut.foreach_gate([&](knode n) {
    if (refs[n] != 1u) {
      is_root[n] = true; // multi-fanout (or dangling) gates are boundaries
    }
  });
  klut.foreach_po([&](knode n, uint32_t) {
    if (klut.is_gate(n)) {
      is_root[n] = true;
    }
  });

  // Leaves of each gate's current cone, computed bottom-up.  Because
  // non-root internal nodes have exactly one fanout, promotions while
  // processing gate n only ever split n's own cone.
  std::vector<std::vector<knode>> leaves(klut.size());
  const auto boundary = [&](knode f) {
    return !klut.is_gate(f) || is_root[f];
  };
  klut.foreach_gate([&](knode n) {
    auto recompute = [&]() {
      std::vector<knode> acc;
      for (const knode f : klut.fanins(n)) {
        if (boundary(f)) {
          if (!klut.is_constant(f)) {
            acc.push_back(f);
          }
        } else {
          acc.insert(acc.end(), leaves[f].begin(), leaves[f].end());
        }
      }
      std::sort(acc.begin(), acc.end());
      acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
      return acc;
    };
    leaves[n] = recompute();
    while (leaves[n].size() > limit) {
      // Promote the absorbed fanin with the largest sub-cone.
      knode widest = invalid_node;
      std::size_t widest_size = 0;
      for (const knode f : klut.fanins(n)) {
        if (!boundary(f) && leaves[f].size() >= widest_size) {
          widest = f;
          widest_size = leaves[f].size();
        }
      }
      if (widest == invalid_node) {
        // All fanins are boundaries already; the gate's own fanin count
        // exceeds the limit and cannot be split further.
        break;
      }
      is_root[widest] = true;
      leaves[n] = recompute();
    }
  });

  // Build the collapsed network.
  collapse_result result;
  result.node_map.assign(klut.size(), invalid_node);
  result.node_map[klut.get_constant(false)] = result.net.get_constant(false);
  result.node_map[klut.get_constant(true)] = result.net.get_constant(true);
  klut.foreach_pi([&](knode n) {
    result.node_map[n] = result.net.create_pi();
  });
  klut.foreach_gate([&](knode n) {
    if (!is_root[n]) {
      return;
    }
    result.roots.push_back(n);
    std::vector<knode> fanins;
    fanins.reserve(leaves[n].size());
    for (const knode leaf : leaves[n]) {
      fanins.push_back(result.node_map[leaf]);
    }
    result.node_map[n] =
        result.net.create_node(fanins, cone_function(klut, n, leaves[n]));
  });
  klut.foreach_po([&](knode n, uint32_t) {
    result.net.create_po(result.node_map[n]);
  });
  return result;
}

} // namespace stps::cut
