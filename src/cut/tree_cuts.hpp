/// \file tree_cuts.hpp
/// \brief The paper's cut algorithm (§III-B): collapse a k-LUT network
/// into tree cuts bounded by a leaf limit, keeping specified nodes as
/// boundaries.
///
/// Nodes that must be observable (the *specified* set s), gates with
/// multiple fanouts, and gates driving POs become cut roots; every other
/// gate is absorbed into the cone of its unique fanout.  When a cone
/// would exceed \p limit leaves, the largest sub-cone is promoted to a
/// root (splitting the tree).  The result is a smaller k'-LUT network
/// whose gates are exactly the cut roots, each carrying the STP-composed
/// truth table of its cone — so a node with n fanouts is accessed once
/// instead of n+1 times (§III-B).
#pragma once

#include "network/klut.hpp"

#include <span>
#include <vector>

namespace stps::cut {

struct collapse_result
{
  net::klut_network net;
  /// old klut node id → new klut node id; valid for constants, PIs, and
  /// cut roots (0xffffffff elsewhere).
  std::vector<net::klut_network::node> node_map;
  /// Cut roots in topological order (old ids).
  std::vector<net::klut_network::node> roots;
};

/// Collapses \p klut into tree cuts with at most \p limit leaves each;
/// every node in \p targets is preserved as a root.
collapse_result collapse_to_cuts(
    const net::klut_network& klut,
    std::span<const net::klut_network::node> targets, uint32_t limit);

} // namespace stps::cut
