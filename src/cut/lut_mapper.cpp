#include "cut/lut_mapper.hpp"

#include "tt/operations.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace stps::cut {

lut_map_result lut_map(const net::aig_network& aig, uint32_t k,
                       uint32_t cut_limit)
{
  if (k < 2u || k > 16u) {
    throw std::invalid_argument{"lut_map: k out of range"};
  }
  const cut_set cuts{aig, cut_config{k, cut_limit}};

  // Phase 1: choose the depth-minimal non-trivial cut per gate.
  std::vector<uint32_t> best_depth(aig.size(), 0u);
  std::vector<const cut_t*> best_cut(aig.size(), nullptr);
  aig.foreach_gate([&](net::node n) {
    uint32_t best = std::numeric_limits<uint32_t>::max();
    const cut_t* chosen = nullptr;
    for (const cut_t& c : cuts.cuts(n)) {
      if (c.leaves.size() == 1u && c.leaves[0] == n) {
        continue; // trivial cut cannot implement the node
      }
      uint32_t d = 0;
      for (const net::node leaf : c.leaves) {
        d = std::max(d, best_depth[leaf]);
      }
      ++d;
      if (d < best ||
          (d == best && chosen != nullptr &&
           c.leaves.size() < chosen->leaves.size())) {
        best = d;
        chosen = &c;
      }
    }
    if (chosen == nullptr) {
      throw std::logic_error{"lut_map: gate without implementable cut"};
    }
    best_depth[n] = best;
    best_cut[n] = chosen;
  });

  // Phase 2: cover from the POs.
  std::vector<bool> required(aig.size(), false);
  std::vector<net::node> frontier;
  aig.foreach_po([&](net::signal f, uint32_t) {
    const net::node n = f.get_node();
    if (aig.is_and(n) && !required[n]) {
      required[n] = true;
      frontier.push_back(n);
    }
  });
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const net::node n = frontier[i];
    for (const net::node leaf : best_cut[n]->leaves) {
      if (aig.is_and(leaf) && !required[leaf]) {
        required[leaf] = true;
        frontier.push_back(leaf);
      }
    }
  }

  // Phase 3: build the k-LUT network in topological order.
  lut_map_result result;
  result.node_map.assign(aig.size(), 0u);
  aig.foreach_pi([&](net::node n) {
    result.node_map[n] = result.klut.create_pi(aig.pi_name(n - 1u));
  });
  aig.foreach_gate([&](net::node n) {
    if (!required[n]) {
      return;
    }
    const cut_t& c = *best_cut[n];
    std::vector<net::klut_network::node> fanins;
    fanins.reserve(c.leaves.size());
    for (const net::node leaf : c.leaves) {
      fanins.push_back(result.node_map[leaf]);
    }
    result.node_map[n] =
        result.klut.create_node(fanins, cut_function(aig, n, c));
  });
  aig.foreach_po([&](net::signal f, uint32_t index) {
    const net::node n = f.get_node();
    net::klut_network::node source;
    if (aig.is_constant(n)) {
      source = result.klut.get_constant(f.is_complemented());
    } else if (f.is_complemented()) {
      // Materialize the inversion as a 1-input LUT.
      const net::klut_network::node in = result.node_map[n];
      const net::klut_network::node fis[1] = {in};
      source = result.klut.create_node(fis, tt::truth_table{1u, {0x1ull}});
    } else {
      source = result.node_map[n];
    }
    result.klut.create_po(source, aig.po_name(index));
  });
  return result;
}

} // namespace stps::cut
