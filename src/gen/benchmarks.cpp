#include "gen/benchmarks.hpp"

#include "gen/arithmetic.hpp"
#include "gen/random_logic.hpp"
#include "gen/redundancy.hpp"

#include <algorithm>
#include <stdexcept>

namespace stps::gen {

std::vector<std::string> epfl_names()
{
  return {"adder",      "bar",  "div",      "hyp",      "log2",
          "max",        "multiplier", "sin",  "sqrt",     "square",
          "arbiter",    "cavlc", "ctrl",    "dec",      "i2c",
          "int2float",  "mem_ctrl", "priority", "router", "voter"};
}

net::aig_network make_epfl(const std::string& name)
{
  // Arithmetic family, widths scaled for laptop-time benchmarking.
  if (name == "adder") {
    return make_adder(128u);
  }
  if (name == "bar") {
    return make_barrel_shifter(7u); // 128-bit barrel shifter
  }
  if (name == "div") {
    return make_divider(24u);
  }
  if (name == "hyp") {
    return make_hypotenuse(24u);
  }
  if (name == "log2") {
    return make_log2(7u);
  }
  if (name == "max") {
    return make_max(96u);
  }
  if (name == "multiplier") {
    return make_multiplier(28u);
  }
  if (name == "sin") {
    return make_sin(20u);
  }
  if (name == "sqrt") {
    return make_sqrt(32u);
  }
  if (name == "square") {
    return make_square(28u);
  }
  // Control family.
  if (name == "arbiter") {
    return make_arbiter(96u);
  }
  if (name == "cavlc") {
    return make_random_logic({10u, 11u, 700u, 0xca71cu, 30u});
  }
  if (name == "ctrl") {
    return make_random_logic({7u, 26u, 180u, 0xc791u, 25u});
  }
  if (name == "dec") {
    return make_decoder(8u);
  }
  if (name == "i2c") {
    return make_random_logic({140u, 128u, 1300u, 0x12cu, 15u});
  }
  if (name == "int2float") {
    return make_random_logic({11u, 7u, 260u, 0x1f10a7u, 20u});
  }
  if (name == "mem_ctrl") {
    return make_random_logic({512u, 500u, 9000u, 0x3e3c791u, 12u});
  }
  if (name == "priority") {
    return make_priority(128u);
  }
  if (name == "router") {
    return make_random_logic({60u, 30u, 280u, 0x707e6u, 18u});
  }
  if (name == "voter") {
    return make_voter(400u);
  }
  throw std::invalid_argument{"make_epfl: unknown benchmark " + name};
}

std::vector<named_benchmark> epfl_suite()
{
  std::vector<named_benchmark> suite;
  for (const std::string& name : epfl_names()) {
    suite.push_back({name, make_epfl(name)});
  }
  return suite;
}

std::vector<std::string> sweep_names(uint32_t scale)
{
  std::vector<std::string> names{
      "6s100",       "6s20",    "6s203b41",   "6s281b35", "6s342rb122",
      "6s350rb46",   "6s382r",  "6s392r",     "beemfwt4b1",
      "beemfwt5b3",  "oski15a07b0s", "oski2b1i", "b18", "b19", "leon2"};
  // Paper-scale points (≥ 30k gates): wider arithmetic and deeper random
  // logic with injected redundancy, where STP-guided simulation can pay
  // for itself as in the paper's 30k-2M-gate instances.
  static const char* const scaled[max_sweep_scale][3] = {
      {"mult48r", "rand35k", "shift1kr"},
      {"mult64r", "rand70k", nullptr},
      {"mult96r", "rand140k", nullptr},
      {"mult200r", "rand1m", "rand2m"},
  };
  const uint32_t s = std::min(scale, max_sweep_scale);
  for (uint32_t k = 0; k < s; ++k) {
    for (const char* const name : scaled[k]) {
      if (name != nullptr) {
        names.emplace_back(name);
      }
    }
  }
  return names;
}

namespace {

struct sweep_recipe
{
  enum class base_kind
  {
    random,
    adder,
    multiplier,
    barrel,
    voter
  };
  base_kind kind = base_kind::random;
  random_logic_config random{};
  uint32_t width = 0;
  redundancy_config redundancy{};
};

sweep_recipe recipe_for(const std::string& name)
{
  // Scaled stand-ins: gate budgets in the low thousands, redundancy
  // density a few percent (§I), seeds fixed per benchmark so every run
  // sees identical circuits.
  sweep_recipe r;
  using K = sweep_recipe::base_kind;
  if (name == "6s100") {
    r.random = {96u, 80u, 6000u, 0x65100u, 18u};
    r.redundancy = {5u, 8u, 0x65100u, 160u};
  } else if (name == "6s20") {
    r.random = {48u, 40u, 3000u, 0x6520u, 35u};
    r.redundancy = {6u, 4u, 0x6520u, 90u};
  } else if (name == "6s203b41") {
    r.random = {80u, 70u, 4500u, 0x65203u, 15u};
    r.redundancy = {3u, 6u, 0x65203u, 40u};
  } else if (name == "6s281b35") {
    r.random = {128u, 110u, 9000u, 0x65281u, 20u};
    r.redundancy = {6u, 10u, 0x65281u, 300u};
  } else if (name == "6s342rb122") {
    r.random = {64u, 60u, 3200u, 0x65342u, 12u};
    r.redundancy = {3u, 4u, 0x65342u, 30u};
  } else if (name == "6s350rb46") {
    r.random = {100u, 95u, 7000u, 0x65350u, 10u};
    r.redundancy = {2u, 4u, 0x65350u, 40u};
  } else if (name == "6s382r") {
    r.random = {90u, 85u, 8000u, 0x65382u, 30u};
    r.redundancy = {5u, 8u, 0x65382u, 120u};
  } else if (name == "6s392r") {
    r.random = {85u, 80u, 7500u, 0x65392u, 14u};
    r.redundancy = {3u, 6u, 0x65392u, 80u};
  } else if (name == "beemfwt4b1") {
    r.kind = K::adder;
    r.width = 48u;
    r.redundancy = {10u, 8u, 0xbee4u, 100u};
  } else if (name == "beemfwt5b3") {
    r.kind = K::barrel;
    r.width = 6u;
    r.redundancy = {12u, 10u, 0xbee5u, 140u};
  } else if (name == "oski15a07b0s") {
    r.kind = K::multiplier;
    r.width = 16u;
    r.redundancy = {10u, 8u, 0x5c15u, 180u};
  } else if (name == "oski2b1i") {
    r.kind = K::voter;
    r.width = 220u;
    r.redundancy = {14u, 10u, 0x5c2bu, 220u};
  } else if (name == "b18") {
    r.random = {60u, 50u, 3800u, 0xb18u, 16u};
    r.redundancy = {4u, 6u, 0xb18u, 70u};
  } else if (name == "b19") {
    r.random = {70u, 60u, 7600u, 0xb19u, 16u};
    r.redundancy = {4u, 8u, 0xb19u, 150u};
  } else if (name == "leon2") {
    r.random = {150u, 140u, 10000u, 0x1e02u, 10u};
    r.redundancy = {2u, 6u, 0x1e02u, 200u};
  } else if (name == "mult48r") { // ~33k gates
    r.kind = K::multiplier;
    r.width = 48u;
    r.redundancy = {3u, 10u, 0x5c48u, 300u};
  } else if (name == "rand35k") { // ~35k gates
    r.random = {320u, 260u, 30000u, 0x30cau, 15u};
    r.redundancy = {3u, 12u, 0x30cau, 400u};
  } else if (name == "shift1kr") { // ~40k gates, 1024-bit barrel shifter
    r.kind = K::barrel;
    r.width = 10u;
    r.redundancy = {4u, 10u, 0xba10u, 350u};
  } else if (name == "mult64r") { // ~51k gates
    r.kind = K::multiplier;
    r.width = 64u;
    r.redundancy = {3u, 10u, 0x5c64u, 400u};
  } else if (name == "rand70k") { // ~70k gates
    r.random = {512u, 400u, 62000u, 0x70cau, 15u};
    r.redundancy = {3u, 14u, 0x70cau, 600u};
  } else if (name == "mult96r") { // ~114k gates
    r.kind = K::multiplier;
    r.width = 96u;
    r.redundancy = {2u, 10u, 0x5c96u, 500u};
  } else if (name == "rand140k") { // ~140k gates
    r.random = {768u, 600u, 125000u, 0x140cau, 15u};
    r.redundancy = {2u, 16u, 0x140cau, 900u};
  } else if (name == "mult200r") { // ~500k gates (paper upper-mid range)
    r.kind = K::multiplier;
    r.width = 200u;
    r.redundancy = {2u, 10u, 0x5c200u, 800u};
  } else if (name == "rand1m") { // ~1M gates (the paper's largest tier)
    r.random = {2048u, 1600u, 950'000u, 0x100cau, 15u};
    r.redundancy = {2u, 16u, 0x100cau, 2000u};
  } else if (name == "rand2m") { // ~2M gates: exercises the 19-leaf
                                 // window tier (≥ 1.92M) + garbage epochs
    r.random = {3072u, 2400u, 1'900'000u, 0x200cau, 15u};
    r.redundancy = {2u, 16u, 0x200cau, 3000u};
  } else {
    throw std::invalid_argument{"make_sweep_benchmark: unknown " + name};
  }
  return r;
}

} // namespace

net::aig_network make_sweep_benchmark(const std::string& name)
{
  const sweep_recipe r = recipe_for(name);
  net::aig_network base;
  using K = sweep_recipe::base_kind;
  switch (r.kind) {
    case K::random: base = make_random_logic(r.random); break;
    case K::adder: base = make_adder(r.width); break;
    case K::multiplier: base = make_multiplier(r.width); break;
    case K::barrel: base = make_barrel_shifter(r.width); break;
    case K::voter: base = make_voter(r.width); break;
  }
  return inject_redundancy(base, r.redundancy);
}

std::vector<named_benchmark> sweep_suite(uint32_t scale)
{
  std::vector<named_benchmark> suite;
  for (const std::string& name : sweep_names(scale)) {
    suite.push_back({name, make_sweep_benchmark(name)});
  }
  return suite;
}

} // namespace stps::gen
