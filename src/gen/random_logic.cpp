#include "gen/random_logic.hpp"

#include <random>
#include <stdexcept>
#include <string>
#include <vector>

namespace stps::gen {

namespace {

using net::aig_network;
using net::signal;

} // namespace

net::aig_network make_random_logic(const random_logic_config& config)
{
  aig_network aig;
  std::mt19937_64 rng{config.seed};
  std::vector<signal> pool;
  pool.reserve(config.num_pis + config.num_gates);
  for (uint32_t i = 0; i < config.num_pis; ++i) {
    pool.push_back(aig.create_pi("x" + std::to_string(i)));
  }

  const auto pick = [&]() {
    // Locality bias: prefer recent signals, occasionally reach back.
    const std::size_t n = pool.size();
    std::size_t index;
    if (rng() % 4u == 0u) {
      index = rng() % n;
    } else {
      const std::size_t window = std::max<std::size_t>(8u, n / 4u);
      const std::size_t lo = n > window ? n - window : 0u;
      index = lo + rng() % (n - lo);
    }
    signal s{pool[index]};
    if (rng() & 1u) {
      s = !s;
    }
    return s;
  };

  while (aig.num_gates() < config.num_gates) {
    const signal a = pick();
    const signal b = pick();
    signal g;
    if (rng() % 100u < config.xor_percent) {
      g = aig.create_xor(a, b);
    } else {
      g = aig.create_and(a, b);
    }
    if (!aig.is_constant(g.get_node())) {
      pool.push_back(g);
    }
  }

  // POs: prefer deep signals so most of the network is live.
  const uint32_t pos = config.num_pos;
  for (uint32_t i = 0; i < pos; ++i) {
    const std::size_t n = pool.size();
    const std::size_t lo = n > n / 3u ? n - n / 3u : 0u;
    const std::size_t index = lo + rng() % (n - lo);
    signal s{pool[index]};
    if (rng() & 1u) {
      s = !s;
    }
    aig.create_po(s, "y" + std::to_string(i));
  }
  return aig;
}

net::aig_network make_decoder(uint32_t address_bits)
{
  if (address_bits > 12u) {
    throw std::invalid_argument{"make_decoder: too many address bits"};
  }
  aig_network aig;
  std::vector<signal> addr;
  for (uint32_t i = 0; i < address_bits; ++i) {
    addr.push_back(aig.create_pi("a" + std::to_string(i)));
  }
  const uint32_t outputs = 1u << address_bits;
  for (uint32_t code = 0; code < outputs; ++code) {
    signal line = aig.get_constant(true);
    for (uint32_t b = 0; b < address_bits; ++b) {
      const signal bit = (code >> b) & 1u ? addr[b] : !addr[b];
      line = aig.create_and(line, bit);
    }
    aig.create_po(line, "d" + std::to_string(code));
  }
  return aig;
}

net::aig_network make_priority(uint32_t width)
{
  aig_network aig;
  std::vector<signal> req;
  for (uint32_t i = 0; i < width; ++i) {
    req.push_back(aig.create_pi("r" + std::to_string(i)));
  }
  signal any_higher = aig.get_constant(false);
  std::vector<signal> grant(width, aig.get_constant(false));
  for (uint32_t i = width; i-- > 0;) {
    grant[i] = aig.create_and(req[i], !any_higher);
    any_higher = aig.create_or(any_higher, req[i]);
  }
  for (uint32_t i = 0; i < width; ++i) {
    aig.create_po(grant[i], "g" + std::to_string(i));
  }
  aig.create_po(any_higher, "valid");
  return aig;
}

net::aig_network make_voter(uint32_t width)
{
  aig_network aig;
  std::vector<signal> a;
  std::vector<signal> b;
  std::vector<signal> c;
  for (uint32_t i = 0; i < width; ++i) {
    a.push_back(aig.create_pi("a" + std::to_string(i)));
  }
  for (uint32_t i = 0; i < width; ++i) {
    b.push_back(aig.create_pi("b" + std::to_string(i)));
  }
  for (uint32_t i = 0; i < width; ++i) {
    c.push_back(aig.create_pi("c" + std::to_string(i)));
  }
  // Bitwise triple-modular majority, then a tree of wide majorities.
  std::vector<signal> level;
  for (uint32_t i = 0; i < width; ++i) {
    level.push_back(aig.create_maj(a[i], b[i], c[i]));
    aig.create_po(level.back(), "m" + std::to_string(i));
  }
  while (level.size() >= 3u) {
    std::vector<signal> next;
    for (std::size_t i = 0; i + 2u < level.size(); i += 3u) {
      next.push_back(aig.create_maj(level[i], level[i + 1u], level[i + 2u]));
    }
    for (std::size_t i = level.size() - level.size() % 3u; i < level.size();
         ++i) {
      next.push_back(level[i]);
    }
    if (next.size() == level.size()) {
      break;
    }
    level = std::move(next);
  }
  aig.create_po(level.front(), "decision");
  return aig;
}

net::aig_network make_arbiter(uint32_t width)
{
  aig_network aig;
  std::vector<signal> req;
  std::vector<signal> mask;
  for (uint32_t i = 0; i < width; ++i) {
    req.push_back(aig.create_pi("r" + std::to_string(i)));
  }
  for (uint32_t i = 0; i < width; ++i) {
    mask.push_back(aig.create_pi("m" + std::to_string(i)));
  }
  // Masked requests win first; otherwise fall back to raw priority.
  std::vector<signal> masked;
  for (uint32_t i = 0; i < width; ++i) {
    masked.push_back(aig.create_and(req[i], mask[i]));
  }
  signal any_masked = aig.get_constant(false);
  for (const signal s : masked) {
    any_masked = aig.create_or(any_masked, s);
  }
  signal higher_m = aig.get_constant(false);
  signal higher_r = aig.get_constant(false);
  for (uint32_t i = width; i-- > 0;) {
    const signal grant_m = aig.create_and(masked[i], !higher_m);
    const signal grant_r = aig.create_and(req[i], !higher_r);
    higher_m = aig.create_or(higher_m, masked[i]);
    higher_r = aig.create_or(higher_r, req[i]);
    aig.create_po(aig.create_mux(any_masked, grant_m, grant_r),
                  "g" + std::to_string(i));
  }
  return aig;
}

} // namespace stps::gen
