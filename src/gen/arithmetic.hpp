/// \file arithmetic.hpp
/// \brief Generators for arithmetic circuit families (EPFL-style).
///
/// The EPFL arithmetic suite (adder, bar, div, hyp, log2, max,
/// multiplier, sin, sqrt, square) is not shipped with this repository;
/// these constructors build the same circuit *families* from scratch at
/// configurable widths, which is what the simulation benchmarks of
/// Table I exercise (node count, level structure, and function mix
/// determine simulation cost).  All generators are deterministic.
#pragma once

#include "network/aig.hpp"

#include <cstdint>
#include <vector>

namespace stps::gen {

/// Ripple-carry adder: 2n PIs + carry-in, n+1 POs.
net::aig_network make_adder(uint32_t width);

/// Barrel (logarithmic) shifter: n data + log2(n) shift PIs, n POs.
net::aig_network make_barrel_shifter(uint32_t width_log2);

/// Array multiplier: 2n PIs, 2n POs.
net::aig_network make_multiplier(uint32_t width);

/// Squarer: n PIs, 2n POs (multiplier with tied operands).
net::aig_network make_square(uint32_t width);

/// Restoring divider: 2n PIs (dividend, divisor), 2n POs (quotient,
/// remainder).
net::aig_network make_divider(uint32_t width);

/// Restoring square root: n PIs, n/2 POs.
net::aig_network make_sqrt(uint32_t width);

/// Hypotenuse sqrt(a^2+b^2): 2n PIs, n+2 POs.
net::aig_network make_hypotenuse(uint32_t width);

/// Two-operand unsigned maximum: 2n PIs, n POs.
net::aig_network make_max(uint32_t width);

/// Integer log2 (position of leading one): n PIs, log2(n) POs.
net::aig_network make_log2(uint32_t width_log2);

/// Fixed-point sine approximation via cubic polynomial (Horner with
/// array multipliers): n PIs, n POs.
net::aig_network make_sin(uint32_t width);

/// \name Building blocks shared by the generators
/// \{
struct adder_result
{
  std::vector<net::signal> sum;
  net::signal carry;
};

/// Ripple-carry addition of equal-width vectors inside \p aig.
adder_result add_vectors(net::aig_network& aig,
                         const std::vector<net::signal>& a,
                         const std::vector<net::signal>& b,
                         net::signal carry_in);

/// a - b (two's complement); `carry` is the borrow-free flag (a >= b).
adder_result subtract_vectors(net::aig_network& aig,
                              const std::vector<net::signal>& a,
                              const std::vector<net::signal>& b);

/// Unsigned comparison a < b.
net::signal less_than(net::aig_network& aig,
                      const std::vector<net::signal>& a,
                      const std::vector<net::signal>& b);

/// Word-wide mux: s ? a : b, element-wise.
std::vector<net::signal> mux_vectors(net::aig_network& aig, net::signal s,
                                     const std::vector<net::signal>& a,
                                     const std::vector<net::signal>& b);

/// Array multiplication returning 2n product bits.
std::vector<net::signal> multiply_vectors(net::aig_network& aig,
                                          const std::vector<net::signal>& a,
                                          const std::vector<net::signal>& b);
/// \}

} // namespace stps::gen
