/// \file redundancy.hpp
/// \brief Redundancy injection: the sweeping workloads of Table II.
///
/// The HWMCC'15 / IWLS'05 circuits the paper sweeps contain functionally
/// equivalent nodes at a density of a few percent (§I: "the equivalence
/// class usually contains a few percent of the total gates in a valid
/// merge").  This generator reproduces that regime from scratch: while
/// copying a base circuit it rewrites sampled cones into structurally
/// different but functionally identical forms (absorption `f = f·(a+b)`,
/// mux duplication `f = c?f:f`, and re-built cones over already-rewritten
/// fanins) and redirects a random subset of fanout edges to the rewrite —
/// so structural hashing cannot collapse the pair, but SAT sweeping can.
/// It also plants *hidden constants* (XOR of two differently associated
/// parity trees) that gate POs, exercising constant propagation
/// (Alg. 2 line 3).
#pragma once

#include "network/aig.hpp"

#include <cstdint>

namespace stps::gen {

struct redundancy_config
{
  /// Percent (0-100) of gates duplicated under a rewrite.
  uint32_t duplicate_percent = 5;
  /// Hidden constant-0 nodes planted and ANDed into POs.
  uint32_t hidden_constants = 8;
  /// Near-duplicates planted: for sampled gates f with small support, a
  /// sibling f' = f ∨ minterm is added (observable through an extra XOR
  /// output).  f' agrees with f everywhere except one assignment of f's
  /// support, so random simulation groups the pair into a *false*
  /// equivalence candidate that only a counter-example (or an exhaustive
  /// window, §IV-A) can split — the population behind the paper's
  /// satisfiable-SAT-call gap in Table II.
  uint32_t near_duplicates = 0;
  uint64_t seed = 42;

  redundancy_config() = default;
  redundancy_config(uint32_t dup_percent, uint32_t hidden, uint64_t s,
                    uint32_t near = 0)
      : duplicate_percent{dup_percent}, hidden_constants{hidden},
        near_duplicates{near}, seed{s}
  {
  }
};

/// Returns a network PO-equivalent to \p base but containing redundant
/// equivalent pairs and hidden constants.
net::aig_network inject_redundancy(const net::aig_network& base,
                                   const redundancy_config& config);

} // namespace stps::gen
