/// \file benchmarks.hpp
/// \brief Named benchmark suites mirroring the paper's evaluation.
///
/// * `epfl_suite()` — the 20 EPFL benchmark names of Table I, each built
///   by the matching generator family at a width chosen so the whole
///   suite simulates in laptop time (the paper's absolute sizes need the
///   original files; shapes and relative costs are preserved).
/// * `sweep_suite()` — the 15 HWMCC'15/IWLS'05 names of Table II, each a
///   base circuit with injected redundancy (see redundancy.hpp), scaled
///   down from the paper's 30k-2M gate instances.
/// * `sweep_suite(scale)` — the same 15 plus, for `scale >= 1`,
///   paper-scale instances of ≥ 30k gates (wider arithmetic and deeper
///   random logic with injected redundancy), where the STP sweeper's
///   simulation investment can pay off as in the paper.  Each scale step
///   (up to 4; scale 4 reaches the paper's 500k-2M-gate upper range and
///   the 19-leaf window tier) appends larger instances; see
///   bench/README.md.
#pragma once

#include "network/aig.hpp"

#include <string>
#include <vector>

namespace stps::gen {

struct named_benchmark
{
  std::string name;
  net::aig_network aig;
};

/// All Table I benchmark names, in the paper's order.
std::vector<std::string> epfl_names();
/// Builds one EPFL-like benchmark by name; throws on unknown names.
net::aig_network make_epfl(const std::string& name);
/// Builds the full suite.
std::vector<named_benchmark> epfl_suite();

/// Largest meaningful `scale` argument; higher values clamp.
inline constexpr uint32_t max_sweep_scale = 4;

/// All Table II benchmark names, in the paper's order; `scale >= 1`
/// (clamped to max_sweep_scale) appends the paper-scale instances.
std::vector<std::string> sweep_names(uint32_t scale = 0);
/// Builds one sweeping benchmark by name (base or paper-scale); throws
/// on unknown names.
net::aig_network make_sweep_benchmark(const std::string& name);
/// Builds the full suite at the given scale.
std::vector<named_benchmark> sweep_suite(uint32_t scale = 0);

} // namespace stps::gen
