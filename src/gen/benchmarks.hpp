/// \file benchmarks.hpp
/// \brief Named benchmark suites mirroring the paper's evaluation.
///
/// * `epfl_suite()` — the 20 EPFL benchmark names of Table I, each built
///   by the matching generator family at a width chosen so the whole
///   suite simulates in laptop time (the paper's absolute sizes need the
///   original files; shapes and relative costs are preserved).
/// * `sweep_suite()` — the 15 HWMCC'15/IWLS'05 names of Table II, each a
///   base circuit with injected redundancy (see redundancy.hpp), scaled
///   down from the paper's 30k-2M gate instances.
#pragma once

#include "network/aig.hpp"

#include <string>
#include <vector>

namespace stps::gen {

struct named_benchmark
{
  std::string name;
  net::aig_network aig;
};

/// All Table I benchmark names, in the paper's order.
std::vector<std::string> epfl_names();
/// Builds one EPFL-like benchmark by name; throws on unknown names.
net::aig_network make_epfl(const std::string& name);
/// Builds the full suite.
std::vector<named_benchmark> epfl_suite();

/// All Table II benchmark names, in the paper's order.
std::vector<std::string> sweep_names();
/// Builds one sweeping benchmark by name; throws on unknown names.
net::aig_network make_sweep_benchmark(const std::string& name);
/// Builds the full suite.
std::vector<named_benchmark> sweep_suite();

} // namespace stps::gen
