#include "gen/redundancy.hpp"

#include "network/traversal.hpp"

#include <random>
#include <span>
#include <vector>

namespace stps::gen {

namespace {

using net::aig_network;
using net::signal;

} // namespace

net::aig_network inject_redundancy(const net::aig_network& base,
                                   const redundancy_config& config)
{
  aig_network out;
  std::mt19937_64 rng{config.seed};

  std::vector<signal> map(base.size(), signal{0});
  std::vector<signal> alt(base.size(), signal{0});
  std::vector<bool> has_alt(base.size(), false);
  map[0] = out.get_constant(false);

  std::vector<signal> pool; // sources for mux selectors
  base.foreach_pi([&](net::node n) {
    map[n] = out.create_pi(base.pi_name(n - 1u));
    pool.push_back(map[n]);
  });

  // Resolves a base fanin to the copy or (sometimes) its rewrite, so both
  // stay live through disjoint fanout edges.
  const auto resolve = [&](signal f) {
    const net::node n = f.get_node();
    signal s = has_alt[n] && (rng() & 1u) ? alt[n] : map[n];
    return f.is_complemented() ? !s : s;
  };

  base.foreach_gate([&](net::node n) {
    const signal a = base.fanin0(n);
    const signal b = base.fanin1(n);
    const signal ma = a.is_complemented() ? !map[a.get_node()]
                                          : map[a.get_node()];
    const signal mb = b.is_complemented() ? !map[b.get_node()]
                                          : map[b.get_node()];
    map[n] = out.create_and(ma, mb);
    pool.push_back(map[n]);

    if (rng() % 100u >= config.duplicate_percent) {
      return;
    }
    // Build a functionally identical, structurally different node.
    signal rewritten;
    switch (rng() % 3u) {
      case 0u:
        // Absorption: (a·b) · (a+b) == a·b.
        rewritten = out.create_and(map[n], out.create_or(ma, mb));
        break;
      case 1u: {
        // Mux duplication: c ? f : f == f, with an arbitrary selector.
        const signal sel = pool[rng() % pool.size()];
        rewritten = out.create_mux(sel, map[n], map[n]);
        break;
      }
      default: {
        // Cone rebuild over rewritten fanins (differs structurally as
        // soon as a fanin has an alternate).
        const signal ra = has_alt[a.get_node()]
                              ? (a.is_complemented() ? !alt[a.get_node()]
                                                     : alt[a.get_node()])
                              : ma;
        const signal rb = has_alt[b.get_node()]
                              ? (b.is_complemented() ? !alt[b.get_node()]
                                                     : alt[b.get_node()])
                              : mb;
        rewritten = out.create_and(out.create_and(ra, rb),
                                   out.create_or(ra, !rb));
        break;
      }
    }
    if (rewritten.get_node() != map[n].get_node()) {
      alt[n] = rewritten;
      has_alt[n] = true;
    }
  });

  // Near-duplicates: f' = f ∨ (one minterm of f's support).  Observable
  // through a dedicated XOR-tree output so sweeping must consider them.
  std::vector<signal> observers;
  if (config.near_duplicates > 0u) {
    std::vector<net::node> gates;
    base.foreach_gate([&](net::node n) { gates.push_back(n); });
    std::vector<net::node> sup;
    uint32_t planted = 0;
    for (std::size_t attempt = 0;
         attempt < gates.size() * 2u && planted < config.near_duplicates;
         ++attempt) {
      const net::node n = gates[rng() % gates.size()];
      const net::node target = map[n].get_node();
      if (!out.is_and(target)) {
        continue;
      }
      // Support must be wide enough that ~2^10 random patterns miss the
      // planted minterm (so the pair survives initial simulation as a
      // false candidate), yet narrow enough for the "< 16 leaves"
      // exhaustive window of §IV-A to resolve it without SAT.
      if (!net::bounded_support(out, std::span<const net::node>{&target, 1u},
                                14u, sup) ||
          sup.size() < 12u) {
        continue;
      }
      // One random minterm over the support.
      signal minterm = out.get_constant(true);
      for (const net::node pi : sup) {
        const signal bit{pi, (rng() & 1u) != 0u};
        minterm = out.create_and(minterm, bit);
      }
      const signal sibling = out.create_or(map[n], minterm);
      observers.push_back(out.create_xor(sibling, map[n]));
      ++planted;
    }
  }

  // Hidden constants: XOR of two differently associated parity trees.
  std::vector<signal> hidden;
  for (uint32_t i = 0; i < config.hidden_constants && pool.size() >= 3u;
       ++i) {
    const signal x = pool[rng() % pool.size()];
    const signal y = pool[rng() % pool.size()];
    const signal z = pool[rng() % pool.size()];
    const signal p1 = out.create_xor(out.create_xor(x, y), z);
    const signal p2 = out.create_xor(x, out.create_xor(y, z));
    const signal zero = out.create_xor(p1, p2); // constant 0, hidden
    if (!out.is_constant(zero.get_node())) {
      hidden.push_back(zero);
    }
  }

  std::size_t next_hidden = 0;
  base.foreach_po([&](signal f, uint32_t index) {
    signal driver = resolve(f);
    if (next_hidden < hidden.size()) {
      // po · !const0 == po: function preserved, structure obscured.
      driver = out.create_and(driver, !hidden[next_hidden++]);
    }
    out.create_po(driver, base.po_name(index));
  });
  if (!observers.empty()) {
    // One extra output keeps every near-duplicate observable.
    signal tree = out.get_constant(false);
    for (const signal s : observers) {
      tree = out.create_xor(tree, s);
    }
    out.create_po(tree, "near_dup_observer");
  }
  return out;
}

} // namespace stps::gen
