/// \file random_logic.hpp
/// \brief Structured random control logic and the named control
/// benchmarks of the EPFL suite.
///
/// Control circuits (arbiter, cavlc, ctrl, i2c, mem_ctrl, router, …) are
/// approximated by seeded layered random AIGs with matching PI/PO/gate
/// budgets, plus exact constructions where the function is canonical
/// (decoder, priority chain, majority voter, round-robin arbiter).
#pragma once

#include "network/aig.hpp"

#include <cstdint>
#include <string>

namespace stps::gen {

struct random_logic_config
{
  uint32_t num_pis = 32;
  uint32_t num_pos = 32;
  uint32_t num_gates = 1000;
  uint64_t seed = 7;
  /// Fraction (0-100) of XOR-like gates; XOR-rich logic is harder for
  /// both simulators and SAT, like the EPFL control benchmarks.
  uint32_t xor_percent = 20;
};

/// Layered random AIG: each new gate picks two earlier signals with a
/// locality bias, so depth and fanout distribution resemble synthesized
/// control logic.
net::aig_network make_random_logic(const random_logic_config& config);

/// Full n-to-2^n decoder (EPFL "dec").
net::aig_network make_decoder(uint32_t address_bits);

/// Priority chain (EPFL "priority"): request vector to one-hot grant,
/// highest index wins.
net::aig_network make_priority(uint32_t width);

/// Majority voter over \p width replicated triples (EPFL "voter" style:
/// wide majority trees).
net::aig_network make_voter(uint32_t width);

/// Round-robin-ish arbiter: mask chain + priority (EPFL "arbiter" style).
net::aig_network make_arbiter(uint32_t width);

} // namespace stps::gen
