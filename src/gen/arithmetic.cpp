#include "gen/arithmetic.hpp"

#include <stdexcept>
#include <string>

namespace stps::gen {

namespace {

using net::aig_network;
using net::signal;

std::vector<signal> make_pis(aig_network& aig, uint32_t count,
                             const std::string& prefix)
{
  std::vector<signal> pis;
  pis.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    pis.push_back(aig.create_pi(prefix + std::to_string(i)));
  }
  return pis;
}

void make_pos(aig_network& aig, const std::vector<signal>& signals,
              const std::string& prefix)
{
  for (std::size_t i = 0; i < signals.size(); ++i) {
    aig.create_po(signals[i], prefix + std::to_string(i));
  }
}

/// Full adder.
std::pair<signal, signal> full_adder(aig_network& aig, signal a, signal b,
                                     signal c)
{
  const signal sum = aig.create_xor(aig.create_xor(a, b), c);
  const signal carry = aig.create_maj(a, b, c);
  return {sum, carry};
}

} // namespace

adder_result add_vectors(aig_network& aig, const std::vector<signal>& a,
                         const std::vector<signal>& b, signal carry_in)
{
  if (a.size() != b.size()) {
    throw std::invalid_argument{"add_vectors: width mismatch"};
  }
  adder_result result;
  result.sum.reserve(a.size());
  signal carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto [s, c] = full_adder(aig, a[i], b[i], carry);
    result.sum.push_back(s);
    carry = c;
  }
  result.carry = carry;
  return result;
}

adder_result subtract_vectors(aig_network& aig, const std::vector<signal>& a,
                              const std::vector<signal>& b)
{
  std::vector<signal> b_inv;
  b_inv.reserve(b.size());
  for (const signal s : b) {
    b_inv.push_back(!s);
  }
  return add_vectors(aig, a, b_inv, aig.get_constant(true));
}

signal less_than(aig_network& aig, const std::vector<signal>& a,
                 const std::vector<signal>& b)
{
  // a < b  iff  a - b borrows.
  return !subtract_vectors(aig, a, b).carry;
}

std::vector<signal> mux_vectors(aig_network& aig, signal s,
                                const std::vector<signal>& a,
                                const std::vector<signal>& b)
{
  if (a.size() != b.size()) {
    throw std::invalid_argument{"mux_vectors: width mismatch"};
  }
  std::vector<signal> out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(aig.create_mux(s, a[i], b[i]));
  }
  return out;
}

std::vector<signal> multiply_vectors(aig_network& aig,
                                     const std::vector<signal>& a,
                                     const std::vector<signal>& b)
{
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  std::vector<signal> acc(n + m, aig.get_constant(false));
  // Array multiplier: accumulate partial products row by row.
  for (std::size_t j = 0; j < m; ++j) {
    signal carry = aig.get_constant(false);
    for (std::size_t i = 0; i < n; ++i) {
      const signal pp = aig.create_and(a[i], b[j]);
      auto [s, c] = full_adder(aig, acc[i + j], pp, carry);
      acc[i + j] = s;
      carry = c;
    }
    acc[n + j] = carry;
  }
  return acc;
}

net::aig_network make_adder(uint32_t width)
{
  aig_network aig;
  const auto a = make_pis(aig, width, "a");
  const auto b = make_pis(aig, width, "b");
  const signal cin = aig.create_pi("cin");
  const adder_result r = add_vectors(aig, a, b, cin);
  make_pos(aig, r.sum, "s");
  aig.create_po(r.carry, "cout");
  return aig;
}

net::aig_network make_barrel_shifter(uint32_t width_log2)
{
  aig_network aig;
  const uint32_t width = 1u << width_log2;
  auto data = make_pis(aig, width, "d");
  const auto shift = make_pis(aig, width_log2, "s");
  // Logarithmic rotate-left stages.
  for (uint32_t stage = 0; stage < width_log2; ++stage) {
    const uint32_t amount = 1u << stage;
    std::vector<signal> rotated(width, aig.get_constant(false));
    for (uint32_t i = 0; i < width; ++i) {
      rotated[(i + amount) % width] = data[i];
    }
    data = mux_vectors(aig, shift[stage], rotated, data);
  }
  make_pos(aig, data, "q");
  return aig;
}

net::aig_network make_multiplier(uint32_t width)
{
  aig_network aig;
  const auto a = make_pis(aig, width, "a");
  const auto b = make_pis(aig, width, "b");
  make_pos(aig, multiply_vectors(aig, a, b), "p");
  return aig;
}

net::aig_network make_square(uint32_t width)
{
  aig_network aig;
  const auto a = make_pis(aig, width, "a");
  make_pos(aig, multiply_vectors(aig, a, a), "p");
  return aig;
}

net::aig_network make_divider(uint32_t width)
{
  aig_network aig;
  const auto dividend = make_pis(aig, width, "n");
  const auto divisor = make_pis(aig, width, "d");
  // Restoring division, MSB-first.
  std::vector<signal> remainder(width, aig.get_constant(false));
  std::vector<signal> quotient(width, aig.get_constant(false));
  for (uint32_t step = 0; step < width; ++step) {
    // Shift remainder left, bring in the next dividend bit.
    for (uint32_t i = width; i-- > 1u;) {
      remainder[i] = remainder[i - 1u];
    }
    remainder[0] = dividend[width - 1u - step];
    const adder_result diff = subtract_vectors(aig, remainder, divisor);
    const signal fits = diff.carry; // remainder >= divisor
    remainder = mux_vectors(aig, fits, diff.sum, remainder);
    quotient[width - 1u - step] = fits;
  }
  make_pos(aig, quotient, "q");
  make_pos(aig, remainder, "r");
  return aig;
}

net::aig_network make_sqrt(uint32_t width)
{
  if (width % 2u != 0u) {
    throw std::invalid_argument{"make_sqrt: width must be even"};
  }
  aig_network aig;
  const auto x = make_pis(aig, width, "x");
  const uint32_t half = width / 2u;
  // Digit-by-digit (restoring) square root over a width+2 scratch.
  const uint32_t w = width + 2u;
  std::vector<signal> rem(w, aig.get_constant(false));
  std::vector<signal> root(half, aig.get_constant(false));
  for (uint32_t step = 0; step < half; ++step) {
    // Shift remainder left by two, bring in the next two input bits.
    for (uint32_t i = w; i-- > 2u;) {
      rem[i] = rem[i - 2u];
    }
    rem[1] = x[width - 1u - 2u * step];
    rem[0] = x[width - 2u - 2u * step];
    // Trial subtrahend: (root << 2) | 01.
    std::vector<signal> trial(w, aig.get_constant(false));
    trial[0] = aig.get_constant(true);
    for (uint32_t i = 0; i < half; ++i) {
      if (i + 2u < w) {
        trial[i + 2u] = root[i];
      }
    }
    const adder_result diff = subtract_vectors(aig, rem, trial);
    const signal fits = diff.carry;
    rem = mux_vectors(aig, fits, diff.sum, rem);
    // Shift root left, insert the new digit.
    for (uint32_t i = half; i-- > 1u;) {
      root[i] = root[i - 1u];
    }
    root[0] = fits;
  }
  make_pos(aig, root, "r");
  return aig;
}

net::aig_network make_hypotenuse(uint32_t width)
{
  aig_network aig;
  const auto a = make_pis(aig, width, "a");
  const auto b = make_pis(aig, width, "b");
  const auto a2 = multiply_vectors(aig, a, a);
  const auto b2 = multiply_vectors(aig, b, b);
  const adder_result sum =
      add_vectors(aig, a2, b2, aig.get_constant(false));
  std::vector<signal> total = sum.sum;
  total.push_back(sum.carry);
  total.push_back(aig.get_constant(false)); // even width for sqrt
  make_pos(aig, total, "h");
  return aig;
}

net::aig_network make_max(uint32_t width)
{
  aig_network aig;
  const auto a = make_pis(aig, width, "a");
  const auto b = make_pis(aig, width, "b");
  const signal a_less = less_than(aig, a, b);
  make_pos(aig, mux_vectors(aig, a_less, b, a), "m");
  return aig;
}

net::aig_network make_log2(uint32_t width_log2)
{
  aig_network aig;
  const uint32_t width = 1u << width_log2;
  const auto x = make_pis(aig, width, "x");
  // Priority encoder of the leading one.
  // seen[i] = OR of x[width-1..i]; out bit b = OR over i with bit b set of
  // (x[i] & !seen[i+1]).
  std::vector<signal> none_above(width, aig.get_constant(false));
  signal seen = aig.get_constant(false);
  for (uint32_t i = width; i-- > 0;) {
    none_above[i] = !seen;
    seen = aig.create_or(seen, x[i]);
  }
  for (uint32_t b = 0; b < width_log2; ++b) {
    signal out = aig.get_constant(false);
    for (uint32_t i = 0; i < width; ++i) {
      if ((i >> b) & 1u) {
        out = aig.create_or(out, aig.create_and(x[i], none_above[i]));
      }
    }
    aig.create_po(out, "l" + std::to_string(b));
  }
  aig.create_po(seen, "valid");
  return aig;
}

net::aig_network make_sin(uint32_t width)
{
  aig_network aig;
  const auto x = make_pis(aig, width, "x");
  // Cubic odd-polynomial approximation sin(x) ≈ x - x^3/6 in fixed point:
  // y = x - (x*x*x >> (2*width - 3)) truncated back to width bits.  The
  // point is the circuit family (chained array multipliers + adder), not
  // numerics.
  const auto x2 = multiply_vectors(aig, x, x);
  const std::vector<signal> x2_hi(x2.end() - width, x2.end());
  const auto x3 = multiply_vectors(aig, x2_hi, x);
  std::vector<signal> x3_scaled(x3.end() - width, x3.end());
  // Divide by ~8 (shift right 3) as the /6 stand-in.
  std::vector<signal> sixth(width, aig.get_constant(false));
  for (uint32_t i = 0; i + 3u < width; ++i) {
    sixth[i] = x3_scaled[i + 3u];
  }
  const adder_result diff = subtract_vectors(aig, x, sixth);
  make_pos(aig, diff.sum, "y");
  return aig;
}

} // namespace stps::gen
