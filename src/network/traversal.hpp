/// \file traversal.hpp
/// \brief Topological orders, levels, and transitive fanin/fanout queries
/// over the AIG.
///
/// Algorithm 2 of the paper traverses gates in *reverse* topological
/// order (line 4), bounds merge candidates by the transitive fanin with a
/// node limit `n = 1000` (line 13), and the STP refinement sorts
/// equivalence classes topologically (line 11).  These helpers provide
/// exactly those queries.
#pragma once

#include "network/aig.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace stps::net {

/// Live gates in topological (fanin-before-fanout) order.
std::vector<node> topo_order(const aig_network& aig);

/// Live gates in reverse topological order (POs towards PIs).
std::vector<node> reverse_topo_order(const aig_network& aig);

/// Logic level of every node (PIs/constant at 0); dead nodes get 0.
std::vector<uint32_t> levels(const aig_network& aig);

/// Depth of the network: maximum PO level.
uint32_t depth(const aig_network& aig);

/// Transitive fanin of \p root (excluding \p root itself), truncated to at
/// most \p limit nodes; includes PIs.  Order is DFS discovery order.
std::vector<node> transitive_fanin(const aig_network& aig, node root,
                                   std::size_t limit);

/// True iff \p descendant lies in the transitive fanout of \p ancestor —
/// the acyclicity check a merge must pass before rewiring.
bool in_transitive_fanout(const aig_network& aig, node ancestor,
                          node descendant);

/// Primary-input support of \p root (node ids of PIs in its TFI).
std::vector<node> support(const aig_network& aig, node root);

/// Union support of \p roots, abandoned (empty + false) as soon as it
/// exceeds \p max_size — the "< 16 leaf" window test of §IV-A without
/// paying for large cones.
bool bounded_support(const aig_network& aig, std::span<const node> roots,
                     std::size_t max_size, std::vector<node>& out);

} // namespace stps::net
