#include "network/aig.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace stps::net {

namespace {

/// Normalizes an AND fanin pair to lit order (hashing canonical form).
void normalize(signal& a, signal& b) noexcept
{
  if (a.lit > b.lit) {
    std::swap(a, b);
  }
}

} // namespace

aig_network::aig_network()
{
  nodes_.emplace_back(); // constant-zero node, id 0
  fanouts_.emplace_back();
}

signal aig_network::get_constant(bool value) const noexcept
{
  return signal{0u, value};
}

signal aig_network::create_pi(std::string name)
{
  if (num_gates_ != 0u) {
    throw std::logic_error{"create_pi: PIs must precede gates"};
  }
  nodes_.emplace_back();
  fanouts_.emplace_back();
  ++num_pis_;
  pi_names_.push_back(std::move(name));
  return signal{static_cast<node>(nodes_.size() - 1u), false};
}

signal aig_network::create_and(signal a, signal b)
{
  normalize(a, b);
  // Trivial reductions.
  if (a.lit == 0u) {
    return get_constant(false); // 0 · b
  }
  if (a.lit == 1u) {
    return b; // 1 · b
  }
  if (a == b) {
    return a;
  }
  if (a.lit == (b.lit ^ 1u)) {
    return get_constant(false); // b̄ · b
  }
  const uint64_t key = hash_key(a, b);
  if (const auto it = hash_.find(key); it != hash_.end()) {
    ++strash_hits_;
    return signal{it->second, false};
  }
  const node n = static_cast<node>(nodes_.size());
  and_node gate;
  gate.fanin[0] = a;
  gate.fanin[1] = b;
  nodes_.push_back(gate);
  fanouts_.emplace_back();
  fanouts_[a.get_node()].push_back(n);
  fanouts_[b.get_node()].push_back(n);
  hash_.emplace(key, n);
  ++num_gates_;
  return signal{n, false};
}

signal aig_network::create_nand(signal a, signal b)
{
  return !create_and(a, b);
}

signal aig_network::create_or(signal a, signal b)
{
  return !create_and(!a, !b);
}

signal aig_network::create_nor(signal a, signal b)
{
  return create_and(!a, !b);
}

signal aig_network::create_xor(signal a, signal b)
{
  return !create_and(!create_and(a, !b), !create_and(!a, b));
}

signal aig_network::create_xnor(signal a, signal b)
{
  return !create_xor(a, b);
}

signal aig_network::create_mux(signal s, signal t, signal e)
{
  return !create_and(!create_and(s, t), !create_and(!s, e));
}

signal aig_network::create_maj(signal a, signal b, signal c)
{
  return create_or(create_and(a, b),
                   create_or(create_and(a, c), create_and(b, c)));
}

uint32_t aig_network::create_po(signal f, std::string name)
{
  pos_.push_back(f);
  po_names_.push_back(std::move(name));
  return static_cast<uint32_t>(pos_.size() - 1u);
}

const std::string& aig_network::pi_name(uint32_t index) const
{
  return pi_names_.at(index);
}

const std::string& aig_network::po_name(uint32_t index) const
{
  return po_names_.at(index);
}

uint32_t aig_network::fanout_size(node n) const
{
  uint32_t count = static_cast<uint32_t>(fanouts_.at(n).size());
  for (const signal& po : pos_) {
    if (po.get_node() == n) {
      ++count;
    }
  }
  return count;
}

void aig_network::foreach_pi(const std::function<void(node)>& fn) const
{
  for (node n = 1u; n <= num_pis_; ++n) {
    fn(n);
  }
}

void aig_network::foreach_po(
    const std::function<void(signal, uint32_t)>& fn) const
{
  for (uint32_t i = 0; i < pos_.size(); ++i) {
    fn(pos_[i], i);
  }
}

void aig_network::foreach_gate(const std::function<void(node)>& fn) const
{
  // Live-node ids remain topologically sorted: gates are created after
  // their fanins and substitutions always rewire to smaller ids.
  for (node n = num_pis_ + 1u; n < nodes_.size(); ++n) {
    if (!nodes_[n].dead) {
      fn(n);
    }
  }
}

uint64_t aig_network::hash_key(signal a, signal b) noexcept
{
  return (uint64_t{a.lit} << 32u) | b.lit;
}

void aig_network::unhash(node n)
{
  const auto& gate = nodes_[n];
  signal a = gate.fanin[0];
  signal b = gate.fanin[1];
  normalize(a, b);
  const auto it = hash_.find(hash_key(a, b));
  if (it != hash_.end() && it->second == n) {
    hash_.erase(it);
  }
}

void aig_network::remove_fanout(node from, node gate)
{
  auto& list = fanouts_[from];
  const auto it = std::find(list.begin(), list.end(), gate);
  if (it != list.end()) {
    list.erase(it);
  }
}

uint32_t aig_network::substitute_node(
    node old_node, signal replacement,
    std::vector<std::pair<node, signal>>* cascades)
{
  std::vector<std::pair<node, signal>> queue;
  queue.emplace_back(old_node, replacement);
  uint32_t died = 0;

  // Resolves a signal through the chain of already-substituted nodes.
  std::vector<signal> repl(nodes_.size(), signal{0});
  std::vector<bool> has_repl(nodes_.size(), false);
  const auto resolve = [&](signal s) {
    while (has_repl[s.get_node()]) {
      const bool c = s.is_complemented();
      s = repl[s.get_node()];
      if (c) {
        s = !s;
      }
    }
    return s;
  };

  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const node o = queue[qi].first;
    if (nodes_[o].dead) {
      continue;
    }
    const signal r = resolve(queue[qi].second);
    if (r.get_node() == o) {
      continue;
    }
    if (!is_and(o)) {
      throw std::logic_error{"substitute_node: only AND gates can die"};
    }
    // Topological invariant: we only ever rewire to strictly earlier ids
    // (or constants); the sweepers guarantee this by merging the later
    // node onto the earlier one.
    assert(r.get_node() < o);

    unhash(o);
    nodes_[o].dead = true;
    repl[o] = r;
    has_repl[o] = true;
    ++died;
    if (cascades != nullptr) {
      cascades->emplace_back(o, r);
    }

    for (signal& po : pos_) {
      if (po.get_node() == o) {
        po = po.is_complemented() ? !r : r;
      }
    }

    const std::vector<node> outs = fanouts_[o];
    fanouts_[o].clear();
    for (const node g : outs) {
      if (nodes_[g].dead) {
        continue;
      }
      unhash(g);
      signal f0 = nodes_[g].fanin[0];
      signal f1 = nodes_[g].fanin[1];
      const signal other = f0.get_node() == o ? f1 : f0;
      if (f0.get_node() == o) {
        f0 = f0.is_complemented() ? !r : r;
      }
      if (f1.get_node() == o) {
        f1 = f1.is_complemented() ? !r : r;
      }
      normalize(f0, f1);

      // Trivial reductions expose a merge of g itself.
      if (f0.lit == 0u || f0.lit == (f1.lit ^ 1u)) {
        remove_fanout(other.get_node(), g);
        queue.emplace_back(g, get_constant(false));
        nodes_[g].fanin[0] = f0;
        nodes_[g].fanin[1] = f1;
        continue;
      }
      if (f0.lit == 1u || f0 == f1) {
        remove_fanout(other.get_node(), g);
        queue.emplace_back(g, f0.lit == 1u ? f1 : f0);
        nodes_[g].fanin[0] = f0;
        nodes_[g].fanin[1] = f1;
        continue;
      }

      const uint64_t key = hash_key(f0, f1);
      if (const auto it = hash_.find(key); it != hash_.end() && it->second != g) {
        // Structural duplicate: merge the later of (g, holder) onto the
        // earlier to preserve the id-order invariant.
        const node h = it->second;
        nodes_[g].fanin[0] = f0;
        nodes_[g].fanin[1] = f1;
        fanouts_[r.get_node()].push_back(g);
        if (h < g) {
          remove_fanout(other.get_node(), g);
          remove_fanout(r.get_node(), g);
          queue.emplace_back(g, signal{h, false});
        } else {
          hash_.erase(it);
          hash_.emplace(key, g);
          queue.emplace_back(h, signal{g, false});
        }
        continue;
      }

      nodes_[g].fanin[0] = f0;
      nodes_[g].fanin[1] = f1;
      hash_.emplace(key, g);
      fanouts_[r.get_node()].push_back(g);
    }
  }

  num_gates_ -= died;
  return died;
}

uint32_t aig_network::cleanup_dangling()
{
  std::vector<bool> reachable(nodes_.size(), false);
  std::vector<node> stack;
  reachable[0] = true;
  for (node n = 1u; n <= num_pis_; ++n) {
    reachable[n] = true;
  }
  for (const signal& po : pos_) {
    if (!reachable[po.get_node()]) {
      reachable[po.get_node()] = true;
      stack.push_back(po.get_node());
    }
  }
  while (!stack.empty()) {
    const node n = stack.back();
    stack.pop_back();
    for (const signal f : {nodes_[n].fanin[0], nodes_[n].fanin[1]}) {
      if (!reachable[f.get_node()]) {
        reachable[f.get_node()] = true;
        if (is_and(f.get_node())) {
          stack.push_back(f.get_node());
        }
      }
    }
  }

  uint32_t died = 0;
  for (node n = static_cast<node>(nodes_.size()); n-- > num_pis_ + 1u;) {
    if (nodes_[n].dead || reachable[n]) {
      continue;
    }
    unhash(n);
    remove_fanout(nodes_[n].fanin[0].get_node(), n);
    remove_fanout(nodes_[n].fanin[1].get_node(), n);
    fanouts_[n].clear();
    nodes_[n].dead = true;
    ++died;
  }
  num_gates_ -= died;
  return died;
}

} // namespace stps::net
