/// \file aig.hpp
/// \brief And-Inverter Graph with structural hashing and node substitution.
///
/// The AIG is the working representation of both sweepers (§IV) and the
/// `TA` rows of Table I.  Nodes are addressed by dense ids; *signals* are
/// literals `2*node + complement`.  Node 0 is the constant zero.  The
/// network maintains:
///
///   * a structural hash (one-level strashing with the four trivial AND
///     reductions), so equal-structure gates are never duplicated;
///   * fanout lists, required by `substitute_node` — the FRAIG "replace"
///     operation that rewires all fanouts of a proven-equivalent node and
///     cascades any merges the rewiring exposes;
///   * dead flags: substituted or unreferenced gates stay in the id space
///     (ids are never recycled) but are excluded from counts & traversals.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace stps::net {

/// Dense node id; 0 is the constant-zero node.
using node = uint32_t;

/// Signal: a node with optional complement, encoded as literal 2n+c.
struct signal
{
  uint32_t lit = 0;

  signal() = default;
  constexpr explicit signal(uint32_t literal) noexcept : lit{literal} {}
  constexpr signal(node n, bool complemented) noexcept
      : lit{(n << 1u) | (complemented ? 1u : 0u)}
  {
  }

  constexpr node get_node() const noexcept { return lit >> 1u; }
  constexpr bool is_complemented() const noexcept { return lit & 1u; }
  constexpr signal operator!() const noexcept { return signal{lit ^ 1u}; }
  constexpr signal operator+() const noexcept { return signal{lit & ~1u}; }
  constexpr bool operator==(const signal&) const noexcept = default;
};

/// And-Inverter Graph.
class aig_network
{
public:
  aig_network();

  /// \name Construction
  /// \{
  signal get_constant(bool value) const noexcept;
  signal create_pi(std::string name = {});
  /// Strashed AND with the trivial reductions (a·0=0, a·1=a, a·a=a,
  /// a·¬a=0).
  signal create_and(signal a, signal b);
  signal create_nand(signal a, signal b);
  signal create_or(signal a, signal b);
  signal create_nor(signal a, signal b);
  signal create_xor(signal a, signal b);
  signal create_xnor(signal a, signal b);
  /// if s then t else e.
  signal create_mux(signal s, signal t, signal e);
  signal create_maj(signal a, signal b, signal c);
  uint32_t create_po(signal f, std::string name = {});
  /// \}

  /// \name Structure queries
  /// \{
  /// Total id count, including constant, PIs, and dead nodes.
  std::size_t size() const noexcept { return nodes_.size(); }
  uint32_t num_pis() const noexcept { return num_pis_; }
  uint32_t num_pos() const noexcept
  {
    return static_cast<uint32_t>(pos_.size());
  }
  /// Live AND gates only.
  uint32_t num_gates() const noexcept { return num_gates_; }

  bool is_constant(node n) const noexcept { return n == 0u; }
  bool is_pi(node n) const noexcept { return n >= 1u && n <= num_pis_; }
  bool is_and(node n) const noexcept
  {
    return n > num_pis_ && n < nodes_.size();
  }
  bool is_dead(node n) const noexcept { return nodes_[n].dead; }

  signal fanin0(node n) const noexcept { return nodes_[n].fanin[0]; }
  signal fanin1(node n) const noexcept { return nodes_[n].fanin[1]; }

  node pi_at(uint32_t index) const noexcept { return 1u + index; }
  signal po_at(uint32_t index) const { return pos_.at(index); }
  const std::string& pi_name(uint32_t index) const;
  const std::string& po_name(uint32_t index) const;

  /// Gate fanout nodes (live gates whose fanin references \p n).
  const std::vector<node>& fanout(node n) const { return fanouts_.at(n); }
  /// Fanout size counting POs as one reference each.
  uint32_t fanout_size(node n) const;
  /// \}

  /// \name Iteration (live nodes only)
  /// \{
  void foreach_pi(const std::function<void(node)>& fn) const;
  void foreach_po(const std::function<void(signal, uint32_t)>& fn) const;
  void foreach_gate(const std::function<void(node)>& fn) const;
  /// \}

  /// \name Rewriting
  /// \{
  /// Replaces every reference to \p old_node with \p replacement, updating
  /// the structural hash and cascading any merges this exposes (the FRAIG
  /// replace).  \p old_node becomes dead.  Returns the number of gates
  /// that died (including cascades).  When \p cascades is non-null, every
  /// death is appended as (dead node, resolved function-identical
  /// replacement signal) — deferred-merge committers use this to keep a
  /// global replacement map across calls, since the internal resolution
  /// chain is otherwise per-call state.
  uint32_t substitute_node(node old_node, signal replacement,
                           std::vector<std::pair<node, signal>>* cascades
                           = nullptr);

  /// Marks gates unreachable from any PO dead.  Returns how many died.
  uint32_t cleanup_dangling();
  /// \}

  /// Monotonically increasing count of structural-hash hits (diagnostics).
  uint64_t strash_hits() const noexcept { return strash_hits_; }

private:
  struct and_node
  {
    signal fanin[2] = {signal{0}, signal{0}};
    bool dead = false;
  };

  static uint64_t hash_key(signal a, signal b) noexcept;
  void unhash(node n);
  void rehash_or_merge(node n, std::vector<std::pair<node, signal>>& queue);
  void remove_fanout(node from, node gate);

  std::vector<and_node> nodes_;
  std::vector<std::vector<node>> fanouts_;
  std::vector<signal> pos_;
  std::vector<std::string> pi_names_;
  std::vector<std::string> po_names_;
  std::unordered_map<uint64_t, node> hash_;
  uint32_t num_pis_ = 0;
  uint32_t num_gates_ = 0;
  uint64_t strash_hits_ = 0;
};

} // namespace stps::net
