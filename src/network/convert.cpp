#include "network/convert.hpp"

namespace stps::net {

aig_to_klut_result aig_to_klut(const aig_network& aig)
{
  aig_to_klut_result result;
  result.node_map.assign(aig.size(), 0u);
  result.node_map[0] = result.klut.get_constant(false);
  aig.foreach_pi([&](node n) {
    result.node_map[n] = result.klut.create_pi(aig.pi_name(n - 1u));
  });

  // AND truth tables with fanin complements folded in (var0 = fanin0).
  const tt::truth_table and_tables[4] = {
      tt::truth_table{2u, {0x8ull}}, //  a ·  b  (minterm 3)
      tt::truth_table{2u, {0x4ull}}, // ¬a ·  b  (minterm 2: a=0, b=1)
      tt::truth_table{2u, {0x2ull}}, //  a · ¬b  (minterm 1: a=1, b=0)
      tt::truth_table{2u, {0x1ull}}, // ¬a · ¬b  (minterm 0)
  };
  aig.foreach_gate([&](node n) {
    const signal a = aig.fanin0(n);
    const signal b = aig.fanin1(n);
    const klut_network::node fis[2] = {result.node_map[a.get_node()],
                                       result.node_map[b.get_node()]};
    const auto& table = and_tables[(a.is_complemented() ? 1u : 0u) |
                                   (b.is_complemented() ? 2u : 0u)];
    result.node_map[n] = result.klut.create_node(fis, table);
  });

  aig.foreach_po([&](signal f, uint32_t index) {
    klut_network::node source = result.node_map[f.get_node()];
    if (f.is_complemented()) {
      if (aig.is_constant(f.get_node())) {
        source = result.klut.get_constant(true);
      } else {
        const klut_network::node fis[1] = {source};
        source = result.klut.create_node(fis, tt::truth_table{1u, {0x1ull}});
      }
    }
    result.klut.create_po(source, aig.po_name(index));
  });
  return result;
}

} // namespace stps::net
