#include "network/klut.hpp"

#include <algorithm>
#include <stdexcept>

namespace stps::net {

klut_network::klut_network()
{
  // Constant 0 and constant 1 nodes.
  tables_.emplace_back(0u);
  tt::truth_table one{0u};
  one.set_bit(0u, true);
  tables_.push_back(one);
  fanins_.emplace_back();
  fanins_.emplace_back();
  fanouts_.emplace_back();
  fanouts_.emplace_back();
}

klut_network::node klut_network::get_constant(bool value) const noexcept
{
  return value ? 1u : 0u;
}

klut_network::node klut_network::create_pi(std::string name)
{
  if (frozen_pis_) {
    throw std::logic_error{"create_pi: PIs must precede gates"};
  }
  tables_.emplace_back(0u);
  fanins_.emplace_back();
  fanouts_.emplace_back();
  ++num_pis_;
  pi_names_.push_back(std::move(name));
  return static_cast<node>(tables_.size() - 1u);
}

klut_network::node klut_network::create_node(std::span<const node> fanins,
                                             tt::truth_table table)
{
  if (table.num_vars() != fanins.size()) {
    throw std::invalid_argument{"create_node: arity mismatch"};
  }
  const node self = static_cast<node>(tables_.size());
  for (node f : fanins) {
    if (f >= self) {
      throw std::invalid_argument{"create_node: fanin id out of range"};
    }
  }
  frozen_pis_ = true;
  max_fanin_ = std::max<uint32_t>(max_fanin_,
                                  static_cast<uint32_t>(fanins.size()));
  tables_.push_back(std::move(table));
  fanins_.emplace_back(fanins.begin(), fanins.end());
  fanouts_.emplace_back();
  for (node f : fanins) {
    // A gate may reference the same fanin through several slots; record it
    // once.  Ids only grow, so `self` can only collide with the tail.
    if (fanouts_[f].empty() || fanouts_[f].back() != self) {
      fanouts_[f].push_back(self);
    }
  }
  return self;
}

uint32_t klut_network::create_po(node f, std::string name)
{
  if (f >= tables_.size()) {
    throw std::invalid_argument{"create_po: unknown node"};
  }
  pos_.push_back(f);
  po_names_.push_back(std::move(name));
  return static_cast<uint32_t>(pos_.size() - 1u);
}

void klut_network::foreach_pi(const std::function<void(node)>& fn) const
{
  for (node n = 2u; n < 2u + num_pis_; ++n) {
    fn(n);
  }
}

void klut_network::foreach_gate(const std::function<void(node)>& fn) const
{
  for (node n = 2u + num_pis_; n < tables_.size(); ++n) {
    fn(n);
  }
}

void klut_network::foreach_po(
    const std::function<void(node, uint32_t)>& fn) const
{
  for (uint32_t i = 0; i < pos_.size(); ++i) {
    fn(pos_[i], i);
  }
}

} // namespace stps::net
