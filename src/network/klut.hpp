/// \file klut.hpp
/// \brief k-input lookup-table networks.
///
/// The k-LUT network is the object the paper's simulator targets (§III):
/// each gate holds an arbitrary truth table over up to k inputs, so
/// bitwise AND/OR word tricks no longer apply directly and the simulator
/// must evaluate tables — either bit by bit (the baseline) or as one STP
/// matrix pass (the contribution).  Networks are built by LUT mapping an
/// AIG (src/cut/lut_mapper) or directly via `create_node`.
#pragma once

#include "tt/truth_table.hpp"

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace stps::net {

/// k-LUT network with dense node ids; id 0 is constant zero.  Nodes are
/// immutable once created and ids are topologically sorted by
/// construction.  Static fanout lists (mirroring aig_network's) are
/// maintained incrementally by `create_node`, so event-driven simulators
/// can propagate a changed value forward instead of scanning every gate
/// for dirty fanins.
class klut_network
{
public:
  using node = uint32_t;

  klut_network();

  node get_constant(bool value) const noexcept;
  node create_pi(std::string name = {});

  /// Creates a LUT gate; \p table must have exactly `fanins.size()`
  /// variables (fanin i = table variable i, LSB-first), and every fanin id
  /// must already exist.
  node create_node(std::span<const node> fanins, tt::truth_table table);

  uint32_t create_po(node f, std::string name = {});

  std::size_t size() const noexcept { return tables_.size(); }
  uint32_t num_pis() const noexcept { return num_pis_; }
  uint32_t num_pos() const noexcept
  {
    return static_cast<uint32_t>(pos_.size());
  }
  uint32_t num_gates() const noexcept
  {
    return static_cast<uint32_t>(size()) - num_pis_ - 2u;
  }

  bool is_constant(node n) const noexcept { return n <= 1u; }
  bool is_pi(node n) const noexcept { return n >= 2u && n < 2u + num_pis_; }
  bool is_gate(node n) const noexcept { return n >= 2u + num_pis_; }

  const std::vector<node>& fanins(node n) const { return fanins_.at(n); }
  const tt::truth_table& table(node n) const { return tables_.at(n); }
  uint32_t fanin_count(node n) const
  {
    return static_cast<uint32_t>(fanins_.at(n).size());
  }

  /// Gates whose fanin list references \p n (each gate listed once, even
  /// when it references \p n through several fanin slots), in increasing
  /// id order.  PO references are not included.
  const std::vector<node>& fanout(node n) const { return fanouts_.at(n); }
  uint32_t fanout_count(node n) const
  {
    return static_cast<uint32_t>(fanouts_.at(n).size());
  }

  node pi_at(uint32_t index) const noexcept { return 2u + index; }
  node po_at(uint32_t index) const { return pos_.at(index); }

  /// Largest fanin count over all gates.
  uint32_t max_fanin_size() const noexcept { return max_fanin_; }

  void foreach_pi(const std::function<void(node)>& fn) const;
  void foreach_gate(const std::function<void(node)>& fn) const;
  void foreach_po(const std::function<void(node, uint32_t)>& fn) const;

private:
  // Node 0 = constant 0, node 1 = constant 1; tables_ aligned with ids.
  std::vector<tt::truth_table> tables_;
  std::vector<std::vector<node>> fanins_;
  std::vector<std::vector<node>> fanouts_;
  std::vector<node> pos_;
  std::vector<std::string> pi_names_;
  std::vector<std::string> po_names_;
  uint32_t num_pis_ = 0;
  uint32_t max_fanin_ = 0;
  bool frozen_pis_ = false;
};

} // namespace stps::net
