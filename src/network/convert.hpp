/// \file convert.hpp
/// \brief Structure-preserving AIG → k-LUT conversion.
///
/// Each AND gate (with its edge complements folded into the table)
/// becomes one 2-input LUT; complemented POs gain an inverter LUT.  This
/// is the 1:1 view the STP sweeper collapses with tree cuts (§IV-A) and
/// the reference conversion tests compare the mapper against.
#pragma once

#include "network/aig.hpp"
#include "network/klut.hpp"

#include <vector>

namespace stps::net {

struct aig_to_klut_result
{
  klut_network klut;
  /// AIG node id → klut node id (valid for constant, PIs, live gates).
  std::vector<klut_network::node> node_map;
  /// klut value is the AIG node's value (complements folded into gates,
  /// so the polarity always matches).
};

aig_to_klut_result aig_to_klut(const aig_network& aig);

} // namespace stps::net
