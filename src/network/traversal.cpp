#include "network/traversal.hpp"

#include <algorithm>

namespace stps::net {

std::vector<node> topo_order(const aig_network& aig)
{
  std::vector<node> order;
  order.reserve(aig.num_gates());
  aig.foreach_gate([&](node n) { order.push_back(n); });
  return order;
}

std::vector<node> reverse_topo_order(const aig_network& aig)
{
  std::vector<node> order = topo_order(aig);
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<uint32_t> levels(const aig_network& aig)
{
  std::vector<uint32_t> level(aig.size(), 0u);
  aig.foreach_gate([&](node n) {
    level[n] = 1u + std::max(level[aig.fanin0(n).get_node()],
                             level[aig.fanin1(n).get_node()]);
  });
  return level;
}

uint32_t depth(const aig_network& aig)
{
  const std::vector<uint32_t> level = levels(aig);
  uint32_t d = 0;
  aig.foreach_po([&](signal f, uint32_t) {
    d = std::max(d, level[f.get_node()]);
  });
  return d;
}

std::vector<node> transitive_fanin(const aig_network& aig, node root,
                                   std::size_t limit)
{
  std::vector<node> result;
  if (!aig.is_and(root)) {
    return result;
  }
  std::vector<bool> seen(aig.size(), false);
  seen[root] = true;
  std::vector<node> stack{root};
  while (!stack.empty() && result.size() < limit) {
    const node n = stack.back();
    stack.pop_back();
    for (const signal f : {aig.fanin0(n), aig.fanin1(n)}) {
      const node m = f.get_node();
      if (seen[m] || aig.is_constant(m)) {
        continue;
      }
      seen[m] = true;
      result.push_back(m);
      if (result.size() >= limit) {
        break;
      }
      if (aig.is_and(m)) {
        stack.push_back(m);
      }
    }
  }
  return result;
}

bool in_transitive_fanout(const aig_network& aig, node ancestor,
                          node descendant)
{
  if (ancestor == descendant) {
    return true;
  }
  std::vector<bool> seen(aig.size(), false);
  std::vector<node> stack{ancestor};
  seen[ancestor] = true;
  while (!stack.empty()) {
    const node n = stack.back();
    stack.pop_back();
    for (const node g : aig.fanout(n)) {
      if (aig.is_dead(g) || seen[g]) {
        continue;
      }
      if (g == descendant) {
        return true;
      }
      seen[g] = true;
      stack.push_back(g);
    }
  }
  return false;
}

std::vector<node> support(const aig_network& aig, node root)
{
  std::vector<node> pis;
  if (aig.is_pi(root)) {
    pis.push_back(root);
    return pis;
  }
  if (!aig.is_and(root)) {
    return pis;
  }
  std::vector<bool> seen(aig.size(), false);
  std::vector<node> stack{root};
  seen[root] = true;
  while (!stack.empty()) {
    const node n = stack.back();
    stack.pop_back();
    for (const signal f : {aig.fanin0(n), aig.fanin1(n)}) {
      const node m = f.get_node();
      if (seen[m]) {
        continue;
      }
      seen[m] = true;
      if (aig.is_pi(m)) {
        pis.push_back(m);
      } else if (aig.is_and(m)) {
        stack.push_back(m);
      }
    }
  }
  std::sort(pis.begin(), pis.end());
  return pis;
}

bool bounded_support(const aig_network& aig, std::span<const node> roots,
                     std::size_t max_size, std::vector<node>& out)
{
  out.clear();
  std::vector<bool> seen(aig.size(), false);
  std::vector<node> stack;
  for (const node r : roots) {
    if (!seen[r]) {
      seen[r] = true;
      if (aig.is_pi(r)) {
        out.push_back(r);
      } else if (aig.is_and(r)) {
        stack.push_back(r);
      }
    }
  }
  while (!stack.empty()) {
    const node n = stack.back();
    stack.pop_back();
    for (const signal f : {aig.fanin0(n), aig.fanin1(n)}) {
      const node m = f.get_node();
      if (seen[m]) {
        continue;
      }
      seen[m] = true;
      if (aig.is_pi(m)) {
        out.push_back(m);
        if (out.size() > max_size) {
          out.clear();
          return false;
        }
      } else if (aig.is_and(m)) {
        stack.push_back(m);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return true;
}

} // namespace stps::net
