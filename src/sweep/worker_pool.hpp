/// \file worker_pool.hpp
/// \brief Fixed thread pool with a deterministic job→worker mapping.
///
/// The parallel SAT phase partitions candidate equivalence classes into
/// shards and sweeps each shard with fully isolated state, so shard
/// trajectories are pure functions of their inputs — but the *mapping*
/// of shards onto OS threads must still be deterministic for per-worker
/// accounting (`sweep_stats::worker_sat_seconds`) to be meaningful
/// across runs.  This pool pins it statically: `run(jobs, job)` makes
/// worker `w` execute jobs `w, w + size(), w + 2·size(), …` in
/// ascending order, with no work stealing.  Workers are parked on a
/// condition variable between runs (a sweep issues one `run` per
/// parallel phase; pool reuse is for callers sweeping many networks).
///
/// Exceptions thrown by a job are caught per worker, the one from the
/// lowest job index wins deterministically, and `run` rethrows it on
/// the calling thread after every worker finished its batch.
#pragma once

#include <cstddef>
#include <functional>

#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace stps::sweep {

class worker_pool
{
public:
  /// Spawns \p workers parked threads.  0 workers is allowed: `run`
  /// then executes every job inline on the calling thread (the
  /// degenerate serial pool, used when callers clamp `threads - 1`).
  explicit worker_pool(unsigned workers);
  ~worker_pool();

  worker_pool(const worker_pool&) = delete;
  worker_pool& operator=(const worker_pool&) = delete;

  unsigned size() const noexcept { return count_; }

  /// Executes job(j) for every j in [0, jobs): worker w runs jobs
  /// w, w + size(), … in ascending order; blocks until all jobs
  /// finished, then rethrows the lowest-index job exception if any.
  /// Not reentrant (one `run` at a time).
  void run(std::size_t jobs, const std::function<void(std::size_t)>& job);

private:
  void worker_main(unsigned w);

  /// Fixed before any thread spawns; workers read it lock-free.
  unsigned count_ = 0;
  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t num_jobs_ = 0;
  uint64_t generation_ = 0;
  unsigned workers_done_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
  std::size_t first_error_job_ = 0;
};

} // namespace stps::sweep
