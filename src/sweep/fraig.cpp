#include "sweep/fraig.hpp"

#include "network/traversal.hpp"
#include "sat/cnf_manager.hpp"
#include "sim/bitwise_sim.hpp"
#include "sweep/equiv_classes.hpp"

#include <chrono>

namespace stps::sweep {

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start)
{
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

} // namespace

sweep_stats fraig_sweep(net::aig_network& aig, const fraig_params& params)
{
  sweep_stats stats;
  const auto t_total = clock_type::now();
  stats.gates_before = aig.num_gates();
  stats.levels_before = net::depth(aig);

  // The baseline keeps the same persistent cone-reuse CNF as the STP
  // sweeper (one solver, gate→literal cache) with no garbage policy —
  // the paper's comparison is about guidance and simulation, not the
  // SAT plumbing.
  sat::cnf_manager cnf{aig};

  // Initial simulation (guided, like `&fraig -x`) and candidate classes.
  sim::pattern_set patterns;
  if (params.use_guided_patterns) {
    guided_pattern_config config;
    config.base_patterns = params.num_patterns;
    config.seed = params.seed;
    guided_pattern_result guided = sat_guided_patterns(aig, cnf, config);
    patterns = std::move(guided.patterns);
    stats.sat_calls_total += guided.sat_calls;
    stats.sim_seconds += guided.sim_seconds;
    stats.sat_seconds += guided.sat_seconds;
    for (const auto& [n, value] : guided.proven_constants) {
      if (!aig.is_dead(n)) {
        ++stats.constant_merges;
        ++stats.merges;
        aig.substitute_node(n, aig.get_constant(value));
      }
    }
  } else {
    patterns = sim::pattern_set::random(aig.num_pis(), params.num_patterns,
                                        params.seed);
  }
  auto t_sim = clock_type::now();
  sim::signature_store sig = sim::simulate_aig(aig, patterns);
  equiv_classes classes;
  classes.build(aig, sig, sim::tail_mask(patterns.num_patterns()));
  stats.sim_seconds += seconds_since(t_sim);

  const std::vector<net::node> order = net::topo_order(aig);
  for (const net::node n : order) {
    if (aig.is_dead(n)) {
      continue;
    }
    for (;;) {
      const uint32_t c = classes.class_of(n);
      if (c == equiv_classes::no_class) {
        break;
      }
      // Representative: the earliest live member preceding n.
      net::node rep = 0;
      bool have_rep = false;
      for (const net::node m : classes.members(c)) {
        if (m >= n) {
          break;
        }
        if (!aig.is_dead(m)) {
          rep = m;
          have_rep = true;
          break;
        }
      }
      if (!have_rep) {
        break; // n is (or became) the class representative
      }
      const bool complement = classes.complemented(n, rep);

      const auto t_sat = clock_type::now();
      ++stats.sat_calls_total;
      const sat::result r = cnf.prove_equivalent(
          net::signal{n, false}, net::signal{rep, false}, complement,
          params.conflict_budget);
      stats.sat_seconds += seconds_since(t_sat);

      if (r == sat::result::unsat) {
        classes.remove_member(n);
        if (aig.is_constant(rep)) {
          ++stats.constant_merges;
        }
        ++stats.merges;
        aig.substitute_node(n, net::signal{rep, complement});
        break;
      }
      if (r == sat::result::unknown) {
        ++stats.dont_touch;
        classes.remove_member(n);
        break;
      }
      // Counter-example: append, re-simulate the whole network
      // bit-parallel (the baseline's cost), refine every class.
      ++stats.sat_calls_satisfiable;
      ++stats.ce_patterns;
      const auto t_ce = clock_type::now();
      patterns.add_pattern(cnf.model_inputs());
      sim::resimulate_aig_last_word(aig, patterns, sig);
      classes.refine_with_word(sig, patterns.num_words() - 1u,
                               sim::tail_mask(patterns.num_patterns()));
      stats.sim_seconds += seconds_since(t_ce);
    }
  }

  aig.cleanup_dangling();
  stats.gates_after = aig.num_gates();
  stats.sat_nodes_encoded = cnf.nodes_encoded();
  stats.sat_solver_rebuilds = cnf.rebuilds();
  stats.sat_clauses_peak = cnf.clauses_peak();
  const sat::solver_stats solver_totals = cnf.solver_statistics();
  stats.sat_conflicts = solver_totals.conflicts;
  stats.sat_decisions = solver_totals.decisions;
  stats.sat_restarts = solver_totals.restarts;
  stats.total_seconds = seconds_since(t_total);
  return stats;
}

} // namespace stps::sweep
