#include "sweep/fraig.hpp"

#include "network/traversal.hpp"
#include "sat/cnf_manager.hpp"
#include "sim/bitwise_sim.hpp"
#include "sweep/equiv_classes.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

namespace stps::sweep {

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start)
{
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

} // namespace

sweep_stats fraig_sweep(net::aig_network& aig, const fraig_params& params)
{
  sweep_stats stats;
  const auto t_total = clock_type::now();
  stats.gates_before = aig.num_gates();
  stats.levels_before = net::depth(aig);

  // The baseline keeps the same persistent cone-reuse CNF as the STP
  // sweeper (one solver, gate→literal cache) with no garbage policy —
  // the paper's comparison is about guidance and simulation, not the
  // SAT plumbing.  Governance and fault injection ride along so the
  // comparator can be bounded/aborted the same way.
  sat::cnf_manager::params cnf_params;
  cnf_params.hooks = params.governor;
  cnf_params.faults = params.faults;
  sat::cnf_manager cnf{aig, cnf_params};

  const auto stopped = [governor = params.governor]() {
    return governor != nullptr && governor->should_stop();
  };
  const auto fill_cnf_stats = [&]() {
    stats.sat_nodes_encoded = cnf.nodes_encoded();
    stats.sat_solver_rebuilds = cnf.rebuilds();
    stats.sat_clauses_peak = cnf.clauses_peak();
    const sat::solver_stats solver_totals = cnf.solver_statistics();
    stats.sat_conflicts = solver_totals.conflicts;
    stats.sat_decisions = solver_totals.decisions;
    stats.sat_restarts = solver_totals.restarts;
    stats.sat_learnts_reduced = solver_totals.learnts_reduced;
    stats.sat_lbd_sum = solver_totals.lbd_sum;
    stats.sat_binary_clauses = solver_totals.binary_clauses;
    stats.sat_lits_collapsed = solver_totals.lits_collapsed;
    stats.sat_clauses_subsumed = solver_totals.clauses_subsumed;
    stats.sat_inprocess_seconds = solver_totals.inprocess_seconds;
  };

  // Initial simulation (guided, like `&fraig -x`) and candidate classes.
  sim::pattern_set patterns;
  if (params.use_guided_patterns) {
    guided_pattern_config config;
    config.base_patterns = params.num_patterns;
    config.seed = params.seed;
    config.governor = params.governor;
    guided_pattern_result guided = sat_guided_patterns(aig, cnf, config);
    patterns = std::move(guided.patterns);
    stats.sat_calls_total += guided.sat_calls;
    stats.sim_seconds += guided.sim_seconds;
    stats.sat_seconds += guided.sat_seconds;
    for (const auto& [n, value] : guided.proven_constants) {
      if (!aig.is_dead(n)) {
        ++stats.constant_merges;
        ++stats.merges;
        aig.substitute_node(n, aig.get_constant(value));
      }
    }
  } else {
    patterns = sim::pattern_set::random(aig.num_pis(), params.num_patterns,
                                        params.seed);
  }
  if (stopped()) {
    // Aborted during pattern generation: the constants applied above
    // are completed proofs — finalize the sound partial result.
    aig.cleanup_dangling();
    stats.gates_after = aig.num_gates();
    stats.outcome = params.governor->outcome();
    fill_cnf_stats();
    stats.total_seconds = seconds_since(t_total);
    return stats;
  }

  auto t_sim = clock_type::now();
  sim::signature_store sig = sim::simulate_aig(aig, patterns);
  equiv_classes classes;
  classes.build(aig, sig, sim::tail_mask(patterns.num_patterns()));
  stats.sim_seconds += seconds_since(t_sim);

  enum class cand_status : uint8_t
  {
    settled,
    gave_up,
    deferred,
    stopped,
  };

  // One candidate against its class representative.  Same escalating
  // unDET deferral as the STP sweeper (stp_sweeper.hpp point 6): while
  // \p allow_defer holds, `unknown` keeps the candidate in its class
  // for a retry round instead of removing it for good.
  const auto process_candidate = [&](const net::node n, int64_t budget,
                                     bool allow_defer) -> cand_status {
    for (;;) {
      const uint32_t c = classes.class_of(n);
      if (c == equiv_classes::no_class) {
        return cand_status::settled;
      }
      // Representative: the earliest live member preceding n.
      net::node rep = 0;
      bool have_rep = false;
      for (const net::node m : classes.members(c)) {
        if (m >= n) {
          break;
        }
        if (!aig.is_dead(m)) {
          rep = m;
          have_rep = true;
          break;
        }
      }
      if (!have_rep) {
        // n is (or became) the class representative
        return cand_status::settled;
      }
      const bool complement = classes.complemented(n, rep);

      const auto t_sat = clock_type::now();
      ++stats.sat_calls_total;
      const sat::result r = cnf.prove_equivalent(
          net::signal{n, false}, net::signal{rep, false}, complement,
          budget);
      stats.sat_seconds += seconds_since(t_sat);

      if (r == sat::result::unsat) {
        classes.remove_member(n);
        if (aig.is_constant(rep)) {
          ++stats.constant_merges;
        }
        ++stats.merges;
        aig.substitute_node(n, net::signal{rep, complement});
        return cand_status::settled;
      }
      if (r == sat::result::unknown) {
        if (stopped()) {
          return cand_status::stopped; // wind-down, not unDET
        }
        if (allow_defer) {
          return cand_status::deferred;
        }
        ++stats.dont_touch;
        classes.remove_member(n);
        return cand_status::gave_up;
      }
      // Counter-example: append, re-simulate the whole network
      // bit-parallel (the baseline's cost), refine every class.
      ++stats.sat_calls_satisfiable;
      ++stats.ce_patterns;
      const auto t_ce = clock_type::now();
      patterns.add_pattern(cnf.model_inputs());
      sim::resimulate_aig_last_word(aig, patterns, sig);
      classes.refine_with_word(sig, patterns.num_words() - 1u,
                               sim::tail_mask(patterns.num_patterns()));
      stats.sim_seconds += seconds_since(t_ce);
    }
  };

  const bool retries_on =
      params.conflict_budget >= 0 && params.undet_retry_rounds > 0u;
  std::vector<net::node> deferred;
  bool aborted = false;

  const std::vector<net::node> order = net::topo_order(aig);
  for (const net::node n : order) {
    if (stopped()) {
      aborted = true;
      break;
    }
    if (aig.is_dead(n)) {
      continue;
    }
    const cand_status status =
        process_candidate(n, params.conflict_budget, retries_on);
    if (status == cand_status::deferred) {
      deferred.push_back(n);
    } else if (status == cand_status::stopped) {
      aborted = true;
      break;
    }
  }

  // Escalating unDET retry rounds (same scheme as the STP sweeper).
  const int64_t factor =
      std::max<int64_t>(int64_t{params.undet_budget_factor}, 1);
  int64_t retry_budget = params.conflict_budget;
  std::vector<net::node> still_deferred;
  for (uint32_t round = 1;
       round <= params.undet_retry_rounds && !deferred.empty() && !aborted;
       ++round) {
    retry_budget =
        retry_budget > std::numeric_limits<int64_t>::max() / factor
            ? std::numeric_limits<int64_t>::max()
            : retry_budget * factor;
    const bool more_rounds = round < params.undet_retry_rounds;
    still_deferred.clear();
    for (const net::node n : deferred) {
      if (stopped()) {
        aborted = true;
        break;
      }
      if (aig.is_dead(n)) {
        ++stats.undet_resolved; // settled by a cascaded merge
        continue;
      }
      ++stats.undet_retries;
      switch (process_candidate(n, retry_budget, more_rounds)) {
        case cand_status::settled:
          ++stats.undet_resolved;
          break;
        case cand_status::deferred:
          still_deferred.push_back(n);
          break;
        case cand_status::stopped:
          aborted = true;
          break;
        case cand_status::gave_up:
          break;
      }
      if (aborted) {
        break;
      }
    }
    std::swap(deferred, still_deferred);
  }

  if (aborted && params.governor != nullptr) {
    stats.outcome = params.governor->outcome();
  }

  aig.cleanup_dangling();
  stats.gates_after = aig.num_gates();
  fill_cnf_stats();
  stats.total_seconds = seconds_since(t_total);
  return stats;
}

} // namespace stps::sweep
