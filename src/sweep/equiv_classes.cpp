#include "sweep/equiv_classes.hpp"

#include "sim/simd.hpp"

#include <algorithm>
#include <stdexcept>

namespace stps::sweep {

namespace {

/// splitmix64 finalizer: spreads exact partition keys over the
/// open-addressed scratch table.
uint64_t mix64(uint64_t x) noexcept
{
  x ^= x >> 30u;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27u;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31u;
  return x;
}

/// FNV-1a over a signature, normalized by phase; the final word is
/// restricted to its valid bits so zero padding is phase-neutral.
/// Word-at-a-time access keeps this valid on stores with word-major
/// tail blocks.
uint64_t signature_key(const sim::signature_store& sig, net::node n,
                       bool phase, uint64_t last_word_mask)
{
  const uint64_t flip = phase ? ~uint64_t{0} : 0u;
  const std::size_t words = sig.num_words();
  uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < words; ++i) {
    const uint64_t mask = i + 1u == words ? last_word_mask : ~uint64_t{0};
    h ^= (sig.word(n, i) ^ flip) & mask;
    h *= 1099511628211ull;
  }
  return h;
}

} // namespace

void equiv_classes::prepare_scratch(std::size_t count)
{
  std::size_t want = 16u;
  while (want < 2u * count) {
    want <<= 1u;
  }
  if (slot_key_.size() < want) {
    slot_key_.assign(want, 0u);
    slot_group_.assign(want, 0u);
    slot_stamp_.assign(want, 0u);
    stamp_ = 0u;
  }
  if (++stamp_ == 0u) { // stamp wrapped: every stale slot must invalidate
    std::fill(slot_stamp_.begin(), slot_stamp_.end(), 0u);
    stamp_ = 1u;
  }
}

uint32_t equiv_classes::partition_by_scratch_keys(std::size_t count)
{
  prepare_scratch(count);
  const std::size_t mask = slot_key_.size() - 1u;
  uint32_t groups = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const uint64_t key = keys_[i];
    std::size_t slot = mix64(key) & mask;
    for (;;) {
      if (slot_stamp_[slot] != stamp_) {
        slot_stamp_[slot] = stamp_;
        slot_key_[slot] = key;
        slot_group_[slot] = groups;
        group_of_[i] = groups++;
        break;
      }
      if (slot_key_[slot] == key) {
        group_of_[i] = slot_group_[slot];
        break;
      }
      slot = (slot + 1u) & mask;
    }
  }
  return groups;
}

std::size_t equiv_classes::apply_partition(uint32_t c, uint32_t num_groups,
                                           std::vector<uint32_t>* created_ids)
{
  const std::vector<net::node>& members = classes_[c];
  const std::size_t count = members.size();

  // Counting sort into gather_: stable, so each group inherits the
  // class's sorted member order and group 0 contains members.front().
  group_size_.assign(num_groups, 0u);
  for (std::size_t i = 0; i < count; ++i) {
    ++group_size_[group_of_[i]];
  }
  group_first_.resize(num_groups);
  group_cursor_.resize(num_groups);
  uint32_t offset = 0;
  for (uint32_t g = 0; g < num_groups; ++g) {
    group_first_[g] = offset;
    group_cursor_[g] = offset;
    offset += group_size_[g];
  }
  gather_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    gather_[group_cursor_[group_of_[i]]++] = members[i];
  }

  // Group 0 keeps id c; fresh sequential ids for the rest.
  const uint32_t base_id = static_cast<uint32_t>(classes_.size());
  for (uint32_t g = 1; g < num_groups; ++g) {
    const auto first = gather_.begin() + group_first_[g];
    new_class(std::vector<net::node>(first, first + group_size_[g]));
  }
  classes_[c].assign(gather_.begin(), gather_.begin() + group_size_[0]);
  dissolve_if_singleton(c);
  for (uint32_t g = 1; g < num_groups; ++g) {
    dissolve_if_singleton(base_id + g - 1u);
  }
  if (created_ids != nullptr) {
    for (uint32_t g = 1; g < num_groups; ++g) {
      created_ids->push_back(base_id + g - 1u);
    }
  }
  return num_groups - 1u;
}

void equiv_classes::build(const net::aig_network& aig,
                          const sim::signature_store& sig,
                          uint64_t last_word_mask)
{
  classes_.clear();
  live_classes_ = 0;
  class_id_.assign(aig.size(), no_class);
  phase_.assign(aig.size(), 0u);
  if (sig.num_words() == 0u) {
    return; // no simulation information, no candidates
  }

  // Candidate nodes in id order: constant zero, PIs, live gates.
  gather_.clear();
  gather_.push_back(0u);
  aig.foreach_pi([&](net::node n) { gather_.push_back(n); });
  aig.foreach_gate([&](net::node n) { gather_.push_back(n); });
  const std::size_t count = gather_.size();
  group_of_.resize(count);

  // Group by hash of the normalized signature via the dense scratch
  // table; a hash hit is verified word-by-word against the group's
  // representative, and a mismatch keeps probing, so equal-hash but
  // different-signature nodes end up in distinct groups.  At build time
  // the store is freshly simulated — node-major, no tail words, nothing
  // trimmed — so the compare runs the vectorized whole-row kernel over
  // contiguous rows; the word-at-a-time path stays as the fallback for
  // stores with tails or trims.
  const bool flat =
      sig.num_words() == sig.base_words() && sig.words_trimmed() == 0u;
  const auto equal_normalized = [&](net::node a, net::node b) {
    const uint64_t flip =
        (phase_[a] != phase_[b]) ? ~uint64_t{0} : uint64_t{0};
    const std::size_t words = sig.num_words();
    if (flat) {
      return sim::simd::rows_equal_normalized(
          sig.row(b).data(), sig.row(a).data(), flip, words, last_word_mask);
    }
    for (std::size_t i = 0; i < words; ++i) {
      const uint64_t mask =
          i + 1u == words ? last_word_mask : ~uint64_t{0};
      if ((sig.word(a, i) & mask) != ((sig.word(b, i) ^ flip) & mask)) {
        return false;
      }
    }
    return true;
  };

  prepare_scratch(count);
  const std::size_t mask = slot_key_.size() - 1u;
  group_first_.clear(); // representative element index per group
  uint32_t groups = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const net::node n = gather_[i];
    phase_[n] = sig.word(n, 0u) & 1u;
    const uint64_t key = signature_key(sig, n, phase_[n], last_word_mask);
    std::size_t slot = mix64(key) & mask;
    for (;;) {
      if (slot_stamp_[slot] != stamp_) {
        slot_stamp_[slot] = stamp_;
        slot_key_[slot] = key;
        slot_group_[slot] = groups;
        group_first_.push_back(static_cast<uint32_t>(i));
        group_of_[i] = groups++;
        break;
      }
      if (slot_key_[slot] == key &&
          equal_normalized(gather_[group_first_[slot_group_[slot]]], n)) {
        group_of_[i] = slot_group_[slot];
        break;
      }
      slot = (slot + 1u) & mask;
    }
  }

  // Classes for every group of two or more, in first-occurrence order.
  group_size_.assign(groups, 0u);
  for (std::size_t i = 0; i < count; ++i) {
    ++group_size_[group_of_[i]];
  }
  group_cursor_.resize(groups);
  uint32_t offset = 0;
  for (uint32_t g = 0; g < groups; ++g) {
    group_cursor_[g] = offset;
    offset += group_size_[g];
  }
  sorted_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    sorted_[group_cursor_[group_of_[i]]++] = gather_[i];
  }
  offset = 0;
  for (uint32_t g = 0; g < groups; ++g) {
    if (group_size_[g] >= 2u) {
      const auto first = sorted_.begin() + offset;
      new_class(std::vector<net::node>(first, first + group_size_[g]));
    }
    offset += group_size_[g];
  }
}

uint32_t equiv_classes::new_class(std::vector<net::node> nodes)
{
  const uint32_t id = static_cast<uint32_t>(classes_.size());
  for (const net::node n : nodes) {
    class_id_[n] = id;
  }
  classes_.push_back(std::move(nodes));
  ++live_classes_;
  return id;
}

std::size_t equiv_classes::refine_with_word(const sim::signature_store& sig,
                                            std::size_t word,
                                            uint64_t word_mask)
{
  std::size_t created = 0;
  const std::size_t existing = classes_.size();
  for (uint32_t c = 0; c < existing; ++c) {
    created += refine_class_with_word(c, sig, word, word_mask);
  }
  return created;
}

std::size_t equiv_classes::refine_class_with_word(
    uint32_t c, const sim::signature_store& sig, std::size_t word,
    uint64_t word_mask, std::vector<uint32_t>* created_ids)
{
  const std::vector<net::node>& members = classes_.at(c);
  const std::size_t count = members.size();
  if (count < 2u) {
    return 0;
  }
  // Partition members by their normalized word value — allocation-free
  // through the dense scratch core.  When the word has backing storage
  // the keys come from the vectorized strided gather; absent words
  // (beyond the store, trimmed) read as zero and take the scalar loop.
  const bool have_word = word < sig.num_words();
  keys_.resize(count);
  group_of_.resize(count);
  std::size_t stride = 0;
  const uint64_t* block =
      have_word ? sig.word_block(word, &stride) : nullptr;
  if (block != nullptr &&
      stride * (sig.size() > 0u ? sig.size() - 1u : 0u) <
          (std::size_t{1} << 31u)) {
    sim::simd::gather_normalized_keys(keys_.data(), members.data(), count,
                                      block, static_cast<uint32_t>(stride),
                                      phase_.data(), word_mask);
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      const net::node n = members[i];
      const uint64_t w =
          block != nullptr
              ? block[static_cast<std::size_t>(n) * stride]
              : (have_word ? sig.word(n, word) : 0u);
      keys_[i] = (w ^ (phase_[n] ? ~uint64_t{0} : 0u)) & word_mask;
    }
  }
  const uint32_t groups = partition_by_scratch_keys(count);
  if (groups == 1u) {
    return 0;
  }
  return apply_partition(c, groups, created_ids);
}

std::size_t equiv_classes::split_by_keys(uint32_t c,
                                         const std::vector<uint64_t>& keys)
{
  const std::vector<net::node>& members = classes_.at(c);
  const std::size_t count = members.size();
  if (keys.size() != count) {
    throw std::invalid_argument{"split_by_keys: key count mismatch"};
  }
  if (count < 2u) {
    return 0;
  }
  keys_.assign(keys.begin(), keys.end());
  group_of_.resize(count);
  const uint32_t groups = partition_by_scratch_keys(count);
  if (groups == 1u) {
    return 0;
  }
  return apply_partition(c, groups, nullptr);
}

void equiv_classes::remove_member(net::node n)
{
  const uint32_t c = class_of(n);
  if (c == no_class) {
    return;
  }
  auto& members = classes_[c];
  members.erase(std::remove(members.begin(), members.end(), n),
                members.end());
  class_id_[n] = no_class;
  dissolve_if_singleton(c);
}

void equiv_classes::dissolve_class(uint32_t c)
{
  auto& members = classes_.at(c);
  if (members.empty()) {
    return;
  }
  for (const net::node n : members) {
    class_id_[n] = no_class;
  }
  std::vector<net::node>{}.swap(members); // release the storage too
  --live_classes_;
}

void equiv_classes::dissolve_if_singleton(uint32_t c)
{
  auto& members = classes_[c];
  if (members.size() != 1u) {
    return; // larger classes stay; empty ones were dissolved already
  }
  class_id_[members.front()] = no_class;
  members.clear();
  --live_classes_;
}

std::size_t equiv_classes::num_candidate_nodes() const
{
  std::size_t count = 0;
  for (const auto& c : classes_) {
    count += c.size();
  }
  return count;
}

} // namespace stps::sweep
