#include "sweep/equiv_classes.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace stps::sweep {

namespace {

/// FNV-1a over a signature, normalized by phase; the final word is
/// restricted to its valid bits so zero padding is phase-neutral.
uint64_t signature_key(std::span<const uint64_t> sig, bool phase,
                       uint64_t last_word_mask)
{
  const uint64_t flip = phase ? ~uint64_t{0} : 0u;
  uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < sig.size(); ++i) {
    const uint64_t mask =
        i + 1u == sig.size() ? last_word_mask : ~uint64_t{0};
    h ^= (sig[i] ^ flip) & mask;
    h *= 1099511628211ull;
  }
  return h;
}

} // namespace

void equiv_classes::build(const net::aig_network& aig,
                          const sim::signature_store& sig,
                          uint64_t last_word_mask)
{
  classes_.clear();
  live_classes_ = 0;
  class_id_.assign(aig.size(), no_class);
  phase_.assign(aig.size(), false);
  if (sig.num_words() == 0u) {
    return; // no simulation information, no candidates
  }

  // Group by (hash of normalized signature); exact-equality verified by
  // comparing against the bucket representative to be hash-collision safe.
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  const auto equal_normalized = [&](net::node a, net::node b) {
    const uint64_t flip =
        (phase_[a] != phase_[b]) ? ~uint64_t{0} : uint64_t{0};
    const auto sa = sig.row(a);
    const auto sb = sig.row(b);
    for (std::size_t i = 0; i < sa.size(); ++i) {
      const uint64_t mask =
          i + 1u == sa.size() ? last_word_mask : ~uint64_t{0};
      if ((sa[i] & mask) != ((sb[i] ^ flip) & mask)) {
        return false;
      }
    }
    return true;
  };

  std::vector<std::vector<net::node>> groups;
  const auto insert_node = [&](net::node n) {
    phase_[n] = sig.word(n, 0u) & 1u;
    const uint64_t key = signature_key(sig.row(n), phase_[n], last_word_mask);
    auto& bucket = buckets[key];
    for (const uint32_t gi : bucket) {
      if (equal_normalized(groups[gi].front(), n)) {
        groups[gi].push_back(n);
        return;
      }
    }
    bucket.push_back(static_cast<uint32_t>(groups.size()));
    groups.push_back({n});
  };

  insert_node(0u); // constant-zero node
  aig.foreach_pi([&](net::node n) { insert_node(n); });
  aig.foreach_gate([&](net::node n) { insert_node(n); });

  for (auto& g : groups) {
    if (g.size() >= 2u) {
      new_class(std::move(g));
    }
  }
}

uint32_t equiv_classes::new_class(std::vector<net::node> nodes)
{
  const uint32_t id = static_cast<uint32_t>(classes_.size());
  for (const net::node n : nodes) {
    class_id_[n] = id;
  }
  classes_.push_back(std::move(nodes));
  ++live_classes_;
  return id;
}

std::size_t equiv_classes::refine_with_word(const sim::signature_store& sig,
                                            std::size_t word,
                                            uint64_t word_mask)
{
  std::size_t created = 0;
  const std::size_t existing = classes_.size();
  for (uint32_t c = 0; c < existing; ++c) {
    created += refine_class_with_word(c, sig, word, word_mask);
  }
  return created;
}

std::size_t equiv_classes::refine_class_with_word(
    uint32_t c, const sim::signature_store& sig, std::size_t word,
    uint64_t word_mask, std::vector<uint32_t>* created_ids)
{
  auto& members = classes_.at(c);
  if (members.size() < 2u) {
    return 0;
  }
  // Group members by their normalized word value.
  std::unordered_map<uint64_t, std::vector<net::node>> parts;
  for (const net::node n : members) {
    const uint64_t w = word < sig.num_words() ? sig.word(n, word) : 0u;
    parts[(w ^ (phase_[n] ? ~uint64_t{0} : 0u)) & word_mask].push_back(n);
  }
  if (parts.size() == 1u) {
    return 0;
  }
  // The group containing the first (lowest-id) member keeps the id; note
  // `members` may dangle once new_class grows classes_, so copy what we
  // need first.
  const net::node keep = members.front();
  std::vector<net::node> kept;
  std::vector<uint32_t> fresh;
  for (auto& [key, part] : parts) {
    std::sort(part.begin(), part.end());
    if (part.front() == keep) {
      kept = std::move(part);
    } else {
      fresh.push_back(new_class(std::move(part)));
    }
  }
  classes_[c] = std::move(kept);
  dissolve_if_singleton(c);
  for (const uint32_t f : fresh) {
    dissolve_if_singleton(f);
  }
  if (created_ids != nullptr) {
    created_ids->insert(created_ids->end(), fresh.begin(), fresh.end());
  }
  return fresh.size();
}

std::size_t equiv_classes::split_by_keys(uint32_t c,
                                         const std::vector<uint64_t>& keys)
{
  auto& members = classes_.at(c);
  if (keys.size() != members.size()) {
    throw std::invalid_argument{"split_by_keys: key count mismatch"};
  }
  std::unordered_map<uint64_t, std::vector<net::node>> parts;
  for (std::size_t i = 0; i < members.size(); ++i) {
    parts[keys[i]].push_back(members[i]);
  }
  if (parts.size() == 1u) {
    return 0;
  }
  std::size_t created = 0;
  const net::node keep = members.front();
  std::vector<net::node> kept;
  std::vector<uint32_t> fresh;
  for (auto& [key, part] : parts) {
    std::sort(part.begin(), part.end());
    if (part.front() == keep) {
      kept = std::move(part);
    } else {
      ++created;
      fresh.push_back(new_class(std::move(part)));
    }
  }
  classes_[c] = std::move(kept);
  dissolve_if_singleton(c);
  for (const uint32_t f : fresh) {
    dissolve_if_singleton(f);
  }
  return created;
}

void equiv_classes::remove_member(net::node n)
{
  const uint32_t c = class_of(n);
  if (c == no_class) {
    return;
  }
  auto& members = classes_[c];
  members.erase(std::remove(members.begin(), members.end(), n),
                members.end());
  class_id_[n] = no_class;
  dissolve_if_singleton(c);
}

void equiv_classes::dissolve_if_singleton(uint32_t c)
{
  auto& members = classes_[c];
  if (members.size() != 1u) {
    return; // larger classes stay; empty ones were dissolved already
  }
  class_id_[members.front()] = no_class;
  members.clear();
  --live_classes_;
}

std::size_t equiv_classes::num_candidate_nodes() const
{
  std::size_t count = 0;
  for (const auto& c : classes_) {
    count += c.size();
  }
  return count;
}

} // namespace stps::sweep
