/// \file stp_sweeper.hpp
/// \brief The paper's STP-based SAT-sweeping framework (§IV, Algorithm 2).
///
/// Differences from the baseline FRAIG sweeper (fraig.hpp), exactly the
/// paper's contributions:
///
/// 1. **SAT-guided initial patterns** (§IV-A, two rounds): constants are
///    proven and propagated up front, and near-constant signatures are
///    diversified, so the initial equivalence classes contain far fewer
///    false candidates.
/// 2. **Reverse topological candidate order** with complement-aware
///    generalized classes (Alg. 2 lines 4, 10-11).
/// 3. **TFI-bounded driver selection** (lines 12-17; limit n = 1000).
/// 4. **Exhaustive window resolution**: a class whose members' combined
///    support fits in a window (< 16 leaves) is resolved *exactly* by
///    STP simulation over exhaustive patterns — remaining members are
///    provably equivalent and merge without any SAT call, and false
///    members are split away without producing counter-examples.
/// 5. **STP counter-example simulation**: when SAT does return a CE, only
///    nodes in equivalence classes are re-simulated, on a k-LUT network
///    collapsed with the tree-cut algorithm (§III-B) — not the whole AIG.
/// 6. **unDET handling**: budget-exhausted queries mark the candidate
///    don't-touch (lines 19-21).
/// 7. **Batched counter-example refinement** (classic FRAIG batching):
///    CE bits are buffered into the open tail word by an event-driven
///    single-bit pass, and classes are re-partitioned lazily — the
///    current candidate's class when it needs the fresh bits to make
///    progress, any other class when the loop advances to it, and all
///    classes at once when the word fills with 64 CEs — instead of
///    paying a full-word re-simulation + global refinement per CE.
#pragma once

#include "network/aig.hpp"
#include "sweep/sat_patterns.hpp"
#include "sweep/sweep_stats.hpp"

#include <cstdint>

namespace stps::sweep {

struct stp_sweep_params
{
  guided_pattern_config guided{};  ///< initial pattern generation
  bool use_guided_patterns = true; ///< ablation B: false = random only
  bool use_window_resolution = true; ///< ablation: exhaustive windows
  bool use_collapsed_ce_simulation = true; ///< ablation: STP CE windows
  /// Ablation: false reverts to eager one-CE-per-word refinement (every
  /// counter-example immediately refines every class).  Both settings
  /// produce the same merges and final network; batching only changes
  /// when the partition work is paid.
  bool use_batched_ce_refinement = true;

  int64_t conflict_budget = -1;  ///< equivalence queries; -1 = unlimited
  std::size_t tfi_limit = 1000;  ///< Alg. 2 line 1
  uint32_t window_max_support = 15; ///< "< 16 leaves" (§IV-A)
  uint32_t collapse_limit = 8;   ///< tree-cut leaf bound for CE windows
};

/// Sweeps \p aig in place; returns the Table II counters.
sweep_stats stp_sweep(net::aig_network& aig, const stp_sweep_params& params);

} // namespace stps::sweep
