/// \file stp_sweeper.hpp
/// \brief The paper's STP-based SAT-sweeping framework (§IV, Algorithm 2).
///
/// Differences from the baseline FRAIG sweeper (fraig.hpp), exactly the
/// paper's contributions:
///
/// 1. **SAT-guided initial patterns** (§IV-A, two rounds): constants are
///    proven and propagated up front, and near-constant signatures are
///    diversified, so the initial equivalence classes contain far fewer
///    false candidates.
/// 2. **Reverse topological candidate order** with complement-aware
///    generalized classes (Alg. 2 lines 4, 10-11).
/// 3. **TFI-bounded driver selection** (lines 12-17; limit n = 1000).
/// 4. **Exhaustive window resolution**: a class whose members' combined
///    support fits in a window (< 16 leaves) is resolved *exactly* by
///    word-parallel simulation of exhaustive patterns over the members'
///    *union* cone (one shared pass, no truth-table composition) —
///    remaining members are provably equivalent and merge without any
///    SAT call, and false members are split away without producing
///    counter-examples.
/// 5. **STP counter-example simulation**: when SAT does return a CE, only
///    nodes in equivalence classes are re-simulated, on a k-LUT network
///    collapsed with the tree-cut algorithm (§III-B) — not the whole
///    AIG.  Absorbing one CE is *output-sensitive*: a fanout-driven
///    bitset worklist (sweep/ce_simulator.hpp) touches only the cone the
///    CE disturbs.  Counter-example propagation is a selectable *engine*
///    (sweep/ce_engine.hpp): profiling shows the collapsed view's build
///    cost loses to plain whole-AIG word resimulation on sub-10k-gate
///    instances, so `ce_engine = auto` dispatches by gate count; both
///    engines are proven result-identical by the differential harness.
/// 6. **unDET handling with escalating retry**: the paper marks a
///    budget-exhausted candidate don't-touch permanently (lines 19-21);
///    here an `unknown` verdict *defers* the candidate into a retry
///    queue instead.  After the main pass the queue is re-queried in up
///    to `undet_retry_rounds` rounds with the per-query budget
///    multiplied by `undet_budget_factor` each round — easy-but-unlucky
///    queries settle cheaply, genuinely hard ones still end as
///    `dont_touch` after the last round.  With an unlimited
///    `conflict_budget` (the default) no query can answer unknown and
///    the behavior is exactly the paper's.  A `resource_governor` can
///    additionally bound the whole sweep (deadline / global conflict
///    pool / cancellation); aborting applies only proven merges and
///    tags `sweep_stats::outcome`.
/// 7. **Batched counter-example refinement** (classic FRAIG batching):
///    CE bits are buffered into the open tail word by the event-driven
///    single-bit pass, and classes are re-partitioned lazily — the
///    current candidate's class when it needs the fresh bits to make
///    progress, any other class when the loop advances to it, and all
///    classes at once when the word fills with 64 CEs — instead of
///    paying a full-word re-simulation + global refinement per CE.
/// 8. **Size-scaled budgets**: the initial pattern budget and the
///    round-2 guided-query budget scale with gate count (capped), so
///    small instances stop over-investing in simulation and guided SAT.
#pragma once

#include "network/aig.hpp"
#include "sweep/sat_patterns.hpp"
#include "sweep/sweep_stats.hpp"

#include <algorithm>
#include <cstdint>

namespace stps::sweep {

struct stp_sweep_params
{
  guided_pattern_config guided{};  ///< initial pattern generation
  bool use_guided_patterns = true; ///< ablation B: false = random only
  bool use_window_resolution = true; ///< ablation: exhaustive windows

  /// Counter-example propagation engine (sweep/ce_engine.hpp): `auto`
  /// picks whole-AIG word resimulation below `ce_engine_gate_threshold`
  /// gates and the collapsed k-LUT view at or above it; `collapsed` /
  /// `resim` force one.  All three settings are result-identical — the
  /// dispatch moves runtime, never merges.
  ce_engine_kind ce_engine = ce_engine_kind::automatic;
  uint32_t ce_engine_gate_threshold = 10'000;
  /// Mid-sweep escalation, `auto` only: the size dispatch cannot see how
  /// much of the network each counter-example disturbs, and on deep
  /// random logic the collapsed view's per-CE worklist can visit a large
  /// fraction of the needed gates — at which point one branch-free
  /// whole-AIG word pass is cheaper.  When the *measured* average
  /// visited-gates-per-CE exceeds `gates × ce_escalate_per_mille / 1000`
  /// (checked once ≥ 64 CEs were absorbed), the sweep switches to the
  /// resim engine; the switch is result-identical because the resim
  /// engine recomputes the open word entirely from the pattern set.
  /// 0 disables escalation.  Forced `collapsed`/`resim` never switch.
  uint32_t ce_escalate_per_mille = 125;
  /// Collapsed engine: prune collapse targets to class representatives
  /// plus the fanout frontier; pruned members are answered through
  /// recorded evaluation cones (result-identical, smaller collapsed
  /// view).  false = every member stays a root (ablation baseline).
  bool ce_prune_targets = true;
  /// Collapsed engine: trailing pattern words simulated into the
  /// collapsed view at build time.  Only the open word is ever re-read,
  /// so 1 removes the build-time `store_peak_bytes` spike at scale;
  /// 0 = simulate the full arena (the unbounded ablation baseline).
  uint32_t ce_initial_words = 1;

  /// Ablation: false reverts to eager one-CE-per-word refinement (every
  /// counter-example immediately refines every class).  Both settings
  /// produce the same merges and final network; batching only changes
  /// when the partition work is paid — both run through the same dense
  /// refinement core.
  bool use_batched_ce_refinement = true;

  /// Ablation: false tears the SAT solver down before *every* query, so
  /// each query re-encodes its whole union cone from scratch — the
  /// output-insensitive baseline `sat_nodes_encoded` is measured
  /// against.  Results are identical either way (differential harness).
  bool use_incremental_cnf = true;
  /// Garbage epoch for the incremental CNF: when problem + learnt
  /// clauses exceed this at a query entry, the solver is rebuilt empty
  /// and live cones re-encode lazily.  Bounds SAT memory on ≥ 1M-gate
  /// sweeps; 0 = never rebuild.  Ignored when `use_incremental_cnf` is
  /// false (every query already starts empty).
  uint64_t sat_clause_budget = 4'000'000;
  /// Signature-store word budget: when more than this many live words
  /// accumulate at a 64-CE word boundary, absorbed words (everything the
  /// equivalence classes already refined with) are trimmed from the
  /// candidate and collapsed-CE stores.  0 = keep every word forever
  /// (the unbounded ablation baseline).
  uint32_t store_word_budget = 8;

  /// Signature-guided SAT querying: solver variables' saved polarities
  /// are seeded from the nodes' values in the last initial-simulation
  /// signature word — one consistent whole-network assignment — at
  /// encode time, and *re-seeded per equivalence query* while the
  /// adaptive policy holds (sat::cnf_manager::params): re-seeding makes
  /// UNSAT-bound proof streams drastically cheaper (mult96r SAT time
  /// ~10×), and switches itself off once satisfiable answers become
  /// frequent enough that counter-example diversity matters more
  /// (deep-random instances; biased models are near-duplicates of the
  /// seed pattern and refine too little).  Seeding steers the search
  /// only; sat/unsat answers are unchanged (property-pinned), and the
  /// result network is identical either way (differential harness +
  /// bench `--ablation`).
  bool use_signature_phase = true;
  /// Cone-aware query scoping (sat::cnf_manager::params): decisions and
  /// activity bumps restricted to each query's union cone, and learned
  /// phase/activity carried across SAT garbage epochs for cones that
  /// re-encode.  false = unrestricted decisions, cold rebuilds.
  bool use_cone_scoped_decisions = true;
  /// Glue/activity-ranked learnt-clause reduction inside the solver
  /// (sat::solver_options::reduce_learnts).  false = learnts only leave
  /// via purges and garbage epochs — the epoch-only baseline the
  /// `sat_clauses_peak` delta is measured against (bench `--sat-reduce`).
  bool sat_reduce = true;
  /// Between-query inprocessing (sat/inprocess.hpp): equivalent-literal
  /// collapsing, budgeted backward subsumption, bounded vivification on
  /// the cnf_manager's deterministic query-interval schedule (bench
  /// `--sat-inprocess`).
  bool sat_inprocess = true;
  /// Inprocessing schedule (sat::cnf_manager::params): run every this
  /// many query entries per epoch, once the database holds at least
  /// `sat_inprocess_min_clauses` clauses.  The defaults match the
  /// manager's; tests shrink both to force the phases on instances far
  /// below production size.
  uint64_t sat_inprocess_interval = 2048;
  uint64_t sat_inprocess_min_clauses = 4096;

  int64_t conflict_budget = -1;  ///< equivalence queries; -1 = unlimited

  /// \name Parallel SAT phase (class-sharded)
  /// \{
  /// Worker threads for the SAT phase.  The candidate classes are
  /// partitioned into `effective_sat_shards()` shards; each shard is
  /// swept against its own thread-local `sat::cnf_manager` (and private
  /// copies of the signature/pattern state) over the *frozen* input
  /// AIG, recording proven merges instead of applying them.  Proven
  /// merges are then committed on the calling thread in deterministic
  /// canonical order (ascending node id).  The sweep *trajectory* is a
  /// pure function of the shard count — running 4 shards on 1 thread or
  /// on 4 threads is byte-identical in every counter and in the result
  /// network.  With ≤ 1 effective shard the single-thread in-place path
  /// runs unchanged.
  uint32_t threads = 1;
  /// Shard count of the parallel phase; 0 = one shard per thread.
  /// Fixing `sat_shards` while varying `threads` reproduces identical
  /// sweeps at any parallelism (the determinism pin).
  uint32_t sat_shards = 0;

  uint32_t effective_sat_shards() const noexcept
  {
    const uint32_t s = sat_shards == 0u ? threads : sat_shards;
    return s == 0u ? 1u : s;
  }
  /// \}

  /// \name Budgeted, interruptible sweeping
  /// \{
  /// Resource governor of the whole sweep job (non-owning; null =
  /// ungoverned).  Shared with the CNF layer, the CDCL loop, and guided
  /// pattern generation; when it trips, the in-flight query finishes
  /// (or winds down with `unknown`), only proven merges are applied,
  /// and the returned network is a sound partial result with
  /// `sweep_stats::outcome` naming the cause.
  resource_governor* governor = nullptr;
  /// Escalating unDET retry: rounds of re-querying deferred candidates
  /// after the main pass, each with the per-query budget multiplied by
  /// `undet_budget_factor`.  0 = the paper's single-shot marking.
  /// Irrelevant while `conflict_budget` is unlimited (nothing defers).
  uint32_t undet_retry_rounds = 3;
  uint32_t undet_budget_factor = 2;
  /// Deterministic fault injection for the SAT layer
  /// (sat::fault_plan, forwarded to the cnf_manager); all-zero = off.
  sat::fault_plan faults{};
  /// Injected store/pattern trim failure: every trim request is
  /// refused, as if freeing absorbed words failed.  Trims only release
  /// memory, so results must be identical (pinned by the fault suite).
  bool fault_fail_store_trim = false;
  /// \}

  std::size_t tfi_limit = 1000;  ///< Alg. 2 line 1
  uint32_t window_max_support = 15; ///< "< 16 leaves" (§IV-A)
  /// Scaled windowing: on paper-scale instances a satisfiable SAT call
  /// costs far more than a larger exhaustive window (window resolution
  /// is cheap since the union-cone pass), so the support limit grows
  /// with the gate count — one extra leaf per quadrupling starting at
  /// `window_scale_gates` gates, capped at `window_max_support_scaled`
  /// (30k gates → 16, 120k → 17, 480k → 18, 1.92M → 19 with the
  /// defaults; the 19-leaf tier exists for the --scale 4 workloads).
  /// Window resolution is exact, so the limit changes which merges
  /// avoid SAT, never the result.  `window_scale_gates = 0` disables
  /// scaling (the flat ablation baseline).
  uint32_t window_scale_gates = 30'000;
  uint32_t window_max_support_scaled = 19;
  uint32_t collapse_limit = 8;   ///< tree-cut leaf bound for CE windows

  /// Per-round simulation budget scaling: tiny instances stop
  /// over-investing in simulation.  The effective initial pattern count
  /// is `guided.base_patterns` capped from below by scaling with the
  /// gate count (`pattern_budget_per_mille` patterns per 1000 gates,
  /// floored at `min_pattern_budget`, rounded up to a whole 64-pattern
  /// word).  0 disables scaling and always uses `guided.base_patterns`.
  uint32_t pattern_budget_per_mille = 250;
  uint64_t min_pattern_budget = 128;
  /// Round-2 guided queries (each adds one pattern) scale the same way:
  /// small circuits have few false candidates to break up, and at the
  /// seed's flat 512-query budget the guided SAT time exceeded what the
  /// extra patterns saved.  Paper-scale instances still reach
  /// `guided.max_round2_queries`.  0 disables scaling.
  uint32_t round2_queries_per_mille = 16;
  std::size_t min_round2_queries = 32;

  /// Initial pattern count actually used for a circuit of
  /// \p num_gates gates.
  uint64_t effective_pattern_budget(uint64_t num_gates) const
  {
    if (pattern_budget_per_mille == 0u) {
      return guided.base_patterns;
    }
    uint64_t want = num_gates * pattern_budget_per_mille / 1000u;
    want = std::max(want, min_pattern_budget);
    want = (want + 63u) / 64u * 64u;
    return std::min(want, guided.base_patterns);
  }

  /// Round-2 guided-query budget for a circuit of \p num_gates gates.
  std::size_t effective_round2_queries(uint64_t num_gates) const
  {
    if (round2_queries_per_mille == 0u) {
      return guided.max_round2_queries;
    }
    const std::size_t want = std::max<std::size_t>(
        min_round2_queries, num_gates * round2_queries_per_mille / 1000u);
    return std::min(want, guided.max_round2_queries);
  }

  /// Exhaustive-window support limit for a circuit of \p num_gates
  /// gates (scaled windowing; see `window_scale_gates`).
  uint32_t effective_window_support(uint64_t num_gates) const
  {
    uint32_t support = window_max_support;
    if (window_scale_gates == 0u) {
      return support;
    }
    for (uint64_t gates = window_scale_gates;
         num_gates >= gates && support < window_max_support_scaled;
         gates *= 4u) {
      ++support;
    }
    return support;
  }
};

/// Sweeps \p aig in place; returns the Table II counters.
sweep_stats stp_sweep(net::aig_network& aig, const stp_sweep_params& params);

} // namespace stps::sweep
