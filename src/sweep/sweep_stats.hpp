/// \file sweep_stats.hpp
/// \brief Counters shared by both sweepers — the columns of Table II.
#pragma once

#include <cstdint>
#include <vector>

namespace stps::sweep {

/// Counter-example propagation engine of the STP sweeper (see
/// sweep/ce_engine.hpp).  `automatic` dispatches by instance size:
/// whole-AIG word resimulation below the gate threshold, the collapsed
/// k-LUT view above it.
enum class ce_engine_kind : uint8_t
{
  automatic = 0,
  collapsed = 1,
  resim = 2,
};

/// Stable name for logs/JSON ("auto", "collapsed", "resim").
constexpr const char* ce_engine_name(ce_engine_kind kind) noexcept
{
  switch (kind) {
    case ce_engine_kind::collapsed: return "collapsed";
    case ce_engine_kind::resim: return "resim";
    default: return "auto";
  }
}

/// How a sweep ended (sweep/resource_governor.hpp).  Anything other
/// than `complete` means the sweep wound down early — the returned
/// network is still a *sound partial result* (only proven merges were
/// applied; the abort precedence is cancelled > deadline > budget).
enum class sweep_outcome : uint8_t
{
  complete = 0,  ///< ran to the end (including an ungoverned sweep)
  deadline = 1,  ///< wall-clock (or virtual-clock) deadline expired
  budget = 2,    ///< global conflict pool exhausted
  cancelled = 3, ///< stop token tripped (SIGINT / cancel_after_queries)
};

/// Stable name for logs/JSON ("complete", "deadline", "budget",
/// "cancelled").
constexpr const char* sweep_outcome_name(sweep_outcome outcome) noexcept
{
  switch (outcome) {
    case sweep_outcome::deadline: return "deadline";
    case sweep_outcome::budget: return "budget";
    case sweep_outcome::cancelled: return "cancelled";
    default: return "complete";
  }
}

struct sweep_stats
{
  uint32_t gates_before = 0;  ///< "Gate"
  uint32_t gates_after = 0;   ///< "Result"
  uint32_t levels_before = 0; ///< "Lev"

  uint64_t sat_calls_satisfiable = 0; ///< "SAT calls" (CE-producing)
  uint64_t sat_calls_total = 0;       ///< "Total SAT calls"

  uint64_t merges = 0;           ///< proven-equivalent substitutions
  uint64_t constant_merges = 0;  ///< constants propagated
  uint64_t window_merges = 0;    ///< merges proven by exhaustive windows
  uint64_t dont_touch = 0;       ///< unDET candidates given up for good
  uint64_t ce_patterns = 0;      ///< counter-examples simulated

  /// \name Budgeted / interruptible sweeping (resource governor + retry)
  /// \{
  /// How the sweep ended; `complete` unless a governor aborted it.
  sweep_outcome outcome = sweep_outcome::complete;
  /// Retry attempts issued by the escalating unDET queue — one per
  /// (deferred candidate, retry round) pair actually re-queried.
  uint64_t undet_retries = 0;
  /// Deferred candidates the retry rounds settled without a final
  /// `dont_touch` (proven, refined away, or merged by a cascade).
  uint64_t undet_resolved = 0;
  /// \}

  /// Gates evaluated by fanout-driven CE propagation (output-sensitive).
  uint64_t ce_gates_visited = 0;
  /// Gates the input-insensitive needed-set scan would have evaluated
  /// for the same counter-examples (needed gates × CE count).
  uint64_t ce_gates_scan_baseline = 0;
  /// Class members answered through pruned evaluation cones instead of
  /// collapse roots (collapsed engine only).
  uint64_t ce_targets_pruned = 0;
  /// True when the engine ran the collapsed CE simulator and the
  /// counters above are defined; engines without them (fraig, the
  /// whole-AIG resim engine) must omit the columns instead of printing
  /// zeros (ratio tooling would divide by them).
  bool has_ce_counters = false;

  /// True for sweepers with a selectable CE engine (the STP sweeper);
  /// `ce_engine_used` is then the engine the sweep *finished* with —
  /// never `automatic`.  `ce_engine_escalated` marks sweeps that
  /// started collapsed and switched to resim mid-sweep when the
  /// measured per-CE disturbance crossed the escalation threshold.
  bool has_ce_engine = false;
  ce_engine_kind ce_engine_used = ce_engine_kind::collapsed;
  bool ce_engine_escalated = false;

  /// \name Incremental-CNF counters (cnf_manager)
  /// \{
  uint64_t sat_nodes_encoded = 0;  ///< AND nodes Tseitin-encoded, all epochs
  uint64_t sat_solver_rebuilds = 0; ///< garbage epochs / per-query rebuilds
  uint64_t sat_clauses_peak = 0;   ///< max problem+learnt clauses seen
  /// \}

  /// \name SAT search-effort counters (accumulated across all rebuilds)
  /// The satisfiable-call *cost* trajectory: satisfiable equivalence
  /// queries dominate the SAT-bound tail, and the signature-phase /
  /// cone-scoping policies aim squarely at their conflict counts.
  /// \{
  uint64_t sat_conflicts = 0;
  uint64_t sat_decisions = 0;
  uint64_t sat_restarts = 0;
  /// Solver variables whose saved polarity was seeded from a signature
  /// word at encode time (0 when `use_signature_phase` is off or for
  /// sweepers without the policy).
  uint64_t phase_seed_words = 0;
  /// \}

  /// \name Clause-database policy counters (solver_stats, all rebuilds)
  /// The memory-pressure trajectory: reduce_db + inprocessing keep the
  /// long-lived incremental database lean *between* garbage epochs, so
  /// `sat_clauses_peak` stops riding the clause budget on query-heavy
  /// rows.
  /// \{
  uint64_t sat_learnts_reduced = 0; ///< learnts deleted by reduce_db
  uint64_t sat_lbd_sum = 0;         ///< Σ learn-time LBD (avg = /learnts)
  uint64_t sat_binary_clauses = 0;  ///< clauses routed to the binary graph
  uint64_t sat_lits_collapsed = 0;  ///< vars eliminated by equiv collapsing
  uint64_t sat_clauses_subsumed = 0; ///< clauses deleted by subsumption
  double sat_inprocess_seconds = 0.0; ///< wall-clock spent inprocessing
  /// \}

  /// \name Signature-store memory counters (candidate + CE stores)
  /// \{
  bool has_store_counters = false; ///< engine tracks a word budget
  uint64_t store_words_live = 0;    ///< words still backed at sweep end
  uint64_t store_words_trimmed = 0; ///< absorbed words whose storage was freed
  uint64_t store_peak_bytes = 0;    ///< sum of per-store peak footprints
  /// Pattern-set ring: CE words still backed / recycled into the ring.
  uint64_t pattern_words_live = 0;
  uint64_t pattern_words_recycled = 0;
  /// \}

  /// \name Parallel SAT phase (stp_sweep_params::threads / sat_shards)
  /// \{
  uint32_t threads = 1;      ///< requested worker threads
  uint32_t sat_shards = 1;   ///< effective shard count of the SAT phase
  uint32_t workers_used = 1; ///< threads that actually ran shards
  /// Per-worker SAT time (size = workers_used; worker w summed over the
  /// shards it ran).  Single-thread sweeps report {sat_seconds}.
  std::vector<double> worker_sat_seconds;
  /// \}

  double sim_seconds = 0.0;   ///< "Simulation" (initial + CE)
  double sat_seconds = 0.0;
  double total_seconds = 0.0; ///< "Total runtime"
};

} // namespace stps::sweep
