/// \file sweep_stats.hpp
/// \brief Counters shared by both sweepers — the columns of Table II.
#pragma once

#include <cstdint>

namespace stps::sweep {

struct sweep_stats
{
  uint32_t gates_before = 0;  ///< "Gate"
  uint32_t gates_after = 0;   ///< "Result"
  uint32_t levels_before = 0; ///< "Lev"

  uint64_t sat_calls_satisfiable = 0; ///< "SAT calls" (CE-producing)
  uint64_t sat_calls_total = 0;       ///< "Total SAT calls"

  uint64_t merges = 0;           ///< proven-equivalent substitutions
  uint64_t constant_merges = 0;  ///< constants propagated
  uint64_t window_merges = 0;    ///< merges proven by exhaustive windows
  uint64_t dont_touch = 0;       ///< unDET-marked candidates
  uint64_t ce_patterns = 0;      ///< counter-examples simulated

  /// Gates evaluated by fanout-driven CE propagation (output-sensitive).
  uint64_t ce_gates_visited = 0;
  /// Gates the input-insensitive needed-set scan would have evaluated
  /// for the same counter-examples (needed gates × CE count).
  uint64_t ce_gates_scan_baseline = 0;

  double sim_seconds = 0.0;   ///< "Simulation" (initial + CE)
  double sat_seconds = 0.0;
  double total_seconds = 0.0; ///< "Total runtime"
};

} // namespace stps::sweep
