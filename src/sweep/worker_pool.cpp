#include "sweep/worker_pool.hpp"

namespace stps::sweep {

worker_pool::worker_pool(unsigned workers) : count_{workers}
{
  threads_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

worker_pool::~worker_pool()
{
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void worker_pool::worker_main(unsigned w)
{
  const unsigned count = count_;
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock{mutex_};
  for (;;) {
    cv_work_.wait(lock,
                  [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) {
      return;
    }
    seen = generation_;
    const std::function<void(std::size_t)>* job = job_;
    const std::size_t jobs = num_jobs_;
    lock.unlock();

    std::exception_ptr error;
    std::size_t error_job = 0;
    for (std::size_t j = w; j < jobs; j += count) {
      try {
        (*job)(j);
      } catch (...) {
        error = std::current_exception();
        error_job = j;
        break; // this worker's later jobs are abandoned
      }
    }

    lock.lock();
    if (error != nullptr &&
        (first_error_ == nullptr || error_job < first_error_job_)) {
      first_error_ = error;
      first_error_job_ = error_job;
    }
    if (++workers_done_ == count_) {
      cv_done_.notify_one();
    }
  }
}

void worker_pool::run(std::size_t jobs,
                      const std::function<void(std::size_t)>& job)
{
  if (count_ == 0u) {
    for (std::size_t j = 0; j < jobs; ++j) {
      job(j);
    }
    return;
  }
  std::unique_lock<std::mutex> lock{mutex_};
  job_ = &job;
  num_jobs_ = jobs;
  workers_done_ = 0;
  first_error_ = nullptr;
  first_error_job_ = 0;
  ++generation_;
  cv_work_.notify_all();
  cv_done_.wait(lock, [&] { return workers_done_ == count_; });
  const std::exception_ptr error = first_error_;
  job_ = nullptr;
  lock.unlock();
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

} // namespace stps::sweep
