#include "sweep/ce_engine.hpp"

#include "sim/bitwise_sim.hpp"
#include "sweep/ce_simulator.hpp"

#include <stdexcept>

namespace stps::sweep {

namespace {

/// The paper's engine: collapsed k-LUT view with output-sensitive
/// fanout-driven absorption (ce_simulator).
class collapsed_ce_engine final : public ce_engine
{
public:
  explicit collapsed_ce_engine(const ce_engine_config& config)
      : config_{config}
  {
  }

  ce_engine_kind kind() const noexcept override
  {
    return ce_engine_kind::collapsed;
  }

  void build(const net::aig_network& aig, std::span<const net::node> targets,
             std::span<const net::node> pinned,
             const sim::pattern_set& patterns) override
  {
    ce_build_options options;
    options.pinned = pinned;
    options.prune_targets = config_.prune_targets;
    options.initial_words = config_.initial_words;
    sim_.build(aig, targets, config_.collapse_limit, patterns, options);
  }

  void add_ce(const sim::pattern_set& patterns,
              const std::vector<bool>& ce) override
  {
    sim_.add_ce(patterns, ce);
  }

  uint64_t node_word(const net::aig_network& aig, net::node n,
                     const sim::pattern_set& patterns,
                     std::size_t word) override
  {
    return sim_.node_word(aig, n, patterns, word);
  }

  void trim_absorbed(std::size_t first_live) override
  {
    sim_.trim_absorbed(first_live);
  }

  const sim::signature_store& store() const noexcept override
  {
    return sim_.store();
  }

  bool has_visit_counters() const noexcept override { return true; }
  uint64_t gates_visited() const noexcept override
  {
    return sim_.ce_gates_visited();
  }
  uint64_t gates_scan_baseline() const noexcept override
  {
    return sim_.ce_gates_scan_baseline();
  }
  uint64_t targets_pruned() const noexcept override
  {
    return sim_.targets_pruned();
  }

private:
  ce_engine_config config_;
  ce_simulator sim_;
};

/// Whole-AIG word resimulation: no build, no collapsed view — each CE
/// recomputes the open word for every node id from the pattern words
/// (dead gates included, so merged-away members keep function-true
/// words; see sim::resimulate_aig_all_last_word).  The store is fully
/// word-major and words older than the open one are born trimmed: a
/// full recompute never reads them.
class resim_ce_engine final : public ce_engine
{
public:
  ce_engine_kind kind() const noexcept override
  {
    return ce_engine_kind::resim;
  }

  void build(const net::aig_network& aig,
             std::span<const net::node> /*targets*/,
             std::span<const net::node> /*pinned*/,
             const sim::pattern_set& /*patterns*/) override
  {
    // The network reference must outlive the engine — the same contract
    // ce_simulator's snapshot relies on.  The fanin-literal plan is a
    // snapshot too: substitutions rewire fanins to function-identical
    // signals, so plan-driven words stay byte-identical.
    aig_ = &aig;
    rsig_.reset(aig.size(), 0u);
    plan_ = sim::make_resim_plan(aig);
  }

  void add_ce(const sim::pattern_set& patterns,
              const std::vector<bool>& /*ce*/) override
  {
    const std::size_t want = patterns.num_words();
    while (rsig_.num_words() + 1u < want) {
      rsig_.append_trimmed_word(); // never re-read: recompute is total
    }
    if (rsig_.num_words() < want) {
      rsig_.append_word();
    }
    sim::resimulate_aig_all_last_word(*aig_, patterns, rsig_, plan_);
  }

  uint64_t node_word(const net::aig_network& aig, net::node n,
                     const sim::pattern_set& patterns,
                     std::size_t word) override
  {
    if (aig.is_constant(n)) {
      return 0u;
    }
    if (aig.is_pi(n)) {
      return patterns.input_word(n - 1u, word);
    }
    return rsig_.word(n, word);
  }

  void trim_absorbed(std::size_t first_live) override
  {
    rsig_.trim_words(first_live);
  }

  const sim::signature_store& store() const noexcept override
  {
    return rsig_;
  }

private:
  const net::aig_network* aig_ = nullptr;
  sim::signature_store rsig_;
  sim::resim_plan plan_;
};

} // namespace

ce_engine_kind resolve_ce_engine(ce_engine_kind requested,
                                 uint64_t num_gates,
                                 uint32_t gate_threshold) noexcept
{
  if (requested != ce_engine_kind::automatic) {
    return requested;
  }
  return num_gates < gate_threshold ? ce_engine_kind::resim
                                    : ce_engine_kind::collapsed;
}

std::unique_ptr<ce_engine> make_ce_engine(ce_engine_kind resolved,
                                          const ce_engine_config& config)
{
  switch (resolved) {
    case ce_engine_kind::collapsed:
      return std::make_unique<collapsed_ce_engine>(config);
    case ce_engine_kind::resim:
      return std::make_unique<resim_ce_engine>();
    default:
      throw std::invalid_argument{
          "make_ce_engine: resolve the automatic kind first"};
  }
}

} // namespace stps::sweep
