/// \file resource_governor.hpp
/// \brief Resource governance for a whole sweep job: wall-clock
/// deadline, global conflict pool, and a cooperative stop token.
///
/// The paper's only degradation path is Alg. 2's per-query unDET
/// marking; a sweep job as a whole could not be bounded or cancelled.
/// The governor closes that gap.  One instance is shared by everything
/// a job runs — the sweeper's candidate loop, guided pattern
/// generation, `cec`, and (through `sat::resource_hooks`, which it
/// implements) the encoder's query entries and the CDCL loop itself —
/// so a deadline, an exhausted global conflict pool, or a cancellation
/// request is observed at every boundary:
///
/// * the **solver** polls every `sat::resource_check_interval`
///   conflicts and winds the in-flight search down with `unknown`;
/// * the **encoder** refuses to start new queries;
/// * the **sweepers** stop taking candidates, apply only the merges
///   already proven, and tag the returned `sweep_stats` with the
///   `sweep_outcome` (`cancelled` > `deadline` > `budget`).
///
/// Partial results are sound by construction: merges only ever happen
/// on completed UNSAT proofs, so stopping between queries can never
/// leave an unproven substitution behind.
///
/// **Concurrency.**  One governor is shared by every worker of a
/// parallel sweep: each shard's solver polls `should_stop` and pays
/// into the global conflict pool concurrently.  The stop token uses
/// release/acquire ordering — a worker that observes the flag also
/// observes everything the requester wrote before raising it — while
/// the counters stay relaxed: they are monotone sums whose exact
/// interleaving only affects *when* a budget trips, never memory
/// safety, and no other data is published through them.  (A
/// conflict-pool abort can therefore land on a different query across
/// runs at threads > 1; the determinism pins hold limits off.)
///
/// **Determinism.**  `request_stop()` is async-signal-safe (a
/// lock-free atomic store), so a SIGINT handler may call it directly.
/// For tests
/// the governor offers a *virtual clock*: `virtual_clock = true` makes
/// `elapsed_seconds()` count `virtual_seconds_per_query` per query tick
/// (plus explicit `advance_virtual` calls) instead of reading the real
/// clock — deadline expiry then lands on an exact, reproducible query
/// index, so "deadline at every phase" can be swept deterministically.
#pragma once

#include "sat/resource.hpp"
#include "sweep/sweep_stats.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>

namespace stps::sweep {

/// Limits a governor enforces.  Zeros mean "unlimited": a
/// default-constructed governor never stops anything until
/// `request_stop()` is called.
struct governor_limits
{
  /// Wall-clock budget for the job in seconds; 0 = no deadline.
  double deadline_seconds = 0.0;
  /// Global CDCL-conflict pool shared by every query of the job;
  /// 0 = unlimited.  Orthogonal to the sweepers' *per-query*
  /// `conflict_budget`.
  uint64_t conflict_budget_total = 0;
  /// Trip the stop token at the k-th query tick — a deterministic
  /// stand-in for SIGINT in tests; 0 = off.
  uint64_t cancel_after_queries = 0;
  /// Use the deterministic virtual clock instead of steady_clock.
  bool virtual_clock = false;
  /// Virtual seconds each query tick advances the virtual clock by.
  double virtual_seconds_per_query = 1.0;
};

class resource_governor final : public sat::resource_hooks
{
public:
  resource_governor() = default;
  explicit resource_governor(const governor_limits& limits)
      : limits_{limits}
  {
  }

  /// Requests cooperative cancellation.  Async-signal-safe and callable
  /// from any thread; every worker of the job winds down at its next
  /// poll.  Release store: whatever the requester wrote before stopping
  /// is visible to any worker that acquires the flag.
  void request_stop() noexcept
  {
    stop_.store(true, std::memory_order_release);
  }
  bool stop_requested() const noexcept
  {
    return stop_.load(std::memory_order_acquire);
  }

  /// Advances the virtual clock (virtual_clock mode only; no-op
  /// otherwise as elapsed_seconds ignores it).
  void advance_virtual(double seconds) noexcept
  {
    virtual_micros_.fetch_add(static_cast<uint64_t>(seconds * 1e6),
                              std::memory_order_relaxed);
  }

  /// Job time so far: real steady-clock time since construction, or —
  /// in virtual mode — query ticks × virtual_seconds_per_query plus
  /// explicit advances.
  double elapsed_seconds() const
  {
    if (limits_.virtual_clock) {
      const double ticked =
          static_cast<double>(queries_.load(std::memory_order_relaxed)) *
          limits_.virtual_seconds_per_query;
      return ticked +
             static_cast<double>(
                 virtual_micros_.load(std::memory_order_relaxed)) /
                 1e6;
    }
    const auto dt = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(dt).count();
  }

  uint64_t conflicts_used() const noexcept
  {
    return conflicts_.load(std::memory_order_relaxed);
  }
  uint64_t queries_seen() const noexcept
  {
    return queries_.load(std::memory_order_relaxed);
  }

  bool deadline_expired() const
  {
    return limits_.deadline_seconds > 0.0 &&
           elapsed_seconds() >= limits_.deadline_seconds;
  }
  bool budget_exhausted() const noexcept
  {
    return limits_.conflict_budget_total != 0u &&
           conflicts_used() >= limits_.conflict_budget_total;
  }

  /// How an abort at this instant would be classified.  Precedence:
  /// an explicit cancellation beats a deadline beats the conflict pool
  /// (the most intentional cause wins); `complete` when nothing
  /// tripped.  Sweepers record this only for sweeps that actually
  /// aborted — a sweep that ran to the end reports `complete` even if
  /// its deadline expired during the very last query.
  sweep_outcome outcome() const
  {
    if (stop_requested()) {
      return sweep_outcome::cancelled;
    }
    if (deadline_expired()) {
      return sweep_outcome::deadline;
    }
    if (budget_exhausted()) {
      return sweep_outcome::budget;
    }
    return sweep_outcome::complete;
  }

  /// \name sat::resource_hooks
  /// \{
  void on_query_begin() noexcept override
  {
    const uint64_t q =
        queries_.fetch_add(1u, std::memory_order_relaxed) + 1u;
    if (limits_.cancel_after_queries != 0u &&
        q >= limits_.cancel_after_queries) {
      request_stop();
    }
  }
  bool should_stop() noexcept override
  {
    return stop_requested() || budget_exhausted() || deadline_expired();
  }
  bool consume_conflicts(uint64_t conflicts) noexcept override
  {
    conflicts_.fetch_add(conflicts, std::memory_order_relaxed);
    return should_stop();
  }
  /// \}

  const governor_limits& limits() const noexcept { return limits_; }

private:
  governor_limits limits_{};
  std::chrono::steady_clock::time_point start_{
      std::chrono::steady_clock::now()};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> conflicts_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> virtual_micros_{0};
};

} // namespace stps::sweep
