#include "sweep/ce_simulator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace stps::sweep {

namespace {

/// Pruned evaluation cones beyond this many gates keep their target a
/// collapse root instead — bounds the per-refinement replay cost on
/// pathological single-fanout chains.
constexpr std::size_t max_pruned_cone_gates = 32;

} // namespace

void ce_simulator::build(const net::aig_network& aig,
                         std::span<const net::node> target_gates,
                         uint32_t collapse_limit,
                         const sim::pattern_set& patterns,
                         const ce_build_options& options)
{
  conv_ = net::aig_to_klut(aig);

  // ---- Target pruning (see file comment). ------------------------------
  // Collapse targets: without pruning every target; with pruning only
  // pinned nodes (class representatives) and the fanout frontier —
  // members the collapse makes roots anyway.  A member is *absorbable*
  // when its only reference is one live fanout gate; absorbable members
  // become internal gates of recorded evaluation cones whose leaves are
  // guaranteed collapse roots (pinned, multi-reference, or PO-driving
  // nodes) or PIs.
  pruned_slot_.assign(aig.size(), ~uint32_t{0});
  cones_.clear();
  cone_leaves_.clear();
  cone_ops_.clear();
  targets_pruned_ = 0;

  std::vector<net::node> kept;
  kept.reserve(target_gates.size());
  if (!options.prune_targets) {
    kept.assign(target_gates.begin(), target_gates.end());
  } else {
    std::vector<uint8_t> pin(aig.size(), 0u);
    for (const net::node p : options.pinned) {
      pin[p] = 1u;
    }
    // Absorbability must mirror the collapse's own root rule (tree_cuts:
    // a gate with exactly one reference and no PO reference is absorbed)
    // and must be judged on the *k-LUT* view — complemented POs gain
    // inverter LUTs there, so an AIG gate driving only a complemented PO
    // is a plain single-fanout gate in the k-LUT, not a root.
    const auto& klut = conv_.klut;
    std::vector<uint32_t> krefs(klut.size(), 0u);
    std::vector<uint8_t> kpo(klut.size(), 0u);
    klut.foreach_gate([&](knode n) {
      for (const knode f : klut.fanins(n)) {
        ++krefs[f];
      }
    });
    klut.foreach_po([&](knode n, uint32_t) {
      ++krefs[n];
      kpo[n] = 1u;
    });
    const auto absorbable = [&](net::node x) {
      if (!aig.is_and(x)) {
        return false;
      }
      const knode kx = conv_.node_map[x];
      return krefs[kx] == 1u && kpo[kx] == 0u;
    };
    // The leaf predicate is fixed before any cone is extracted, so cone
    // shapes are independent of extraction order; a member whose cone
    // exceeds the bound reverts to a kept target (later cones may then
    // evaluate through it — correct, just shared work).
    const auto is_leaf = [&](net::node x) {
      return pin[x] != 0u || !absorbable(x);
    };

    std::vector<net::node> try_prune;
    for (const net::node m : target_gates) {
      if (pin[m] == 0u && absorbable(m)) {
        try_prune.push_back(m);
      } else {
        kept.push_back(m);
      }
    }

    std::vector<uint32_t> mark(aig.size(), 0u);
    std::vector<uint32_t> slot_of(aig.size(), 0u);
    std::vector<net::node> stack, gates, leaves;
    uint32_t epoch = 0;
    for (const net::node m : try_prune) {
      ++epoch;
      stack.assign(1u, m);
      gates.assign(1u, m);
      leaves.clear();
      mark[m] = epoch;
      bool too_big = false;
      while (!stack.empty() && !too_big) {
        const net::node x = stack.back();
        stack.pop_back();
        for (const net::signal f : {aig.fanin0(x), aig.fanin1(x)}) {
          const net::node fn = f.get_node();
          if (mark[fn] == epoch) {
            continue;
          }
          mark[fn] = epoch;
          if (is_leaf(fn)) {
            slot_of[fn] = static_cast<uint32_t>(leaves.size());
            leaves.push_back(fn);
          } else {
            gates.push_back(fn);
            stack.push_back(fn);
            too_big = too_big || gates.size() > max_pruned_cone_gates;
          }
        }
      }
      if (too_big) {
        kept.push_back(m);
        continue;
      }
      // Ids are topological, so id order evaluates fanins first; the
      // target m has the largest id of its private cone and lands last.
      std::sort(gates.begin(), gates.end());
      for (std::size_t i = 0; i < gates.size(); ++i) {
        slot_of[gates[i]] = static_cast<uint32_t>(i);
      }
      pruned_cone cone;
      cone.leaves_begin = static_cast<uint32_t>(cone_leaves_.size());
      cone.num_leaves = static_cast<uint32_t>(leaves.size());
      cone.gates_begin = static_cast<uint32_t>(cone_ops_.size());
      cone.num_gates = static_cast<uint32_t>(gates.size());
      cone_leaves_.insert(cone_leaves_.end(), leaves.begin(), leaves.end());
      for (const net::node g : gates) {
        for (const net::signal f : {aig.fanin0(g), aig.fanin1(g)}) {
          const net::node fn = f.get_node();
          cone_ops_.push_back(
              {slot_of[fn], is_leaf(fn), f.is_complemented()});
        }
      }
      pruned_slot_[m] = static_cast<uint32_t>(cones_.size());
      cones_.push_back(cone);
      ++targets_pruned_;
    }
  }

  std::vector<knode> targets;
  targets.reserve(kept.size());
  for (const net::node n : kept) {
    targets.push_back(conv_.node_map[n]);
  }
  collapsed_ = cut::collapse_to_cuts(conv_.klut, targets, collapse_limit);

  // Restrict evaluation to the cones of the kept targets *and* of the
  // pruned cones' leaves — the roots pruned members replay over must be
  // kept current by add_ce.
  auto& net = collapsed_.net;
  needed_.assign(net.size(), 0u);
  needed_count_ = 0;
  std::vector<knode> frontier;
  const auto seed = [&](net::node aig_node) {
    const knode m = collapsed_.node_map[conv_.node_map[aig_node]];
    assert(m != ~knode{0} && "CE target/leaf not kept by the collapse");
    if (net.is_gate(m) && !needed_[m]) {
      needed_[m] = 1u;
      ++needed_count_;
      frontier.push_back(m);
    }
  };
  for (const net::node t : kept) {
    seed(t);
  }
  for (const net::node l : cone_leaves_) {
    if (aig.is_and(l)) {
      seed(l);
    }
  }
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    for (const knode f : net.fanins(frontier[i])) {
      if (net.is_gate(f) && !needed_[f]) {
        needed_[f] = 1u;
        ++needed_count_;
        frontier.push_back(f);
      }
    }
  }

  scratch_.reserve(net.max_fanin_size());
  // Fully word-major store: every word is a contiguous tail block, so a
  // CE's single-word traffic stays in one `size()`-word block.  Words
  // before the reduced-arena start are born trimmed: only the open word
  // is ever re-read (see file comment), so they carry no storage.
  const std::size_t nw = patterns.num_words();
  std::size_t start = 0;
  if (options.initial_words != 0u && nw > options.initial_words) {
    start = nw - options.initial_words;
  }
  csig_.reset(net.size(), 0u);
  for (std::size_t w = 0; w < start; ++w) {
    csig_.append_trimmed_word();
  }
  for (std::size_t w = start; w < nw; ++w) {
    csig_.append_word();
    simulate_word(patterns, w);
  }

  // Padding defaults: each node's value under the all-zero assignment.
  base_.assign(net.size(), 0u);
  base_[1] = 1u;
  net.foreach_gate([&](knode n) {
    if (!needed_[n]) {
      return;
    }
    const auto& fis = net.fanins(n);
    uint64_t index = 0;
    for (std::size_t i = 0; i < fis.size(); ++i) {
      index |= uint64_t{base_[fis[i]]} << i;
    }
    base_[n] = net.table(n).bit(index) ? 1u : 0u;
  });

  queued_bits_.assign((net.size() + 63u) / 64u, 0u);
  gates_visited_ = 0;
  scan_baseline_ = 0;
}

void ce_simulator::open_word(std::size_t word)
{
  // Fresh tail word holding every node's padding default: what full-word
  // STP evaluation of zero-padded pattern words would produce.
  csig_.append_word();
  const auto block = csig_.tail_word(word);
  for (std::size_t n = 0; n < block.size(); ++n) {
    block[n] = base_[n] ? ~uint64_t{0} : 0u;
  }
}

void ce_simulator::add_ce(const sim::pattern_set& patterns,
                          const std::vector<bool>& ce)
{
  const uint64_t index = patterns.num_patterns() - 1u;
  const std::size_t word = index >> 6u;
  const uint64_t bit = uint64_t{1} << (index & 63u);
  const uint64_t shift = index & 63u;
  auto& net = collapsed_.net;
  if (csig_.num_words() <= word) {
    open_word(word);
  }
  uint64_t* const wb = csig_.tail_word(word).data(); // this CE's block

  const auto push_fanouts = [&](knode n) {
    for (const knode fo : net.fanout(n)) {
      if (needed_[fo]) {
        queued_bits_[fo >> 6u] |= uint64_t{1} << (fo & 63u);
      }
    }
  };

  // Seed: PIs the CE flips away from the all-zero padding.  Every other
  // node's bit already holds its padding default, so clean cones are
  // never touched.
  net.foreach_pi([&](knode n) {
    if (ce[n - 2u]) {
      wb[n] |= bit;
      push_fanouts(n);
    }
  });

  // Drain in increasing id (= topological) order; pushes always exceed
  // the id being processed, so every gate is evaluated after all its
  // disturbed fanins settled, exactly once.  Clearing each bit as it is
  // drained leaves the bitset all-zero for the next CE.
  const std::size_t qw_begin = (2u + net.num_pis()) >> 6u;
  for (std::size_t qw = qw_begin; qw < queued_bits_.size(); ++qw) {
    while (queued_bits_[qw] != 0u) {
      const unsigned lowest = std::countr_zero(queued_bits_[qw]);
      queued_bits_[qw] &= queued_bits_[qw] - 1u;
      const knode n = static_cast<knode>(qw * 64u + lowest);
      ++gates_visited_;
      const auto& fis = net.fanins(n);
      uint64_t lut_index = 0;
      for (std::size_t i = 0; i < fis.size(); ++i) {
        lut_index |= ((wb[fis[i]] >> shift) & 1u) << i;
      }
      const bool v = net.table(n).bit(lut_index);
      if (v != (base_[n] != 0u)) {
        // Deviates from the padding default: record the bit and disturb
        // the fanout cone.  Otherwise the default bit is already
        // correct and propagation stops here.
        if (v) {
          wb[n] |= bit;
        } else {
          wb[n] &= ~bit;
        }
        push_fanouts(n);
      }
    }
  }
  scan_baseline_ += needed_count_;
}

uint64_t ce_simulator::eval_pruned(const net::aig_network& aig, uint32_t slot,
                                   const sim::pattern_set& patterns,
                                   std::size_t word)
{
  const pruned_cone& cone = cones_[slot];
  eval_scratch_.resize(cone.num_leaves + cone.num_gates);
  // Leaves are never pruned themselves, so this recursion is depth one
  // and leaves eval_scratch_ untouched.
  for (uint32_t i = 0; i < cone.num_leaves; ++i) {
    eval_scratch_[i] =
        node_word(aig, cone_leaves_[cone.leaves_begin + i], patterns, word);
  }
  for (uint32_t g = 0; g < cone.num_gates; ++g) {
    uint64_t vals[2];
    for (uint32_t side = 0; side < 2u; ++side) {
      const cone_op& op = cone_ops_[cone.gates_begin + 2u * g + side];
      const uint64_t v = op.is_leaf
                             ? eval_scratch_[op.index]
                             : eval_scratch_[cone.num_leaves + op.index];
      vals[side] = op.complement ? ~v : v;
    }
    eval_scratch_[cone.num_leaves + g] = vals[0] & vals[1];
  }
  return eval_scratch_[cone.num_leaves + cone.num_gates - 1u];
}

uint64_t ce_simulator::node_word(const net::aig_network& aig, net::node n,
                                 const sim::pattern_set& patterns,
                                 std::size_t word)
{
  if (aig.is_constant(n)) {
    return 0u;
  }
  if (aig.is_pi(n)) {
    return patterns.input_word(n - 1u, word);
  }
  if (pruned_slot_[n] != ~uint32_t{0}) {
    return eval_pruned(aig, pruned_slot_[n], patterns, word);
  }
  const knode m = collapsed_.node_map[conv_.node_map[n]];
  return csig_.word(m, word);
}

void ce_simulator::simulate_word(const sim::pattern_set& patterns,
                                 std::size_t word)
{
  auto& net = collapsed_.net;
  uint64_t* const wb = csig_.tail_word(word).data();
  wb[0] = 0u;
  wb[1] = ~uint64_t{0};
  net.foreach_pi(
      [&](knode n) { wb[n] = patterns.input_word(n - 2u, word); });
  std::vector<uint64_t> ins;
  net.foreach_gate([&](knode n) {
    if (!needed_[n]) {
      return;
    }
    const auto& fis = net.fanins(n);
    ins.resize(fis.size());
    for (std::size_t i = 0; i < fis.size(); ++i) {
      ins[i] = wb[fis[i]];
    }
    wb[n] = core::stp_evaluate_word(net.table(n), ins, scratch_);
  });
}

} // namespace stps::sweep
