#include "sweep/ce_simulator.hpp"

#include <algorithm>
#include <bit>

namespace stps::sweep {

void ce_simulator::build(const net::aig_network& aig,
                         std::span<const net::node> target_gates,
                         uint32_t collapse_limit,
                         const sim::pattern_set& patterns)
{
  conv_ = net::aig_to_klut(aig);
  std::vector<knode> targets;
  targets.reserve(target_gates.size());
  for (const net::node n : target_gates) {
    targets.push_back(conv_.node_map[n]);
  }
  collapsed_ = cut::collapse_to_cuts(conv_.klut, targets, collapse_limit);

  // Restrict evaluation to the targets' cones.
  auto& net = collapsed_.net;
  needed_.assign(net.size(), 0u);
  needed_count_ = 0;
  std::vector<knode> frontier;
  for (const knode t : targets) {
    const knode m = collapsed_.node_map[t];
    if (net.is_gate(m) && !needed_[m]) {
      needed_[m] = 1u;
      ++needed_count_;
      frontier.push_back(m);
    }
  }
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    for (const knode f : net.fanins(frontier[i])) {
      if (net.is_gate(f) && !needed_[f]) {
        needed_[f] = 1u;
        ++needed_count_;
        frontier.push_back(f);
      }
    }
  }

  scratch_.reserve(net.max_fanin_size());
  // Fully word-major store: every word is a contiguous tail block, so a
  // CE's single-word traffic stays in one `size()`-word block.
  csig_.reset(net.size(), 0u);
  for (std::size_t w = 0; w < patterns.num_words(); ++w) {
    csig_.append_word();
    simulate_word(patterns, w);
  }

  // Padding defaults: each node's value under the all-zero assignment.
  base_.assign(net.size(), 0u);
  base_[1] = 1u;
  net.foreach_gate([&](knode n) {
    if (!needed_[n]) {
      return;
    }
    const auto& fis = net.fanins(n);
    uint64_t index = 0;
    for (std::size_t i = 0; i < fis.size(); ++i) {
      index |= uint64_t{base_[fis[i]]} << i;
    }
    base_[n] = net.table(n).bit(index) ? 1u : 0u;
  });

  queued_bits_.assign((net.size() + 63u) / 64u, 0u);
  gates_visited_ = 0;
  scan_baseline_ = 0;
}

void ce_simulator::open_word(std::size_t word)
{
  // Fresh tail word holding every node's padding default: what full-word
  // STP evaluation of zero-padded pattern words would produce.
  csig_.append_word();
  const auto block = csig_.tail_word(word);
  for (std::size_t n = 0; n < block.size(); ++n) {
    block[n] = base_[n] ? ~uint64_t{0} : 0u;
  }
}

void ce_simulator::add_ce(const sim::pattern_set& patterns,
                          const std::vector<bool>& ce)
{
  const uint64_t index = patterns.num_patterns() - 1u;
  const std::size_t word = index >> 6u;
  const uint64_t bit = uint64_t{1} << (index & 63u);
  const uint64_t shift = index & 63u;
  auto& net = collapsed_.net;
  if (csig_.num_words() <= word) {
    open_word(word);
  }
  uint64_t* const wb = csig_.tail_word(word).data(); // this CE's block

  const auto push_fanouts = [&](knode n) {
    for (const knode fo : net.fanout(n)) {
      if (needed_[fo]) {
        queued_bits_[fo >> 6u] |= uint64_t{1} << (fo & 63u);
      }
    }
  };

  // Seed: PIs the CE flips away from the all-zero padding.  Every other
  // node's bit already holds its padding default, so clean cones are
  // never touched.
  net.foreach_pi([&](knode n) {
    if (ce[n - 2u]) {
      wb[n] |= bit;
      push_fanouts(n);
    }
  });

  // Drain in increasing id (= topological) order; pushes always exceed
  // the id being processed, so every gate is evaluated after all its
  // disturbed fanins settled, exactly once.  Clearing each bit as it is
  // drained leaves the bitset all-zero for the next CE.
  const std::size_t qw_begin = (2u + net.num_pis()) >> 6u;
  for (std::size_t qw = qw_begin; qw < queued_bits_.size(); ++qw) {
    while (queued_bits_[qw] != 0u) {
      const unsigned lowest = std::countr_zero(queued_bits_[qw]);
      queued_bits_[qw] &= queued_bits_[qw] - 1u;
      const knode n = static_cast<knode>(qw * 64u + lowest);
      ++gates_visited_;
      const auto& fis = net.fanins(n);
      uint64_t lut_index = 0;
      for (std::size_t i = 0; i < fis.size(); ++i) {
        lut_index |= ((wb[fis[i]] >> shift) & 1u) << i;
      }
      const bool v = net.table(n).bit(lut_index);
      if (v != (base_[n] != 0u)) {
        // Deviates from the padding default: record the bit and disturb
        // the fanout cone.  Otherwise the default bit is already
        // correct and propagation stops here.
        if (v) {
          wb[n] |= bit;
        } else {
          wb[n] &= ~bit;
        }
        push_fanouts(n);
      }
    }
  }
  scan_baseline_ += needed_count_;
}

uint64_t ce_simulator::node_word(const net::aig_network& aig, net::node n,
                                 const sim::pattern_set& patterns,
                                 std::size_t word) const
{
  if (aig.is_constant(n)) {
    return 0u;
  }
  if (aig.is_pi(n)) {
    return patterns.input_bits(n - 1u)[word];
  }
  const knode m = collapsed_.node_map[conv_.node_map[n]];
  return csig_.word(m, word);
}

void ce_simulator::simulate_word(const sim::pattern_set& patterns,
                                 std::size_t word)
{
  auto& net = collapsed_.net;
  uint64_t* const wb = csig_.tail_word(word).data();
  wb[0] = 0u;
  wb[1] = ~uint64_t{0};
  net.foreach_pi(
      [&](knode n) { wb[n] = patterns.input_bits(n - 2u)[word]; });
  std::vector<uint64_t> ins;
  net.foreach_gate([&](knode n) {
    if (!needed_[n]) {
      return;
    }
    const auto& fis = net.fanins(n);
    ins.resize(fis.size());
    for (std::size_t i = 0; i < fis.size(); ++i) {
      ins[i] = wb[fis[i]];
    }
    wb[n] = core::stp_evaluate_word(net.table(n), ins, scratch_);
  });
}

} // namespace stps::sweep
