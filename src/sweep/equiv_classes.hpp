/// \file equiv_classes.hpp
/// \brief Complement-aware candidate equivalence classes.
///
/// Nodes that produce the same simulation signature *up to complement*
/// are candidates for merging (§II-C).  Signatures are normalized by
/// their first pattern bit, so a node and its inversion land in one
/// class; a member's *phase* is that first bit, and two members n, m are
/// conjectured to satisfy `n == m ⊕ (phase(n) ⊕ phase(m))`.  The
/// constant-zero node participates like any other node, which makes the
/// all-constant class (§IV, constant propagation) just another class
/// whose representative is node 0.  Classes only ever split: either by
/// new simulation words (counter-examples) or by exact resolution.
/// Class ids are never reused, so a split class keeps its id for the
/// group containing its lowest member and fresh ids for the rest.
///
/// All partitioning (the initial build and every split) runs through one
/// dense, epoch-stamped open-addressing core owned by the instance: the
/// scratch tables are allocated once and revalidated by bumping a stamp,
/// so the per-counter-example refinement hot path performs no heap
/// allocation unless a class actually splits.
#pragma once

#include "network/aig.hpp"
#include "sim/patterns.hpp"
#include "sim/signature_store.hpp"

#include <cstdint>
#include <vector>

namespace stps::sweep {

class equiv_classes
{
public:
  static constexpr uint32_t no_class = ~uint32_t{0};

  /// Groups the constant node and all live gates (and PIs) by normalized
  /// signature; singleton classes are dropped.  \p last_word_mask selects
  /// the valid bits of the final signature word (sim::tail_mask), so the
  /// zero padding cannot break complement normalization.
  void build(const net::aig_network& aig, const sim::signature_store& sig,
             uint64_t last_word_mask = ~uint64_t{0});

  /// Splits every class using signature word \p word only (the word the
  /// newest counter-examples landed in), masked by \p word_mask.
  /// Returns the number of new classes created.
  std::size_t refine_with_word(const sim::signature_store& sig,
                               std::size_t word,
                               uint64_t word_mask = ~uint64_t{0});

  /// Splits a single class \p c by signature word \p word (masked by
  /// \p word_mask), leaving every other class untouched — the lazy path
  /// of batched counter-example refinement.  Ids of classes split off
  /// are appended to \p created_ids when non-null (including ids whose
  /// group immediately dissolved to a singleton).  Returns the number of
  /// new classes created.
  std::size_t refine_class_with_word(uint32_t c,
                                     const sim::signature_store& sig,
                                     std::size_t word,
                                     uint64_t word_mask = ~uint64_t{0},
                                     std::vector<uint32_t>* created_ids
                                     = nullptr);

  /// Splits class \p c by caller-provided exact keys (e.g. window truth
  /// tables): members with equal keys stay together.  Returns the number
  /// of new classes created.
  std::size_t split_by_keys(uint32_t c, const std::vector<uint64_t>& keys);

  uint32_t class_of(net::node n) const
  {
    return n < class_id_.size() ? class_id_[n] : no_class;
  }
  /// Phase of a member: first signature bit at build time.
  bool phase(net::node n) const { return phase_[n] != 0u; }
  /// Conjectured complement relation between two members of one class.
  bool complemented(net::node a, net::node b) const
  {
    return phase(a) != phase(b);
  }

  const std::vector<net::node>& members(uint32_t c) const
  {
    return classes_.at(c);
  }
  std::size_t num_classes() const noexcept { return live_classes_; }
  std::size_t num_class_ids() const noexcept { return classes_.size(); }

  /// Removes a node from its class (after merge or don't-touch); classes
  /// shrinking to one member are dissolved.
  void remove_member(net::node n);

  /// Dissolves class \p c wholesale: every member becomes classless and
  /// the class goes dead (its id is not reused).  No-op on an already
  /// empty id.  Shard workers use this to drop the classes owned by
  /// other shards from their private copy.
  void dissolve_class(uint32_t c);

  /// Sum of members over all live classes.
  std::size_t num_candidate_nodes() const;

private:
  uint32_t new_class(std::vector<net::node> nodes);
  void dissolve_if_singleton(uint32_t c);

  /// Assigns `group_of_[i]` (groups numbered by first occurrence, so the
  /// group of element 0 is group 0) for `count` elements keyed by
  /// `keys_[i]`, via the epoch-stamped open-addressed scratch table.
  /// Returns the number of distinct groups.
  uint32_t partition_by_scratch_keys(std::size_t count);
  /// Grows the scratch table to hold \p count keys and invalidates every
  /// slot (amortized; no work when already large enough).
  void prepare_scratch(std::size_t count);
  /// Splits class \p c into the groups recorded in `group_of_`
  /// (`num_groups >= 2`); group 0 keeps id \p c.  Appends fresh ids to
  /// \p created_ids when non-null; returns the number of classes created.
  std::size_t apply_partition(uint32_t c, uint32_t num_groups,
                              std::vector<uint32_t>* created_ids);

  std::vector<std::vector<net::node>> classes_;
  std::vector<uint32_t> class_id_;
  /// Member phase as 0/1 bytes (not vector<bool>): the refinement key
  /// gather kernel reads it per node id.
  std::vector<uint8_t> phase_;
  std::size_t live_classes_ = 0;

  // Dense partition scratch: one open-addressed table (key, group,
  // validity stamp per slot) plus per-element key/group buffers and a
  // counting-sort gather buffer, all reused across refinements.
  std::vector<uint64_t> slot_key_;
  std::vector<uint32_t> slot_group_;
  std::vector<uint32_t> slot_stamp_;
  uint32_t stamp_ = 0;
  std::vector<uint64_t> keys_;
  std::vector<uint32_t> group_of_;
  /// Per group: gather offset (apply_partition) or representative
  /// element index (build).
  std::vector<uint32_t> group_first_;
  std::vector<uint32_t> group_size_;
  std::vector<uint32_t> group_cursor_;
  std::vector<net::node> gather_;
  std::vector<net::node> sorted_;
};

} // namespace stps::sweep
