/// \file ce_engine.hpp
/// \brief Selectable counter-example propagation engines for the STP
/// sweeper (§IV-A), dispatched by instance size.
///
/// When SAT disproves a candidate equivalence it hands back a
/// counter-example; the sweeper appends it to the pattern set and must
/// bring class members' signature words up to date.  Two engines do
/// that, with identical observable behavior and very different cost
/// shapes:
///
/// * **collapsed** — the paper's approach (ce_simulator.hpp): a k-LUT
///   view collapsed with tree cuts, built once per sweep, absorbs each
///   CE output-sensitively along fanout lists.  The build (AIG → k-LUT
///   conversion, collapse, initial simulation) is a fixed cost that
///   amortizes on large instances with many CEs.
/// * **resim** — whole-AIG word resimulation over `sim::bitwise_sim`:
///   no build at all; each CE recomputes the open signature word for
///   *every* node id (dead gates included, so merged-away class members
///   keep their function-true words exactly like the collapsed
///   snapshot) in one branch-free pass.  On sub-10k-gate instances this
///   beats the collapsed view's build + per-LUT evaluation; on deep
///   paper-scale instances the full pass per CE loses.
///
/// `resolve_ce_engine` implements the `auto` policy: resim below the
/// gate threshold, collapsed at or above it.  Both engines answer
/// `node_word` with bit-identical values — the differential harness
/// (tests/test_differential.cpp) and the bench `--ablation` proof pin
/// that the choice moves runtime only, never results.
#pragma once

#include "network/aig.hpp"
#include "sim/patterns.hpp"
#include "sim/signature_store.hpp"
#include "sweep/sweep_stats.hpp" // ce_engine_kind

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace stps::sweep {

/// Build-time configuration shared by the engines (collapsed-only knobs
/// are ignored by resim).
struct ce_engine_config
{
  uint32_t collapse_limit = 8;  ///< tree-cut leaf bound (collapsed)
  bool prune_targets = true;    ///< reps + fanout frontier (collapsed)
  uint32_t initial_words = 1;   ///< trailing words simulated at build;
                                ///< 0 = full arena (collapsed)
};

/// One sweep's counter-example propagation engine.  Lifecycle: `build`
/// once after the initial classes exist, then `add_ce` after every
/// appended counter-example; `node_word` answers any constant, PI, or
/// target word the refinement syncs into the candidate store.
class ce_engine
{
public:
  virtual ~ce_engine() = default;

  /// The engine actually running (never `automatic`).
  virtual ce_engine_kind kind() const noexcept = 0;

  /// \p targets are the class members whose words refinement will read;
  /// \p pinned are the class representatives (kept observable even
  /// under target pruning).
  virtual void build(const net::aig_network& aig,
                     std::span<const net::node> targets,
                     std::span<const net::node> pinned,
                     const sim::pattern_set& patterns) = 0;

  /// Absorbs the newest pattern (already appended to \p patterns).
  virtual void add_ce(const sim::pattern_set& patterns,
                      const std::vector<bool>& ce) = 0;

  /// Signature word of a constant, PI, or target node.
  virtual uint64_t node_word(const net::aig_network& aig, net::node n,
                             const sim::pattern_set& patterns,
                             std::size_t word) = 0;

  /// Frees words absorbed by the equivalence classes (word budget).
  virtual void trim_absorbed(std::size_t first_live) = 0;

  /// The engine's signature store (memory counters).
  virtual const sim::signature_store& store() const noexcept = 0;

  /// \name Output-sensitivity counters (collapsed engine only)
  /// \{
  virtual bool has_visit_counters() const noexcept { return false; }
  virtual uint64_t gates_visited() const noexcept { return 0; }
  virtual uint64_t gates_scan_baseline() const noexcept { return 0; }
  virtual uint64_t targets_pruned() const noexcept { return 0; }
  /// \}
};

/// The `auto` dispatch: resim below \p gate_threshold gates, collapsed
/// at or above it; explicit requests pass through.
ce_engine_kind resolve_ce_engine(ce_engine_kind requested,
                                 uint64_t num_gates,
                                 uint32_t gate_threshold) noexcept;

/// Creates the engine for an already-resolved kind (`automatic` is an
/// error — resolve first).
std::unique_ptr<ce_engine> make_ce_engine(ce_engine_kind resolved,
                                          const ce_engine_config& config);

} // namespace stps::sweep
