/// \file sat_patterns.hpp
/// \brief Two-round SAT-guided initial pattern generation (§IV-A).
///
/// Random patterns leave many gates looking constant or near-constant,
/// which bloats candidate equivalence classes with false members.  The
/// paper (following Amarù et al., DAC'20 [6]) generates additional
/// patterns with a SAT solver:
///
/// * **Round 1** — for every gate whose signature is all-zeros or
///   all-ones, ask SAT for an input assignment driving it to the other
///   value.  A satisfying assignment becomes a new pattern (the gate was
///   a false constant candidate); UNSAT *proves* the gate constant, and
///   it is reported for immediate constant propagation (Alg. 2 line 3).
/// * **Round 2** — for gates whose signature has only a few ones (or
///   zeros), ask SAT for assignments producing the minority value, so
///   signatures gain toggles and distinguish more class candidates.
#pragma once

#include "network/aig.hpp"
#include "sat/cnf_manager.hpp"
#include "sim/patterns.hpp"
#include "sweep/resource_governor.hpp"

#include <cstdint>
#include <utility>
#include <vector>

namespace stps::sweep {

struct guided_pattern_config
{
  uint64_t base_patterns = 1024;   ///< random patterns before guidance
  uint64_t seed = 0x5eed;          ///< RNG seed for the random base
  int64_t conflict_budget = 1000;  ///< per-query budget (unknown → skip)
  uint32_t round1_iterations = 2;  ///< re-simulate & retry rounds
  uint64_t round2_ones_threshold = 2;  ///< "few ones" bound for round 2
  std::size_t max_round2_queries = 512;
  /// Round-2 queries re-targeted by signature-group entropy: candidates
  /// are grouped by their complement-normalized signature (prospective
  /// equivalence classes), groups are ranked by minority-bit count
  /// (lowest entropy — the most constant-looking — first), and each
  /// group gets *one* guided query.  On deep random logic near-constant
  /// gates are strongly correlated, so the old per-gate loop burned one
  /// satisfiable SAT call per member of a group any single witness
  /// would have diversified whole.  false = the per-gate loop.
  bool round2_group_by_signature = true;
  /// Seed each guided query's cone phases from the current signatures
  /// (stp_sweep_params::use_signature_phase; the STP sweeper forwards
  /// its flag — the fraig baseline leaves it off).
  bool use_signature_phase = false;
  /// Resource governor of the enclosing sweep job (non-owning; null =
  /// ungoverned).  Both rounds poll it between queries and return the
  /// patterns generated so far when it trips — a partial pattern set is
  /// still a valid pattern set, and `proven_constants` only ever holds
  /// completed UNSAT proofs.
  resource_governor* governor = nullptr;
};

struct guided_pattern_result
{
  sim::pattern_set patterns;
  /// Gates proven constant in round 1: (node, constant value).
  std::vector<std::pair<net::node, bool>> proven_constants;
  uint64_t sat_calls = 0;        ///< total SAT queries issued
  uint64_t satisfiable_calls = 0;
  uint64_t patterns_added = 0;   ///< guided patterns appended to the base
  double sim_seconds = 0.0;      ///< time in the simulator
  double sat_seconds = 0.0;      ///< time in the SAT queries
};

/// Runs both guidance rounds; the manager accumulates the circuit CNF, so
/// passing the sweeper's own CNF manager shares encoded cones and learned
/// clauses with the later equivalence queries (subject to its garbage
/// policy).
guided_pattern_result sat_guided_patterns(const net::aig_network& aig,
                                          sat::cnf_manager& cnf,
                                          const guided_pattern_config& config);

} // namespace stps::sweep
