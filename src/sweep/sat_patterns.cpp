#include "sweep/sat_patterns.hpp"

#include "sim/bitwise_sim.hpp"

#include <bit>
#include <chrono>

namespace stps::sweep {

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start)
{
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// Number of ones in a signature, respecting the pattern tail.
uint64_t ones_count(std::span<const uint64_t> sig)
{
  uint64_t n = 0;
  for (const uint64_t w : sig) {
    n += std::popcount(w);
  }
  return n;
}

} // namespace

guided_pattern_result sat_guided_patterns(const net::aig_network& aig,
                                          sat::aig_encoder& encoder,
                                          const guided_pattern_config& config)
{
  guided_pattern_result result;
  result.patterns = sim::pattern_set::random(
      aig.num_pis(), config.base_patterns, config.seed);

  std::vector<bool> proven(aig.size(), false);
  // Witnesses collected per round and bulk-appended (one capacity grow).
  std::vector<std::vector<bool>> round_witnesses;

  // ---- Round 1: eliminate false constant candidates. -------------------
  for (uint32_t iter = 0; iter < config.round1_iterations; ++iter) {
    auto t_sim = clock_type::now();
    const sim::signature_store sig = sim::simulate_aig(aig, result.patterns);
    result.sim_seconds += seconds_since(t_sim);
    const uint64_t total = result.patterns.num_patterns();
    round_witnesses.clear();
    aig.foreach_gate([&](net::node n) {
      if (proven[n]) {
        return;
      }
      const uint64_t ones = ones_count(sig.row(n));
      if (ones != 0u && ones != total) {
        return; // signature already toggles
      }
      const bool looks_constant = ones != 0u;
      ++result.sat_calls;
      // One query settles it: SAT hands back a witness pattern breaking
      // the false candidacy, UNSAT proves the constant.
      const auto t_sat = clock_type::now();
      const sat::result r = encoder.prove_constant(
          net::signal{n, false}, looks_constant, config.conflict_budget);
      result.sat_seconds += seconds_since(t_sat);
      if (r == sat::result::sat) {
        ++result.satisfiable_calls;
        round_witnesses.push_back(encoder.model_inputs());
        ++result.patterns_added;
      } else if (r == sat::result::unsat) {
        proven[n] = true;
        result.proven_constants.emplace_back(n, looks_constant);
      }
    });
    if (round_witnesses.empty()) {
      break;
    }
    result.patterns.add_patterns(round_witnesses);
  }

  // ---- Round 2: break up near-constant signatures. ----------------------
  auto t_sim = clock_type::now();
  const sim::signature_store sig = sim::simulate_aig(aig, result.patterns);
  result.sim_seconds += seconds_since(t_sim);
  const uint64_t total = result.patterns.num_patterns();
  std::size_t queries = 0;
  round_witnesses.clear();
  aig.foreach_gate([&](net::node n) {
    if (proven[n] || queries >= config.max_round2_queries) {
      return;
    }
    const uint64_t ones = ones_count(sig.row(n));
    const bool few_ones = ones != 0u && ones <= config.round2_ones_threshold;
    const bool few_zeros =
        ones != total && total - ones <= config.round2_ones_threshold;
    if (!few_ones && !few_zeros) {
      return;
    }
    ++queries;
    ++result.sat_calls;
    const auto t_sat = clock_type::now();
    const auto witness = encoder.find_assignment(
        net::signal{n, false}, few_ones, config.conflict_budget);
    result.sat_seconds += seconds_since(t_sat);
    if (witness.has_value()) {
      ++result.satisfiable_calls;
      round_witnesses.push_back(*witness);
      ++result.patterns_added;
    }
  });
  result.patterns.add_patterns(round_witnesses);

  return result;
}

} // namespace stps::sweep
