#include "sweep/sat_patterns.hpp"

#include "sim/bitwise_sim.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <unordered_map>

namespace stps::sweep {

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start)
{
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// Number of ones in a signature, respecting the pattern tail.
/// Word-at-a-time access stays valid after witness words were appended
/// to the store (word-major tails).
uint64_t ones_count(const sim::signature_store& sig, net::node n)
{
  uint64_t count = 0;
  for (std::size_t w = 0; w < sig.num_words(); ++w) {
    count += std::popcount(sig.word(n, w));
  }
  return count;
}

/// Complement-normalized signature hash (FNV-1a over the words, each
/// flipped by the first pattern bit and masked to the valid tail):
/// a gate and its inversion land in one group, exactly like the
/// candidate equivalence classes they would later form.
uint64_t signature_group_key(const sim::signature_store& sig, net::node n,
                             uint64_t num_patterns)
{
  const std::size_t nw = sig.num_words();
  const uint64_t flip = (sig.word(n, 0u) & 1u) != 0u ? ~uint64_t{0} : 0u;
  uint64_t h = 1469598103934665603ull;
  for (std::size_t w = 0; w < nw; ++w) {
    uint64_t word = sig.word(n, w) ^ flip;
    if (w + 1u == nw) {
      word &= sim::tail_mask(num_patterns);
    }
    h ^= word;
    h *= 1099511628211ull;
  }
  return h;
}

} // namespace

guided_pattern_result sat_guided_patterns(const net::aig_network& aig,
                                          sat::cnf_manager& cnf,
                                          const guided_pattern_config& config)
{
  guided_pattern_result result;
  result.patterns = sim::pattern_set::random(
      aig.num_pis(), config.base_patterns, config.seed);

  // Deadline/budget/cancellation poll — once tripped, both rounds stop
  // issuing queries and the patterns collected so far are returned.
  const auto stopped = [governor = config.governor]() {
    return governor != nullptr && governor->should_stop();
  };

  std::vector<bool> proven(aig.size(), false);

  // Witnesses are re-simulated *incrementally* (one appended word) the
  // moment SAT hands them back, so every later candidate checks against
  // up-to-date signatures.  Near-constant gates are strongly correlated
  // — one witness typically toggles many of them at once — and with
  // stale signatures each used to cost its own satisfiable SAT query.
  auto t_sim = clock_type::now();
  sim::signature_store sig = sim::simulate_aig(aig, result.patterns);
  result.sim_seconds += seconds_since(t_sim);

  // Signature-phase seeding for the guided queries themselves: every
  // witness is absorbed with a full last-word resimulation, so the
  // newest pattern's bit is current for *every* node — one consistent
  // assignment to start each query from.  Cleared before returning
  // (`sig` dies with this call; the sweeper installs its own hints).
  struct hint_guard
  {
    sat::cnf_manager* cnf = nullptr;
    ~hint_guard()
    {
      if (cnf != nullptr) {
        cnf->set_phase_hints(nullptr);
      }
    }
  } clear_hints_on_exit{config.use_signature_phase ? &cnf : nullptr};
  if (config.use_signature_phase) {
    cnf.set_phase_hints([&sig, &result](net::node n) -> int {
      if (n >= sig.size() || sig.num_words() == 0u) {
        return -1;
      }
      const uint64_t word = sig.word(n, sig.num_words() - 1u);
      const uint64_t bit = (result.patterns.num_patterns() - 1u) & 63u;
      return static_cast<int>((word >> bit) & 1u);
    });
  }

  const auto absorb_witness = [&](const std::vector<bool>& witness) {
    const auto t_ce = clock_type::now();
    result.patterns.add_pattern(witness);
    sim::resimulate_aig_last_word(aig, result.patterns, sig);
    result.sim_seconds += seconds_since(t_ce);
    ++result.patterns_added;
  };

  // ---- Round 1: eliminate false constant candidates. -------------------
  // Incremental absorption makes one pass converge: a second iteration
  // would find every signature already current (the loop remains for
  // configs that cap witnesses below convergence).
  for (uint32_t iter = 0; iter < config.round1_iterations && !stopped();
       ++iter) {
    bool any_witness = false;
    aig.foreach_gate([&](net::node n) {
      if (proven[n] || stopped()) {
        return;
      }
      const uint64_t ones = ones_count(sig, n);
      if (ones != 0u && ones != result.patterns.num_patterns()) {
        return; // signature already toggles
      }
      const bool looks_constant = ones != 0u;
      ++result.sat_calls;
      // One query settles it: SAT hands back a witness pattern breaking
      // the false candidacy, UNSAT proves the constant.
      const auto t_sat = clock_type::now();
      const sat::result r = cnf.prove_constant(
          net::signal{n, false}, looks_constant, config.conflict_budget);
      result.sat_seconds += seconds_since(t_sat);
      if (r == sat::result::sat) {
        ++result.satisfiable_calls;
        absorb_witness(cnf.model_inputs());
        any_witness = true;
      } else if (r == sat::result::unsat) {
        proven[n] = true;
        result.proven_constants.emplace_back(n, looks_constant);
      }
    });
    if (!any_witness) {
      break;
    }
  }

  // ---- Round 2: break up near-constant signatures. ----------------------
  // A candidate still near-constant *right now* (signatures evolve as
  // witnesses absorb) gets a guided query toward its minority value.
  // \p ones returns the popcount so callers don't re-scan the signature.
  const auto near_constant = [&](net::node n, bool& toward_ones,
                                 uint64_t& ones) {
    const uint64_t total = result.patterns.num_patterns();
    ones = ones_count(sig, n);
    const bool few_ones = ones != 0u && ones <= config.round2_ones_threshold;
    const bool few_zeros =
        ones != total && total - ones <= config.round2_ones_threshold;
    toward_ones = few_ones;
    return few_ones || few_zeros;
  };
  std::size_t queries = 0;
  const auto query_gate = [&](net::node n, bool toward_ones) {
    ++queries;
    ++result.sat_calls;
    const auto t_sat = clock_type::now();
    const auto witness = cnf.find_assignment(
        net::signal{n, false}, toward_ones, config.conflict_budget);
    result.sat_seconds += seconds_since(t_sat);
    if (witness.has_value()) {
      ++result.satisfiable_calls;
      absorb_witness(*witness);
    }
  };

  if (stopped()) {
    return result;
  }

  if (!config.round2_group_by_signature) {
    // Ablation baseline: one query per still-near-constant gate.
    aig.foreach_gate([&](net::node n) {
      bool toward_ones = false;
      uint64_t ones = 0;
      if (proven[n] || queries >= config.max_round2_queries || stopped() ||
          !near_constant(n, toward_ones, ones)) {
        return;
      }
      query_gate(n, toward_ones);
    });
    return result;
  }

  // Entropy-ranked group targeting: gates with identical (up to
  // complement) signatures are one prospective equivalence class — any
  // single witness that toggles one member toggles them all, so the
  // group earns *one* query, aimed at its first member that is still
  // near-constant when its turn comes.  Groups are ranked by minority
  // count (lowest entropy first): the most constant-looking signatures
  // are both the likeliest false candidates and the cheapest queries.
  struct round2_group
  {
    uint64_t minority;  ///< entropy rank at collection time
    net::node first;    ///< lowest member (deterministic tie-break)
    std::vector<net::node> members;
  };
  std::vector<round2_group> groups;
  {
    std::unordered_map<uint64_t, std::size_t> group_of_key;
    const uint64_t total = result.patterns.num_patterns();
    aig.foreach_gate([&](net::node n) {
      bool toward_ones = false;
      uint64_t ones = 0;
      if (proven[n] || !near_constant(n, toward_ones, ones)) {
        return;
      }
      const uint64_t minority = std::min(ones, total - ones);
      const uint64_t key = signature_group_key(sig, n, total);
      const auto [it, inserted] = group_of_key.emplace(key, groups.size());
      if (inserted) {
        groups.push_back({minority, n, {n}});
      } else {
        groups[it->second].members.push_back(n);
      }
    });
  }
  std::sort(groups.begin(), groups.end(),
            [](const round2_group& a, const round2_group& b) {
              return a.minority != b.minority ? a.minority < b.minority
                                              : a.first < b.first;
            });
  for (const round2_group& group : groups) {
    if (queries >= config.max_round2_queries || stopped()) {
      break;
    }
    // Earlier groups' witnesses may already have diversified this one;
    // query the first member the toggles missed, if any.
    for (const net::node n : group.members) {
      bool toward_ones = false;
      uint64_t ones = 0;
      if (near_constant(n, toward_ones, ones)) {
        query_gate(n, toward_ones);
        break;
      }
    }
  }

  return result;
}

} // namespace stps::sweep
