#include "sweep/sat_patterns.hpp"

#include "sim/bitwise_sim.hpp"

#include <bit>
#include <chrono>

namespace stps::sweep {

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start)
{
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// Number of ones in a signature, respecting the pattern tail.
/// Word-at-a-time access stays valid after witness words were appended
/// to the store (word-major tails).
uint64_t ones_count(const sim::signature_store& sig, net::node n)
{
  uint64_t count = 0;
  for (std::size_t w = 0; w < sig.num_words(); ++w) {
    count += std::popcount(sig.word(n, w));
  }
  return count;
}

} // namespace

guided_pattern_result sat_guided_patterns(const net::aig_network& aig,
                                          sat::cnf_manager& cnf,
                                          const guided_pattern_config& config)
{
  guided_pattern_result result;
  result.patterns = sim::pattern_set::random(
      aig.num_pis(), config.base_patterns, config.seed);

  std::vector<bool> proven(aig.size(), false);

  // Witnesses are re-simulated *incrementally* (one appended word) the
  // moment SAT hands them back, so every later candidate checks against
  // up-to-date signatures.  Near-constant gates are strongly correlated
  // — one witness typically toggles many of them at once — and with
  // stale signatures each used to cost its own satisfiable SAT query.
  auto t_sim = clock_type::now();
  sim::signature_store sig = sim::simulate_aig(aig, result.patterns);
  result.sim_seconds += seconds_since(t_sim);
  const auto absorb_witness = [&](const std::vector<bool>& witness) {
    const auto t_ce = clock_type::now();
    result.patterns.add_pattern(witness);
    sim::resimulate_aig_last_word(aig, result.patterns, sig);
    result.sim_seconds += seconds_since(t_ce);
    ++result.patterns_added;
  };

  // ---- Round 1: eliminate false constant candidates. -------------------
  // Incremental absorption makes one pass converge: a second iteration
  // would find every signature already current (the loop remains for
  // configs that cap witnesses below convergence).
  for (uint32_t iter = 0; iter < config.round1_iterations; ++iter) {
    bool any_witness = false;
    aig.foreach_gate([&](net::node n) {
      if (proven[n]) {
        return;
      }
      const uint64_t ones = ones_count(sig, n);
      if (ones != 0u && ones != result.patterns.num_patterns()) {
        return; // signature already toggles
      }
      const bool looks_constant = ones != 0u;
      ++result.sat_calls;
      // One query settles it: SAT hands back a witness pattern breaking
      // the false candidacy, UNSAT proves the constant.
      const auto t_sat = clock_type::now();
      const sat::result r = cnf.prove_constant(
          net::signal{n, false}, looks_constant, config.conflict_budget);
      result.sat_seconds += seconds_since(t_sat);
      if (r == sat::result::sat) {
        ++result.satisfiable_calls;
        absorb_witness(cnf.model_inputs());
        any_witness = true;
      } else if (r == sat::result::unsat) {
        proven[n] = true;
        result.proven_constants.emplace_back(n, looks_constant);
      }
    });
    if (!any_witness) {
      break;
    }
  }

  // ---- Round 2: break up near-constant signatures. ----------------------
  std::size_t queries = 0;
  aig.foreach_gate([&](net::node n) {
    if (proven[n] || queries >= config.max_round2_queries) {
      return;
    }
    const uint64_t total = result.patterns.num_patterns();
    const uint64_t ones = ones_count(sig, n);
    const bool few_ones = ones != 0u && ones <= config.round2_ones_threshold;
    const bool few_zeros =
        ones != total && total - ones <= config.round2_ones_threshold;
    if (!few_ones && !few_zeros) {
      return;
    }
    ++queries;
    ++result.sat_calls;
    const auto t_sat = clock_type::now();
    const auto witness = cnf.find_assignment(
        net::signal{n, false}, few_ones, config.conflict_budget);
    result.sat_seconds += seconds_since(t_sat);
    if (witness.has_value()) {
      ++result.satisfiable_calls;
      absorb_witness(*witness);
    }
  });

  return result;
}

} // namespace stps::sweep
