/// \file fraig.hpp
/// \brief Baseline FRAIG-style SAT sweeper (the `&fraig` comparator of
/// Table II).
///
/// The classical flow of refs [2, 11]: random word-parallel initial
/// simulation groups nodes into candidate equivalence classes; gates are
/// processed in topological order and checked against their class
/// representative with SAT; UNSAT merges the pair, SAT yields a
/// counter-example that is appended to the pattern set and *bit-parallel
/// re-simulated over the whole network* to refine all classes.  The STP
/// sweeper (stp_sweeper.hpp) differs exactly where the paper claims:
/// pattern quality (SAT-guided), CE simulation scope (class nodes only,
/// via collapsed k-LUT cuts), and exhaustive window resolution.
#pragma once

#include "network/aig.hpp"
#include "sweep/sat_patterns.hpp"
#include "sweep/sweep_stats.hpp"

#include <cstdint>

namespace stps::sweep {

struct fraig_params
{
  uint64_t num_patterns = 2048;   ///< initial random patterns
  uint64_t seed = 1;
  int64_t conflict_budget = -1;   ///< per query; -1 = unlimited (paper)
  /// `&fraig -x` itself invests in SAT-guided initial simulation
  /// ([6]; §V-B: "While &fraig invests runtime resources in high-quality
  /// initial simulation...").  Enabled by default to model that; the
  /// plain-random configuration remains available for ablations.
  bool use_guided_patterns = true;

  /// \name Budgeted, interruptible sweeping (same semantics as
  /// stp_sweep_params — see stp_sweeper.hpp point 6)
  /// \{
  resource_governor* governor = nullptr; ///< non-owning; null = ungoverned
  uint32_t undet_retry_rounds = 3;  ///< escalating unDET retry rounds
  uint32_t undet_budget_factor = 2; ///< per-round budget multiplier
  sat::fault_plan faults{};         ///< deterministic fault injection
  /// \}

  fraig_params() = default;
  fraig_params(uint64_t patterns, uint64_t s, int64_t budget,
               bool guided = true)
      : num_patterns{patterns}, seed{s}, conflict_budget{budget},
        use_guided_patterns{guided}
  {
  }
};

/// Sweeps \p aig in place; returns the Table II counters.
sweep_stats fraig_sweep(net::aig_network& aig, const fraig_params& params);

} // namespace stps::sweep
