/// \file tfi_manager.hpp
/// \brief The transitive-fanin manager of the paper's ecosystem (Fig. 2).
///
/// Algorithm 2 bounds the nodes compared per candidate by its transitive
/// fanin with limit n = 1000 (line 1, line 13).  The manager orders a
/// candidate's potential drivers (its class co-members) so that members
/// inside the bounded TFI cone come first — merging onto a node already
/// feeding the candidate maximizes sharing (QoR) — followed by the
/// remaining earlier members.
#pragma once

#include "network/aig.hpp"
#include "network/traversal.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace stps::sweep {

class tfi_manager
{
public:
  tfi_manager(const net::aig_network& aig, std::size_t limit)
      : aig_{aig}, limit_{limit}, in_tfi_(aig.size(), false)
  {
  }

  std::size_t limit() const noexcept { return limit_; }

  /// Drivers for \p candidate among \p members: live nodes with id less
  /// than the candidate, TFI members first, each group in ascending id.
  std::vector<net::node> order_drivers(net::node candidate,
                                       std::span<const net::node> members);

private:
  const net::aig_network& aig_;
  std::size_t limit_;
  std::vector<bool> in_tfi_;
};

} // namespace stps::sweep
