/// \file ce_simulator.hpp
/// \brief Output-sensitive counter-example simulation on the collapsed
/// k-LUT view of the AIG (§III-B, §IV-A).
///
/// Built once per sweep — merges preserve node functions, so the
/// snapshot stays valid.  Counter-examples are absorbed one bit at a
/// time by `add_ce`, which is *fanout-driven*: a worklist seeded from
/// the PIs the CE actually flips away from the all-zero padding walks
/// forward along the k-LUT network's static fanout lists and stops
/// wherever a gate's bit lands back on its *padding default* (its value
/// under the all-zero assignment).  Cost is therefore proportional to
/// the cone the CE disturbs — not to the full needed-gate set, which the
/// previous implementation scanned per CE regardless of how local the
/// flip was.
///
/// The worklist is a dense bitset over node ids: pushing sets a bit
/// (idempotent, no dedup bookkeeping), and the drain scans words in
/// increasing id order, so every gate is evaluated after all its
/// disturbed fanins settled, exactly once — ids are topological.
/// Draining clears exactly the bits it set, so the bitset is all-zero
/// between CEs and absorbing a CE performs no allocation and no
/// network-sized clear.  The signature store is kept fully word-major
/// (every word a tail block), putting all of one CE's reads and writes
/// in a single contiguous `size()`-word block.
///
/// Tail bits at positions ≥ num_patterns hold exactly those padding
/// defaults — which is also what full-word STP evaluation of zero-padded
/// pattern words produces — so clean cones need no work at all.  Every
/// consumer masks the open word with sim::tail_mask, so the padding is
/// never observable.
///
/// **Target pruning** (`ce_build_options::prune_targets`).  Keeping
/// every equivalence-class member observable forces the tree-cut
/// collapse to make each one a root, even members whose only reference
/// is a single fanout gate.  Pruning keeps as explicit collapse targets
/// only the *pinned* nodes (the sweeper passes class representatives)
/// plus the *fanout frontier* — members that are multi-fanout or drive a
/// PO, which the collapse promotes to roots anyway, so they cost
/// nothing.  Each pruned member records a small *evaluation cone* at
/// build time: its private single-fanout gates down to mapped roots /
/// PIs.  `node_word` of a pruned member replays that cone over the
/// roots' current words, so refinement reads the bit-identical value it
/// would have read from an unpruned build — pruning changes where a
/// member's word is computed, never what it is.  Members whose private
/// cone would exceed a small bound stay targets.
///
/// **Reduced initial arena** (`ce_build_options::initial_words`).  Only
/// the *open* (partially filled) pattern word is ever re-read after
/// build — earlier words' refinement information is already absorbed by
/// the equivalence classes the sweeper built from the candidate store.
/// At scale the full initial simulation of the collapsed view is
/// therefore a pure build-time memory spike; `initial_words = k`
/// simulates only the trailing k words and appends the rest *born
/// trimmed* (absolute indices preserved, no storage).  0 keeps the full
/// arena (the unbounded ablation baseline).
#pragma once

#include "core/stp_eval.hpp"
#include "cut/tree_cuts.hpp"
#include "network/aig.hpp"
#include "network/convert.hpp"
#include "sim/patterns.hpp"
#include "sim/signature_store.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace stps::sweep {

/// Build-time policy of the collapsed CE view (see file comment).
struct ce_build_options
{
  /// Nodes that must stay observable even under pruning (class
  /// representatives).  Ignored unless `prune_targets` is set.
  std::span<const net::node> pinned = {};
  /// Prune collapse targets to pinned nodes + the fanout frontier;
  /// pruned members are answered through recorded evaluation cones.
  bool prune_targets = false;
  /// Trailing pattern words simulated at build; 0 = all words.
  uint32_t initial_words = 0;
};

class ce_simulator
{
public:
  using knode = net::klut_network::node;

  /// Converts \p aig to a k-LUT network, collapses it to tree cuts that
  /// keep \p target_gates observable (all of them, or the pruned subset
  /// selected by \p options), restricts evaluation to the targets'
  /// cones, and simulates the trailing `options.initial_words` words of
  /// \p patterns.
  void build(const net::aig_network& aig,
             std::span<const net::node> target_gates, uint32_t collapse_limit,
             const sim::pattern_set& patterns,
             const ce_build_options& options = {});

  /// Absorbs the newest pattern (already appended to \p patterns) by
  /// propagating its single bit through the disturbed cone only.
  void add_ce(const sim::pattern_set& patterns, const std::vector<bool>& ce);

  /// Signature word of an original AIG node (constant, PI, or target).
  /// Pruned targets are answered by replaying their evaluation cone
  /// (live scratch, hence non-const).
  uint64_t node_word(const net::aig_network& aig, net::node n,
                     const sim::pattern_set& patterns, std::size_t word);

  /// \name Output-sensitivity counters
  /// \{
  /// Gates the fanout-driven worklist actually evaluated, over all
  /// `add_ce` calls.
  uint64_t ce_gates_visited() const noexcept { return gates_visited_; }
  /// Gates the input-insensitive needed-set scan would have evaluated:
  /// `needed_gate_count() * (number of add_ce calls)`.
  uint64_t ce_gates_scan_baseline() const noexcept { return scan_baseline_; }
  /// Needed gates in the collapsed view (the per-CE scan cost replaced).
  std::size_t needed_gate_count() const noexcept { return needed_count_; }
  /// Targets answered through evaluation cones instead of collapse
  /// roots.
  std::size_t targets_pruned() const noexcept { return targets_pruned_; }
  /// \}

  /// Frees the storage of collapsed signature words with index
  /// < \p first_live — callable once their refinement information is
  /// absorbed by the equivalence classes (the sweeper's word budget).
  /// `node_word` and `add_ce` only ever touch the current last word, so
  /// trimming older words never changes behavior.
  void trim_absorbed(std::size_t first_live) { csig_.trim_words(first_live); }

  /// The collapsed store (memory-budget counters: live/trimmed words,
  /// peak bytes).
  const sim::signature_store& store() const noexcept { return csig_; }

private:
  /// One operand of a pruned-cone gate: a leaf slot or an earlier cone
  /// gate, with the fanin complement folded in.
  struct cone_op
  {
    uint32_t index;  ///< leaf slot (is_leaf) or cone-gate slot
    bool is_leaf;
    bool complement;
  };
  /// Evaluation cone of one pruned target; gates in topological order,
  /// the last gate is the target itself.
  struct pruned_cone
  {
    uint32_t leaves_begin, num_leaves;
    uint32_t gates_begin, num_gates; ///< 2 cone_ops per gate
  };

  /// Full-word STP pass (initial simulation at build time only).
  void simulate_word(const sim::pattern_set& patterns, std::size_t word);
  /// Opens tail word \p word with every node's padding default.
  void open_word(std::size_t word);
  /// Replays cone \p slot over the roots' words.
  uint64_t eval_pruned(const net::aig_network& aig, uint32_t slot,
                       const sim::pattern_set& patterns, std::size_t word);

  net::aig_to_klut_result conv_;
  cut::collapse_result collapsed_;
  std::vector<uint8_t> needed_;
  std::vector<uint8_t> base_; ///< padding default per node
  std::size_t needed_count_ = 0;
  sim::signature_store csig_; ///< fully word-major (base_words == 0)
  core::stp_scratch scratch_;

  /// Worklist bitset over node ids; all-zero between add_ce calls (the
  /// drain clears exactly the bits pushes set).
  std::vector<uint64_t> queued_bits_;

  /// Pruned-target bookkeeping (empty without pruning).
  std::vector<uint32_t> pruned_slot_; ///< AIG node → cone index or ~0
  std::vector<pruned_cone> cones_;
  std::vector<net::node> cone_leaves_;
  std::vector<cone_op> cone_ops_;
  std::vector<uint64_t> eval_scratch_;
  std::size_t targets_pruned_ = 0;

  uint64_t gates_visited_ = 0;
  uint64_t scan_baseline_ = 0;
};

} // namespace stps::sweep
