/// \file cec.hpp
/// \brief Combinational equivalence checking of two AIGs.
///
/// The paper verifies every sweep with ABC's `&cec`; this is our
/// equivalent: pair up the POs of two networks over shared PIs, prefilter
/// with random simulation, and prove each remaining pair with a SAT
/// miter.  Returns a verdict plus a distinguishing input pattern when the
/// networks differ.
#pragma once

#include "network/aig.hpp"

#include <cstdint>
#include <optional>
#include <vector>

namespace stps::sweep {

struct cec_result
{
  bool equivalent = false;
  /// PO index and PI assignment witnessing a difference (when not
  /// equivalent and not undecided).
  std::optional<uint32_t> failing_po;
  std::vector<bool> counter_example;
  bool undecided = false; ///< conflict budget exhausted on some PO
  uint64_t sat_calls = 0;
  uint64_t sim_filtered = 0; ///< PO pairs discharged by simulation alone
};

struct cec_params
{
  uint64_t sim_patterns = 1024;
  uint64_t seed = 99;
  int64_t conflict_budget = -1;
};

/// Checks PO-wise equivalence of \p a and \p b (same PI/PO counts).
cec_result check_equivalence(const net::aig_network& a,
                             const net::aig_network& b,
                             const cec_params& params = {});

} // namespace stps::sweep
