/// \file cec.hpp
/// \brief Combinational equivalence checking of two AIGs.
///
/// The paper verifies every sweep with ABC's `&cec`; this is our
/// equivalent: pair up the POs of two networks over shared PIs, prefilter
/// with random simulation, and prove each remaining pair with a SAT
/// miter.  Returns a verdict plus a distinguishing input pattern when the
/// networks differ.
#pragma once

#include "network/aig.hpp"
#include "sweep/resource_governor.hpp"

#include <cstdint>
#include <optional>
#include <vector>

namespace stps::sweep {

/// Tri-state CEC outcome.  `undecided` is a first-class verdict — a
/// finite conflict budget (or a tripped resource governor) can exhaust
/// on some PO, and that is *not* evidence of inequivalence.
enum class cec_verdict : uint8_t
{
  equivalent = 0,
  inequivalent = 1, ///< witnessed by a concrete counter-example
  undecided = 2,    ///< budget/deadline ran out before a proof either way
};

struct cec_result
{
  /// True only when every PO pair was *proven* equal.  Note the
  /// tri-state: `equivalent == false` does NOT imply a difference was
  /// found — check `undecided` (or use `verdict()` /
  /// `proven_inequivalent()`).  Callers that gate on `equivalent` alone
  /// are conservative: an undecided run fails the gate, it never
  /// certifies a wrong network.
  bool equivalent = false;
  /// PO index and PI assignment witnessing a difference (when not
  /// equivalent and not undecided).
  std::optional<uint32_t> failing_po;
  std::vector<bool> counter_example;
  bool undecided = false; ///< conflict budget exhausted on some PO
  uint64_t sat_calls = 0;
  uint64_t sim_filtered = 0; ///< PO pairs discharged by simulation alone

  /// The explicit tri-state view of (equivalent, undecided).
  cec_verdict verdict() const noexcept
  {
    if (undecided) {
      return cec_verdict::undecided;
    }
    return equivalent ? cec_verdict::equivalent : cec_verdict::inequivalent;
  }
  /// True only on a *witnessed* difference — never on budget
  /// exhaustion.  The check for "this sweep corrupted the network".
  bool proven_inequivalent() const noexcept
  {
    return !equivalent && !undecided;
  }
};

struct cec_params
{
  uint64_t sim_patterns = 1024;
  uint64_t seed = 99;
  int64_t conflict_budget = -1;
  /// Resource governor bounding the whole check (non-owning; null =
  /// ungoverned).  A tripped governor yields `undecided`, never a
  /// difference verdict.
  resource_governor* governor = nullptr;
};

/// Checks PO-wise equivalence of \p a and \p b (same PI/PO counts).
cec_result check_equivalence(const net::aig_network& a,
                             const net::aig_network& b,
                             const cec_params& params = {});

} // namespace stps::sweep
