#include "sweep/cec.hpp"

#include "sat/encoder.hpp"
#include "sweep/fraig.hpp"
#include "sim/bitwise_sim.hpp"

#include <bit>
#include <stdexcept>

namespace stps::sweep {

namespace {

/// Copies \p src into \p dest over the given PI signals; returns the PO
/// signals in \p dest.
std::vector<net::signal> copy_into(net::aig_network& dest,
                                   const net::aig_network& src,
                                   const std::vector<net::signal>& pis)
{
  std::vector<net::signal> map(src.size(), net::signal{0});
  map[0] = dest.get_constant(false);
  src.foreach_pi([&](net::node n) { map[n] = pis[n - 1u]; });
  src.foreach_gate([&](net::node n) {
    const net::signal a = src.fanin0(n);
    const net::signal b = src.fanin1(n);
    const net::signal ma = a.is_complemented() ? !map[a.get_node()]
                                               : map[a.get_node()];
    const net::signal mb = b.is_complemented() ? !map[b.get_node()]
                                               : map[b.get_node()];
    map[n] = dest.create_and(ma, mb);
  });
  std::vector<net::signal> pos;
  src.foreach_po([&](net::signal f, uint32_t) {
    const net::signal m = map[f.get_node()];
    pos.push_back(f.is_complemented() ? !m : m);
  });
  return pos;
}

} // namespace

cec_result check_equivalence(const net::aig_network& a,
                             const net::aig_network& b,
                             const cec_params& params)
{
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) {
    throw std::invalid_argument{"check_equivalence: interface mismatch"};
  }
  cec_result result;

  // Build the miter: shared PIs, one XOR output per PO pair.
  net::aig_network miter;
  std::vector<net::signal> pis;
  pis.reserve(a.num_pis());
  for (uint32_t i = 0; i < a.num_pis(); ++i) {
    pis.push_back(miter.create_pi());
  }
  const std::vector<net::signal> pos_a = copy_into(miter, a, pis);
  const std::vector<net::signal> pos_b = copy_into(miter, b, pis);
  std::vector<net::signal> xors;
  xors.reserve(pos_a.size());
  for (std::size_t i = 0; i < pos_a.size(); ++i) {
    const net::signal x = miter.create_xor(pos_a[i], pos_b[i]);
    xors.push_back(x);
    miter.create_po(x);
  }

  // Simulation prefilter: any xor output simulating to 1 is a proof of
  // difference; outputs never seen at 1 still need SAT.
  const sim::pattern_set patterns = sim::pattern_set::random(
      miter.num_pis(), params.sim_patterns, params.seed);
  const sim::signature_store sig = sim::simulate_aig(miter, patterns);
  const auto first_one = [&](net::signal x) -> int64_t {
    const auto row = sig[x.get_node()];
    const uint64_t flip = x.is_complemented() ? ~uint64_t{0} : 0u;
    for (std::size_t w = 0; w < row.size(); ++w) {
      uint64_t word = row[w] ^ flip;
      if (w + 1u == row.size() && (patterns.num_patterns() % 64u) != 0u) {
        word &= (uint64_t{1} << (patterns.num_patterns() % 64u)) - 1u;
      }
      if (word != 0u) {
        return static_cast<int64_t>(w * 64u + std::countr_zero(word));
      }
    }
    return -1;
  };

  for (uint32_t i = 0; i < xors.size(); ++i) {
    const int64_t witness = first_one(xors[i]);
    if (witness >= 0) {
      ++result.sim_filtered;
      result.failing_po = i;
      result.counter_example.clear();
      for (uint32_t p = 0; p < miter.num_pis(); ++p) {
        result.counter_example.push_back(
            patterns.bit(p, static_cast<uint64_t>(witness)));
      }
      result.equivalent = false;
      return result;
    }
  }

  // Fraig the miter: equivalences between the two cones are proven
  // bottom-up as a sequence of small local SAT queries, exactly how
  // ABC's `&cec` works — a single monolithic miter query is hopeless on
  // XOR-rich cones.  Equivalent PO pairs collapse to constant 0.
  // Guided pattern generation buys candidate quality, not proof speed;
  // for pure verification the plain random configuration is the right
  // trade.
  fraig_params sweep_params{params.sim_patterns, params.seed + 1u,
                            params.conflict_budget,
                            /*guided=*/false};
  sweep_params.governor = params.governor;
  const sweep_stats fraig_stats = fraig_sweep(miter, sweep_params);
  result.sat_calls += fraig_stats.sat_calls_total;

  sat::solver solver;
  sat::aig_encoder encoder{miter, solver};
  encoder.set_resource_hooks(params.governor);
  for (uint32_t i = 0; i < xors.size(); ++i) {
    if (params.governor != nullptr && params.governor->should_stop()) {
      // Governed wind-down: unproven POs stay undecided — a tripped
      // deadline is never evidence of a difference.
      result.undecided = true;
      break;
    }
    const net::signal x = miter.po_at(i); // rewired by the sweep
    if (x == miter.get_constant(false)) {
      continue; // proven equal structurally
    }
    ++result.sat_calls;
    const sat::result r =
        encoder.prove_constant(x, false, params.conflict_budget);
    if (r == sat::result::sat) {
      result.failing_po = i;
      result.counter_example = encoder.model_inputs();
      result.equivalent = false;
      return result;
    }
    if (r == sat::result::unknown) {
      result.undecided = true;
    }
  }
  // Tri-state: every difference return above carries a witness, so a
  // fall-through with `undecided` set means "ran out of budget", not
  // "not equivalent" — cec_result::verdict() keeps the two apart.
  result.equivalent = !result.undecided;
  return result;
}

} // namespace stps::sweep
