#include "sweep/stp_sweeper.hpp"

#include "core/stp_simulator.hpp"
#include "network/traversal.hpp"
#include "sat/cnf_manager.hpp"
#include "sweep/ce_engine.hpp"
#include "sweep/equiv_classes.hpp"
#include "sweep/tfi_manager.hpp"
#include "sweep/worker_pool.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>

namespace stps::sweep {

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start)
{
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// Exact window resolution by one word-parallel exhaustive simulation
/// over the *union* cone of a class (§IV-A, "< 16 leaves").
///
/// The previous implementation composed a full truth table per member
/// (`cut::cut_function`), re-walking the shared cone once per member and
/// allocating up-to-2^15-bit tables along the way.  Simulating the union
/// cone once — 64 exhaustive patterns per word, every member read off
/// the same pass — pays the cone cost a single time and allocates
/// nothing beyond reusable scratch.  Two members get equal keys iff
/// their phase-normalized exhaustive signatures (= truth tables over the
/// window leaves, leaf i = variable i) are identical, exactly as before.
class window_resolver
{
public:
  void attach(const net::aig_network& aig)
  {
    mark_.assign(aig.size(), 0u);
    index_.assign(aig.size(), 0u);
    epoch_ = 0;
  }

  /// Fills \p keys with group ids: keys[i] == keys[j] iff members i and
  /// j implement the same function over \p leaves up to their phases.
  void group_keys(const net::aig_network& aig, const equiv_classes& classes,
                  std::span<const net::node> members,
                  std::span<const net::node> leaves,
                  std::vector<uint64_t>& keys)
  {
    if (++epoch_ == 0u) {
      std::fill(mark_.begin(), mark_.end(), 0u);
      epoch_ = 1u;
    }
    const uint32_t k = static_cast<uint32_t>(leaves.size());
    for (uint32_t i = 0; i < k; ++i) {
      mark_[leaves[i]] = epoch_;
      index_[leaves[i]] = i;
    }

    // Union cone: every gate between the members and the leaves, each
    // visited once no matter how many members share it.
    cone_.clear();
    stack_.clear();
    const auto discover = [&](net::node n) {
      if (!aig.is_constant(n) && mark_[n] != epoch_) {
        mark_[n] = epoch_;
        cone_.push_back(n);
        stack_.push_back(n);
      }
    };
    for (const net::node m : members) {
      discover(m);
    }
    while (!stack_.empty()) {
      const net::node n = stack_.back();
      stack_.pop_back();
      discover(aig.fanin0(n).get_node());
      discover(aig.fanin1(n).get_node());
    }
    // Ids are topological; remove the leaves we re-discovered (they were
    // marked before the DFS, so only gates landed in cone_).
    std::sort(cone_.begin(), cone_.end());
    for (std::size_t i = 0; i < cone_.size(); ++i) {
      index_[cone_[i]] = static_cast<uint32_t>(i) + k;
    }

    const std::size_t nw = k > 6u ? std::size_t{1} << (k - 6u) : 1u;
    const uint64_t valid =
        k < 6u ? (uint64_t{1} << (uint64_t{1} << k)) - 1u : ~uint64_t{0};
    cur_.resize(k + cone_.size());
    sigs_.resize(members.size() * nw);

    for (std::size_t w = 0; w < nw; ++w) {
      for (uint32_t i = 0; i < k; ++i) {
        cur_[i] = leaf_word(i, w);
      }
      const auto value = [&](net::signal s) {
        const net::node x = s.get_node();
        const uint64_t v = aig.is_constant(x) ? 0u : cur_[index_[x]];
        return s.is_complemented() ? ~v : v;
      };
      for (std::size_t i = 0; i < cone_.size(); ++i) {
        const net::node n = cone_[i];
        cur_[k + i] = value(aig.fanin0(n)) & value(aig.fanin1(n));
      }
      for (std::size_t mi = 0; mi < members.size(); ++mi) {
        const net::node m = members[mi];
        uint64_t v = aig.is_constant(m) ? 0u : cur_[index_[m]];
        v ^= classes.phase(m) ? ~uint64_t{0} : 0u;
        sigs_[mi * nw + w] = v & valid;
      }
    }

    // Exact grouping: hash, then verify against the group representative.
    keys.assign(members.size(), 0u);
    group_hash_.clear();
    group_rep_.clear();
    for (std::size_t mi = 0; mi < members.size(); ++mi) {
      const uint64_t* row = sigs_.data() + mi * nw;
      uint64_t h = 1469598103934665603ull;
      for (std::size_t w = 0; w < nw; ++w) {
        h ^= row[w];
        h *= 1099511628211ull;
      }
      uint64_t group = group_hash_.size();
      for (std::size_t g = 0; g < group_hash_.size(); ++g) {
        if (group_hash_[g] == h &&
            std::equal(row, row + nw, sigs_.data() + group_rep_[g] * nw)) {
          group = g;
          break;
        }
      }
      if (group == group_hash_.size()) {
        group_hash_.push_back(h);
        group_rep_.push_back(mi);
      }
      keys[mi] = group;
    }
  }

private:
  static uint64_t leaf_word(uint32_t var, std::size_t w)
  {
    static constexpr uint64_t masks[6] = {
        0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
        0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull};
    if (var < 6u) {
      return masks[var];
    }
    return (w >> (var - 6u)) & 1u ? ~uint64_t{0} : 0u;
  }

  std::vector<uint32_t> mark_;  ///< epoch stamps (leaf or cone membership)
  std::vector<uint32_t> index_; ///< leaf position / cone slot per node
  uint32_t epoch_ = 0;
  std::vector<net::node> cone_;
  std::vector<net::node> stack_;
  std::vector<uint64_t> cur_;  ///< current word: leaves then cone gates
  std::vector<uint64_t> sigs_; ///< member signatures, member-major
  std::vector<uint64_t> group_hash_;
  std::vector<std::size_t> group_rep_;
};

/// A merge a shard proved but did not apply: \p n is equivalent to
/// \p target over the frozen input AIG.  The commit pass applies the
/// records in ascending node-id order on the calling thread.
struct merge_record
{
  net::node n;
  net::signal target;
};

/// How one candidate's processing ended (escalating unDET retry +
/// governed wind-down; see stp_sweeper.hpp point 6).
enum class cand_status : uint8_t
{
  settled,  ///< merged, refined away, kept as representative, ...
  gave_up,  ///< unknown with no rounds left: final dont_touch
  deferred, ///< unknown: stays in its class, queued for a retry round
  stopped,  ///< governor tripped mid-processing: wind the sweep down
};

/// One SAT-phase pass over a candidate order: the class machinery, CE
/// engine, window resolution, and the candidate/retry loops of Alg. 2,
/// operating on *owned* pattern/signature/class state.
///
/// Two modes share every line of the hot path:
///
/// * **in-place** (`deferred == nullptr`): proven merges call
///   `aig.substitute_node` immediately — the single-thread sweep,
///   byte-identical to the pre-parallel implementation;
/// * **recording** (`deferred != nullptr`): the AIG is frozen (shared
///   read-only by all shards) and proven merges append a
///   `merge_record` instead.  Each shard constructs its own core over
///   private copies of the simulation state and a private
///   `sat::cnf_manager`, so a shard's trajectory is a pure function of
///   its inputs — independent of how shards are scheduled onto threads.
class sweep_core
{
public:
  sweep_core(net::aig_network& aig, const stp_sweep_params& params,
             sat::cnf_manager& cnf, sweep_stats& stats,
             uint32_t gates_global, sim::pattern_set patterns,
             sim::signature_store sig, equiv_classes classes,
             std::vector<merge_record>* deferred)
      : aig_{aig}, params_{params}, cnf_{cnf}, stats_{stats},
        gates_global_{gates_global}, patterns_{std::move(patterns)},
        sig_{std::move(sig)}, classes_{std::move(classes)},
        deferred_merges_{deferred}, tfi_{aig, params.tfi_limit},
        dont_touch_(aig.size(), false)
  {
    // ---- Counter-example propagation engine (§III-B, §IV-A). ---------
    // Dispatch by *global* instance size (ce_engine.hpp): every shard
    // must pick the same engine for the shard count to be the only
    // trajectory parameter.  Targets are every class member whose word
    // refinement will read; pinned nodes are the class representatives
    // the collapsed engine keeps observable even under target pruning.
    engine_kind_ = resolve_ce_engine(params_.ce_engine, gates_global_,
                                     params_.ce_engine_gate_threshold);
    ran_collapsed_ = engine_kind_ == ce_engine_kind::collapsed;
    cesim_ = make_ce_engine(
        engine_kind_, {params_.collapse_limit, params_.ce_prune_targets,
                       params_.ce_initial_words});
    {
      const auto t_sim = clock_type::now();
      std::vector<net::node> target_gates;
      std::vector<net::node> pinned;
      for (uint32_t c = 0; c < classes_.num_class_ids(); ++c) {
        bool have_rep = false;
        for (const net::node m : classes_.members(c)) {
          if (aig_.is_and(m) && !aig_.is_dead(m)) {
            target_gates.push_back(m);
            if (!have_rep) {
              pinned.push_back(m); // class representative
              have_rep = true;
            }
          }
        }
      }
      cesim_->build(aig_, target_gates, pinned, patterns_);
      stats_.sim_seconds += seconds_since(t_sim);
    }

    applied_global_ = patterns_.num_patterns();
    window_support_ = params_.effective_window_support(gates_global_);
    resolver_.attach(aig_);
    trim_absorbed_words(); // base words are absorbed by the initial build
  }

  /// The candidate loop (reverse topological order, lines 4-32) plus
  /// the escalating unDET retry rounds.
  void run(std::span<const net::node> order)
  {
    // Deferral is live only when a finite per-query budget can actually
    // produce unknowns — with the unlimited default the queue stays
    // empty and the loop below is byte-identical to single-shot marking.
    const bool retries_on =
        params_.conflict_budget >= 0 && params_.undet_retry_rounds > 0u;
    std::vector<net::node> deferred;

    for (const net::node n : order) {
      if (stopped()) {
        aborted_ = true;
        break;
      }
      if (aig_.is_dead(n) || dont_touch_[n]) {
        continue; // skip(candidate), lines 7-9
      }
      const cand_status status =
          process_candidate(n, params_.conflict_budget, retries_on);
      if (status == cand_status::deferred) {
        deferred.push_back(n);
      } else if (status == cand_status::stopped) {
        aborted_ = true;
        break;
      }
    }

    // ---- Escalating unDET retry rounds (stp_sweeper.hpp point 6). ----
    // Each round re-queries the still-deferred candidates with the
    // budget multiplied by `undet_budget_factor`; the last round may no
    // longer defer, so every survivor settles or ends as a final
    // dont_touch.
    const int64_t factor =
        std::max<int64_t>(int64_t{params_.undet_budget_factor}, 1);
    int64_t retry_budget = params_.conflict_budget;
    std::vector<net::node> still_deferred;
    for (uint32_t round = 1; round <= params_.undet_retry_rounds &&
                             !deferred.empty() && !aborted_;
         ++round) {
      retry_budget =
          retry_budget > std::numeric_limits<int64_t>::max() / factor
              ? std::numeric_limits<int64_t>::max()
              : retry_budget * factor;
      const bool more_rounds = round < params_.undet_retry_rounds;
      still_deferred.clear();
      for (const net::node n : deferred) {
        if (stopped()) {
          aborted_ = true;
          break;
        }
        if (node_merged(n)) {
          // A cascaded merge settled it while it sat in the queue.
          ++stats_.undet_resolved;
          continue;
        }
        ++stats_.undet_retries;
        switch (process_candidate(n, retry_budget, more_rounds)) {
          case cand_status::settled:
            ++stats_.undet_resolved;
            break;
          case cand_status::deferred:
            still_deferred.push_back(n);
            break;
          case cand_status::stopped:
            aborted_ = true;
            break;
          case cand_status::gave_up:
            break;
        }
        if (aborted_) {
          break;
        }
      }
      std::swap(deferred, still_deferred);
    }
    // Candidates still deferred after an abort are left unresolved —
    // the sweep never got to decide them, which is not the same as
    // unDET.
  }

  bool aborted() const noexcept { return aborted_; }

  /// Writes the pass's outcome/engine/CNF/store counters into the stats
  /// this core was constructed over (assignment semantics — a parallel
  /// driver sums the per-shard stats afterwards).
  void finalize_stats()
  {
    if (aborted_ && params_.governor != nullptr) {
      stats_.outcome = params_.governor->outcome();
    }
    stats_.has_ce_engine = true;
    stats_.ce_engine_used = engine_kind_;
    stats_.ce_engine_escalated = escalated_;
    if (ran_collapsed_) {
      // The collapsed engine's output-sensitivity counters, captured at
      // the escalation point when the sweep switched engines.
      stats_.has_ce_counters = true;
      stats_.ce_gates_visited =
          escalated_ ? esc_visited_ : cesim_->gates_visited();
      stats_.ce_gates_scan_baseline =
          escalated_ ? esc_baseline_ : cesim_->gates_scan_baseline();
      stats_.ce_targets_pruned =
          escalated_ ? esc_pruned_ : cesim_->targets_pruned();
    }
    stats_.sat_nodes_encoded = cnf_.nodes_encoded();
    stats_.sat_solver_rebuilds = cnf_.rebuilds();
    stats_.sat_clauses_peak = cnf_.clauses_peak();
    const sat::solver_stats solver_totals = cnf_.solver_statistics();
    stats_.sat_conflicts = solver_totals.conflicts;
    stats_.sat_decisions = solver_totals.decisions;
    stats_.sat_restarts = solver_totals.restarts;
    stats_.sat_learnts_reduced = solver_totals.learnts_reduced;
    stats_.sat_lbd_sum = solver_totals.lbd_sum;
    stats_.sat_binary_clauses = solver_totals.binary_clauses;
    stats_.sat_lits_collapsed = solver_totals.lits_collapsed;
    stats_.sat_clauses_subsumed = solver_totals.clauses_subsumed;
    stats_.sat_inprocess_seconds = solver_totals.inprocess_seconds;
    stats_.phase_seed_words = cnf_.phase_seeds();
    stats_.has_store_counters = true;
    stats_.store_words_live =
        sig_.live_words() + cesim_->store().live_words();
    stats_.store_words_trimmed = sig_.words_trimmed() +
                                 cesim_->store().words_trimmed() +
                                 esc_store_trimmed_;
    stats_.store_peak_bytes =
        sig_.peak_bytes() + cesim_->store().peak_bytes() + esc_store_peak_;
    stats_.pattern_words_live = patterns_.live_words();
    stats_.pattern_words_recycled = patterns_.words_recycled();
  }

private:
  bool stopped() const
  {
    return params_.governor != nullptr && params_.governor->should_stop();
  }

  /// In-place mode: merged nodes are dead in the AIG.  Recording mode
  /// never kills nodes, so "already merged" means "recorded" — the node
  /// left its class when the record was taken.
  bool node_merged(net::node n) const
  {
    if (deferred_merges_ == nullptr) {
      return aig_.is_dead(n);
    }
    return classes_.class_of(n) == equiv_classes::no_class;
  }

  /// Books a proven merge of \p n onto \p driver (shared counter
  /// bookkeeping of the window and UNSAT paths), then either applies it
  /// or records it for the deterministic commit pass.
  void merge_candidate(net::node n, net::node driver, bool complement,
                       bool window)
  {
    classes_.remove_member(n);
    if (window) {
      ++stats_.window_merges;
    }
    ++stats_.merges;
    if (aig_.is_constant(driver)) {
      ++stats_.constant_merges;
    }
    const net::signal target{driver, complement};
    if (deferred_merges_ != nullptr) {
      deferred_merges_->push_back({n, target});
    } else {
      aig_.substitute_node(n, target);
    }
  }

  // ---- Signature-store and pattern word budget. ----------------------
  // Once the classes have been refined with a word, the partition has
  // absorbed everything it says and no code path reads it again — only
  // the *open* (partially filled) word is ever re-read or written.
  // Trimming frees absorbed words' storage (and recycles the pattern
  // set's CE word blocks through its ring); with the initial build just
  // done, that is every base word the moment enough of them accumulate.
  void trim_absorbed_words()
  {
    if (params_.store_word_budget == 0u || params_.fault_fail_store_trim) {
      return; // budget off, or injected trim failure: keep every word
    }
    // The open word must stay live; on an exact 64-pattern boundary the
    // last word is filled *and* refined with (the caller just flushed),
    // so everything can go.
    const std::size_t first_live = patterns_.num_patterns() % 64u == 0u
                                       ? patterns_.num_words()
                                       : patterns_.num_words() - 1u;
    if (sig_.live_words() <= params_.store_word_budget &&
        cesim_->store().live_words() <= params_.store_word_budget &&
        patterns_.live_words() <= params_.store_word_budget) {
      return;
    }
    sig_.trim_words(first_live);
    cesim_->trim_absorbed(first_live);
    patterns_.trim_words(first_live);
  }

  // ---- Mid-sweep engine escalation (`auto` only). --------------------
  // The size dispatch cannot see per-CE disturbance: on deep random
  // logic every counter-example can flip a large fraction of the needed
  // gates, and the collapsed worklist (random-access LUT bit lookups)
  // then loses to one branch-free whole-AIG word pass.  Once the
  // measured average visited-gates-per-CE crosses the threshold, swap
  // engines.  The resim engine recomputes the open word entirely from
  // the pattern set, so the swap carries no state and cannot change
  // results — the differential harness pins a forced-escalation run
  // against the pure engines.
  void maybe_escalate()
  {
    if (params_.ce_engine != ce_engine_kind::automatic ||
        params_.ce_escalate_per_mille == 0u || escalated_ ||
        engine_kind_ != ce_engine_kind::collapsed || ces_absorbed_ < 64u) {
      return;
    }
    const uint64_t budget = uint64_t{gates_global_} *
                            params_.ce_escalate_per_mille / 1000u *
                            ces_absorbed_;
    if (cesim_->gates_visited() <= budget) {
      return;
    }
    escalated_ = true;
    esc_visited_ = cesim_->gates_visited();
    esc_baseline_ = cesim_->gates_scan_baseline();
    esc_pruned_ = cesim_->targets_pruned();
    esc_store_trimmed_ = cesim_->store().words_trimmed();
    esc_store_peak_ = cesim_->store().peak_bytes();
    engine_kind_ = ce_engine_kind::resim;
    cesim_ = make_ce_engine(engine_kind_, {params_.collapse_limit,
                                           params_.ce_prune_targets,
                                           params_.ce_initial_words});
    cesim_->build(aig_, {}, {}, patterns_);
  }

  // ---- Batched counter-example bookkeeping. --------------------------
  // CEs land in the open tail word immediately (cesim keeps every bit
  // current), but *refinement* is deferred per class: a class is
  // refined only when (b) it is the current candidate's class and needs
  // the fresh bits to make progress, (c) the loop advances to it, or
  // (a) the word fills with 64 CEs and everything is brought up to date
  // at once.
  void mark_applied(uint32_t c, uint64_t count)
  {
    if (c >= class_applied_.size()) {
      class_applied_.resize(c + 1u, 0u);
    }
    class_applied_[c] = count;
  }

  bool class_stale(uint32_t c) const
  {
    const uint64_t applied =
        std::max(applied_global_,
                 c < class_applied_.size() ? class_applied_[c] : 0u);
    return applied < patterns_.num_patterns();
  }

  // Copies the open tail word from the CE simulator into the candidate
  // signature store for the given members (dead members keep their
  // function — merges are function-preserving — so they sync too, which
  // keeps refinement independent of *when* a class is refined).
  void sync_member_rows(const std::vector<net::node>& members)
  {
    while (sig_.num_words() < patterns_.num_words()) {
      sig_.append_word();
    }
    const std::size_t last = patterns_.num_words() - 1u;
    for (const net::node m : members) {
      sig_.word(m, last) = cesim_->node_word(aig_, m, patterns_, last);
    }
  }

  void refine_one_class(uint32_t c)
  {
    sync_member_rows(classes_.members(c));
    created_ids_scratch_.clear();
    classes_.refine_class_with_word(
        c, sig_, patterns_.num_words() - 1u,
        sim::tail_mask(patterns_.num_patterns()), &created_ids_scratch_);
    const uint64_t count = patterns_.num_patterns();
    mark_applied(c, count);
    for (const uint32_t f : created_ids_scratch_) {
      mark_applied(f, count);
    }
  }

  // Condition (a): bring every class up to date with the filled word.
  void refine_all_classes()
  {
    if (applied_global_ == patterns_.num_patterns()) {
      return;
    }
    const std::size_t last = patterns_.num_words() - 1u;
    for (uint32_t c = 0; c < classes_.num_class_ids(); ++c) {
      sync_member_rows(classes_.members(c));
    }
    classes_.refine_with_word(sig_, last,
                              sim::tail_mask(patterns_.num_patterns()));
    applied_global_ = patterns_.num_patterns();
  }

  // ---- Window resolution: class id → (size when checked, exact). -----
  // Scaled windowing: the support limit grows with instance size — on
  // paper-scale instances every satisfiable call a larger exhaustive
  // window avoids is worth far more than the window pass costs.
  bool maybe_resolve(uint32_t c)
  {
    if (!params_.use_window_resolution || c == equiv_classes::no_class) {
      return false;
    }
    const auto& members = classes_.members(c);
    if (const auto it = resolve_cache_.find(c);
        it != resolve_cache_.end() && it->second.first == members.size()) {
      return it->second.second;
    }
    if (!net::bounded_support(aig_, members, window_support_,
                              support_scratch_)) {
      resolve_cache_[c] = {members.size(), false};
      return false;
    }
    // Exhaustive simulation over the window: exact functions of all
    // members over the common support decide the class once and for
    // all.  One word-parallel pass over the members' union cone serves
    // every member (window_resolver above).
    const auto t_win = clock_type::now();
    resolve_members_scratch_.assign(members.begin(), members.end());
    resolver_.group_keys(aig_, classes_, resolve_members_scratch_,
                         support_scratch_, resolve_keys_scratch_);
    classes_.split_by_keys(c, resolve_keys_scratch_);
    // Every surviving sub-class is exact now — and, having just been
    // derived from the freshly refined parent, already up to date.
    const uint64_t applied_count = patterns_.num_patterns();
    for (const net::node m : resolve_members_scratch_) {
      const uint32_t cid = classes_.class_of(m);
      if (cid != equiv_classes::no_class) {
        resolve_cache_[cid] = {classes_.members(cid).size(), true};
        mark_applied(cid, applied_count);
      }
    }
    stats_.sim_seconds += seconds_since(t_win);
    const uint32_t cid_first =
        classes_.class_of(resolve_members_scratch_.front());
    return cid_first != equiv_classes::no_class;
  }

  // One candidate against its class, exactly Alg. 2 lines 5-31 —
  // except that an `unknown` verdict defers instead of marking
  // dont_touch while \p allow_defer holds.  A deferred candidate keeps
  // its class membership: it stays available as a merge *target* for
  // later candidates (merging into an unproven node is sound — only
  // the pairwise proof matters), and a retry round re-enters here with
  // a doubled \p budget.
  cand_status process_candidate(const net::node n, int64_t budget,
                                bool allow_defer)
  {
    for (;;) {
      uint32_t c = classes_.class_of(n);
      if (c == equiv_classes::no_class) {
        return cand_status::settled;
      }
      // Conditions (b)/(c): the candidate's class must see every
      // buffered counter-example bit before its membership is trusted.
      if (class_stale(c)) {
        const auto t_sim = clock_type::now();
        refine_one_class(c);
        stats_.sim_seconds += seconds_since(t_sim);
        c = classes_.class_of(n);
        if (c == equiv_classes::no_class) {
          return cand_status::settled;
        }
      }
      // Drop members killed by cascaded merges (in-place mode only —
      // a frozen AIG never kills anything mid-pass).
      {
        members_scratch_.assign(classes_.members(c).begin(),
                                classes_.members(c).end());
        for (const net::node m : members_scratch_) {
          if (aig_.is_and(m) && aig_.is_dead(m)) {
            classes_.remove_member(m);
          }
        }
        c = classes_.class_of(n);
        if (c == equiv_classes::no_class) {
          return cand_status::settled;
        }
      }

      maybe_resolve(c);
      c = classes_.class_of(n);
      if (c == equiv_classes::no_class) {
        return cand_status::settled;
      }
      const auto it = resolve_cache_.find(c);
      const bool resolved = it != resolve_cache_.end() &&
                            it->second.first == classes_.members(c).size() &&
                            it->second.second;

      const std::vector<net::node> drivers =
          tfi_.order_drivers(n, classes_.members(c));
      if (drivers.empty()) {
        // n is the representative; later candidates may use it
        return cand_status::settled;
      }
      const net::node driver = drivers.front();
      const bool complement = classes_.complemented(n, driver);

      if (resolved) {
        // Equivalence was proven by exhaustive window simulation; merge
        // without consulting SAT at all.
        merge_candidate(n, driver, complement, /*window=*/true);
        return cand_status::settled;
      }

      const auto t_sat = clock_type::now();
      ++stats_.sat_calls_total;
      const sat::result r = cnf_.prove_equivalent(
          net::signal{n, false}, net::signal{driver, false}, complement,
          budget);
      stats_.sat_seconds += seconds_since(t_sat);

      if (r == sat::result::unsat) {
        merge_candidate(n, driver, complement, /*window=*/false);
        return cand_status::settled;
      }
      if (r == sat::result::unknown) {
        if (stopped()) {
          // Governed wind-down, not a hard query: the candidate is
          // neither proven nor abandoned — leave it untouched.
          return cand_status::stopped;
        }
        if (allow_defer) {
          return cand_status::deferred;
        }
        dont_touch_[n] = true; // mark_dont_touch, lines 19-21
        ++stats_.dont_touch;
        classes_.remove_member(n);
        return cand_status::gave_up;
      }

      // Counter-example (lines 26-28, batched): the bit lands in the
      // open tail word now; refinement is deferred to conditions
      // (a)/(b)/(c) above.
      ++stats_.sat_calls_satisfiable;
      ++stats_.ce_patterns;
      const auto t_sim = clock_type::now();
      const std::vector<bool> ce = cnf_.model_inputs();
      if (patterns_.num_patterns() % 64u == 0u) {
        refine_all_classes();  // condition (a): word full, flush
        trim_absorbed_words(); // every word is absorbed now
      }
      maybe_escalate(); // before the absorb: the old engine is synced
      patterns_.add_pattern(ce);
      cesim_->add_ce(patterns_, ce);
      ++ces_absorbed_;
      if (!params_.use_batched_ce_refinement) {
        // Ablation: eager per-CE refinement (the seed's behavior),
        // through the same sync + dense-refinement path as the
        // batched flush so the two modes cannot drift.
        refine_all_classes();
      }
      stats_.sim_seconds += seconds_since(t_sim);
    }
  }

  net::aig_network& aig_;
  const stp_sweep_params& params_;
  sat::cnf_manager& cnf_;
  sweep_stats& stats_;
  const uint32_t gates_global_; ///< gate count the size policies key on
  sim::pattern_set patterns_;
  sim::signature_store sig_;
  equiv_classes classes_;
  std::vector<merge_record>* deferred_merges_;

  ce_engine_kind engine_kind_ = ce_engine_kind::collapsed;
  std::unique_ptr<ce_engine> cesim_;
  uint64_t ces_absorbed_ = 0;
  bool escalated_ = false;
  uint64_t esc_visited_ = 0, esc_baseline_ = 0, esc_pruned_ = 0;
  uint64_t esc_store_trimmed_ = 0, esc_store_peak_ = 0;
  bool ran_collapsed_ = false;

  uint64_t applied_global_ = 0;
  std::vector<uint64_t> class_applied_; // per class id, lazily grown
  std::vector<uint32_t> created_ids_scratch_;

  uint32_t window_support_ = 0;
  std::unordered_map<uint32_t, std::pair<std::size_t, bool>> resolve_cache_;
  window_resolver resolver_;
  std::vector<net::node> support_scratch_;
  std::vector<net::node> resolve_members_scratch_;
  std::vector<uint64_t> resolve_keys_scratch_;

  tfi_manager tfi_;
  std::vector<bool> dont_touch_;
  std::vector<net::node> members_scratch_;
  bool aborted_ = false;
};

} // namespace

sweep_stats stp_sweep(net::aig_network& aig, const stp_sweep_params& params)
{
  sweep_stats stats;
  const auto t_total = clock_type::now();
  stats.gates_before = aig.num_gates();
  stats.levels_before = net::depth(aig);
  stats.threads = std::max(params.threads, 1u);

  sat::cnf_manager::params cnf_params;
  cnf_params.incremental = params.use_incremental_cnf;
  cnf_params.clause_budget = params.sat_clause_budget;
  cnf_params.cone_scoped_decisions = params.use_cone_scoped_decisions;
  cnf_params.sat_reduce_learnts = params.sat_reduce;
  cnf_params.inprocess = params.sat_inprocess;
  cnf_params.inprocess_interval = params.sat_inprocess_interval;
  cnf_params.inprocess_min_clauses = params.sat_inprocess_min_clauses;
  cnf_params.hooks = params.governor;
  cnf_params.faults = params.faults;
  sat::cnf_manager cnf{aig, cnf_params};

  // Deadline/budget/cancellation poll, and the accounting used when the
  // governor aborts before the class machinery exists — a partial
  // result must still report what it spent.
  const auto stopped = [governor = params.governor]() {
    return governor != nullptr && governor->should_stop();
  };
  const auto fill_cnf_stats = [&]() {
    stats.sat_nodes_encoded = cnf.nodes_encoded();
    stats.sat_solver_rebuilds = cnf.rebuilds();
    stats.sat_clauses_peak = cnf.clauses_peak();
    const sat::solver_stats solver_totals = cnf.solver_statistics();
    stats.sat_conflicts = solver_totals.conflicts;
    stats.sat_decisions = solver_totals.decisions;
    stats.sat_restarts = solver_totals.restarts;
    stats.sat_learnts_reduced = solver_totals.learnts_reduced;
    stats.sat_lbd_sum = solver_totals.lbd_sum;
    stats.sat_binary_clauses = solver_totals.binary_clauses;
    stats.sat_lits_collapsed = solver_totals.lits_collapsed;
    stats.sat_clauses_subsumed = solver_totals.clauses_subsumed;
    stats.sat_inprocess_seconds = solver_totals.inprocess_seconds;
    stats.phase_seed_words = cnf.phase_seeds();
  };

  // ---- Initial patterns (Alg. 2 line 2) + constant propagation (line 3).
  // The per-round simulation budget scales with the gate count (capped at
  // guided.base_patterns), so tiny instances stop over-investing in
  // simulation.
  guided_pattern_config guided_config = params.guided;
  guided_config.base_patterns =
      params.effective_pattern_budget(aig.num_gates());
  guided_config.max_round2_queries =
      params.effective_round2_queries(aig.num_gates());
  guided_config.use_signature_phase = params.use_signature_phase;
  guided_config.governor = params.governor;
  sim::pattern_set patterns;
  if (params.use_guided_patterns) {
    guided_pattern_result guided = sat_guided_patterns(aig, cnf,
                                                       guided_config);
    patterns = std::move(guided.patterns);
    stats.sat_calls_total += guided.sat_calls;
    stats.sim_seconds += guided.sim_seconds;
    stats.sat_seconds += guided.sat_seconds;
    for (const auto& [n, value] : guided.proven_constants) {
      if (!aig.is_dead(n)) {
        ++stats.constant_merges;
        ++stats.merges;
        aig.substitute_node(n, aig.get_constant(value));
      }
    }
  } else {
    patterns = sim::pattern_set::random(
        aig.num_pis(), guided_config.base_patterns, guided_config.seed);
  }

  if (stopped()) {
    // Aborted during pattern generation: the constants applied above
    // are each a completed UNSAT proof, so the network is already a
    // sound partial result — finalize without building the class
    // machinery (engine/store counters stay unreported).
    aig.cleanup_dangling();
    stats.gates_after = aig.num_gates();
    stats.outcome = params.governor->outcome();
    fill_cnf_stats();
    stats.worker_sat_seconds = {stats.sat_seconds};
    stats.total_seconds = seconds_since(t_total);
    return stats;
  }

  // ---- Initial STP simulation and equivalence classes (line 3). --------
  auto t_sim = clock_type::now();
  const core::stp_simulator stp_sim;
  sim::signature_store sig = stp_sim.simulate_aig(aig, patterns);
  equiv_classes classes;
  classes.build(aig, sig, sim::tail_mask(patterns.num_patterns()));
  stats.sim_seconds += seconds_since(t_sim);

  // ---- Signature-guided SAT querying. ----------------------------------
  // Capture every node's bit of the *last* initial signature word — the
  // newest simulated pattern, one consistent whole-network assignment —
  // and seed each cone variable's saved polarity from it when the
  // variable encodes: the first query on a cone starts in a simulation-
  // consistent assignment (phase saving evolves freely afterwards), so
  // its counter-example — a small deviation from exactly that behavior
  // — falls out with far fewer conflicts.  The capture is taken once,
  // before any store trimming, and is engine-independent — both CE
  // engines see identical hints, so the engine-equivalence invariant
  // (identical models, identical CE trajectories) is intact.  The bits
  // are shared read-only: in a parallel sweep every shard's manager
  // seeds from the same capture.
  std::shared_ptr<const std::vector<uint8_t>> phase_bits;
  if (params.use_signature_phase && sig.num_words() > 0u) {
    std::vector<uint8_t> bits(aig.size(), 0u);
    const std::size_t last_word = sig.num_words() - 1u;
    const uint64_t newest = (patterns.num_patterns() - 1u) & 63u;
    for (net::node n = 0; n < bits.size(); ++n) {
      bits[n] =
          static_cast<uint8_t>((sig.word(n, last_word) >> newest) & 1u);
    }
    phase_bits =
        std::make_shared<const std::vector<uint8_t>>(std::move(bits));
  }
  const auto hint_fn = [&](sat::cnf_manager& manager) {
    if (phase_bits != nullptr) {
      manager.set_phase_hints(
          [bits = phase_bits](net::node n) -> int {
            return n < bits->size() ? (*bits)[n] : -1;
          });
    }
  };

  const std::vector<net::node> order = net::reverse_topo_order(aig);
  const uint32_t shards = params.effective_sat_shards();

  if (shards <= 1u) {
    // ---- Single-thread sweep: merges applied in place as proven. -----
    hint_fn(cnf);
    sweep_core core{aig,
                    params,
                    cnf,
                    stats,
                    stats.gates_before,
                    std::move(patterns),
                    std::move(sig),
                    std::move(classes),
                    /*deferred=*/nullptr};
    core.run(order);
    core.finalize_stats();
    aig.cleanup_dangling();
    stats.gates_after = aig.num_gates();
    stats.worker_sat_seconds = {stats.sat_seconds};
    stats.total_seconds = seconds_since(t_total);
    return stats;
  }

  // ---- Parallel SAT phase: class-sharded sweeping. ---------------------
  // The candidate classes are partitioned round-robin (ascending class
  // id) into `shards` shards.  Classes never interact during querying —
  // drivers come from the candidate's own class — so each shard sweeps
  // its classes against the frozen AIG with fully private state: its
  // own cnf_manager, its own copies of the pattern/signature stores and
  // the class partition (non-owned classes dissolved), its own CE
  // engine.  Proven merges are *recorded*, then committed below in
  // ascending node-id order on this thread.  A shard's trajectory is a
  // pure function of its inputs, so the sweep is byte-identical for a
  // fixed shard count no matter how many threads execute it.
  std::vector<uint32_t> owner_of_class(classes.num_class_ids(),
                                       ~uint32_t{0});
  {
    uint32_t next = 0;
    for (uint32_t c = 0; c < classes.num_class_ids(); ++c) {
      if (classes.members(c).size() >= 2u) {
        owner_of_class[c] = next++ % shards;
      }
    }
  }
  std::vector<std::vector<net::node>> shard_order(shards);
  for (const net::node n : order) {
    const uint32_t c = classes.class_of(n);
    if (c != equiv_classes::no_class && owner_of_class[c] != ~uint32_t{0}) {
      shard_order[owner_of_class[c]].push_back(n);
    }
  }

  struct shard_result
  {
    sweep_stats stats;
    std::vector<merge_record> records;
    bool aborted = false;
  };
  std::vector<shard_result> shard_results(shards);

  const uint32_t workers_used =
      std::min(std::max(params.threads, 1u), shards);
  {
    worker_pool pool{workers_used};
    pool.run(shards, [&](std::size_t s) {
      shard_result& out = shard_results[s];
      sat::cnf_manager shard_cnf{aig, cnf_params};
      hint_fn(shard_cnf);
      equiv_classes shard_classes = classes;
      for (uint32_t c = 0; c < shard_classes.num_class_ids(); ++c) {
        if (owner_of_class[c] != static_cast<uint32_t>(s)) {
          shard_classes.dissolve_class(c);
        }
      }
      sweep_core core{aig,
                      params,
                      shard_cnf,
                      out.stats,
                      stats.gates_before,
                      patterns,
                      sig,
                      std::move(shard_classes),
                      &out.records};
      core.run(shard_order[s]);
      core.finalize_stats();
      out.aborted = core.aborted();
    });
  }

  // ---- Merge the per-shard accounting (ascending shard order). ---------
  // Counters are *sums over shards* on top of the prologue's (guided
  // patterns ran on the main manager): `sat_clauses_peak` in particular
  // is the sum of per-manager peaks, not a global simultaneous peak.
  fill_cnf_stats(); // the prologue's SAT effort (guided patterns)
  stats.sat_shards = shards;
  stats.workers_used = workers_used;
  stats.worker_sat_seconds.assign(workers_used, 0.0);
  bool any_aborted = false;
  for (uint32_t s = 0; s < shards; ++s) {
    const sweep_stats& ss = shard_results[s].stats;
    stats.sat_calls_satisfiable += ss.sat_calls_satisfiable;
    stats.sat_calls_total += ss.sat_calls_total;
    stats.merges += ss.merges;
    stats.constant_merges += ss.constant_merges;
    stats.window_merges += ss.window_merges;
    stats.dont_touch += ss.dont_touch;
    stats.ce_patterns += ss.ce_patterns;
    stats.undet_retries += ss.undet_retries;
    stats.undet_resolved += ss.undet_resolved;
    stats.ce_gates_visited += ss.ce_gates_visited;
    stats.ce_gates_scan_baseline += ss.ce_gates_scan_baseline;
    stats.ce_targets_pruned += ss.ce_targets_pruned;
    stats.has_ce_counters = stats.has_ce_counters || ss.has_ce_counters;
    stats.ce_engine_escalated =
        stats.ce_engine_escalated || ss.ce_engine_escalated;
    stats.sat_nodes_encoded += ss.sat_nodes_encoded;
    stats.sat_solver_rebuilds += ss.sat_solver_rebuilds;
    stats.sat_clauses_peak += ss.sat_clauses_peak;
    stats.sat_conflicts += ss.sat_conflicts;
    stats.sat_decisions += ss.sat_decisions;
    stats.sat_restarts += ss.sat_restarts;
    stats.sat_learnts_reduced += ss.sat_learnts_reduced;
    stats.sat_lbd_sum += ss.sat_lbd_sum;
    stats.sat_binary_clauses += ss.sat_binary_clauses;
    stats.sat_lits_collapsed += ss.sat_lits_collapsed;
    stats.sat_clauses_subsumed += ss.sat_clauses_subsumed;
    stats.sat_inprocess_seconds += ss.sat_inprocess_seconds;
    stats.phase_seed_words += ss.phase_seed_words;
    stats.store_words_live += ss.store_words_live;
    stats.store_words_trimmed += ss.store_words_trimmed;
    stats.store_peak_bytes += ss.store_peak_bytes;
    stats.pattern_words_live += ss.pattern_words_live;
    stats.pattern_words_recycled += ss.pattern_words_recycled;
    stats.sim_seconds += ss.sim_seconds;
    stats.sat_seconds += ss.sat_seconds;
    stats.worker_sat_seconds[s % workers_used] += ss.sat_seconds;
    any_aborted = any_aborted || shard_results[s].aborted;
  }
  stats.has_ce_engine = true;
  stats.ce_engine_used = shard_results.front().stats.ce_engine_used;
  stats.has_store_counters = true;
  if (any_aborted && params.governor != nullptr) {
    stats.outcome = params.governor->outcome();
  }

  // ---- Commit pass: apply every recorded merge deterministically. ------
  // Records are sorted by merged node id ascending; `order_drivers`
  // guarantees every target node id is below its candidate, so the
  // resolution chain through already-committed merges strictly
  // decreases and the AIG's id-order invariant holds.  Cascades are
  // folded into a global replacement map so a record whose target died
  // in an earlier commit rewires to the live equivalent; a record whose
  // *own* node already died was merged implicitly by a cascade and is
  // skipped.  Every record is an UNSAT (or exhaustive-window) proof
  // over the frozen AIG, so the commit order cannot invent an unproven
  // substitution — partial-result soundness survives aborts unchanged.
  std::vector<merge_record> records;
  for (shard_result& sr : shard_results) {
    records.insert(records.end(), sr.records.begin(), sr.records.end());
  }
  std::sort(records.begin(), records.end(),
            [](const merge_record& a, const merge_record& b) {
              return a.n < b.n;
            });
  std::vector<net::signal> repl(aig.size(), net::signal{0});
  std::vector<bool> has_repl(aig.size(), false);
  const auto resolve = [&](net::signal s) {
    while (has_repl[s.get_node()]) {
      const bool c = s.is_complemented();
      s = repl[s.get_node()];
      if (c) {
        s = !s;
      }
    }
    return s;
  };
  std::vector<std::pair<net::node, net::signal>> cascades;
  for (const merge_record& rec : records) {
    if (aig.is_dead(rec.n)) {
      continue; // a cascade of an earlier commit merged it already
    }
    cascades.clear();
    aig.substitute_node(rec.n, resolve(rec.target), &cascades);
    for (const auto& [dead, to] : cascades) {
      repl[dead] = to;
      has_repl[dead] = true;
    }
  }

  aig.cleanup_dangling();
  stats.gates_after = aig.num_gates();
  stats.total_seconds = seconds_since(t_total);
  return stats;
}

} // namespace stps::sweep
