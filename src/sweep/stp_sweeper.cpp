#include "sweep/stp_sweeper.hpp"

#include "core/stp_eval.hpp"
#include "core/stp_simulator.hpp"
#include "cut/cuts.hpp"
#include "cut/tree_cuts.hpp"
#include "network/convert.hpp"
#include "network/traversal.hpp"
#include "sat/encoder.hpp"
#include "sim/bitwise_sim.hpp"
#include "sweep/equiv_classes.hpp"
#include "sweep/tfi_manager.hpp"
#include "tt/operations.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <unordered_map>

namespace stps::sweep {

namespace {

using clock_type = std::chrono::steady_clock;
using knode = net::klut_network::node;

double seconds_since(clock_type::time_point start)
{
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// Incremental counter-example simulation on the tree-cut-collapsed
/// k-LUT view of the AIG (§IV-A: "convert nodes not within equivalence
/// classes into k-LUTs, and then simulate candidate nodes").  Built once
/// — merges preserve node functions, so the snapshot stays valid.
///
/// Counter-examples are absorbed one bit at a time by `add_ce`, which is
/// *event-driven*: the pass evaluates only gates whose cones are
/// reachable from inputs the CE actually flips away from the all-zero
/// padding, and stops propagating wherever a gate's bit lands back on
/// its *padding default* (its value under the all-zero assignment).
/// Tail bits at positions ≥ num_patterns hold exactly those padding
/// defaults — which is also what full-word STP evaluation of zero-padded
/// pattern words produces — so clean cones need no work at all.  Every
/// consumer masks the open word with sim::tail_mask, so the padding is
/// never observable.
class ce_simulator
{
public:
  void build(const net::aig_network& aig,
             std::span<const net::node> target_gates, uint32_t collapse_limit,
             const sim::pattern_set& patterns)
  {
    conv_ = net::aig_to_klut(aig);
    std::vector<knode> targets;
    targets.reserve(target_gates.size());
    for (const net::node n : target_gates) {
      targets.push_back(conv_.node_map[n]);
    }
    collapsed_ = cut::collapse_to_cuts(conv_.klut, targets, collapse_limit);

    // Restrict evaluation to the targets' cones.
    auto& net = collapsed_.net;
    needed_.assign(net.size(), 0u);
    std::vector<knode> frontier;
    for (const knode t : targets) {
      const knode m = collapsed_.node_map[t];
      if (net.is_gate(m) && !needed_[m]) {
        needed_[m] = 1u;
        frontier.push_back(m);
      }
    }
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      for (const knode f : net.fanins(frontier[i])) {
        if (net.is_gate(f) && !needed_[f]) {
          needed_[f] = 1u;
          frontier.push_back(f);
        }
      }
    }

    scratch_.reserve(net.max_fanin_size());
    csig_.reset(net.size(), patterns.num_words());
    for (std::size_t w = 0; w < patterns.num_words(); ++w) {
      simulate_word(patterns, w);
    }

    // Padding defaults: each node's value under the all-zero assignment.
    base_.assign(net.size(), 0u);
    base_[1] = 1u;
    net.foreach_gate([&](knode n) {
      if (!needed_[n]) {
        return;
      }
      const auto& fis = net.fanins(n);
      uint64_t index = 0;
      for (std::size_t i = 0; i < fis.size(); ++i) {
        index |= uint64_t{base_[fis[i]]} << i;
      }
      base_[n] = net.table(n).bit(index) ? 1u : 0u;
    });
    deviates_.assign(net.size(), 0u);
  }

  /// Absorbs the newest pattern (already appended to \p patterns) by
  /// propagating its single bit through the dirty cones only.
  void add_ce(const sim::pattern_set& patterns, const std::vector<bool>& ce)
  {
    const uint64_t index = patterns.num_patterns() - 1u;
    const std::size_t word = index >> 6u;
    const uint64_t bit = uint64_t{1} << (index & 63u);
    auto& net = collapsed_.net;
    if (csig_.num_words() <= word) {
      // Open a fresh word holding every node's padding default.
      csig_.append_word();
      for (std::size_t n = 0; n < net.size(); ++n) {
        csig_.word(n, word) = base_[n] ? ~uint64_t{0} : 0u;
      }
    }
    std::fill(deviates_.begin(), deviates_.end(), 0u);
    net.foreach_pi([&](knode n) {
      if (ce[n - 2u]) {
        csig_.word(n, word) |= bit;
        deviates_[n] = 1u;
      }
    });
    const uint64_t shift = index & 63u;
    net.foreach_gate([&](knode n) {
      if (!needed_[n]) {
        return;
      }
      const auto& fis = net.fanins(n);
      bool dirty = false;
      for (const knode f : fis) {
        dirty = dirty || deviates_[f] != 0u;
      }
      if (!dirty) {
        return; // bit stays at the padding default
      }
      uint64_t lut_index = 0;
      for (std::size_t i = 0; i < fis.size(); ++i) {
        lut_index |= ((csig_.word(fis[i], word) >> shift) & 1u) << i;
      }
      const bool v = net.table(n).bit(lut_index);
      if (v) {
        csig_.word(n, word) |= bit;
      } else {
        csig_.word(n, word) &= ~bit;
      }
      deviates_[n] = v != (base_[n] != 0u) ? 1u : 0u;
    });
  }

  /// Signature word of an original AIG node (constant, PI, or target).
  uint64_t node_word(const net::aig_network& aig, net::node n,
                     const sim::pattern_set& patterns, std::size_t word) const
  {
    if (aig.is_constant(n)) {
      return 0u;
    }
    if (aig.is_pi(n)) {
      return patterns.input_bits(n - 1u)[word];
    }
    const knode m = collapsed_.node_map[conv_.node_map[n]];
    return csig_.word(m, word);
  }

private:
  /// Full-word STP pass (initial simulation at build time only).
  void simulate_word(const sim::pattern_set& patterns, std::size_t word)
  {
    auto& net = collapsed_.net;
    csig_.word(0u, word) = 0u;
    csig_.word(1u, word) = ~uint64_t{0};
    net.foreach_pi(
        [&](knode n) { csig_.word(n, word) = patterns.input_bits(n - 2u)[word]; });
    std::vector<uint64_t> ins;
    net.foreach_gate([&](knode n) {
      if (!needed_[n]) {
        return;
      }
      const auto& fis = net.fanins(n);
      ins.resize(fis.size());
      for (std::size_t i = 0; i < fis.size(); ++i) {
        ins[i] = csig_.word(fis[i], word);
      }
      csig_.word(n, word) = core::stp_evaluate_word(net.table(n), ins, scratch_);
    });
  }

  net::aig_to_klut_result conv_;
  cut::collapse_result collapsed_;
  std::vector<uint8_t> needed_;
  std::vector<uint8_t> base_;     ///< padding default per node
  std::vector<uint8_t> deviates_; ///< per-CE scratch: bit != default
  sim::signature_store csig_;
  core::stp_scratch scratch_;
};

} // namespace

sweep_stats stp_sweep(net::aig_network& aig, const stp_sweep_params& params)
{
  sweep_stats stats;
  const auto t_total = clock_type::now();
  stats.gates_before = aig.num_gates();
  stats.levels_before = net::depth(aig);

  sat::solver solver;
  sat::aig_encoder encoder{aig, solver};

  // ---- Initial patterns (Alg. 2 line 2) + constant propagation (line 3).
  sim::pattern_set patterns;
  if (params.use_guided_patterns) {
    guided_pattern_result guided = sat_guided_patterns(aig, encoder,
                                                       params.guided);
    patterns = std::move(guided.patterns);
    stats.sat_calls_total += guided.sat_calls;
    stats.sim_seconds += guided.sim_seconds;
    stats.sat_seconds += guided.sat_seconds;
    for (const auto& [n, value] : guided.proven_constants) {
      if (!aig.is_dead(n)) {
        ++stats.constant_merges;
        ++stats.merges;
        aig.substitute_node(n, aig.get_constant(value));
      }
    }
  } else {
    patterns = sim::pattern_set::random(
        aig.num_pis(), params.guided.base_patterns, params.guided.seed);
  }

  // ---- Initial STP simulation and equivalence classes (line 3). --------
  auto t_sim = clock_type::now();
  const core::stp_simulator stp_sim;
  sim::signature_store sig = stp_sim.simulate_aig(aig, patterns);
  equiv_classes classes;
  classes.build(aig, sig, sim::tail_mask(patterns.num_patterns()));
  stats.sim_seconds += seconds_since(t_sim);

  // ---- Collapsed k-LUT view for CE simulation (§III-B, §IV-A). ---------
  ce_simulator cesim;
  if (params.use_collapsed_ce_simulation) {
    t_sim = clock_type::now();
    std::vector<net::node> target_gates;
    for (uint32_t c = 0; c < classes.num_class_ids(); ++c) {
      for (const net::node m : classes.members(c)) {
        if (aig.is_and(m) && !aig.is_dead(m)) {
          target_gates.push_back(m);
        }
      }
    }
    cesim.build(aig, target_gates, params.collapse_limit, patterns);
    stats.sim_seconds += seconds_since(t_sim);
  }

  // ---- Batched counter-example bookkeeping. ----------------------------
  // CEs land in the open tail word immediately (cesim keeps every bit
  // current), but *refinement* is deferred per class: a class is refined
  // only when (b) it is the current candidate's class and needs the fresh
  // bits to make progress, (c) the loop advances to it, or (a) the word
  // fills with 64 CEs and everything is brought up to date at once.
  uint64_t applied_global = patterns.num_patterns();
  std::vector<uint64_t> class_applied; // per class id, lazily grown
  const auto mark_applied = [&](uint32_t c, uint64_t count) {
    if (c >= class_applied.size()) {
      class_applied.resize(c + 1u, 0u);
    }
    class_applied[c] = count;
  };
  const auto class_stale = [&](uint32_t c) {
    const uint64_t applied =
        std::max(applied_global,
                 c < class_applied.size() ? class_applied[c] : 0u);
    return applied < patterns.num_patterns();
  };

  // Copies the open tail word from the CE simulator into the candidate
  // signature store for the given members (dead members keep their
  // function — merges are function-preserving — so they sync too, which
  // keeps refinement independent of *when* a class is refined).
  const auto sync_member_rows = [&](const std::vector<net::node>& members) {
    while (sig.num_words() < patterns.num_words()) {
      sig.append_word();
    }
    const std::size_t last = patterns.num_words() - 1u;
    for (const net::node m : members) {
      sig.word(m, last) = cesim.node_word(aig, m, patterns, last);
    }
  };

  std::vector<uint32_t> created_ids_scratch;
  const auto refine_one_class = [&](uint32_t c) {
    sync_member_rows(classes.members(c));
    created_ids_scratch.clear();
    classes.refine_class_with_word(
        c, sig, patterns.num_words() - 1u,
        sim::tail_mask(patterns.num_patterns()), &created_ids_scratch);
    const uint64_t count = patterns.num_patterns();
    mark_applied(c, count);
    for (const uint32_t f : created_ids_scratch) {
      mark_applied(f, count);
    }
  };

  // Condition (a): bring every class up to date with the filled word.
  const auto refine_all_classes = [&]() {
    if (applied_global == patterns.num_patterns()) {
      return;
    }
    const std::size_t last = patterns.num_words() - 1u;
    for (uint32_t c = 0; c < classes.num_class_ids(); ++c) {
      sync_member_rows(classes.members(c));
    }
    classes.refine_with_word(sig, last,
                             sim::tail_mask(patterns.num_patterns()));
    applied_global = patterns.num_patterns();
  };

  // ---- Window resolution cache: class id → (size when checked, exact).
  std::unordered_map<uint32_t, std::pair<std::size_t, bool>> resolve_cache;
  std::vector<net::node> support_scratch;
  std::vector<net::node> resolve_members_scratch;
  const auto maybe_resolve = [&](uint32_t c) -> bool {
    if (!params.use_window_resolution || c == equiv_classes::no_class) {
      return false;
    }
    const auto& members = classes.members(c);
    if (const auto it = resolve_cache.find(c);
        it != resolve_cache.end() && it->second.first == members.size()) {
      return it->second.second;
    }
    if (!net::bounded_support(aig, members, params.window_max_support,
                              support_scratch)) {
      resolve_cache[c] = {members.size(), false};
      return false;
    }
    // Exhaustive STP simulation over the window: exact functions of all
    // members over the common support decide the class once and for all.
    const auto t_win = clock_type::now();
    const cut::cut_t window{support_scratch};
    std::map<tt::truth_table, uint64_t> groups;
    std::vector<uint64_t> keys;
    keys.reserve(members.size());
    resolve_members_scratch.assign(members.begin(), members.end());
    for (const net::node m : resolve_members_scratch) {
      tt::truth_table f =
          aig.is_constant(m)
              ? tt::make_const0(
                    static_cast<uint32_t>(window.leaves.size()))
              : cut::cut_function(aig, m, window);
      if (classes.phase(m)) {
        f = tt::unary_not(f);
      }
      const auto [it, inserted] = groups.emplace(std::move(f), groups.size());
      keys.push_back(it->second);
    }
    classes.split_by_keys(c, keys);
    // Every surviving sub-class is exact now — and, having just been
    // derived from the freshly refined parent, already up to date.
    const uint64_t applied_count = patterns.num_patterns();
    for (const net::node m : resolve_members_scratch) {
      const uint32_t cid = classes.class_of(m);
      if (cid != equiv_classes::no_class) {
        resolve_cache[cid] = {classes.members(cid).size(), true};
        mark_applied(cid, applied_count);
      }
    }
    stats.sim_seconds += seconds_since(t_win);
    const uint32_t cid_first =
        classes.class_of(resolve_members_scratch.front());
    return cid_first != equiv_classes::no_class;
  };

  // ---- Candidate loop: reverse topological order (lines 4-32). ---------
  tfi_manager tfi{aig, params.tfi_limit};
  std::vector<bool> dont_touch(aig.size(), false);
  const std::vector<net::node> order = net::reverse_topo_order(aig);
  std::vector<net::node> members_scratch;

  for (const net::node n : order) {
    if (aig.is_dead(n) || dont_touch[n]) {
      continue; // skip(candidate), lines 7-9
    }
    for (;;) {
      uint32_t c = classes.class_of(n);
      if (c == equiv_classes::no_class) {
        break;
      }
      // Conditions (b)/(c): the candidate's class must see every
      // buffered counter-example bit before its membership is trusted.
      if (params.use_collapsed_ce_simulation && class_stale(c)) {
        t_sim = clock_type::now();
        refine_one_class(c);
        stats.sim_seconds += seconds_since(t_sim);
        c = classes.class_of(n);
        if (c == equiv_classes::no_class) {
          break;
        }
      }
      // Drop members killed by cascaded merges.
      {
        members_scratch.assign(classes.members(c).begin(),
                               classes.members(c).end());
        for (const net::node m : members_scratch) {
          if (aig.is_and(m) && aig.is_dead(m)) {
            classes.remove_member(m);
          }
        }
        c = classes.class_of(n);
        if (c == equiv_classes::no_class) {
          break;
        }
      }

      maybe_resolve(c);
      c = classes.class_of(n);
      if (c == equiv_classes::no_class) {
        break;
      }
      const auto it = resolve_cache.find(c);
      const bool resolved =
          it != resolve_cache.end() &&
          it->second.first == classes.members(c).size() && it->second.second;

      const std::vector<net::node> drivers =
          tfi.order_drivers(n, classes.members(c));
      if (drivers.empty()) {
        break; // n is the representative; later candidates may use it
      }
      const net::node driver = drivers.front();
      const bool complement = classes.complemented(n, driver);

      if (resolved) {
        // Equivalence was proven by exhaustive window simulation; merge
        // without consulting SAT at all.
        classes.remove_member(n);
        ++stats.window_merges;
        ++stats.merges;
        if (aig.is_constant(driver)) {
          ++stats.constant_merges;
        }
        aig.substitute_node(n, net::signal{driver, complement});
        break;
      }

      const auto t_sat = clock_type::now();
      ++stats.sat_calls_total;
      const sat::result r = encoder.prove_equivalent(
          net::signal{n, false}, net::signal{driver, false}, complement,
          params.conflict_budget);
      stats.sat_seconds += seconds_since(t_sat);

      if (r == sat::result::unsat) {
        classes.remove_member(n);
        ++stats.merges;
        if (aig.is_constant(driver)) {
          ++stats.constant_merges;
        }
        aig.substitute_node(n, net::signal{driver, complement});
        break;
      }
      if (r == sat::result::unknown) {
        dont_touch[n] = true; // mark_dont_touch, lines 19-21
        ++stats.dont_touch;
        classes.remove_member(n);
        break;
      }

      // Counter-example (lines 26-28, batched): the bit lands in the
      // open tail word now; refinement is deferred to conditions
      // (a)/(b)/(c) above.
      ++stats.sat_calls_satisfiable;
      ++stats.ce_patterns;
      t_sim = clock_type::now();
      const std::vector<bool> ce = encoder.model_inputs();
      if (params.use_collapsed_ce_simulation) {
        if (patterns.num_patterns() % 64u == 0u) {
          refine_all_classes(); // condition (a): word full, flush
        }
        patterns.add_pattern(ce);
        cesim.add_ce(patterns, ce);
        if (!params.use_batched_ce_refinement) {
          // Ablation: eager per-CE refinement (the seed's behavior).
          const std::size_t last = patterns.num_words() - 1u;
          for (uint32_t cid = 0; cid < classes.num_class_ids(); ++cid) {
            sync_member_rows(classes.members(cid));
          }
          classes.refine_with_word(
              sig, last, sim::tail_mask(patterns.num_patterns()));
          applied_global = patterns.num_patterns();
        }
      } else {
        patterns.add_pattern(ce);
        sim::resimulate_aig_last_word(aig, patterns, sig);
        classes.refine_with_word(sig, patterns.num_words() - 1u,
                                 sim::tail_mask(patterns.num_patterns()));
        applied_global = patterns.num_patterns();
      }
      stats.sim_seconds += seconds_since(t_sim);
    }
  }

  aig.cleanup_dangling();
  stats.gates_after = aig.num_gates();
  stats.total_seconds = seconds_since(t_total);
  return stats;
}

} // namespace stps::sweep
