#include "sweep/stp_sweeper.hpp"

#include "core/stp_eval.hpp"
#include "core/stp_simulator.hpp"
#include "cut/cuts.hpp"
#include "cut/tree_cuts.hpp"
#include "network/convert.hpp"
#include "network/traversal.hpp"
#include "sat/encoder.hpp"
#include "sim/bitwise_sim.hpp"
#include "sweep/equiv_classes.hpp"
#include "sweep/tfi_manager.hpp"
#include "tt/operations.hpp"

#include <chrono>
#include <map>
#include <unordered_map>

namespace stps::sweep {

namespace {

using clock_type = std::chrono::steady_clock;
using knode = net::klut_network::node;

double seconds_since(clock_type::time_point start)
{
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// Incremental counter-example simulation on the tree-cut-collapsed
/// k-LUT view of the AIG (§IV-A: "convert nodes not within equivalence
/// classes into k-LUTs, and then simulate candidate nodes").  Built once
/// — merges preserve node functions, so the snapshot stays valid — and
/// re-simulated one word at a time as CEs arrive.
class ce_simulator
{
public:
  void build(const net::aig_network& aig,
             std::span<const net::node> target_gates, uint32_t collapse_limit,
             const sim::pattern_set& patterns)
  {
    conv_ = net::aig_to_klut(aig);
    std::vector<knode> targets;
    targets.reserve(target_gates.size());
    for (const net::node n : target_gates) {
      targets.push_back(conv_.node_map[n]);
    }
    collapsed_ = cut::collapse_to_cuts(conv_.klut, targets, collapse_limit);

    // Restrict evaluation to the targets' cones.
    needed_.assign(collapsed_.net.size(), false);
    std::vector<knode> frontier;
    for (const knode t : targets) {
      const knode m = collapsed_.node_map[t];
      if (collapsed_.net.is_gate(m) && !needed_[m]) {
        needed_[m] = true;
        frontier.push_back(m);
      }
    }
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      for (const knode f : collapsed_.net.fanins(frontier[i])) {
        if (collapsed_.net.is_gate(f) && !needed_[f]) {
          needed_[f] = true;
          frontier.push_back(f);
        }
      }
    }

    scratch_.reserve(collapsed_.net.max_fanin_size());
    csig_.assign(collapsed_.net.size(), {});
    for (std::size_t w = 0; w < patterns.num_words(); ++w) {
      simulate_word(patterns, w);
    }
  }

  /// Recomputes the last signature word after a CE was appended.
  void resim_last_word(const sim::pattern_set& patterns)
  {
    simulate_word(patterns, patterns.num_words() - 1u);
  }

  /// Signature word of an original AIG node (constant, PI, or target).
  uint64_t node_word(const net::aig_network& aig, net::node n,
                     const sim::pattern_set& patterns, std::size_t word) const
  {
    if (aig.is_constant(n)) {
      return 0u;
    }
    if (aig.is_pi(n)) {
      return patterns.input_bits(n - 1u)[word];
    }
    const knode m = collapsed_.node_map[conv_.node_map[n]];
    return csig_[m][word];
  }

private:
  void simulate_word(const sim::pattern_set& patterns, std::size_t word)
  {
    const auto grow = [&](std::vector<uint64_t>& row) {
      if (row.size() <= word) {
        row.resize(word + 1u, 0u);
      }
    };
    auto& net = collapsed_.net;
    grow(csig_[0]);
    csig_[0][word] = 0u;
    grow(csig_[1]);
    csig_[1][word] = ~uint64_t{0};
    net.foreach_pi([&](knode n) {
      grow(csig_[n]);
      csig_[n][word] = patterns.input_bits(n - 2u)[word];
    });
    std::vector<uint64_t> ins;
    net.foreach_gate([&](knode n) {
      if (!needed_[n]) {
        return;
      }
      const auto& fis = net.fanins(n);
      ins.resize(fis.size());
      for (std::size_t i = 0; i < fis.size(); ++i) {
        ins[i] = csig_[fis[i]][word];
      }
      grow(csig_[n]);
      csig_[n][word] = core::stp_evaluate_word(net.table(n), ins, scratch_);
    });
  }

  net::aig_to_klut_result conv_;
  cut::collapse_result collapsed_;
  std::vector<bool> needed_;
  sim::signature_table csig_;
  core::stp_scratch scratch_;
};

} // namespace

sweep_stats stp_sweep(net::aig_network& aig, const stp_sweep_params& params)
{
  sweep_stats stats;
  const auto t_total = clock_type::now();
  stats.gates_before = aig.num_gates();
  stats.levels_before = net::depth(aig);

  sat::solver solver;
  sat::aig_encoder encoder{aig, solver};

  // ---- Initial patterns (Alg. 2 line 2) + constant propagation (line 3).
  sim::pattern_set patterns;
  if (params.use_guided_patterns) {
    guided_pattern_result guided = sat_guided_patterns(aig, encoder,
                                                       params.guided);
    patterns = std::move(guided.patterns);
    stats.sat_calls_total += guided.sat_calls;
    stats.sim_seconds += guided.sim_seconds;
    stats.sat_seconds += guided.sat_seconds;
    for (const auto& [n, value] : guided.proven_constants) {
      if (!aig.is_dead(n)) {
        ++stats.constant_merges;
        ++stats.merges;
        aig.substitute_node(n, aig.get_constant(value));
      }
    }
  } else {
    patterns = sim::pattern_set::random(
        aig.num_pis(), params.guided.base_patterns, params.guided.seed);
  }

  // ---- Initial STP simulation and equivalence classes (line 3). --------
  auto t_sim = clock_type::now();
  const core::stp_simulator stp_sim;
  sim::signature_table sig = stp_sim.simulate_aig(aig, patterns);
  equiv_classes classes;
  classes.build(aig, sig, sim::tail_mask(patterns.num_patterns()));
  stats.sim_seconds += seconds_since(t_sim);

  // ---- Collapsed k-LUT view for CE simulation (§III-B, §IV-A). ---------
  ce_simulator cesim;
  if (params.use_collapsed_ce_simulation) {
    t_sim = clock_type::now();
    std::vector<net::node> target_gates;
    for (uint32_t c = 0; c < classes.num_class_ids(); ++c) {
      for (const net::node m : classes.members(c)) {
        if (aig.is_and(m) && !aig.is_dead(m)) {
          target_gates.push_back(m);
        }
      }
    }
    cesim.build(aig, target_gates, params.collapse_limit, patterns);
    stats.sim_seconds += seconds_since(t_sim);
  }

  // ---- Window resolution cache: class id → (size when checked, exact).
  std::unordered_map<uint32_t, std::pair<std::size_t, bool>> resolve_cache;
  std::vector<net::node> support_scratch;
  const auto maybe_resolve = [&](uint32_t c) -> bool {
    if (!params.use_window_resolution || c == equiv_classes::no_class) {
      return false;
    }
    const auto& members = classes.members(c);
    if (const auto it = resolve_cache.find(c);
        it != resolve_cache.end() && it->second.first == members.size()) {
      return it->second.second;
    }
    if (!net::bounded_support(aig, members, params.window_max_support,
                              support_scratch)) {
      resolve_cache[c] = {members.size(), false};
      return false;
    }
    // Exhaustive STP simulation over the window: exact functions of all
    // members over the common support decide the class once and for all.
    const auto t_win = clock_type::now();
    const cut::cut_t window{support_scratch};
    std::map<tt::truth_table, uint64_t> groups;
    std::vector<uint64_t> keys;
    keys.reserve(members.size());
    const std::vector<net::node> snapshot{members.begin(), members.end()};
    for (const net::node m : snapshot) {
      tt::truth_table f =
          aig.is_constant(m)
              ? tt::make_const0(
                    static_cast<uint32_t>(window.leaves.size()))
              : cut::cut_function(aig, m, window);
      if (classes.phase(m)) {
        f = tt::unary_not(f);
      }
      const auto [it, inserted] = groups.emplace(std::move(f), groups.size());
      keys.push_back(it->second);
    }
    classes.split_by_keys(c, keys);
    // Every surviving sub-class is exact now.
    for (const net::node m : snapshot) {
      const uint32_t cid = classes.class_of(m);
      if (cid != equiv_classes::no_class) {
        resolve_cache[cid] = {classes.members(cid).size(), true};
      }
    }
    stats.sim_seconds += seconds_since(t_win);
    const uint32_t cid_first = classes.class_of(snapshot.front());
    return cid_first != equiv_classes::no_class;
  };

  // ---- Candidate loop: reverse topological order (lines 4-32). ---------
  tfi_manager tfi{aig, params.tfi_limit};
  std::vector<bool> dont_touch(aig.size(), false);
  const std::vector<net::node> order = net::reverse_topo_order(aig);

  for (const net::node n : order) {
    if (aig.is_dead(n) || dont_touch[n]) {
      continue; // skip(candidate), lines 7-9
    }
    for (;;) {
      uint32_t c = classes.class_of(n);
      if (c == equiv_classes::no_class) {
        break;
      }
      // Drop members killed by cascaded merges.
      {
        const std::vector<net::node> snapshot{classes.members(c).begin(),
                                              classes.members(c).end()};
        for (const net::node m : snapshot) {
          if (aig.is_and(m) && aig.is_dead(m)) {
            classes.remove_member(m);
          }
        }
        c = classes.class_of(n);
        if (c == equiv_classes::no_class) {
          break;
        }
      }

      maybe_resolve(c);
      c = classes.class_of(n);
      if (c == equiv_classes::no_class) {
        break;
      }
      const auto it = resolve_cache.find(c);
      const bool resolved =
          it != resolve_cache.end() &&
          it->second.first == classes.members(c).size() && it->second.second;

      const std::vector<net::node> drivers =
          tfi.order_drivers(n, classes.members(c));
      if (drivers.empty()) {
        break; // n is the representative; later candidates may use it
      }
      const net::node driver = drivers.front();
      const bool complement = classes.complemented(n, driver);

      if (resolved) {
        // Equivalence was proven by exhaustive window simulation; merge
        // without consulting SAT at all.
        classes.remove_member(n);
        ++stats.window_merges;
        ++stats.merges;
        if (aig.is_constant(driver)) {
          ++stats.constant_merges;
        }
        aig.substitute_node(n, net::signal{driver, complement});
        break;
      }

      const auto t_sat = clock_type::now();
      ++stats.sat_calls_total;
      const sat::result r = encoder.prove_equivalent(
          net::signal{n, false}, net::signal{driver, false}, complement,
          params.conflict_budget);
      stats.sat_seconds += seconds_since(t_sat);

      if (r == sat::result::unsat) {
        classes.remove_member(n);
        ++stats.merges;
        if (aig.is_constant(driver)) {
          ++stats.constant_merges;
        }
        aig.substitute_node(n, net::signal{driver, complement});
        break;
      }
      if (r == sat::result::unknown) {
        dont_touch[n] = true; // mark_dont_touch, lines 19-21
        ++stats.dont_touch;
        classes.remove_member(n);
        break;
      }

      // Counter-example (lines 26-28): STP-simulate class nodes only.
      ++stats.sat_calls_satisfiable;
      ++stats.ce_patterns;
      t_sim = clock_type::now();
      patterns.add_pattern(encoder.model_inputs());
      const std::size_t last = patterns.num_words() - 1u;
      if (params.use_collapsed_ce_simulation) {
        cesim.resim_last_word(patterns);
        for (uint32_t cid = 0; cid < classes.num_class_ids(); ++cid) {
          for (const net::node m : classes.members(cid)) {
            auto& row = sig[m];
            if (row.size() <= last) {
              row.resize(last + 1u, 0u);
            }
            if (!aig.is_dead(m) || !aig.is_and(m)) {
              row[last] = cesim.node_word(aig, m, patterns, last);
            }
          }
        }
        if (sig[0].size() <= last) {
          sig[0].resize(last + 1u, 0u);
        }
      } else {
        sim::resimulate_aig_last_word(aig, patterns, sig);
      }
      classes.refine_with_word(sig, last,
                               sim::tail_mask(patterns.num_patterns()));
      stats.sim_seconds += seconds_since(t_sim);
    }
  }

  aig.cleanup_dangling();
  stats.gates_after = aig.num_gates();
  stats.total_seconds = seconds_since(t_total);
  return stats;
}

} // namespace stps::sweep
