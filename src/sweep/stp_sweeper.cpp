#include "sweep/stp_sweeper.hpp"

#include "core/stp_simulator.hpp"
#include "network/traversal.hpp"
#include "sat/cnf_manager.hpp"
#include "sweep/ce_engine.hpp"
#include "sweep/equiv_classes.hpp"
#include "sweep/tfi_manager.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <unordered_map>

namespace stps::sweep {

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start)
{
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// Exact window resolution by one word-parallel exhaustive simulation
/// over the *union* cone of a class (§IV-A, "< 16 leaves").
///
/// The previous implementation composed a full truth table per member
/// (`cut::cut_function`), re-walking the shared cone once per member and
/// allocating up-to-2^15-bit tables along the way.  Simulating the union
/// cone once — 64 exhaustive patterns per word, every member read off
/// the same pass — pays the cone cost a single time and allocates
/// nothing beyond reusable scratch.  Two members get equal keys iff
/// their phase-normalized exhaustive signatures (= truth tables over the
/// window leaves, leaf i = variable i) are identical, exactly as before.
class window_resolver
{
public:
  void attach(const net::aig_network& aig)
  {
    mark_.assign(aig.size(), 0u);
    index_.assign(aig.size(), 0u);
    epoch_ = 0;
  }

  /// Fills \p keys with group ids: keys[i] == keys[j] iff members i and
  /// j implement the same function over \p leaves up to their phases.
  void group_keys(const net::aig_network& aig, const equiv_classes& classes,
                  std::span<const net::node> members,
                  std::span<const net::node> leaves,
                  std::vector<uint64_t>& keys)
  {
    if (++epoch_ == 0u) {
      std::fill(mark_.begin(), mark_.end(), 0u);
      epoch_ = 1u;
    }
    const uint32_t k = static_cast<uint32_t>(leaves.size());
    for (uint32_t i = 0; i < k; ++i) {
      mark_[leaves[i]] = epoch_;
      index_[leaves[i]] = i;
    }

    // Union cone: every gate between the members and the leaves, each
    // visited once no matter how many members share it.
    cone_.clear();
    stack_.clear();
    const auto discover = [&](net::node n) {
      if (!aig.is_constant(n) && mark_[n] != epoch_) {
        mark_[n] = epoch_;
        cone_.push_back(n);
        stack_.push_back(n);
      }
    };
    for (const net::node m : members) {
      discover(m);
    }
    while (!stack_.empty()) {
      const net::node n = stack_.back();
      stack_.pop_back();
      discover(aig.fanin0(n).get_node());
      discover(aig.fanin1(n).get_node());
    }
    // Ids are topological; remove the leaves we re-discovered (they were
    // marked before the DFS, so only gates landed in cone_).
    std::sort(cone_.begin(), cone_.end());
    for (std::size_t i = 0; i < cone_.size(); ++i) {
      index_[cone_[i]] = static_cast<uint32_t>(i) + k;
    }

    const std::size_t nw = k > 6u ? std::size_t{1} << (k - 6u) : 1u;
    const uint64_t valid =
        k < 6u ? (uint64_t{1} << (uint64_t{1} << k)) - 1u : ~uint64_t{0};
    cur_.resize(k + cone_.size());
    sigs_.resize(members.size() * nw);

    for (std::size_t w = 0; w < nw; ++w) {
      for (uint32_t i = 0; i < k; ++i) {
        cur_[i] = leaf_word(i, w);
      }
      const auto value = [&](net::signal s) {
        const net::node x = s.get_node();
        const uint64_t v = aig.is_constant(x) ? 0u : cur_[index_[x]];
        return s.is_complemented() ? ~v : v;
      };
      for (std::size_t i = 0; i < cone_.size(); ++i) {
        const net::node n = cone_[i];
        cur_[k + i] = value(aig.fanin0(n)) & value(aig.fanin1(n));
      }
      for (std::size_t mi = 0; mi < members.size(); ++mi) {
        const net::node m = members[mi];
        uint64_t v = aig.is_constant(m) ? 0u : cur_[index_[m]];
        v ^= classes.phase(m) ? ~uint64_t{0} : 0u;
        sigs_[mi * nw + w] = v & valid;
      }
    }

    // Exact grouping: hash, then verify against the group representative.
    keys.assign(members.size(), 0u);
    group_hash_.clear();
    group_rep_.clear();
    for (std::size_t mi = 0; mi < members.size(); ++mi) {
      const uint64_t* row = sigs_.data() + mi * nw;
      uint64_t h = 1469598103934665603ull;
      for (std::size_t w = 0; w < nw; ++w) {
        h ^= row[w];
        h *= 1099511628211ull;
      }
      uint64_t group = group_hash_.size();
      for (std::size_t g = 0; g < group_hash_.size(); ++g) {
        if (group_hash_[g] == h &&
            std::equal(row, row + nw, sigs_.data() + group_rep_[g] * nw)) {
          group = g;
          break;
        }
      }
      if (group == group_hash_.size()) {
        group_hash_.push_back(h);
        group_rep_.push_back(mi);
      }
      keys[mi] = group;
    }
  }

private:
  static uint64_t leaf_word(uint32_t var, std::size_t w)
  {
    static constexpr uint64_t masks[6] = {
        0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
        0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull};
    if (var < 6u) {
      return masks[var];
    }
    return (w >> (var - 6u)) & 1u ? ~uint64_t{0} : 0u;
  }

  std::vector<uint32_t> mark_;  ///< epoch stamps (leaf or cone membership)
  std::vector<uint32_t> index_; ///< leaf position / cone slot per node
  uint32_t epoch_ = 0;
  std::vector<net::node> cone_;
  std::vector<net::node> stack_;
  std::vector<uint64_t> cur_;  ///< current word: leaves then cone gates
  std::vector<uint64_t> sigs_; ///< member signatures, member-major
  std::vector<uint64_t> group_hash_;
  std::vector<std::size_t> group_rep_;
};

} // namespace

sweep_stats stp_sweep(net::aig_network& aig, const stp_sweep_params& params)
{
  sweep_stats stats;
  const auto t_total = clock_type::now();
  stats.gates_before = aig.num_gates();
  stats.levels_before = net::depth(aig);

  sat::cnf_manager::params cnf_params;
  cnf_params.incremental = params.use_incremental_cnf;
  cnf_params.clause_budget = params.sat_clause_budget;
  cnf_params.cone_scoped_decisions = params.use_cone_scoped_decisions;
  cnf_params.hooks = params.governor;
  cnf_params.faults = params.faults;
  sat::cnf_manager cnf{aig, cnf_params};

  // Deadline/budget/cancellation poll, and the accounting shared by the
  // sweep's exit paths.  Aborted sweeps fill the same CNF/solver
  // counters as complete ones — a partial result must still report what
  // it spent.
  const auto stopped = [governor = params.governor]() {
    return governor != nullptr && governor->should_stop();
  };
  const auto fill_cnf_stats = [&]() {
    stats.sat_nodes_encoded = cnf.nodes_encoded();
    stats.sat_solver_rebuilds = cnf.rebuilds();
    stats.sat_clauses_peak = cnf.clauses_peak();
    const sat::solver_stats solver_totals = cnf.solver_statistics();
    stats.sat_conflicts = solver_totals.conflicts;
    stats.sat_decisions = solver_totals.decisions;
    stats.sat_restarts = solver_totals.restarts;
    stats.phase_seed_words = cnf.phase_seeds();
  };

  // ---- Initial patterns (Alg. 2 line 2) + constant propagation (line 3).
  // The per-round simulation budget scales with the gate count (capped at
  // guided.base_patterns), so tiny instances stop over-investing in
  // simulation.
  guided_pattern_config guided_config = params.guided;
  guided_config.base_patterns =
      params.effective_pattern_budget(aig.num_gates());
  guided_config.max_round2_queries =
      params.effective_round2_queries(aig.num_gates());
  guided_config.use_signature_phase = params.use_signature_phase;
  guided_config.governor = params.governor;
  sim::pattern_set patterns;
  if (params.use_guided_patterns) {
    guided_pattern_result guided = sat_guided_patterns(aig, cnf,
                                                       guided_config);
    patterns = std::move(guided.patterns);
    stats.sat_calls_total += guided.sat_calls;
    stats.sim_seconds += guided.sim_seconds;
    stats.sat_seconds += guided.sat_seconds;
    for (const auto& [n, value] : guided.proven_constants) {
      if (!aig.is_dead(n)) {
        ++stats.constant_merges;
        ++stats.merges;
        aig.substitute_node(n, aig.get_constant(value));
      }
    }
  } else {
    patterns = sim::pattern_set::random(
        aig.num_pis(), guided_config.base_patterns, guided_config.seed);
  }

  if (stopped()) {
    // Aborted during pattern generation: the constants applied above
    // are each a completed UNSAT proof, so the network is already a
    // sound partial result — finalize without building the class
    // machinery (engine/store counters stay unreported).
    aig.cleanup_dangling();
    stats.gates_after = aig.num_gates();
    stats.outcome = params.governor->outcome();
    fill_cnf_stats();
    stats.total_seconds = seconds_since(t_total);
    return stats;
  }

  // ---- Initial STP simulation and equivalence classes (line 3). --------
  auto t_sim = clock_type::now();
  const core::stp_simulator stp_sim;
  sim::signature_store sig = stp_sim.simulate_aig(aig, patterns);
  equiv_classes classes;
  classes.build(aig, sig, sim::tail_mask(patterns.num_patterns()));
  stats.sim_seconds += seconds_since(t_sim);

  // ---- Signature-guided SAT querying. ----------------------------------
  // Capture every node's bit of the *last* initial signature word — the
  // newest simulated pattern, one consistent whole-network assignment —
  // and seed each cone variable's saved polarity from it when the
  // variable encodes: the first query on a cone starts in a simulation-
  // consistent assignment (phase saving evolves freely afterwards), so
  // its counter-example — a small deviation from exactly that behavior
  // — falls out with far fewer conflicts.  The capture is taken once,
  // before any store trimming, and is engine-independent — both CE
  // engines see identical hints, so the engine-equivalence invariant
  // (identical models, identical CE trajectories) is intact.
  if (params.use_signature_phase && sig.num_words() > 0u) {
    std::vector<uint8_t> phase_bit(aig.size(), 0u);
    const std::size_t last_word = sig.num_words() - 1u;
    const uint64_t newest = (patterns.num_patterns() - 1u) & 63u;
    for (net::node n = 0; n < phase_bit.size(); ++n) {
      phase_bit[n] =
          static_cast<uint8_t>((sig.word(n, last_word) >> newest) & 1u);
    }
    cnf.set_phase_hints(
        [bits = std::move(phase_bit)](net::node n) -> int {
          return n < bits.size() ? bits[n] : -1;
        });
  }

  // ---- Counter-example propagation engine (§III-B, §IV-A). -------------
  // Dispatch by instance size (ce_engine.hpp): the collapsed k-LUT view
  // amortizes on large instances, whole-AIG word resimulation wins below
  // the threshold.  Targets are every class member whose word refinement
  // will read; pinned nodes are the class representatives the collapsed
  // engine keeps observable even under target pruning.
  ce_engine_kind engine_kind = resolve_ce_engine(
      params.ce_engine, stats.gates_before, params.ce_engine_gate_threshold);
  std::unique_ptr<ce_engine> cesim = make_ce_engine(
      engine_kind, {params.collapse_limit, params.ce_prune_targets,
                    params.ce_initial_words});
  {
    t_sim = clock_type::now();
    std::vector<net::node> target_gates;
    std::vector<net::node> pinned;
    for (uint32_t c = 0; c < classes.num_class_ids(); ++c) {
      bool have_rep = false;
      for (const net::node m : classes.members(c)) {
        if (aig.is_and(m) && !aig.is_dead(m)) {
          target_gates.push_back(m);
          if (!have_rep) {
            pinned.push_back(m); // class representative
            have_rep = true;
          }
        }
      }
    }
    cesim->build(aig, target_gates, pinned, patterns);
    stats.sim_seconds += seconds_since(t_sim);
  }

  // ---- Signature-store and pattern word budget. ------------------------
  // Once the classes have been refined with a word, the partition has
  // absorbed everything it says and no code path reads it again — only
  // the *open* (partially filled) word is ever re-read or written.
  // Trimming frees absorbed words' storage (and recycles the pattern
  // set's CE word blocks through its ring); with the initial build just
  // done, that is every base word the moment enough of them accumulate.
  const auto trim_absorbed_words = [&]() {
    if (params.store_word_budget == 0u || params.fault_fail_store_trim) {
      return; // budget off, or injected trim failure: keep every word
    }
    // The open word must stay live; on an exact 64-pattern boundary the
    // last word is filled *and* refined with (the caller just flushed),
    // so everything can go.
    const std::size_t first_live = patterns.num_patterns() % 64u == 0u
                                       ? patterns.num_words()
                                       : patterns.num_words() - 1u;
    if (sig.live_words() <= params.store_word_budget &&
        cesim->store().live_words() <= params.store_word_budget &&
        patterns.live_words() <= params.store_word_budget) {
      return;
    }
    sig.trim_words(first_live);
    cesim->trim_absorbed(first_live);
    patterns.trim_words(first_live);
  };
  trim_absorbed_words(); // base words are absorbed by the initial build

  // ---- Mid-sweep engine escalation (`auto` only). ----------------------
  // The size dispatch cannot see per-CE disturbance: on deep random
  // logic every counter-example can flip a large fraction of the needed
  // gates, and the collapsed worklist (random-access LUT bit lookups)
  // then loses to one branch-free whole-AIG word pass.  Once the
  // measured average visited-gates-per-CE crosses the threshold, swap
  // engines.  The resim engine recomputes the open word entirely from
  // the pattern set, so the swap carries no state and cannot change
  // results — the differential harness pins a forced-escalation run
  // against the pure engines.
  uint64_t ces_absorbed = 0;
  bool escalated = false;
  uint64_t esc_visited = 0, esc_baseline = 0, esc_pruned = 0;
  uint64_t esc_store_trimmed = 0, esc_store_peak = 0;
  bool ran_collapsed = engine_kind == ce_engine_kind::collapsed;
  const auto maybe_escalate = [&]() {
    if (params.ce_engine != ce_engine_kind::automatic ||
        params.ce_escalate_per_mille == 0u || escalated ||
        engine_kind != ce_engine_kind::collapsed || ces_absorbed < 64u) {
      return;
    }
    const uint64_t budget = uint64_t{stats.gates_before} *
                            params.ce_escalate_per_mille / 1000u *
                            ces_absorbed;
    if (cesim->gates_visited() <= budget) {
      return;
    }
    escalated = true;
    esc_visited = cesim->gates_visited();
    esc_baseline = cesim->gates_scan_baseline();
    esc_pruned = cesim->targets_pruned();
    esc_store_trimmed = cesim->store().words_trimmed();
    esc_store_peak = cesim->store().peak_bytes();
    engine_kind = ce_engine_kind::resim;
    cesim = make_ce_engine(engine_kind, {params.collapse_limit,
                                         params.ce_prune_targets,
                                         params.ce_initial_words});
    cesim->build(aig, {}, {}, patterns);
  };

  // ---- Batched counter-example bookkeeping. ----------------------------
  // CEs land in the open tail word immediately (cesim keeps every bit
  // current), but *refinement* is deferred per class: a class is refined
  // only when (b) it is the current candidate's class and needs the fresh
  // bits to make progress, (c) the loop advances to it, or (a) the word
  // fills with 64 CEs and everything is brought up to date at once.
  uint64_t applied_global = patterns.num_patterns();
  std::vector<uint64_t> class_applied; // per class id, lazily grown
  const auto mark_applied = [&](uint32_t c, uint64_t count) {
    if (c >= class_applied.size()) {
      class_applied.resize(c + 1u, 0u);
    }
    class_applied[c] = count;
  };
  const auto class_stale = [&](uint32_t c) {
    const uint64_t applied =
        std::max(applied_global,
                 c < class_applied.size() ? class_applied[c] : 0u);
    return applied < patterns.num_patterns();
  };

  // Copies the open tail word from the CE simulator into the candidate
  // signature store for the given members (dead members keep their
  // function — merges are function-preserving — so they sync too, which
  // keeps refinement independent of *when* a class is refined).
  const auto sync_member_rows = [&](const std::vector<net::node>& members) {
    while (sig.num_words() < patterns.num_words()) {
      sig.append_word();
    }
    const std::size_t last = patterns.num_words() - 1u;
    for (const net::node m : members) {
      sig.word(m, last) = cesim->node_word(aig, m, patterns, last);
    }
  };

  std::vector<uint32_t> created_ids_scratch;
  const auto refine_one_class = [&](uint32_t c) {
    sync_member_rows(classes.members(c));
    created_ids_scratch.clear();
    classes.refine_class_with_word(
        c, sig, patterns.num_words() - 1u,
        sim::tail_mask(patterns.num_patterns()), &created_ids_scratch);
    const uint64_t count = patterns.num_patterns();
    mark_applied(c, count);
    for (const uint32_t f : created_ids_scratch) {
      mark_applied(f, count);
    }
  };

  // Condition (a): bring every class up to date with the filled word.
  const auto refine_all_classes = [&]() {
    if (applied_global == patterns.num_patterns()) {
      return;
    }
    const std::size_t last = patterns.num_words() - 1u;
    for (uint32_t c = 0; c < classes.num_class_ids(); ++c) {
      sync_member_rows(classes.members(c));
    }
    classes.refine_with_word(sig, last,
                             sim::tail_mask(patterns.num_patterns()));
    applied_global = patterns.num_patterns();
  };

  // ---- Window resolution cache: class id → (size when checked, exact).
  // Scaled windowing: the support limit grows with instance size — on
  // paper-scale instances every satisfiable call a larger exhaustive
  // window avoids is worth far more than the window pass costs.
  const uint32_t window_support =
      params.effective_window_support(stats.gates_before);
  std::unordered_map<uint32_t, std::pair<std::size_t, bool>> resolve_cache;
  window_resolver resolver;
  resolver.attach(aig);
  std::vector<net::node> support_scratch;
  std::vector<net::node> resolve_members_scratch;
  std::vector<uint64_t> resolve_keys_scratch;
  const auto maybe_resolve = [&](uint32_t c) -> bool {
    if (!params.use_window_resolution || c == equiv_classes::no_class) {
      return false;
    }
    const auto& members = classes.members(c);
    if (const auto it = resolve_cache.find(c);
        it != resolve_cache.end() && it->second.first == members.size()) {
      return it->second.second;
    }
    if (!net::bounded_support(aig, members, window_support,
                              support_scratch)) {
      resolve_cache[c] = {members.size(), false};
      return false;
    }
    // Exhaustive simulation over the window: exact functions of all
    // members over the common support decide the class once and for all.
    // One word-parallel pass over the members' union cone serves every
    // member (window_resolver above).
    const auto t_win = clock_type::now();
    resolve_members_scratch.assign(members.begin(), members.end());
    resolver.group_keys(aig, classes, resolve_members_scratch,
                        support_scratch, resolve_keys_scratch);
    classes.split_by_keys(c, resolve_keys_scratch);
    // Every surviving sub-class is exact now — and, having just been
    // derived from the freshly refined parent, already up to date.
    const uint64_t applied_count = patterns.num_patterns();
    for (const net::node m : resolve_members_scratch) {
      const uint32_t cid = classes.class_of(m);
      if (cid != equiv_classes::no_class) {
        resolve_cache[cid] = {classes.members(cid).size(), true};
        mark_applied(cid, applied_count);
      }
    }
    stats.sim_seconds += seconds_since(t_win);
    const uint32_t cid_first =
        classes.class_of(resolve_members_scratch.front());
    return cid_first != equiv_classes::no_class;
  };

  // ---- Candidate loop: reverse topological order (lines 4-32). ---------
  tfi_manager tfi{aig, params.tfi_limit};
  std::vector<bool> dont_touch(aig.size(), false);
  const std::vector<net::node> order = net::reverse_topo_order(aig);
  std::vector<net::node> members_scratch;

  // How one candidate's processing ended (escalating unDET retry +
  // governed wind-down; see stp_sweeper.hpp point 6).
  enum class cand_status : uint8_t
  {
    settled,  ///< merged, refined away, kept as representative, ...
    gave_up,  ///< unknown with no rounds left: final dont_touch
    deferred, ///< unknown: stays in its class, queued for a retry round
    stopped,  ///< governor tripped mid-processing: wind the sweep down
  };

  // One candidate against its class, exactly Alg. 2 lines 5-31 —
  // except that an `unknown` verdict defers instead of marking
  // dont_touch while \p allow_defer holds.  A deferred candidate keeps
  // its class membership: it stays available as a merge *target* for
  // later candidates (merging into an unproven node is sound — only
  // the pairwise proof matters), and a retry round re-enters here with
  // a doubled \p budget.
  const auto process_candidate = [&](const net::node n, int64_t budget,
                                     bool allow_defer) -> cand_status {
    for (;;) {
      uint32_t c = classes.class_of(n);
      if (c == equiv_classes::no_class) {
        return cand_status::settled;
      }
      // Conditions (b)/(c): the candidate's class must see every
      // buffered counter-example bit before its membership is trusted.
      if (class_stale(c)) {
        t_sim = clock_type::now();
        refine_one_class(c);
        stats.sim_seconds += seconds_since(t_sim);
        c = classes.class_of(n);
        if (c == equiv_classes::no_class) {
          return cand_status::settled;
        }
      }
      // Drop members killed by cascaded merges.
      {
        members_scratch.assign(classes.members(c).begin(),
                               classes.members(c).end());
        for (const net::node m : members_scratch) {
          if (aig.is_and(m) && aig.is_dead(m)) {
            classes.remove_member(m);
          }
        }
        c = classes.class_of(n);
        if (c == equiv_classes::no_class) {
          return cand_status::settled;
        }
      }

      maybe_resolve(c);
      c = classes.class_of(n);
      if (c == equiv_classes::no_class) {
        return cand_status::settled;
      }
      const auto it = resolve_cache.find(c);
      const bool resolved =
          it != resolve_cache.end() &&
          it->second.first == classes.members(c).size() && it->second.second;

      const std::vector<net::node> drivers =
          tfi.order_drivers(n, classes.members(c));
      if (drivers.empty()) {
        // n is the representative; later candidates may use it
        return cand_status::settled;
      }
      const net::node driver = drivers.front();
      const bool complement = classes.complemented(n, driver);

      if (resolved) {
        // Equivalence was proven by exhaustive window simulation; merge
        // without consulting SAT at all.
        classes.remove_member(n);
        ++stats.window_merges;
        ++stats.merges;
        if (aig.is_constant(driver)) {
          ++stats.constant_merges;
        }
        aig.substitute_node(n, net::signal{driver, complement});
        return cand_status::settled;
      }

      const auto t_sat = clock_type::now();
      ++stats.sat_calls_total;
      const sat::result r = cnf.prove_equivalent(
          net::signal{n, false}, net::signal{driver, false}, complement,
          budget);
      stats.sat_seconds += seconds_since(t_sat);

      if (r == sat::result::unsat) {
        classes.remove_member(n);
        ++stats.merges;
        if (aig.is_constant(driver)) {
          ++stats.constant_merges;
        }
        aig.substitute_node(n, net::signal{driver, complement});
        return cand_status::settled;
      }
      if (r == sat::result::unknown) {
        if (stopped()) {
          // Governed wind-down, not a hard query: the candidate is
          // neither proven nor abandoned — leave it untouched.
          return cand_status::stopped;
        }
        if (allow_defer) {
          return cand_status::deferred;
        }
        dont_touch[n] = true; // mark_dont_touch, lines 19-21
        ++stats.dont_touch;
        classes.remove_member(n);
        return cand_status::gave_up;
      }

      // Counter-example (lines 26-28, batched): the bit lands in the
      // open tail word now; refinement is deferred to conditions
      // (a)/(b)/(c) above.
      ++stats.sat_calls_satisfiable;
      ++stats.ce_patterns;
      t_sim = clock_type::now();
      const std::vector<bool> ce = cnf.model_inputs();
      if (patterns.num_patterns() % 64u == 0u) {
        refine_all_classes(); // condition (a): word full, flush
        trim_absorbed_words(); // every word is absorbed now
      }
      maybe_escalate(); // before the absorb: the old engine is synced
      patterns.add_pattern(ce);
      cesim->add_ce(patterns, ce);
      ++ces_absorbed;
      if (!params.use_batched_ce_refinement) {
        // Ablation: eager per-CE refinement (the seed's behavior),
        // through the same sync + dense-refinement path as the
        // batched flush so the two modes cannot drift.
        refine_all_classes();
      }
      stats.sim_seconds += seconds_since(t_sim);
    }
  };

  // Deferral is live only when a finite per-query budget can actually
  // produce unknowns — with the unlimited default the queue stays empty
  // and the loop below is byte-identical to single-shot marking.
  const bool retries_on =
      params.conflict_budget >= 0 && params.undet_retry_rounds > 0u;
  std::vector<net::node> deferred;
  bool aborted = false;

  for (const net::node n : order) {
    if (stopped()) {
      aborted = true;
      break;
    }
    if (aig.is_dead(n) || dont_touch[n]) {
      continue; // skip(candidate), lines 7-9
    }
    const cand_status status =
        process_candidate(n, params.conflict_budget, retries_on);
    if (status == cand_status::deferred) {
      deferred.push_back(n);
    } else if (status == cand_status::stopped) {
      aborted = true;
      break;
    }
  }

  // ---- Escalating unDET retry rounds (stp_sweeper.hpp point 6). --------
  // Each round re-queries the still-deferred candidates with the budget
  // multiplied by `undet_budget_factor`; the last round may no longer
  // defer, so every survivor settles or ends as a final dont_touch.
  const int64_t factor =
      std::max<int64_t>(int64_t{params.undet_budget_factor}, 1);
  int64_t retry_budget = params.conflict_budget;
  std::vector<net::node> still_deferred;
  for (uint32_t round = 1;
       round <= params.undet_retry_rounds && !deferred.empty() && !aborted;
       ++round) {
    retry_budget =
        retry_budget > std::numeric_limits<int64_t>::max() / factor
            ? std::numeric_limits<int64_t>::max()
            : retry_budget * factor;
    const bool more_rounds = round < params.undet_retry_rounds;
    still_deferred.clear();
    for (const net::node n : deferred) {
      if (stopped()) {
        aborted = true;
        break;
      }
      if (aig.is_dead(n)) {
        // A cascaded merge settled it while it sat in the queue.
        ++stats.undet_resolved;
        continue;
      }
      ++stats.undet_retries;
      switch (process_candidate(n, retry_budget, more_rounds)) {
        case cand_status::settled:
          ++stats.undet_resolved;
          break;
        case cand_status::deferred:
          still_deferred.push_back(n);
          break;
        case cand_status::stopped:
          aborted = true;
          break;
        case cand_status::gave_up:
          break;
      }
      if (aborted) {
        break;
      }
    }
    std::swap(deferred, still_deferred);
  }
  // Candidates still deferred after an abort are left unresolved — the
  // sweep never got to decide them, which is not the same as unDET.

  if (aborted && params.governor != nullptr) {
    stats.outcome = params.governor->outcome();
  }

  aig.cleanup_dangling();
  stats.gates_after = aig.num_gates();
  stats.has_ce_engine = true;
  stats.ce_engine_used = engine_kind;
  stats.ce_engine_escalated = escalated;
  if (ran_collapsed) {
    // The collapsed engine's output-sensitivity counters, captured at
    // the escalation point when the sweep switched engines.
    stats.has_ce_counters = true;
    stats.ce_gates_visited =
        escalated ? esc_visited : cesim->gates_visited();
    stats.ce_gates_scan_baseline =
        escalated ? esc_baseline : cesim->gates_scan_baseline();
    stats.ce_targets_pruned =
        escalated ? esc_pruned : cesim->targets_pruned();
  }
  fill_cnf_stats();
  stats.has_store_counters = true;
  stats.store_words_live = sig.live_words() + cesim->store().live_words();
  stats.store_words_trimmed = sig.words_trimmed() +
                              cesim->store().words_trimmed() +
                              esc_store_trimmed;
  stats.store_peak_bytes =
      sig.peak_bytes() + cesim->store().peak_bytes() + esc_store_peak;
  stats.pattern_words_live = patterns.live_words();
  stats.pattern_words_recycled = patterns.words_recycled();
  stats.total_seconds = seconds_since(t_total);
  return stats;
}

} // namespace stps::sweep
