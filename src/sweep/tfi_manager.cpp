#include "sweep/tfi_manager.hpp"

namespace stps::sweep {

std::vector<net::node> tfi_manager::order_drivers(
    net::node candidate, std::span<const net::node> members)
{
  const std::vector<net::node> cone =
      net::transitive_fanin(aig_, candidate, limit_);
  if (in_tfi_.size() < aig_.size()) {
    in_tfi_.resize(aig_.size(), false);
  }
  for (const net::node m : cone) {
    in_tfi_[m] = true;
  }

  std::vector<net::node> preferred;
  std::vector<net::node> fallback;
  for (const net::node m : members) {
    if (m >= candidate || aig_.is_dead(m)) {
      continue;
    }
    (in_tfi_[m] ? preferred : fallback).push_back(m);
  }

  for (const net::node m : cone) {
    in_tfi_[m] = false;
  }

  preferred.insert(preferred.end(), fallback.begin(), fallback.end());
  return preferred;
}

} // namespace stps::sweep
