/// \file encoder.hpp
/// \brief Incremental Tseitin encoding of AIG cones into the CDCL solver.
///
/// The sweepers pose many equivalence queries against one growing CNF
/// (the circuit-based SAT integration of refs [4, 14]): each AIG node is
/// encoded at most once (three clauses per AND), queries are solved under
/// assumptions on lazily created XOR miter variables, and counter-example
/// models are read back as PI assignments (Alg. 2 line 26).
#pragma once

#include "network/aig.hpp"
#include "sat/solver.hpp"

#include <optional>
#include <vector>

namespace stps::sat {

class aig_encoder
{
public:
  /// The encoder keeps references; \p aig and \p s must outlive it.
  /// Substitutions may kill encoded nodes — encoded clauses stay valid
  /// because proven-equivalent literals are constrained equal anyway.
  aig_encoder(const net::aig_network& aig, solver& s);

  /// Solver literal of \p f, encoding its cone on demand.
  lit literal(net::signal f);

  /// Equivalence query: is `a == b` (when \p complement is false) or
  /// `a == !b` (when true) a tautology?  `unsat` means proven equivalent;
  /// `sat` leaves the counter-example readable via `model_inputs`;
  /// `unknown` is a budget timeout (the paper's unDET).
  result prove_equivalent(net::signal a, net::signal b, bool complement,
                          int64_t conflict_budget);

  /// Constant-ness query: is `f == value` a tautology?
  result prove_constant(net::signal f, bool value, int64_t conflict_budget);

  /// PI assignment of the last `sat` answer (index = PI position).
  std::vector<bool> model_inputs() const;

  /// Asks for an input assignment satisfying `f == value` — used by the
  /// SAT-guided pattern generator (§IV-A).  Returns nullopt when
  /// unsatisfiable or unknown.
  std::optional<std::vector<bool>> find_assignment(net::signal f, bool value,
                                                   int64_t conflict_budget);

  uint64_t num_encoded_nodes() const noexcept { return encoded_count_; }

private:
  /// Flags the encoded support closure of \p roots (plus \p extra, if
  /// not ~0u) as the solver's decision scope, so a query searches only
  /// its own cones instead of every variable encoded so far.  The
  /// closure follows the fanin variables *as encoded* (`var_fanins_`),
  /// which stays correct when later substitutions rewire the AIG.
  void scope_query(std::span<const lit> roots, var extra);

  const net::aig_network& aig_;
  solver& solver_;
  std::vector<var> node_var_;     // node id → var + 1 (0 = not encoded)
  var const_var_;                 // variable fixed to false
  /// Reusable XOR-miter variable (+1; 0 = none yet).  Its four defining
  /// clauses are added per query and retracted right after, so thousands
  /// of equivalence queries do not pile dead XOR cones into the solver.
  /// Retired (re-allocated) if a query pins it at level 0.
  var xor_var_ = 0;
  uint64_t encoded_count_ = 0;

  /// var → its two antecedent vars at encode time (~0u = leaf).
  std::vector<std::array<var, 2>> var_fanins_;
  std::vector<uint32_t> scope_mark_;  // var → last scope epoch
  uint32_t scope_epoch_ = 0;
  std::vector<var> scope_vars_;       // scratch: current scope closure
};

} // namespace stps::sat
