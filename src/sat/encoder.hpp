/// \file encoder.hpp
/// \brief Incremental Tseitin encoding of AIG cones into the CDCL solver.
///
/// The sweepers pose many equivalence queries against one growing CNF
/// (the circuit-based SAT integration of refs [4, 14]): each AIG node is
/// encoded at most once (three clauses per AND), queries are solved under
/// assumptions on lazily created XOR miter variables, and counter-example
/// models are read back as PI assignments (Alg. 2 line 26).
#pragma once

#include "network/aig.hpp"
#include "sat/solver.hpp"

#include <optional>
#include <vector>

namespace stps::sat {

class aig_encoder
{
public:
  /// The encoder keeps references; \p aig and \p s must outlive it.
  /// Substitutions may kill encoded nodes — encoded clauses stay valid
  /// because proven-equivalent literals are constrained equal anyway.
  aig_encoder(const net::aig_network& aig, solver& s);

  /// Solver literal of \p f, encoding its cone on demand.
  lit literal(net::signal f);

  /// Equivalence query: is `a == b` (when \p complement is false) or
  /// `a == !b` (when true) a tautology?  `unsat` means proven equivalent;
  /// `sat` leaves the counter-example readable via `model_inputs`;
  /// `unknown` is a budget timeout (the paper's unDET).
  result prove_equivalent(net::signal a, net::signal b, bool complement,
                          int64_t conflict_budget);

  /// Constant-ness query: is `f == value` a tautology?
  result prove_constant(net::signal f, bool value, int64_t conflict_budget);

  /// PI assignment of the last `sat` answer (index = PI position).
  std::vector<bool> model_inputs() const;

  /// Asks for an input assignment satisfying `f == value` — used by the
  /// SAT-guided pattern generator (§IV-A).  Returns nullopt when
  /// unsatisfiable or unknown.
  std::optional<std::vector<bool>> find_assignment(net::signal f, bool value,
                                                   int64_t conflict_budget);

  uint64_t num_encoded_nodes() const noexcept { return encoded_count_; }

private:
  lit xor_output(lit a, lit b);

  const net::aig_network& aig_;
  solver& solver_;
  std::vector<var> node_var_;     // node id → var + 1 (0 = not encoded)
  var const_var_;                 // variable fixed to false
  uint64_t encoded_count_ = 0;
};

} // namespace stps::sat
