/// \file encoder.hpp
/// \brief Incremental Tseitin encoding of AIG cones into the CDCL solver.
///
/// The sweepers pose many equivalence queries against one growing CNF
/// (the circuit-based SAT integration of refs [4, 14]): each AIG node is
/// encoded at most once (three clauses per AND), queries are solved under
/// assumptions on lazily created XOR miter variables, and counter-example
/// models are read back as PI assignments (Alg. 2 line 26).
#pragma once

#include "network/aig.hpp"
#include "sat/solver.hpp"

#include <functional>
#include <iosfwd>
#include <optional>
#include <vector>

namespace stps::sat {

class aig_encoder
{
public:
  struct options
  {
    /// Restrict each query's decisions to its union cone
    /// (solver::set_decision_vars over the encoded support closure).
    /// Conflict-driven activity bumping is thereby limited to the
    /// current cone too: variables outside it never enter the decision
    /// heap, so stale high-activity variables of long-dead queries
    /// cannot steer the search.  false = unrestricted decisions over
    /// every encoded variable (ablation baseline).
    bool cone_scoped_decisions = true;
  };

  /// Branching-phase hint for a node: -1 = no hint, otherwise the value
  /// (0/1) the solver should try first — typically the node's value
  /// under a simulation pattern, so seeded cone phases form one
  /// simulation-consistent assignment.
  using phase_hint_fn = std::function<int(net::node)>;

  /// Per-node snapshot of learned solver state — saved phase and
  /// normalized VSIDS activity — taken before a garbage-epoch teardown
  /// and replayed onto the variables of whichever cones re-encode in
  /// the next epoch (still-live cones keep what the search learned).
  struct var_state_snapshot
  {
    std::vector<int8_t> phase;    ///< node → -1 (not encoded) or 0/1
    std::vector<float> activity;  ///< node → normalized activity
  };

  /// The encoder keeps references; \p aig and \p s must outlive it.
  /// Substitutions may kill encoded nodes — encoded clauses stay valid
  /// because proven-equivalent literals are constrained equal anyway.
  aig_encoder(const net::aig_network& aig, solver& s, options opt);
  aig_encoder(const net::aig_network& aig, solver& s)
      : aig_encoder(aig, s, options{})
  {
  }

  /// Installs (or clears, with nullptr) the phase-hint provider.  Each
  /// variable's saved polarity is seeded from the hint when its node
  /// encodes, and — while `set_phase_reseed(true)` holds — re-seeded at
  /// every query for the whole cone, so each search starts from one
  /// simulation-consistent assignment.  Hints must be deterministic —
  /// they steer the search, and seeded runs are pinned byte-identical.
  void set_phase_hints(phase_hint_fn hints) { phase_hints_ = std::move(hints); }

  /// Toggles per-query cone re-seeding (encode-time seeding always
  /// happens while hints are installed).  Re-seeding makes UNSAT-bound
  /// queries much cheaper but biases satisfiable models toward the seed
  /// pattern; cnf_manager switches it off adaptively once satisfiable
  /// answers become frequent enough that counter-example diversity
  /// matters more.
  void set_phase_reseed(bool on) noexcept { reseed_phases_ = on; }

  /// Phases seeded from hints so far (encode-time + per-query re-seeds;
  /// the bench's `phase_seed_words` counter).
  uint64_t phase_seeds() const noexcept { return phase_seeds_; }

  /// Installs (or clears, with nullptr) the cooperative resource hooks
  /// (sat/resource.hpp) and forwards them to the solver.  The encoder
  /// is the query-boundary owner: every query entry (equivalence,
  /// constant, or assignment) ticks `on_query_begin` and, if
  /// `should_stop` already holds, answers `unknown` (nullopt for
  /// find_assignment) without encoding or searching.  The hooks must
  /// outlive the encoder or be cleared first.
  void set_resource_hooks(resource_hooks* hooks) noexcept
  {
    hooks_ = hooks;
    solver_.set_resource_hooks(hooks);
  }

  /// Captures every encoded node's saved phase + normalized activity.
  void snapshot_var_state(var_state_snapshot& out) const;
  /// Replays \p carried (which must outlive the encoder) onto nodes as
  /// they (re-)encode; nullptr detaches.
  void set_carried_state(const var_state_snapshot* carried)
  {
    carried_ = carried;
  }

  /// Solver literal of \p f, encoding its cone on demand.
  lit literal(net::signal f);

  /// Equivalence query: is `a == b` (when \p complement is false) or
  /// `a == !b` (when true) a tautology?  `unsat` means proven equivalent;
  /// `sat` leaves the counter-example readable via `model_inputs`;
  /// `unknown` is a budget timeout (the paper's unDET).
  result prove_equivalent(net::signal a, net::signal b, bool complement,
                          int64_t conflict_budget);

  /// Constant-ness query: is `f == value` a tautology?
  result prove_constant(net::signal f, bool value, int64_t conflict_budget);

  /// PI assignment of the last `sat` answer (index = PI position).
  std::vector<bool> model_inputs() const;

  /// Writes the equivalence query `a == b` (or `a == !b`) as a
  /// standalone DIMACS instance: the live clause database, the four XOR
  /// defining clauses over a *virtual* miter variable (one past the
  /// solver's — no solver state is touched beyond encoding the two
  /// cones), and the assumption as a unit clause.  The instance is
  /// unsatisfiable iff the query would answer `unsat`; it replays with
  /// `replay_dimacs` (sat/dimacs.hpp) and can be handed to external
  /// solvers or delta-debugging minimizers as-is.
  void export_equivalence_query(std::ostream& os, net::signal a,
                                net::signal b, bool complement);

  /// Asks for an input assignment satisfying `f == value` — used by the
  /// SAT-guided pattern generator (§IV-A).  Returns nullopt when
  /// unsatisfiable or unknown.
  std::optional<std::vector<bool>> find_assignment(net::signal f, bool value,
                                                   int64_t conflict_budget);

  uint64_t num_encoded_nodes() const noexcept { return encoded_count_; }

private:
  /// Under `options::cone_scoped_decisions`: computes the encoded
  /// support closure of \p roots (following the fanin variables *as
  /// encoded*, `var_fanins_`, which stays correct when later
  /// substitutions rewire the AIG) and flags it (plus \p extra, if not
  /// ~0u) as the solver's decision scope, so a query searches only its
  /// own cones instead of every variable encoded so far.  No-op when
  /// the option is off.
  void scope_query(std::span<const lit> roots, var extra);

  /// Registers a fresh solver variable for \p n (~0u = auxiliary): grows
  /// the var-indexed arrays and replays any carried phase/activity.
  var make_var(net::node n, var fanin0, var fanin1);

  /// Query-entry tick + stop poll shared by the three query kinds.
  /// Returns true when the query must answer `unknown` immediately.
  bool governed_stop_at_query() noexcept
  {
    if (hooks_ == nullptr) {
      return false;
    }
    hooks_->on_query_begin();
    return hooks_->should_stop();
  }

  const net::aig_network& aig_;
  solver& solver_;
  options opt_;
  resource_hooks* hooks_ = nullptr; // non-owning; null = ungoverned
  phase_hint_fn phase_hints_;
  bool reseed_phases_ = true;
  const var_state_snapshot* carried_ = nullptr;
  uint64_t phase_seeds_ = 0;
  std::vector<var> node_var_;     // node id → var + 1 (0 = not encoded)
  var const_var_;                 // variable fixed to false
  /// Reusable XOR-miter variable (+1; 0 = none yet).  Its four defining
  /// clauses are added per query and retracted right after, so thousands
  /// of equivalence queries do not pile dead XOR cones into the solver.
  /// Retired (re-allocated) if a query pins it at level 0.
  var xor_var_ = 0;
  uint64_t encoded_count_ = 0;

  /// var → its two antecedent vars at encode time (~0u = leaf).
  std::vector<std::array<var, 2>> var_fanins_;
  std::vector<net::node> var_node_;   // var → node (~0u = auxiliary)
  std::vector<uint32_t> scope_mark_;  // var → last scope epoch
  uint32_t scope_epoch_ = 0;
  std::vector<var> scope_vars_;       // scratch: current scope closure
};

} // namespace stps::sat
