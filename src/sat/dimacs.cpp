#include "sat/dimacs.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace stps::sat {

std::size_t load_dimacs(std::istream& is, solver& s)
{
  std::size_t clauses = 0;
  std::vector<lit> clause;
  std::string token;
  while (is >> token) {
    if (token == "c") {
      std::string rest;
      std::getline(is, rest);
      continue;
    }
    if (token == "p") {
      std::string fmt;
      uint64_t vars = 0, declared = 0;
      if (!(is >> fmt >> vars >> declared) || fmt != "cnf") {
        throw std::runtime_error{"dimacs: malformed problem line"};
      }
      while (s.num_vars() < vars) {
        s.new_var();
      }
      continue;
    }
    const long long value = std::stoll(token);
    if (value == 0) {
      s.add_clause(clause);
      clause.clear();
      ++clauses;
      continue;
    }
    const uint64_t v = static_cast<uint64_t>(value < 0 ? -value : value);
    while (s.num_vars() < v) {
      s.new_var();
    }
    clause.push_back(lit{static_cast<var>(v - 1u), value < 0});
  }
  if (!clause.empty()) {
    throw std::runtime_error{"dimacs: clause missing terminating 0"};
  }
  return clauses;
}

void write_dimacs(std::ostream& os, uint32_t num_vars,
                  const std::vector<std::vector<lit>>& clauses)
{
  os << "p cnf " << num_vars << ' ' << clauses.size() << '\n';
  for (const auto& clause : clauses) {
    for (const lit l : clause) {
      os << (l.sign() ? "-" : "") << (l.variable() + 1u) << ' ';
    }
    os << "0\n";
  }
}

void export_dimacs(std::ostream& os, const solver& s,
                   std::span<const lit> assumptions, bool include_learnts)
{
  std::vector<std::vector<lit>> clauses;
  s.copy_clauses(clauses, include_learnts);
  for (const lit a : assumptions) {
    clauses.push_back({a});
  }
  if (!assumptions.empty()) {
    os << "c last " << assumptions.size()
       << " unit clause(s) are query assumptions\n";
  }
  write_dimacs(os, s.num_vars(), clauses);
}

result replay_dimacs(std::istream& is, int64_t conflict_budget,
                     solver_options opt)
{
  solver s{opt};
  load_dimacs(is, s);
  return s.solve({}, conflict_budget);
}

} // namespace stps::sat
