#include "sat/inprocess.hpp"

#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <numeric>

namespace stps::sat {

namespace {

enum class norm_result
{
  keep, ///< clause survives with >= 2 literals
  drop, ///< tautology or satisfied at level 0 — needs no representation
  unit, ///< exactly one literal left
  empty ///< all literals false at level 0 — database is unsat
};

lbool value_at(const std::vector<lbool>& assigns, lit l)
{
  return assigns[l.variable()] ^ l.sign();
}

/// Level-0 normalization: sort, dedupe, detect tautology / satisfied,
/// drop false literals.
norm_result normalize(std::vector<lit>& c, const std::vector<lbool>& assigns)
{
  std::sort(c.begin(), c.end());
  c.erase(std::unique(c.begin(), c.end()), c.end());
  std::size_t j = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i + 1u < c.size() && c[i + 1u] == ~c[i]) {
      return norm_result::drop;
    }
    const lbool v = value_at(assigns, c[i]);
    if (v == lbool::l_true) {
      return norm_result::drop;
    }
    if (v == lbool::l_undef) {
      c[j++] = c[i];
    }
  }
  c.resize(j);
  if (c.empty()) {
    return norm_result::empty;
  }
  return c.size() == 1u ? norm_result::unit : norm_result::keep;
}

uint64_t signature(const clause_db::clause& c)
{
  uint64_t sig = 0;
  for (const lit l : c) {
    sig |= uint64_t{1} << (l.x & 63u);
  }
  return sig;
}

} // namespace

bool inprocessor::collapse(solver& s, outcome& out)
{
  const binary_graph::equivalences eq =
      s.bin_.compute_equivalences(s.assigns_);
  if (eq.contradiction) {
    s.ok_ = false;
    out.unsat = true;
    return false;
  }
  if (eq.mapped.empty()) {
    return true;
  }

  // Substitution onto class representatives (one level deep by
  // construction: a representative never appears on the left).
  std::vector<lit> subst(s.num_vars());
  for (var v = 0; v < s.num_vars(); ++v) {
    subst[v] = lit{v, false};
  }
  for (const auto& [v, rep] : eq.mapped) {
    subst[v] = rep;
  }
  const auto sub = [&](lit l) {
    return l.sign() ? ~subst[l.variable()] : subst[l.variable()];
  };

  // Rewrite every arena clause whose literals are touched.  Freed
  // clauses are detached and unhooked first, so the clause lists stay
  // GC-consistent even when an empty clause surfaces mid-rewrite.
  bool failed = false;
  std::vector<lit> scratch;
  const auto rewrite_list = [&](std::vector<cref>& list, bool learnt) {
    std::size_t j = 0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      const cref cr = list[i];
      if (failed) {
        list[j++] = cr;
        continue;
      }
      clause_db::clause& c = s.db_.deref(cr);
      bool touched = false;
      for (const lit l : c) {
        if (subst[l.variable()].variable() != l.variable()) {
          touched = true;
          break;
        }
      }
      if (!touched) {
        list[j++] = cr;
        continue;
      }
      s.detach(cr);
      s.unhook_reasons(cr);
      scratch.assign(c.begin(), c.end());
      for (lit& l : scratch) {
        l = sub(l);
      }
      switch (normalize(scratch, s.assigns_)) {
      case norm_result::drop:
        s.db_.free_clause(cr);
        break;
      case norm_result::empty:
        s.db_.free_clause(cr);
        s.ok_ = false;
        out.unsat = true;
        failed = true;
        break;
      case norm_result::unit:
        s.db_.free_clause(cr);
        if (s.value(scratch[0]) == lbool::l_undef) {
          s.enqueue(scratch[0], solver::reason_none);
        }
        break;
      case norm_result::keep:
        if (scratch.size() == 2u && s.opt_.implicit_binaries) {
          s.db_.free_clause(cr);
          s.bin_.add(scratch[0], scratch[1], learnt);
          ++s.stats_.binary_clauses;
        } else {
          const uint32_t old_size = c.size();
          c.header = (static_cast<uint32_t>(scratch.size())
                      << clause_db::clause::size_shift) |
                     (c.header & clause_db::clause::flag_learnt);
          std::copy(scratch.begin(), scratch.end(), c.begin());
          if (scratch.size() < old_size) {
            s.db_.note_shrunk(old_size -
                              static_cast<uint32_t>(scratch.size()));
          }
          s.attach(cr);
          list[j++] = cr;
        }
        break;
      }
    }
    list.resize(j);
  };
  rewrite_list(s.clauses_, false);
  rewrite_list(s.learnts_, true);

  // Rebuild the binary graph under the substitution.  Intra-class
  // edges become tautologies and vanish; duplicates collapse to one
  // copy (problem provenance wins so the survivor cannot be purged).
  struct bin_clause
  {
    lit a, b;
    uint32_t learnt;
  };
  std::vector<bin_clause> bins;
  s.bin_.for_each_clause([&](lit a, lit b, bool learnt) {
    bins.push_back(bin_clause{a, b, learnt ? 1u : 0u});
  });
  s.bin_.clear();
  std::vector<bin_clause> kept_bins;
  std::vector<lit> two;
  for (const bin_clause& bc : bins) {
    two.assign({sub(bc.a), sub(bc.b)});
    switch (normalize(two, s.assigns_)) {
    case norm_result::drop:
      break;
    case norm_result::empty:
      s.ok_ = false;
      out.unsat = true;
      failed = true;
      break;
    case norm_result::unit:
      if (s.value(two[0]) == lbool::l_undef) {
        s.enqueue(two[0], solver::reason_none);
      }
      break;
    case norm_result::keep:
      kept_bins.push_back(bin_clause{two[0], two[1], bc.learnt});
      break;
    }
  }
  std::sort(kept_bins.begin(), kept_bins.end(),
            [](const bin_clause& x, const bin_clause& y) {
              if (x.a.x != y.a.x) {
                return x.a.x < y.a.x;
              }
              if (x.b.x != y.b.x) {
                return x.b.x < y.b.x;
              }
              return x.learnt < y.learnt;
            });
  kept_bins.erase(std::unique(kept_bins.begin(), kept_bins.end(),
                              [](const bin_clause& x, const bin_clause& y) {
                                return x.a == y.a && x.b == y.b;
                              }),
                  kept_bins.end());
  for (const bin_clause& bc : kept_bins) {
    s.bin_.add(bc.a, bc.b, bc.learnt != 0u); // re-add: no stats increment
  }

  // Defining equivalences (¬v ∨ rep), (v ∨ ¬rep): the eliminated
  // variable keeps propagating from its representative, which preserves
  // the support-closure contract of set_decision_vars.
  for (const auto& [v, rep] : eq.mapped) {
    s.bin_.add(lit{v, true}, rep, false);
    s.bin_.add(lit{v, false}, ~rep, false);
    s.stats_.binary_clauses += 2u;
  }
  out.lits_collapsed += eq.mapped.size();

  if (failed) {
    return false;
  }
  if (s.propagate().valid()) {
    s.ok_ = false;
    out.unsat = true;
    return false;
  }
  return true;
}

void inprocessor::subsume(solver& s, const limits& lim,
                          resource_hooks* hooks, outcome& out)
{
  // Backward subsumption over the arena, signature-filtered.  Subsumer
  // order is (size, cref) ascending, graph binaries first; a problem
  // clause may only be deleted by a problem subsumer (a learnt subsumer
  // can itself be reduced away later, which would leave the database
  // weaker than the problem).
  std::vector<cref> all;
  all.reserve(s.clauses_.size() + s.learnts_.size());
  all.insert(all.end(), s.clauses_.begin(), s.clauses_.end());
  all.insert(all.end(), s.learnts_.begin(), s.learnts_.end());
  if (all.empty()) {
    return;
  }

  std::vector<uint64_t> sigs(all.size());
  std::vector<std::vector<uint32_t>> occ(2u * s.num_vars());
  for (uint32_t i = 0; i < all.size(); ++i) {
    const clause_db::clause& c = s.db_.deref(all[i]);
    sigs[i] = signature(c);
    for (const lit l : c) {
      occ[l.x].push_back(i);
    }
  }

  uint64_t checks = 0;
  uint64_t deleted = 0;
  const auto erase_clause = [&](cref cr) {
    s.unhook_reasons(cr);
    s.detach(cr);
    s.db_.free_clause(cr);
    ++deleted;
  };

  // Graph binaries as subsumers: (a ∨ b) deletes any arena clause
  // containing both literals (provenance permitting).
  s.bin_.for_each_clause([&](lit a, lit b, bool learnt) {
    if (checks >= lim.subsumption_checks) {
      return;
    }
    for (const uint32_t di : occ[a.x]) {
      if (++checks > lim.subsumption_checks) {
        return;
      }
      const cref dr = all[di];
      const clause_db::clause& d = s.db_.deref(dr);
      if (d.removed() || (learnt && !d.learnt())) {
        continue;
      }
      bool has_b = false;
      for (const lit l : d) {
        if (l == b) {
          has_b = true;
          break;
        }
      }
      if (has_b) {
        erase_clause(dr);
      }
    }
  });

  std::vector<uint32_t> order(all.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
    const uint32_t sx = s.db_.deref(all[x]).size();
    const uint32_t sy = s.db_.deref(all[y]).size();
    if (sx != sy) {
      return sx < sy;
    }
    return all[x] < all[y];
  });

  std::vector<uint32_t> mark(2u * s.num_vars(), 0u);
  uint32_t stamp = 0;
  for (const uint32_t ci : order) {
    if (checks >= lim.subsumption_checks ||
        (hooks != nullptr && hooks->should_stop())) {
      break;
    }
    const cref cr = all[ci];
    const clause_db::clause& c = s.db_.deref(cr);
    if (c.removed()) {
      continue;
    }
    ++stamp;
    lit best;
    best.x = 0;
    std::size_t best_occ = ~std::size_t{0};
    for (const lit l : c) {
      mark[l.x] = stamp;
      if (occ[l.x].size() < best_occ) {
        best_occ = occ[l.x].size();
        best = l;
      }
    }
    for (const uint32_t di : occ[best.x]) {
      if (di == ci) {
        continue;
      }
      if (++checks > lim.subsumption_checks) {
        break;
      }
      const cref dr = all[di];
      const clause_db::clause& d = s.db_.deref(dr);
      if (d.removed() || d.size() < c.size() ||
          (c.learnt() && !d.learnt()) ||
          (sigs[ci] & ~sigs[di]) != 0u) {
        continue;
      }
      uint32_t hits = 0;
      for (const lit l : d) {
        if (mark[l.x] == stamp) {
          ++hits;
        }
      }
      if (hits == c.size()) {
        erase_clause(dr);
      }
    }
  }

  if (deleted != 0u) {
    const auto dead = [&](cref cr) { return s.db_.deref(cr).removed(); };
    s.clauses_.erase(
        std::remove_if(s.clauses_.begin(), s.clauses_.end(), dead),
        s.clauses_.end());
    s.learnts_.erase(
        std::remove_if(s.learnts_.begin(), s.learnts_.end(), dead),
        s.learnts_.end());
    out.clauses_subsumed += deleted;
  }
}

bool inprocessor::vivify(solver& s, const limits& lim,
                         resource_hooks* hooks, outcome& out)
{
  // Re-propagate each clause's negation literal by literal (the clause
  // detached so it cannot prop itself, no learning on conflicts) and
  // keep the shortened prefix when propagation closes the clause early.
  // Phase saving is suspended: the probing decisions must not clobber
  // the signature-seeded polarities.
  const uint64_t start_props = s.stats_.propagations;
  s.preserve_phases_ = true;
  bool failed = false;
  std::vector<lit> kept;
  const auto process_list = [&](std::vector<cref>& list, bool learnt) {
    std::size_t j = 0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      const cref cr = list[i];
      if (failed ||
          s.stats_.propagations - start_props > lim.vivify_propagations ||
          (hooks != nullptr && (i & 63u) == 0u && hooks->should_stop())) {
        list[j++] = cr;
        continue;
      }
      {
        const clause_db::clause& c = s.db_.deref(cr);
        if (c.size() < 3u || c.size() > lim.vivify_max_size) {
          list[j++] = cr;
          continue;
        }
      }
      s.detach(cr);
      s.unhook_reasons(cr);
      clause_db::clause& c = s.db_.deref(cr);
      kept.clear();
      bool dropped = false;
      for (std::size_t k = 0; k < c.size(); ++k) {
        const lit l = c[k];
        const lbool v = s.value(l);
        if (v == lbool::l_true) {
          // ¬(kept) forces l: the clause shrinks to kept ∪ {l}.
          kept.push_back(l);
          dropped = dropped || k + 1u < c.size();
          break;
        }
        if (v == lbool::l_false) {
          // ¬(kept) forces ¬l: l is redundant in this clause.
          dropped = true;
          continue;
        }
        kept.push_back(l);
        s.trail_lim_.push_back(static_cast<uint32_t>(s.trail_.size()));
        s.enqueue(~l, solver::reason_none);
        if (s.propagate().valid()) {
          // ¬(kept) is contradictory: kept alone is implied.
          dropped = dropped || k + 1u < c.size();
          break;
        }
      }
      s.backtrack(0u);
      if (!dropped) {
        s.attach(cr);
        list[j++] = cr;
        continue;
      }
      // kept may still contain a level-0 satisfied literal (probe hit a
      // fixed value); normalize settles it.
      switch (normalize(kept, s.assigns_)) {
      case norm_result::drop:
        s.db_.free_clause(cr);
        break;
      case norm_result::empty:
        s.db_.free_clause(cr);
        s.ok_ = false;
        out.unsat = true;
        failed = true;
        break;
      case norm_result::unit:
        s.db_.free_clause(cr);
        if (s.value(kept[0]) == lbool::l_undef) {
          s.enqueue(kept[0], solver::reason_none);
          if (s.propagate().valid()) {
            s.ok_ = false;
            out.unsat = true;
            failed = true;
          }
        }
        break;
      case norm_result::keep:
        if (kept.size() == 2u && s.opt_.implicit_binaries) {
          s.db_.free_clause(cr);
          s.bin_.add(kept[0], kept[1], learnt);
          ++s.stats_.binary_clauses;
        } else {
          const uint32_t old_size = c.size();
          c.header = (static_cast<uint32_t>(kept.size())
                      << clause_db::clause::size_shift) |
                     (c.header & clause_db::clause::flag_learnt);
          std::copy(kept.begin(), kept.end(), c.begin());
          s.db_.note_shrunk(old_size - static_cast<uint32_t>(kept.size()));
          s.attach(cr);
          list[j++] = cr;
        }
        break;
      }
      ++out.clauses_strengthened;
    }
    list.resize(j);
  };
  process_list(s.learnts_, true);
  process_list(s.clauses_, false);
  s.preserve_phases_ = false;
  return !failed;
}

inprocessor::outcome inprocessor::run(solver& s, const limits& lim,
                                      resource_hooks* hooks)
{
  outcome out;
  assert(s.decision_level() == 0u);
  if (!s.ok_ || s.num_removables_ != 0u) {
    return out;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto finish = [&]() {
    s.check_garbage();
    s.stats_.lits_collapsed += out.lits_collapsed;
    s.stats_.clauses_subsumed += out.clauses_subsumed;
    s.stats_.inprocess_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return out;
  };
  if (!collapse(s, out)) {
    return finish();
  }
  if (hooks != nullptr && hooks->should_stop()) {
    return finish();
  }
  subsume(s, lim, hooks, out);
  if (hooks != nullptr && hooks->should_stop()) {
    return finish();
  }
  if (!vivify(s, lim, hooks, out)) {
    return finish();
  }
  return finish();
}

} // namespace stps::sat
