#include "sat/cnf_manager.hpp"

namespace stps::sat {

cnf_manager::cnf_manager(const net::aig_network& aig, params p)
    : aig_{aig}, params_{p}, solver_{std::make_unique<solver>()},
      encoder_{std::make_unique<aig_encoder>(aig_, *solver_)}
{
}

void cnf_manager::begin_query()
{
  const uint64_t clauses = static_cast<uint64_t>(solver_->num_clauses()) +
                           static_cast<uint64_t>(solver_->num_learnts());
  clauses_peak_ = std::max(clauses_peak_, clauses);
  const bool over_budget =
      params_.clause_budget != 0u && clauses > params_.clause_budget;
  if ((params_.incremental || !used_) && !over_budget) {
    used_ = true;
    return;
  }
  // New epoch: retire the pair, start empty.  The encoder must be
  // destroyed first (it references the solver).
  nodes_encoded_retired_ += encoder_->num_encoded_nodes();
  ++rebuilds_;
  encoder_.reset();
  solver_ = std::make_unique<solver>();
  encoder_ = std::make_unique<aig_encoder>(aig_, *solver_);
  used_ = true;
}

result cnf_manager::prove_equivalent(net::signal a, net::signal b,
                                     bool complement, int64_t conflict_budget)
{
  begin_query();
  return encoder_->prove_equivalent(a, b, complement, conflict_budget);
}

result cnf_manager::prove_constant(net::signal f, bool value,
                                   int64_t conflict_budget)
{
  begin_query();
  return encoder_->prove_constant(f, value, conflict_budget);
}

std::optional<std::vector<bool>> cnf_manager::find_assignment(
    net::signal f, bool value, int64_t conflict_budget)
{
  begin_query();
  return encoder_->find_assignment(f, value, conflict_budget);
}

std::vector<bool> cnf_manager::model_inputs() const
{
  return encoder_->model_inputs();
}

} // namespace stps::sat
