#include "sat/cnf_manager.hpp"

#include "sat/inprocess.hpp"

namespace stps::sat {

namespace {

void accumulate(solver_stats& into, const solver_stats& s)
{
  into.decisions += s.decisions;
  into.propagations += s.propagations;
  into.conflicts += s.conflicts;
  into.restarts += s.restarts;
  into.learnt_clauses += s.learnt_clauses;
  into.solve_calls += s.solve_calls;
  into.learnts_reduced += s.learnts_reduced;
  into.lbd_sum += s.lbd_sum;
  into.binary_clauses += s.binary_clauses;
  into.lits_collapsed += s.lits_collapsed;
  into.clauses_subsumed += s.clauses_subsumed;
  into.inprocess_seconds += s.inprocess_seconds;
}

solver_options make_solver_options(const cnf_manager::params& p)
{
  solver_options opt;
  opt.reduce_learnts = p.sat_reduce_learnts;
  return opt;
}

} // namespace

cnf_manager::cnf_manager(const net::aig_network& aig, params p)
    : aig_{aig}, params_{p},
      solver_{std::make_unique<solver>(make_solver_options(p))},
      encoder_{std::make_unique<aig_encoder>(
          aig_, *solver_, aig_encoder::options{p.cone_scoped_decisions})},
      reseed_on_{p.phase_reseed_sat_per_mille != 0u},
      fault_rng_{p.faults.seed != 0u ? p.faults.seed
                                     : uint64_t{0x9e3779b97f4a7c15ull}}
{
  encoder_->set_phase_reseed(reseed_on_);
  encoder_->set_resource_hooks(params_.hooks);
}

void cnf_manager::set_phase_hints(aig_encoder::phase_hint_fn hints)
{
  phase_hints_ = std::move(hints);
  encoder_->set_phase_hints(phase_hints_);
}

solver_stats cnf_manager::solver_statistics() const noexcept
{
  solver_stats total = stats_retired_;
  accumulate(total, solver_->stats());
  return total;
}

void cnf_manager::begin_query()
{
  const uint64_t clauses = static_cast<uint64_t>(solver_->num_clauses()) +
                           static_cast<uint64_t>(solver_->num_learnts());
  clauses_peak_ = std::max(clauses_peak_, clauses);
  const bool over_budget =
      params_.clause_budget != 0u && clauses > params_.clause_budget;
  ++fault_queries_;
  // Injected garbage epoch: tear the pair down regardless of the clause
  // budget (only once a query actually ran in this epoch — rebuilding
  // an untouched pair would churn without exercising anything).
  const bool forced_rebuild =
      params_.faults.rebuild_every != 0u && used_ &&
      fault_queries_ % params_.faults.rebuild_every == 0u;
  if ((params_.incremental || !used_) && !over_budget && !forced_rebuild) {
    used_ = true;
    maybe_inprocess();
    return;
  }
  // New epoch: retire the pair, start empty.  The encoder must be
  // destroyed first (it references the solver).  Counters and solver
  // search stats are retired into running sums first — rebuilds are a
  // memory policy and must never reset the sweep's statistics.
  nodes_encoded_retired_ += encoder_->num_encoded_nodes();
  phase_seeds_retired_ += encoder_->phase_seeds();
  accumulate(stats_retired_, solver_->stats());
  ++rebuilds_;
  if (params_.incremental && params_.cone_scoped_decisions) {
    // Garbage epoch with live cones ahead: carry learned phases and
    // activities over, replayed as nodes re-encode.  Non-incremental
    // per-query rebuilds stay cold — that ablation is the from-scratch
    // baseline.
    encoder_->snapshot_var_state(carried_);
    have_carried_ = true;
  }
  encoder_.reset();
  solver_ = std::make_unique<solver>(make_solver_options(params_));
  encoder_ = std::make_unique<aig_encoder>(
      aig_, *solver_, aig_encoder::options{params_.cone_scoped_decisions});
  inprocess_tick_ = 0; // fresh epoch: nothing to simplify yet
  if (have_carried_) {
    encoder_->set_carried_state(&carried_);
  }
  if (phase_hints_) {
    encoder_->set_phase_hints(phase_hints_);
  }
  encoder_->set_phase_reseed(reseed_on_);
  encoder_->set_resource_hooks(params_.hooks);
  used_ = true;
}

void cnf_manager::maybe_inprocess()
{
  if (!params_.inprocess || params_.inprocess_interval == 0u) {
    return;
  }
  ++inprocess_tick_;
  if (inprocess_tick_ % params_.inprocess_interval != 0u) {
    return;
  }
  const uint64_t clauses = static_cast<uint64_t>(solver_->num_clauses()) +
                           static_cast<uint64_t>(solver_->num_learnts());
  if (clauses < params_.inprocess_min_clauses) {
    return;
  }
  if (params_.hooks != nullptr && params_.hooks->should_stop()) {
    return;
  }
  inprocessor::run(*solver_, inprocessor::limits{}, params_.hooks);
}

bool cnf_manager::fault_unknown_now()
{
  if (params_.faults.unknown_every == 0u) {
    return false;
  }
  ++fault_equiv_queries_;
  if (params_.faults.seed == 0u) {
    // Exact periodic schedule: every k-th equivalence query faults.
    return fault_equiv_queries_ % params_.faults.unknown_every == 0u;
  }
  // Seeded schedule: one xorshift64 draw per query, faulting with
  // probability 1/k — same expected rate, seed-varied placement.
  fault_rng_ ^= fault_rng_ << 13;
  fault_rng_ ^= fault_rng_ >> 7;
  fault_rng_ ^= fault_rng_ << 17;
  return fault_rng_ % params_.faults.unknown_every == 0u;
}

void cnf_manager::note_answer(bool satisfiable)
{
  ++queries_seen_;
  if (satisfiable) {
    ++sat_seen_;
  }
  if (reseed_on_ && queries_seen_ >= params_.phase_reseed_warmup &&
      sat_seen_ * 1000u >
          uint64_t{params_.phase_reseed_sat_per_mille} * queries_seen_) {
    // Satisfiable answers are frequent: counter-example diversity now
    // matters more than cheap UNSAT searches.  The switch is monotone —
    // once off, re-seeding stays off for the rest of the sweep.
    reseed_on_ = false;
    encoder_->set_phase_reseed(false);
  }
}

result cnf_manager::prove_equivalent(net::signal a, net::signal b,
                                     bool complement, int64_t conflict_budget)
{
  begin_query();
  if (fault_unknown_now()) {
    // Injected unDET: behave exactly like a budget-exhausted search —
    // the query still ticks the governor's clock and feeds the adaptive
    // re-seeding statistics as a non-satisfiable answer.
    if (params_.hooks != nullptr) {
      params_.hooks->on_query_begin();
    }
    note_answer(false);
    return result::unknown;
  }
  const result r = encoder_->prove_equivalent(a, b, complement,
                                              conflict_budget);
  note_answer(r == result::sat);
  return r;
}

result cnf_manager::prove_constant(net::signal f, bool value,
                                   int64_t conflict_budget)
{
  // Guided-round query: a satisfiable model becomes a simulation
  // pattern, so its diversity is the whole point — never re-seed it
  // toward the seed pattern, and keep its (intentionally satisfiable)
  // outcome out of the adaptive statistics.
  begin_query();
  encoder_->set_phase_reseed(false);
  const result r = encoder_->prove_constant(f, value, conflict_budget);
  encoder_->set_phase_reseed(reseed_on_);
  return r;
}

std::optional<std::vector<bool>> cnf_manager::find_assignment(
    net::signal f, bool value, int64_t conflict_budget)
{
  // Pattern-generation query — same exemption as prove_constant.
  begin_query();
  encoder_->set_phase_reseed(false);
  auto witness = encoder_->find_assignment(f, value, conflict_budget);
  encoder_->set_phase_reseed(reseed_on_);
  return witness;
}

std::vector<bool> cnf_manager::model_inputs() const
{
  return encoder_->model_inputs();
}

void cnf_manager::export_equivalence_query(std::ostream& os, net::signal a,
                                           net::signal b, bool complement)
{
  encoder_->export_equivalence_query(os, a, b, complement);
}

} // namespace stps::sat
