#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <new>
#include <stdexcept>

namespace stps::sat {

namespace {

constexpr uint32_t undef_lit_x = ~uint32_t{0};

/// Luby restart sequence (1,1,2,1,1,2,4,...).
uint64_t luby(uint64_t i)
{
  uint64_t size = 1;
  uint64_t seq = 0;
  while (size < i + 1u) {
    ++seq;
    size = 2u * size + 1u;
  }
  while (size - 1u != i) {
    size = (size - 1u) >> 1u;
    --seq;
    i = i % size;
  }
  return uint64_t{1} << seq;
}

} // namespace

solver::solver() = default;

solver::~solver()
{
  for (clause* c : clauses_) {
    clause::destroy(c);
  }
  for (clause* c : learnts_) {
    clause::destroy(c);
  }
  for (clause* c : removables_) {
    clause::destroy(c);
  }
}

solver::clause* solver::clause::make(std::span<const lit> lits, bool learnt)
{
  void* mem = ::operator new(sizeof(clause) + lits.size() * sizeof(lit));
  auto* c = new (mem) clause{};
  c->size = static_cast<uint32_t>(lits.size());
  c->learnt = learnt;
  std::copy(lits.begin(), lits.end(), c->begin());
  return c;
}

void solver::clause::destroy(clause* c)
{
  ::operator delete(c);
}

var solver::new_var()
{
  const var v = static_cast<var>(assigns_.size());
  assigns_.push_back(lbool::l_undef);
  polarity_.push_back(true); // default phase: negative (MiniSat convention)
  level_.push_back(0u);
  reason_.push_back(nullptr);
  activity_.push_back(0.0);
  heap_pos_.push_back(0u);
  seen_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  // Under a decision restriction new variables start unlisted; the next
  // set_decision_vars call scopes them in as needed.
  decision_.push_back(restricted_ ? 0u : 1u);
  if (!restricted_) {
    heap_insert(v);
  }
  return v;
}

void solver::set_decision_vars(std::span<const var> vars)
{
  assert(decision_level() == 0u);
  if (!restricted_) {
    std::fill(decision_.begin(), decision_.end(), 0u);
    restricted_ = true;
  } else {
    for (const var v : decision_list_) {
      decision_[v] = 0u;
    }
  }
  for (const heap_entry& e : heap_) {
    heap_pos_[e.v] = 0u;
  }
  heap_.clear();
  decision_list_.assign(vars.begin(), vars.end());
  for (const var v : vars) {
    decision_[v] = 1u;
    if (assigns_[v] == lbool::l_undef) {
      heap_insert(v);
    }
  }
}

bool solver::add_clause(std::initializer_list<lit> lits)
{
  return add_clause(std::span<const lit>{lits.begin(), lits.size()});
}

bool solver::simplify_clause(std::span<const lit> lits,
                             std::vector<lit>& out)
{
  // Normalize: sort, dedupe, drop false literals, detect tautology.
  std::vector<lit> c(lits.begin(), lits.end());
  std::sort(c.begin(), c.end());
  c.erase(std::unique(c.begin(), c.end()), c.end());
  out.clear();
  out.reserve(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i + 1u < c.size() && c[i + 1u] == ~c[i]) {
      return false; // tautology
    }
    const lbool v = value(c[i]);
    if (v == lbool::l_true) {
      return false; // already satisfied at level 0
    }
    if (v == lbool::l_undef) {
      out.push_back(c[i]);
    }
  }
  return true;
}

bool solver::add_clause(std::span<const lit> lits)
{
  if (!ok_) {
    return false;
  }
  if (decision_level() != 0u) {
    throw std::logic_error{"add_clause: only at decision level 0"};
  }
  std::vector<lit> out;
  if (!simplify_clause(lits, out)) {
    return true;
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1u) {
    enqueue(out[0], nullptr);
    ok_ = propagate() == nullptr;
    return ok_;
  }
  clause* cl = clause::make(out, false);
  clauses_.push_back(cl);
  attach(cl);
  return true;
}

solver::clause_handle solver::add_removable_clause(std::span<const lit> lits)
{
  if (!ok_) {
    return nullptr;
  }
  if (decision_level() != 0u) {
    throw std::logic_error{"add_removable_clause: only at decision level 0"};
  }
  std::vector<lit> out;
  if (!simplify_clause(lits, out)) {
    return nullptr;
  }
  if (out.empty()) {
    ok_ = false;
    return nullptr;
  }
  if (out.size() == 1u) {
    // Unit facts are permanent; the caller retires any auxiliary
    // variable this pins (see aig_encoder::prove_equivalent).
    enqueue(out[0], nullptr);
    ok_ = propagate() == nullptr;
    return nullptr;
  }
  clause* cl = clause::make(out, false);
  removables_.push_back(cl);
  attach(cl);
  return cl;
}

void solver::unhook_reasons(clause* c)
{
  for (const lit l : *c) {
    if (reason_[l.variable()] == c) {
      reason_[l.variable()] = nullptr;
    }
  }
}

void solver::purge_learnts_with(var v)
{
  assert(decision_level() == 0u);
  // Clauses mentioning v can only have been learnt since the last purge
  // (earlier ones were purged then), i.e. during the last solve() — scan
  // only that suffix unless reduce_db reshuffled the whole list.
  std::size_t j = db_reduced_in_solve_ ? 0u : learnts_at_solve_;
  for (std::size_t i = j; i < learnts_.size(); ++i) {
    clause* c = learnts_[i];
    bool mentions = false;
    for (const lit l : *c) {
      if (l.variable() == v) {
        mentions = true;
        break;
      }
    }
    if (!mentions) {
      learnts_[j++] = c;
      continue;
    }
    unhook_reasons(c); // level-0 reasons are never consulted
    detach(c);
    clause::destroy(c);
  }
  learnts_.resize(j);
}

void solver::remove_clause(clause_handle h)
{
  if (h == nullptr) {
    return;
  }
  assert(decision_level() == 0u);
  auto* c = static_cast<clause*>(h);
  // The clause may be the level-0 reason of its implied literal; reasons
  // of level-0 facts are never consulted again, so just unhook the
  // dangling pointer.
  unhook_reasons(c);
  detach(c);
  const auto it = std::find(removables_.begin(), removables_.end(), c);
  assert(it != removables_.end());
  removables_.erase(it);
  clause::destroy(c);
}

void solver::attach(clause* c)
{
  assert(c->size >= 2u);
  const uint32_t binary = c->size == 2u ? 1u : 0u;
  watches_[(~(*c)[0]).x].push_back(watcher{c, (*c)[1], binary});
  watches_[(~(*c)[1]).x].push_back(watcher{c, (*c)[0], binary});
}

void solver::detach(clause* c)
{
  for (const lit w : {(*c)[0], (*c)[1]}) {
    auto& list = watches_[(~w).x];
    const auto it =
        std::find_if(list.begin(), list.end(),
                     [c](const watcher& wa) { return wa.c == c; });
    assert(it != list.end());
    list.erase(it);
  }
}

void solver::enqueue(lit l, clause* reason)
{
  assert(value(l) == lbool::l_undef);
  const var v = l.variable();
  assigns_[v] = from_bool(!l.sign());
  level_[v] = decision_level();
  reason_[v] = reason;
  trail_.push_back(l);
}

solver::clause* solver::propagate()
{
  clause* conflict = nullptr;
  while (qhead_ < trail_.size()) {
    const lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[p.x];
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ws.size()) {
      const watcher w = ws[i];
      if (value(w.blocker) == lbool::l_true) {
        ws[j++] = ws[i++];
        continue;
      }
      if (w.binary) {
        // A binary clause is fully described by the watcher: the blocker
        // is the only other literal — no clause memory is touched until
        // a conflict needs it.
        ws[j++] = ws[i++];
        if (value(w.blocker) == lbool::l_false) {
          conflict = w.c;
          qhead_ = trail_.size();
          while (i < ws.size()) {
            ws[j++] = ws[i++];
          }
        } else {
          enqueue(w.blocker, w.c);
        }
        continue;
      }
      clause& c = *w.c;
      const lit false_lit = ~p;
      if (c[0] == false_lit) {
        std::swap(c[0], c[1]);
      }
      assert(c[1] == false_lit);
      ++i;
      const lit first = c[0];
      if (first != w.blocker && value(first) == lbool::l_true) {
        ws[j++] = watcher{w.c, first};
        continue;
      }
      bool found = false;
      for (std::size_t k = 2; k < c.size; ++k) {
        if (value(c[k]) != lbool::l_false) {
          std::swap(c[1], c[k]);
          watches_[(~c[1]).x].push_back(watcher{w.c, first});
          found = true;
          break;
        }
      }
      if (found) {
        continue;
      }
      // Clause is unit or conflicting under the current assignment.
      ws[j++] = watcher{w.c, first};
      if (value(first) == lbool::l_false) {
        conflict = w.c;
        qhead_ = trail_.size();
        while (i < ws.size()) {
          ws[j++] = ws[i++];
        }
      } else {
        enqueue(first, w.c);
      }
    }
    ws.resize(j);
  }
  return conflict;
}

void solver::analyze(clause* conflict, std::vector<lit>& learnt,
                     uint32_t& bt_level)
{
  learnt.clear();
  learnt.push_back(lit{}); // slot for the asserting literal
  uint32_t path_count = 0;
  lit p;
  p.x = undef_lit_x;
  std::size_t index = trail_.size();

  clause* c = conflict;
  do {
    assert(c != nullptr);
    if (c->learnt) {
      bump_clause(c);
    }
    for (const lit q : *c) {
      if (q.x == p.x) {
        continue;
      }
      const var v = q.variable();
      if (!seen_[v] && level_[v] > 0u) {
        seen_[v] = true;
        bump_var(v);
        if (level_[v] >= decision_level()) {
          ++path_count;
        } else {
          learnt.push_back(q);
        }
      }
    }
    while (!seen_[trail_[index - 1u].variable()]) {
      --index;
    }
    p = trail_[--index];
    c = reason_[p.variable()];
    seen_[p.variable()] = false;
    --path_count;
  } while (path_count > 0u);
  learnt[0] = ~p;

  // Conflict-clause minimization (MiniSat's deep check).
  analyze_clear_.assign(learnt.begin() + 1, learnt.end());
  uint32_t abstract = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    abstract |= 1u << (level_[learnt[i].variable()] & 31u);
  }
  std::size_t keep = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (reason_[learnt[i].variable()] == nullptr ||
        !lit_redundant(learnt[i], abstract)) {
      learnt[keep++] = learnt[i];
    }
  }
  learnt.resize(keep);

  // Clear seen flags for kept + removed literals.
  for (const lit l : analyze_clear_) {
    seen_[l.variable()] = false;
  }
  seen_[learnt[0].variable()] = false;

  // Backtrack level: highest level among the non-asserting literals.
  bt_level = 0;
  if (learnt.size() > 1u) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[learnt[i].variable()] > level_[learnt[max_i].variable()]) {
        max_i = i;
      }
    }
    std::swap(learnt[1], learnt[max_i]);
    bt_level = level_[learnt[1].variable()];
  }
}

bool solver::lit_redundant(lit l, uint32_t abstract_levels)
{
  // A literal of the learnt clause is redundant if its reason-DAG closure
  // only reaches literals already in the clause (seen) or level-0 facts.
  // The implied literal of a reason clause is identified by variable (the
  // binary fast path does not normalize it to index 0).
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  const std::size_t clear_mark = analyze_clear_.size();
  while (!analyze_stack_.empty()) {
    const lit p = analyze_stack_.back();
    analyze_stack_.pop_back();
    const clause* c = reason_[p.variable()];
    assert(c != nullptr);
    for (std::size_t k = 0; k < c->size; ++k) {
      const lit q = (*c)[k];
      const var v = q.variable();
      if (v == p.variable() || seen_[v] || level_[v] == 0u) {
        continue;
      }
      if (reason_[v] == nullptr ||
          ((1u << (level_[v] & 31u)) & abstract_levels) == 0u) {
        // Not removable: undo the marks added during this check.
        for (std::size_t i = clear_mark; i < analyze_clear_.size(); ++i) {
          seen_[analyze_clear_[i].variable()] = false;
        }
        analyze_clear_.resize(clear_mark);
        return false;
      }
      seen_[v] = true;
      analyze_clear_.push_back(q);
      analyze_stack_.push_back(q);
    }
  }
  return true;
}

void solver::backtrack(uint32_t level)
{
  if (decision_level() <= level) {
    return;
  }
  const std::size_t bound = trail_lim_[level];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const var v = trail_[i].variable();
    polarity_[v] = assigns_[v] == lbool::l_false;
    assigns_[v] = lbool::l_undef;
    reason_[v] = nullptr;
    if (decision_[v] && !heap_contains(v)) {
      heap_insert(v);
    }
  }
  trail_.resize(bound);
  trail_lim_.resize(level);
  qhead_ = bound;
}

lit solver::pick_branch()
{
  while (!heap_.empty()) {
    const var v = heap_pop();
    if (assigns_[v] == lbool::l_undef) {
      return lit{v, polarity_[v]};
    }
  }
  lit l;
  l.x = undef_lit_x;
  return l;
}

void solver::set_var_activity(var v, double normalized)
{
  activity_[v] = normalized * var_inc_;
  if (heap_contains(v)) {
    const uint32_t i = heap_pos_[v] - 1u;
    heap_[i].act = activity_[v];
    heap_up(i);
    heap_down(heap_pos_[v] - 1u);
  }
}

void solver::bump_var(var v)
{
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) {
      a *= 1e-100;
    }
    for (heap_entry& e : heap_) {
      e.act *= 1e-100;
    }
    var_inc_ *= 1e-100;
  }
  if (heap_contains(v)) {
    const uint32_t i = heap_pos_[v] - 1u;
    heap_[i].act = activity_[v];
    heap_up(i);
  }
}

void solver::bump_clause(clause* c)
{
  c->activity += clause_inc_;
  if (c->activity > 1e20f) {
    for (clause* l : learnts_) {
      l->activity *= 1e-20f;
    }
    clause_inc_ *= 1e-20f;
  }
}

void solver::decay_var_activity()
{
  var_inc_ /= 0.95;
  clause_inc_ /= 0.999f;
}

void solver::reduce_db()
{
  std::sort(learnts_.begin(), learnts_.end(),
            [](const clause* a, const clause* b) {
              return a->activity < b->activity;
            });
  const auto locked = [&](const clause* c) {
    return value((*c)[0]) == lbool::l_true &&
           reason_[(*c)[0].variable()] == c;
  };
  std::size_t j = 0;
  const std::size_t half = learnts_.size() / 2u;
  for (std::size_t i = 0; i < learnts_.size(); ++i) {
    clause* c = learnts_[i];
    if (i < half && c->size > 2u && !locked(c)) {
      detach(c);
      clause::destroy(c);
    } else {
      learnts_[j++] = c;
    }
  }
  learnts_.resize(j);
}

result solver::solve(std::span<const lit> assumptions,
                     int64_t conflict_budget)
{
  ++stats_.solve_calls;
  model_.clear();
  learnts_at_solve_ = learnts_.size();
  db_reduced_in_solve_ = false;
  if (!ok_) {
    return result::unsat;
  }
  if (hooks_ != nullptr && hooks_->should_stop()) {
    // Governed stop before any search: answer unknown without touching
    // the trail.  Checked after ok_ so a database already proven unsat
    // keeps answering unsat.
    return result::unknown;
  }
  backtrack(0u);
  if (propagate() != nullptr) {
    ok_ = false;
    return result::unsat;
  }

  // Conflicts since the last consume_conflicts report; flushed at every
  // return so the governor's global accounting is exact.  A flush after
  // the answer is found only charges the pool — it never flips the
  // answer.
  uint64_t unreported_conflicts = 0;
  const auto finish = [&](result r) {
    if (hooks_ != nullptr && unreported_conflicts != 0u) {
      hooks_->consume_conflicts(unreported_conflicts);
    }
    return r;
  };

  uint64_t conflicts_this_call = 0;
  uint64_t restart_index = 0;
  uint64_t restart_budget = 100u * luby(restart_index);
  uint64_t conflicts_since_restart = 0;
  std::size_t max_learnts = std::max<std::size_t>(
      1000u, clauses_.size() / 3u + 100u);
  std::vector<lit> learnt;

  for (;;) {
    clause* conflict = propagate();
    if (conflict != nullptr) {
      ++stats_.conflicts;
      ++conflicts_this_call;
      ++conflicts_since_restart;
      ++unreported_conflicts;
      if (decision_level() == 0u) {
        ok_ = false;
        return finish(result::unsat);
      }
      uint32_t bt_level = 0;
      analyze(conflict, learnt, bt_level);
      backtrack(bt_level);
      if (learnt.size() == 1u) {
        enqueue(learnt[0], nullptr);
      } else {
        clause* c = clause::make(learnt, true);
        learnts_.push_back(c);
        ++stats_.learnt_clauses;
        attach(c);
        bump_clause(c);
        enqueue(learnt[0], c);
      }
      decay_var_activity();
      if (hooks_ != nullptr &&
          unreported_conflicts >= resource_check_interval) {
        const bool stop = hooks_->consume_conflicts(unreported_conflicts);
        unreported_conflicts = 0;
        if (stop) {
          backtrack(0u);
          return result::unknown;
        }
      }
      if (conflict_budget >= 0 &&
          conflicts_this_call >= static_cast<uint64_t>(conflict_budget)) {
        backtrack(0u);
        return finish(result::unknown);
      }
    } else {
      if (conflicts_since_restart >= restart_budget) {
        ++stats_.restarts;
        conflicts_since_restart = 0;
        restart_budget = 100u * luby(++restart_index);
        backtrack(0u);
        continue;
      }
      if (learnts_.size() >= max_learnts + trail_.size()) {
        reduce_db();
        db_reduced_in_solve_ = true;
        max_learnts = max_learnts * 11u / 10u;
      }

      lit next;
      next.x = undef_lit_x;
      while (decision_level() < assumptions.size()) {
        const lit a = assumptions[decision_level()];
        if (value(a) == lbool::l_true) {
          // Already satisfied: open an empty decision level for it.
          trail_lim_.push_back(static_cast<uint32_t>(trail_.size()));
        } else if (value(a) == lbool::l_false) {
          backtrack(0u);
          return finish(result::unsat);
        } else {
          next = a;
          break;
        }
      }
      if (next.x == undef_lit_x) {
        next = pick_branch();
        if (next.x == undef_lit_x) {
          // All variables assigned: model found.
          model_ = assigns_;
          backtrack(0u);
          return finish(result::sat);
        }
        ++stats_.decisions;
      }
      trail_lim_.push_back(static_cast<uint32_t>(trail_.size()));
      enqueue(next, nullptr);
    }
  }
}

bool solver::model_value(var v) const
{
  if (v >= model_.size() || model_[v] == lbool::l_undef) {
    return false;
  }
  return model_[v] == lbool::l_true;
}

void solver::heap_insert(var v)
{
  if (heap_contains(v)) {
    return;
  }
  heap_.push_back(heap_entry{activity_[v], v});
  heap_pos_[v] = static_cast<uint32_t>(heap_.size());
  heap_up(static_cast<uint32_t>(heap_.size() - 1u));
}

bool solver::heap_contains(var v) const
{
  return heap_pos_[v] != 0u;
}

var solver::heap_pop()
{
  const var top = heap_[0].v;
  heap_pos_[top] = 0u;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0].v] = 1u;
    heap_down(0u);
  }
  return top;
}

void solver::heap_up(uint32_t i)
{
  const heap_entry e = heap_[i];
  while (i != 0u) {
    const uint32_t parent = (i - 1u) / 2u;
    if (heap_[parent].act >= e.act) {
      break;
    }
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i].v] = i + 1u;
    i = parent;
  }
  heap_[i] = e;
  heap_pos_[e.v] = i + 1u;
}

void solver::heap_down(uint32_t i)
{
  const heap_entry e = heap_[i];
  const uint32_t size = static_cast<uint32_t>(heap_.size());
  for (;;) {
    uint32_t child = 2u * i + 1u;
    if (child >= size) {
      break;
    }
    if (child + 1u < size && heap_[child + 1u].act > heap_[child].act) {
      ++child;
    }
    if (heap_[child].act <= e.act) {
      break;
    }
    heap_[i] = heap_[child];
    heap_pos_[heap_[i].v] = i + 1u;
    i = child;
  }
  heap_[i] = e;
  heap_pos_[e.v] = i + 1u;
}

} // namespace stps::sat
