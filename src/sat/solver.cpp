#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace stps::sat {

namespace {

constexpr uint32_t undef_lit_x = ~uint32_t{0};

/// Luby restart sequence (1,1,2,1,1,2,4,...).
uint64_t luby(uint64_t i)
{
  uint64_t size = 1;
  uint64_t seq = 0;
  while (size < i + 1u) {
    ++seq;
    size = 2u * size + 1u;
  }
  while (size - 1u != i) {
    size = (size - 1u) >> 1u;
    --seq;
    i = i % size;
  }
  return uint64_t{1} << seq;
}

} // namespace

solver::solver(solver_options opt)
    : opt_{opt}, reduce_limit_{static_cast<double>(opt.reduce_base)}
{
  lbd_mark_.push_back(0u); // level 0 exists before the first variable
}

solver::~solver() = default;

var solver::new_var()
{
  const var v = static_cast<var>(assigns_.size());
  assigns_.push_back(lbool::l_undef);
  polarity_.push_back(true); // default phase: negative (MiniSat convention)
  level_.push_back(0u);
  reason_.push_back(reason_none);
  activity_.push_back(0.0);
  heap_pos_.push_back(0u);
  seen_.push_back(false);
  lbd_mark_.push_back(0u);
  watches_.emplace_back();
  watches_.emplace_back();
  // Under a decision restriction new variables start unlisted; the next
  // set_decision_vars call scopes them in as needed.
  decision_.push_back(restricted_ ? 0u : 1u);
  if (!restricted_) {
    heap_insert(v);
  }
  return v;
}

void solver::set_decision_vars(std::span<const var> vars)
{
  assert(decision_level() == 0u);
  if (!restricted_) {
    std::fill(decision_.begin(), decision_.end(), 0u);
    restricted_ = true;
  } else {
    for (const var v : decision_list_) {
      decision_[v] = 0u;
    }
  }
  for (const heap_entry& e : heap_) {
    heap_pos_[e.v] = 0u;
  }
  heap_.clear();
  decision_list_.assign(vars.begin(), vars.end());
  for (const var v : vars) {
    decision_[v] = 1u;
    if (assigns_[v] == lbool::l_undef) {
      heap_insert(v);
    }
  }
}

bool solver::add_clause(std::initializer_list<lit> lits)
{
  return add_clause(std::span<const lit>{lits.begin(), lits.size()});
}

bool solver::simplify_clause(std::span<const lit> lits,
                             std::vector<lit>& out)
{
  // Normalize: sort, dedupe, drop false literals, detect tautology.
  std::vector<lit> c(lits.begin(), lits.end());
  std::sort(c.begin(), c.end());
  c.erase(std::unique(c.begin(), c.end()), c.end());
  out.clear();
  out.reserve(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i + 1u < c.size() && c[i + 1u] == ~c[i]) {
      return false; // tautology
    }
    const lbool v = value(c[i]);
    if (v == lbool::l_true) {
      return false; // already satisfied at level 0
    }
    if (v == lbool::l_undef) {
      out.push_back(c[i]);
    }
  }
  return true;
}

bool solver::add_clause(std::span<const lit> lits)
{
  if (!ok_) {
    return false;
  }
  if (decision_level() != 0u) {
    throw std::logic_error{"add_clause: only at decision level 0"};
  }
  std::vector<lit> out;
  if (!simplify_clause(lits, out)) {
    return true;
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1u) {
    enqueue(out[0], reason_none);
    ok_ = !propagate().valid();
    return ok_;
  }
  if (out.size() == 2u && opt_.implicit_binaries) {
    bin_.add(out[0], out[1], false);
    ++stats_.binary_clauses;
    return true;
  }
  const cref cr = db_.alloc(out, false, 0u);
  clauses_.push_back(cr);
  attach(cr);
  return true;
}

solver::clause_handle solver::add_removable_clause(std::span<const lit> lits)
{
  if (!ok_) {
    return nullptr;
  }
  if (decision_level() != 0u) {
    throw std::logic_error{"add_removable_clause: only at decision level 0"};
  }
  std::vector<lit> out;
  if (!simplify_clause(lits, out)) {
    return nullptr;
  }
  if (out.empty()) {
    ok_ = false;
    return nullptr;
  }
  if (out.size() == 1u) {
    // Unit facts are permanent; the caller retires any auxiliary
    // variable this pins (see aig_encoder::prove_equivalent).
    enqueue(out[0], reason_none);
    ok_ = !propagate().valid();
    return nullptr;
  }
  // Removables always stay watched arena clauses — never the binary
  // graph, where a later retraction could not undo an equivalence the
  // inprocessor already collapsed on.
  const cref cr = db_.alloc(out, false, 0u);
  attach(cr);
  uint32_t slot;
  if (!removable_free_.empty()) {
    slot = removable_free_.back();
    removable_free_.pop_back();
    removable_slots_[slot] = cr;
  } else {
    slot = static_cast<uint32_t>(removable_slots_.size());
    removable_slots_.push_back(cr);
  }
  ++num_removables_;
  return reinterpret_cast<clause_handle>(
      static_cast<std::uintptr_t>(slot) + 1u);
}

void solver::unhook_reasons(cref cr)
{
  const clause_db::clause& c = db_.deref(cr);
  for (const lit l : c) {
    if (reason_[l.variable()] == cr) {
      reason_[l.variable()] = reason_none;
    }
  }
}

void solver::purge_learnts_with(var v)
{
  assert(decision_level() == 0u);
  bool freed_arena = false;
  std::size_t j = 0;
  for (std::size_t i = 0; i < learnt_log_.size(); ++i) {
    const learnt_record rec = learnt_log_[i];
    if (rec.cr == cref_undef) {
      // Implicit learnt binary; the graph may already have dropped it
      // (an earlier purge or an inprocessing rebuild), hence no assert.
      if (rec.a.variable() == v || rec.b.variable() == v) {
        bin_.remove(rec.a, rec.b, true);
        continue;
      }
      learnt_log_[j++] = rec;
      continue;
    }
    const clause_db::clause& c = db_.deref(rec.cr);
    if (c.removed()) {
      continue; // reduce_db already deleted it
    }
    bool mentions = false;
    for (const lit l : c) {
      if (l.variable() == v) {
        mentions = true;
        break;
      }
    }
    if (!mentions) {
      learnt_log_[j++] = rec;
      continue;
    }
    unhook_reasons(rec.cr); // level-0 reasons are never consulted
    detach(rec.cr);
    db_.free_clause(rec.cr);
    freed_arena = true;
  }
  learnt_log_.resize(j);
  if (freed_arena) {
    learnts_.erase(
        std::remove_if(learnts_.begin(), learnts_.end(),
                       [&](cref cr) { return db_.deref(cr).removed(); }),
        learnts_.end());
  }
  check_garbage();
}

void solver::remove_clause(clause_handle h)
{
  if (h == nullptr) {
    return;
  }
  assert(decision_level() == 0u);
  const std::size_t slot = reinterpret_cast<std::uintptr_t>(h) - 1u;
  assert(slot < removable_slots_.size());
  const cref cr = removable_slots_[slot];
  assert(cr != cref_undef);
  // The clause may be the level-0 reason of its implied literal; reasons
  // of level-0 facts are never consulted again, so just unhook the
  // dangling reference.
  unhook_reasons(cr);
  detach(cr);
  db_.free_clause(cr);
  removable_slots_[slot] = cref_undef;
  removable_free_.push_back(static_cast<uint32_t>(slot));
  --num_removables_;
  check_garbage();
}

void solver::attach(cref cr)
{
  const clause_db::clause& c = db_.deref(cr);
  assert(c.size() >= 2u);
  const uint32_t binary = c.size() == 2u ? 1u : 0u;
  watches_[(~c[0]).x].push_back(watcher{cr, c[1], binary});
  watches_[(~c[1]).x].push_back(watcher{cr, c[0], binary});
}

void solver::detach(cref cr)
{
  const clause_db::clause& c = db_.deref(cr);
  for (const lit w : {c[0], c[1]}) {
    auto& list = watches_[(~w).x];
    const auto it =
        std::find_if(list.begin(), list.end(),
                     [cr](const watcher& wa) { return wa.cr == cr; });
    assert(it != list.end());
    list.erase(it);
  }
}

void solver::enqueue(lit l, uint32_t reason)
{
  assert(value(l) == lbool::l_undef);
  const var v = l.variable();
  assigns_[v] = from_bool(!l.sign());
  level_[v] = decision_level();
  reason_[v] = reason;
  trail_.push_back(l);
}

solver::conflict_ref solver::propagate()
{
  conflict_ref conflict;
  while (qhead_ < trail_.size()) {
    const lit p = trail_[qhead_++];
    ++stats_.propagations;
    // Implicit-binary fast path: one adjacency walk, no clause memory.
    for (const binary_graph::edge& e : bin_.implied(p)) {
      const lbool v = value(e.other);
      if (v == lbool::l_false) {
        conflict.binary = true;
        conflict.a = ~p;
        conflict.b = e.other;
        qhead_ = trail_.size();
        return conflict;
      }
      if (v == lbool::l_undef) {
        enqueue(e.other, reason_binary(~p));
      }
    }
    auto& ws = watches_[p.x];
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ws.size()) {
      const watcher w = ws[i];
      if (value(w.blocker) == lbool::l_true) {
        ws[j++] = ws[i++];
        continue;
      }
      if (w.binary) {
        // A binary arena clause is fully described by the watcher: the
        // blocker is the only other literal — no clause memory is
        // touched until a conflict needs it.
        ws[j++] = ws[i++];
        if (value(w.blocker) == lbool::l_false) {
          conflict.cr = w.cr;
          qhead_ = trail_.size();
          while (i < ws.size()) {
            ws[j++] = ws[i++];
          }
        } else {
          enqueue(w.blocker, w.cr);
        }
        continue;
      }
      clause_db::clause& c = db_.deref(w.cr);
      const lit false_lit = ~p;
      if (c[0] == false_lit) {
        std::swap(c[0], c[1]);
      }
      assert(c[1] == false_lit);
      ++i;
      const lit first = c[0];
      if (first != w.blocker && value(first) == lbool::l_true) {
        ws[j++] = watcher{w.cr, first, 0u};
        continue;
      }
      bool found = false;
      for (std::size_t k = 2; k < c.size(); ++k) {
        if (value(c[k]) != lbool::l_false) {
          std::swap(c[1], c[k]);
          watches_[(~c[1]).x].push_back(watcher{w.cr, first, 0u});
          found = true;
          break;
        }
      }
      if (found) {
        continue;
      }
      // Clause is unit or conflicting under the current assignment.
      ws[j++] = watcher{w.cr, first, 0u};
      if (value(first) == lbool::l_false) {
        conflict.cr = w.cr;
        qhead_ = trail_.size();
        while (i < ws.size()) {
          ws[j++] = ws[i++];
        }
      } else {
        enqueue(first, w.cr);
      }
    }
    ws.resize(j);
  }
  return conflict;
}

void solver::analyze(const conflict_ref& conflict, std::vector<lit>& learnt,
                     uint32_t& bt_level)
{
  learnt.clear();
  learnt.push_back(lit{}); // slot for the asserting literal
  uint32_t path_count = 0;
  lit p;
  p.x = undef_lit_x;
  std::size_t index = trail_.size();

  // Current antecedent (the conflict first, then reasons); implicit
  // binaries materialize into bin_lits_.
  const lit* ante_begin;
  const lit* ante_end;
  if (conflict.binary) {
    bin_lits_[0] = conflict.a;
    bin_lits_[1] = conflict.b;
    ante_begin = bin_lits_;
    ante_end = bin_lits_ + 2;
  } else {
    if (db_.deref(conflict.cr).learnt()) {
      bump_clause(conflict.cr);
    }
    const clause_db::clause& c = db_.deref(conflict.cr);
    ante_begin = c.begin();
    ante_end = c.end();
  }

  for (;;) {
    for (const lit* it = ante_begin; it != ante_end; ++it) {
      const lit q = *it;
      if (q.x == p.x) {
        continue;
      }
      const var v = q.variable();
      if (!seen_[v] && level_[v] > 0u) {
        seen_[v] = true;
        bump_var(v);
        if (level_[v] >= decision_level()) {
          ++path_count;
        } else {
          learnt.push_back(q);
        }
      }
    }
    while (!seen_[trail_[index - 1u].variable()]) {
      --index;
    }
    p = trail_[--index];
    seen_[p.variable()] = false;
    --path_count;
    if (path_count == 0u) {
      break;
    }
    const uint32_t r = reason_[p.variable()];
    assert(r != reason_none);
    if (is_binary_reason(r)) {
      bin_lits_[0] = p;
      bin_lits_[1] = binary_reason_other(r);
      ante_begin = bin_lits_;
      ante_end = bin_lits_ + 2;
    } else {
      if (db_.deref(r).learnt()) {
        bump_clause(r);
      }
      const clause_db::clause& c = db_.deref(r);
      ante_begin = c.begin();
      ante_end = c.end();
    }
  }
  learnt[0] = ~p;

  // Conflict-clause minimization (MiniSat's deep check).
  analyze_clear_.assign(learnt.begin() + 1, learnt.end());
  uint32_t abstract = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    abstract |= 1u << (level_[learnt[i].variable()] & 31u);
  }
  std::size_t keep = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (reason_[learnt[i].variable()] == reason_none ||
        !lit_redundant(learnt[i], abstract)) {
      learnt[keep++] = learnt[i];
    }
  }
  learnt.resize(keep);

  // Clear seen flags for kept + removed literals.
  for (const lit l : analyze_clear_) {
    seen_[l.variable()] = false;
  }
  seen_[learnt[0].variable()] = false;

  // Backtrack level: highest level among the non-asserting literals.
  bt_level = 0;
  if (learnt.size() > 1u) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[learnt[i].variable()] > level_[learnt[max_i].variable()]) {
        max_i = i;
      }
    }
    std::swap(learnt[1], learnt[max_i]);
    bt_level = level_[learnt[1].variable()];
  }
}

bool solver::lit_redundant(lit l, uint32_t abstract_levels)
{
  // A literal of the learnt clause is redundant if its reason-DAG closure
  // only reaches literals already in the clause (seen) or level-0 facts.
  // The implied literal of a reason clause is identified by variable (the
  // binary fast paths do not normalize it to index 0).
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  const std::size_t clear_mark = analyze_clear_.size();
  while (!analyze_stack_.empty()) {
    const lit p = analyze_stack_.back();
    analyze_stack_.pop_back();
    const uint32_t r = reason_[p.variable()];
    assert(r != reason_none);
    const lit* qb;
    const lit* qe;
    if (is_binary_reason(r)) {
      bin_lits_[0] = p;
      bin_lits_[1] = binary_reason_other(r);
      qb = bin_lits_;
      qe = bin_lits_ + 2;
    } else {
      const clause_db::clause& c = db_.deref(r);
      qb = c.begin();
      qe = c.end();
    }
    for (const lit* it = qb; it != qe; ++it) {
      const lit q = *it;
      const var v = q.variable();
      if (v == p.variable() || seen_[v] || level_[v] == 0u) {
        continue;
      }
      if (reason_[v] == reason_none ||
          ((1u << (level_[v] & 31u)) & abstract_levels) == 0u) {
        // Not removable: undo the marks added during this check.
        for (std::size_t i = clear_mark; i < analyze_clear_.size(); ++i) {
          seen_[analyze_clear_[i].variable()] = false;
        }
        analyze_clear_.resize(clear_mark);
        return false;
      }
      seen_[v] = true;
      analyze_clear_.push_back(q);
      analyze_stack_.push_back(q);
    }
  }
  return true;
}

void solver::backtrack(uint32_t level)
{
  if (decision_level() <= level) {
    return;
  }
  const std::size_t bound = trail_lim_[level];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const var v = trail_[i].variable();
    if (!preserve_phases_) {
      polarity_[v] = assigns_[v] == lbool::l_false;
    }
    assigns_[v] = lbool::l_undef;
    reason_[v] = reason_none;
    if (decision_[v] && !heap_contains(v)) {
      heap_insert(v);
    }
  }
  trail_.resize(bound);
  trail_lim_.resize(level);
  qhead_ = bound;
}

lit solver::pick_branch()
{
  while (!heap_.empty()) {
    const var v = heap_pop();
    if (assigns_[v] == lbool::l_undef) {
      return lit{v, polarity_[v]};
    }
  }
  lit l;
  l.x = undef_lit_x;
  return l;
}

void solver::set_var_activity(var v, double normalized)
{
  activity_[v] = normalized * var_inc_;
  if (heap_contains(v)) {
    const uint32_t i = heap_pos_[v] - 1u;
    heap_[i].act = activity_[v];
    heap_up(i);
    heap_down(heap_pos_[v] - 1u);
  }
}

void solver::bump_var(var v)
{
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) {
      a *= 1e-100;
    }
    for (heap_entry& e : heap_) {
      e.act *= 1e-100;
    }
    var_inc_ *= 1e-100;
  }
  if (heap_contains(v)) {
    const uint32_t i = heap_pos_[v] - 1u;
    heap_[i].act = activity_[v];
    heap_up(i);
  }
}

void solver::bump_clause(cref cr)
{
  clause_db::clause& c = db_.deref(cr);
  c.set_activity(c.activity() + clause_inc_);
  if (c.activity() > 1e20f) {
    for (const cref l : learnts_) {
      clause_db::clause& lc = db_.deref(l);
      lc.set_activity(lc.activity() * 1e-20f);
    }
    clause_inc_ *= 1e-20f;
  }
}

void solver::decay_var_activity()
{
  var_inc_ /= 0.95;
  clause_inc_ /= 0.999f;
}

uint32_t solver::compute_lbd(std::span<const lit> lits)
{
  // Distinct decision levels among the literals, stamped against a
  // per-call epoch; called before backtracking, while levels are live.
  ++lbd_stamp_;
  uint32_t count = 0;
  for (const lit l : lits) {
    const uint32_t lev = level_[l.variable()];
    if (lbd_mark_[lev] != lbd_stamp_) {
      lbd_mark_[lev] = lbd_stamp_;
      ++count;
    }
  }
  return count;
}

void solver::reduce_db()
{
  // Rank the deletable learnts worst-first by (LBD desc, activity asc)
  // and drop the worse half.  Glue clauses (LBD ≤ 2), binaries, and
  // clauses locked as reasons always survive; the cref tie-break keeps
  // the order fully deterministic.
  const auto locked = [&](cref cr) {
    const clause_db::clause& c = db_.deref(cr);
    return value(c[0]) == lbool::l_true &&
           reason_[c[0].variable()] == cr;
  };
  std::vector<cref> cand;
  cand.reserve(learnts_.size());
  for (const cref cr : learnts_) {
    const clause_db::clause& c = db_.deref(cr);
    if (c.size() > 2u && c.lbd() > 2u && !locked(cr)) {
      cand.push_back(cr);
    }
  }
  std::sort(cand.begin(), cand.end(), [&](cref a, cref b) {
    const clause_db::clause& ca = db_.deref(a);
    const clause_db::clause& cb = db_.deref(b);
    if (ca.lbd() != cb.lbd()) {
      return ca.lbd() > cb.lbd();
    }
    if (ca.activity() != cb.activity()) {
      return ca.activity() < cb.activity();
    }
    return a < b;
  });
  const std::size_t target = cand.size() / 2u;
  for (std::size_t i = 0; i < target; ++i) {
    detach(cand[i]);
    db_.free_clause(cand[i]);
  }
  if (target != 0u) {
    learnts_.erase(
        std::remove_if(learnts_.begin(), learnts_.end(),
                       [&](cref cr) { return db_.deref(cr).removed(); }),
        learnts_.end());
    stats_.learnts_reduced += target;
  }
  check_garbage();
}

void solver::check_garbage()
{
  if (db_.want_gc()) {
    garbage_collect();
  }
}

void solver::garbage_collect()
{
  db_.begin_gc();
  for (auto& ws : watches_) {
    for (watcher& w : ws) {
      db_.reloc(w.cr);
    }
  }
  // Live reasons are exactly the cref reasons of trail variables (freed
  // clauses were unhooked before free).
  for (const lit l : trail_) {
    uint32_t& r = reason_[l.variable()];
    if (r != reason_none && !is_binary_reason(r)) {
      cref cr = r;
      db_.reloc(cr);
      r = cr;
    }
  }
  for (cref& cr : clauses_) {
    db_.reloc(cr);
  }
  for (cref& cr : learnts_) {
    db_.reloc(cr);
  }
  for (cref& cr : removable_slots_) {
    if (cr != cref_undef) {
      db_.reloc(cr);
    }
  }
  // The per-solve learnt log: entries whose clause was deleted are
  // dropped (nothing left to purge), the rest follow their clause.
  std::size_t j = 0;
  for (std::size_t i = 0; i < learnt_log_.size(); ++i) {
    learnt_record rec = learnt_log_[i];
    if (rec.cr != cref_undef) {
      if (db_.deref(rec.cr).removed()) {
        continue;
      }
      db_.reloc(rec.cr);
    }
    learnt_log_[j++] = rec;
  }
  learnt_log_.resize(j);
  db_.end_gc();
}

result solver::solve(std::span<const lit> assumptions,
                     int64_t conflict_budget)
{
  ++stats_.solve_calls;
  model_.clear();
  learnt_log_.clear();
  if (!ok_) {
    return result::unsat;
  }
  if (hooks_ != nullptr && hooks_->should_stop()) {
    // Governed stop before any search: answer unknown without touching
    // the trail.  Checked after ok_ so a database already proven unsat
    // keeps answering unsat.
    return result::unknown;
  }
  backtrack(0u);
  if (propagate().valid()) {
    ok_ = false;
    return result::unsat;
  }

  // Conflicts since the last consume_conflicts report; flushed at every
  // return so the governor's global accounting is exact.  A flush after
  // the answer is found only charges the pool — it never flips the
  // answer.
  uint64_t unreported_conflicts = 0;
  const auto finish = [&](result r) {
    if (hooks_ != nullptr && unreported_conflicts != 0u) {
      hooks_->consume_conflicts(unreported_conflicts);
    }
    return r;
  };

  uint64_t conflicts_this_call = 0;
  uint64_t restart_index = 0;
  uint64_t restart_budget = 100u * luby(restart_index);
  uint64_t conflicts_since_restart = 0;
  std::vector<lit> learnt;

  for (;;) {
    const conflict_ref conflict = propagate();
    if (conflict.valid()) {
      ++stats_.conflicts;
      ++conflicts_this_call;
      ++conflicts_since_restart;
      ++unreported_conflicts;
      if (decision_level() == 0u) {
        ok_ = false;
        return finish(result::unsat);
      }
      uint32_t bt_level = 0;
      analyze(conflict, learnt, bt_level);
      const uint32_t lbd =
          learnt.size() > 1u ? compute_lbd(learnt) : 1u;
      backtrack(bt_level);
      if (learnt.size() == 1u) {
        enqueue(learnt[0], reason_none);
      } else {
        stats_.lbd_sum += lbd;
        ++stats_.learnt_clauses;
        if (learnt.size() == 2u && opt_.implicit_binaries) {
          bin_.add(learnt[0], learnt[1], true);
          ++stats_.binary_clauses;
          learnt_log_.push_back(
              learnt_record{cref_undef, learnt[0], learnt[1]});
          enqueue(learnt[0], reason_binary(learnt[1]));
        } else {
          const cref cr = db_.alloc(learnt, true, lbd);
          learnts_.push_back(cr);
          learnt_log_.push_back(learnt_record{cr, lit{}, lit{}});
          attach(cr);
          bump_clause(cr);
          enqueue(learnt[0], cr);
        }
      }
      decay_var_activity();
      if (hooks_ != nullptr &&
          unreported_conflicts >= resource_check_interval) {
        const bool stop = hooks_->consume_conflicts(unreported_conflicts);
        unreported_conflicts = 0;
        if (stop) {
          backtrack(0u);
          return result::unknown;
        }
      }
      if (conflict_budget >= 0 &&
          conflicts_this_call >= static_cast<uint64_t>(conflict_budget)) {
        backtrack(0u);
        return finish(result::unknown);
      }
    } else {
      if (conflicts_since_restart >= restart_budget) {
        ++stats_.restarts;
        conflicts_since_restart = 0;
        restart_budget = 100u * luby(++restart_index);
        backtrack(0u);
        continue;
      }
      if (opt_.reduce_learnts &&
          static_cast<double>(learnts_.size()) >=
              reduce_limit_ + static_cast<double>(trail_.size())) {
        reduce_db();
        reduce_limit_ += static_cast<double>(opt_.reduce_increment);
      }

      lit next;
      next.x = undef_lit_x;
      while (decision_level() < assumptions.size()) {
        const lit a = assumptions[decision_level()];
        if (value(a) == lbool::l_true) {
          // Already satisfied: open an empty decision level for it.
          trail_lim_.push_back(static_cast<uint32_t>(trail_.size()));
        } else if (value(a) == lbool::l_false) {
          backtrack(0u);
          return finish(result::unsat);
        } else {
          next = a;
          break;
        }
      }
      if (next.x == undef_lit_x) {
        next = pick_branch();
        if (next.x == undef_lit_x) {
          // All variables assigned: model found.
          model_ = assigns_;
          backtrack(0u);
          return finish(result::sat);
        }
        ++stats_.decisions;
      }
      trail_lim_.push_back(static_cast<uint32_t>(trail_.size()));
      enqueue(next, reason_none);
    }
  }
}

bool solver::model_value(var v) const
{
  if (v >= model_.size() || model_[v] == lbool::l_undef) {
    return false;
  }
  return model_[v] == lbool::l_true;
}

void solver::copy_clauses(std::vector<std::vector<lit>>& out,
                          bool include_learnts) const
{
  assert(decision_level() == 0u);
  for (const lit l : trail_) {
    out.push_back({l});
  }
  bin_.for_each_clause([&](lit a, lit b, bool learnt) {
    if (!learnt || include_learnts) {
      out.push_back({a, b});
    }
  });
  for (const cref cr : clauses_) {
    const clause_db::clause& c = db_.deref(cr);
    out.emplace_back(c.begin(), c.end());
  }
  for (const cref cr : removable_slots_) {
    if (cr == cref_undef) {
      continue;
    }
    const clause_db::clause& c = db_.deref(cr);
    out.emplace_back(c.begin(), c.end());
  }
  if (include_learnts) {
    for (const cref cr : learnts_) {
      const clause_db::clause& c = db_.deref(cr);
      out.emplace_back(c.begin(), c.end());
    }
  }
}

void solver::heap_insert(var v)
{
  if (heap_contains(v)) {
    return;
  }
  heap_.push_back(heap_entry{activity_[v], v});
  heap_pos_[v] = static_cast<uint32_t>(heap_.size());
  heap_up(static_cast<uint32_t>(heap_.size() - 1u));
}

bool solver::heap_contains(var v) const
{
  return heap_pos_[v] != 0u;
}

var solver::heap_pop()
{
  const var top = heap_[0].v;
  heap_pos_[top] = 0u;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0].v] = 1u;
    heap_down(0u);
  }
  return top;
}

void solver::heap_up(uint32_t i)
{
  const heap_entry e = heap_[i];
  while (i != 0u) {
    const uint32_t parent = (i - 1u) / 2u;
    if (heap_[parent].act >= e.act) {
      break;
    }
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i].v] = i + 1u;
    i = parent;
  }
  heap_[i] = e;
  heap_pos_[e.v] = i + 1u;
}

void solver::heap_down(uint32_t i)
{
  const heap_entry e = heap_[i];
  const uint32_t size = static_cast<uint32_t>(heap_.size());
  for (;;) {
    uint32_t child = 2u * i + 1u;
    if (child >= size) {
      break;
    }
    if (child + 1u < size && heap_[child + 1u].act > heap_[child].act) {
      ++child;
    }
    if (heap_[child].act <= e.act) {
      break;
    }
    heap_[i] = heap_[child];
    heap_pos_[heap_[i].v] = i + 1u;
    i = child;
  }
  heap_[i] = e;
  heap_pos_[e.v] = i + 1u;
}

} // namespace stps::sat
