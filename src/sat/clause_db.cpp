#include "sat/clause_db.hpp"

#include <algorithm>

namespace stps::sat {

cref clause_db::alloc(std::span<const lit> lits, bool learnt, uint32_t lbd)
{
  const cref cr = static_cast<cref>(mem_.size());
  mem_.resize(mem_.size() + header_words + lits.size());
  clause& c = deref(cr);
  c.header = (static_cast<uint32_t>(lits.size()) << clause::size_shift) |
             (learnt ? clause::flag_learnt : 0u);
  c.set_lbd(lbd);
  c.set_activity(0.0f);
  std::copy(lits.begin(), lits.end(), c.begin());
  return cr;
}

void clause_db::free_clause(cref cr) noexcept
{
  clause& c = deref(cr);
  assert(!c.removed());
  c.header |= clause::flag_removed;
  wasted_ += header_words + c.size();
}

void clause_db::begin_gc()
{
  to_.clear();
  to_.reserve(mem_.size() - wasted_);
}

void clause_db::reloc(cref& cr)
{
  clause& c = deref(cr);
  assert(!c.removed());
  if (c.relocated()) {
    cr = c.lbd_or_forward;
    return;
  }
  const cref moved = static_cast<cref>(to_.size());
  to_.insert(to_.end(), mem_.begin() + cr,
             mem_.begin() + cr + header_words + c.size());
  c.header |= clause::flag_relocated;
  c.lbd_or_forward = moved;
  cr = moved;
}

void clause_db::end_gc()
{
  mem_.swap(to_);
  to_.clear();
  wasted_ = 0;
}

} // namespace stps::sat
