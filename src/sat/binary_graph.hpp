/// \file binary_graph.hpp
/// \brief Implicit two-literal clauses as a binary implication graph.
///
/// A binary clause (a ∨ b) is stored as the two implication edges
/// ¬a → b and ¬b → a instead of a watched arena clause: propagation of
/// a literal walks one adjacency list with no clause memory behind it
/// (the dedicated fast path in solver::propagate), and the graph's
/// strongly connected components are exactly the equivalent-literal
/// classes the inprocessor collapses — SAT sweeping inside the solver.
///
/// Only *permanent* clauses may enter the graph: problem binaries and
/// learnt binaries (implied by the problem alone once the per-query
/// auxiliary definitions are purged).  Removable clauses must stay
/// watched arena clauses — an equivalence baked into the graph cannot
/// be retracted.
#pragma once

#include "sat/types.hpp"

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace stps::sat {

class binary_graph
{
public:
  struct edge
  {
    lit other;        ///< implied literal
    uint32_t learnt;  ///< clause provenance (purge removes learnt only)
  };

  /// Grows the adjacency table to cover \p num_vars variables.
  void ensure_num_vars(uint32_t num_vars)
  {
    if (implications_.size() < 2u * static_cast<std::size_t>(num_vars)) {
      implications_.resize(2u * static_cast<std::size_t>(num_vars));
    }
  }

  /// Adds the clause (a ∨ b) as the edges ¬a → b and ¬b → a.
  void add(lit a, lit b, bool learnt);

  /// Removes one copy of the clause (a ∨ b) with matching provenance;
  /// returns false when no such clause is present (e.g. already removed
  /// by an earlier purge or an inprocessing rebuild).
  bool remove(lit a, lit b, bool learnt);

  /// Literals implied by \p l being true.
  std::span<const edge> implied(lit l) const noexcept
  {
    if (l.x >= implications_.size()) {
      return {};
    }
    const auto& list = implications_[l.x];
    return {list.data(), list.size()};
  }

  /// Drops every clause (inprocessing rebuilds the graph after an
  /// equivalent-literal substitution).  Lifetime counters keep counting.
  void clear();

  uint64_t live_problem() const noexcept { return live_problem_; }
  uint64_t live_learnt() const noexcept { return live_learnt_; }
  /// Binary clauses ever added (lifetime counter — meaningful when
  /// summed across garbage epochs and shards).
  uint64_t lifetime_added() const noexcept { return lifetime_added_; }

  /// Visits each clause (a ∨ b) exactly once as (a, b, learnt), with
  /// a.x < b.x, in deterministic adjacency order.
  template <typename F>
  void for_each_clause(F&& f) const
  {
    for (std::size_t x = 0; x < implications_.size(); ++x) {
      lit source;
      source.x = static_cast<uint32_t>(x);
      const lit a = ~source; // edge source → other encodes (¬source ∨ other)
      for (const edge& e : implications_[x]) {
        if (a.x < e.other.x) {
          f(a, e.other, e.learnt != 0u);
        }
      }
    }
  }

  /// Equivalent-literal classes of the implication graph, restricted to
  /// unassigned variables.
  struct equivalences
  {
    /// (variable, representative literal of its positive phase) pairs,
    /// ascending by variable; the representative variable itself never
    /// appears on the left.
    std::vector<std::pair<var, lit>> mapped;
    /// A variable is equivalent to its own negation — the database is
    /// unsatisfiable.
    bool contradiction = false;
  };

  /// Tarjan SCC over the implication graph (iterative, deterministic).
  /// \p assigns gates participation: edges touching an assigned
  /// variable are ignored (their implications are level-0 facts).
  equivalences compute_equivalences(std::span<const lbool> assigns) const;

private:
  std::vector<std::vector<edge>> implications_; ///< indexed by lit.x
  uint64_t live_problem_ = 0;
  uint64_t live_learnt_ = 0;
  uint64_t lifetime_added_ = 0;
};

} // namespace stps::sat
