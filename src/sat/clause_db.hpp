/// \file clause_db.hpp
/// \brief Arena-backed clause storage for the CDCL solver.
///
/// Clauses live in one contiguous `uint32_t` pool and are referenced by
/// `cref` offsets instead of heap pointers (MiniSat's RegionAllocator
/// lineage): allocation is a bump, deletion marks the slot dead and
/// counts it as waste, and a compacting GC copies the live clauses into
/// a fresh pool once the waste fraction crosses a threshold — leaving a
/// forwarding reference in the old header so every owner (watcher
/// lists, reasons, clause lists, the per-solve learnt log) can be
/// relocated in place.  The header also carries the per-clause LBD
/// ("glue", computed at learn time) and activity that rank learnt
/// clauses for `reduce_db`.
#pragma once

#include "sat/types.hpp"

#include <cassert>
#include <cstring>
#include <span>
#include <vector>

namespace stps::sat {

/// Clause reference: word offset of the clause header in the arena.
using cref = uint32_t;
inline constexpr cref cref_undef = ~cref{0};

class clause_db
{
public:
  /// Clause view over arena memory.  Header layout: word 0 packs the
  /// literal count with the learnt/removed/relocated flags, word 1 is
  /// the LBD (or, after relocation, the forwarding cref), word 2 the
  /// activity bits; the literals follow inline.  Never hold a `clause&`
  /// across an `alloc` (the pool may grow and move).
  struct clause
  {
    uint32_t header = 0;
    uint32_t lbd_or_forward = 0;
    uint32_t activity_bits = 0;

    static constexpr uint32_t flag_learnt = 1u;
    static constexpr uint32_t flag_removed = 2u;
    static constexpr uint32_t flag_relocated = 4u;
    static constexpr uint32_t size_shift = 3u;

    uint32_t size() const noexcept { return header >> size_shift; }
    bool learnt() const noexcept { return (header & flag_learnt) != 0u; }
    bool removed() const noexcept { return (header & flag_removed) != 0u; }
    bool relocated() const noexcept
    {
      return (header & flag_relocated) != 0u;
    }

    uint32_t lbd() const noexcept { return lbd_or_forward; }
    void set_lbd(uint32_t lbd) noexcept { lbd_or_forward = lbd; }

    float activity() const noexcept
    {
      float a;
      std::memcpy(&a, &activity_bits, sizeof(a));
      return a;
    }
    void set_activity(float a) noexcept
    {
      std::memcpy(&activity_bits, &a, sizeof(a));
    }

    lit* begin() noexcept { return reinterpret_cast<lit*>(this + 1); }
    const lit* begin() const noexcept
    {
      return reinterpret_cast<const lit*>(this + 1);
    }
    lit* end() noexcept { return begin() + size(); }
    const lit* end() const noexcept { return begin() + size(); }
    lit& operator[](std::size_t i) noexcept { return begin()[i]; }
    lit operator[](std::size_t i) const noexcept { return begin()[i]; }
  };

  static constexpr uint32_t header_words = 3;

  cref alloc(std::span<const lit> lits, bool learnt, uint32_t lbd);

  clause& deref(cref cr) noexcept
  {
    assert(cr + header_words <= mem_.size());
    return *reinterpret_cast<clause*>(mem_.data() + cr);
  }
  const clause& deref(cref cr) const noexcept
  {
    assert(cr + header_words <= mem_.size());
    return *reinterpret_cast<const clause*>(mem_.data() + cr);
  }

  /// Marks the clause dead.  The owner must have detached it first; the
  /// memory is reclaimed by the next garbage collection.
  void free_clause(cref cr) noexcept;

  /// Accounts the words dropped when a clause shrinks in place
  /// (inprocessing rewrites clauses without moving them).
  void note_shrunk(uint32_t words) noexcept { wasted_ += words; }

  bool want_gc() const noexcept
  {
    return wasted_ != 0u && wasted_ * 5u > mem_.size();
  }

  /// \name Compacting GC
  /// Between `begin_gc` and `end_gc` the owner calls `reloc` on every
  /// live reference it holds; each clause moves on its first visit and
  /// forwards later ones.  References to removed clauses must be
  /// dropped, never relocated.
  /// \{
  void begin_gc();
  void reloc(cref& cr);
  void end_gc();
  /// \}

  std::size_t wasted() const noexcept { return wasted_; }
  std::size_t used_words() const noexcept { return mem_.size(); }

private:
  std::vector<uint32_t> mem_;
  std::vector<uint32_t> to_; ///< GC target pool
  std::size_t wasted_ = 0;
};

} // namespace stps::sat
