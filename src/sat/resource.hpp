/// \file resource.hpp
/// \brief Cooperative resource governance and deterministic fault
/// injection, as seen from the SAT layer.
///
/// The sweeping stack owns the policy (wall-clock deadlines, a global
/// conflict pool, cancellation — sweep/resource_governor.hpp); the SAT
/// layer only needs three narrow capabilities, expressed here as an
/// abstract hook so `sat` never depends on `sweep`:
///
/// * a **query-boundary tick** (`on_query_begin`) — lets a virtual
///   clock advance deterministically per query in tests;
/// * a **stop poll** (`should_stop`) — checked at query entry so no new
///   search starts after a deadline/cancellation, and inside the CDCL
///   loop so an in-flight search winds down with `result::unknown`
///   instead of running to completion;
/// * **conflict accounting** (`consume_conflicts`) — the CDCL loop
///   reports its conflicts every `resource_check_interval`, charging a
///   global pool that spans every query of a sweep (the per-query
///   `conflict_budget` is a separate, local limit).
///
/// All hooks must be cheap and deterministic-friendly: with no governor
/// installed the solver behaves bit-identically to the ungoverned build.
#pragma once

#include <cstdint>

namespace stps::sat {

/// How many conflicts the CDCL loop runs between `consume_conflicts`
/// calls.  Small enough that a deadline or an exhausted global pool
/// interrupts a runaway query promptly, large enough that the check is
/// free next to the conflicts themselves.
inline constexpr uint64_t resource_check_interval = 64;

class resource_hooks
{
public:
  virtual ~resource_hooks() = default;

  /// One SAT query is about to run (equivalence, constant, or guided
  /// pattern query alike).  Virtual-clock governors advance here.
  virtual void on_query_begin() noexcept {}

  /// True when the current work should wind down (deadline expired,
  /// global conflict pool exhausted, or cancellation requested).  The
  /// encoder checks this at query entry and answers `unknown` without
  /// searching; callers observe the same poll at their own boundaries.
  virtual bool should_stop() noexcept { return false; }

  /// \p conflicts CDCL conflicts happened since the last call (the
  /// solver reports every `resource_check_interval` conflicts and
  /// flushes the remainder before returning, so global accounting is
  /// exact).  Returning true aborts the in-flight solve with
  /// `result::unknown`; a flush after the answer is found never aborts.
  virtual bool consume_conflicts(uint64_t conflicts) noexcept
  {
    (void)conflicts;
    return false;
  }
};

/// Deterministic fault-injection schedule for `cnf_manager` (and,
/// through it, both sweepers): every abort path the robustness layer
/// must survive can be forced on purpose, reproducibly, so tests and
/// the differential harness can assert each partial result is sound.
/// All-zero (the default) injects nothing.
struct fault_plan
{
  /// Schedule seed.  0 = the exact periodic schedule (every k-th query
  /// faults); nonzero = a seeded xorshift64 draw per query faulting
  /// with probability 1/k — same expected rate, seed-varied placement.
  uint64_t seed = 0;
  /// Force every (expected) k-th *equivalence* query to answer
  /// `unknown` without searching — the budget-exhausted unDET path.
  /// 0 = off.
  uint32_t unknown_every = 0;
  /// Force a garbage-epoch rebuild at every k-th query entry regardless
  /// of the clause budget.  0 = off.
  uint32_t rebuild_every = 0;
};

} // namespace stps::sat
