#include "sat/encoder.hpp"

#include <stdexcept>

namespace stps::sat {

aig_encoder::aig_encoder(const net::aig_network& aig, solver& s)
    : aig_{aig}, solver_{s}, node_var_(aig.size(), 0u)
{
  const_var_ = solver_.new_var();
  solver_.add_clause({lit{const_var_, true}}); // constant node is false
  node_var_[0] = const_var_ + 1u;
}

lit aig_encoder::literal(net::signal f)
{
  const net::node root = f.get_node();
  if (root >= node_var_.size()) {
    node_var_.resize(aig_.size(), 0u);
  }
  if (node_var_[root] == 0u) {
    // Encode the unencoded part of the cone bottom-up.
    std::vector<net::node> stack{root};
    while (!stack.empty()) {
      const net::node n = stack.back();
      if (node_var_[n] != 0u) {
        stack.pop_back();
        continue;
      }
      if (aig_.is_pi(n)) {
        node_var_[n] = solver_.new_var() + 1u;
        stack.pop_back();
        continue;
      }
      if (!aig_.is_and(n)) {
        throw std::invalid_argument{"aig_encoder: dead or invalid node"};
      }
      const net::signal a = aig_.fanin0(n);
      const net::signal b = aig_.fanin1(n);
      const bool need_a = node_var_[a.get_node()] == 0u;
      const bool need_b = node_var_[b.get_node()] == 0u;
      if (need_a || need_b) {
        if (need_a) {
          stack.push_back(a.get_node());
        }
        if (need_b) {
          stack.push_back(b.get_node());
        }
        continue;
      }
      const var vn = solver_.new_var();
      node_var_[n] = vn + 1u;
      ++encoded_count_;
      const lit ln{vn, false};
      const lit la{node_var_[a.get_node()] - 1u, a.is_complemented()};
      const lit lb{node_var_[b.get_node()] - 1u, b.is_complemented()};
      // n ↔ a ∧ b
      solver_.add_clause({~ln, la});
      solver_.add_clause({~ln, lb});
      solver_.add_clause({ln, ~la, ~lb});
      stack.pop_back();
    }
  }
  return lit{node_var_[root] - 1u, f.is_complemented()};
}

lit aig_encoder::xor_output(lit a, lit b)
{
  const var vt = solver_.new_var();
  const lit t{vt, false};
  // t ↔ a ⊕ b
  solver_.add_clause({~t, a, b});
  solver_.add_clause({~t, ~a, ~b});
  solver_.add_clause({t, ~a, b});
  solver_.add_clause({t, a, ~b});
  return t;
}

result aig_encoder::prove_equivalent(net::signal a, net::signal b,
                                     bool complement, int64_t conflict_budget)
{
  const lit la = literal(a);
  const lit lb = literal(b);
  // a == b  iff  a ⊕ b is unsatisfiable; a == !b iff ¬(a ⊕ b) is.
  const lit t = xor_output(la, lb);
  const lit assumption = complement ? ~t : t;
  return solver_.solve(std::span<const lit>{&assumption, 1u},
                       conflict_budget);
}

result aig_encoder::prove_constant(net::signal f, bool value,
                                   int64_t conflict_budget)
{
  // f == value is a tautology iff f == !value is unsatisfiable.
  const lit lf = literal(f);
  const lit assumption = value ? ~lf : lf;
  return solver_.solve(std::span<const lit>{&assumption, 1u},
                       conflict_budget);
}

std::vector<bool> aig_encoder::model_inputs() const
{
  std::vector<bool> inputs(aig_.num_pis(), false);
  for (uint32_t i = 0; i < aig_.num_pis(); ++i) {
    const net::node pi = aig_.pi_at(i);
    if (node_var_[pi] != 0u) {
      inputs[i] = solver_.model_value(node_var_[pi] - 1u);
    }
  }
  return inputs;
}

std::optional<std::vector<bool>> aig_encoder::find_assignment(
    net::signal f, bool value, int64_t conflict_budget)
{
  const lit lf = literal(f);
  const lit assumption = value ? lf : ~lf;
  const result r =
      solver_.solve(std::span<const lit>{&assumption, 1u}, conflict_budget);
  if (r != result::sat) {
    return std::nullopt;
  }
  return model_inputs();
}

} // namespace stps::sat
