#include "sat/encoder.hpp"

#include "sat/dimacs.hpp"

#include <array>
#include <ostream>
#include <stdexcept>

namespace stps::sat {

namespace {
constexpr var no_fanin = ~var{0};
constexpr net::node no_node = ~net::node{0};
} // namespace

aig_encoder::aig_encoder(const net::aig_network& aig, solver& s, options opt)
    : aig_{aig}, solver_{s}, opt_{opt}, node_var_(aig.size(), 0u)
{
  // The constant node's variable is fixed at level 0 — never branched
  // on, so it is registered as an auxiliary (no phase/activity replay).
  const_var_ = make_var(no_node, no_fanin, no_fanin);
  solver_.add_clause({lit{const_var_, true}}); // constant node is false
  node_var_[0] = const_var_ + 1u;
}

var aig_encoder::make_var(net::node n, var fanin0, var fanin1)
{
  const var v = solver_.new_var();
  var_fanins_.push_back({fanin0, fanin1});
  var_node_.push_back(n);
  scope_mark_.push_back(0u);
  if (n == no_node) {
    return v;
  }
  if (carried_ != nullptr && n < carried_->phase.size() &&
      carried_->phase[n] >= 0) {
    // A garbage epoch dropped this node's old variable; the cone is
    // still live (it is re-encoding), so restore what the previous
    // epoch's search learned about it — fresher than the simulation
    // hint below.
    solver_.set_phase(v, carried_->phase[n] != 0);
    solver_.set_var_activity(v, carried_->activity[n]);
    return v;
  }
  if (phase_hints_) {
    // Encode-time seed: the variable's very first branch is simulation-
    // consistent even after per-query re-seeding has been switched off
    // (phase saving evolves freely from here).
    const int hint = phase_hints_(n);
    if (hint >= 0) {
      solver_.set_phase(v, hint != 0);
      ++phase_seeds_;
    }
  }
  return v;
}

void aig_encoder::snapshot_var_state(var_state_snapshot& out) const
{
  out.phase.assign(aig_.size(), int8_t{-1});
  out.activity.assign(aig_.size(), 0.0f);
  for (net::node n = 0; n < node_var_.size(); ++n) {
    if (node_var_[n] == 0u || n >= out.phase.size()) {
      continue;
    }
    const var v = node_var_[n] - 1u;
    out.phase[n] = solver_.saved_phase(v) ? int8_t{1} : int8_t{0};
    out.activity[n] = static_cast<float>(solver_.normalized_activity(v));
  }
}

lit aig_encoder::literal(net::signal f)
{
  const net::node root = f.get_node();
  if (root >= node_var_.size()) {
    node_var_.resize(aig_.size(), 0u);
  }
  if (node_var_[root] == 0u) {
    // Encode the unencoded part of the cone bottom-up.
    std::vector<net::node> stack{root};
    while (!stack.empty()) {
      const net::node n = stack.back();
      if (node_var_[n] != 0u) {
        stack.pop_back();
        continue;
      }
      if (aig_.is_pi(n)) {
        node_var_[n] = make_var(n, no_fanin, no_fanin) + 1u;
        stack.pop_back();
        continue;
      }
      if (!aig_.is_and(n)) {
        throw std::invalid_argument{"aig_encoder: dead or invalid node"};
      }
      const net::signal a = aig_.fanin0(n);
      const net::signal b = aig_.fanin1(n);
      const bool need_a = node_var_[a.get_node()] == 0u;
      const bool need_b = node_var_[b.get_node()] == 0u;
      if (need_a || need_b) {
        if (need_a) {
          stack.push_back(a.get_node());
        }
        if (need_b) {
          stack.push_back(b.get_node());
        }
        continue;
      }
      const var vn = make_var(n, node_var_[a.get_node()] - 1u,
                              node_var_[b.get_node()] - 1u);
      node_var_[n] = vn + 1u;
      ++encoded_count_;
      const lit ln{vn, false};
      const lit la{node_var_[a.get_node()] - 1u, a.is_complemented()};
      const lit lb{node_var_[b.get_node()] - 1u, b.is_complemented()};
      // n ↔ a ∧ b
      solver_.add_clause({~ln, la});
      solver_.add_clause({~ln, lb});
      solver_.add_clause({ln, ~la, ~lb});
      stack.pop_back();
    }
  }
  return lit{node_var_[root] - 1u, f.is_complemented()};
}

void aig_encoder::scope_query(std::span<const lit> roots, var extra)
{
  const bool reseed = phase_hints_ != nullptr && reseed_phases_;
  if (!opt_.cone_scoped_decisions && !reseed) {
    return; // nothing to do per query — no closure pass to pay for
  }
  ++scope_epoch_;
  scope_vars_.clear();
  for (const lit r : roots) {
    const var v = r.variable();
    if (scope_mark_[v] != scope_epoch_) {
      scope_mark_[v] = scope_epoch_;
      scope_vars_.push_back(v);
    }
  }
  // var_fanins_ is topologically ordered (antecedents precede their
  // gate), so the worklist never revisits a variable.
  for (std::size_t i = 0; i < scope_vars_.size(); ++i) {
    for (const var f : var_fanins_[scope_vars_[i]]) {
      if (f != no_fanin && scope_mark_[f] != scope_epoch_) {
        scope_mark_[f] = scope_epoch_;
        scope_vars_.push_back(f);
      }
    }
  }
  if (reseed) {
    // Re-seed every cone variable's saved polarity: together the seeds
    // form one simulation-consistent assignment, and an UNSAT-bound
    // search (the overwhelmingly common case while re-seeding is live —
    // see cnf_manager's adaptive switch) refutes it far faster than the
    // phases left over from unrelated earlier cones.
    for (const var v : scope_vars_) {
      const net::node n = var_node_[v];
      if (n == no_node) {
        continue;
      }
      const int hint = phase_hints_(n);
      if (hint >= 0) {
        solver_.set_phase(v, hint != 0);
        ++phase_seeds_;
      }
    }
  }
  if (opt_.cone_scoped_decisions) {
    if (extra != no_fanin) {
      scope_vars_.push_back(extra);
    }
    solver_.set_decision_vars(scope_vars_);
  }
}

result aig_encoder::prove_equivalent(net::signal a, net::signal b,
                                     bool complement, int64_t conflict_budget)
{
  if (governed_stop_at_query()) {
    return result::unknown;
  }
  const lit la = literal(a);
  const lit lb = literal(b);
  // a == b  iff  a ⊕ b is unsatisfiable; a == !b iff ¬(a ⊕ b) is.  The
  // XOR output variable is reused across queries and its defining
  // clauses are retracted afterwards.
  if (xor_var_ == 0u) {
    xor_var_ = make_var(no_node, no_fanin, no_fanin) + 1u;
  }
  const lit t{xor_var_ - 1u, false};
  const lit roots[2] = {la, lb};
  scope_query(roots, xor_var_ - 1u);
  // t ↔ la ⊕ lb
  const lit c1[3] = {~t, la, lb};
  const lit c2[3] = {~t, ~la, ~lb};
  const lit c3[3] = {t, ~la, lb};
  const lit c4[3] = {t, la, ~lb};
  solver::clause_handle handles[4] = {
      solver_.add_removable_clause(c1), solver_.add_removable_clause(c2),
      solver_.add_removable_clause(c3), solver_.add_removable_clause(c4)};
  const lit assumption = complement ? ~t : t;
  const result r = solver_.solve(std::span<const lit>{&assumption, 1u},
                                 conflict_budget);
  for (const solver::clause_handle h : handles) {
    solver_.remove_clause(h);
  }
  solver_.purge_learnts_with(xor_var_ - 1u);
  if (solver_.fixed_value(xor_var_ - 1u) != lbool::l_undef) {
    xor_var_ = 0u; // pinned at level 0 — retire, next query gets a fresh var
  }
  return r;
}

result aig_encoder::prove_constant(net::signal f, bool value,
                                   int64_t conflict_budget)
{
  if (governed_stop_at_query()) {
    return result::unknown;
  }
  // f == value is a tautology iff f == !value is unsatisfiable.
  const lit lf = literal(f);
  scope_query(std::span<const lit>{&lf, 1u}, no_fanin);
  const lit assumption = value ? ~lf : lf;
  return solver_.solve(std::span<const lit>{&assumption, 1u},
                       conflict_budget);
}

std::vector<bool> aig_encoder::model_inputs() const
{
  std::vector<bool> inputs(aig_.num_pis(), false);
  for (uint32_t i = 0; i < aig_.num_pis(); ++i) {
    const net::node pi = aig_.pi_at(i);
    if (node_var_[pi] != 0u) {
      inputs[i] = solver_.model_value(node_var_[pi] - 1u);
    }
  }
  return inputs;
}

void aig_encoder::export_equivalence_query(std::ostream& os, net::signal a,
                                           net::signal b, bool complement)
{
  const lit la = literal(a);
  const lit lb = literal(b);
  // Virtual miter variable: one past the solver's range, so the export
  // allocates nothing and retracts nothing.
  const lit t{solver_.num_vars(), false};
  std::vector<std::vector<lit>> clauses;
  solver_.copy_clauses(clauses, /*include_learnts=*/false);
  clauses.push_back({~t, la, lb});
  clauses.push_back({~t, ~la, ~lb});
  clauses.push_back({t, ~la, lb});
  clauses.push_back({t, la, ~lb});
  clauses.push_back({complement ? ~t : t});
  os << "c equivalence query: unsat = proven equivalent\n"
     << "c last clause is the query assumption\n";
  write_dimacs(os, solver_.num_vars() + 1u, clauses);
}

std::optional<std::vector<bool>> aig_encoder::find_assignment(
    net::signal f, bool value, int64_t conflict_budget)
{
  if (governed_stop_at_query()) {
    return std::nullopt;
  }
  const lit lf = literal(f);
  scope_query(std::span<const lit>{&lf, 1u}, no_fanin);
  const lit assumption = value ? lf : ~lf;
  const result r =
      solver_.solve(std::span<const lit>{&assumption, 1u},
                    conflict_budget);
  if (r != result::sat) {
    return std::nullopt;
  }
  return model_inputs();
}

} // namespace stps::sat
