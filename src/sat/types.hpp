/// \file types.hpp
/// \brief Literals, variables, and ternary values for the CDCL solver.
#pragma once

#include <cstdint>

namespace stps::sat {

using var = uint32_t;

/// Literal: variable with sign, encoded 2v (positive) / 2v+1 (negative).
struct lit
{
  uint32_t x = 0;

  lit() = default;
  constexpr lit(var v, bool negative) noexcept
      : x{(v << 1u) | (negative ? 1u : 0u)}
  {
  }

  constexpr var variable() const noexcept { return x >> 1u; }
  constexpr bool sign() const noexcept { return x & 1u; } ///< true = negated
  constexpr lit operator~() const noexcept
  {
    lit l;
    l.x = x ^ 1u;
    return l;
  }
  constexpr bool operator==(const lit&) const noexcept = default;
  constexpr bool operator<(const lit& o) const noexcept { return x < o.x; }
};

/// Ternary assignment value.
enum class lbool : uint8_t
{
  l_false = 0,
  l_true = 1,
  l_undef = 2
};

constexpr lbool from_bool(bool b) noexcept
{
  return b ? lbool::l_true : lbool::l_false;
}

constexpr lbool operator^(lbool v, bool flip) noexcept
{
  if (v == lbool::l_undef) {
    return v;
  }
  return from_bool((v == lbool::l_true) != flip);
}

/// Outcome of a solve call; `unknown` is the paper's `unDET` (conflict
/// budget exhausted, Alg. 2 lines 19-21).
enum class result : uint8_t
{
  unsat = 0,
  sat = 1,
  unknown = 2
};

} // namespace stps::sat
