/// \file inprocess.hpp
/// \brief Between-query clause-database simplification.
///
/// The sweeping loop issues thousands of incremental queries against one
/// long-lived solver, so the clause database accretes structure worth
/// simplifying *between* queries (never inside solve()):
///
///   1. **Equivalent-literal collapsing** — SCCs of the binary
///      implication graph are literal equivalence classes; every clause
///      is rewritten onto class representatives.  The defining
///      equivalence binaries (¬v ∨ r), (v ∨ ¬r) are kept, so an
///      eliminated variable still propagates from its representative —
///      which keeps cone-scoped decision restriction sound (the encoded
///      support closure still pins every eliminated variable).
///   2. **Backward subsumption** — signature-filtered, budgeted.  A
///      problem clause may only be deleted by a problem subsumer: a
///      learnt subsumer can itself be reduced away later, which would
///      leave the database weaker than the problem.
///   3. **Bounded vivification** — re-propagates each clause's negation
///      literal by literal (clause detached, no learning) and keeps the
///      shortened suffix when propagation closes early.  Phase saving is
///      suspended so the probing does not clobber seeded polarities.
///
/// Invoked by cnf_manager at query boundaries (decision level 0, no
/// removable clauses attached) under the session resource hooks.
#pragma once

#include "sat/resource.hpp"

#include <cstdint>

namespace stps::sat {

class solver;

class inprocessor
{
public:
  struct limits
  {
    /// Pairwise subsumption candidate checks before the phase stops.
    uint64_t subsumption_checks = 200'000;
    /// Propagation steps the vivification pass may spend.
    uint64_t vivify_propagations = 50'000;
    /// Clauses longer than this are not vivified.
    uint32_t vivify_max_size = 24;
  };

  struct outcome
  {
    uint64_t lits_collapsed = 0;   ///< variables eliminated onto reps
    uint64_t clauses_subsumed = 0; ///< clauses deleted by subsumption
    uint64_t clauses_strengthened = 0; ///< clauses shortened by vivification
    bool unsat = false; ///< simplification proved the database unsat
  };

  /// Runs all phases on \p s (which must sit at decision level 0 with no
  /// removable clauses attached).  \p hooks, when non-null, is polled
  /// between phases and inside the budgeted loops; a stop request ends
  /// inprocessing early with whatever was already (soundly) applied.
  /// Accumulates into the solver's policy counters and returns the
  /// per-run outcome.
  static outcome run(solver& s, const limits& lim, resource_hooks* hooks);

private:
  /// Phase 1; returns false when the database became unsat.
  static bool collapse(solver& s, outcome& out);
  /// Phase 2 (never derives unsat — it only deletes implied clauses).
  static void subsume(solver& s, const limits& lim, resource_hooks* hooks,
                      outcome& out);
  /// Phase 3; returns false when the database became unsat.
  static bool vivify(solver& s, const limits& lim, resource_hooks* hooks,
                     outcome& out);
};

} // namespace stps::sat
