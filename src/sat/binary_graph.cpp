#include "sat/binary_graph.hpp"

#include <algorithm>
#include <cassert>

namespace stps::sat {

void binary_graph::add(lit a, lit b, bool learnt)
{
  assert(a.variable() != b.variable());
  const uint32_t flag = learnt ? 1u : 0u;
  ensure_num_vars(std::max(a.variable(), b.variable()) + 1u);
  implications_[(~a).x].push_back(edge{b, flag});
  implications_[(~b).x].push_back(edge{a, flag});
  ++lifetime_added_;
  if (learnt) {
    ++live_learnt_;
  } else {
    ++live_problem_;
  }
}

bool binary_graph::remove(lit a, lit b, bool learnt)
{
  if ((~a).x >= implications_.size() || (~b).x >= implications_.size()) {
    return false;
  }
  const uint32_t flag = learnt ? 1u : 0u;
  auto erase_edge = [this, flag](lit source, lit implied) {
    auto& list = implications_[source.x];
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].other == implied && list[i].learnt == flag) {
        list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  };
  if (!erase_edge(~a, b)) {
    return false;
  }
  const bool mirrored = erase_edge(~b, a);
  assert(mirrored);
  (void)mirrored;
  if (learnt) {
    --live_learnt_;
  } else {
    --live_problem_;
  }
  return true;
}

void binary_graph::clear()
{
  for (auto& list : implications_) {
    list.clear();
  }
  live_problem_ = 0;
  live_learnt_ = 0;
}

binary_graph::equivalences binary_graph::compute_equivalences(
    std::span<const lbool> assigns) const
{
  equivalences out;
  const uint32_t n = static_cast<uint32_t>(implications_.size());
  constexpr uint32_t none = ~uint32_t{0};

  const auto active = [&](uint32_t x) {
    const var v = x >> 1u;
    return v < assigns.size() && assigns[v] == lbool::l_undef;
  };

  std::vector<uint32_t> index(n, none);
  std::vector<uint32_t> lowlink(n, 0u);
  std::vector<uint8_t> on_stack(n, 0u);
  std::vector<uint32_t> scc_stack;
  struct frame
  {
    uint32_t x;
    uint32_t edge_i;
  };
  std::vector<frame> frames;
  std::vector<uint32_t> members;
  uint32_t next_index = 0;

  for (uint32_t root = 0; root < n; ++root) {
    if (!active(root) || index[root] != none ||
        implications_[root].empty()) {
      continue;
    }
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = 1u;
    frames.push_back(frame{root, 0u});
    while (!frames.empty()) {
      frame& f = frames.back();
      const auto& edges = implications_[f.x];
      if (f.edge_i < edges.size()) {
        const uint32_t y = edges[f.edge_i++].other.x;
        if (!active(y)) {
          continue;
        }
        if (index[y] == none) {
          index[y] = lowlink[y] = next_index++;
          scc_stack.push_back(y);
          on_stack[y] = 1u;
          frames.push_back(frame{y, 0u});
        } else if (on_stack[y] != 0u) {
          lowlink[f.x] = std::min(lowlink[f.x], index[y]);
        }
        continue;
      }
      const uint32_t x = f.x;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().x] = std::min(lowlink[frames.back().x],
                                            lowlink[x]);
      }
      if (lowlink[x] != index[x]) {
        continue;
      }
      members.clear();
      for (;;) {
        const uint32_t y = scc_stack.back();
        scc_stack.pop_back();
        on_stack[y] = 0u;
        members.push_back(y);
        if (y == x) {
          break;
        }
      }
      if (members.size() < 2u) {
        continue;
      }
      const uint32_t rep_x = *std::min_element(members.begin(),
                                               members.end());
      if ((rep_x & 1u) != 0u) {
        continue; // mirror component — handled via the positive phase
      }
      // Both phases of one variable in a single component means
      // v ≡ ¬v: unsatisfiable.
      std::sort(members.begin(), members.end());
      for (std::size_t i = 0; i + 1u < members.size(); ++i) {
        if ((members[i] >> 1u) == (members[i + 1u] >> 1u)) {
          out.contradiction = true;
          return out;
        }
      }
      lit rep;
      rep.x = rep_x;
      for (const uint32_t mx : members) {
        if (mx == rep_x) {
          continue;
        }
        lit m;
        m.x = mx;
        // m ≡ rep, so the positive phase of m's variable maps to rep
        // complemented by m's sign.
        out.mapped.emplace_back(m.variable(), m.sign() ? ~rep : rep);
      }
    }
  }
  std::sort(out.mapped.begin(), out.mapped.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

} // namespace stps::sat
