/// \file cnf_manager.hpp
/// \brief Lifetime and garbage policy for the sweepers' incremental CNF.
///
/// Both sweepers pose thousands of equivalence/constant queries against
/// one circuit.  The cone-reuse win comes from keeping *one* persistent
/// solver with a gate→literal cache (aig_encoder): a query encodes only
/// the not-yet-encoded part of its union cone, and cached clauses plus
/// learnt clauses survive across queries.  Left unchecked, however, the
/// clause database grows monotonically — encoded cones of long-dead
/// candidates and stale learnt clauses slow every later propagation and
/// pin memory for the whole sweep, which is what breaks ≥ 1M-gate
/// instances.
///
/// The manager owns the solver + encoder pair and adds the two policies
/// the raw encoder cannot express:
///
/// * **Garbage epochs** — when problem + learnt clauses exceed
///   `clause_budget`, the pair is torn down and rebuilt empty (a new
///   epoch); cones re-encode lazily on the queries that actually still
///   need them, so the rebuilt database contains only live work.  The
///   check runs at query *entry*, never between a `sat` answer and its
///   `model_inputs()` read.
/// * **The non-incremental ablation** — `incremental = false` rebuilds
///   before *every* query, i.e. each query re-encodes its whole union
///   cone from scratch into a fresh solver.  This is the baseline the
///   `sat_nodes_encoded` counter is measured against; results are
///   bit-identical (the differential harness pins this), only the encode
///   work and runtime differ.
#pragma once

#include "network/aig.hpp"
#include "sat/encoder.hpp"
#include "sat/resource.hpp"
#include "sat/solver.hpp"

#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

namespace stps::sat {

class cnf_manager
{
public:
  struct params
  {
    /// false = fresh solver + encoder per query (ablation baseline).
    bool incremental = true;
    /// Rebuild the solver when problem + learnt clauses exceed this
    /// (checked at query entry); 0 = never rebuild.
    uint64_t clause_budget = 0;
    /// Cone-aware query scoping (aig_encoder::options): decisions and
    /// thereby conflict-driven activity bumps are restricted to each
    /// query's union cone, and saved phases + normalized activities
    /// survive garbage epochs for cones that re-encode (the snapshot is
    /// taken at teardown and replayed as nodes re-encode; per-query
    /// scratch rebuilds of the non-incremental ablation stay cold —
    /// they are the baseline the carry-over is measured against).
    /// false = unrestricted decisions, cold rebuilds.
    bool cone_scoped_decisions = true;
    /// Adaptive per-query phase re-seeding (active only while phase
    /// hints are installed, and only for *equivalence* queries —
    /// guided pattern-generation queries are exempt: their satisfiable
    /// models become simulation patterns, so their diversity is the
    /// whole point and their outcomes are intentional).  Re-seeding
    /// every equivalence query's cone from the signature hints makes
    /// UNSAT-bound searches drastically cheaper (arithmetic instances:
    /// nearly every query is a proof — mult96r's SAT time drops ~10×),
    /// but it also biases every satisfiable model toward the seed
    /// pattern — and on deep-random logic the near-duplicate
    /// counter-examples refine so little that the sweep pays *more*
    /// satisfiable calls than the cheaper searches save.  The two
    /// regimes announce themselves: once at least
    /// `phase_reseed_warmup` equivalence queries ran and the measured
    /// satisfiable fraction exceeds this many per mille, re-seeding
    /// switches off for the rest of the sweep (encode-time seeds keep
    /// applying).  0 = never re-seed per query.
    uint32_t phase_reseed_sat_per_mille = 125;
    uint64_t phase_reseed_warmup = 64;
    /// Glue/activity-ranked learnt-clause reduction inside the solver
    /// (solver_options::reduce_learnts).  Off = learnt clauses only
    /// leave the database via purges and garbage epochs — the
    /// epoch-only baseline the `sat_clauses_peak` delta is measured
    /// against.
    bool sat_reduce_learnts = true;
    /// Between-query inprocessing (sat/inprocess.hpp): equivalent-
    /// literal collapsing over the binary implication graph, budgeted
    /// backward subsumption, and bounded vivification, run at query
    /// entry (decision level 0, no removable clauses attached) every
    /// `inprocess_interval` queries once the database holds at least
    /// `inprocess_min_clauses` clauses.  The schedule counts query
    /// entries per epoch (the tick resets on rebuild — a fresh database
    /// has nothing to simplify), so it is deterministic: no wall-clock
    /// gating.  false = never inprocess.
    bool inprocess = true;
    uint64_t inprocess_interval = 2048;
    uint64_t inprocess_min_clauses = 4096;
    /// Cooperative resource governance (sweep::resource_governor
    /// implements the interface): forwarded to the encoder + solver of
    /// every epoch, so deadlines/budgets/cancellation survive garbage
    /// rebuilds.  Non-owning; must outlive the manager.  Null =
    /// ungoverned (bit-identical to the pre-governor build).
    resource_hooks* hooks = nullptr;
    /// Deterministic fault injection (sat/resource.hpp); all-zero = off.
    fault_plan faults{};
  };

  /// \p aig must outlive the manager (the encoder keeps a reference).
  cnf_manager(const net::aig_network& aig, params p);
  explicit cnf_manager(const net::aig_network& aig)
      : cnf_manager(aig, params{})
  {
  }

  /// \name Query interface (see aig_encoder for semantics)
  /// \{
  result prove_equivalent(net::signal a, net::signal b, bool complement,
                          int64_t conflict_budget);
  result prove_constant(net::signal f, bool value, int64_t conflict_budget);
  std::optional<std::vector<bool>> find_assignment(net::signal f, bool value,
                                                   int64_t conflict_budget);
  /// PI assignment of the last `sat` answer.  Valid until the next
  /// query (a rebuild can only happen at query entry).
  std::vector<bool> model_inputs() const;
  /// Writes the equivalence query as a standalone DIMACS instance
  /// (aig_encoder::export_equivalence_query) against the *current*
  /// epoch's database — no rebuild policy is applied, so the export
  /// reflects exactly what a query posed now would solve against.
  void export_equivalence_query(std::ostream& os, net::signal a,
                                net::signal b, bool complement);
  /// \}

  /// \name Encode-work counters (aggregated across epochs)
  /// \{
  /// AND nodes Tseitin-encoded over the manager's lifetime; with
  /// incremental CNF each live node is encoded ~once per epoch, without
  /// it every query re-encodes its union cone.
  uint64_t nodes_encoded() const noexcept
  {
    return nodes_encoded_retired_ + encoder_->num_encoded_nodes();
  }
  /// Solver teardowns (garbage epochs + non-incremental per-query
  /// rebuilds).
  uint64_t rebuilds() const noexcept { return rebuilds_; }
  /// Largest problem + learnt clause count observed at a query entry —
  /// with a finite `clause_budget` this is (budget + one query's cone)
  /// bounded, without one it grows with the sweep.
  uint64_t clauses_peak() const noexcept { return clauses_peak_; }
  /// Cone-variable phases seeded from signature hints, all epochs.
  uint64_t phase_seeds() const noexcept
  {
    return phase_seeds_retired_ + encoder_->phase_seeds();
  }
  /// \}

  /// Installs (or clears, with nullptr) the per-node branching-phase
  /// provider (aig_encoder::set_phase_hints); re-installed automatically
  /// on every rebuild, so hints survive garbage epochs.  The provider
  /// must outlive the manager or be cleared before its captures die.
  void set_phase_hints(aig_encoder::phase_hint_fn hints);

  /// Solver search counters *accumulated across every rebuild* — garbage
  /// epochs and per-query scratch teardowns retire the live solver's
  /// stats into a running sum, so decisions/conflicts/restarts count the
  /// whole sweep, never just the current epoch.
  solver_stats solver_statistics() const noexcept;

  /// True while per-query phase re-seeding is still live (diagnostic;
  /// meaningful only when phase hints are installed).
  bool phase_reseed_live() const noexcept { return reseed_on_; }

private:
  /// Applies the rebuild policy (including `fault_plan::rebuild_every`);
  /// called at every query entry.
  void begin_query();
  /// Runs the inprocessing schedule (see params); called at the end of
  /// begin_query, i.e. always at decision level 0 with no removable
  /// clauses attached and never between a `sat` answer and its
  /// `model_inputs()` read.
  void maybe_inprocess();
  /// Feeds the adaptive re-seeding switch with a query's outcome.
  void note_answer(bool satisfiable);
  /// True when `fault_plan::unknown_every` forces this equivalence
  /// query to answer `unknown` without searching.
  bool fault_unknown_now();

  const net::aig_network& aig_;
  params params_;
  std::unique_ptr<solver> solver_;
  std::unique_ptr<aig_encoder> encoder_;
  aig_encoder::phase_hint_fn phase_hints_;
  /// Learned phase/activity carried across garbage epochs (see params).
  aig_encoder::var_state_snapshot carried_;
  bool have_carried_ = false;
  bool used_ = false; ///< a query ran in the current epoch
  bool reseed_on_ = true;     ///< adaptive per-query re-seeding state
  uint64_t queries_seen_ = 0; ///< answers observed (all epochs)
  uint64_t sat_seen_ = 0;     ///< satisfiable answers observed
  uint64_t nodes_encoded_retired_ = 0;
  uint64_t phase_seeds_retired_ = 0;
  uint64_t rebuilds_ = 0;
  uint64_t clauses_peak_ = 0;
  uint64_t inprocess_tick_ = 0; ///< query entries this epoch (schedule)
  uint64_t fault_queries_ = 0;       ///< query entries (fault schedule)
  uint64_t fault_equiv_queries_ = 0; ///< equivalence queries (ditto)
  uint64_t fault_rng_ = 0;           ///< xorshift64 state (seeded plans)
  solver_stats stats_retired_; ///< stats of torn-down solvers, summed
};

} // namespace stps::sat
