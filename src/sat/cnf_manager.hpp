/// \file cnf_manager.hpp
/// \brief Lifetime and garbage policy for the sweepers' incremental CNF.
///
/// Both sweepers pose thousands of equivalence/constant queries against
/// one circuit.  The cone-reuse win comes from keeping *one* persistent
/// solver with a gate→literal cache (aig_encoder): a query encodes only
/// the not-yet-encoded part of its union cone, and cached clauses plus
/// learnt clauses survive across queries.  Left unchecked, however, the
/// clause database grows monotonically — encoded cones of long-dead
/// candidates and stale learnt clauses slow every later propagation and
/// pin memory for the whole sweep, which is what breaks ≥ 1M-gate
/// instances.
///
/// The manager owns the solver + encoder pair and adds the two policies
/// the raw encoder cannot express:
///
/// * **Garbage epochs** — when problem + learnt clauses exceed
///   `clause_budget`, the pair is torn down and rebuilt empty (a new
///   epoch); cones re-encode lazily on the queries that actually still
///   need them, so the rebuilt database contains only live work.  The
///   check runs at query *entry*, never between a `sat` answer and its
///   `model_inputs()` read.
/// * **The non-incremental ablation** — `incremental = false` rebuilds
///   before *every* query, i.e. each query re-encodes its whole union
///   cone from scratch into a fresh solver.  This is the baseline the
///   `sat_nodes_encoded` counter is measured against; results are
///   bit-identical (the differential harness pins this), only the encode
///   work and runtime differ.
#pragma once

#include "network/aig.hpp"
#include "sat/encoder.hpp"
#include "sat/solver.hpp"

#include <memory>
#include <optional>
#include <vector>

namespace stps::sat {

class cnf_manager
{
public:
  struct params
  {
    /// false = fresh solver + encoder per query (ablation baseline).
    bool incremental = true;
    /// Rebuild the solver when problem + learnt clauses exceed this
    /// (checked at query entry); 0 = never rebuild.
    uint64_t clause_budget = 0;
  };

  /// \p aig must outlive the manager (the encoder keeps a reference).
  cnf_manager(const net::aig_network& aig, params p);
  explicit cnf_manager(const net::aig_network& aig)
      : cnf_manager(aig, params{})
  {
  }

  /// \name Query interface (see aig_encoder for semantics)
  /// \{
  result prove_equivalent(net::signal a, net::signal b, bool complement,
                          int64_t conflict_budget);
  result prove_constant(net::signal f, bool value, int64_t conflict_budget);
  std::optional<std::vector<bool>> find_assignment(net::signal f, bool value,
                                                   int64_t conflict_budget);
  /// PI assignment of the last `sat` answer.  Valid until the next
  /// query (a rebuild can only happen at query entry).
  std::vector<bool> model_inputs() const;
  /// \}

  /// \name Encode-work counters (aggregated across epochs)
  /// \{
  /// AND nodes Tseitin-encoded over the manager's lifetime; with
  /// incremental CNF each live node is encoded ~once per epoch, without
  /// it every query re-encodes its union cone.
  uint64_t nodes_encoded() const noexcept
  {
    return nodes_encoded_retired_ + encoder_->num_encoded_nodes();
  }
  /// Solver teardowns (garbage epochs + non-incremental per-query
  /// rebuilds).
  uint64_t rebuilds() const noexcept { return rebuilds_; }
  /// Largest problem + learnt clause count observed at a query entry —
  /// with a finite `clause_budget` this is (budget + one query's cone)
  /// bounded, without one it grows with the sweep.
  uint64_t clauses_peak() const noexcept { return clauses_peak_; }
  /// \}

  const solver_stats& solver_statistics() const noexcept
  {
    return solver_->stats();
  }

private:
  /// Applies the rebuild policy; called at every query entry.
  void begin_query();

  const net::aig_network& aig_;
  params params_;
  std::unique_ptr<solver> solver_;
  std::unique_ptr<aig_encoder> encoder_;
  bool used_ = false; ///< a query ran in the current epoch
  uint64_t nodes_encoded_retired_ = 0;
  uint64_t rebuilds_ = 0;
  uint64_t clauses_peak_ = 0;
};

} // namespace stps::sat
