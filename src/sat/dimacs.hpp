/// \file dimacs.hpp
/// \brief DIMACS CNF import/export for the CDCL solver.
///
/// Lets the solver exchange problems with external tools (minisat,
/// kissat) and lets tests replay standard instances.  `load_dimacs`
/// creates solver variables on demand and returns the clause count.
#pragma once

#include "sat/solver.hpp"

#include <iosfwd>
#include <vector>

namespace stps::sat {

/// Parses DIMACS CNF from \p is into \p s; returns clauses added.
/// Variables are mapped 1-based DIMACS → 0-based solver ids, extending
/// the solver as needed.
std::size_t load_dimacs(std::istream& is, solver& s);

/// Writes \p clauses (solver literal encoding) as DIMACS CNF.
void write_dimacs(std::ostream& os, uint32_t num_vars,
                  const std::vector<std::vector<lit>>& clauses);

} // namespace stps::sat
