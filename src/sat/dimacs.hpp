/// \file dimacs.hpp
/// \brief DIMACS CNF import/export and query replay for the CDCL solver.
///
/// Lets the solver exchange problems with external tools (minisat,
/// kissat) and lets tests replay standard instances.  `load_dimacs`
/// creates solver variables on demand and returns the clause count.
///
/// `export_dimacs` snapshots a live solver's clause database — plus the
/// assumptions of the query of interest as trailing unit clauses — so
/// any cone query the sweep ever poses can be written out, replayed
/// standalone with `replay_dimacs`, and minimized with external
/// delta-debugging tools.  Assumption units are commented in the header
/// so a reader can tell query context from problem clauses.
#pragma once

#include "sat/solver.hpp"
#include "sat/types.hpp"

#include <iosfwd>
#include <vector>

namespace stps::sat {

/// Parses DIMACS CNF from \p is into \p s; returns clauses added.
/// Variables are mapped 1-based DIMACS → 0-based solver ids, extending
/// the solver as needed.
std::size_t load_dimacs(std::istream& is, solver& s);

/// Writes \p clauses (solver literal encoding) as DIMACS CNF.
void write_dimacs(std::ostream& os, uint32_t num_vars,
                  const std::vector<std::vector<lit>>& clauses);

/// Writes \p s's live clause database (solver::copy_clauses order) with
/// \p assumptions appended as unit clauses, so the query "solve(s,
/// assumptions)" becomes a standalone DIMACS instance.  Must be called
/// at decision level 0.  Learnt clauses are redundant and excluded by
/// default; including them reproduces the exact deduction state.
void export_dimacs(std::ostream& os, const solver& s,
                   std::span<const lit> assumptions = {},
                   bool include_learnts = false);

/// Loads a DIMACS instance (e.g. one written by `export_dimacs`) into a
/// fresh solver configured by \p opt and solves it under \p
/// conflict_budget.  The verdict of an exported query replays this way
/// regardless of the clause-database policy that produced the export.
result replay_dimacs(std::istream& is, int64_t conflict_budget = -1,
                     solver_options opt = {});

} // namespace stps::sat
