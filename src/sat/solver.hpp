/// \file solver.hpp
/// \brief CDCL SAT solver (MiniSat-family architecture).
///
/// The sweeping framework issues many small incremental equivalence
/// queries (Alg. 2 line 18), so the solver supports: solving under
/// assumptions, adding clauses between calls, a per-call conflict budget
/// whose exhaustion yields `result::unknown` (the paper's `unDET`), and
/// model extraction for counter-examples (line 26).  Implementation:
/// two-watched-literal propagation over an arena clause database
/// (sat/clause_db.hpp) with an implicit binary-clause fast path
/// (sat/binary_graph.hpp), first-UIP learning with clause minimization
/// and learn-time LBD, VSIDS decision heap with phase saving, Luby
/// restarts, and glue/activity-ranked learnt-clause reduction.  This
/// file orchestrates search and propagation only; clause storage, the
/// binary implication graph, and between-query inprocessing live in
/// their own modules.
#pragma once

#include "sat/binary_graph.hpp"
#include "sat/clause_db.hpp"
#include "sat/resource.hpp"
#include "sat/types.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace stps::sat {

struct solver_stats
{
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t conflicts = 0;
  uint64_t restarts = 0;
  uint64_t learnt_clauses = 0;
  uint64_t solve_calls = 0;

  /// \name Clause-database policy counters (PR 10)
  /// Lifetime counters (never decremented), so sums across garbage
  /// epochs and shard-local solvers stay meaningful.
  /// \{
  uint64_t learnts_reduced = 0;  ///< learnt clauses deleted by reduce_db
  uint64_t lbd_sum = 0;          ///< Σ learn-time LBD over learnt clauses
  uint64_t binary_clauses = 0;   ///< binary clauses ever added
  uint64_t lits_collapsed = 0;   ///< variables eliminated by equiv collapsing
  uint64_t clauses_subsumed = 0; ///< clauses deleted by backward subsumption
  double inprocess_seconds = 0.0; ///< wall-clock spent inprocessing
  /// \}
};

/// Clause-database policy switches.  The defaults are the production
/// configuration; the ablation/naive paths exist so tests and bench
/// rows can pin the new machinery against the plain watched-clause
/// solver (verdicts must be identical, trajectories may differ).
struct solver_options
{
  /// Glue/activity-ranked learnt reduction (reduce_db).  Off = learnts
  /// only ever leave via purges and garbage epochs (the epoch-only
  /// baseline the `sat_clauses_peak` delta is measured against).
  bool reduce_learnts = true;
  /// Problem/learnt binary clauses live in the binary implication graph
  /// with the dedicated propagation fast path.  Off = every binary is a
  /// watched arena clause (the naive path).  Removable clauses always
  /// stay watched — a retractable clause must never bake an equivalence
  /// into the graph.
  bool implicit_binaries = true;
  /// reduce_db triggers once the arena learnts exceed this; each
  /// reduction raises the limit by `reduce_increment` (persistent
  /// across solve() calls — the database outlives thousands of
  /// queries).  Tests shrink it to force reductions on tiny instances.
  uint32_t reduce_base = 4000;
  uint32_t reduce_increment = 300;
};

class solver
{
public:
  explicit solver(solver_options opt = {});
  ~solver();
  solver(const solver&) = delete;
  solver& operator=(const solver&) = delete;

  const solver_options& options() const noexcept { return opt_; }

  var new_var();
  uint32_t num_vars() const noexcept
  {
    return static_cast<uint32_t>(assigns_.size());
  }

  /// Adds a clause; returns false if the database is already unsat.
  bool add_clause(std::span<const lit> lits);
  bool add_clause(std::initializer_list<lit> lits);

  /// Opaque handle to a retractable clause (null = nothing to retract).
  using clause_handle = void*;

  /// Adds a clause that can later be retracted with `remove_clause` —
  /// used for per-query auxiliary constraints (e.g. the XOR output of an
  /// equivalence query), so they do not pile up and slow every later
  /// propagation.  Must be called at decision level 0.  Returns null when
  /// the clause simplified away (satisfied, tautological, or unit — unit
  /// facts are permanent).  Handles are stable slot indices, valid
  /// across solve() calls even when reduce_db or the arena GC move
  /// clause memory underneath them.
  clause_handle add_removable_clause(std::span<const lit> lits);

  /// Retracts a clause previously added with `add_removable_clause`.
  /// Must be called at decision level 0.
  void remove_clause(clause_handle h);

  /// Deletes learnt clauses mentioning \p v.  Required after retracting
  /// auxiliary definitions of v: clauses *containing* v may depend on
  /// the retracted definition, while v-free learnt clauses are still
  /// implied (definitional extensions are conservative).  Must be called
  /// at decision level 0.
  ///
  /// Scans the per-solve learnt log (every clause learnt since solve()
  /// began, kept relocation-safe across reduce_db and the arena GC), so
  /// it is correct under any database reshuffle.  Call it after *every*
  /// solve issued while v's auxiliary definition was attached, as
  /// aig_encoder::prove_equivalent does — clauses learnt in earlier
  /// solves must already have been purged then.
  void purge_learnts_with(var v);

  /// Level-0 value of a variable (l_undef if not permanently fixed).
  /// Only meaningful outside of solve(), when the solver sits at level 0.
  lbool fixed_value(var v) const noexcept { return assigns_[v]; }

  /// \name External phase / activity initialization
  /// Saved phases and VSIDS activities are normally internal search
  /// state; the sweeping stack seeds them from outside — polarities from
  /// simulation signatures (a satisfiable equivalence query then starts
  /// in a simulation-consistent assignment and the counter-example falls
  /// out with few conflicts), activities transplanted across garbage
  /// epochs so a rebuilt solver does not relearn which cone variables
  /// matter.  Seeding never changes sat/unsat answers — phases and
  /// activities only steer the search order (pinned by a property test).
  /// \{
  /// The next branch on \p v tries \p value first (until phase saving
  /// overwrites it at the next backtrack over v).
  void set_phase(var v, bool value) noexcept { polarity_[v] = !value; }
  /// Value the next branch on \p v would try.
  bool saved_phase(var v) const noexcept { return !polarity_[v]; }
  /// Activity of \p v in units of the current bump increment — the
  /// scale-free quantity to carry between solver instances (raw
  /// activities are meaningless across instances: the increment grows
  /// and rescales independently per solver).
  double normalized_activity(var v) const noexcept
  {
    return activity_[v] / var_inc_;
  }
  /// Sets \p v's activity to \p normalized bump increments.
  void set_var_activity(var v, double normalized);
  /// \}

  /// Restricts branching to \p vars (plus assumptions) and rebuilds the
  /// decision heap accordingly; stays in effect until the next call.  A
  /// model then assigns these variables and whatever propagation reaches.
  /// Sound whenever every unlisted variable is functionally defined from
  /// listed ones or free (circuit-cone CNF): a conflict-free,
  /// propagation-closed assignment of the listed variables always
  /// extends to a total model.  The caller must list the full *encoded*
  /// support closure of the query, or partial models may not extend.
  /// (Equivalent-literal collapsing preserves this: an eliminated
  /// variable keeps its defining equivalence binaries, so it and its
  /// representative propagate each other eagerly.)  Must be called at
  /// decision level 0.
  void set_decision_vars(std::span<const var> vars);

  /// Installs (or clears, with nullptr) the cooperative resource hooks
  /// (sat/resource.hpp).  Inside solve() conflicts are reported to the
  /// hooks every `resource_check_interval` conflicts — with the exact
  /// remainder flushed at every return — and a true answer from
  /// `consume_conflicts` (or `should_stop` at solve entry) aborts the
  /// search with `result::unknown`, independently of the per-call
  /// `conflict_budget`.  The hooks must outlive the solver or be
  /// cleared first.  Null (the default) is bit-identical to ungoverned
  /// solving.
  void set_resource_hooks(resource_hooks* hooks) noexcept { hooks_ = hooks; }

  /// Solves under \p assumptions.  \p conflict_budget < 0 means no budget.
  result solve(std::span<const lit> assumptions = {},
               int64_t conflict_budget = -1);

  /// Model value after `result::sat`.
  bool model_value(var v) const;

  const solver_stats& stats() const noexcept { return stats_; }

  /// Problem clauses currently in the database (permanent + removable +
  /// implicit problem binaries; unit facts live on the trail and are not
  /// counted).
  std::size_t num_clauses() const noexcept
  {
    return clauses_.size() + num_removables_ +
           static_cast<std::size_t>(bin_.live_problem());
  }
  /// Learnt clauses currently retained (arena + implicit learnt
  /// binaries; reduce_db and purges shrink this).
  std::size_t num_learnts() const noexcept
  {
    return learnts_.size() + static_cast<std::size_t>(bin_.live_learnt());
  }

  /// True once the clause database is unconditionally unsatisfiable.
  bool in_conflict() const noexcept { return !ok_; }

  /// Copies the live clause database in export order: level-0 unit
  /// facts, implicit binaries, arena problem clauses, removable
  /// clauses, then (optionally) learnt clauses.  Must be called at
  /// decision level 0; feeds `export_dimacs` (sat/dimacs.hpp) so any
  /// query can be replayed standalone.
  void copy_clauses(std::vector<std::vector<lit>>& out,
                    bool include_learnts = false) const;

private:
  friend class inprocessor; // between-query simplification (inprocess.hpp)

  /// Watcher entry for arena clauses.  Binary arena clauses (the only
  /// binaries outside the implication graph: removables always, every
  /// binary when `implicit_binaries` is off) keep the blocker-only fast
  /// path: the blocker is the one other literal, so propagation decides
  /// keep/enqueue/conflict without touching clause memory.
  struct watcher
  {
    cref cr = cref_undef;
    lit blocker;
    uint32_t binary = 0;
  };

  /// Reason encoding: cref, or an implicit binary clause, or none.
  /// A binary reason for literal p stores the *other* literal o of the
  /// implicit clause (p ∨ o) tagged in the top bit; `reason_none` does
  /// not collide (its payload would be an impossible literal).
  static constexpr uint32_t reason_none = ~uint32_t{0};
  static constexpr uint32_t reason_binary_flag = 0x8000'0000u;
  static uint32_t reason_binary(lit other) noexcept
  {
    return reason_binary_flag | other.x;
  }
  static bool is_binary_reason(uint32_t r) noexcept
  {
    return r != reason_none && (r & reason_binary_flag) != 0u;
  }
  static lit binary_reason_other(uint32_t r) noexcept
  {
    lit l;
    l.x = r & ~reason_binary_flag;
    return l;
  }

  /// Conflict descriptor: an arena clause, or an implicit binary
  /// materialized as two literals.
  struct conflict_ref
  {
    cref cr = cref_undef;
    lit a, b;
    bool binary = false;
    bool valid() const noexcept { return binary || cr != cref_undef; }
  };

  /// Per-solve learnt record for purge_learnts_with: the clauses learnt
  /// since solve() began, as relocation-tracked crefs or implicit
  /// binary literal pairs (cr == cref_undef).
  struct learnt_record
  {
    cref cr = cref_undef;
    lit a, b;
  };

  lbool value(lit l) const noexcept
  {
    return assigns_[l.variable()] ^ l.sign();
  }
  uint32_t decision_level() const noexcept
  {
    return static_cast<uint32_t>(trail_lim_.size());
  }

  void attach(cref cr);
  void detach(cref cr);
  /// Nulls every level-0 reason reference into \p cr before it is freed.
  void unhook_reasons(cref cr);
  void enqueue(lit l, uint32_t reason);
  conflict_ref propagate();
  void analyze(const conflict_ref& conflict, std::vector<lit>& learnt,
               uint32_t& bt_level);
  bool lit_redundant(lit l, uint32_t abstract_levels);
  void backtrack(uint32_t level);
  lit pick_branch();
  void bump_var(var v);
  void bump_clause(cref cr);
  void decay_var_activity();
  uint32_t compute_lbd(std::span<const lit> lits);
  void reduce_db();
  /// Compacts the arena once enough waste accumulated, relocating every
  /// live reference (watchers, trail reasons, clause lists, removable
  /// slots, the per-solve learnt log).
  void check_garbage();
  void garbage_collect();
  void heap_insert(var v);
  var heap_pop();
  void heap_up(uint32_t i);
  void heap_down(uint32_t i);
  bool heap_contains(var v) const;

  /// Shared normalization for add_clause / add_removable_clause: sorts,
  /// dedupes, drops false literals.  Returns false when the clause needs
  /// no representation (tautology or already satisfied).
  bool simplify_clause(std::span<const lit> lits, std::vector<lit>& out);

  solver_options opt_;
  bool ok_ = true;
  bool restricted_ = false;       // set_decision_vars has been used
  bool preserve_phases_ = false;  // backtrack skips phase saving (inprocess)
  std::vector<uint8_t> decision_; // var → may be picked by pick_branch
  std::vector<var> decision_list_; // vars currently flagged (restricted)

  clause_db db_;
  binary_graph bin_;
  std::vector<cref> clauses_;
  std::vector<cref> learnts_;
  /// Retractable clauses by stable slot (clause_handle = slot + 1);
  /// cref_undef marks a free slot (recycled through removable_free_).
  std::vector<cref> removable_slots_;
  std::vector<uint32_t> removable_free_;
  std::size_t num_removables_ = 0;
  std::vector<learnt_record> learnt_log_; // cleared at each solve() entry
  double reduce_limit_ = 0.0;             // persistent reduce_db trigger

  std::vector<std::vector<watcher>> watches_; // indexed by lit.x
  std::vector<lbool> assigns_;
  std::vector<bool> polarity_;  // saved phases (true = last was negative)
  std::vector<uint32_t> level_;
  std::vector<uint32_t> reason_; // reason encoding, see above
  std::vector<lit> trail_;
  std::vector<uint32_t> trail_lim_;
  std::size_t qhead_ = 0;

  // VSIDS.  Heap entries carry a copy of the variable's activity so the
  // sift comparisons stay in the heap array instead of random-accessing
  // activity_; the copies are kept exact (same doubles), so decisions
  // are identical to the plain-indirection heap.
  struct heap_entry
  {
    double act = 0.0;
    var v = 0;
  };
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<heap_entry> heap_;    // binary max-heap of vars
  std::vector<uint32_t> heap_pos_;  // var → heap index + 1 (0 = absent)
  float clause_inc_ = 1.0f;

  // scratch for analyze / LBD
  std::vector<bool> seen_;
  std::vector<lit> analyze_stack_;
  std::vector<lit> analyze_clear_;
  std::vector<uint32_t> lbd_mark_; // level → last stamp
  uint32_t lbd_stamp_ = 0;
  lit bin_lits_[2]; // scratch: materialized implicit binary antecedent

  std::vector<lbool> model_;
  solver_stats stats_;
  resource_hooks* hooks_ = nullptr; // non-owning; null = ungoverned
};

} // namespace stps::sat
