/// \file solver.hpp
/// \brief CDCL SAT solver (MiniSat-family architecture).
///
/// The sweeping framework issues many small incremental equivalence
/// queries (Alg. 2 line 18), so the solver supports: solving under
/// assumptions, adding clauses between calls, a per-call conflict budget
/// whose exhaustion yields `result::unknown` (the paper's `unDET`), and
/// model extraction for counter-examples (line 26).  Implementation:
/// two-watched-literal propagation, first-UIP learning with clause
/// minimization, VSIDS decision heap with phase saving, Luby restarts,
/// and activity-based learnt-clause reduction.
#pragma once

#include "sat/types.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace stps::sat {

struct solver_stats
{
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t conflicts = 0;
  uint64_t restarts = 0;
  uint64_t learnt_clauses = 0;
  uint64_t solve_calls = 0;
};

class solver
{
public:
  solver();
  ~solver();
  solver(const solver&) = delete;
  solver& operator=(const solver&) = delete;

  var new_var();
  uint32_t num_vars() const noexcept
  {
    return static_cast<uint32_t>(assigns_.size());
  }

  /// Adds a clause; returns false if the database is already unsat.
  bool add_clause(std::span<const lit> lits);
  bool add_clause(std::initializer_list<lit> lits);

  /// Solves under \p assumptions.  \p conflict_budget < 0 means no budget.
  result solve(std::span<const lit> assumptions = {},
               int64_t conflict_budget = -1);

  /// Model value after `result::sat`.
  bool model_value(var v) const;

  const solver_stats& stats() const noexcept { return stats_; }

  /// True once the clause database is unconditionally unsatisfiable.
  bool in_conflict() const noexcept { return !ok_; }

private:
  struct clause
  {
    float activity = 0.0f;
    uint32_t lbd = 0;
    bool learnt = false;
    std::vector<lit> lits;
  };

  struct watcher
  {
    clause* c = nullptr;
    lit blocker;
  };

  lbool value(lit l) const noexcept
  {
    return assigns_[l.variable()] ^ l.sign();
  }
  uint32_t decision_level() const noexcept
  {
    return static_cast<uint32_t>(trail_lim_.size());
  }

  void attach(clause* c);
  void detach(clause* c);
  void enqueue(lit l, clause* reason);
  clause* propagate();
  void analyze(clause* conflict, std::vector<lit>& learnt, uint32_t& bt_level);
  bool lit_redundant(lit l, uint32_t abstract_levels);
  void backtrack(uint32_t level);
  lit pick_branch();
  void bump_var(var v);
  void bump_clause(clause* c);
  void decay_var_activity();
  void reduce_db();
  void heap_insert(var v);
  var heap_pop();
  void heap_up(uint32_t i);
  void heap_down(uint32_t i);
  bool heap_contains(var v) const;

  bool ok_ = true;
  std::vector<clause*> clauses_;
  std::vector<clause*> learnts_;
  std::vector<std::vector<watcher>> watches_; // indexed by lit.x
  std::vector<lbool> assigns_;
  std::vector<bool> polarity_;  // saved phases (true = last was negative)
  std::vector<uint32_t> level_;
  std::vector<clause*> reason_;
  std::vector<lit> trail_;
  std::vector<uint32_t> trail_lim_;
  std::size_t qhead_ = 0;

  // VSIDS
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<uint32_t> heap_;      // binary max-heap of vars
  std::vector<uint32_t> heap_pos_;  // var → heap index + 1 (0 = absent)
  float clause_inc_ = 1.0f;

  // scratch for analyze
  std::vector<bool> seen_;
  std::vector<lit> analyze_stack_;
  std::vector<lit> analyze_clear_;

  std::vector<lbool> model_;
  solver_stats stats_;
};

} // namespace stps::sat
