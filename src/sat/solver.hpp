/// \file solver.hpp
/// \brief CDCL SAT solver (MiniSat-family architecture).
///
/// The sweeping framework issues many small incremental equivalence
/// queries (Alg. 2 line 18), so the solver supports: solving under
/// assumptions, adding clauses between calls, a per-call conflict budget
/// whose exhaustion yields `result::unknown` (the paper's `unDET`), and
/// model extraction for counter-examples (line 26).  Implementation:
/// two-watched-literal propagation, first-UIP learning with clause
/// minimization, VSIDS decision heap with phase saving, Luby restarts,
/// and activity-based learnt-clause reduction.
#pragma once

#include "sat/resource.hpp"
#include "sat/types.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace stps::sat {

struct solver_stats
{
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t conflicts = 0;
  uint64_t restarts = 0;
  uint64_t learnt_clauses = 0;
  uint64_t solve_calls = 0;
};

class solver
{
public:
  solver();
  ~solver();
  solver(const solver&) = delete;
  solver& operator=(const solver&) = delete;

  var new_var();
  uint32_t num_vars() const noexcept
  {
    return static_cast<uint32_t>(assigns_.size());
  }

  /// Adds a clause; returns false if the database is already unsat.
  bool add_clause(std::span<const lit> lits);
  bool add_clause(std::initializer_list<lit> lits);

  /// Opaque handle to a retractable clause (null = nothing to retract).
  using clause_handle = void*;

  /// Adds a clause that can later be retracted with `remove_clause` —
  /// used for per-query auxiliary constraints (e.g. the XOR output of an
  /// equivalence query), so they do not pile up and slow every later
  /// propagation.  Must be called at decision level 0.  Returns null when
  /// the clause simplified away (satisfied, tautological, or unit — unit
  /// facts are permanent).
  clause_handle add_removable_clause(std::span<const lit> lits);

  /// Retracts a clause previously added with `add_removable_clause`.
  /// Must be called at decision level 0.
  void remove_clause(clause_handle h);

  /// Deletes learnt clauses mentioning \p v.  Required after retracting
  /// auxiliary definitions of v: clauses *containing* v may depend on
  /// the retracted definition, while v-free learnt clauses are still
  /// implied (definitional extensions are conservative).  Must be called
  /// at decision level 0.
  ///
  /// Precondition: only the clauses learnt during the most recent
  /// solve() are scanned (unless reduce_db reshuffled the list), so any
  /// earlier learnt clause mentioning v must already have been purged —
  /// i.e. call this after *every* solve issued while v's auxiliary
  /// definition was attached, as aig_encoder::prove_equivalent does.
  void purge_learnts_with(var v);

  /// Level-0 value of a variable (l_undef if not permanently fixed).
  /// Only meaningful outside of solve(), when the solver sits at level 0.
  lbool fixed_value(var v) const noexcept { return assigns_[v]; }

  /// \name External phase / activity initialization
  /// Saved phases and VSIDS activities are normally internal search
  /// state; the sweeping stack seeds them from outside — polarities from
  /// simulation signatures (a satisfiable equivalence query then starts
  /// in a simulation-consistent assignment and the counter-example falls
  /// out with few conflicts), activities transplanted across garbage
  /// epochs so a rebuilt solver does not relearn which cone variables
  /// matter.  Seeding never changes sat/unsat answers — phases and
  /// activities only steer the search order (pinned by a property test).
  /// \{
  /// The next branch on \p v tries \p value first (until phase saving
  /// overwrites it at the next backtrack over v).
  void set_phase(var v, bool value) noexcept { polarity_[v] = !value; }
  /// Value the next branch on \p v would try.
  bool saved_phase(var v) const noexcept { return !polarity_[v]; }
  /// Activity of \p v in units of the current bump increment — the
  /// scale-free quantity to carry between solver instances (raw
  /// activities are meaningless across instances: the increment grows
  /// and rescales independently per solver).
  double normalized_activity(var v) const noexcept
  {
    return activity_[v] / var_inc_;
  }
  /// Sets \p v's activity to \p normalized bump increments.
  void set_var_activity(var v, double normalized);
  /// \}

  /// Restricts branching to \p vars (plus assumptions) and rebuilds the
  /// decision heap accordingly; stays in effect until the next call.  A
  /// model then assigns these variables and whatever propagation reaches.
  /// Sound whenever every unlisted variable is functionally defined from
  /// listed ones or free (circuit-cone CNF): a conflict-free,
  /// propagation-closed assignment of the listed variables always
  /// extends to a total model.  The caller must list the full *encoded*
  /// support closure of the query, or partial models may not extend.
  /// Must be called at decision level 0.
  void set_decision_vars(std::span<const var> vars);

  /// Installs (or clears, with nullptr) the cooperative resource hooks
  /// (sat/resource.hpp).  Inside solve() conflicts are reported to the
  /// hooks every `resource_check_interval` conflicts — with the exact
  /// remainder flushed at every return — and a true answer from
  /// `consume_conflicts` (or `should_stop` at solve entry) aborts the
  /// search with `result::unknown`, independently of the per-call
  /// `conflict_budget`.  The hooks must outlive the solver or be
  /// cleared first.  Null (the default) is bit-identical to ungoverned
  /// solving.
  void set_resource_hooks(resource_hooks* hooks) noexcept { hooks_ = hooks; }

  /// Solves under \p assumptions.  \p conflict_budget < 0 means no budget.
  result solve(std::span<const lit> assumptions = {},
               int64_t conflict_budget = -1);

  /// Model value after `result::sat`.
  bool model_value(var v) const;

  const solver_stats& stats() const noexcept { return stats_; }

  /// Problem clauses currently in the database (permanent + removable;
  /// unit facts live on the trail and are not counted).
  std::size_t num_clauses() const noexcept
  {
    return clauses_.size() + removables_.size();
  }
  /// Learnt clauses currently retained (reduce_db and purges shrink this).
  std::size_t num_learnts() const noexcept { return learnts_.size(); }

  /// True once the clause database is unconditionally unsatisfiable.
  bool in_conflict() const noexcept { return !ok_; }

private:
  /// Clause header with the literals stored inline, immediately after the
  /// header, in one allocation — the hot propagation loop reads literals
  /// without a second pointer chase through a vector.
  struct clause
  {
    float activity = 0.0f;
    uint32_t size = 0;
    bool learnt = false;

    lit* begin() noexcept { return reinterpret_cast<lit*>(this + 1); }
    const lit* begin() const noexcept
    {
      return reinterpret_cast<const lit*>(this + 1);
    }
    lit* end() noexcept { return begin() + size; }
    const lit* end() const noexcept { return begin() + size; }
    lit& operator[](std::size_t i) noexcept { return begin()[i]; }
    lit operator[](std::size_t i) const noexcept { return begin()[i]; }

    static clause* make(std::span<const lit> lits, bool learnt);
    static void destroy(clause* c);
  };

  struct watcher
  {
    clause* c = nullptr;
    lit blocker;
    /// Binary-clause flag: the blocker is the only other literal, so
    /// propagation can decide keep/enqueue/conflict from the watcher
    /// alone (fits in the struct's existing padding).
    uint32_t binary = 0;
  };

  lbool value(lit l) const noexcept
  {
    return assigns_[l.variable()] ^ l.sign();
  }
  uint32_t decision_level() const noexcept
  {
    return static_cast<uint32_t>(trail_lim_.size());
  }

  void attach(clause* c);
  void detach(clause* c);
  /// Nulls every level-0 reason pointer into \p c before it is deleted.
  void unhook_reasons(clause* c);
  void enqueue(lit l, clause* reason);
  clause* propagate();
  void analyze(clause* conflict, std::vector<lit>& learnt, uint32_t& bt_level);
  bool lit_redundant(lit l, uint32_t abstract_levels);
  void backtrack(uint32_t level);
  lit pick_branch();
  void bump_var(var v);
  void bump_clause(clause* c);
  void decay_var_activity();
  void reduce_db();
  void heap_insert(var v);
  var heap_pop();
  void heap_up(uint32_t i);
  void heap_down(uint32_t i);
  bool heap_contains(var v) const;

  /// Shared normalization for add_clause / add_removable_clause: sorts,
  /// dedupes, drops false literals.  Returns false when the clause needs
  /// no representation (tautology or already satisfied).
  bool simplify_clause(std::span<const lit> lits, std::vector<lit>& out);

  bool ok_ = true;
  bool restricted_ = false;       // set_decision_vars has been used
  std::vector<uint8_t> decision_; // var → may be picked by pick_branch
  std::vector<var> decision_list_; // vars currently flagged (restricted)
  std::vector<clause*> clauses_;
  std::vector<clause*> learnts_;
  std::vector<clause*> removables_;
  std::size_t learnts_at_solve_ = 0; // learnts_.size() when solve() began
  bool db_reduced_in_solve_ = false; // reduce_db ran since solve() began
  std::vector<std::vector<watcher>> watches_; // indexed by lit.x
  std::vector<lbool> assigns_;
  std::vector<bool> polarity_;  // saved phases (true = last was negative)
  std::vector<uint32_t> level_;
  std::vector<clause*> reason_;
  std::vector<lit> trail_;
  std::vector<uint32_t> trail_lim_;
  std::size_t qhead_ = 0;

  // VSIDS.  Heap entries carry a copy of the variable's activity so the
  // sift comparisons stay in the heap array instead of random-accessing
  // activity_; the copies are kept exact (same doubles), so decisions
  // are identical to the plain-indirection heap.
  struct heap_entry
  {
    double act = 0.0;
    var v = 0;
  };
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<heap_entry> heap_;    // binary max-heap of vars
  std::vector<uint32_t> heap_pos_;  // var → heap index + 1 (0 = absent)
  float clause_inc_ = 1.0f;

  // scratch for analyze
  std::vector<bool> seen_;
  std::vector<lit> analyze_stack_;
  std::vector<lit> analyze_clear_;

  std::vector<lbool> model_;
  solver_stats stats_;
  resource_hooks* hooks_ = nullptr; // non-owning; null = ungoverned
};

} // namespace stps::sat
