#include "core/stp_simulator.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace stps::core {

namespace {

using knode = net::klut_network::node;

} // namespace

uint32_t stp_simulator::leaf_limit(uint64_t num_patterns) const
{
  if (leaf_limit_override_ != 0u) {
    return leaf_limit_override_;
  }
  // Alg. 1 line 4: limit = log2(n), so an exhaustive cut table (2^limit
  // entries) never exceeds the pattern set it stands in for.
  uint32_t limit = 0;
  while ((uint64_t{1} << (limit + 1u)) <= num_patterns) {
    ++limit;
  }
  return std::max(limit, 2u);
}

sim::signature_store stp_simulator::simulate_all(
    const net::klut_network& klut, const sim::pattern_set& patterns) const
{
  if (patterns.num_inputs() != klut.num_pis()) {
    throw std::invalid_argument{"simulate_all: input count mismatch"};
  }
  const std::size_t words = patterns.num_words();
  sim::signature_store sig(klut.size(), words);
  sig.fill_row(1u, ~uint64_t{0});
  klut.foreach_pi(
      [&](knode n) { patterns.copy_input_bits(n - 2u, sig.row(n)); });

  stp_scratch scratch;
  scratch.reserve(klut.max_fanin_size());
  std::vector<uint64_t> ins;
  std::vector<const uint64_t*> rows;
  klut.foreach_gate([&](knode n) {
    const auto& fis = klut.fanins(n);
    const auto& table = klut.table(n);
    uint64_t* out = sig.row(n).data();
    const std::size_t k = fis.size();
    ins.resize(k);
    rows.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
      rows[i] = sig.row(fis[i]).data();
    }
    for (std::size_t w = 0; w < words; ++w) {
      for (std::size_t i = 0; i < k; ++i) {
        ins[i] = rows[i][w];
      }
      out[w] = stp_evaluate_word(table, ins, scratch);
    }
  });
  sig.mask_tail(patterns.num_patterns());
  return sig;
}

std::unordered_map<knode, std::vector<uint64_t>>
stp_simulator::simulate_specified(const net::klut_network& klut,
                                  std::span<const knode> targets,
                                  const sim::pattern_set& patterns,
                                  stp_sim_stats* stats) const
{
  if (patterns.num_inputs() != klut.num_pis()) {
    throw std::invalid_argument{"simulate_specified: input count mismatch"};
  }
  const uint32_t limit = leaf_limit(patterns.num_patterns());

  // §III-B: cut the network with the specified nodes as boundaries.
  const cut::collapse_result collapsed =
      cut::collapse_to_cuts(klut, targets, limit);

  // Restrict evaluation to the cones of the targets.
  std::vector<bool> needed(collapsed.net.size(), false);
  std::vector<knode> frontier;
  for (const knode t : targets) {
    const knode m = collapsed.node_map[t];
    if (collapsed.net.is_gate(m) && !needed[m]) {
      needed[m] = true;
      frontier.push_back(m);
    }
  }
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    for (const knode f : collapsed.net.fanins(frontier[i])) {
      if (collapsed.net.is_gate(f) && !needed[f]) {
        needed[f] = true;
        frontier.push_back(f);
      }
    }
  }

  const std::size_t words = patterns.num_words();
  sim::signature_store sig(collapsed.net.size(), words);
  sig.fill_row(1u, ~uint64_t{0});
  collapsed.net.foreach_pi(
      [&](knode n) { patterns.copy_input_bits(n - 2u, sig.row(n)); });

  stp_scratch scratch;
  scratch.reserve(collapsed.net.max_fanin_size());
  std::vector<uint64_t> ins;
  std::size_t simulated = 0;
  collapsed.net.foreach_gate([&](knode n) {
    if (!needed[n]) {
      return;
    }
    ++simulated;
    const auto& fis = collapsed.net.fanins(n);
    const auto& table = collapsed.net.table(n);
    uint64_t* out = sig.row(n).data();
    ins.resize(fis.size());
    for (std::size_t w = 0; w < words; ++w) {
      for (std::size_t i = 0; i < fis.size(); ++i) {
        ins[i] = sig.word(fis[i], w);
      }
      out[w] = stp_evaluate_word(table, ins, scratch);
    }
  });

  if (stats != nullptr) {
    stats->leaf_limit = limit;
    stats->num_cuts = collapsed.roots.size();
    stats->num_simulated = simulated;
  }

  sig.mask_tail(patterns.num_patterns());

  std::unordered_map<knode, std::vector<uint64_t>> result;
  result.reserve(targets.size());
  for (const knode t : targets) {
    const knode m = collapsed.node_map[t];
    const auto row = sig.row(m);
    result.emplace(t, std::vector<uint64_t>(row.begin(), row.end()));
  }
  return result;
}

sim::signature_store stp_simulator::simulate_aig(
    const net::aig_network& aig, const sim::pattern_set& patterns) const
{
  if (patterns.num_inputs() != aig.num_pis()) {
    throw std::invalid_argument{"simulate_aig: input count mismatch"};
  }
  const std::size_t words = patterns.num_words();
  sim::signature_store sig(aig.size(), words);
  // copy_input_bits stays valid after guided witnesses spilled into
  // pattern tail blocks.
  aig.foreach_pi(
      [&](net::node n) { patterns.copy_input_bits(n - 1u, sig.row(n)); });

  // Every AND with edge complements is one of four 2-input LUTs; fold the
  // complements into the structural matrix so the matrix pass is uniform.
  const tt::truth_table and_tables[4] = {
      tt::truth_table{2u, {0x8ull}}, //  a ·  b  (minterm 3)
      tt::truth_table{2u, {0x4ull}}, // ¬a ·  b  (minterm 2: a=0, b=1)
      tt::truth_table{2u, {0x2ull}}, //  a · ¬b  (minterm 1: a=1, b=0)
      tt::truth_table{2u, {0x1ull}}, // ¬a · ¬b  (minterm 0)
  };
  aig.foreach_gate([&](net::node n) {
    const net::signal a = aig.fanin0(n);
    const net::signal b = aig.fanin1(n);
    const auto& table =
        and_tables[(a.is_complemented() ? 1u : 0u) |
                   (b.is_complemented() ? 2u : 0u)];
    // The k = 2 matrix pass, inlined: the structural matrix's four
    // columns become word masks, each input halves the active block.
    const uint64_t h0 = table.bit(0u) ? ~uint64_t{0} : 0u;
    const uint64_t h1 = table.bit(1u) ? ~uint64_t{0} : 0u;
    const uint64_t h2 = table.bit(2u) ? ~uint64_t{0} : 0u;
    const uint64_t h3 = table.bit(3u) ? ~uint64_t{0} : 0u;
    const uint64_t* sa = sig.row(a.get_node()).data();
    const uint64_t* sb = sig.row(b.get_node()).data();
    uint64_t* po = sig.row(n).data();
    for (std::size_t w = 0; w < words; ++w) {
      const uint64_t va = sa[w];
      const uint64_t vb = sb[w];
      const uint64_t blk0 = (vb & h2) | (~vb & h0);
      const uint64_t blk1 = (vb & h3) | (~vb & h1);
      po[w] = (va & blk1) | (~va & blk0);
    }
  });
  sig.mask_tail(patterns.num_patterns());
  return sig;
}

} // namespace stps::core
