/// \file stp_eval.hpp
/// \brief Word-parallel STP evaluation of a k-LUT.
///
/// The paper's claim (§III): with STP, "the output values of any node can
/// be computed by one matrix pass".  A structural matrix M_f ∈ M_{2×2^k}
/// multiplied by input vectors x_1 ⋉ … ⋉ x_k halves its active column
/// block with every factor.  Lifting that product to 64 simulation
/// patterns at once, each halving step becomes one word multiplex
///
///     block_i = (x & block_{i+2^{j}}) | (~x & block_i),
///
/// so a k-LUT costs ~2^k word operations for 64 patterns — instead of the
/// per-pattern bit extraction and index assembly of conventional k-LUT
/// simulators (src/sim/bitwise_sim.hpp).  `stp_evaluate_words` is this
/// matrix pass; `stp_evaluate_single` is the literal one-pattern STP
/// product, and tests pin both to the dense-matrix algebra in src/stp.
#pragma once

#include "tt/truth_table.hpp"

#include <cstdint>
#include <span>

namespace stps::core {

/// Scratch space reused across gates; sized for the largest k.
class stp_scratch
{
public:
  void reserve(uint32_t max_vars);
  uint64_t* data() noexcept { return blocks_.data(); }
  std::size_t size() const noexcept { return blocks_.size(); }

private:
  std::vector<uint64_t> blocks_;
};

/// Evaluates \p table word-parallel: `inputs[i]` is the signature word of
/// fanin i (i = table variable i, LSB-first); returns the output word.
/// \p scratch must be reserved for at least `table.num_vars()` variables.
uint64_t stp_evaluate_word(const tt::truth_table& table,
                           std::span<const uint64_t> inputs,
                           stp_scratch& scratch);

/// Literal single-pattern STP product M_f ⋉ x_1 ⋉ … ⋉ x_k.  inputs[i]
/// corresponds to table variable i; internally reversed into STP factor
/// order (x_1 = leading = MSB variable).
bool stp_evaluate_single(const tt::truth_table& table,
                         std::span<const bool> inputs);

} // namespace stps::core
