#include "core/stp_eval.hpp"

#include "stp/logic_matrix.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

namespace stps::core {

void stp_scratch::reserve(uint32_t max_vars)
{
  const std::size_t need =
      max_vars == 0u ? 1u : (std::size_t{1} << (max_vars - 1u));
  if (blocks_.size() < need) {
    blocks_.resize(need);
  }
}

uint64_t stp_evaluate_word(const tt::truth_table& table,
                           std::span<const uint64_t> inputs,
                           stp_scratch& scratch)
{
  const uint32_t k = table.num_vars();
  if (inputs.size() != k) {
    throw std::invalid_argument{"stp_evaluate_word: arity mismatch"};
  }
  if (k == 0u) {
    return table.bit(0u) ? ~uint64_t{0} : 0u;
  }
  if (k == 1u) {
    const uint64_t x = inputs[0];
    return (x & (table.bit(1u) ? ~uint64_t{0} : 0u)) |
           (~x & (table.bit(0u) ? ~uint64_t{0} : 0u));
  }
  // First halving: consume the MSB variable straight from the table bits,
  // avoiding a 2^k block materialization.
  uint64_t* blocks = scratch.data();
  const uint64_t half = uint64_t{1} << (k - 1u);
  {
    const uint64_t x = inputs[k - 1u];
    for (uint64_t i = 0; i < half; ++i) {
      const uint64_t lo = table.bit(i) ? ~x : 0u;
      const uint64_t hi = table.bit(i + half) ? x : 0u;
      blocks[i] = lo | hi;
    }
  }
  // Remaining halvings: one word multiplex per surviving block pair.
  for (uint32_t var = k - 1u; var-- > 0u;) {
    const uint64_t x = inputs[var];
    const uint64_t h = uint64_t{1} << var;
    for (uint64_t i = 0; i < h; ++i) {
      blocks[i] = (x & blocks[i + h]) | (~x & blocks[i]);
    }
  }
  return blocks[0];
}

bool stp_evaluate_single(const tt::truth_table& table,
                         std::span<const bool> inputs)
{
  if (inputs.size() != table.num_vars()) {
    throw std::invalid_argument{"stp_evaluate_single: arity mismatch"};
  }
  // The leading STP factor is the most-significant table variable, so the
  // LSB-first fanin order is reversed into factor order.
  const std::size_t k = inputs.size();
  const std::unique_ptr<bool[]> factors{new bool[k]};
  for (std::size_t i = 0; i < k; ++i) {
    factors[i] = inputs[k - 1u - i];
  }
  const stp::logic_matrix m{table};
  return m.apply(std::span<const bool>{factors.get(), k});
}

} // namespace stps::core
