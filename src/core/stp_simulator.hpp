/// \file stp_simulator.hpp
/// \brief The paper's STP-based circuit simulator (§III, Algorithm 1).
///
/// Two modes, as in the paper:
///
/// * **all nodes** (`m == a`): visit every gate in topological order and
///   compute its output by the STP matrix pass (`stp_evaluate_word`).
/// * **specified nodes** (`m == s`): only signatures of a target set are
///   wanted.  The simulator derives the leaf limit from the pattern count
///   (`limit = log2(n)`, Alg. 1 line 4 — so that a cut's exhaustive truth
///   table is never wider than the pattern set it replaces), collapses the
///   network into tree cuts with the targets as boundaries (§III-B),
///   computes every cut's truth table by STP composition, and simulates
///   only the cut roots in the targets' cones.
///
/// `simulate_aig` runs the same matrix pass over an AIG (each AND with
/// edge complements is a 2-input LUT) — the `TA` column of Table I.
#pragma once

#include "core/stp_eval.hpp"
#include "cut/tree_cuts.hpp"
#include "network/aig.hpp"
#include "network/klut.hpp"
#include "sim/patterns.hpp"
#include "sim/signature_store.hpp"

#include <span>
#include <unordered_map>
#include <vector>

namespace stps::core {

/// Statistics of one specified-node run (for the benches and tests).
struct stp_sim_stats
{
  uint32_t leaf_limit = 0;   ///< limit actually used (log2 of patterns)
  std::size_t num_cuts = 0;  ///< cut roots in the collapsed network
  std::size_t num_simulated = 0; ///< roots actually evaluated
};

class stp_simulator
{
public:
  /// \p leaf_limit_override forces the cut leaf limit; 0 keeps the
  /// paper's `log2(#patterns)` rule.
  explicit stp_simulator(uint32_t leaf_limit_override = 0u)
      : leaf_limit_override_{leaf_limit_override}
  {
  }

  /// Mode `a`: signatures of every node (indexed by klut node id).
  sim::signature_store simulate_all(const net::klut_network& klut,
                                    const sim::pattern_set& patterns) const;

  /// Mode `s`: signatures of \p targets only; key = original node id.
  std::unordered_map<net::klut_network::node, std::vector<uint64_t>>
  simulate_specified(const net::klut_network& klut,
                     std::span<const net::klut_network::node> targets,
                     const sim::pattern_set& patterns,
                     stp_sim_stats* stats = nullptr) const;

  /// STP matrix pass over an AIG (Table I, column TA).
  sim::signature_store simulate_aig(const net::aig_network& aig,
                                    const sim::pattern_set& patterns) const;

private:
  uint32_t leaf_limit(uint64_t num_patterns) const;

  uint32_t leaf_limit_override_;
};

} // namespace stps::core
