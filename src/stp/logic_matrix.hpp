/// \file logic_matrix.hpp
/// \brief Logic matrices: the 2×2^n matrices whose columns lie in B.
///
/// Definition 2 of the paper: a logic matrix's columns are Boolean
/// vectors, and the *structural matrix* M_σ of an operation σ has columns
/// consistent with σ's truth table read from right to left.  A logic
/// matrix is therefore isomorphic to a truth table; this class stores that
/// compact form, converts losslessly to the dense `stp::matrix`, and
/// implements the STP actions the simulator needs:
///
///   * `apply(inputs)`    — M_Φ x_1 … x_n for Boolean vectors (one pass);
///   * `apply_partial(x)` — M ⋉ x, pinning the leading variable and
///                          yielding the 2×2^{n-1} residual logic matrix;
///   * `compose`          — the canonical form of σ(g_1, …, g_k).
#pragma once

#include "stp/matrix.hpp"
#include "tt/truth_table.hpp"

#include <cstdint>
#include <span>
#include <string>

namespace stps::stp {

/// A 2×2^n logic matrix, stored as the truth table of its columns.
///
/// Column j (counting from the left, 0-based) encodes the function value
/// at input index 2^n-1-j, i.e. the table is read right to left, exactly
/// as Definition 2 prescribes.
class logic_matrix
{
public:
  /// The 2×1 logic matrix of a constant (n = 0).
  explicit logic_matrix(bool constant);

  /// Wraps a truth table as its structural matrix.
  explicit logic_matrix(tt::truth_table table);

  uint32_t num_vars() const noexcept { return table_.num_vars(); }
  std::size_t num_cols() const noexcept
  {
    return std::size_t{1} << table_.num_vars();
  }

  const tt::truth_table& table() const noexcept { return table_; }

  bool operator==(const logic_matrix& other) const = default;

  /// Expands to the dense 2×2^n matrix (column j top entry = value at
  /// index 2^n-1-j).
  matrix to_dense() const;

  /// Reconstructs from a dense 2×2^n matrix; throws unless every column
  /// is an element of B.
  static logic_matrix from_dense(const matrix& m);

  /// Structural matrices of the standard operators (Property 2).
  static logic_matrix negation();      ///< M_¬ = [0 1; 1 0]
  static logic_matrix conjunction();   ///< M_∧
  static logic_matrix disjunction();   ///< M_∨
  static logic_matrix exclusive_or();  ///< M_⊕
  static logic_matrix implication();   ///< M_→
  static logic_matrix equivalence();   ///< M_↔

  /// Full evaluation M x_1 … x_n (inputs.size() must equal num_vars);
  /// inputs[0] is the leading (leftmost) factor.  One matrix pass: each
  /// input halves the active column block.
  bool apply(std::span<const bool> inputs) const;

  /// Partial evaluation M ⋉ x for the leading variable; returns the
  /// residual 2×2^{n-1} logic matrix.
  logic_matrix apply_partial(bool x) const;

  /// Canonical form of σ(g_1, …, g_k): `*this` is M_σ (k variables) and
  /// \p gs are the canonical forms of the subfunctions, all over one
  /// common variable set.  Implements Property 3 constructively.
  logic_matrix compose(std::span<const logic_matrix> gs) const;

  /// Renders as the bracketed two-row matrix the paper prints.
  std::string to_string() const;

private:
  tt::truth_table table_;
};

/// Canonical-form equality σ(…) == τ(…) is truth-table equality; this
/// checks a logic identity the way Example 1 does: by computing both
/// canonical forms and comparing matrices.
bool identity_holds(const logic_matrix& lhs, const logic_matrix& rhs);

} // namespace stps::stp
