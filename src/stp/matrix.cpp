#include "stp/matrix.hpp"

#include <numeric>
#include <sstream>
#include <stdexcept>

namespace stps::stp {

matrix::matrix(std::size_t rows, std::size_t cols)
    : rows_{rows}, cols_{cols}, data_(rows * cols, 0u)
{
}

matrix::matrix(std::size_t rows, std::size_t cols,
               std::initializer_list<int> row_major)
    : matrix{rows, cols}
{
  if (row_major.size() != rows * cols) {
    throw std::invalid_argument{"matrix: initializer size mismatch"};
  }
  std::size_t i = 0;
  for (int v : row_major) {
    if (v != 0 && v != 1) {
      throw std::invalid_argument{"matrix: entries must be 0/1"};
    }
    data_[i++] = static_cast<uint8_t>(v);
  }
}

uint8_t matrix::at(std::size_t r, std::size_t c) const
{
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range{"matrix::at"};
  }
  return data_[r * cols_ + c];
}

void matrix::set(std::size_t r, std::size_t c, uint8_t v)
{
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range{"matrix::set"};
  }
  data_[r * cols_ + c] = v ? 1u : 0u;
}

std::string matrix::to_string() const
{
  std::ostringstream os;
  os << '[';
  for (std::size_t r = 0; r < rows_; ++r) {
    if (r != 0) {
      os << "; ";
    }
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c != 0) {
        os << ' ';
      }
      os << int{at(r, c)};
    }
  }
  os << ']';
  return os.str();
}

matrix matrix::identity(std::size_t n)
{
  matrix m{n, n};
  for (std::size_t i = 0; i < n; ++i) {
    m.set(i, i, 1u);
  }
  return m;
}

matrix matrix::boolean(bool value)
{
  matrix m{2, 1};
  m.set(value ? 0u : 1u, 0u, 1u);
  return m;
}

matrix matrix::swap(std::size_t m, std::size_t n)
{
  // W_{[m,n]} is mn×mn with W[(j*m + i), (i*n + j)] = 1.
  matrix w{m * n, m * n};
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      w.set(j * m + i, i * n + j, 1u);
    }
  }
  return w;
}

matrix matrix::power_reduce()
{
  // PR ⋉ x = x ⊗ x for x ∈ {[1 0]^T, [0 1]^T}: columns indexed by x.
  return matrix{4, 2, {1, 0, 0, 0, 0, 0, 0, 1}};
}

matrix multiply(const matrix& a, const matrix& b)
{
  if (a.cols() != b.rows()) {
    throw std::invalid_argument{"multiply: inner dimensions differ"};
  }
  matrix out{a.rows(), b.cols()};
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      if (!a.at(r, k)) {
        continue;
      }
      for (std::size_t c = 0; c < b.cols(); ++c) {
        if (b.at(k, c)) {
          out.set(r, c, 1u);
        }
      }
    }
  }
  return out;
}

matrix kronecker(const matrix& a, const matrix& b)
{
  matrix out{a.rows() * b.rows(), a.cols() * b.cols()};
  for (std::size_t ar = 0; ar < a.rows(); ++ar) {
    for (std::size_t ac = 0; ac < a.cols(); ++ac) {
      if (!a.at(ar, ac)) {
        continue;
      }
      for (std::size_t br = 0; br < b.rows(); ++br) {
        for (std::size_t bc = 0; bc < b.cols(); ++bc) {
          if (b.at(br, bc)) {
            out.set(ar * b.rows() + br, ac * b.cols() + bc, 1u);
          }
        }
      }
    }
  }
  return out;
}

matrix semi_tensor_product(const matrix& a, const matrix& b)
{
  if (a.empty() || b.empty()) {
    throw std::invalid_argument{"semi_tensor_product: empty operand"};
  }
  const std::size_t t = std::lcm(a.cols(), b.rows());
  const matrix lhs = kronecker(a, matrix::identity(t / a.cols()));
  const matrix rhs = kronecker(b, matrix::identity(t / b.rows()));
  return multiply(lhs, rhs);
}

} // namespace stps::stp
