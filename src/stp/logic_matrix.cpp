#include "stp/logic_matrix.hpp"

#include "tt/operations.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace stps::stp {

logic_matrix::logic_matrix(bool constant) : table_{0u}
{
  table_.set_bit(0u, constant);
}

logic_matrix::logic_matrix(tt::truth_table table) : table_{std::move(table)}
{
}

matrix logic_matrix::to_dense() const
{
  const std::size_t n = num_cols();
  matrix m{2, n};
  for (std::size_t j = 0; j < n; ++j) {
    const bool v = table_.bit(n - 1u - j);
    m.set(v ? 0u : 1u, j, 1u);
  }
  return m;
}

logic_matrix logic_matrix::from_dense(const matrix& m)
{
  if (m.rows() != 2u) {
    throw std::invalid_argument{"from_dense: not a 2-row matrix"};
  }
  uint32_t num_vars = 0;
  while ((std::size_t{1} << num_vars) < m.cols()) {
    ++num_vars;
  }
  if ((std::size_t{1} << num_vars) != m.cols()) {
    throw std::invalid_argument{"from_dense: column count not a power of two"};
  }
  tt::truth_table table{num_vars};
  for (std::size_t j = 0; j < m.cols(); ++j) {
    const uint8_t top = m.at(0, j);
    const uint8_t bot = m.at(1, j);
    if (top + bot != 1u) {
      throw std::invalid_argument{"from_dense: column not in B"};
    }
    table.set_bit(m.cols() - 1u - j, top == 1u);
  }
  return logic_matrix{std::move(table)};
}

logic_matrix logic_matrix::negation()
{
  return logic_matrix{tt::truth_table{1u, {0x1ull}}};
}

logic_matrix logic_matrix::conjunction()
{
  return logic_matrix{tt::truth_table{2u, {0x8ull}}};
}

logic_matrix logic_matrix::disjunction()
{
  return logic_matrix{tt::truth_table{2u, {0xeull}}};
}

logic_matrix logic_matrix::exclusive_or()
{
  return logic_matrix{tt::truth_table{2u, {0x6ull}}};
}

logic_matrix logic_matrix::implication()
{
  return logic_matrix{tt::truth_table{2u, {0xbull}}};
}

logic_matrix logic_matrix::equivalence()
{
  return logic_matrix{tt::truth_table{2u, {0x9ull}}};
}

bool logic_matrix::apply(std::span<const bool> inputs) const
{
  if (inputs.size() != num_vars()) {
    throw std::invalid_argument{"logic_matrix::apply: arity mismatch"};
  }
  // One matrix pass: each factor halves the active column block; the
  // surviving column's index is accumulated here.
  uint64_t index = 0;
  for (bool x : inputs) {
    index = (index << 1u) | (x ? 1u : 0u);
  }
  return table_.bit(index);
}

logic_matrix logic_matrix::apply_partial(bool x) const
{
  if (num_vars() == 0u) {
    throw std::invalid_argument{"apply_partial: constant matrix"};
  }
  const uint32_t rem = num_vars() - 1u;
  tt::truth_table out{rem};
  const uint64_t offset = x ? (uint64_t{1} << rem) : 0u;
  for (uint64_t i = 0; i < out.num_bits(); ++i) {
    out.set_bit(i, table_.bit(i + offset));
  }
  return logic_matrix{std::move(out)};
}

logic_matrix logic_matrix::compose(std::span<const logic_matrix> gs) const
{
  if (gs.size() != num_vars()) {
    throw std::invalid_argument{"logic_matrix::compose: arity mismatch"};
  }
  if (gs.empty()) {
    return *this;
  }
  // gs[0] is the leading STP factor and therefore this matrix's
  // most-significant table variable; tt::compose expects LSB-first.
  std::vector<tt::truth_table> inner;
  inner.reserve(gs.size());
  for (std::size_t i = gs.size(); i-- > 0;) {
    inner.push_back(gs[i].table());
  }
  return logic_matrix{tt::compose(table_, inner)};
}

std::string logic_matrix::to_string() const
{
  std::ostringstream os;
  const std::size_t n = num_cols();
  os << '[';
  for (std::size_t row = 0; row < 2u; ++row) {
    if (row != 0) {
      os << "; ";
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (j != 0) {
        os << ' ';
      }
      const bool v = table_.bit(n - 1u - j);
      os << ((row == 0u) == v ? 1 : 0);
    }
  }
  os << ']';
  return os.str();
}

bool identity_holds(const logic_matrix& lhs, const logic_matrix& rhs)
{
  return lhs.table() == rhs.table();
}

} // namespace stps::stp
