#include "stp/expression.hpp"

#include "tt/operations.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace stps::stp {

namespace {

logic_matrix structural_matrix(expression::kind op)
{
  switch (op) {
    case expression::kind::conjunction: return logic_matrix::conjunction();
    case expression::kind::disjunction: return logic_matrix::disjunction();
    case expression::kind::exclusive_or: return logic_matrix::exclusive_or();
    case expression::kind::implication: return logic_matrix::implication();
    case expression::kind::equivalence: return logic_matrix::equivalence();
    default: throw std::logic_error{"structural_matrix: not a binary op"};
  }
}

const char* op_symbol(expression::kind op)
{
  switch (op) {
    case expression::kind::conjunction: return " ∧ ";
    case expression::kind::disjunction: return " ∨ ";
    case expression::kind::exclusive_or: return " ⊕ ";
    case expression::kind::implication: return " → ";
    case expression::kind::equivalence: return " ↔ ";
    default: return " ? ";
  }
}

} // namespace

expression::expression(const expression& other)
    : kind_{other.kind_}, value_{other.value_}, var_{other.var_}
{
  if (other.left_) {
    left_ = std::make_unique<expression>(*other.left_);
  }
  if (other.right_) {
    right_ = std::make_unique<expression>(*other.right_);
  }
}

expression& expression::operator=(const expression& other)
{
  if (this != &other) {
    expression copy{other};
    *this = std::move(copy);
  }
  return *this;
}

bool expression::evaluate(std::span<const bool> assignment) const
{
  switch (kind_) {
    case kind::constant: return value_;
    case kind::variable:
      if (var_ >= assignment.size()) {
        throw std::out_of_range{"expression::evaluate: unbound variable"};
      }
      return assignment[var_];
    case kind::negation: return !left_->evaluate(assignment);
    case kind::conjunction:
      return left_->evaluate(assignment) && right_->evaluate(assignment);
    case kind::disjunction:
      return left_->evaluate(assignment) || right_->evaluate(assignment);
    case kind::exclusive_or:
      return left_->evaluate(assignment) != right_->evaluate(assignment);
    case kind::implication:
      return !left_->evaluate(assignment) || right_->evaluate(assignment);
    case kind::equivalence:
      return left_->evaluate(assignment) == right_->evaluate(assignment);
  }
  throw std::logic_error{"expression::evaluate: corrupt node"};
}

logic_matrix expression::canonical_form(uint32_t num_vars) const
{
  switch (kind_) {
    case kind::constant:
      // Constant canonical form: a logic matrix of equal columns.
      return logic_matrix{value_ ? tt::make_const1(num_vars)
                                 : tt::make_const0(num_vars)};
    case kind::variable: {
      if (var_ >= num_vars) {
        throw std::out_of_range{"canonical_form: unbound variable"};
      }
      // x_0 is the leading STP factor == most-significant table variable.
      return logic_matrix{tt::make_var(num_vars, num_vars - 1u - var_)};
    }
    case kind::negation: {
      const logic_matrix sub = left_->canonical_form(num_vars);
      return logic_matrix{tt::unary_not(sub.table())};
    }
    default: {
      const logic_matrix ls = left_->canonical_form(num_vars);
      const logic_matrix rs = right_->canonical_form(num_vars);
      // Binary structural matrix composed with both canonical forms:
      // M_σ ⋉ f ⋉ g, leading factor first.
      const logic_matrix subs[2] = {ls, rs};
      return structural_matrix(kind_).compose(subs);
    }
  }
}

std::string expression::to_string() const
{
  switch (kind_) {
    case kind::constant: return value_ ? "1" : "0";
    case kind::variable: {
      std::ostringstream os;
      os << 'x' << var_;
      return os.str();
    }
    case kind::negation: return "¬" + left_->to_string();
    default: {
      std::ostringstream os;
      os << '(' << left_->to_string() << op_symbol(kind_)
         << right_->to_string() << ')';
      return os.str();
    }
  }
}

expression expression::make_constant(bool value)
{
  expression e;
  e.kind_ = kind::constant;
  e.value_ = value;
  return e;
}

expression expression::make_variable(uint32_t index)
{
  expression e;
  e.kind_ = kind::variable;
  e.var_ = index;
  return e;
}

expression expression::make_not(expression a)
{
  expression e;
  e.kind_ = kind::negation;
  e.left_ = std::make_unique<expression>(std::move(a));
  return e;
}

expression expression::make_binary(kind op, expression a, expression b)
{
  expression e;
  e.kind_ = op;
  e.left_ = std::make_unique<expression>(std::move(a));
  e.right_ = std::make_unique<expression>(std::move(b));
  return e;
}

expression v(uint32_t index) { return expression::make_variable(index); }
expression constant(bool value) { return expression::make_constant(value); }
expression operator!(expression a) { return expression::make_not(std::move(a)); }

expression operator&&(expression a, expression b)
{
  return expression::make_binary(expression::kind::conjunction, std::move(a),
                                 std::move(b));
}

expression operator||(expression a, expression b)
{
  return expression::make_binary(expression::kind::disjunction, std::move(a),
                                 std::move(b));
}

expression operator^(expression a, expression b)
{
  return expression::make_binary(expression::kind::exclusive_or, std::move(a),
                                 std::move(b));
}

expression implies(expression a, expression b)
{
  return expression::make_binary(expression::kind::implication, std::move(a),
                                 std::move(b));
}

expression iff(expression a, expression b)
{
  return expression::make_binary(expression::kind::equivalence, std::move(a),
                                 std::move(b));
}

} // namespace stps::stp
