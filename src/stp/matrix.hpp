/// \file matrix.hpp
/// \brief Dense Boolean matrices with the semi-tensor product (STP).
///
/// This is the honest algebra layer of the paper's §II-B: real (0/1)
/// matrices of arbitrary dimension, the Kronecker product, and the STP
///
///     X ⋉ Y = (X ⊗ I_{t/n}) · (Y ⊗ I_{t/p}),   t = lcm(n, p),
///
/// together with the special matrices of STP theory (identity, swap
/// matrix W_{[m,n]}, power-reducing matrix PR_k).  The simulator's hot
/// path (src/core) uses the column-selection shortcut this algebra
/// licenses; tests in tests/test_stp_matrix.cpp verify the shortcut
/// against these dense products.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace stps::stp {

/// Dense Boolean matrix (entries 0/1 stored as uint8_t, row-major).
///
/// Dimensions are kept as 64-bit values; products check compatibility and
/// throw `std::invalid_argument` on misuse rather than silently UB.
class matrix
{
public:
  matrix() = default;
  matrix(std::size_t rows, std::size_t cols);
  matrix(std::size_t rows, std::size_t cols,
         std::initializer_list<int> row_major);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  uint8_t at(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, uint8_t v);

  bool operator==(const matrix& other) const = default;

  /// Multi-line "[0 1; 1 0]"-style rendering for diagnostics.
  std::string to_string() const;

  /// n×n identity.
  static matrix identity(std::size_t n);
  /// Column vector [1 0]^T (True) / [0 1]^T (False) — the set B of (1).
  static matrix boolean(bool value);
  /// Swap matrix W_{[m,n]}: W ⋉ (x ⊗ y) = y ⊗ x for x ∈ M_{m×1}, y ∈ M_{n×1}.
  static matrix swap(std::size_t m, std::size_t n);
  /// Power-reducing matrix PR: PR ⋉ x = x ⋉ x for Boolean x (M_r in the
  /// STP literature), dimension 4×2.
  static matrix power_reduce();

private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<uint8_t> data_;
};

/// Common matrix product (dimensions must agree exactly).
matrix multiply(const matrix& a, const matrix& b);

/// Kronecker product A ⊗ B.
matrix kronecker(const matrix& a, const matrix& b);

/// Semi-tensor product A ⋉ B per Definition 1.
matrix semi_tensor_product(const matrix& a, const matrix& b);

/// Convenience operator: `a * b` is the STP (the paper omits ⋉).
inline matrix operator*(const matrix& a, const matrix& b)
{
  return semi_tensor_product(a, b);
}

} // namespace stps::stp
