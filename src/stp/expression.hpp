/// \file expression.hpp
/// \brief Boolean expression trees and their STP canonical forms.
///
/// Property 3 of the paper: any logic expression Φ(x_1,…,x_n) can be
/// computed into a canonical form M_Φ with Φ = M_Φ x_1 … x_n.  This
/// module builds expressions symbolically and lowers them to canonical
/// logic matrices by composing structural matrices — the constructive
/// proof of Property 3 and the machinery behind Examples 1 and 2
/// (including the liar puzzle reproduced in examples/liar_puzzle.cpp).
#pragma once

#include "stp/logic_matrix.hpp"

#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace stps::stp {

/// Immutable expression node; build with the free functions below.
class expression
{
public:
  enum class kind : uint8_t
  {
    constant,
    variable,
    negation,
    conjunction,
    disjunction,
    exclusive_or,
    implication,
    equivalence
  };

  kind node_kind() const noexcept { return kind_; }
  bool constant_value() const noexcept { return value_; }
  uint32_t variable_index() const noexcept { return var_; }
  const expression* left() const noexcept { return left_.get(); }
  const expression* right() const noexcept { return right_.get(); }

  /// Evaluates under a full assignment (assignment[i] = value of x_i).
  bool evaluate(std::span<const bool> assignment) const;

  /// Lowers to M_Φ over \p num_vars variables (Property 3).  Variable
  /// x_0 is the *leading* STP factor, matching the paper's M_Φ x_1 … x_n
  /// ordering.
  logic_matrix canonical_form(uint32_t num_vars) const;

  /// Infix rendering with ¬ ∧ ∨ ⊕ → ↔.
  std::string to_string() const;

  /// \name Node constructors
  /// \{
  static expression make_constant(bool value);
  static expression make_variable(uint32_t index);
  static expression make_not(expression a);
  static expression make_binary(kind op, expression a, expression b);
  /// \}

  expression(const expression& other);
  expression& operator=(const expression& other);
  expression(expression&&) noexcept = default;
  expression& operator=(expression&&) noexcept = default;
  ~expression() = default;

private:
  expression() = default;

  kind kind_ = kind::constant;
  bool value_ = false;
  uint32_t var_ = 0;
  std::unique_ptr<expression> left_;
  std::unique_ptr<expression> right_;
};

/// \name Expression DSL
/// `auto phi = (v(0) == !v(1)) && (v(1) == !v(2));`
/// \{
expression v(uint32_t index);
expression constant(bool value);
expression operator!(expression a);
expression operator&&(expression a, expression b);
expression operator||(expression a, expression b);
expression operator^(expression a, expression b);
expression implies(expression a, expression b);
expression iff(expression a, expression b);
/// \}

} // namespace stps::stp
