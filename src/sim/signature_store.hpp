/// \file signature_store.hpp
/// \brief Flat node-major base arena + word-major tail blocks for
/// simulation signatures.
///
/// A *signature* is the ordered set of values a node produces under a
/// pattern set, one word per 64 patterns.  The words dimensioned at
/// `reset` time (the *base*) live in one contiguous node-major buffer at
/// a fixed stride, so a whole simulation run touches memory linearly
/// instead of chasing one heap allocation per node.  Words appended
/// later by `append_word` (counter-example words) live in *word-major
/// tail blocks*: one flat `num_nodes`-sized block per appended word.
/// Appending therefore never repacks the node-major arena, and the hot
/// counter-example accesses — every node's bits of the one open word —
/// are contiguous.
///
/// Layout: word `w` of node `n` is `data_[n * stride_ + w]` for
/// `w < base_words()`, and `tail[w - base_words()][n]` otherwise; `word`
/// and the `operator[]` row views dispatch.  The contiguous-span
/// accessors (`row`, `assign_row`, `fill_row`) address the node-major
/// base only and require `num_words() == base_words()` — i.e. stores
/// that have not appended tail words, which is every simulator-facing
/// use.
///
/// Simulators guarantee the *canonical tail* invariant — bits at
/// positions at or beyond `num_patterns` in the final word are zero, so
/// whole-word signature comparison is meaningful — by calling
/// `mask_tail`, the single place the invariant is enforced.
///
/// **Trimming.**  Sweeping appends one word per 64 counter-examples and,
/// once the equivalence classes have been refined with a word, never
/// reads it again — its information is *absorbed* by the partition.
/// `trim_words(first_live)` frees the storage of absorbed words: tail
/// blocks are dropped individually (one `swap`, the word-major layout
/// makes this O(1) per word), the node-major base arena is freed as a
/// whole once every base word is absorbed.  Word indexing stays
/// *absolute* — `num_words()` never shrinks, appended words keep their
/// indices — so refinement code is oblivious to trimming.  Reading a
/// trimmed word yields 0 through the const accessors; writing one is a
/// bug (asserted in debug builds).  `live_words`, `words_trimmed`,
/// `live_bytes`, and `peak_bytes` expose the memory-budget counters.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace stps::sim {

/// Mask selecting the valid bits of the final signature word.
constexpr uint64_t tail_mask(uint64_t num_patterns) noexcept
{
  return (num_patterns % 64u) == 0u
             ? ~uint64_t{0}
             : (uint64_t{1} << (num_patterns % 64u)) - 1u;
}

class signature_store
{
public:
  /// Read-only view of one node's words; comparable against other rows
  /// and against plain word vectors, and indexable per word.  The view
  /// dispatches through the store, so it sees base and tail words alike.
  class row_view
  {
  public:
    row_view() = default;
    row_view(const signature_store* store, std::size_t node) noexcept
        : store_{store}, node_{node}
    {
    }

    std::size_t size() const noexcept
    {
      return store_ != nullptr ? store_->num_words() : 0u;
    }
    bool empty() const noexcept { return size() == 0u; }
    uint64_t operator[](std::size_t w) const noexcept
    {
      return store_->word(node_, w);
    }

    friend bool operator==(row_view a, row_view b) noexcept
    {
      if (a.size() != b.size()) {
        return false;
      }
      for (std::size_t w = 0; w < a.size(); ++w) {
        if (a[w] != b[w]) {
          return false;
        }
      }
      return true;
    }
    friend bool operator==(row_view a, const std::vector<uint64_t>& b)
    {
      if (a.size() != b.size()) {
        return false;
      }
      for (std::size_t w = 0; w < a.size(); ++w) {
        if (a[w] != b[w]) {
          return false;
        }
      }
      return true;
    }

  private:
    const signature_store* store_ = nullptr;
    std::size_t node_ = 0;
  };

  signature_store() = default;
  /// Zero-initialized store of \p num_nodes rows × \p num_words words.
  signature_store(std::size_t num_nodes, std::size_t num_words)
  {
    reset(num_nodes, num_words);
  }

  /// Re-dimensions to \p num_nodes × \p num_words, all words zero.
  void reset(std::size_t num_nodes, std::size_t num_words);

  std::size_t size() const noexcept { return num_nodes_; }
  std::size_t num_words() const noexcept { return num_words_; }
  /// Words living in the node-major base arena (the `reset` dimensions);
  /// words at or beyond this index live in word-major tail blocks.
  std::size_t base_words() const noexcept { return stride_; }

  row_view operator[](std::size_t n) const noexcept { return {this, n}; }
  /// Contiguous node-major row; valid only while no tail words exist
  /// (`num_words() == base_words()`), which holds for every
  /// simulator-facing store.
  std::span<uint64_t> row(std::size_t n) noexcept
  {
    assert(num_words_ == stride_ && "row(): store has tail words");
    return {data_.data() + n * stride_, num_words_};
  }
  std::span<const uint64_t> row(std::size_t n) const noexcept
  {
    assert(num_words_ == stride_ && "row(): store has tail words");
    return {data_.data() + n * stride_, num_words_};
  }

  uint64_t word(std::size_t n, std::size_t w) const noexcept
  {
    if (w < stride_) {
      return base_freed_ ? 0u : data_[n * stride_ + w];
    }
    const std::vector<uint64_t>& t = tail_[w - stride_];
    return t.empty() ? 0u : t[n];
  }
  uint64_t& word(std::size_t n, std::size_t w) noexcept
  {
    assert(w >= first_live_ && "word(): writing a trimmed word");
    return w < stride_ ? data_[n * stride_ + w] : tail_[w - stride_][n];
  }

  /// Strided address of word \p w across all nodes, for vectorized
  /// whole-column access: returns a pointer p and sets \p stride such
  /// that node n's word is `p[n * stride]` (base words: the node-major
  /// arena at the row stride; tail words: the word-major block at
  /// stride 1), or nullptr when the word's storage is absent (trimmed,
  /// or born trimmed) and every read yields 0 — exactly mirroring the
  /// `word()` accessor.
  const uint64_t* word_block(std::size_t w, std::size_t* stride)
      const noexcept
  {
    if (w < stride_) {
      if (base_freed_) {
        return nullptr;
      }
      *stride = stride_;
      return data_.data() + w;
    }
    const std::vector<uint64_t>& t = tail_[w - stride_];
    if (t.empty()) {
      return nullptr;
    }
    *stride = 1u;
    return t.data();
  }

  /// Contiguous view of all nodes' bits of tail word \p w (requires
  /// `w >= base_words()`): element n is node n's word.
  std::span<uint64_t> tail_word(std::size_t w) noexcept
  {
    return {tail_[w - stride_].data(), num_nodes_};
  }
  std::span<const uint64_t> tail_word(std::size_t w) const noexcept
  {
    return {tail_[w - stride_].data(), num_nodes_};
  }

  /// Copies \p values into row \p n (must have exactly num_words words).
  void assign_row(std::size_t n, std::span<const uint64_t> values);
  /// Sets every word of row \p n to \p value.
  void fill_row(std::size_t n, uint64_t value);

  /// Appends one zeroed word to every row (for counter-example patterns
  /// spilling into a fresh word).  The word is a word-major tail block:
  /// one O(size) allocation, never a repack of the node-major base.
  void append_word();

  /// Appends one word that is *born trimmed*: it occupies an absolute
  /// index (keeping later words aligned with the pattern set) but never
  /// allocates backing storage — reads yield 0, writes are a bug.  Used
  /// to build reduced simulation arenas whose leading words would be
  /// absorbed immediately anyway (the collapsed CE view at scale).
  /// Callable only while the store has no live words yet.
  void append_trimmed_word();

  /// Re-establishes the canonical-tail invariant: bits at or beyond
  /// \p num_patterns in the final word are cleared on every row.
  void mask_tail(uint64_t num_patterns);

  /// \name Memory budget: trimming absorbed words
  /// \{
  /// Frees the storage of every word with index < \p first_live (clamped
  /// to `num_words()`).  Tail blocks are freed individually; the base
  /// arena is freed as a whole once \p first_live reaches `base_words()`
  /// (node-major rows cannot drop single words cheaply).  Indices are
  /// absolute and monotone: trimming never renumbers words, and a lower
  /// \p first_live than a previous call is a no-op.
  void trim_words(std::size_t first_live);

  /// First word whose storage is guaranteed live (0 when never trimmed).
  std::size_t first_live_word() const noexcept { return first_live_; }
  /// Words whose backing storage has been freed.
  std::size_t words_trimmed() const noexcept
  {
    return (base_freed_ ? stride_ : 0u) + tail_freed_;
  }
  /// Words still backed by storage.
  std::size_t live_words() const noexcept
  {
    return num_words_ - words_trimmed();
  }
  /// Current footprint of the word data in bytes.
  std::size_t live_bytes() const noexcept
  {
    return ((base_freed_ ? 0u : data_.size()) +
            (tail_.size() - tail_freed_) * num_nodes_) *
           sizeof(uint64_t);
  }
  /// Largest `live_bytes()` ever reached (tracked across reset/append).
  std::size_t peak_bytes() const noexcept { return peak_bytes_; }
  /// \}

private:
  std::vector<uint64_t> data_;                ///< node-major base arena
  std::vector<std::vector<uint64_t>> tail_;   ///< word-major appended words
  std::size_t num_nodes_ = 0;
  std::size_t num_words_ = 0;
  std::size_t stride_ = 0;                    ///< base words per row
  std::size_t first_live_ = 0;                ///< trim high-water mark
  std::size_t tail_freed_ = 0;                ///< leading tail blocks freed
  bool base_freed_ = false;
  std::size_t peak_bytes_ = 0;
};

} // namespace stps::sim
