/// \file signature_store.hpp
/// \brief Flat node-major arena for simulation signatures.
///
/// A *signature* is the ordered set of values a node produces under a
/// pattern set, one word per 64 patterns.  The store keeps every node's
/// words in one contiguous buffer at a fixed stride, so a whole
/// simulation run touches memory linearly instead of chasing one heap
/// allocation per node, and appending a counter-example word is one
/// amortized grow instead of `size()` vector reallocations.
///
/// Layout: `data_[n * stride_ + w]` is word `w` of node `n`, with
/// `stride_ >= num_words()` providing grow-by-word headroom.  Words at or
/// beyond `num_words()` inside the stride are always zero.
///
/// Simulators guarantee the *canonical tail* invariant — bits at
/// positions at or beyond `num_patterns` in the final word are zero, so
/// whole-word signature comparison is meaningful — by calling
/// `mask_tail`, the single place the invariant is enforced.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace stps::sim {

/// Mask selecting the valid bits of the final signature word.
constexpr uint64_t tail_mask(uint64_t num_patterns) noexcept
{
  return (num_patterns % 64u) == 0u
             ? ~uint64_t{0}
             : (uint64_t{1} << (num_patterns % 64u)) - 1u;
}

class signature_store
{
public:
  /// Read-only view of one node's words; comparable against other rows
  /// and against plain word vectors, and indexable per word.
  class row_view
  {
  public:
    row_view() = default;
    row_view(const uint64_t* words, std::size_t count) noexcept
        : words_{words}, count_{count}
    {
    }

    const uint64_t* begin() const noexcept { return words_; }
    const uint64_t* end() const noexcept { return words_ + count_; }
    const uint64_t* data() const noexcept { return words_; }
    std::size_t size() const noexcept { return count_; }
    bool empty() const noexcept { return count_ == 0u; }
    uint64_t operator[](std::size_t w) const noexcept { return words_[w]; }
    operator std::span<const uint64_t>() const noexcept
    {
      return {words_, count_};
    }

    friend bool operator==(row_view a, row_view b) noexcept
    {
      if (a.count_ != b.count_) {
        return false;
      }
      for (std::size_t w = 0; w < a.count_; ++w) {
        if (a.words_[w] != b.words_[w]) {
          return false;
        }
      }
      return true;
    }
    friend bool operator==(row_view a, const std::vector<uint64_t>& b)
    {
      return a == row_view{b.data(), b.size()};
    }

  private:
    const uint64_t* words_ = nullptr;
    std::size_t count_ = 0;
  };

  signature_store() = default;
  /// Zero-initialized store of \p num_nodes rows × \p num_words words.
  signature_store(std::size_t num_nodes, std::size_t num_words)
  {
    reset(num_nodes, num_words);
  }

  /// Re-dimensions to \p num_nodes × \p num_words, all words zero.
  void reset(std::size_t num_nodes, std::size_t num_words);

  std::size_t size() const noexcept { return num_nodes_; }
  std::size_t num_words() const noexcept { return num_words_; }

  row_view operator[](std::size_t n) const noexcept
  {
    return {data_.data() + n * stride_, num_words_};
  }
  std::span<uint64_t> row(std::size_t n) noexcept
  {
    return {data_.data() + n * stride_, num_words_};
  }
  std::span<const uint64_t> row(std::size_t n) const noexcept
  {
    return {data_.data() + n * stride_, num_words_};
  }

  uint64_t word(std::size_t n, std::size_t w) const noexcept
  {
    return data_[n * stride_ + w];
  }
  uint64_t& word(std::size_t n, std::size_t w) noexcept
  {
    return data_[n * stride_ + w];
  }

  /// Copies \p values into row \p n (must have exactly num_words words).
  void assign_row(std::size_t n, std::span<const uint64_t> values);
  /// Sets every word of row \p n to \p value.
  void fill_row(std::size_t n, uint64_t value);

  /// Appends one zeroed word to every row (for counter-example patterns
  /// spilling into a fresh word).  Amortized O(size) via stride headroom.
  void append_word();

  /// Re-establishes the canonical-tail invariant: bits at or beyond
  /// \p num_patterns in the final word are cleared on every row.
  void mask_tail(uint64_t num_patterns);

private:
  std::vector<uint64_t> data_;
  std::size_t num_nodes_ = 0;
  std::size_t num_words_ = 0;
  std::size_t stride_ = 0;
};

} // namespace stps::sim
