/// \file bitwise_sim.hpp
/// \brief Baseline word-parallel / per-bit simulators (the comparators of
/// Table I).
///
/// * `simulate_aig` is the mockturtle-style bit-parallel AIG simulator:
///   64 patterns per word, one AND/complement word operation per gate —
///   the `TA` baseline, which STP matches but does not beat.
/// * `simulate_klut_bitwise` is the conventional k-LUT simulator the
///   paper criticizes (§III, §V-A): for each pattern it extracts the
///   individual input bits, assembles a LUT index, and looks the output
///   bit up — no word parallelism.  This is the `TL` baseline the STP
///   simulator beats by ~7×.
/// * `resimulate_aig_last_word` is the incremental path used when a
///   counter-example is appended: only the final word is recomputed.
#pragma once

#include "network/aig.hpp"
#include "network/klut.hpp"
#include "sim/patterns.hpp"
#include "sim/signature_store.hpp"

namespace stps::sim {

/// Word-parallel AIG simulation; `result[node]` has pattern words for all
/// live nodes (dead nodes keep zero words).
signature_store simulate_aig(const net::aig_network& aig,
                             const pattern_set& patterns);

/// Conventional per-bit k-LUT simulation (baseline of Table I, column TL).
signature_store simulate_klut_bitwise(const net::klut_network& klut,
                                      const pattern_set& patterns);

/// Recomputes only the last signature word after patterns were appended;
/// signatures for earlier words must already be valid.  Grows the store
/// by a word if the pattern set acquired a new one.
void resimulate_aig_last_word(const net::aig_network& aig,
                              const pattern_set& patterns,
                              signature_store& signatures);

/// Like `resimulate_aig_last_word`, but evaluates *every* node id —
/// dead gates included.  Substitutions are function-preserving and a
/// dead gate keeps the fanin fields it died with, so an id-order pass
/// over the whole node array yields each node's original function under
/// the patterns; this is what makes the whole-AIG counter-example
/// engine (sweep/ce_engine.hpp) bit-identical to the collapsed-view
/// snapshot even for class members that merged away mid-sweep.  Unlike
/// the incremental variant, the last word is recomputed entirely from
/// the pattern words, so earlier signature words need not be live.
void resimulate_aig_all_last_word(const net::aig_network& aig,
                                  const pattern_set& patterns,
                                  signature_store& signatures);

/// Precomputed fanin-literal arrays + dependency-safety bitmap feeding
/// the vectorized whole-AIG resimulation kernel (sim/simd.hpp).  Built
/// once (per CE-engine build) from a snapshot of every node's fanin
/// literals; the snapshot stays valid across sweeping's substitutions
/// because they rewire fanins to *function-identical* signals (proven
/// equivalences), so evaluating the snapshotted literals produces
/// byte-identical words to evaluating the current ones.  `safe4` marks
/// the 4-blocks (counted from `first`) whose eight fanin ids all
/// precede the block, i.e. blocks free of intra-block dependencies.
struct resim_plan
{
  std::vector<uint32_t> lit0; ///< fanin0 literal (2·node+compl), by id
  std::vector<uint32_t> lit1; ///< fanin1 literal, by id
  std::vector<uint64_t> safe4; ///< 4-block dependency-safety bitmap
  uint32_t first = 0;          ///< first gate id (1 + num_pis)
  uint32_t size = 0;           ///< aig.size() at snapshot time
};

/// Snapshots \p aig into a resimulation plan (dead gates included, same
/// id-order total-evaluation contract as `resimulate_aig_all_last_word`).
resim_plan make_resim_plan(const net::aig_network& aig);

/// Plan-driven variant of `resimulate_aig_all_last_word`: identical
/// results, vectorized over dependency-safe 4-blocks when the store is
/// word-major at the open word (the CE-engine case; otherwise falls
/// back to the plain variant).
void resimulate_aig_all_last_word(const net::aig_network& aig,
                                  const pattern_set& patterns,
                                  signature_store& signatures,
                                  const resim_plan& plan);

/// Evaluates a single node under a single full input assignment (slow
/// reference path used by tests and the CEC debug checker).
bool evaluate_aig_node(const net::aig_network& aig, net::node n,
                       std::span<const bool> assignment);

} // namespace stps::sim
