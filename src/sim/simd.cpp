#include "sim/simd.hpp"

#include <atomic>
#include <stdexcept>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define STPS_SIMD_X86 1
#include <immintrin.h>
#else
#define STPS_SIMD_X86 0
#endif

namespace stps::sim::simd {

namespace {

// Forced level (-1 = none).  Relaxed atomics: force_level is a
// test/ablation knob set before kernels run, never raced against them;
// the atomic only keeps concurrent *reads* from worker threads defined.
std::atomic<int> g_forced{-1};

level detect() noexcept
{
#if STPS_SIMD_X86
  if (__builtin_cpu_supports("avx2")) {
    return level::avx2;
  }
#endif
  return level::scalar;
}

inline uint64_t complement_mask(uint32_t lit) noexcept
{
  return uint64_t{0} - static_cast<uint64_t>(lit & 1u);
}

inline uint64_t resim_one(const uint64_t* wb, uint32_t l0,
                          uint32_t l1) noexcept
{
  return (wb[l0 >> 1u] ^ complement_mask(l0)) &
         (wb[l1 >> 1u] ^ complement_mask(l1));
}

// ---------------------------------------------------------------- scalar

void and_words_scalar(uint64_t* out, const uint64_t* a, uint64_t ca,
                      const uint64_t* b, uint64_t cb, std::size_t count)
{
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = (a[i] ^ ca) & (b[i] ^ cb);
  }
}

bool rows_equal_scalar(const uint64_t* a, const uint64_t* b, uint64_t flip,
                       std::size_t count, uint64_t last_mask)
{
  const std::size_t full = count - 1u;
  for (std::size_t i = 0; i < full; ++i) {
    if ((a[i] ^ flip) != b[i]) {
      return false;
    }
  }
  return ((a[full] ^ flip) & last_mask) == (b[full] & last_mask);
}

void gather_keys_scalar(uint64_t* keys, const uint32_t* members,
                        std::size_t count, const uint64_t* base,
                        uint32_t stride, const uint8_t* phase,
                        uint64_t word_mask)
{
  for (std::size_t i = 0; i < count; ++i) {
    const uint32_t n = members[i];
    const uint64_t flip = uint64_t{0} - static_cast<uint64_t>(phase[n]);
    keys[i] = (base[static_cast<std::size_t>(n) * stride] ^ flip) & word_mask;
  }
}

void resim_words_scalar(uint64_t* wb, const uint32_t* lit0,
                        const uint32_t* lit1, uint32_t first, uint32_t size)
{
  for (uint32_t n = first; n < size; ++n) {
    wb[n] = resim_one(wb, lit0[n], lit1[n]);
  }
}

// ----------------------------------------------------------------- AVX2

#if STPS_SIMD_X86

__attribute__((target("avx2"))) void and_words_avx2(
    uint64_t* out, const uint64_t* a, uint64_t ca, const uint64_t* b,
    uint64_t cb, std::size_t count)
{
  const __m256i vca = _mm256_set1_epi64x(static_cast<long long>(ca));
  const __m256i vcb = _mm256_set1_epi64x(static_cast<long long>(cb));
  std::size_t i = 0;
  for (; i + 4u <= count; i += 4u) {
    const __m256i va = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)), vca);
    const __m256i vb = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)), vcb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_and_si256(va, vb));
  }
  for (; i < count; ++i) {
    out[i] = (a[i] ^ ca) & (b[i] ^ cb);
  }
}

__attribute__((target("avx2"))) bool rows_equal_avx2(
    const uint64_t* a, const uint64_t* b, uint64_t flip, std::size_t count,
    uint64_t last_mask)
{
  const __m256i vflip = _mm256_set1_epi64x(static_cast<long long>(flip));
  const std::size_t full = count - 1u;
  std::size_t i = 0;
  for (; i + 4u <= full; i += 4u) {
    const __m256i va = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)), vflip);
    const __m256i diff = _mm256_xor_si256(
        va, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    if (!_mm256_testz_si256(diff, diff)) {
      return false;
    }
  }
  for (; i < full; ++i) {
    if ((a[i] ^ flip) != b[i]) {
      return false;
    }
  }
  return ((a[full] ^ flip) & last_mask) == (b[full] & last_mask);
}

__attribute__((target("avx2"))) void gather_keys_avx2(
    uint64_t* keys, const uint32_t* members, std::size_t count,
    const uint64_t* base, uint32_t stride, const uint8_t* phase,
    uint64_t word_mask)
{
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(word_mask));
  const __m128i vstride = _mm_set1_epi32(static_cast<int>(stride));
  std::size_t i = 0;
  for (; i + 4u <= count; i += 4u) {
    const __m128i m =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(members + i));
    const __m128i idx = _mm_mullo_epi32(m, vstride);
    __m256i v = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(base), idx, 8);
    // The phase bytes are themselves a gather (indexed by node id, not
    // by i); four scalar byte loads feed the 0/1 → 0/~0 expansion.
    const __m256i flips =
        _mm256_set_epi64x(-static_cast<long long>(phase[members[i + 3u]]),
                          -static_cast<long long>(phase[members[i + 2u]]),
                          -static_cast<long long>(phase[members[i + 1u]]),
                          -static_cast<long long>(phase[members[i + 0u]]));
    v = _mm256_and_si256(_mm256_xor_si256(v, flips), vmask);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + i), v);
  }
  gather_keys_scalar(keys + i, members + i, count - i, base, stride, phase,
                     word_mask);
}

__attribute__((target("avx2"))) void resim_words_avx2(
    uint64_t* wb, const uint32_t* lit0, const uint32_t* lit1, uint32_t first,
    uint32_t size, const uint64_t* safe4)
{
  const __m128i one32 = _mm_set1_epi32(1);
  const __m256i zero = _mm256_setzero_si256();
  uint32_t n = first;
  for (; n + 4u <= size; n += 4u) {
    const uint32_t block = (n - first) >> 2u;
    if (((safe4[block >> 6u] >> (block & 63u)) & 1u) != 0u) {
      const __m128i l0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(lit0 + n));
      const __m128i l1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(lit1 + n));
      const __m256i v0 = _mm256_i32gather_epi64(
          reinterpret_cast<const long long*>(wb), _mm_srli_epi32(l0, 1), 8);
      const __m256i v1 = _mm256_i32gather_epi64(
          reinterpret_cast<const long long*>(wb), _mm_srli_epi32(l1, 1), 8);
      const __m256i c0 = _mm256_sub_epi64(
          zero, _mm256_cvtepu32_epi64(_mm_and_si128(l0, one32)));
      const __m256i c1 = _mm256_sub_epi64(
          zero, _mm256_cvtepu32_epi64(_mm_and_si128(l1, one32)));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(wb + n),
          _mm256_and_si256(_mm256_xor_si256(v0, c0),
                           _mm256_xor_si256(v1, c1)));
    } else {
      wb[n] = resim_one(wb, lit0[n], lit1[n]);
      wb[n + 1u] = resim_one(wb, lit0[n + 1u], lit1[n + 1u]);
      wb[n + 2u] = resim_one(wb, lit0[n + 2u], lit1[n + 2u]);
      wb[n + 3u] = resim_one(wb, lit0[n + 3u], lit1[n + 3u]);
    }
  }
  for (; n < size; ++n) {
    wb[n] = resim_one(wb, lit0[n], lit1[n]);
  }
}

#endif // STPS_SIMD_X86

} // namespace

level detected_level() noexcept
{
  static const level cached = detect();
  return cached;
}

level active_level() noexcept
{
  const int forced = g_forced.load(std::memory_order_relaxed);
  return forced >= 0 ? static_cast<level>(forced) : detected_level();
}

void force_level(level l)
{
  if (l == level::avx2 && detected_level() != level::avx2) {
    throw std::invalid_argument{"simd::force_level: avx2 not supported"};
  }
  g_forced.store(static_cast<int>(l), std::memory_order_relaxed);
}

void reset_level() noexcept
{
  g_forced.store(-1, std::memory_order_relaxed);
}

const char* level_name(level l) noexcept
{
  return l == level::avx2 ? "avx2" : "scalar";
}

void and_words(uint64_t* out, const uint64_t* a, uint64_t ca,
               const uint64_t* b, uint64_t cb, std::size_t count)
{
#if STPS_SIMD_X86
  if (active_level() == level::avx2) {
    and_words_avx2(out, a, ca, b, cb, count);
    return;
  }
#endif
  and_words_scalar(out, a, ca, b, cb, count);
}

bool rows_equal_normalized(const uint64_t* a, const uint64_t* b,
                           uint64_t flip, std::size_t count,
                           uint64_t last_mask)
{
#if STPS_SIMD_X86
  if (active_level() == level::avx2) {
    return rows_equal_avx2(a, b, flip, count, last_mask);
  }
#endif
  return rows_equal_scalar(a, b, flip, count, last_mask);
}

void gather_normalized_keys(uint64_t* keys, const uint32_t* members,
                            std::size_t count, const uint64_t* base,
                            uint32_t stride, const uint8_t* phase,
                            uint64_t word_mask)
{
#if STPS_SIMD_X86
  if (active_level() == level::avx2) {
    gather_keys_avx2(keys, members, count, base, stride, phase, word_mask);
    return;
  }
#endif
  gather_keys_scalar(keys, members, count, base, stride, phase, word_mask);
}

void resim_words(uint64_t* wb, const uint32_t* lit0, const uint32_t* lit1,
                 uint32_t first, uint32_t size, const uint64_t* safe4)
{
#if STPS_SIMD_X86
  if (active_level() == level::avx2) {
    resim_words_avx2(wb, lit0, lit1, first, size, safe4);
    return;
  }
#endif
  (void)safe4;
  resim_words_scalar(wb, lit0, lit1, first, size);
}

} // namespace stps::sim::simd
