/// \file simd.hpp
/// \brief Runtime-dispatched SIMD word kernels over the flat arenas.
///
/// The PR 1–4 data layout (node-major signature base, word-major tail
/// blocks, input-major patterns) makes the simulation hot loops
/// straight-line loads/XOR/AND over contiguous `uint64_t` arrays, so
/// vectorizing is a kernel layer, not a data-structure change.  Every
/// kernel here has a portable scalar implementation and an explicit
/// AVX2 variant (GCC/Clang `__attribute__((target("avx2")))`, selected
/// once per process via CPUID), and the two are byte-identical on every
/// input — pinned by tests/test_simd.cpp — so dispatch is purely a
/// throughput decision.  `force_level` pins dispatch for tests and
/// ablation; it is not meant to be raced against running kernels.
#pragma once

#include <cstddef>
#include <cstdint>

namespace stps::sim::simd {

enum class level : int { scalar = 0, avx2 = 1 };

/// Highest kernel level this CPU can execute (detected once).
level detected_level() noexcept;
/// Level the kernels dispatch to: the forced level if any, else the
/// detected one.
level active_level() noexcept;
/// Pins dispatch to \p l for the whole process (tests/ablation).
/// Throws std::invalid_argument if the CPU cannot execute \p l.
void force_level(level l);
/// Returns dispatch to the detected level.
void reset_level() noexcept;
const char* level_name(level l) noexcept;

/// out[i] = (a[i] ^ ca) & (b[i] ^ cb) for i < count — the AIG
/// word-simulation inner loop.  \p ca and \p cb are all-ones complement
/// masks or zero.  \p out may alias neither input.
void and_words(uint64_t* out, const uint64_t* a, uint64_t ca,
               const uint64_t* b, uint64_t cb, std::size_t count);

/// Whole-row normalized signature compare: true iff
/// (a[i] ^ flip) == b[i] for every i < count, with the final word
/// masked by \p last_mask on both sides.  Requires count > 0.
bool rows_equal_normalized(const uint64_t* a, const uint64_t* b,
                           uint64_t flip, std::size_t count,
                           uint64_t last_mask);

/// keys[i] = (base[members[i] * stride] ^ (phase[members[i]] ? ~0 : 0))
/// & word_mask for i < count — the class-refinement key gather.
/// \p phase is indexed by node id and holds 0/1 bytes.  Callers must
/// guarantee members[i] * stride < 2^31 (checked at the call site
/// against the store dimensions) so 32-bit gather indices cannot wrap.
void gather_normalized_keys(uint64_t* keys, const uint32_t* members,
                            std::size_t count, const uint64_t* base,
                            uint32_t stride, const uint8_t* phase,
                            uint64_t word_mask);

/// Whole-AIG word resimulation over a word-major block:
///   wb[n] = (wb[lit0[n] >> 1] ^ -(lit0[n] & 1)) &
///           (wb[lit1[n] >> 1] ^ -(lit1[n] & 1))
/// for n in [first, size) ascending (complement bits expand to all-ones
/// masks).  \p safe4 is a bitmap over consecutive 4-blocks counted from
/// \p first: bit b set means every fanin id of block b's four nodes
/// precedes the block, so the block has no intra-block dependency and
/// may be evaluated 4-wide; unsafe blocks and the tail run scalar.
void resim_words(uint64_t* wb, const uint32_t* lit0, const uint32_t* lit1,
                 uint32_t first, uint32_t size, const uint64_t* safe4);

} // namespace stps::sim::simd
