#include "sim/signature_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace stps::sim {

void signature_store::reset(std::size_t num_nodes, std::size_t num_words)
{
  num_nodes_ = num_nodes;
  num_words_ = num_words;
  stride_ = num_words;
  data_.assign(num_nodes * stride_, 0u);
}

void signature_store::assign_row(std::size_t n,
                                 std::span<const uint64_t> values)
{
  if (values.size() != num_words_) {
    throw std::invalid_argument{"signature_store: row width mismatch"};
  }
  std::copy(values.begin(), values.end(), data_.data() + n * stride_);
}

void signature_store::fill_row(std::size_t n, uint64_t value)
{
  uint64_t* p = data_.data() + n * stride_;
  std::fill(p, p + num_words_, value);
}

void signature_store::append_word()
{
  if (num_words_ == stride_) {
    // Repack into a wider stride; headroom amortizes subsequent appends.
    const std::size_t new_stride =
        std::max<std::size_t>(stride_ + stride_ / 2u, stride_ + 4u);
    std::vector<uint64_t> grown(num_nodes_ * new_stride, 0u);
    for (std::size_t n = 0; n < num_nodes_; ++n) {
      std::copy_n(data_.data() + n * stride_, num_words_,
                  grown.data() + n * new_stride);
    }
    data_ = std::move(grown);
    stride_ = new_stride;
  }
  // Slack words inside the stride are zero by construction, so the fresh
  // word needs no clearing.
  ++num_words_;
}

void signature_store::mask_tail(uint64_t num_patterns)
{
  if (num_words_ == 0u) {
    return;
  }
  const uint64_t mask = tail_mask(num_patterns);
  if (mask == ~uint64_t{0}) {
    return;
  }
  uint64_t* last = data_.data() + num_words_ - 1u;
  for (std::size_t n = 0; n < num_nodes_; ++n, last += stride_) {
    *last &= mask;
  }
}

} // namespace stps::sim
