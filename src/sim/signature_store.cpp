#include "sim/signature_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace stps::sim {

void signature_store::reset(std::size_t num_nodes, std::size_t num_words)
{
  num_nodes_ = num_nodes;
  num_words_ = num_words;
  stride_ = num_words;
  data_.assign(num_nodes * stride_, 0u);
  tail_.clear();
  first_live_ = 0;
  tail_freed_ = 0;
  base_freed_ = false;
  peak_bytes_ = std::max(peak_bytes_, live_bytes());
}

void signature_store::assign_row(std::size_t n,
                                 std::span<const uint64_t> values)
{
  assert(num_words_ == stride_ && "assign_row(): store has tail words");
  assert(!base_freed_ && "assign_row(): base arena was trimmed");
  if (values.size() != num_words_) {
    throw std::invalid_argument{"signature_store: row width mismatch"};
  }
  std::copy(values.begin(), values.end(), data_.data() + n * stride_);
}

void signature_store::fill_row(std::size_t n, uint64_t value)
{
  assert(num_words_ == stride_ && "fill_row(): store has tail words");
  assert(!base_freed_ && "fill_row(): base arena was trimmed");
  uint64_t* p = data_.data() + n * stride_;
  std::fill(p, p + num_words_, value);
}

void signature_store::append_word()
{
  // Word-major tail block: the node-major base is never repacked, and
  // the appended word's bits are contiguous across nodes.
  tail_.emplace_back(num_nodes_, 0u);
  ++num_words_;
  peak_bytes_ = std::max(peak_bytes_, live_bytes());
}

void signature_store::append_trimmed_word()
{
  assert(first_live_ == num_words_ &&
         "append_trimmed_word(): store already has live words");
  assert(num_words_ >= stride_ &&
         "append_trimmed_word(): base words still pending");
  if (!base_freed_ && stride_ > 0u) {
    std::vector<uint64_t>{}.swap(data_);
    base_freed_ = true;
  }
  tail_.emplace_back(); // empty block: reads yield 0, never backed
  ++tail_freed_;
  ++num_words_;
  first_live_ = num_words_;
}

void signature_store::mask_tail(uint64_t num_patterns)
{
  if (num_words_ == 0u) {
    return;
  }
  const uint64_t mask = tail_mask(num_patterns);
  if (mask == ~uint64_t{0}) {
    return;
  }
  if (num_words_ > stride_) {
    for (uint64_t& w : tail_.back()) { // empty when the word was trimmed
      w &= mask;
    }
    return;
  }
  if (base_freed_) {
    return; // every base word (including the last) was trimmed
  }
  uint64_t* last = data_.data() + num_words_ - 1u;
  for (std::size_t n = 0; n < num_nodes_; ++n, last += stride_) {
    *last &= mask;
  }
}

void signature_store::trim_words(std::size_t first_live)
{
  first_live = std::min(first_live, num_words_);
  if (first_live <= first_live_) {
    return;
  }
  first_live_ = first_live;
  if (!base_freed_ && stride_ > 0u && first_live >= stride_) {
    // Every base word is absorbed: drop the whole node-major arena.
    std::vector<uint64_t>{}.swap(data_);
    base_freed_ = true;
  }
  while (tail_freed_ < tail_.size() &&
         stride_ + tail_freed_ < first_live) {
    std::vector<uint64_t>{}.swap(tail_[tail_freed_]);
    ++tail_freed_;
  }
}

} // namespace stps::sim
