#include "sim/patterns.hpp"

#include <random>
#include <stdexcept>

namespace stps::sim {

pattern_set::pattern_set(uint32_t num_inputs)
    : num_inputs_{num_inputs}, bits_(num_inputs)
{
}

pattern_set pattern_set::random(uint32_t num_inputs, uint64_t num_patterns,
                                uint64_t seed)
{
  pattern_set p{num_inputs};
  p.num_patterns_ = num_patterns;
  const std::size_t words = p.num_words();
  std::mt19937_64 rng{seed};
  const uint64_t tail_mask = (num_patterns % 64u) == 0u
                                 ? ~uint64_t{0}
                                 : (uint64_t{1} << (num_patterns % 64u)) - 1u;
  for (auto& row : p.bits_) {
    row.resize(words);
    for (auto& w : row) {
      w = rng();
    }
    if (!row.empty()) {
      row.back() &= tail_mask;
    }
  }
  return p;
}

pattern_set pattern_set::exhaustive(uint32_t num_inputs)
{
  if (num_inputs > 20u) {
    throw std::invalid_argument{"exhaustive: too many inputs"};
  }
  pattern_set p{num_inputs};
  p.num_patterns_ = uint64_t{1} << num_inputs;
  const std::size_t words = p.num_words();
  for (uint32_t input = 0; input < num_inputs; ++input) {
    auto& row = p.bits_[input];
    row.resize(words);
    if (input < 6u) {
      // Repeating in-word projection masks.
      static constexpr uint64_t masks[6] = {
          0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull,
          0xf0f0f0f0f0f0f0f0ull, 0xff00ff00ff00ff00ull,
          0xffff0000ffff0000ull, 0xffffffff00000000ull};
      for (auto& w : row) {
        w = masks[input];
      }
    } else {
      const std::size_t period = std::size_t{1} << (input - 6u);
      for (std::size_t i = 0; i < words; ++i) {
        row[i] = (i / period) & 1u ? ~uint64_t{0} : 0u;
      }
    }
    if (p.num_patterns_ < 64u) {
      row.back() &= (uint64_t{1} << p.num_patterns_) - 1u;
    }
  }
  return p;
}

std::span<const uint64_t> pattern_set::input_bits(uint32_t input) const
{
  return bits_.at(input);
}

bool pattern_set::bit(uint32_t input, uint64_t pattern) const
{
  return (bits_.at(input)[pattern >> 6u] >> (pattern & 63u)) & 1u;
}

void pattern_set::add_pattern(const std::vector<bool>& assignment)
{
  if (assignment.size() != num_inputs_) {
    throw std::invalid_argument{"add_pattern: arity mismatch"};
  }
  const uint64_t index = num_patterns_++;
  const std::size_t word = index >> 6u;
  const uint64_t mask = uint64_t{1} << (index & 63u);
  for (uint32_t i = 0; i < num_inputs_; ++i) {
    if (bits_[i].size() <= word) {
      bits_[i].resize(word + 1u, 0u);
    }
    if (assignment[i]) {
      bits_[i][word] |= mask;
    }
  }
}

} // namespace stps::sim
