#include "sim/patterns.hpp"

#include "sim/signature_store.hpp" // tail_mask

#include <algorithm>
#include <cassert>
#include <random>
#include <stdexcept>

namespace stps::sim {

pattern_set::pattern_set(uint32_t num_inputs) : num_inputs_{num_inputs} {}

void pattern_set::grow_stride(std::size_t words)
{
  if (words <= stride_) {
    return;
  }
  assert(tail_.empty() && !base_freed_ &&
         "grow_stride(): pattern set has tail words");
  const std::size_t new_stride =
      std::max({words, stride_ * 2u, std::size_t{2}});
  std::vector<uint64_t> grown(
      static_cast<std::size_t>(num_inputs_) * new_stride, 0u);
  const std::size_t valid = std::min(num_words(), stride_);
  for (uint32_t i = 0; i < num_inputs_; ++i) {
    std::copy_n(bits_.data() + static_cast<std::size_t>(i) * stride_, valid,
                grown.data() + static_cast<std::size_t>(i) * new_stride);
  }
  bits_ = std::move(grown);
  stride_ = new_stride;
}

uint64_t* pattern_set::writable_word_block(std::size_t word)
{
  assert(word >= first_live_ && "writable_word_block(): word was recycled");
  if (word < stride_) {
    return nullptr; // base words are written input-major via row_data
  }
  while (stride_ + tail_.size() <= word) {
    if (!ring_.empty()) {
      // Reuse an absorbed counter-example word's block (the ring).
      std::vector<uint64_t>& block = ring_.back();
      std::fill(block.begin(), block.end(), 0u);
      tail_.push_back(std::move(block));
      ring_.pop_back();
    } else {
      tail_.emplace_back(num_inputs_, 0u);
      ++tail_blocks_allocated_;
    }
  }
  return tail_[word - stride_].data();
}

pattern_set pattern_set::random(uint32_t num_inputs, uint64_t num_patterns,
                                uint64_t seed)
{
  pattern_set p{num_inputs};
  p.num_patterns_ = num_patterns;
  const std::size_t words = p.num_words();
  p.grow_stride(words);
  std::mt19937_64 rng{seed};
  const uint64_t tail = tail_mask(num_patterns);
  for (uint32_t i = 0; i < num_inputs; ++i) {
    uint64_t* row = p.row_data(i);
    for (std::size_t w = 0; w < words; ++w) {
      row[w] = rng();
    }
    if (words != 0u) {
      row[words - 1u] &= tail;
    }
  }
  return p;
}

pattern_set pattern_set::exhaustive(uint32_t num_inputs)
{
  if (num_inputs > 20u) {
    throw std::invalid_argument{"exhaustive: too many inputs"};
  }
  pattern_set p{num_inputs};
  p.num_patterns_ = uint64_t{1} << num_inputs;
  const std::size_t words = p.num_words();
  p.grow_stride(words);
  for (uint32_t input = 0; input < num_inputs; ++input) {
    uint64_t* row = p.row_data(input);
    if (input < 6u) {
      // Repeating in-word projection masks.
      static constexpr uint64_t masks[6] = {
          0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull,
          0xf0f0f0f0f0f0f0f0ull, 0xff00ff00ff00ff00ull,
          0xffff0000ffff0000ull, 0xffffffff00000000ull};
      for (std::size_t w = 0; w < words; ++w) {
        row[w] = masks[input];
      }
    } else {
      const std::size_t period = std::size_t{1} << (input - 6u);
      for (std::size_t i = 0; i < words; ++i) {
        row[i] = (i / period) & 1u ? ~uint64_t{0} : 0u;
      }
    }
    if (p.num_patterns_ < 64u) {
      row[words - 1u] &= (uint64_t{1} << p.num_patterns_) - 1u;
    }
  }
  return p;
}

std::span<const uint64_t> pattern_set::input_bits(uint32_t input) const
{
  if (input >= num_inputs_) {
    throw std::out_of_range{"input_bits: no such input"};
  }
  // The contiguous base-arena view cannot represent tail blocks or a
  // trimmed base: returning it anyway would silently hand back stale
  // (or freed) words for every counter-example pattern.  Callers on
  // sets past their initial-simulation phase must use input_word /
  // copy_input_bits; reaching here with tail words is a logic bug and
  // fails loudly in every build type.
  if (num_words() > stride_ || base_freed_) {
    throw std::logic_error{
        "input_bits: pattern set has counter-example tail words — "
        "use input_word/copy_input_bits"};
  }
  return {row_data(input), num_words()};
}

void pattern_set::copy_input_bits(uint32_t input,
                                  std::span<uint64_t> out) const
{
  if (input >= num_inputs_) {
    throw std::out_of_range{"copy_input_bits: no such input"};
  }
  const std::size_t base = std::min(out.size(), stride_);
  if (base_freed_) {
    std::fill_n(out.data(), base, uint64_t{0});
  } else {
    std::copy_n(row_data(input), base, out.data());
  }
  for (std::size_t w = base; w < out.size(); ++w) {
    out[w] = input_word(input, w);
  }
}

bool pattern_set::bit(uint32_t input, uint64_t pattern) const
{
  if (input >= num_inputs_) {
    throw std::out_of_range{"bit: no such input"};
  }
  return (input_word(input, pattern >> 6u) >> (pattern & 63u)) & 1u;
}

void pattern_set::reserve_patterns(uint64_t total_patterns)
{
  if (!tail_.empty() || base_freed_) {
    return; // tail blocks are per-word; nothing to pre-grow
  }
  grow_stride((total_patterns + 63u) / 64u);
}

void pattern_set::add_pattern(const std::vector<bool>& assignment)
{
  if (assignment.size() != num_inputs_) {
    throw std::invalid_argument{"add_pattern: arity mismatch"};
  }
  const uint64_t index = num_patterns_;
  const std::size_t word = index >> 6u;
  const uint64_t mask = uint64_t{1} << (index & 63u);
  // Words within the base capacity stay input-major; the first spill
  // past it starts the word-major tail (never a base repack).
  uint64_t* block = nullptr;
  if (word >= stride_) {
    block = writable_word_block(word);
  } else {
    assert(!base_freed_ && "add_pattern: base arena was trimmed");
  }
  ++num_patterns_;
  for (uint32_t i = 0; i < num_inputs_; ++i) {
    if (assignment[i]) {
      if (block != nullptr) {
        block[i] |= mask;
      } else {
        row_data(i)[word] |= mask;
      }
    }
  }
}

void pattern_set::add_patterns(std::span<const std::vector<bool>> assignments)
{
  reserve_patterns(num_patterns_ + assignments.size());
  for (const auto& a : assignments) {
    add_pattern(a);
  }
}

void pattern_set::trim_words(std::size_t first_live)
{
  first_live = std::min(first_live, num_words());
  if (first_live <= first_live_) {
    return;
  }
  first_live_ = first_live;
  if (!base_freed_ && stride_ > 0u && first_live >= stride_ &&
      num_words() > 0u) {
    std::vector<uint64_t>{}.swap(bits_);
    base_freed_ = true;
  }
  while (tail_freed_ < tail_.size() && stride_ + tail_freed_ < first_live) {
    // Absorbed counter-example word: its block goes back to the ring.
    ring_.push_back(std::move(tail_[tail_freed_]));
    tail_[tail_freed_].clear();
    tail_[tail_freed_].shrink_to_fit();
    ++tail_freed_;
    ++words_recycled_;
  }
}

} // namespace stps::sim
