#include "sim/bitwise_sim.hpp"

#include "sim/simd.hpp"

#include <cassert>
#include <stdexcept>
#include <vector>

namespace stps::sim {

signature_store simulate_aig(const net::aig_network& aig,
                             const pattern_set& patterns)
{
  if (patterns.num_inputs() != aig.num_pis()) {
    throw std::invalid_argument{"simulate_aig: input count mismatch"};
  }
  const std::size_t words = patterns.num_words();
  signature_store sig(aig.size(), words);
  // Row 0 (constant zero) stays zero.  copy_input_bits stays valid when
  // counter-example words spilled into pattern tail blocks.
  aig.foreach_pi(
      [&](net::node n) { patterns.copy_input_bits(n - 1u, sig.row(n)); });
  aig.foreach_gate([&](net::node n) {
    const net::signal a = aig.fanin0(n);
    const net::signal b = aig.fanin1(n);
    const uint64_t* sa = sig.row(a.get_node()).data();
    const uint64_t* sb = sig.row(b.get_node()).data();
    uint64_t* out = sig.row(n).data();
    const uint64_t ca = a.is_complemented() ? ~uint64_t{0} : 0u;
    const uint64_t cb = b.is_complemented() ? ~uint64_t{0} : 0u;
    simd::and_words(out, sa, ca, sb, cb, words);
  });
  sig.mask_tail(patterns.num_patterns());
  return sig;
}

signature_store simulate_klut_bitwise(const net::klut_network& klut,
                                      const pattern_set& patterns)
{
  if (patterns.num_inputs() != klut.num_pis()) {
    throw std::invalid_argument{"simulate_klut_bitwise: input mismatch"};
  }
  const std::size_t words = patterns.num_words();
  const uint64_t n_pat = patterns.num_patterns();
  signature_store sig(klut.size(), words);
  sig.fill_row(1u, ~uint64_t{0}); // constant one
  klut.foreach_pi([&](net::klut_network::node n) {
    patterns.copy_input_bits(n - 2u, sig.row(n));
  });
  std::vector<const uint64_t*> ins;
  klut.foreach_gate([&](net::klut_network::node n) {
    const auto& fis = klut.fanins(n);
    const uint64_t* tw = klut.table(n).words().data();
    uint64_t* out = sig.row(n).data();
    ins.resize(fis.size());
    for (std::size_t i = 0; i < fis.size(); ++i) {
      ins[i] = sig.row(fis[i]).data();
    }
    // The conventional path: per pattern, extract each input bit,
    // assemble the LUT index, look up one bit.
    const std::size_t k = fis.size();
    for (uint64_t p = 0; p < n_pat; ++p) {
      const uint64_t word = p >> 6u;
      const uint64_t bit = p & 63u;
      uint64_t index = 0;
      for (std::size_t i = 0; i < k; ++i) {
        index |= ((ins[i][word] >> bit) & 1u) << i;
      }
      out[word] |= ((tw[index >> 6u] >> (index & 63u)) & 1u) << bit;
    }
  });
  sig.mask_tail(n_pat);
  return sig;
}

void resimulate_aig_last_word(const net::aig_network& aig,
                              const pattern_set& patterns,
                              signature_store& signatures)
{
  const std::size_t words = patterns.num_words();
  if (words == 0u) {
    return;
  }
  if (signatures.size() < aig.size()) {
    throw std::invalid_argument{"resimulate_aig_last_word: store too small"};
  }
  while (signatures.num_words() < words) {
    signatures.append_word();
  }
  const std::size_t last = words - 1u;
  signatures.word(0u, last) = 0u;
  aig.foreach_pi([&](net::node n) {
    signatures.word(n, last) = patterns.input_word(n - 1u, last);
  });
  aig.foreach_gate([&](net::node n) {
    const net::signal a = aig.fanin0(n);
    const net::signal b = aig.fanin1(n);
    const uint64_t va = signatures.word(a.get_node(), last) ^
                        (a.is_complemented() ? ~uint64_t{0} : 0u);
    const uint64_t vb = signatures.word(b.get_node(), last) ^
                        (b.is_complemented() ? ~uint64_t{0} : 0u);
    signatures.word(n, last) = va & vb;
  });
  signatures.mask_tail(patterns.num_patterns());
}

void resimulate_aig_all_last_word(const net::aig_network& aig,
                                  const pattern_set& patterns,
                                  signature_store& signatures)
{
  const std::size_t words = patterns.num_words();
  if (words == 0u) {
    return;
  }
  if (signatures.size() < aig.size()) {
    throw std::invalid_argument{
        "resimulate_aig_all_last_word: store too small"};
  }
  while (signatures.num_words() < words) {
    signatures.append_word();
  }
  const std::size_t last = words - 1u;
  const uint32_t num_pis = aig.num_pis();
  const std::size_t size = aig.size();
  if (last >= signatures.base_words()) {
    // Fully word-major store (the CE-engine case): one contiguous block
    // holds every node's bits of the recomputed word.
    uint64_t* const wb = signatures.tail_word(last).data();
    wb[0] = 0u;
    for (uint32_t i = 0; i < num_pis; ++i) {
      wb[aig.pi_at(i)] = patterns.input_word(i, last);
    }
    // Ids are topological and every fanin id is smaller, dead or not.
    for (net::node n = 1u + num_pis; n < size; ++n) {
      const net::signal a = aig.fanin0(n);
      const net::signal b = aig.fanin1(n);
      const uint64_t va =
          wb[a.get_node()] ^ (a.is_complemented() ? ~uint64_t{0} : 0u);
      const uint64_t vb =
          wb[b.get_node()] ^ (b.is_complemented() ? ~uint64_t{0} : 0u);
      wb[n] = va & vb;
    }
  } else {
    signatures.word(0u, last) = 0u;
    for (uint32_t i = 0; i < num_pis; ++i) {
      signatures.word(aig.pi_at(i), last) = patterns.input_word(i, last);
    }
    for (net::node n = 1u + num_pis; n < size; ++n) {
      const net::signal a = aig.fanin0(n);
      const net::signal b = aig.fanin1(n);
      const uint64_t va = signatures.word(a.get_node(), last) ^
                          (a.is_complemented() ? ~uint64_t{0} : 0u);
      const uint64_t vb = signatures.word(b.get_node(), last) ^
                          (b.is_complemented() ? ~uint64_t{0} : 0u);
      signatures.word(n, last) = va & vb;
    }
  }
  signatures.mask_tail(patterns.num_patterns());
}

resim_plan make_resim_plan(const net::aig_network& aig)
{
  resim_plan plan;
  plan.size = static_cast<uint32_t>(aig.size());
  plan.first = 1u + aig.num_pis();
  plan.lit0.assign(plan.size, 0u);
  plan.lit1.assign(plan.size, 0u);
  const uint32_t blocks =
      plan.size > plan.first ? (plan.size - plan.first) / 4u : 0u;
  plan.safe4.assign(blocks / 64u + 1u, 0u);
  // Gather indices are 32-bit; ids beyond 2^31 would wrap, so such
  // networks simply get an all-unsafe (scalar) bitmap.
  const bool gather_safe = plan.size < (uint32_t{1} << 31u);
  for (uint32_t n = plan.first; n < plan.size; ++n) {
    const net::signal a = aig.fanin0(n);
    const net::signal b = aig.fanin1(n);
    plan.lit0[n] = (a.get_node() << 1u) | (a.is_complemented() ? 1u : 0u);
    plan.lit1[n] = (b.get_node() << 1u) | (b.is_complemented() ? 1u : 0u);
  }
  if (gather_safe) {
    for (uint32_t bk = 0; bk < blocks; ++bk) {
      const uint32_t n0 = plan.first + 4u * bk;
      bool safe = true;
      for (uint32_t n = n0; n < n0 + 4u; ++n) {
        if ((plan.lit0[n] >> 1u) >= n0 || (plan.lit1[n] >> 1u) >= n0) {
          safe = false;
          break;
        }
      }
      if (safe) {
        plan.safe4[bk >> 6u] |= uint64_t{1} << (bk & 63u);
      }
    }
  }
  return plan;
}

void resimulate_aig_all_last_word(const net::aig_network& aig,
                                  const pattern_set& patterns,
                                  signature_store& signatures,
                                  const resim_plan& plan)
{
  const std::size_t words = patterns.num_words();
  if (words == 0u) {
    return;
  }
  if (signatures.size() < aig.size() || plan.size != aig.size()) {
    throw std::invalid_argument{
        "resimulate_aig_all_last_word: store/plan size mismatch"};
  }
  while (signatures.num_words() < words) {
    signatures.append_word();
  }
  const std::size_t last = words - 1u;
  if (last < signatures.base_words()) {
    // Node-major at the open word: no contiguous word block to
    // vectorize over; the plain variant handles it.
    resimulate_aig_all_last_word(aig, patterns, signatures);
    return;
  }
  uint64_t* const wb = signatures.tail_word(last).data();
  wb[0] = 0u;
  const uint32_t num_pis = aig.num_pis();
  for (uint32_t i = 0; i < num_pis; ++i) {
    wb[aig.pi_at(i)] = patterns.input_word(i, last);
  }
  simd::resim_words(wb, plan.lit0.data(), plan.lit1.data(), plan.first,
                    plan.size, plan.safe4.data());
  signatures.mask_tail(patterns.num_patterns());
}

bool evaluate_aig_node(const net::aig_network& aig, net::node n,
                       std::span<const bool> assignment)
{
  if (assignment.size() != aig.num_pis()) {
    throw std::invalid_argument{"evaluate_aig_node: arity mismatch"};
  }
  std::vector<uint8_t> value(aig.size(), 0u);
  std::vector<uint8_t> known(aig.size(), 0u);
  known[0] = 1u;
  aig.foreach_pi([&](net::node pi) {
    value[pi] = assignment[pi - 1u] ? 1u : 0u;
    known[pi] = 1u;
  });
  aig.foreach_gate([&](net::node g) {
    const net::signal a = aig.fanin0(g);
    const net::signal b = aig.fanin1(g);
    assert(known[a.get_node()] && known[b.get_node()]);
    const bool va = value[a.get_node()] ^ a.is_complemented();
    const bool vb = value[b.get_node()] ^ b.is_complemented();
    value[g] = va && vb;
    known[g] = 1u;
  });
  return value[n];
}

} // namespace stps::sim
