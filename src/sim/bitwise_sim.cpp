#include "sim/bitwise_sim.hpp"

#include <cassert>
#include <stdexcept>
#include <vector>

namespace stps::sim {

namespace {

/// Re-establishes the canonical-tail invariant on every signature row.
void mask_tails(signature_table& sig, uint64_t num_patterns,
                std::size_t words)
{
  if (words == 0u) {
    return;
  }
  const uint64_t mask = tail_mask(num_patterns);
  for (auto& row : sig) {
    if (row.size() == words) {
      row.back() &= mask;
    }
  }
}

} // namespace


signature_table simulate_aig(const net::aig_network& aig,
                             const pattern_set& patterns)
{
  if (patterns.num_inputs() != aig.num_pis()) {
    throw std::invalid_argument{"simulate_aig: input count mismatch"};
  }
  const std::size_t words = patterns.num_words();
  signature_table sig(aig.size());
  sig[0].assign(words, 0u); // constant zero
  aig.foreach_pi([&](net::node n) {
    const auto row = patterns.input_bits(n - 1u);
    sig[n].assign(row.begin(), row.end());
  });
  aig.foreach_gate([&](net::node n) {
    const net::signal a = aig.fanin0(n);
    const net::signal b = aig.fanin1(n);
    const auto& sa = sig[a.get_node()];
    const auto& sb = sig[b.get_node()];
    auto& out = sig[n];
    out.resize(words);
    const uint64_t ca = a.is_complemented() ? ~uint64_t{0} : 0u;
    const uint64_t cb = b.is_complemented() ? ~uint64_t{0} : 0u;
    for (std::size_t w = 0; w < words; ++w) {
      out[w] = (sa[w] ^ ca) & (sb[w] ^ cb);
    }
  });
  mask_tails(sig, patterns.num_patterns(), words);
  return sig;
}

signature_table simulate_klut_bitwise(const net::klut_network& klut,
                                      const pattern_set& patterns)
{
  if (patterns.num_inputs() != klut.num_pis()) {
    throw std::invalid_argument{"simulate_klut_bitwise: input mismatch"};
  }
  const std::size_t words = patterns.num_words();
  const uint64_t n_pat = patterns.num_patterns();
  signature_table sig(klut.size());
  sig[0].assign(words, 0u);
  sig[1].assign(words, ~uint64_t{0});
  if (words != 0u && (n_pat % 64u) != 0u) {
    sig[1].back() = (uint64_t{1} << (n_pat % 64u)) - 1u;
  }
  klut.foreach_pi([&](net::klut_network::node n) {
    const auto row = patterns.input_bits(n - 2u);
    sig[n].assign(row.begin(), row.end());
  });
  std::vector<const uint64_t*> ins;
  klut.foreach_gate([&](net::klut_network::node n) {
    const auto& fis = klut.fanins(n);
    const uint64_t* tw = klut.table(n).words().data();
    auto& out = sig[n];
    out.assign(words, 0u);
    ins.resize(fis.size());
    for (std::size_t i = 0; i < fis.size(); ++i) {
      ins[i] = sig[fis[i]].data();
    }
    // The conventional path: per pattern, extract each input bit,
    // assemble the LUT index, look up one bit.
    const std::size_t k = fis.size();
    for (uint64_t p = 0; p < n_pat; ++p) {
      const uint64_t word = p >> 6u;
      const uint64_t bit = p & 63u;
      uint64_t index = 0;
      for (std::size_t i = 0; i < k; ++i) {
        index |= ((ins[i][word] >> bit) & 1u) << i;
      }
      out[word] |= ((tw[index >> 6u] >> (index & 63u)) & 1u) << bit;
    }
  });
  return sig;
}

void resimulate_aig_last_word(const net::aig_network& aig,
                              const pattern_set& patterns,
                              signature_table& signatures)
{
  const std::size_t words = patterns.num_words();
  if (words == 0u) {
    return;
  }
  const std::size_t last = words - 1u;
  if (signatures.size() < aig.size()) {
    signatures.resize(aig.size());
  }
  auto grow = [&](std::vector<uint64_t>& row) {
    if (row.size() < words) {
      row.resize(words, 0u);
    }
  };
  grow(signatures[0]);
  signatures[0][last] = 0u;
  aig.foreach_pi([&](net::node n) {
    grow(signatures[n]);
    signatures[n][last] = patterns.input_bits(n - 1u)[last];
  });
  aig.foreach_gate([&](net::node n) {
    const net::signal a = aig.fanin0(n);
    const net::signal b = aig.fanin1(n);
    grow(signatures[n]);
    const uint64_t va = signatures[a.get_node()][last] ^
                        (a.is_complemented() ? ~uint64_t{0} : 0u);
    const uint64_t vb = signatures[b.get_node()][last] ^
                        (b.is_complemented() ? ~uint64_t{0} : 0u);
    signatures[n][last] = va & vb;
  });
  const uint64_t mask = tail_mask(patterns.num_patterns());
  for (auto& row : signatures) {
    if (row.size() == words) {
      row.back() &= mask;
    }
  }
}

bool evaluate_aig_node(const net::aig_network& aig, net::node n,
                       std::span<const bool> assignment)
{
  if (assignment.size() != aig.num_pis()) {
    throw std::invalid_argument{"evaluate_aig_node: arity mismatch"};
  }
  std::vector<uint8_t> value(aig.size(), 0u);
  std::vector<uint8_t> known(aig.size(), 0u);
  known[0] = 1u;
  aig.foreach_pi([&](net::node pi) {
    value[pi] = assignment[pi - 1u] ? 1u : 0u;
    known[pi] = 1u;
  });
  aig.foreach_gate([&](net::node g) {
    const net::signal a = aig.fanin0(g);
    const net::signal b = aig.fanin1(g);
    assert(known[a.get_node()] && known[b.get_node()]);
    const bool va = value[a.get_node()] ^ a.is_complemented();
    const bool vb = value[b.get_node()] ^ b.is_complemented();
    value[g] = va && vb;
    known[g] = 1u;
  });
  return value[n];
}

} // namespace stps::sim
