/// \file patterns.hpp
/// \brief Simulation pattern sets and node signatures.
///
/// A *simulation pattern* assigns one Boolean value per primary input
/// (§II-A); a pattern set packs many patterns word-parallel, 64 per
/// machine word, pattern i at bit position i of each input's bit string.
/// A *signature* is the ordered set of values a node produces under the
/// pattern set; exhaustive sets make signatures truth tables.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace stps::sim {

/// Word-packed pattern set for a fixed number of inputs.
class pattern_set
{
public:
  pattern_set() = default;
  /// Empty set (0 patterns) over \p num_inputs inputs.
  explicit pattern_set(uint32_t num_inputs);

  /// Uniformly random patterns (deterministic in \p seed).
  static pattern_set random(uint32_t num_inputs, uint64_t num_patterns,
                            uint64_t seed);

  /// All 2^num_inputs input combinations (num_inputs ≤ 20); pattern i
  /// assigns input j the j-th bit of i.
  static pattern_set exhaustive(uint32_t num_inputs);

  uint32_t num_inputs() const noexcept { return num_inputs_; }
  uint64_t num_patterns() const noexcept { return num_patterns_; }
  std::size_t num_words() const noexcept
  {
    return (num_patterns_ + 63u) / 64u;
  }

  /// Bit string of \p input (num_words() words; trailing bits zero).
  std::span<const uint64_t> input_bits(uint32_t input) const;

  bool bit(uint32_t input, uint64_t pattern) const;

  /// Appends one pattern (e.g. a SAT counter-example, §I).
  void add_pattern(const std::vector<bool>& assignment);

private:
  uint32_t num_inputs_ = 0;
  uint64_t num_patterns_ = 0;
  std::vector<std::vector<uint64_t>> bits_; // [input][word]
};

/// Per-node signatures produced by a simulator run: `sig[node]` has one
/// word per 64 patterns, aligned with the pattern set.  Simulators
/// guarantee the *canonical tail* invariant: bits at positions at or
/// beyond `num_patterns` in the final word are zero, so whole-word
/// signature comparison is meaningful.
using signature_table = std::vector<std::vector<uint64_t>>;

/// Mask selecting the valid bits of the final signature word.
constexpr uint64_t tail_mask(uint64_t num_patterns) noexcept
{
  return (num_patterns % 64u) == 0u
             ? ~uint64_t{0}
             : (uint64_t{1} << (num_patterns % 64u)) - 1u;
}

} // namespace stps::sim
