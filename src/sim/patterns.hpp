/// \file patterns.hpp
/// \brief Simulation pattern sets and node signatures.
///
/// A *simulation pattern* assigns one Boolean value per primary input
/// (§II-A); a pattern set packs many patterns word-parallel, 64 per
/// machine word, pattern i at bit position i of each input's bit string.
/// A *signature* is the ordered set of values a node produces under the
/// pattern set (see signature_store.hpp); exhaustive sets make
/// signatures truth tables.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace stps::sim {

/// Word-packed pattern set for a fixed number of inputs.  Bit strings of
/// all inputs live in one flat input-major buffer with grow-by-word
/// headroom, so appending counter-example patterns (§I) never reallocates
/// per input.
class pattern_set
{
public:
  pattern_set() = default;
  /// Empty set (0 patterns) over \p num_inputs inputs.
  explicit pattern_set(uint32_t num_inputs);

  /// Uniformly random patterns (deterministic in \p seed).
  static pattern_set random(uint32_t num_inputs, uint64_t num_patterns,
                            uint64_t seed);

  /// All 2^num_inputs input combinations (num_inputs ≤ 20); pattern i
  /// assigns input j the j-th bit of i.
  static pattern_set exhaustive(uint32_t num_inputs);

  uint32_t num_inputs() const noexcept { return num_inputs_; }
  uint64_t num_patterns() const noexcept { return num_patterns_; }
  std::size_t num_words() const noexcept
  {
    return (num_patterns_ + 63u) / 64u;
  }

  /// Bit string of \p input (num_words() words; trailing bits zero).
  std::span<const uint64_t> input_bits(uint32_t input) const;

  bool bit(uint32_t input, uint64_t pattern) const;

  /// Pre-allocates word capacity for \p total_patterns patterns.
  void reserve_patterns(uint64_t total_patterns);

  /// Appends one pattern (e.g. a SAT counter-example, §I).
  void add_pattern(const std::vector<bool>& assignment);

  /// Bulk-appends patterns with a single capacity grow (used when
  /// counter-examples are batched before re-simulation).
  void add_patterns(std::span<const std::vector<bool>> assignments);

private:
  uint64_t* row_data(uint32_t input) noexcept
  {
    return bits_.data() + static_cast<std::size_t>(input) * stride_;
  }
  const uint64_t* row_data(uint32_t input) const noexcept
  {
    return bits_.data() + static_cast<std::size_t>(input) * stride_;
  }
  /// Grows the per-input stride to at least \p words (geometric).
  void grow_stride(std::size_t words);

  uint32_t num_inputs_ = 0;
  uint64_t num_patterns_ = 0;
  std::size_t stride_ = 0;            // words allocated per input
  std::vector<uint64_t> bits_;        // flat [input-major] bit strings
};

} // namespace stps::sim
