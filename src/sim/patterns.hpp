/// \file patterns.hpp
/// \brief Simulation pattern sets and node signatures.
///
/// A *simulation pattern* assigns one Boolean value per primary input
/// (§II-A); a pattern set packs many patterns word-parallel, 64 per
/// machine word, pattern i at bit position i of each input's bit string.
/// A *signature* is the ordered set of values a node produces under the
/// pattern set (see signature_store.hpp); exhaustive sets make
/// signatures truth tables.
///
/// **Layout and the counter-example ring.**  The words dimensioned at
/// construction time (the *base* — the initial random or exhaustive
/// patterns) live in one flat input-major arena at a fixed stride.
/// Words appended later by `add_pattern` (SAT counter-examples, §I) live
/// in *word-major tail blocks*: one flat `num_inputs`-sized block per
/// appended word, exactly mirroring `sim::signature_store`.  Appending
/// therefore never repacks the input-major arena, and one
/// counter-example's bits — one bit per input of the single open word —
/// land in one contiguous block.
///
/// Sweeping absorbs each counter-example word into its equivalence
/// classes and never reads it again; `trim_words(first_live)` *recycles*
/// absorbed words, mirroring `signature_store::trim_words` but returning
/// each tail block to a free ring instead of the allocator — the next
/// appended word reuses it.  With the sweeper trimming at its word
/// budget, the pattern set's live footprint is bounded for the whole
/// sweep no matter how many counter-examples arrive (the last unbounded
/// per-sweep structure on the path to ≥ 1M gates).  Indices stay
/// absolute: `num_words()` never shrinks and reading a recycled word
/// yields 0.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace stps::sim {

/// Word-packed pattern set for a fixed number of inputs.
class pattern_set
{
public:
  pattern_set() = default;
  /// Empty set (0 patterns) over \p num_inputs inputs.
  explicit pattern_set(uint32_t num_inputs);

  /// Uniformly random patterns (deterministic in \p seed).
  static pattern_set random(uint32_t num_inputs, uint64_t num_patterns,
                            uint64_t seed);

  /// All 2^num_inputs input combinations (num_inputs ≤ 20); pattern i
  /// assigns input j the j-th bit of i.
  static pattern_set exhaustive(uint32_t num_inputs);

  uint32_t num_inputs() const noexcept { return num_inputs_; }
  uint64_t num_patterns() const noexcept { return num_patterns_; }
  std::size_t num_words() const noexcept
  {
    return (num_patterns_ + 63u) / 64u;
  }
  /// Words living in the input-major base arena; words at or beyond this
  /// index live in word-major tail blocks.
  std::size_t base_words() const noexcept { return stride_; }

  /// Word \p w of \p input's bit string; dispatches across the base
  /// arena and the tail blocks, and yields 0 for recycled words.
  uint64_t input_word(uint32_t input, std::size_t w) const noexcept
  {
    if (w < stride_) {
      return base_freed_ ? 0u
                         : bits_[static_cast<std::size_t>(input) * stride_ + w];
    }
    const std::vector<uint64_t>& t = tail_[w - stride_];
    return t.empty() ? 0u : t[input];
  }

  /// Contiguous bit string of \p input (num_words() words; trailing bits
  /// zero).  Valid only while every word lives in the base arena — i.e.
  /// before any counter-example spilled into a tail block and before any
  /// trim — which holds for every initial-simulation use.
  std::span<const uint64_t> input_bits(uint32_t input) const;

  /// Copies \p input's first `out.size()` words into \p out (≤
  /// num_words()): one bulk copy for the base arena, per-word dispatch
  /// for tail words — the simulators' PI-row load, valid on pattern
  /// sets with appended counter-example words.
  void copy_input_bits(uint32_t input, std::span<uint64_t> out) const;

  bool bit(uint32_t input, uint64_t pattern) const;

  /// Pre-allocates base capacity for \p total_patterns patterns; no-op
  /// once tail words exist (tail blocks are per-word already).
  void reserve_patterns(uint64_t total_patterns);

  /// Appends one pattern (e.g. a SAT counter-example, §I).
  void add_pattern(const std::vector<bool>& assignment);

  /// Bulk-appends patterns (counter-examples batched before
  /// re-simulation).
  void add_patterns(std::span<const std::vector<bool>> assignments);

  /// \name Memory budget: the counter-example ring
  /// \{
  /// Recycles the storage of every word with index < \p first_live
  /// (clamped to `num_words()`): tail blocks return to the free ring for
  /// the next appended word, the input-major base arena is freed as a
  /// whole once every base word is absorbed.  Indices are absolute and
  /// monotone, exactly as in `signature_store::trim_words`.
  void trim_words(std::size_t first_live);

  /// First word whose storage is guaranteed live (0 when never trimmed).
  std::size_t first_live_word() const noexcept { return first_live_; }
  /// Words whose backing storage was recycled or freed.
  std::size_t words_trimmed() const noexcept
  {
    return (base_freed_ ? stride_ : 0u) + tail_freed_;
  }
  /// Words still backed by storage.
  std::size_t live_words() const noexcept
  {
    return num_words() - words_trimmed();
  }
  /// Absorbed counter-example words whose block went back to the ring
  /// (each saves one allocation on a later append).
  std::size_t words_recycled() const noexcept { return words_recycled_; }
  /// Tail blocks ever allocated fresh; with the ring this stays near the
  /// live-word budget instead of growing with the CE count.
  std::size_t tail_blocks_allocated() const noexcept
  {
    return tail_blocks_allocated_;
  }
  /// \}

private:
  uint64_t* row_data(uint32_t input) noexcept
  {
    return bits_.data() + static_cast<std::size_t>(input) * stride_;
  }
  const uint64_t* row_data(uint32_t input) const noexcept
  {
    return bits_.data() + static_cast<std::size_t>(input) * stride_;
  }
  /// Grows the base stride to at least \p words; only legal while every
  /// word still lives in the base arena.
  void grow_stride(std::size_t words);
  /// Makes word \p word writable, appending tail blocks (recycled from
  /// the ring when possible) as needed.
  uint64_t* writable_word_block(std::size_t word);

  uint32_t num_inputs_ = 0;
  uint64_t num_patterns_ = 0;
  std::size_t stride_ = 0;            // base words allocated per input
  std::vector<uint64_t> bits_;        // flat input-major base arena
  std::vector<std::vector<uint64_t>> tail_; // word-major appended words
  std::vector<std::vector<uint64_t>> ring_; // recycled blocks, ready to reuse
  std::size_t first_live_ = 0;        // trim high-water mark
  std::size_t tail_freed_ = 0;        // leading tail blocks recycled
  bool base_freed_ = false;
  std::size_t words_recycled_ = 0;
  std::size_t tail_blocks_allocated_ = 0;
};

} // namespace stps::sim
