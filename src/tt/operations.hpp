/// \file operations.hpp
/// \brief Algebra on truth tables: Boolean connectives, cofactors,
/// composition, and the standard constructors (constants, projections,
/// elementary gates, majority, random tables).
///
/// These operations are the bit-parallel primitives the *baseline*
/// simulator (src/sim) uses and the functional content the STP layer
/// (src/stp) re-expresses as logic matrices.
#pragma once

#include "tt/truth_table.hpp"

#include <cstdint>
#include <span>

namespace stps::tt {

/// Constant-0 / constant-1 tables over \p num_vars variables.
truth_table make_const0(uint32_t num_vars);
truth_table make_const1(uint32_t num_vars);

/// Projection x_var over \p num_vars variables (var 0 = LSB of the index).
truth_table make_var(uint32_t num_vars, uint32_t var);

/// Elementary two-input gates over exactly two variables.
truth_table make_and2();
truth_table make_or2();
truth_table make_xor2();
truth_table make_nand2();
truth_table make_nor2();
truth_table make_xnor2();
truth_table make_implies2(); ///< a -> b with a = var 1, b = var 0.

/// Majority-of-three over exactly three variables.
truth_table make_maj3();

/// Uniformly random table over \p num_vars variables, seeded determinstically.
truth_table make_random(uint32_t num_vars, uint64_t seed);

truth_table unary_not(const truth_table& a);
truth_table binary_and(const truth_table& a, const truth_table& b);
truth_table binary_or(const truth_table& a, const truth_table& b);
truth_table binary_xor(const truth_table& a, const truth_table& b);

bool is_const0(const truth_table& a);
bool is_const1(const truth_table& a);

/// Number of ones (satisfying assignments).
uint64_t count_ones(const truth_table& a);

/// Toggle rate of the signature: bit transitions over bit-string length
/// (footnote 1 of the paper §IV-A).
double toggle_rate(const truth_table& a);

/// Shannon cofactors with respect to \p var: f restricted to var=0 / var=1.
/// The result keeps the same variable count (the cofactored variable
/// becomes unused), matching kitty's convention.
truth_table cofactor0(const truth_table& a, uint32_t var);
truth_table cofactor1(const truth_table& a, uint32_t var);

/// True iff the function depends on \p var.
bool depends_on(const truth_table& a, uint32_t var);

/// Composes \p f with subfunctions: result(x) = f(g_0(x), ..., g_{k-1}(x)).
/// All \p gs must share one variable count, which becomes the result's.
truth_table compose(const truth_table& f, std::span<const truth_table> gs);

/// Extends \p a to \p num_vars variables (new variables are unused).
truth_table extend_to(const truth_table& a, uint32_t num_vars);

} // namespace stps::tt
