#include "tt/operations.hpp"

#include <bit>
#include <cassert>
#include <random>
#include <stdexcept>

namespace stps::tt {

namespace {

/// Repeating bit patterns of the projections for the in-word variables.
constexpr uint64_t proj_masks[6] = {
    0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
    0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull};

truth_table binary_op(const truth_table& a, const truth_table& b,
                      uint64_t (*op)(uint64_t, uint64_t))
{
  if (a.num_vars() != b.num_vars()) {
    throw std::invalid_argument{"binary_op: variable count mismatch"};
  }
  truth_table out{a.num_vars()};
  for (std::size_t i = 0; i < a.num_words(); ++i) {
    out.set_word(i, op(a.word(i), b.word(i)));
  }
  out.mask_padding();
  return out;
}

} // namespace

truth_table make_const0(uint32_t num_vars)
{
  return truth_table{num_vars};
}

truth_table make_const1(uint32_t num_vars)
{
  truth_table tt{num_vars};
  for (std::size_t i = 0; i < tt.num_words(); ++i) {
    tt.set_word(i, ~uint64_t{0});
  }
  tt.mask_padding();
  return tt;
}

truth_table make_var(uint32_t num_vars, uint32_t var)
{
  if (var >= num_vars) {
    throw std::invalid_argument{"make_var: variable out of range"};
  }
  truth_table tt{num_vars};
  if (var < 6u) {
    for (std::size_t i = 0; i < tt.num_words(); ++i) {
      tt.set_word(i, proj_masks[var]);
    }
  } else {
    const std::size_t period = std::size_t{1} << (var - 6u);
    for (std::size_t i = 0; i < tt.num_words(); ++i) {
      tt.set_word(i, (i / period) & 1u ? ~uint64_t{0} : 0u);
    }
  }
  tt.mask_padding();
  return tt;
}

truth_table make_and2() { return truth_table{2u, {0x8ull}}; }
truth_table make_or2() { return truth_table{2u, {0xeull}}; }
truth_table make_xor2() { return truth_table{2u, {0x6ull}}; }
truth_table make_nand2() { return truth_table{2u, {0x7ull}}; }
truth_table make_nor2() { return truth_table{2u, {0x1ull}}; }
truth_table make_xnor2() { return truth_table{2u, {0x9ull}}; }
truth_table make_implies2() { return truth_table{2u, {0xbull}}; } // !a | b, a=var1
truth_table make_maj3() { return truth_table{3u, {0xe8ull}}; }

truth_table make_random(uint32_t num_vars, uint64_t seed)
{
  std::mt19937_64 rng{seed};
  truth_table tt{num_vars};
  for (std::size_t i = 0; i < tt.num_words(); ++i) {
    tt.set_word(i, rng());
  }
  tt.mask_padding();
  return tt;
}

truth_table unary_not(const truth_table& a)
{
  truth_table out{a.num_vars()};
  for (std::size_t i = 0; i < a.num_words(); ++i) {
    out.set_word(i, ~a.word(i));
  }
  out.mask_padding();
  return out;
}

truth_table binary_and(const truth_table& a, const truth_table& b)
{
  return binary_op(a, b, [](uint64_t x, uint64_t y) { return x & y; });
}

truth_table binary_or(const truth_table& a, const truth_table& b)
{
  return binary_op(a, b, [](uint64_t x, uint64_t y) { return x | y; });
}

truth_table binary_xor(const truth_table& a, const truth_table& b)
{
  return binary_op(a, b, [](uint64_t x, uint64_t y) { return x ^ y; });
}

bool is_const0(const truth_table& a)
{
  for (std::size_t i = 0; i < a.num_words(); ++i) {
    if (a.word(i) != 0u) {
      return false;
    }
  }
  return true;
}

bool is_const1(const truth_table& a)
{
  return is_const0(unary_not(a));
}

uint64_t count_ones(const truth_table& a)
{
  uint64_t n = 0;
  for (std::size_t i = 0; i < a.num_words(); ++i) {
    n += std::popcount(a.word(i));
  }
  return n;
}

double toggle_rate(const truth_table& a)
{
  if (a.num_bits() < 2u) {
    return 0.0;
  }
  uint64_t toggles = 0;
  for (uint64_t i = 1; i < a.num_bits(); ++i) {
    toggles += a.bit(i) != a.bit(i - 1u);
  }
  return static_cast<double>(toggles) / static_cast<double>(a.num_bits());
}

truth_table cofactor0(const truth_table& a, uint32_t var)
{
  assert(var < a.num_vars());
  truth_table out{a.num_vars()};
  if (var < 6u) {
    const uint64_t mask = ~proj_masks[var];
    const uint32_t shift = 1u << var;
    for (std::size_t i = 0; i < a.num_words(); ++i) {
      const uint64_t lo = a.word(i) & mask;
      out.set_word(i, lo | (lo << shift));
    }
  } else {
    const std::size_t period = std::size_t{1} << (var - 6u);
    for (std::size_t i = 0; i < a.num_words(); ++i) {
      const std::size_t src = (i / period) & 1u ? i - period : i;
      out.set_word(i, a.word(src));
    }
  }
  out.mask_padding();
  return out;
}

truth_table cofactor1(const truth_table& a, uint32_t var)
{
  assert(var < a.num_vars());
  truth_table out{a.num_vars()};
  if (var < 6u) {
    const uint64_t mask = proj_masks[var];
    const uint32_t shift = 1u << var;
    for (std::size_t i = 0; i < a.num_words(); ++i) {
      const uint64_t hi = a.word(i) & mask;
      out.set_word(i, hi | (hi >> shift));
    }
  } else {
    const std::size_t period = std::size_t{1} << (var - 6u);
    for (std::size_t i = 0; i < a.num_words(); ++i) {
      const std::size_t src = (i / period) & 1u ? i : i + period;
      out.set_word(i, a.word(src));
    }
  }
  out.mask_padding();
  return out;
}

bool depends_on(const truth_table& a, uint32_t var)
{
  return cofactor0(a, var) != cofactor1(a, var);
}

truth_table compose(const truth_table& f, std::span<const truth_table> gs)
{
  if (gs.size() != f.num_vars()) {
    throw std::invalid_argument{"compose: arity mismatch"};
  }
  if (gs.empty()) {
    return f; // constant
  }
  const uint32_t num_vars = gs[0].num_vars();
  for (const auto& g : gs) {
    if (g.num_vars() != num_vars) {
      throw std::invalid_argument{"compose: inner variable counts differ"};
    }
  }
  // Evaluate f's Shannon expansion word-parallel over the g tables: this
  // is exactly the block-halving STP pass described in DESIGN.md, applied
  // at the truth-table level.
  truth_table out{num_vars};
  for (std::size_t w = 0; w < out.num_words(); ++w) {
    // values[i] after round r holds the sub-block of f for suffix i
    std::vector<uint64_t> values(f.num_bits());
    for (uint64_t i = 0; i < f.num_bits(); ++i) {
      values[i] = f.bit(i) ? ~uint64_t{0} : 0u;
    }
    for (uint32_t var = f.num_vars(); var-- > 0;) {
      const uint64_t x = gs[var].word(w);
      const uint64_t half = uint64_t{1} << var;
      for (uint64_t i = 0; i < half; ++i) {
        values[i] = (x & values[i + half]) | (~x & values[i]);
      }
    }
    out.set_word(w, values[0]);
  }
  out.mask_padding();
  return out;
}

truth_table extend_to(const truth_table& a, uint32_t num_vars)
{
  if (num_vars < a.num_vars()) {
    throw std::invalid_argument{"extend_to: shrinking not allowed"};
  }
  if (num_vars == a.num_vars()) {
    return a;
  }
  truth_table out{num_vars};
  const uint64_t src_bits = a.num_bits();
  if (src_bits >= 64u) {
    for (std::size_t i = 0; i < out.num_words(); ++i) {
      out.set_word(i, a.word(i % a.num_words()));
    }
  } else {
    uint64_t word = 0;
    for (uint64_t off = 0; off < 64u; off += src_bits) {
      word |= a.word(0) << off;
    }
    for (std::size_t i = 0; i < out.num_words(); ++i) {
      out.set_word(i, word);
    }
  }
  out.mask_padding();
  return out;
}

} // namespace stps::tt
