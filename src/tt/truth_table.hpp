/// \file truth_table.hpp
/// \brief Word-parallel dynamic truth tables.
///
/// A `truth_table` over `n` variables stores the 2^n output bits of a
/// Boolean function packed into 64-bit words, exactly like the tables the
/// paper manipulates (Def. 2: the columns of a structural matrix, read
/// right to left, are the truth table of the operation).  Bit `i` is the
/// function value under the input assignment whose binary encoding is `i`
/// (variable 0 is the least-significant input bit).
///
/// Tables with fewer than 6 variables occupy a single partially-used word
/// whose unused high bits are kept zero (the *canonical padding*
/// invariant); every mutating operation re-establishes it.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace stps::tt {

/// Number of 64-bit words needed for a table over \p num_vars variables.
constexpr std::size_t words_for(uint32_t num_vars) noexcept
{
  return num_vars <= 6u ? 1u : (std::size_t{1} << (num_vars - 6u));
}

/// Dynamically sized truth table over up to 30 variables.
class truth_table
{
public:
  /// Constructs the constant-0 table over \p num_vars variables.
  explicit truth_table(uint32_t num_vars = 0u);

  /// Constructs from explicit words (low word first).  The word count must
  /// match `words_for(num_vars)`; excess high bits are masked away.
  truth_table(uint32_t num_vars, std::initializer_list<uint64_t> words);

  uint32_t num_vars() const noexcept { return num_vars_; }
  /// Number of function bits, i.e. 2^num_vars.
  uint64_t num_bits() const noexcept { return uint64_t{1} << num_vars_; }
  std::size_t num_words() const noexcept { return words_.size(); }

  uint64_t word(std::size_t i) const { return words_[i]; }
  void set_word(std::size_t i, uint64_t w);
  const std::vector<uint64_t>& words() const noexcept { return words_; }

  /// Value of the function at minterm \p index.
  bool bit(uint64_t index) const;
  void set_bit(uint64_t index, bool value);

  /// Re-applies the canonical padding invariant (zero unused high bits).
  void mask_padding() noexcept;

  bool operator==(const truth_table& other) const = default;

  /// Lexicographic order on (num_vars, words); usable as a map key.
  bool operator<(const truth_table& other) const noexcept;

  /// Hex string, most-significant nibble first (kitty convention).
  std::string to_hex() const;
  /// Binary string, bit 2^n-1 first — the paper prints tables this way
  /// ("read from right to left", §II-B).
  std::string to_binary() const;

  /// Parses a binary string as printed by `to_binary`.  The string length
  /// must be exactly 2^num_vars.
  static truth_table from_binary(std::string_view bits);
  /// Parses a hex string over \p num_vars variables.
  static truth_table from_hex(uint32_t num_vars, std::string_view hex);

private:
  uint32_t num_vars_;
  std::vector<uint64_t> words_;
};

/// FNV-1a hash over the semantic content; suitable for unordered maps.
struct truth_table_hash
{
  std::size_t operator()(const truth_table& tt) const noexcept;
};

} // namespace stps::tt
