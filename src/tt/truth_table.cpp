#include "tt/truth_table.hpp"

#include <cassert>
#include <stdexcept>

namespace stps::tt {

namespace {

uint64_t padding_mask(uint32_t num_vars) noexcept
{
  if (num_vars >= 6u) {
    return ~uint64_t{0};
  }
  return (uint64_t{1} << (uint64_t{1} << num_vars)) - 1u;
}

int hex_digit(char c)
{
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

} // namespace

truth_table::truth_table(uint32_t num_vars)
    : num_vars_{num_vars}, words_(words_for(num_vars), 0u)
{
  if (num_vars > 30u) {
    throw std::invalid_argument{"truth_table: more than 30 variables"};
  }
}

truth_table::truth_table(uint32_t num_vars, std::initializer_list<uint64_t> words)
    : truth_table{num_vars}
{
  if (words.size() != words_.size()) {
    throw std::invalid_argument{"truth_table: word count mismatch"};
  }
  std::size_t i = 0;
  for (uint64_t w : words) {
    words_[i++] = w;
  }
  mask_padding();
}

void truth_table::set_word(std::size_t i, uint64_t w)
{
  words_.at(i) = w;
  mask_padding();
}

bool truth_table::bit(uint64_t index) const
{
  assert(index < num_bits());
  return (words_[index >> 6u] >> (index & 63u)) & 1u;
}

void truth_table::set_bit(uint64_t index, bool value)
{
  assert(index < num_bits());
  const uint64_t mask = uint64_t{1} << (index & 63u);
  if (value) {
    words_[index >> 6u] |= mask;
  } else {
    words_[index >> 6u] &= ~mask;
  }
}

void truth_table::mask_padding() noexcept
{
  words_.back() &= padding_mask(num_vars_);
  if (num_vars_ < 6u) {
    // single word table: ensured by the line above
    return;
  }
}

bool truth_table::operator<(const truth_table& other) const noexcept
{
  if (num_vars_ != other.num_vars_) {
    return num_vars_ < other.num_vars_;
  }
  for (std::size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != other.words_[i]) {
      return words_[i] < other.words_[i];
    }
  }
  return false;
}

std::string truth_table::to_hex() const
{
  static constexpr char digits[] = "0123456789abcdef";
  const uint64_t nibbles = num_vars_ <= 2u ? 1u : (num_bits() >> 2u);
  std::string out;
  out.reserve(nibbles);
  for (uint64_t i = nibbles; i-- > 0;) {
    const uint64_t word = words_[(i * 4u) >> 6u];
    const uint64_t shift = (i * 4u) & 63u;
    out.push_back(digits[(word >> shift) & 0xfu]);
  }
  return out;
}

std::string truth_table::to_binary() const
{
  std::string out;
  out.reserve(num_bits());
  for (uint64_t i = num_bits(); i-- > 0;) {
    out.push_back(bit(i) ? '1' : '0');
  }
  return out;
}

truth_table truth_table::from_binary(std::string_view bits)
{
  uint32_t num_vars = 0;
  while ((uint64_t{1} << num_vars) < bits.size()) {
    ++num_vars;
  }
  if ((uint64_t{1} << num_vars) != bits.size()) {
    throw std::invalid_argument{"from_binary: length is not a power of two"};
  }
  truth_table tt{num_vars};
  for (uint64_t i = 0; i < bits.size(); ++i) {
    const char c = bits[bits.size() - 1u - i];
    if (c != '0' && c != '1') {
      throw std::invalid_argument{"from_binary: invalid character"};
    }
    tt.set_bit(i, c == '1');
  }
  return tt;
}

truth_table truth_table::from_hex(uint32_t num_vars, std::string_view hex)
{
  truth_table tt{num_vars};
  const uint64_t nibbles = num_vars <= 2u ? 1u : (tt.num_bits() >> 2u);
  if (hex.size() != nibbles) {
    throw std::invalid_argument{"from_hex: digit count mismatch"};
  }
  for (uint64_t i = 0; i < nibbles; ++i) {
    const int v = hex_digit(hex[hex.size() - 1u - i]);
    if (v < 0) {
      throw std::invalid_argument{"from_hex: invalid character"};
    }
    tt.words_[(i * 4u) >> 6u] |= uint64_t(v) << ((i * 4u) & 63u);
  }
  tt.mask_padding();
  return tt;
}

std::size_t truth_table_hash::operator()(const truth_table& tt) const noexcept
{
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(tt.num_vars());
  for (uint64_t w : tt.words()) {
    mix(w);
  }
  return static_cast<std::size_t>(h);
}

} // namespace stps::tt
